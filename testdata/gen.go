//go:build ignore

// Regenerates the committed fixture corpora used by the cmd golden
// tests:
//
//	go run testdata/gen.go
//
// corpus-clean is a small, failure-bearing S1 window; corpus-degraded
// is the same window with render-time chaos damage plus two stream
// files removed, so golden output exercises the quarantine ledger and
// the degradation notes. Both are deterministic — rerunning this
// program must reproduce the files byte for byte.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hpcfail"
)

func main() {
	p, err := hpcfail.SystemProfile("S1")
	if err != nil {
		panic(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = 45 * time.Minute
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := hpcfail.Simulate(p, start, start.Add(24*time.Hour), 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scenario: %d records, %d ground-truth failures\n", len(scn.Records), len(scn.Failures))

	clean := filepath.Join("testdata", "corpus-clean")
	if err := os.RemoveAll(clean); err != nil {
		panic(err)
	}
	if err := hpcfail.WriteLogs(clean, scn); err != nil {
		panic(err)
	}

	degraded := filepath.Join("testdata", "corpus-degraded")
	if err := os.RemoveAll(degraded); err != nil {
		panic(err)
	}
	ccfg := hpcfail.ChaosConfig{Garble: 0.03, Truncate: 0.03, Seed: 7}
	if _, err := hpcfail.WriteLogsChaos(degraded, scn, ccfg); err != nil {
		panic(err)
	}
	for _, f := range []string{"scheduler.log", "erd.log"} {
		if err := os.Remove(filepath.Join(degraded, f)); err != nil {
			panic(err)
		}
	}
	for _, dir := range []string{clean, degraded} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			panic(err)
		}
		total := int64(0)
		for _, e := range entries {
			fi, err := e.Info()
			if err != nil {
				panic(err)
			}
			total += fi.Size()
		}
		fmt.Printf("%s: %d files, %d bytes\n", dir, len(entries), total)
	}
}
