//go:build ignore

// Regenerates the committed fixture corpora used by the cmd golden
// tests:
//
//	go run testdata/gen.go
//
// corpus-clean is a small, failure-bearing S1 window; corpus-degraded
// is the same window with render-time chaos damage plus two stream
// files removed, so golden output exercises the quarantine ledger and
// the degradation notes. corpus-unknown-daemon is corpus-clean with an
// un-profiled InfiniBand daemon ("opensmd" on non-cname components)
// interleaved into console.log — every one of its lines quarantines,
// which is the template miner's bootstrap scenario. All are
// deterministic — rerunning this program must reproduce the files byte
// for byte.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hpcfail"
)

// unknownDaemonLines renders the un-profiled daemon's day: a frequent
// subnet-sweep template (past the miner's default promotion count), a
// recurring link-flap template and an occasional port-state template.
// Raw text on purpose — no parser in the repo knows this daemon.
func unknownDaemonLines(start time.Time) []string {
	var lines []string
	emit := func(i int, format string, args ...interface{}) {
		ts := start.Add(time.Duration(i) * 450 * time.Second)
		lines = append(lines, fmt.Sprintf("%s %s", ts.Format("2006-01-02T15:04:05.000000Z07:00"),
			fmt.Sprintf(format, args...)))
	}
	for i := 0; i < 100; i++ {
		emit(i, "ib%d opensmd: SUBNET SWEEP complete: %d nodes in %d ms", i%2, 1500+i*3, 300+i*7)
	}
	for i := 0; i < 60; i++ {
		emit(i+30, "ib%d opensmd: link flap on port %d: retrying", i%2, 1+i%36)
	}
	for i := 0; i < 20; i++ {
		emit(i*8, "ib%d opensmd: port %d state change: ACTIVE", i%2, 1+i%36)
	}
	return lines
}

func main() {
	p, err := hpcfail.SystemProfile("S1")
	if err != nil {
		panic(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = 45 * time.Minute
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := hpcfail.Simulate(p, start, start.Add(24*time.Hour), 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scenario: %d records, %d ground-truth failures\n", len(scn.Records), len(scn.Failures))

	clean := filepath.Join("testdata", "corpus-clean")
	if err := os.RemoveAll(clean); err != nil {
		panic(err)
	}
	if err := hpcfail.WriteLogs(clean, scn); err != nil {
		panic(err)
	}

	degraded := filepath.Join("testdata", "corpus-degraded")
	if err := os.RemoveAll(degraded); err != nil {
		panic(err)
	}
	ccfg := hpcfail.ChaosConfig{Garble: 0.03, Truncate: 0.03, Seed: 7}
	if _, err := hpcfail.WriteLogsChaos(degraded, scn, ccfg); err != nil {
		panic(err)
	}
	for _, f := range []string{"scheduler.log", "erd.log"} {
		if err := os.Remove(filepath.Join(degraded, f)); err != nil {
			panic(err)
		}
	}
	unknown := filepath.Join("testdata", "corpus-unknown-daemon")
	if err := os.RemoveAll(unknown); err != nil {
		panic(err)
	}
	if err := hpcfail.WriteLogs(unknown, scn); err != nil {
		panic(err)
	}
	console := filepath.Join(unknown, "console.log")
	data, err := os.ReadFile(console)
	if err != nil {
		panic(err)
	}
	daemon := unknownDaemonLines(start)
	// Stable timestamp-ordered interleave: ISO-8601 prefixes sort as
	// strings, so a line sort merges the daemon into the console stream.
	all := append([]string{}, daemon...)
	for _, l := range strings.Split(string(data), "\n") {
		if l != "" {
			all = append(all, l)
		}
	}
	sort.Strings(all)
	if err := os.WriteFile(console, []byte(strings.Join(all, "\n")+"\n"), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d daemon lines interleaved into console.log\n", unknown, len(daemon))

	for _, dir := range []string{clean, degraded, unknown} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			panic(err)
		}
		total := int64(0)
		for _, e := range entries {
			fi, err := e.Info()
			if err != nil {
				panic(err)
			}
			total += fi.Size()
		}
		fmt.Printf("%s: %d files, %d bytes\n", dir, len(entries), total)
	}
}
