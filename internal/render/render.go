// Package render produces the operator-facing output of the diagnosis
// tools: the full diagnose report (tables, breakdowns, lead-time and
// recommendation summaries) in text and JSON form, plus the ingest
// warning and partial-ledger messages every front end prints the same
// way. cmd/diagnose, cmd/watch and the HTTP server all render through
// this package, which is what makes `GET /v1/diagnose` byte-identical
// to the CLI over the same corpus.
package render

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"hpcfail/internal/core"
	"hpcfail/internal/logstore"
	"hpcfail/internal/miner"
	"hpcfail/internal/report"
)

// Warnings prints ingest warnings one per line. max > 0 caps the list,
// summarising the overflow ("... and N more ingest warnings"); max <= 0
// prints everything.
func Warnings(w io.Writer, warnings []string, max int) {
	for i, s := range warnings {
		if max > 0 && i >= max {
			fmt.Fprintf(w, "... and %d more ingest warnings\n", len(warnings)-max)
			return
		}
		fmt.Fprintln(w, "warning:", s)
	}
}

// Interrupted prints the partial ingest ledger and a resume hint when
// err is (or wraps) logstore.ErrInterrupted, reporting whether it was.
// rep may be nil (the interruption hit before any ledger existed); hint
// is the caller's resume guidance, printed verbatim on its own line.
func Interrupted(w io.Writer, err error, rep *logstore.IngestReport, hint string) bool {
	if !errors.Is(err, logstore.ErrInterrupted) {
		return false
	}
	if rep != nil {
		fmt.Fprintln(w, "partial ingest at interruption:")
		fmt.Fprintln(w, rep.String())
	}
	if hint != "" {
		fmt.Fprintln(w, hint)
	}
	return true
}

// Diagnose writes the full text diagnosis report for one corpus — the
// exact stdout of `cmd/diagnose` (everything after the stderr
// warnings): the load header, ingest summary, degraded banner, the
// failure table, optional per-failure evidence, cause/layer breakdowns,
// lead-time, MTBF and downtime summaries and the Table VI
// recommendations. logsDir only labels the empty-corpus error.
func Diagnose(w io.Writer, logsDir string, store *logstore.Store, rep *logstore.IngestReport, res *core.Result, full bool) error {
	first, last, ok := store.Span()
	if !ok {
		return fmt.Errorf("no records found under %s", logsDir)
	}
	fmt.Fprintf(w, "loaded %d records spanning %s .. %s\n", store.Len(), first.Format(time.RFC3339), last.Format(time.RFC3339))
	fmt.Fprintln(w, rep.String())

	if res.Degradation.Degraded() {
		fmt.Fprintf(w, "DEGRADED: %s (confidence scaled by %.2f)\n", res.Degradation.Note(), res.Degradation.Factor())
	}
	fmt.Fprintln(w)

	tbl := report.NewTable("Detected node failures",
		"time", "node", "terminal", "cause", "class", "app-triggered", "job", "int lead", "ext lead")
	for _, d := range res.Diagnoses {
		lt := core.ComputeLeadTime(d)
		job := "-"
		if d.JobID != 0 {
			job = fmt.Sprintf("%d", d.JobID)
		}
		ext := "-"
		if lt.External > 0 {
			ext = lt.External.Round(time.Second).String()
		}
		intl := "-"
		if lt.Internal > 0 {
			intl = lt.Internal.Round(time.Second).String()
		}
		tbl.AddRow(d.Detection.Time.Format("01-02 15:04:05"), d.Detection.Node.String(),
			d.Detection.Terminal, d.Cause.String(), d.Class.String(), d.AppTriggered, job, intl, ext)
	}
	fmt.Fprint(w, tbl.String())

	if full {
		for _, d := range res.Diagnoses {
			fmt.Fprintf(w, "\n%s %s — %s (confidence %.2f, key symbol %q)\n",
				d.Detection.Time.Format(time.RFC3339), d.Detection.Node, d.Cause, d.Confidence, d.KeySymbol)
			for _, ev := range d.InternalEvidence {
				fmt.Fprintf(w, "  internal: %s\n", ev.String())
			}
			for _, ev := range d.ExternalIndicators {
				fmt.Fprintf(w, "  external: %s\n", ev.String())
			}
		}
	}

	// Summaries.
	causes := map[string]float64{}
	for c, n := range res.CauseBreakdown() {
		causes[c.String()] = float64(n)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, report.Bars("Root-cause breakdown", causes, "failures").String())

	classes := map[string]float64{}
	for c, n := range res.ClassBreakdown() {
		classes[c.String()] = float64(n)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, report.Bars("Layer breakdown", classes, "failures").String())

	sum := core.SummarizeLeadTimes(res.Diagnoses)
	fmt.Fprintf(w, "\nlead times: %d/%d failures enhanceable (%s), mean factor %.1fx\n",
		sum.Enhanceable, sum.Total, report.Pct(sum.EnhanceableFraction()), sum.MeanFactor)

	mtbf := res.MTBF()
	if mtbf.N > 0 {
		fmt.Fprintf(w, "MTBF: %.1f ± %.1f minutes over %d gaps\n", mtbf.Mean, mtbf.Stddev, mtbf.N)
	}
	if dt := res.DowntimeSummary(); dt.N > 0 {
		fmt.Fprintf(w, "downtime: %.0f ± %.0f minutes per failure (%d rebooted in window; %.0f node-minutes lost)\n",
			dt.Mean, dt.Stddev, dt.N, dt.Mean*float64(dt.N))
	}

	// Table VI: findings -> recommendations, derived from the measured
	// behaviour of this log corpus.
	if recs := core.Recommend(res); len(recs) > 0 {
		fmt.Fprintln(w, "\nRecommendations (Table VI):")
		for _, r := range recs {
			fmt.Fprintf(w, "  [%d] %s\n      -> %s\n", r.Severity, r.Finding, r.Action)
		}
	}
	return nil
}

// diagnosisJSON is the machine-readable per-diagnosis shape DiagnoseJSON
// emits, one object per line.
type diagnosisJSON struct {
	Time         time.Time `json:"time"`
	Node         string    `json:"node"`
	Terminal     string    `json:"terminal"`
	Cause        string    `json:"cause"`
	Class        string    `json:"class"`
	AppTriggered bool      `json:"app_triggered"`
	JobID        int64     `json:"job_id,omitempty"`
	KeySymbol    string    `json:"key_symbol,omitempty"`
	Confidence   float64   `json:"confidence"`
	Degraded     bool      `json:"degraded,omitempty"`
	Note         string    `json:"note,omitempty"`
	InternalLead float64   `json:"internal_lead_sec,omitempty"`
	ExternalLead float64   `json:"external_lead_sec,omitempty"`
}

// DiagnoseJSON writes one JSON object per diagnosis — the exact stdout
// of `cmd/diagnose -json`.
func DiagnoseJSON(w io.Writer, res *core.Result) error {
	enc := json.NewEncoder(w)
	for _, d := range res.Diagnoses {
		lt := core.ComputeLeadTime(d)
		out := diagnosisJSON{
			Time: d.Detection.Time, Node: d.Detection.Node.String(),
			Terminal: d.Detection.Terminal, Cause: d.Cause.String(),
			Class: d.Class.String(), AppTriggered: d.AppTriggered,
			JobID: d.JobID, KeySymbol: d.KeySymbol, Confidence: d.Confidence,
			Degraded: d.Degraded, Note: d.Note,
			InternalLead: lt.Internal.Seconds(), ExternalLead: lt.External.Seconds(),
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
	return nil
}

// MinedTemplates writes the template-miner report section that
// cmd/diagnose and cmd/watch append under -mine: one row per live
// template, hottest first, with promoted candidate signatures starred.
// It is strictly appended output — everything before it stays
// byte-identical to a run without mining.
func MinedTemplates(w io.Writer, st miner.Stats, views []miner.TemplateView) {
	fmt.Fprintf(w, "\nMined log templates: %d live (%d lines mined, %d promoted, %d evicted)\n",
		st.TemplatesLive, st.LinesMined, st.Promoted, st.Evicted)
	if len(views) == 0 {
		fmt.Fprintln(w, "  nothing quarantined or unclassified — the static profiles covered every line")
		return
	}
	sorted := make([]miner.TemplateView, len(views))
	copy(sorted, views)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Count != sorted[j].Count {
			return sorted[i].Count > sorted[j].Count
		}
		return sorted[i].Template < sorted[j].Template
	})
	for _, v := range sorted {
		mark := " "
		if v.Promoted {
			mark = "*"
		}
		fmt.Fprintf(w, " %s %6d  %-32s %s\n", mark, v.Count, v.Category, v.Template)
	}
	fmt.Fprintln(w, "  (* = promoted candidate signature)")
}
