package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("sensors")
	c2 := parent.Split("jobs")
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different labels produced the same first draw")
	}
	// Same parent state + same label sequence must reproduce.
	p2 := New(7)
	d1 := p2.Split("sensors")
	d2 := p2.Split("jobs")
	if got, want := d1.Uint64(), New(7).Split("sensors").Uint64(); got != want {
		t.Fatalf("split not deterministic: %d vs %d", got, want)
	}
	_ = d2
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d has %d draws, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(5)
	const mean = 12.5
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean) > 0.15 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	const mu, sigma = 40.0, 3.0
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(mu, sigma)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sumsq/n - m*m)
	if math.Abs(m-mu) > 0.05 {
		t.Errorf("Norm mean = %v, want ~%v", m, mu)
	}
	if math.Abs(sd-sigma) > 0.05 {
		t.Errorf("Norm stddev = %v, want ~%v", sd, sigma)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(8)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	r := New(9)
	const scale = 5.0
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(scale, 1)
	}
	got := sum / n
	if math.Abs(got-scale) > 0.15 {
		t.Fatalf("Weibull(scale,1) mean = %v, want ~%v", got, scale)
	}
}

func TestCategoricalWeights(t *testing.T) {
	r := New(10)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.8 || ratio > 3.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Categorical(nil) did not panic")
		}
	}()
	New(1).Categorical(nil)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleIntsDistinct(t *testing.T) {
	r := New(12)
	for _, k := range []int{0, 1, 5, 50, 100} {
		s := r.SampleInts(100, k)
		if len(s) != k {
			t.Fatalf("SampleInts(100,%d) returned %d values", k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 100 || seen[v] {
				t.Fatalf("SampleInts produced duplicate or out-of-range %d", v)
			}
			seen[v] = true
		}
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(13)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

// Property: Float64 always in [0,1) regardless of seed.
func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Exp never negative; Weibull never negative.
func TestQuickNonNegativeSamplers(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 20; i++ {
			if r.Exp(10) < 0 || r.Weibull(3, 2) < 0 || r.Pareto(1, 2) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Jitter with factor f stays within [v(1-f), v(1+f)].
func TestQuickJitterBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		v := r.Jitter(100, 0.25)
		return v >= 74.999 && v <= 125.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm(0, 1)
	}
}
