// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used throughout the fault
// simulator.
//
// Determinism matters here: every figure and table in the experiment
// harness must regenerate bit-identically for a given seed, across runs
// and across machines. The package therefore implements its own generator
// (xoshiro256** seeded via splitmix64) instead of relying on math/rand,
// whose stream is not guaranteed stable across Go releases.
//
// Generators are splittable: Split derives an independent child stream
// from a parent, which lets each simulated subsystem (sensors, jobs,
// faults, per-node noise) own its own stream so that adding draws in one
// subsystem does not perturb another.
package rng

import (
	"math"
	"math/bits"
)

// Rand is a deterministic random number generator. It is NOT safe for
// concurrent use; use Split to derive per-goroutine streams.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the seed and returns the next seeding value.
// Used only to expand a single 64-bit seed into generator state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any
	// seed cannot produce four zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Uint64 returns the next value of the xoshiro256** stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split derives an independent child generator. The child's state is a
// hash of the parent's next outputs, so parent and child streams do not
// overlap in practice. A label distinguishes children split at the same
// point.
func (r *Rand) Split(label string) *Rand {
	h := r.Uint64()
	for _, b := range []byte(label) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return New(h)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method.
func (r *Rand) boundedUint64(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// Exponential inter-arrival times model Poisson event processes (fault
// arrivals, job submissions).
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform.
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has parameters mu and sigma. Job runtimes and failure cascade
// sizes are heavy-tailed; log-normal matches production job-length
// distributions well.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Weibull returns a Weibull-distributed value with the given scale
// (lambda) and shape (k). Weibull models component lifetimes: k < 1 gives
// infant mortality, k > 1 wear-out.
func (r *Rand) Weibull(scale, shape float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Pareto returns a Pareto-distributed value with the given minimum xm and
// tail index alpha. Used for heavy-tailed burst sizes.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and normal approximation for large ones.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction.
		n := int(math.Round(r.Norm(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Categorical draws an index from the (unnormalised) weights. It panics
// if weights is empty or sums to a non-positive value.
func (r *Rand) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Categorical with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher-Yates).
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// SampleInts returns k distinct values drawn uniformly from [0, n)
// without replacement, in random order. It panics if k > n or k < 0.
func (r *Rand) SampleInts(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleInts with k out of range")
	}
	if k == 0 {
		return nil
	}
	// For small k relative to n use a set-based draw; otherwise shuffle.
	if k*4 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := r.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	p := r.Perm(n)
	return p[:k]
}

// Jitter returns v scaled by a uniform factor in [1-f, 1+f]. Used to
// de-synchronise per-entity parameters around a profile mean.
func (r *Rand) Jitter(v, f float64) float64 {
	return v * (1 + f*(2*r.Float64()-1))
}
