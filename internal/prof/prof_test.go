package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Error("Start with uncreatable cpu path should fail")
	}
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Error("stop with uncreatable mem path should fail")
	}
}
