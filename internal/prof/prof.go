// Package prof wires runtime/pprof CPU and heap profiling into the
// command-line tools, so production-shaped runs of diagnose/watch can
// be profiled with the same workflow the benchmarks use
// (`go tool pprof` on the written files).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns
// a stop function that ends the CPU profile and snapshots the heap into
// memPath (when non-empty, after a forced GC so the profile reflects
// live memory). Call stop exactly once, on every exit path that should
// produce profiles. Empty paths make Start and stop no-ops.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return fmt.Errorf("close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("create mem profile: %w", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("write mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("close mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
