package cname

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// expandRef is the original split-based ExpandNodeList the in-place
// walker must agree with: same names on success, error on the same
// inputs (messages may differ).
func expandRef(s string) ([]Name, error) {
	if s == "" {
		return nil, nil
	}
	splitTopLevel := func(s string) []string {
		var parts []string
		depth, start := 0, 0
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '[':
				depth++
			case ']':
				depth--
			case ',':
				if depth == 0 {
					parts = append(parts, s[start:i])
					start = i + 1
				}
			}
		}
		return append(parts, s[start:])
	}
	expandInts := func(s string) ([]int, error) {
		var out []int
		for _, tok := range strings.Split(s, ",") {
			if dash := strings.IndexByte(tok, '-'); dash > 0 {
				lo, err1 := strconv.Atoi(tok[:dash])
				hi, err2 := strconv.Atoi(tok[dash+1:])
				if err1 != nil || err2 != nil || hi < lo {
					return nil, fmt.Errorf("bad range %q", tok)
				}
				for v := lo; v <= hi; v++ {
					out = append(out, v)
				}
				continue
			}
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("bad index %q", tok)
			}
			out = append(out, v)
		}
		return out, nil
	}
	var out []Name
	for _, part := range splitTopLevel(s) {
		if part == "" {
			continue
		}
		br := strings.IndexByte(part, '[')
		if br < 0 {
			n, err := Parse(part)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
			continue
		}
		if !strings.HasSuffix(part, "]") || !strings.HasSuffix(part[:br], "n") {
			return nil, fmt.Errorf("cname: bad node list part %q", part)
		}
		blade, err := Parse(part[:br-1])
		if err != nil {
			return nil, err
		}
		if blade.Level() != LevelBlade {
			return nil, fmt.Errorf("cname: node list prefix %q is not a blade", part[:br-1])
		}
		idx, err := expandInts(part[br+1 : len(part)-1])
		if err != nil {
			return nil, fmt.Errorf("cname: %v in %q", err, part)
		}
		for _, i := range idx {
			if i < 0 || i >= NodesPerBlade {
				return nil, fmt.Errorf("cname: node index %d out of range in %q", i, part)
			}
			out = append(out, Node(blade.Col(), blade.Row(), blade.ChassisIndex(), blade.SlotIndex(), i))
		}
	}
	return out, nil
}

func expandEq(t *testing.T, s string) {
	t.Helper()
	got, gotErr := ExpandNodeList(s)
	want, wantErr := expandRef(s)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("ExpandNodeList(%q) err=%v, reference err=%v", s, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if len(got) != len(want) {
		t.Fatalf("ExpandNodeList(%q) = %d names, reference %d", s, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpandNodeList(%q)[%d] = %v, reference %v", s, i, got[i], want[i])
		}
	}
}

func TestExpandNodeListMatchesReference(t *testing.T) {
	fixed := []string{
		"",
		"c0-0c0s0n0",
		"c0-0c0s0n[0-3]",
		"c0-0c0s0n[0,2]",
		"c0-0c0s0n[0-1,3]",
		"c0-0c0s0n[0-3],c0-0c0s1n2,c1-0c2s15n[1,3]",
		"c0-0c0s0n0,c0-0c0s0n1",
		"c0-0c0s0,c0-0c0s0n0", // blade name in the legacy comma form
		",c0-0c0s0n0,",        // empty parts skipped
		"c0-0c0s0n[]",         // empty bracket body
		"c0-0c0s0n[4]",        // index out of range
		"c0-0c0s0n[0-9]",      // range runs out of range
		"c0-0c0s0n[2-0]",      // inverted range
		"c0-0c0s0n[x]",        // non-numeric
		"c0-0c0s0n[0",         // unterminated bracket
		"c0-0c0s0[0-3]",       // bracket not after 'n'
		"c0-0c0s0n[0-3]x",     // trailing junk
		"c0-0n[0-3]",          // prefix is not a blade
		"[0-3]",               // bracket with no prefix
		"garbage",
	}
	for _, s := range fixed {
		expandEq(t, s)
	}
	// Randomized: compress a random node set and re-expand, plus random
	// mutations to hit error paths in both implementations.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(24)
		nodes := make([]Name, n)
		for i := range nodes {
			nodes[i] = Node(rng.Intn(2), rng.Intn(2), rng.Intn(3), rng.Intn(16), rng.Intn(4))
		}
		sort.Slice(nodes, func(i, j int) bool { return Compare(nodes[i], nodes[j]) < 0 })
		s := CompressNodeList(nodes)
		expandEq(t, s)
		if len(s) > 0 {
			b := []byte(s)
			b[rng.Intn(len(b))] = byte("0123456789cns[],-x"[rng.Intn(18)])
			expandEq(t, string(b))
		}
	}
}

func BenchmarkExpandNodeList(b *testing.B) {
	s := "c0-0c0s0n[0-3],c0-0c0s1n[0,2],c0-0c1s4n2,c1-0c2s15n[1-3]"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExpandNodeList(s); err != nil {
			b.Fatal(err)
		}
	}
}
