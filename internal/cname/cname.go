// Package cname implements the Cray component-name ("cname") algebra used
// by the Hardware Supervisory System to address physical components.
//
// A cname identifies a position in the physical hierarchy:
//
//	c X - Y            cabinet in column X, row Y
//	c X - Y c C        chassis C (0-2) within the cabinet
//	c X - Y c C s S    slot/blade S (0-15) within the chassis
//	c X - Y c C s S n N node N (0-3) on the blade
//
// For example c1-0c2s7n3 is node 3 on blade 7 of chassis 2 in the cabinet
// at column 1, row 0. The paper's correlation methodology (Fig 2) walks
// this hierarchy — node → blade → cabinet — to join node-internal failures
// with blade-controller and cabinet-controller health events, so the
// containment relations here underpin the whole analysis pipeline.
package cname

import (
	"fmt"
	"strconv"
	"strings"
)

// Level identifies the granularity of a component name.
type Level int

const (
	// LevelInvalid marks the zero Name.
	LevelInvalid Level = iota
	// LevelCabinet addresses a whole cabinet (cX-Y).
	LevelCabinet
	// LevelChassis addresses a chassis within a cabinet (cX-YcC).
	LevelChassis
	// LevelBlade addresses a blade/slot within a chassis (cX-YcCsS).
	LevelBlade
	// LevelNode addresses a compute node on a blade (cX-YcCsSnN).
	LevelNode
)

// String returns the lower-case level name.
func (l Level) String() string {
	switch l {
	case LevelCabinet:
		return "cabinet"
	case LevelChassis:
		return "chassis"
	case LevelBlade:
		return "blade"
	case LevelNode:
		return "node"
	default:
		return "invalid"
	}
}

// Standard geometry of a Cray XC/XE cabinet. These are constants of the
// hardware platform, not tunables: 3 chassis per cabinet, 16 blade slots
// per chassis, 4 nodes per blade.
const (
	ChassisPerCabinet = 3
	SlotsPerChassis   = 16
	NodesPerBlade     = 4
	NodesPerChassis   = SlotsPerChassis * NodesPerBlade
	NodesPerCabinet   = ChassisPerCabinet * NodesPerChassis
)

// Name is a parsed component name. The zero value is invalid.
type Name struct {
	level   Level
	col     int // cabinet column (X)
	row     int // cabinet row (Y)
	chassis int // 0..2, valid for LevelChassis and finer
	slot    int // 0..15, valid for LevelBlade and finer
	node    int // 0..3, valid for LevelNode
}

// Cabinet constructs a cabinet-level name.
func Cabinet(col, row int) Name {
	return Name{level: LevelCabinet, col: col, row: row}
}

// Chassis constructs a chassis-level name.
func Chassis(col, row, chassis int) Name {
	return Name{level: LevelChassis, col: col, row: row, chassis: chassis}
}

// Blade constructs a blade-level name.
func Blade(col, row, chassis, slot int) Name {
	return Name{level: LevelBlade, col: col, row: row, chassis: chassis, slot: slot}
}

// Node constructs a node-level name.
func Node(col, row, chassis, slot, node int) Name {
	return Name{level: LevelNode, col: col, row: row, chassis: chassis, slot: slot, node: node}
}

// Level reports the granularity of the name.
func (n Name) Level() Level { return n.level }

// IsValid reports whether the name addresses a component.
func (n Name) IsValid() bool { return n.level != LevelInvalid }

// Col returns the cabinet column.
func (n Name) Col() int { return n.col }

// Row returns the cabinet row.
func (n Name) Row() int { return n.row }

// ChassisIndex returns the chassis number within the cabinet. Valid for
// chassis-level names and finer.
func (n Name) ChassisIndex() int { return n.chassis }

// SlotIndex returns the blade slot within the chassis. Valid for
// blade-level names and finer.
func (n Name) SlotIndex() int { return n.slot }

// NodeIndex returns the node number on the blade. Valid for node-level
// names only.
func (n Name) NodeIndex() int { return n.node }

// Key returns an injective 64-bit encoding of the name: two Names are
// equal exactly when their Keys are equal. It exists so hot map indexes
// can hash one word instead of the full struct. ok is false when a
// coordinate falls outside 12 bits (negative or ≥4096), in which case
// callers must hash the Name itself.
func (n Name) Key() (uint64, bool) {
	if uint(n.col)|uint(n.row)|uint(n.chassis)|uint(n.slot)|uint(n.node) >= 4096 || uint(n.level) >= 16 {
		return 0, false
	}
	return uint64(n.level) |
		uint64(n.col)<<4 | uint64(n.row)<<16 |
		uint64(n.chassis)<<28 | uint64(n.slot)<<40 | uint64(n.node)<<52, true
}

// appendName appends the canonical cname form to buf. The rendering
// core shared by String and the node-list compressor; strconv appends
// keep it off the fmt slow path (Name.String is hot inside log
// rendering and scheduler node-list output).
func appendName(buf []byte, n Name) []byte {
	buf = append(buf, 'c')
	buf = strconv.AppendInt(buf, int64(n.col), 10)
	buf = append(buf, '-')
	buf = strconv.AppendInt(buf, int64(n.row), 10)
	if n.level >= LevelChassis {
		buf = append(buf, 'c')
		buf = strconv.AppendInt(buf, int64(n.chassis), 10)
	}
	if n.level >= LevelBlade {
		buf = append(buf, 's')
		buf = strconv.AppendInt(buf, int64(n.slot), 10)
	}
	if n.level >= LevelNode {
		buf = append(buf, 'n')
		buf = strconv.AppendInt(buf, int64(n.node), 10)
	}
	return buf
}

// String renders the canonical cname form.
func (n Name) String() string {
	if n.level == LevelInvalid {
		return "<invalid cname>"
	}
	var buf [24]byte
	return string(appendName(buf[:0], n))
}

// CabinetName returns the enclosing cabinet.
func (n Name) CabinetName() Name {
	if n.level == LevelInvalid {
		return Name{}
	}
	return Cabinet(n.col, n.row)
}

// ChassisName returns the enclosing chassis, or an invalid Name for
// cabinet-level input.
func (n Name) ChassisName() Name {
	if n.level < LevelChassis {
		return Name{}
	}
	return Chassis(n.col, n.row, n.chassis)
}

// BladeName returns the enclosing blade, or an invalid Name for input
// coarser than a blade.
func (n Name) BladeName() Name {
	if n.level < LevelBlade {
		return Name{}
	}
	return Blade(n.col, n.row, n.chassis, n.slot)
}

// Contains reports whether n encloses (or equals) other in the physical
// hierarchy. A cabinet contains its chassis, blades and nodes; a blade
// contains its nodes; every component contains itself.
func (n Name) Contains(other Name) bool {
	if n.level == LevelInvalid || other.level == LevelInvalid || n.level > other.level {
		return false
	}
	if n.col != other.col || n.row != other.row {
		return false
	}
	if n.level >= LevelChassis && n.chassis != other.chassis {
		return false
	}
	if n.level >= LevelBlade && n.slot != other.slot {
		return false
	}
	if n.level >= LevelNode && n.node != other.node {
		return false
	}
	return true
}

// SameBlade reports whether two node- or blade-level names share a blade.
// The paper's spatial-correlation step asks exactly this question: did
// the other nodes of the failed node's blade show health faults?
func SameBlade(a, b Name) bool {
	ab, bb := a.BladeName(), b.BladeName()
	return ab.IsValid() && ab == bb
}

// SameCabinet reports whether two names share a cabinet.
func SameCabinet(a, b Name) bool {
	return a.IsValid() && b.IsValid() && a.col == b.col && a.row == b.row
}

// Siblings returns the other nodes on the same blade as the given
// node-level name. Returns nil for non-node input.
func (n Name) Siblings() []Name {
	if n.level != LevelNode {
		return nil
	}
	out := make([]Name, 0, NodesPerBlade-1)
	for i := 0; i < NodesPerBlade; i++ {
		if i == n.node {
			continue
		}
		out = append(out, Node(n.col, n.row, n.chassis, n.slot, i))
	}
	return out
}

// NID returns a dense non-negative node identifier for a node-level name
// within a machine laid out as rows × cols cabinets. Cray systems expose
// a similar "nid" integer (e.g. nid00042) alongside the cname. The
// mapping enumerates cabinets row-major, then chassis, slot, node.
func (n Name) NID(cols int) int {
	if n.level != LevelNode || cols <= 0 {
		return -1
	}
	cab := n.row*cols + n.col
	return ((cab*ChassisPerCabinet+n.chassis)*SlotsPerChassis+n.slot)*NodesPerBlade + n.node
}

// FromNID inverts NID for a machine with the given cabinet column count.
func FromNID(nid, cols int) Name {
	if nid < 0 || cols <= 0 {
		return Name{}
	}
	node := nid % NodesPerBlade
	nid /= NodesPerBlade
	slot := nid % SlotsPerChassis
	nid /= SlotsPerChassis
	chassis := nid % ChassisPerCabinet
	cab := nid / ChassisPerCabinet
	return Node(cab%cols, cab/cols, chassis, slot, node)
}

// NIDString renders the Cray-style zero-padded node id, e.g. "nid00042".
func NIDString(nid int) string {
	return fmt.Sprintf("nid%05d", nid)
}

// ParseNID parses a "nidNNNNN" string.
func ParseNID(s string) (int, error) {
	if !strings.HasPrefix(s, "nid") {
		return 0, fmt.Errorf("cname: %q is not a nid", s)
	}
	v, err := strconv.Atoi(strings.TrimPrefix(s, "nid"))
	if err != nil || v < 0 {
		return 0, fmt.Errorf("cname: bad nid %q", s)
	}
	return v, nil
}

// Parse parses a cname of any level. It accepts the canonical forms
// produced by String: cX-Y, cX-YcC, cX-YcCsS, cX-YcCsSnN.
func Parse(s string) (Name, error) {
	orig := s
	fail := func() (Name, error) {
		return Name{}, fmt.Errorf("cname: cannot parse %q", orig)
	}
	if len(s) < 4 || s[0] != 'c' {
		return fail()
	}
	s = s[1:]
	dash := strings.IndexByte(s, '-')
	if dash <= 0 {
		return fail()
	}
	col, err := strconv.Atoi(s[:dash])
	if err != nil || col < 0 {
		return fail()
	}
	s = s[dash+1:]
	// Row digits run until the next letter or end of string.
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 {
		return fail()
	}
	row, err := strconv.Atoi(s[:i])
	if err != nil {
		return fail()
	}
	s = s[i:]
	name := Cabinet(col, row)
	for _, part := range []struct {
		tag   byte
		set   func(int)
		lvl   Level
		bound int
	}{
		{'c', func(v int) { name.chassis = v }, LevelChassis, ChassisPerCabinet},
		{'s', func(v int) { name.slot = v }, LevelBlade, SlotsPerChassis},
		{'n', func(v int) { name.node = v }, LevelNode, NodesPerBlade},
	} {
		if len(s) == 0 {
			return name, nil
		}
		if s[0] != part.tag {
			return fail()
		}
		s = s[1:]
		j := 0
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == 0 {
			return fail()
		}
		v, err := strconv.Atoi(s[:j])
		if err != nil || v < 0 || v >= part.bound {
			return fail()
		}
		part.set(v)
		name.level = part.lvl
		s = s[j:]
	}
	if len(s) != 0 {
		return fail()
	}
	return name, nil
}

// MustParse is Parse that panics on error; for constants in tests and
// examples.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// MarshalText implements encoding.TextMarshaler (JSON object keys and
// values render as the canonical cname).
func (n Name) MarshalText() ([]byte, error) {
	if !n.IsValid() {
		return []byte(""), nil
	}
	return []byte(n.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; empty text yields
// the invalid zero Name.
func (n *Name) UnmarshalText(text []byte) error {
	if len(text) == 0 {
		*n = Name{}
		return nil
	}
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*n = parsed
	return nil
}

// Compare orders names hierarchically (row, col, chassis, slot, node,
// level). Suitable for sorting event listings into physical order.
func Compare(a, b Name) int {
	switch {
	case a.row != b.row:
		return cmpInt(a.row, b.row)
	case a.col != b.col:
		return cmpInt(a.col, b.col)
	case a.chassis != b.chassis:
		return cmpInt(a.chassis, b.chassis)
	case a.slot != b.slot:
		return cmpInt(a.slot, b.slot)
	case a.node != b.node:
		return cmpInt(a.node, b.node)
	default:
		return cmpInt(int(a.level), int(b.level))
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
