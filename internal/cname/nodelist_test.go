package cname

import (
	"strings"
	"testing"
	"testing/quick"

	"hpcfail/internal/rng"
)

func TestCompressNodeListForms(t *testing.T) {
	cases := []struct {
		nodes []Name
		want  string
	}{
		{nil, ""},
		{[]Name{Node(0, 0, 0, 0, 2)}, "c0-0c0s0n2"},
		{
			[]Name{Node(0, 0, 0, 0, 0), Node(0, 0, 0, 0, 1), Node(0, 0, 0, 0, 2), Node(0, 0, 0, 0, 3)},
			"c0-0c0s0n[0-3]",
		},
		{
			[]Name{Node(0, 0, 0, 0, 0), Node(0, 0, 0, 0, 2)},
			"c0-0c0s0n[0,2]",
		},
		{
			[]Name{Node(0, 0, 0, 1, 0), Node(0, 0, 0, 0, 3), Node(0, 0, 0, 1, 1)},
			"c0-0c0s0n3,c0-0c0s1n[0-1]",
		},
		// Duplicates collapse; blade-level names ignored.
		{
			[]Name{Node(0, 0, 0, 0, 1), Node(0, 0, 0, 0, 1), Blade(0, 0, 0, 0)},
			"c0-0c0s0n1",
		},
	}
	for _, c := range cases {
		if got := CompressNodeList(c.nodes); got != c.want {
			t.Errorf("Compress(%v) = %q, want %q", c.nodes, got, c.want)
		}
	}
}

func TestExpandNodeList(t *testing.T) {
	got, err := ExpandNodeList("c0-0c0s0n[0-2],c1-0c2s7n3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3] != Node(1, 0, 2, 7, 3) {
		t.Fatalf("Expand = %v", got)
	}
	// Legacy plain form still parses.
	got, err = ExpandNodeList("c0-0c0s0n0,c0-0c0s0n1")
	if err != nil || len(got) != 2 {
		t.Fatalf("legacy expand: %v %v", got, err)
	}
	if ns, err := ExpandNodeList(""); err != nil || ns != nil {
		t.Error("empty list should expand to nil")
	}
}

func TestExpandNodeListErrors(t *testing.T) {
	bad := []string{
		"c0-0c0s0n[0-",     // unterminated
		"c0-0c0s0n[9]",     // index out of range
		"c0-0c0s0n[2-1]",   // inverted range
		"c0-0c0s0n[x]",     // garbage index
		"c0-0c0n[0]",       // prefix not a blade
		"c0-0c0s0x[0]",     // missing n
		"garbage",          // not a cname
		"c0-0c0s0n[0],bad", // trailing garbage
	}
	for _, s := range bad {
		if _, err := ExpandNodeList(s); err == nil {
			t.Errorf("ExpandNodeList(%q) should fail", s)
		}
	}
}

// Property: Expand inverts Compress for arbitrary node sets.
func TestQuickCompressRoundTrip(t *testing.T) {
	f := func(seed uint64, count uint8) bool {
		r := rng.New(seed)
		n := int(count)%100 + 1
		seen := map[Name]bool{}
		var nodes []Name
		for i := 0; i < n; i++ {
			nd := Node(r.Intn(3), r.Intn(2), r.Intn(ChassisPerCabinet),
				r.Intn(SlotsPerChassis), r.Intn(NodesPerBlade))
			if !seen[nd] {
				seen[nd] = true
				nodes = append(nodes, nd)
			}
		}
		got, err := ExpandNodeList(CompressNodeList(nodes))
		if err != nil || len(got) != len(nodes) {
			return false
		}
		for _, g := range got {
			if !seen[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompressionShrinksLargeAllocations(t *testing.T) {
	var nodes []Name
	var plain []string
	for s := 0; s < SlotsPerChassis; s++ {
		for nd := 0; nd < NodesPerBlade; nd++ {
			n := Node(0, 0, 0, s, nd)
			nodes = append(nodes, n)
			plain = append(plain, n.String())
		}
	}
	compressed := CompressNodeList(nodes)
	if len(compressed) >= len(strings.Join(plain, ","))/2 {
		t.Errorf("compression too weak: %d vs %d bytes", len(compressed), len(strings.Join(plain, ",")))
	}
}
