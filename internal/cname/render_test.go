package cname

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// stringRef is the original fmt-based renderer String must match
// byte-for-byte.
func stringRef(n Name) string {
	var b strings.Builder
	if n.level == LevelInvalid {
		return "<invalid cname>"
	}
	fmt.Fprintf(&b, "c%d-%d", n.col, n.row)
	if n.level >= LevelChassis {
		fmt.Fprintf(&b, "c%d", n.chassis)
	}
	if n.level >= LevelBlade {
		fmt.Fprintf(&b, "s%d", n.slot)
	}
	if n.level >= LevelNode {
		fmt.Fprintf(&b, "n%d", n.node)
	}
	return b.String()
}

// compressRef is the original map-and-fmt CompressNodeList.
func compressRef(nodes []Name) string {
	byBlade := map[Name][]int{}
	var blades []Name
	for _, n := range nodes {
		if n.Level() != LevelNode {
			continue
		}
		b := n.BladeName()
		if _, seen := byBlade[b]; !seen {
			blades = append(blades, b)
		}
		byBlade[b] = append(byBlade[b], n.NodeIndex())
	}
	sort.Slice(blades, func(i, j int) bool { return Compare(blades[i], blades[j]) < 0 })
	var parts []string
	for _, b := range blades {
		idx := byBlade[b]
		sort.Ints(idx)
		dedup := idx[:0]
		for i, v := range idx {
			if i == 0 || v != idx[i-1] {
				dedup = append(dedup, v)
			}
		}
		if len(dedup) == 1 {
			parts = append(parts, fmt.Sprintf("%sn%d", b, dedup[0]))
			continue
		}
		var rb strings.Builder
		for i := 0; i < len(dedup); {
			j := i
			for j+1 < len(dedup) && dedup[j+1] == dedup[j]+1 {
				j++
			}
			if rb.Len() > 0 {
				rb.WriteByte(',')
			}
			if j > i {
				fmt.Fprintf(&rb, "%d-%d", dedup[i], dedup[j])
			} else {
				fmt.Fprintf(&rb, "%d", dedup[i])
			}
			i = j + 1
		}
		parts = append(parts, fmt.Sprintf("%sn[%s]", b, rb.String()))
	}
	return strings.Join(parts, ",")
}

func TestStringMatchesReference(t *testing.T) {
	names := []Name{
		Cabinet(0, 0), Cabinet(12, 3), Cabinet(123, 45),
		Chassis(1, 0, 2), Blade(1, 0, 2, 15), Node(1, 0, 2, 15, 3),
		Node(0, 0, 0, 0, 0), Node(31, 7, 2, 9, 1),
	}
	for _, n := range names {
		if got, want := n.String(), stringRef(n); got != want {
			t.Errorf("String(%+v) = %q, want %q", n, got, want)
		}
	}
	if got := (Name{}).String(); got != "<invalid cname>" {
		t.Errorf("zero Name renders %q", got)
	}
}

func TestCompareMatchesReference(t *testing.T) {
	ref := func(a, b Name) int {
		key := func(n Name) [6]int {
			return [6]int{n.row, n.col, n.chassis, n.slot, n.node, int(n.level)}
		}
		ka, kb := key(a), key(b)
		for i := range ka {
			switch {
			case ka[i] < kb[i]:
				return -1
			case ka[i] > kb[i]:
				return 1
			}
		}
		return 0
	}
	rng := rand.New(rand.NewSource(9))
	randName := func() Name {
		switch rng.Intn(5) {
		case 0:
			return Name{}
		case 1:
			return Cabinet(rng.Intn(3), rng.Intn(3))
		case 2:
			return Chassis(rng.Intn(3), rng.Intn(3), rng.Intn(3))
		case 3:
			return Blade(rng.Intn(3), rng.Intn(3), rng.Intn(3), rng.Intn(4))
		default:
			return Node(rng.Intn(3), rng.Intn(3), rng.Intn(3), rng.Intn(4), rng.Intn(4))
		}
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := randName(), randName()
		if got, want := Compare(a, b), ref(a, b); got != want {
			t.Fatalf("Compare(%v, %v) = %d, want %d", a, b, got, want)
		}
	}
}

func TestCompressNodeListMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(30)
		nodes := make([]Name, 0, n)
		for i := 0; i < n; i++ {
			switch rng.Intn(8) {
			case 0: // non-node names must be ignored
				nodes = append(nodes, Blade(rng.Intn(2), rng.Intn(2), rng.Intn(3), rng.Intn(16)))
			case 1:
				nodes = append(nodes, Name{})
			default:
				nodes = append(nodes, Node(rng.Intn(2), rng.Intn(2), rng.Intn(3), rng.Intn(16), rng.Intn(4)))
			}
		}
		if rng.Intn(2) == 0 { // half the trials pre-sorted (the hot path)
			sort.Slice(nodes, func(i, j int) bool { return Compare(nodes[i], nodes[j]) < 0 })
		}
		in := append([]Name(nil), nodes...)
		got := CompressNodeList(nodes)
		want := compressRef(in)
		if got != want {
			t.Fatalf("trial %d: CompressNodeList = %q, want %q (input %v)", trial, got, want, in)
		}
		// Round trip must still hold.
		if got != "" {
			expanded, err := ExpandNodeList(got)
			if err != nil {
				t.Fatalf("ExpandNodeList(%q): %v", got, err)
			}
			set := map[Name]bool{}
			for _, x := range expanded {
				set[x] = true
			}
			for _, x := range in {
				if x.Level() == LevelNode && !set[x] {
					t.Fatalf("round trip lost %v from %q", x, got)
				}
			}
		}
	}
}

func BenchmarkCompressNodeList(b *testing.B) {
	var nodes []Name
	for s := 0; s < 4; s++ {
		for n := 0; n < 4; n++ {
			nodes = append(nodes, Node(0, 0, 1, s, n))
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return Compare(nodes[i], nodes[j]) < 0 })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompressNodeList(nodes)
	}
}

func BenchmarkNameString(b *testing.B) {
	n := Node(1, 0, 2, 15, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = n.String()
	}
}
