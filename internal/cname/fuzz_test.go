package cname

import "testing"

// Fuzz targets: identifier parsing must never panic, and anything that
// parses must re-render to an equivalent value.

func FuzzParse(f *testing.F) {
	f.Add("c0-0")
	f.Add("c1-0c2s7n3")
	f.Add("c12-3c2s15n0")
	f.Add("")
	f.Add("c-")
	f.Add("c0-0c9s99n9")
	f.Fuzz(func(t *testing.T, s string) {
		n, err := Parse(s)
		if err != nil {
			return
		}
		back, err2 := Parse(n.String())
		if err2 != nil || back != n {
			t.Fatalf("re-parse of %q -> %v failed: %v %v", s, n, back, err2)
		}
	})
}

func FuzzExpandNodeList(f *testing.F) {
	f.Add("c0-0c0s0n[0-3],c1-0c2s7n3")
	f.Add("c0-0c0s0n[0,2]")
	f.Add("[[[]]]")
	f.Add("c0-0c0s0n[0-")
	f.Add(",,,")
	f.Fuzz(func(t *testing.T, s string) {
		nodes, err := ExpandNodeList(s)
		if err != nil {
			return
		}
		// Everything expanded must survive a compress/expand cycle.
		back, err2 := ExpandNodeList(CompressNodeList(nodes))
		if err2 != nil {
			t.Fatalf("re-expand failed for %q: %v", s, err2)
		}
		want := map[Name]bool{}
		for _, n := range nodes {
			if n.Level() == LevelNode {
				want[n] = true
			}
		}
		for _, n := range back {
			if !want[n] {
				t.Fatalf("round trip invented node %v from %q", n, s)
			}
		}
	})
}

func FuzzParseNID(f *testing.F) {
	f.Add("nid00042")
	f.Add("nid")
	f.Add("x")
	f.Fuzz(func(t *testing.T, s string) {
		if v, err := ParseNID(s); err == nil {
			if NIDString(v) == "" {
				t.Fatal("render of parsed nid empty")
			}
		}
	})
}
