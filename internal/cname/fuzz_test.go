// External test package: the chaos injector (used for corrupted seed
// corpora) transitively imports cname, so these fuzz targets cannot
// live inside package cname without an import cycle.
package cname_test

import (
	"testing"

	"hpcfail/internal/chaos"
	"hpcfail/internal/cname"
)

// Fuzz targets: identifier parsing must never panic, and anything that
// parses must re-render to an equivalent value.

// chaosSeeds derives deterministic corrupted variants of valid inputs —
// the byte-level damage a garbled log line inflicts on embedded cnames.
func chaosSeeds(label string, valid []string) []string {
	var out []string
	for _, mode := range chaos.AllModes() {
		inj := chaos.New(chaos.ForMode(mode, 0.9, 23))
		out = append(out, inj.CorruptLines(label+"/"+string(mode), valid)...)
	}
	return out
}

func FuzzParse(f *testing.F) {
	valid := []string{"c0-0", "c1-0c2s7n3", "c12-3c2s15n0", "c0-0c9s99n9"}
	for _, s := range valid {
		f.Add(s)
	}
	f.Add("")
	f.Add("c-")
	for _, s := range chaosSeeds("parse", valid) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := cname.Parse(s)
		if err != nil {
			return
		}
		back, err2 := cname.Parse(n.String())
		if err2 != nil || back != n {
			t.Fatalf("re-parse of %q -> %v failed: %v %v", s, n, back, err2)
		}
	})
}

func FuzzExpandNodeList(f *testing.F) {
	valid := []string{"c0-0c0s0n[0-3],c1-0c2s7n3", "c0-0c0s0n[0,2]"}
	for _, s := range valid {
		f.Add(s)
	}
	f.Add("[[[]]]")
	f.Add("c0-0c0s0n[0-")
	f.Add(",,,")
	for _, s := range chaosSeeds("nodelist", valid) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		nodes, err := cname.ExpandNodeList(s)
		if err != nil {
			return
		}
		// Everything expanded must survive a compress/expand cycle.
		back, err2 := cname.ExpandNodeList(cname.CompressNodeList(nodes))
		if err2 != nil {
			t.Fatalf("re-expand failed for %q: %v", s, err2)
		}
		want := map[cname.Name]bool{}
		for _, n := range nodes {
			if n.Level() == cname.LevelNode {
				want[n] = true
			}
		}
		for _, n := range back {
			if !want[n] {
				t.Fatalf("round trip invented node %v from %q", n, s)
			}
		}
	})
}

func FuzzParseNID(f *testing.F) {
	valid := []string{"nid00042"}
	f.Add("nid00042")
	f.Add("nid")
	f.Add("x")
	for _, s := range chaosSeeds("nid", valid) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if v, err := cname.ParseNID(s); err == nil {
			if cname.NIDString(v) == "" {
				t.Fatal("render of parsed nid empty")
			}
		}
	})
}
