package cname

import (
	"testing"
	"testing/quick"
)

func TestStringForms(t *testing.T) {
	cases := []struct {
		n    Name
		want string
	}{
		{Cabinet(0, 0), "c0-0"},
		{Cabinet(12, 3), "c12-3"},
		{Chassis(1, 0, 2), "c1-0c2"},
		{Blade(1, 0, 2, 7), "c1-0c2s7"},
		{Node(1, 0, 2, 7, 3), "c1-0c2s7n3"},
	}
	for _, c := range cases {
		if got := c.n.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"c0-0", "c3-1c2", "c10-0c1s15", "c2-2c0s0n0", "c7-1c2s9n3"} {
		n, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if n.String() != s {
			t.Errorf("round trip %q -> %q", s, n.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "c", "c0", "c-0", "c0-", "x0-0", "c0-0x1", "c0-0c3", // chassis 3 out of range
		"c0-0c0s16",   // slot out of range
		"c0-0c0s0n4",  // node out of range
		"c0-0c0s0n1x", // trailing garbage
		"c0-0s0",      // slot without chassis
		"c0-0c0n1",    // node without slot
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestLevels(t *testing.T) {
	if Cabinet(0, 0).Level() != LevelCabinet {
		t.Error("cabinet level wrong")
	}
	if Node(0, 0, 1, 2, 3).Level() != LevelNode {
		t.Error("node level wrong")
	}
	if (Name{}).IsValid() {
		t.Error("zero Name should be invalid")
	}
	if Level(99).String() != "invalid" {
		t.Error("unknown level should stringify as invalid")
	}
}

func TestContainment(t *testing.T) {
	node := Node(1, 0, 2, 7, 3)
	if !node.CabinetName().Contains(node) {
		t.Error("cabinet should contain its node")
	}
	if !node.BladeName().Contains(node) {
		t.Error("blade should contain its node")
	}
	if !node.Contains(node) {
		t.Error("node should contain itself")
	}
	other := Node(1, 0, 2, 8, 3)
	if node.BladeName().Contains(other) {
		t.Error("blade s7 should not contain node on s8")
	}
	if node.Contains(node.BladeName()) {
		t.Error("node should not contain its blade")
	}
	if Cabinet(0, 0).Contains(Node(1, 0, 0, 0, 0)) {
		t.Error("wrong cabinet containment")
	}
}

func TestSameBladeAndCabinet(t *testing.T) {
	a := Node(1, 0, 2, 7, 0)
	b := Node(1, 0, 2, 7, 3)
	c := Node(1, 0, 2, 8, 0)
	if !SameBlade(a, b) {
		t.Error("a,b share a blade")
	}
	if SameBlade(a, c) {
		t.Error("a,c do not share a blade")
	}
	if !SameCabinet(a, c) {
		t.Error("a,c share a cabinet")
	}
	if SameBlade(Cabinet(0, 0), a) {
		t.Error("cabinet has no blade")
	}
}

func TestSiblings(t *testing.T) {
	n := Node(0, 0, 1, 5, 2)
	sibs := n.Siblings()
	if len(sibs) != 3 {
		t.Fatalf("got %d siblings, want 3", len(sibs))
	}
	for _, s := range sibs {
		if !SameBlade(n, s) || s == n {
			t.Errorf("bad sibling %v", s)
		}
	}
	if Blade(0, 0, 0, 0).Siblings() != nil {
		t.Error("blade should have no node siblings")
	}
}

func TestNIDRoundTrip(t *testing.T) {
	const cols = 4
	seen := map[int]bool{}
	for row := 0; row < 2; row++ {
		for col := 0; col < cols; col++ {
			for ch := 0; ch < ChassisPerCabinet; ch++ {
				for s := 0; s < SlotsPerChassis; s++ {
					for nd := 0; nd < NodesPerBlade; nd++ {
						n := Node(col, row, ch, s, nd)
						nid := n.NID(cols)
						if nid < 0 {
							t.Fatalf("NID(%v) < 0", n)
						}
						if seen[nid] {
							t.Fatalf("duplicate nid %d for %v", nid, n)
						}
						seen[nid] = true
						if back := FromNID(nid, cols); back != n {
							t.Fatalf("FromNID(NID(%v)) = %v", n, back)
						}
					}
				}
			}
		}
	}
	// NIDs must be dense 0..count-1.
	for i := 0; i < len(seen); i++ {
		if !seen[i] {
			t.Fatalf("nid %d missing from dense enumeration", i)
		}
	}
}

func TestNIDInvalid(t *testing.T) {
	if Blade(0, 0, 0, 0).NID(4) != -1 {
		t.Error("blade NID should be -1")
	}
	if FromNID(-1, 4).IsValid() {
		t.Error("FromNID(-1) should be invalid")
	}
}

func TestNIDString(t *testing.T) {
	if got := NIDString(42); got != "nid00042" {
		t.Errorf("NIDString(42) = %q", got)
	}
	v, err := ParseNID("nid00042")
	if err != nil || v != 42 {
		t.Errorf("ParseNID = %d, %v", v, err)
	}
	if _, err := ParseNID("node42"); err == nil {
		t.Error("ParseNID should reject non-nid strings")
	}
	if _, err := ParseNID("nid-1"); err == nil {
		t.Error("ParseNID should reject negative")
	}
}

func TestCompare(t *testing.T) {
	a := Node(0, 0, 0, 0, 0)
	b := Node(0, 0, 0, 0, 1)
	if Compare(a, b) >= 0 {
		t.Error("a < b expected")
	}
	if Compare(b, a) <= 0 {
		t.Error("b > a expected")
	}
	if Compare(a, a) != 0 {
		t.Error("a == a expected")
	}
	if Compare(a.BladeName(), a) >= 0 {
		t.Error("blade sorts before its node")
	}
}

func TestTextMarshalRoundTrip(t *testing.T) {
	n := Node(1, 0, 2, 7, 3)
	b, err := n.MarshalText()
	if err != nil || string(b) != "c1-0c2s7n3" {
		t.Fatalf("MarshalText = %q, %v", b, err)
	}
	var back Name
	if err := back.UnmarshalText(b); err != nil || back != n {
		t.Fatalf("UnmarshalText = %v, %v", back, err)
	}
	// Invalid name marshals empty and unmarshals back to invalid.
	var zero Name
	b, _ = zero.MarshalText()
	if len(b) != 0 {
		t.Errorf("invalid name should marshal empty, got %q", b)
	}
	var z2 Name
	if err := z2.UnmarshalText(nil); err != nil || z2.IsValid() {
		t.Error("empty text should unmarshal to invalid")
	}
	if err := z2.UnmarshalText([]byte("garbage")); err == nil {
		t.Error("garbage should not unmarshal")
	}
}

// Property: parse inverts String for arbitrary valid coordinates.
func TestQuickParseInvertsString(t *testing.T) {
	f := func(col, row uint8, ch, slot, node uint8) bool {
		n := Node(int(col), int(row), int(ch)%ChassisPerCabinet,
			int(slot)%SlotsPerChassis, int(node)%NodesPerBlade)
		back, err := Parse(n.String())
		return err == nil && back == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NID is dense, order-preserving within a machine.
func TestQuickNIDBijective(t *testing.T) {
	f := func(raw uint16) bool {
		const cols = 3
		nid := int(raw) % (cols * 2 * NodesPerCabinet)
		n := FromNID(nid, cols)
		return n.IsValid() && n.NID(cols) == nid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
