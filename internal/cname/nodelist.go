package cname

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Node-list compression. Schedulers never log thousand-node allocations
// as comma lists; they compress consecutive indices into bracketed
// ranges ("nid[00001-00012]" in Slurm). This file implements the
// analogous compression over cnames, grouping nodes by blade:
//
//	c0-0c0s0n[0-3],c0-0c0s1n[0,2],c0-0c1s4n2
//
// Compression is exact: Expand(Compress(nodes)) returns the same set.

// CompressNodeList renders a set of node-level names compactly. The
// input is deduplicated and sorted; non-node names are ignored.
func CompressNodeList(nodes []Name) string {
	byBlade := map[Name][]int{}
	var blades []Name
	for _, n := range nodes {
		if n.Level() != LevelNode {
			continue
		}
		b := n.BladeName()
		if _, seen := byBlade[b]; !seen {
			blades = append(blades, b)
		}
		byBlade[b] = append(byBlade[b], n.NodeIndex())
	}
	sort.Slice(blades, func(i, j int) bool { return Compare(blades[i], blades[j]) < 0 })
	var parts []string
	for _, b := range blades {
		idx := dedupeInts(byBlade[b])
		if len(idx) == 1 {
			parts = append(parts, fmt.Sprintf("%sn%d", b, idx[0]))
			continue
		}
		parts = append(parts, fmt.Sprintf("%sn[%s]", b, compressInts(idx)))
	}
	return strings.Join(parts, ",")
}

// dedupeInts sorts and deduplicates.
func dedupeInts(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// compressInts renders sorted distinct ints as "0-2,5".
func compressInts(idx []int) string {
	var b strings.Builder
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && idx[j+1] == idx[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&b, "%d-%d", idx[i], idx[j])
		} else {
			fmt.Fprintf(&b, "%d", idx[i])
		}
		i = j + 1
	}
	return b.String()
}

// ExpandNodeList inverts CompressNodeList. It also accepts plain
// comma-separated cnames (the uncompressed legacy form).
func ExpandNodeList(s string) ([]Name, error) {
	if s == "" {
		return nil, nil
	}
	var out []Name
	for _, part := range splitTopLevel(s) {
		if part == "" {
			continue
		}
		br := strings.IndexByte(part, '[')
		if br < 0 {
			n, err := Parse(part)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
			continue
		}
		if !strings.HasSuffix(part, "]") || !strings.HasSuffix(part[:br], "n") {
			return nil, fmt.Errorf("cname: bad node list part %q", part)
		}
		blade, err := Parse(part[:br-1])
		if err != nil {
			return nil, err
		}
		if blade.Level() != LevelBlade {
			return nil, fmt.Errorf("cname: node list prefix %q is not a blade", part[:br-1])
		}
		idx, err := expandInts(part[br+1 : len(part)-1])
		if err != nil {
			return nil, fmt.Errorf("cname: %v in %q", err, part)
		}
		for _, i := range idx {
			if i < 0 || i >= NodesPerBlade {
				return nil, fmt.Errorf("cname: node index %d out of range in %q", i, part)
			}
			out = append(out, Node(blade.Col(), blade.Row(), blade.ChassisIndex(), blade.SlotIndex(), i))
		}
	}
	return out, nil
}

// splitTopLevel splits on commas outside brackets.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// expandInts parses "0-2,5" into [0 1 2 5].
func expandInts(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		if dash := strings.IndexByte(tok, '-'); dash > 0 {
			lo, err1 := strconv.Atoi(tok[:dash])
			hi, err2 := strconv.Atoi(tok[dash+1:])
			if err1 != nil || err2 != nil || hi < lo {
				return nil, fmt.Errorf("bad range %q", tok)
			}
			for v := lo; v <= hi; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad index %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}
