package cname

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Node-list compression. Schedulers never log thousand-node allocations
// as comma lists; they compress consecutive indices into bracketed
// ranges ("nid[00001-00012]" in Slurm). This file implements the
// analogous compression over cnames, grouping nodes by blade:
//
//	c0-0c0s0n[0-3],c0-0c0s1n[0,2],c0-0c1s4n2
//
// Compression is exact: Expand(Compress(nodes)) returns the same set.

// CompressNodeList renders a set of node-level names compactly. The
// input is deduplicated and sorted; non-node names are ignored.
//
// This sits on the scheduler-log render hot path (every simulated job
// logs its allocation twice), so it works off one sorted slice and one
// output buffer instead of a per-blade map and fmt calls. Scheduler
// allocations arrive already sorted, in which case no sorting happens
// at all.
func CompressNodeList(nodes []Name) string {
	// Scheduler allocations arrive as already-sorted node-level slices;
	// detect that in one scan and render straight off the input with no
	// intermediate copy.
	clean := true
	for i, n := range nodes {
		if n.level != LevelNode || (i > 0 && Compare(nodes[i-1], n) > 0) {
			clean = false
			break
		}
	}
	sorted := nodes
	if !clean {
		sorted = make([]Name, 0, len(nodes))
		for _, n := range nodes {
			if n.level == LevelNode {
				sorted = append(sorted, n)
			}
		}
		inOrder := true
		for i := 1; i < len(sorted); i++ {
			if Compare(sorted[i-1], sorted[i]) > 0 {
				inOrder = false
				break
			}
		}
		if !inOrder {
			sort.Slice(sorted, func(i, j int) bool { return Compare(sorted[i], sorted[j]) < 0 })
		}
	}
	if len(sorted) == 0 {
		return ""
	}
	// Sorted physical order puts each blade's nodes in one contiguous
	// run with ascending (possibly duplicated) node indices.
	buf := make([]byte, 0, len(sorted)*12)
	var idx []int
	for i := 0; i < len(sorted); {
		blade := sorted[i].BladeName()
		j := i
		idx = idx[:0]
		for ; j < len(sorted) && sorted[j].BladeName() == blade; j++ {
			if v := sorted[j].node; len(idx) == 0 || idx[len(idx)-1] != v {
				idx = append(idx, v)
			}
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendName(buf, blade)
		buf = append(buf, 'n')
		if len(idx) == 1 {
			buf = strconv.AppendInt(buf, int64(idx[0]), 10)
		} else {
			buf = append(buf, '[')
			buf = appendIntRanges(buf, idx)
			buf = append(buf, ']')
		}
		i = j
	}
	return string(buf)
}

// appendIntRanges renders sorted distinct ints as "0-2,5" into buf.
func appendIntRanges(buf []byte, idx []int) []byte {
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && idx[j+1] == idx[j]+1 {
			j++
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(idx[i]), 10)
		if j > i {
			buf = append(buf, '-')
			buf = strconv.AppendInt(buf, int64(idx[j]), 10)
		}
		i = j + 1
	}
	return buf
}

// ExpandNodeList inverts CompressNodeList. It also accepts plain
// comma-separated cnames (the uncompressed legacy form).
//
// This is the parsing counterpart of the scheduler-log hot path (every
// job_start/job_end/placement record carries a node list), so parts and
// index tokens are walked by position rather than materialised with
// strings.Split.
func ExpandNodeList(s string) ([]Name, error) {
	if s == "" {
		return nil, nil
	}
	out := make([]Name, 0, strings.Count(s, ",")+2)
	for start := 0; start <= len(s); {
		end := topLevelComma(s, start)
		part := s[start:end]
		start = end + 1
		if part == "" {
			continue
		}
		br := strings.IndexByte(part, '[')
		if br < 0 {
			n, err := Parse(part)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
			continue
		}
		if !strings.HasSuffix(part, "]") || br == 0 || part[br-1] != 'n' {
			return nil, fmt.Errorf("cname: bad node list part %q", part)
		}
		blade, err := Parse(part[:br-1])
		if err != nil {
			return nil, err
		}
		if blade.Level() != LevelBlade {
			return nil, fmt.Errorf("cname: node list prefix %q is not a blade", part[:br-1])
		}
		col, row, ch, sl := blade.Col(), blade.Row(), blade.ChassisIndex(), blade.SlotIndex()
		// The bracket body is "0-2,5"-style ranges; expand in place.
		body := part[br+1 : len(part)-1]
		for ti := 0; ti <= len(body); {
			var tok string
			if te := strings.IndexByte(body[ti:], ','); te < 0 {
				tok = body[ti:]
				ti = len(body) + 1
			} else {
				tok = body[ti : ti+te]
				ti += te + 1
			}
			if dash := strings.IndexByte(tok, '-'); dash > 0 {
				lo, err1 := strconv.Atoi(tok[:dash])
				hi, err2 := strconv.Atoi(tok[dash+1:])
				if err1 != nil || err2 != nil || hi < lo {
					return nil, fmt.Errorf("cname: bad range %q in %q", tok, part)
				}
				for v := lo; v <= hi; v++ {
					if v < 0 || v >= NodesPerBlade {
						return nil, fmt.Errorf("cname: node index %d out of range in %q", v, part)
					}
					out = append(out, Node(col, row, ch, sl, v))
				}
				continue
			}
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cname: bad index %q in %q", tok, part)
			}
			if v < 0 || v >= NodesPerBlade {
				return nil, fmt.Errorf("cname: node index %d out of range in %q", v, part)
			}
			out = append(out, Node(col, row, ch, sl, v))
		}
	}
	return out, nil
}

// topLevelComma returns the index of the first comma outside brackets
// at or after start, or len(s).
func topLevelComma(s string, start int) int {
	depth := 0
	for i := start; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				return i
			}
		}
	}
	return len(s)
}
