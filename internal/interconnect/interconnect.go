// Package interconnect models the high-speed network fabrics of the
// studied systems (Table I): the Aries dragonfly of the XC machines
// (S1, S3, S4) and the Gemini 3-D torus of S2. Blades host the router
// ASICs, so links connect blades; lanes within a link degrade and fail
// over independently — the "lane degrades" and "failed failovers" the
// paper's related work discusses, and the source of the HSN link errors
// that appear among the external early indicators (case studies 2, 4,
// 5).
//
// The model is structural: enough fabric to give every link error a
// real endpoint pair, a lane number, and a failover outcome, plus the
// benign lane-recovery chatter that floods production event logs
// without predicting node failures.
package interconnect

import (
	"fmt"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/rng"
	"hpcfail/internal/topology"
)

// Kind selects the fabric model.
type Kind int

const (
	// Dragonfly is the Aries topology: all-to-all among a chassis'
	// blades (green links), all-to-all among a cabinet's chassis (black
	// links), and global links between cabinets (blue links).
	Dragonfly Kind = iota
	// Torus3D is the Gemini topology: each blade links to its ±1
	// neighbours along three axes (slot, chassis, cabinet).
	Torus3D
)

// String names the fabric kind.
func (k Kind) String() string {
	switch k {
	case Dragonfly:
		return "dragonfly"
	case Torus3D:
		return "torus-3d"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindFor maps a Table I interconnect onto a fabric model.
func KindFor(ic topology.Interconnect) (Kind, bool) {
	switch ic {
	case topology.AriesDragonfly:
		return Dragonfly, true
	case topology.GeminiTorus:
		return Torus3D, true
	default:
		return 0, false // Infiniband (S5) is not modelled
	}
}

// LanesPerLink is the per-link lane count (Aries and Gemini both gang
// multiple SerDes lanes per link).
const LanesPerLink = 4

// Link is one bidirectional blade-to-blade connection.
type Link struct {
	A, B cname.Name // blade endpoints, A < B in cname order
}

// String renders "c0-0c0s0 <-> c0-0c0s1".
func (l Link) String() string { return l.A.String() + " <-> " + l.B.String() }

// Fabric is the instantiated network.
type Fabric struct {
	kind    Kind
	links   []Link
	byBlade map[cname.Name][]int // blade -> indexes into links
}

// New builds the fabric for a cluster.
func New(cluster *topology.Cluster, kind Kind) *Fabric {
	f := &Fabric{kind: kind, byBlade: map[cname.Name][]int{}}
	blades := cluster.Blades()
	addLink := func(a, b cname.Name) {
		if cname.Compare(b, a) < 0 {
			a, b = b, a
		}
		f.byBlade[a] = append(f.byBlade[a], len(f.links))
		f.byBlade[b] = append(f.byBlade[b], len(f.links))
		f.links = append(f.links, Link{A: a, B: b})
	}
	switch kind {
	case Dragonfly:
		f.buildDragonfly(blades, addLink)
	case Torus3D:
		f.buildTorus(blades, addLink)
	}
	return f
}

// buildDragonfly wires green links (all-to-all within a chassis),
// black links (chassis leaders within a cabinet) and blue links
// (cabinet leaders globally).
func (f *Fabric) buildDragonfly(blades []cname.Name, addLink func(a, b cname.Name)) {
	byChassis := map[cname.Name][]cname.Name{}
	var chassisOrder []cname.Name
	for _, b := range blades {
		ch := b.ChassisName()
		if _, ok := byChassis[ch]; !ok {
			chassisOrder = append(chassisOrder, ch)
		}
		byChassis[ch] = append(byChassis[ch], b)
	}
	// Green: all-to-all within each chassis.
	for _, ch := range chassisOrder {
		bs := byChassis[ch]
		for i := 0; i < len(bs); i++ {
			for j := i + 1; j < len(bs); j++ {
				addLink(bs[i], bs[j])
			}
		}
	}
	// Black: first blade of each chassis pair-wise within a cabinet.
	byCabinet := map[cname.Name][]cname.Name{}
	var cabinetOrder []cname.Name
	for _, ch := range chassisOrder {
		cab := ch.CabinetName()
		if _, ok := byCabinet[cab]; !ok {
			cabinetOrder = append(cabinetOrder, cab)
		}
		byCabinet[cab] = append(byCabinet[cab], byChassis[ch][0])
	}
	for _, cab := range cabinetOrder {
		leaders := byCabinet[cab]
		for i := 0; i < len(leaders); i++ {
			for j := i + 1; j < len(leaders); j++ {
				addLink(leaders[i], leaders[j])
			}
		}
	}
	// Blue: ring over cabinet leader blades (a single link for the
	// two-cabinet case, where the ring would double up).
	switch n := len(cabinetOrder); {
	case n == 2:
		addLink(byCabinet[cabinetOrder[0]][0], byCabinet[cabinetOrder[1]][0])
	case n > 2:
		for i := range cabinetOrder {
			a := byCabinet[cabinetOrder[i]][0]
			b := byCabinet[cabinetOrder[(i+1)%n]][0]
			if a != b {
				addLink(a, b)
			}
		}
	}
}

// buildTorus wires each blade to its +1 neighbour along the slot,
// chassis and cabinet axes (with wraparound), giving every interior
// blade six neighbours as in a 3-D torus.
func (f *Fabric) buildTorus(blades []cname.Name, addLink func(a, b cname.Name)) {
	index := map[cname.Name]bool{}
	for _, b := range blades {
		index[b] = true
	}
	// Dense axes derived from the blade coordinates.
	for _, b := range blades {
		// +slot neighbour (wrap within chassis).
		sn := cname.Blade(b.Col(), b.Row(), b.ChassisIndex(), (b.SlotIndex()+1)%cname.SlotsPerChassis)
		if index[sn] && sn != b {
			addLink(b, sn)
		}
		// +chassis neighbour (wrap within cabinet).
		ch := cname.Blade(b.Col(), b.Row(), (b.ChassisIndex()+1)%cname.ChassisPerCabinet, b.SlotIndex())
		if index[ch] && ch != b {
			addLink(b, ch)
		}
		// +cabinet-column neighbour (no wrap; rows chain columns).
		cb := cname.Blade(b.Col()+1, b.Row(), b.ChassisIndex(), b.SlotIndex())
		if index[cb] {
			addLink(b, cb)
		}
	}
}

// Kind returns the fabric model.
func (f *Fabric) Kind() Kind { return f.kind }

// NumLinks returns the link count.
func (f *Fabric) NumLinks() int { return len(f.links) }

// Links returns all links (shared slice; do not modify).
func (f *Fabric) Links() []Link { return f.links }

// BladeLinks returns the links incident to a blade.
func (f *Fabric) BladeLinks(blade cname.Name) []Link {
	idx := f.byBlade[blade]
	out := make([]Link, len(idx))
	for i, j := range idx {
		out[i] = f.links[j]
	}
	return out
}

// Degree returns a blade's link count.
func (f *Fabric) Degree(blade cname.Name) int { return len(f.byBlade[blade]) }

// FailoverOutcome is the result of a lane failure.
type FailoverOutcome int

const (
	// FailoverOK: traffic re-routed onto the surviving lanes.
	FailoverOK FailoverOutcome = iota
	// FailoverFailed: the re-route failed; the link is degraded until
	// maintenance (the "failed interconnect failovers" of the related
	// work).
	FailoverFailed
)

// String names the outcome.
func (o FailoverOutcome) String() string {
	if o == FailoverFailed {
		return "failover_failed"
	}
	return "failover_ok"
}

// LaneEvent builds the ERD record for a lane degradation on a link,
// attributed to one endpoint blade (the one whose controller reported
// it) with the peer, lane and failover outcome as structured fields.
func LaneEvent(t time.Time, reporter cname.Name, l Link, lane int, outcome FailoverOutcome) events.Record {
	peer := l.A
	if peer == reporter {
		peer = l.B
	}
	sev := events.SevWarning
	if outcome == FailoverFailed {
		sev = events.SevError
	}
	r := events.Record{
		Time:      t,
		Stream:    events.StreamERD,
		Component: reporter,
		Severity:  sev,
		Category:  "link_error",
		Msg: fmt.Sprintf("link_error: HSN lane %d degraded on %s (peer %s, %s)",
			lane, reporter, peer, outcome),
	}
	r.SetField("lane", fmt.Sprintf("%d", lane))
	r.SetField("peer", peer.String())
	r.SetField("outcome", outcome.String())
	return r
}

// RandomLaneEvent degrades a random lane on a random link of the blade
// (or, if the blade has no links, returns ok=false). Failovers succeed
// with probability pFailoverOK.
func (f *Fabric) RandomLaneEvent(t time.Time, blade cname.Name, pFailoverOK float64, r *rng.Rand) (events.Record, bool) {
	links := f.byBlade[blade]
	if len(links) == 0 {
		return events.Record{}, false
	}
	l := f.links[links[r.Intn(len(links))]]
	outcome := FailoverOK
	if !r.Bool(pFailoverOK) {
		outcome = FailoverFailed
	}
	return LaneEvent(t, blade, l, r.Intn(LanesPerLink), outcome), true
}
