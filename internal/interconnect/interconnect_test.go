package interconnect

import (
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/rng"
	"hpcfail/internal/topology"
)

func cluster(nodes int) *topology.Cluster {
	return topology.New(topology.Spec{ID: "T", Nodes: nodes, CabinetCols: 2})
}

func TestKindFor(t *testing.T) {
	if k, ok := KindFor(topology.AriesDragonfly); !ok || k != Dragonfly {
		t.Error("Aries should map to dragonfly")
	}
	if k, ok := KindFor(topology.GeminiTorus); !ok || k != Torus3D {
		t.Error("Gemini should map to torus")
	}
	if _, ok := KindFor(topology.Infiniband); ok {
		t.Error("Infiniband is not modelled")
	}
	if Dragonfly.String() != "dragonfly" || Torus3D.String() != "torus-3d" || Kind(9).String() == "" {
		t.Error("kind names")
	}
}

// linkInvariants checks symmetric indexing and canonical endpoint order.
func linkInvariants(t *testing.T, f *Fabric, c *topology.Cluster) {
	t.Helper()
	seen := map[string]bool{}
	for _, l := range f.Links() {
		if cname.Compare(l.A, l.B) >= 0 {
			t.Fatalf("link endpoints not canonical: %v", l)
		}
		if seen[l.String()] {
			t.Fatalf("duplicate link %v", l)
		}
		seen[l.String()] = true
		// Both endpoints index the link.
		found := 0
		for _, bl := range f.BladeLinks(l.A) {
			if bl == l {
				found++
			}
		}
		for _, bl := range f.BladeLinks(l.B) {
			if bl == l {
				found++
			}
		}
		if found != 2 {
			t.Fatalf("link %v not indexed by both endpoints", l)
		}
	}
	// Every blade with nodes participates in the fabric.
	for _, b := range c.Blades() {
		if f.Degree(b) == 0 {
			t.Fatalf("blade %v isolated", b)
		}
	}
}

func TestDragonflyStructure(t *testing.T) {
	c := cluster(2 * cname.NodesPerCabinet) // two full cabinets
	f := New(c, Dragonfly)
	linkInvariants(t, f, c)
	// Green links alone: 3 chassis/cabinet * C(16,2)=120 → 360/cabinet.
	minGreen := 2 * 3 * 120
	if f.NumLinks() < minGreen {
		t.Errorf("links = %d, want >= %d green links", f.NumLinks(), minGreen)
	}
	// Within one chassis every blade pair is connected (all-to-all).
	b0 := cname.Blade(0, 0, 0, 0)
	if f.Degree(b0) < cname.SlotsPerChassis-1 {
		t.Errorf("chassis leader degree %d too small", f.Degree(b0))
	}
}

func TestTorusStructure(t *testing.T) {
	c := cluster(2 * cname.NodesPerCabinet)
	f := New(c, Torus3D)
	linkInvariants(t, f, c)
	// Interior blade: ±slot (2 via wrap), ±chassis (2 via wrap), ±cab.
	b := cname.Blade(0, 0, 1, 5)
	if d := f.Degree(b); d < 4 {
		t.Errorf("torus degree = %d, want >= 4", d)
	}
}

func TestLaneEventShape(t *testing.T) {
	l := Link{A: cname.MustParse("c0-0c0s0"), B: cname.MustParse("c0-0c0s1")}
	at := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	r := LaneEvent(at, l.B, l, 2, FailoverOK)
	if r.Category != "link_error" || !r.Stream.External() {
		t.Errorf("lane event: %+v", r)
	}
	if r.Field("peer") != "c0-0c0s0" || r.Field("lane") != "2" || r.Field("outcome") != "failover_ok" {
		t.Errorf("fields: %v", r.Fields)
	}
	if r.Severity != events.SevWarning {
		t.Error("successful failover should be a warning")
	}
	bad := LaneEvent(at, l.A, l, 0, FailoverFailed)
	if bad.Severity != events.SevError || bad.Field("peer") != "c0-0c0s1" {
		t.Errorf("failed failover: %+v", bad)
	}
}

func TestRandomLaneEvent(t *testing.T) {
	c := cluster(192)
	f := New(c, Dragonfly)
	r := rng.New(1)
	at := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	blade := c.Blades()[3]
	okCount, failCount := 0, 0
	for i := 0; i < 200; i++ {
		rec, ok := f.RandomLaneEvent(at, blade, 0.9, r)
		if !ok {
			t.Fatal("blade with links returned no event")
		}
		if rec.Component != blade {
			t.Fatalf("reporter mismatch: %v", rec.Component)
		}
		if rec.Field("outcome") == "failover_failed" {
			failCount++
		} else {
			okCount++
		}
	}
	if failCount == 0 || okCount == 0 {
		t.Errorf("outcome mix degenerate: ok=%d fail=%d", okCount, failCount)
	}
	// Unknown blade: no event.
	if _, ok := f.RandomLaneEvent(at, cname.MustParse("c9-9c0s0"), 0.9, r); ok {
		t.Error("foreign blade should have no links")
	}
}
