package chaos

import (
	"sync"
	"testing"
)

// TestFaultDeterminism: the fault verdict for a site is a pure function
// of (seed, stream, chunk, attempt) — identical across injectors with
// the same config, across repeated calls, and regardless of call order.
func TestFaultDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, IOFault: 0.3, Stall: 0.2, Panic: 0.2}
	a, b := New(cfg), New(cfg)

	type verdict struct {
		read0, read1 bool
		f0, f1       Fault
	}
	collect := func(in *Injector, streams []string) map[string]verdict {
		out := map[string]verdict{}
		for _, s := range streams {
			out[s] = verdict{
				read0: in.ReadFault(s, 0) != nil,
				read1: in.ReadFault(s, 1) != nil,
				f0:    in.ChunkFault(s, 3, 0),
				f1:    in.ChunkFault(s, 3, 1),
			}
		}
		return out
	}
	streams := []string{"console-0", "console-1", "syslog-0", "event-0", "netwatch"}
	va := collect(a, streams)
	// b visits the streams in reverse order: verdicts must not shift.
	rev := make([]string, len(streams))
	for i, s := range streams {
		rev[len(streams)-1-i] = s
	}
	vb := collect(b, rev)
	for s, w := range va {
		if vb[s] != w {
			t.Fatalf("stream %s: verdict order-dependent: %+v vs %+v", s, w, vb[s])
		}
	}
	// Repeat calls agree with themselves.
	for _, s := range streams {
		if (a.ReadFault(s, 0) != nil) != va[s].read0 {
			t.Fatalf("stream %s: ReadFault not repeatable", s)
		}
		if a.ChunkFault(s, 3, 0) != va[s].f0 {
			t.Fatalf("stream %s: ChunkFault not repeatable", s)
		}
	}
	// Different seeds give different verdict sets (overwhelmingly likely
	// over 5 streams × several draws).
	c := New(Config{Seed: 43, IOFault: 0.3, Stall: 0.2, Panic: 0.2})
	if vc := collect(c, streams); func() bool {
		for s := range va {
			if va[s] != vc[s] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("seed 42 and 43 produced identical fault verdicts")
	}
}

// TestFaultZeroConfigIdentity: a zero config never fires and never
// accounts anything.
func TestFaultZeroConfigIdentity(t *testing.T) {
	in := New(Config{Seed: 7})
	for _, s := range []string{"a", "b", "c"} {
		for att := 0; att < 3; att++ {
			if err := in.ReadFault(s, att); err != nil {
				t.Fatalf("zero config ReadFault(%s,%d) = %v", s, att, err)
			}
			for ci := 0; ci < 4; ci++ {
				if f := in.ChunkFault(s, ci, att); f != FaultNone {
					t.Fatalf("zero config ChunkFault(%s,%d,%d) = %v", s, ci, att, f)
				}
			}
		}
	}
	if in.Report.Faults() != 0 {
		t.Fatalf("zero config accounted %d faults", in.Report.Faults())
	}
}

// TestFaultStickiness: transient sites fail attempt 0 only; sticky
// sites fail every attempt. With Sticky=-1 nothing survives a retry,
// with Sticky=1 everything does.
func TestFaultStickiness(t *testing.T) {
	transient := New(Config{Seed: 11, IOFault: 1, Panic: 1, Sticky: -1})
	if transient.ReadFault("s", 0) == nil {
		t.Fatal("IOFault=1 did not fire on attempt 0")
	}
	if err := transient.ReadFault("s", 1); err != nil {
		t.Fatalf("transient fault fired on retry: %v", err)
	}
	if f := transient.ChunkFault("s", 0, 0); f != FaultPanic {
		t.Fatalf("Panic=1 attempt 0 = %v", f)
	}
	if f := transient.ChunkFault("s", 0, 1); f != FaultNone {
		t.Fatalf("transient chunk fault fired on retry: %v", f)
	}

	sticky := New(Config{Seed: 11, IOFault: 1, Stall: 1, Sticky: 1})
	for att := 0; att < 4; att++ {
		if sticky.ReadFault("s", att) == nil {
			t.Fatalf("sticky read fault healed at attempt %d", att)
		}
		if f := sticky.ChunkFault("s", 0, att); f != FaultStall {
			t.Fatalf("sticky stall healed at attempt %d: %v", att, f)
		}
	}
}

// TestFaultPanicWinsOverStall: with both configured at 1, the verdict is
// a panic (fixed precedence keeps the matrix deterministic).
func TestFaultPanicWinsOverStall(t *testing.T) {
	in := New(Config{Seed: 3, Panic: 1, Stall: 1})
	if f := in.ChunkFault("s", 0, 0); f != FaultPanic {
		t.Fatalf("panic+stall verdict = %v, want panic", f)
	}
}

// TestFaultAccounting: Report counts every firing, under concurrency.
func TestFaultAccounting(t *testing.T) {
	in := New(Config{Seed: 5, IOFault: 1, Panic: 1, Sticky: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				in.ReadFault("s", 0)
				in.ChunkFault("s", i, 0)
			}
		}()
	}
	wg.Wait()
	if in.Report.IOFaults != 400 || in.Report.Panics != 400 {
		t.Fatalf("accounting: iofaults %d panics %d, want 400 each",
			in.Report.IOFaults, in.Report.Panics)
	}
	if in.Report.Corruptions() != 0 {
		t.Fatal("process faults leaked into Corruptions()")
	}
	if in.Report.Faults() != 800 {
		t.Fatalf("Faults() = %d, want 800", in.Report.Faults())
	}
}

// TestFaultParseSpec: flag grammar round-trips the new keys and modes.
func TestFaultParseSpec(t *testing.T) {
	cfg, err := ParseSpec("iofault=0.1,stall=0.05,panic=0.02,sticky=0.5,stalltime=20ms,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.IOFault != 0.1 || cfg.Stall != 0.05 || cfg.Panic != 0.02 ||
		cfg.Sticky != 0.5 || cfg.StallTime.Milliseconds() != 20 || cfg.Seed != 9 {
		t.Fatalf("parsed %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Fatal("fault-only config reports Enabled() = false")
	}
	for _, m := range []Mode{ModeIOFault, ModeStall, ModePanic} {
		mc, err := ParseSpec("mode=" + string(m) + ",intensity=0.3")
		if err != nil {
			t.Fatalf("mode=%s: %v", m, err)
		}
		want := ForMode(m, 0.3, 0)
		want.ShuffleWindow, mc.ShuffleWindow = 0, 0
		want.MaxSkew, mc.MaxSkew = 0, 0
		if mc != want {
			t.Fatalf("mode=%s parsed %+v want %+v", m, mc, want)
		}
	}
	// Explicit sticky=0 means never sticky (distinct from unset).
	cfg, err = ParseSpec("panic=1,sticky=0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(cfg)
	if f := in.ChunkFault("x", 0, 1); f != FaultNone {
		t.Fatalf("sticky=0 still sticky: %v", f)
	}
}
