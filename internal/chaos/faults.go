// Process-fault injection: where chaos.go corrupts the *data* flowing
// through the pipeline, this file corrupts the *pipeline itself* — I/O
// errors surfacing from the reader, and worker attempts that panic or
// stall. These drive the ingestion supervisor (retry, poison-chunk
// quarantine, circuit breaker) the same way the data operators drive the
// parser's quarantine path.
//
// Fault draws are stateless: each call re-derives its generator from
// (Seed, stream[, chunk]), so the verdict for a given site is identical
// no matter how many times it is asked, in what order, or from which
// goroutine — the property crash-resume equivalence rests on. A site
// that fires is additionally drawn sticky or transient: a transient
// fault fails only the first attempt (a retry heals it), a sticky fault
// fails every attempt (the supervisor must quarantine or trip).
package chaos

import (
	"fmt"
	"time"

	"hpcfail/internal/rng"
)

// The process-fault modes.
const (
	// ModeIOFault makes whole-file reads fail with an injected error.
	ModeIOFault Mode = "iofault"
	// ModeStall makes chunk-parse attempts hang until the watchdog.
	ModeStall Mode = "stall"
	// ModePanic makes chunk-parse attempts panic.
	ModePanic Mode = "panic"
)

// Fault is the verdict for one worker attempt at one chunk.
type Fault int

const (
	// FaultNone lets the attempt run normally.
	FaultNone Fault = iota
	// FaultPanic aborts the attempt with a panic.
	FaultPanic
	// FaultStall hangs the attempt until the supervisor's watchdog.
	FaultStall
)

// String names the fault for error messages.
func (f Fault) String() string {
	switch f {
	case FaultPanic:
		return "panic"
	case FaultStall:
		return "stall"
	default:
		return "none"
	}
}

// defaultSticky is the chance a firing fault site is sticky when
// Config.Sticky is left zero: three in four injected faults heal on
// retry, the rest exhaust the retry budget.
const defaultSticky = 0.25

// stickiness resolves the effective sticky probability.
func stickiness(p float64) float64 {
	if p == 0 {
		return defaultSticky
	}
	if p < 0 {
		return 0
	}
	return p
}

// faultRand derives the stateless generator for one fault site.
func (in *Injector) faultRand(site string) *rng.Rand {
	return rng.New(in.cfg.Seed).Split("fault/" + site)
}

// ReadFault decides whether reading the named stream's file fails on
// this attempt (0-based). A transient fault fails only attempt 0; a
// sticky one fails every attempt. The verdict is deterministic per
// (Seed, stream, attempt) and safe to call concurrently.
func (in *Injector) ReadFault(stream string, attempt int) error {
	if in.cfg.IOFault <= 0 {
		return nil
	}
	r := in.faultRand(stream)
	fire := r.Bool(in.cfg.IOFault)
	sticky := r.Bool(stickiness(in.cfg.Sticky))
	if !fire || (attempt > 0 && !sticky) {
		return nil
	}
	in.mu.Lock()
	in.Report.IOFaults++
	in.mu.Unlock()
	return fmt.Errorf("chaos: injected I/O fault reading %s (attempt %d)", stream, attempt)
}

// ChunkFault decides whether a worker's attempt (0-based) at chunk ci of
// the named stream panics, stalls, or runs clean. As with ReadFault the
// verdict is deterministic per (Seed, stream, ci, attempt) and safe to
// call from concurrent workers.
func (in *Injector) ChunkFault(stream string, ci, attempt int) Fault {
	if in.cfg.Panic <= 0 && in.cfg.Stall <= 0 {
		return FaultNone
	}
	r := in.faultRand(fmt.Sprintf("%s/chunk%d", stream, ci))
	// Fixed draw order keeps the verdict stable whichever operator is
	// configured.
	panics := r.Bool(in.cfg.Panic)
	stalls := r.Bool(in.cfg.Stall)
	sticky := r.Bool(stickiness(in.cfg.Sticky))
	if attempt > 0 && !sticky {
		return FaultNone
	}
	var f Fault
	switch {
	case panics:
		f = FaultPanic
	case stalls:
		f = FaultStall
	default:
		return FaultNone
	}
	in.mu.Lock()
	if f == FaultPanic {
		in.Report.Panics++
	} else {
		in.Report.Stalls++
	}
	in.mu.Unlock()
	return f
}

// StallTime is the configured real-sleep duration for injected stalls;
// zero keeps stalls virtual (the supervisor records a watchdog timeout
// without any wall-clock wait — the deterministic default for tests).
func (in *Injector) StallTime() time.Duration { return in.cfg.StallTime }
