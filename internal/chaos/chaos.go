// Package chaos is a seeded, deterministic log-stream fault injector.
// It reproduces the production logging discrepancies the paper lists as
// challenge #1 — noisy, incomplete and partially missing logs — as
// composable corruption operators over both rendered text log lines and
// structured events.Record streams:
//
//   - whole-line drops and whole-stream loss (rotated-away or unshipped
//     files),
//   - mid-line truncation (partial writes at rotation or crash),
//   - byte garbling (transport corruption, encoding damage),
//   - line duplication (at-least-once shippers),
//   - bounded out-of-order shuffling (multi-writer interleaving, racing
//     forwarders),
//   - clock skew (drifting node clocks),
//   - interleaved partial writes (two writers sharing one fd without
//     line buffering).
//
// Every injector is seeded through internal/rng and splits one child
// stream per log stream, so corruption is bit-identical for a given
// (seed, stream) pair regardless of the order streams are processed in.
// The injector accounts everything it does in a Report — the ground
// truth the robustness experiments score ingestion against.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hpcfail/internal/events"
	"hpcfail/internal/rng"
)

// tsFormat mirrors loggen's ISO timestamp; torqueTSFormat its Torque
// accounting variant. The clock-skew operator rewrites whichever prefix
// it recognises.
const (
	tsFormat       = "2006-01-02T15:04:05.000000Z07:00"
	torqueTSFormat = "01/02/2006 15:04:05.000000"
)

// Mode names one corruption operator for single-axis sweeps.
type Mode string

// The sweepable corruption modes.
const (
	ModeDrop       Mode = "drop"
	ModeTruncate   Mode = "truncate"
	ModeGarble     Mode = "garble"
	ModeDuplicate  Mode = "duplicate"
	ModeShuffle    Mode = "shuffle"
	ModeStreamLoss Mode = "streamloss"
	ModeClockSkew  Mode = "clockskew"
	ModeInterleave Mode = "interleave"
)

// AllModes lists every corruption mode in sweep order. The data
// operators come first, then the process-fault modes (faults.go).
func AllModes() []Mode {
	return []Mode{ModeDrop, ModeTruncate, ModeGarble, ModeDuplicate,
		ModeShuffle, ModeStreamLoss, ModeClockSkew, ModeInterleave,
		ModeIOFault, ModeStall, ModePanic}
}

// Config holds per-operator intensities. Each probability field is the
// per-line (per-stream for StreamLoss) chance in [0, 1] that the
// operator fires. The zero Config injects nothing.
type Config struct {
	// Seed drives all randomness; same Config, same corruption.
	Seed uint64
	// Drop removes whole lines (or records).
	Drop float64
	// Truncate cuts lines mid-way (records lose their message tail and
	// structured fields).
	Truncate float64
	// Garble overwrites a few bytes of the line (or message) with
	// arbitrary non-newline bytes.
	Garble float64
	// Duplicate emits the line (or record) twice.
	Duplicate float64
	// Shuffle displaces the line (or record) forward by up to
	// ShuffleWindow positions — bounded out-of-order delivery.
	Shuffle float64
	// ShuffleWindow bounds the displacement distance (default 8).
	ShuffleWindow int
	// StreamLoss drops an entire stream wholesale.
	StreamLoss float64
	// ClockSkew rewrites the line's (or record's) timestamp by a uniform
	// offset in [-MaxSkew, +MaxSkew].
	ClockSkew float64
	// MaxSkew bounds the skew magnitude (default 2 minutes).
	MaxSkew time.Duration
	// Interleave splits the line at a random point and interleaves the
	// two halves with the following line, as two unsynchronised writers
	// sharing a descriptor would.
	Interleave float64
	// IOFault makes whole-file reads fail (per-stream chance) with an
	// injected error from the reader seam.
	IOFault float64
	// Stall makes a chunk-parse attempt hang until the supervisor's
	// watchdog (per-chunk chance).
	Stall float64
	// Panic makes a chunk-parse attempt panic (per-chunk chance).
	Panic float64
	// Sticky is the chance a firing fault site is sticky — failing
	// every retry instead of only the first attempt. Zero takes the
	// default 0.25; negative means never sticky.
	Sticky float64
	// StallTime makes injected stalls really sleep this long (so a real
	// watchdog fires); zero keeps them virtual and deterministic.
	StallTime time.Duration
}

// ForMode builds a single-operator Config at the given intensity — the
// chaos-matrix sweep axis.
func ForMode(m Mode, intensity float64, seed uint64) Config {
	cfg := Config{Seed: seed, ShuffleWindow: 8, MaxSkew: 2 * time.Minute}
	switch m {
	case ModeDrop:
		cfg.Drop = intensity
	case ModeTruncate:
		cfg.Truncate = intensity
	case ModeGarble:
		cfg.Garble = intensity
	case ModeDuplicate:
		cfg.Duplicate = intensity
	case ModeShuffle:
		cfg.Shuffle = intensity
	case ModeStreamLoss:
		cfg.StreamLoss = intensity
	case ModeClockSkew:
		cfg.ClockSkew = intensity
	case ModeInterleave:
		cfg.Interleave = intensity
	case ModeIOFault:
		cfg.IOFault = intensity
	case ModeStall:
		cfg.Stall = intensity
	case ModePanic:
		cfg.Panic = intensity
	}
	return cfg
}

// Report is the injector's ground-truth account of what it corrupted.
type Report struct {
	// Lines is the number of input lines (or records) seen.
	Lines int
	// Emitted is the number of output lines (or records) produced.
	Emitted     int
	Dropped     int
	Truncated   int
	Garbled     int
	Duplicated  int
	Shuffled    int
	Skewed      int
	Interleaved int
	// StreamsLost counts whole streams removed by StreamLoss; their
	// lines are included in Dropped.
	StreamsLost int
	// IOFaults, Stalls and Panics count injected process faults (the
	// seams in faults.go) — attempts failed, not lines damaged, so they
	// are excluded from Corruptions.
	IOFaults int
	Stalls   int
	Panics   int
}

// Add accumulates another report into r.
func (r *Report) Add(o Report) {
	r.Lines += o.Lines
	r.Emitted += o.Emitted
	r.Dropped += o.Dropped
	r.Truncated += o.Truncated
	r.Garbled += o.Garbled
	r.Duplicated += o.Duplicated
	r.Shuffled += o.Shuffled
	r.Skewed += o.Skewed
	r.Interleaved += o.Interleaved
	r.StreamsLost += o.StreamsLost
	r.IOFaults += o.IOFaults
	r.Stalls += o.Stalls
	r.Panics += o.Panics
}

// Corruptions is the total count of corruption events applied.
func (r *Report) Corruptions() int {
	return r.Dropped + r.Truncated + r.Garbled + r.Duplicated +
		r.Shuffled + r.Skewed + r.Interleaved
}

// Faults is the total count of injected process faults.
func (r *Report) Faults() int { return r.IOFaults + r.Stalls + r.Panics }

// String renders a compact one-line summary. Process-fault counts are
// appended only when any fired, so data-only reports render as before.
func (r *Report) String() string {
	s := fmt.Sprintf("chaos: %d/%d lines emitted (dropped %d, truncated %d, garbled %d, duplicated %d, shuffled %d, skewed %d, interleaved %d, streams lost %d)",
		r.Emitted, r.Lines, r.Dropped, r.Truncated, r.Garbled, r.Duplicated,
		r.Shuffled, r.Skewed, r.Interleaved, r.StreamsLost)
	if r.Faults() > 0 {
		s += fmt.Sprintf(" + %d process faults (iofaults %d, stalls %d, panics %d)",
			r.Faults(), r.IOFaults, r.Stalls, r.Panics)
	}
	return s
}

// Injector applies a Config to streams and accumulates the Report.
// The data operators (CorruptLines, CorruptRecords, CorruptAll) are not
// safe for concurrent use; the process-fault seams (ReadFault,
// ChunkFault) are, so concurrent workers may consult them — but not
// while a data operator is running.
type Injector struct {
	cfg Config
	// mu guards Report mutation from the concurrent fault seams.
	mu sync.Mutex
	// Report accumulates ground truth across CorruptLines /
	// CorruptRecords calls and fault-seam firings.
	Report Report
}

// New builds an injector. Zero-valued window and skew fields take their
// defaults here.
func New(cfg Config) *Injector {
	if cfg.ShuffleWindow <= 0 {
		cfg.ShuffleWindow = 8
	}
	if cfg.MaxSkew <= 0 {
		cfg.MaxSkew = 2 * time.Minute
	}
	return &Injector{cfg: cfg}
}

// Config returns the injector's effective configuration.
func (in *Injector) Config() Config { return in.cfg }

// rand derives the deterministic per-stream generator: corruption of one
// stream never depends on how many draws another stream consumed.
func (in *Injector) rand(stream string) *rng.Rand {
	return rng.New(in.cfg.Seed).Split("chaos/" + stream)
}

// CorruptLines corrupts one stream's rendered text lines. The stream
// label keys the deterministic random stream (use the log file name).
func (in *Injector) CorruptLines(stream string, lines []string) []string {
	r := in.rand(stream)
	rep := Report{Lines: len(lines)}
	defer func() { in.Report.Add(rep) }()

	if r.Bool(in.cfg.StreamLoss) {
		rep.StreamsLost++
		rep.Dropped += len(lines)
		return nil
	}

	out := make([]string, 0, len(lines))
	for i := 0; i < len(lines); i++ {
		l := lines[i]
		if r.Bool(in.cfg.Drop) {
			rep.Dropped++
			continue
		}
		if in.cfg.Interleave > 0 && i+1 < len(lines) && r.Bool(in.cfg.Interleave) {
			// Two writers race on one descriptor: the first line's write
			// is split around the whole second line.
			cut := 1 + r.Intn(maxInt(1, len(l)-1))
			out = append(out, l[:cut]+lines[i+1], l[cut:])
			rep.Interleaved++
			i++ // the next line was consumed
			continue
		}
		if r.Bool(in.cfg.Truncate) && len(l) > 4 {
			l = l[:1+r.Intn(len(l)-1)]
			rep.Truncated++
		}
		if r.Bool(in.cfg.Garble) && len(l) > 0 {
			l = garble(r, l)
			rep.Garbled++
		}
		if r.Bool(in.cfg.ClockSkew) {
			if skewed, ok := skewLine(r, l, in.cfg.MaxSkew); ok {
				l = skewed
				rep.Skewed++
			}
		}
		out = append(out, l)
		if r.Bool(in.cfg.Duplicate) {
			out = append(out, l)
			rep.Duplicated++
		}
	}
	if perm, moved := shuffle(r, in.cfg.Shuffle, in.cfg.ShuffleWindow, len(out)); perm != nil {
		shuffled := make([]string, len(out))
		for dst, src := range perm {
			shuffled[dst] = out[src]
		}
		out = shuffled
		rep.Shuffled = moved
	}
	rep.Emitted = len(out)
	return out
}

// CorruptRecords corrupts a structured record stream in place of the
// text path — the shape the streaming Watcher consumes. Records are
// deep-enough copied that callers' slices are never mutated.
func (in *Injector) CorruptRecords(recs []events.Record) []events.Record {
	r := in.rand("records")
	rep := Report{Lines: len(recs)}
	defer func() { in.Report.Add(rep) }()

	if r.Bool(in.cfg.StreamLoss) {
		rep.StreamsLost++
		rep.Dropped += len(recs)
		return nil
	}

	out := make([]events.Record, 0, len(recs))
	for i := range recs {
		if r.Bool(in.cfg.Drop) {
			rep.Dropped++
			continue
		}
		rec := recs[i]
		if r.Bool(in.cfg.Truncate) {
			// A truncated record keeps its prefix (time, component,
			// category head) but loses the message tail and every
			// structured field — the trace above all.
			if len(rec.Msg) > 4 {
				rec.Msg = rec.Msg[:len(rec.Msg)/2]
			}
			rec.Fields = nil
			rep.Truncated++
		}
		if r.Bool(in.cfg.Garble) {
			rec.Msg = garble(r, rec.Msg)
			// Garbling hits the category token half the time — the
			// misread the pipeline must survive.
			if r.Bool(0.5) && rec.Category != "" {
				rec.Category = garble(r, rec.Category)
			}
			rep.Garbled++
		}
		if r.Bool(in.cfg.ClockSkew) {
			rec.Time = rec.Time.Add(skewOffset(r, in.cfg.MaxSkew))
			rep.Skewed++
		}
		out = append(out, rec)
		if r.Bool(in.cfg.Duplicate) {
			out = append(out, rec)
			rep.Duplicated++
		}
	}
	if perm, moved := shuffle(r, in.cfg.Shuffle, in.cfg.ShuffleWindow, len(out)); perm != nil {
		shuffled := make([]events.Record, len(out))
		for dst, src := range perm {
			shuffled[dst] = out[src]
		}
		out = shuffled
		rep.Shuffled = moved
	}
	rep.Emitted = len(out)
	return out
}

// shuffle computes a bounded out-of-order permutation: each position
// fires with probability p and is pushed forward by a random offset up
// to window; a stable sort on the displaced keys then bounds every
// element's net movement by the window. Returns perm (output index ->
// input index; nil when nothing moved) and the number of displaced
// elements.
func shuffle(r *rng.Rand, p float64, window, n int) (perm []int, moved int) {
	if p <= 0 || n < 2 {
		return nil, 0
	}
	keys := make([]int, n)
	fired := false
	for i := range keys {
		keys[i] = i
		if r.Bool(p) {
			keys[i] += 1 + r.Intn(window)
			fired = true
		}
	}
	if !fired {
		return nil, 0
	}
	perm = make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
	for dst, src := range perm {
		if dst != src {
			moved++
		}
	}
	if moved == 0 {
		return nil, 0
	}
	return perm, moved
}

// garble overwrites 1–4 bytes with arbitrary non-newline bytes.
func garble(r *rng.Rand, s string) string {
	if len(s) == 0 {
		return s
	}
	b := []byte(s)
	for k := 1 + r.Intn(4); k > 0; k-- {
		pos := r.Intn(len(b))
		c := byte(1 + r.Intn(255))
		if c == '\n' {
			c = '?'
		}
		b[pos] = c
	}
	return string(b)
}

// skewOffset draws a uniform offset in [-max, +max].
func skewOffset(r *rng.Rand, max time.Duration) time.Duration {
	return time.Duration(r.Int63n(int64(2*max)+1)) - max
}

// skewLine rewrites a recognised timestamp prefix (ISO or Torque) by a
// random offset. Lines with no recognisable timestamp are left alone.
func skewLine(r *rng.Rand, line string, max time.Duration) (string, bool) {
	if sp := strings.IndexByte(line, ' '); sp > 0 {
		if ts, err := time.Parse(tsFormat, line[:sp]); err == nil {
			return ts.Add(skewOffset(r, max)).UTC().Format(tsFormat) + line[sp:], true
		}
	}
	if semi := strings.IndexByte(line, ';'); semi > 0 {
		if ts, err := time.Parse(torqueTSFormat, line[:semi]); err == nil {
			return ts.Add(skewOffset(r, max)).Format(torqueTSFormat) + line[semi:], true
		}
	}
	return line, false
}

// CorruptAll corrupts a per-file line map (as produced by
// loggen.RenderAll), visiting files in sorted-name order so the overall
// Report is deterministic. Streams removed by StreamLoss are deleted
// from the result.
func (in *Injector) CorruptAll(files map[string][]string) map[string][]string {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string][]string, len(files))
	for _, name := range names {
		lost := in.Report.StreamsLost
		lines := in.CorruptLines(name, files[name])
		if in.Report.StreamsLost > lost {
			continue
		}
		out[name] = lines
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ParseSpec parses a -chaos flag value. Two shapes are accepted:
//
//	mode=<drop|truncate|garble|duplicate|shuffle|streamloss|clockskew|interleave|iofault|stall|panic>,intensity=0.2[,seed=7]
//	drop=0.1,truncate=0.05,garble=0.02,duplicate=0.01,shuffle=0.1,window=8,streamloss=0,clockskew=0.05,maxskew=2m,interleave=0.02,iofault=0.1,stall=0.02,panic=0.02,sticky=0.25,stalltime=0s,seed=7
//
// An empty spec returns the zero Config (inject nothing).
func ParseSpec(spec string) (Config, error) {
	cfg := Config{ShuffleWindow: 8, MaxSkew: 2 * time.Minute}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	var mode Mode
	intensity := -1.0
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		eq := strings.IndexByte(tok, '=')
		if eq <= 0 {
			return cfg, fmt.Errorf("chaos: bad token %q (want key=value)", tok)
		}
		key, val := tok[:eq], tok[eq+1:]
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		case "mode":
			mode = Mode(val)
			if !validMode(mode) {
				err = fmt.Errorf("unknown mode %q", val)
			}
		case "intensity":
			intensity, err = parseProb(val)
		case "drop":
			cfg.Drop, err = parseProb(val)
		case "truncate", "trunc":
			cfg.Truncate, err = parseProb(val)
		case "garble":
			cfg.Garble, err = parseProb(val)
		case "duplicate", "dup":
			cfg.Duplicate, err = parseProb(val)
		case "shuffle":
			cfg.Shuffle, err = parseProb(val)
		case "window":
			cfg.ShuffleWindow, err = strconv.Atoi(val)
			if err == nil && cfg.ShuffleWindow <= 0 {
				err = fmt.Errorf("window must be positive")
			}
		case "streamloss", "loss":
			cfg.StreamLoss, err = parseProb(val)
		case "clockskew", "skew":
			cfg.ClockSkew, err = parseProb(val)
		case "maxskew":
			cfg.MaxSkew, err = time.ParseDuration(val)
		case "interleave":
			cfg.Interleave, err = parseProb(val)
		case "iofault":
			cfg.IOFault, err = parseProb(val)
		case "stall":
			cfg.Stall, err = parseProb(val)
		case "panic":
			cfg.Panic, err = parseProb(val)
		case "sticky":
			cfg.Sticky, err = parseProb(val)
			if err == nil && cfg.Sticky == 0 {
				cfg.Sticky = -1 // explicit 0 means never sticky
			}
		case "stalltime":
			cfg.StallTime, err = time.ParseDuration(val)
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: %s: %v", tok, err)
		}
	}
	if mode != "" {
		if intensity < 0 {
			return cfg, fmt.Errorf("chaos: mode=%s needs intensity=", mode)
		}
		modeCfg := ForMode(mode, intensity, cfg.Seed)
		modeCfg.ShuffleWindow = cfg.ShuffleWindow
		modeCfg.MaxSkew = cfg.MaxSkew
		modeCfg.Sticky = cfg.Sticky
		modeCfg.StallTime = cfg.StallTime
		return modeCfg, nil
	}
	if intensity >= 0 {
		return cfg, fmt.Errorf("chaos: intensity= needs mode=")
	}
	return cfg, nil
}

func validMode(m Mode) bool {
	for _, v := range AllModes() {
		if m == v {
			return true
		}
	}
	return false
}

func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", v)
	}
	return v, nil
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.Drop > 0 || c.Truncate > 0 || c.Garble > 0 || c.Duplicate > 0 ||
		c.Shuffle > 0 || c.StreamLoss > 0 || c.ClockSkew > 0 || c.Interleave > 0 ||
		c.IOFault > 0 || c.Stall > 0 || c.Panic > 0
}
