package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"hpcfail/internal/events"
)

func sampleLines(n int) []string {
	out := make([]string, n)
	base := time.Date(2015, 3, 2, 10, 0, 0, 0, time.UTC)
	for i := range out {
		out[i] = base.Add(time.Duration(i)*time.Second).Format(tsFormat) +
			" c0-0c0s1n2 kernel: <3> Machine Check Exception bank=4"
	}
	return out
}

func sampleRecords(n int) []events.Record {
	out := make([]events.Record, n)
	base := time.Date(2015, 3, 2, 10, 0, 0, 0, time.UTC)
	for i := range out {
		out[i] = events.Record{
			Time: base.Add(time.Duration(i) * time.Second), Stream: events.StreamConsole,
			Category: "mce", Severity: events.SevError, Msg: "Machine Check Exception",
		}
		out[i].SetField("bank", "4")
	}
	return out
}

func TestZeroConfigIsIdentity(t *testing.T) {
	in := New(Config{Seed: 1})
	lines := sampleLines(50)
	got := in.CorruptLines("console.log", lines)
	if !reflect.DeepEqual(got, lines) {
		t.Fatal("zero config modified lines")
	}
	if in.Report.Corruptions() != 0 || in.Report.Emitted != 50 {
		t.Fatalf("zero config reported corruption: %+v", in.Report)
	}
	recs := sampleRecords(20)
	got2 := New(Config{Seed: 1}).CorruptRecords(recs)
	if !reflect.DeepEqual(got2, recs) {
		t.Fatal("zero config modified records")
	}
}

func TestDeterministicAcrossRunsAndOrder(t *testing.T) {
	cfg := Config{Seed: 99, Drop: 0.1, Truncate: 0.1, Garble: 0.1,
		Duplicate: 0.1, Shuffle: 0.1, ClockSkew: 0.1, Interleave: 0.05}
	lines := sampleLines(200)

	a := New(cfg)
	outA1 := a.CorruptLines("console.log", lines)
	outA2 := a.CorruptLines("messages.log", lines)

	// Reverse processing order: per-stream output must be unchanged.
	b := New(cfg)
	outB2 := b.CorruptLines("messages.log", lines)
	outB1 := b.CorruptLines("console.log", lines)

	if !reflect.DeepEqual(outA1, outB1) || !reflect.DeepEqual(outA2, outB2) {
		t.Fatal("corruption depends on stream processing order")
	}
	if a.Report != b.Report {
		t.Fatalf("reports differ: %+v vs %+v", a.Report, b.Report)
	}
	if a.Report.Corruptions() == 0 {
		t.Fatal("expected some corruption at these intensities")
	}
}

func TestDropAccounting(t *testing.T) {
	in := New(Config{Seed: 7, Drop: 0.3})
	lines := sampleLines(500)
	out := in.CorruptLines("console.log", lines)
	if len(out)+in.Report.Dropped != len(lines) {
		t.Fatalf("emitted %d + dropped %d != %d", len(out), in.Report.Dropped, len(lines))
	}
	if in.Report.Dropped < 100 || in.Report.Dropped > 200 {
		t.Errorf("dropped %d of 500 at p=0.3, want ~150", in.Report.Dropped)
	}
	if in.Report.Emitted != len(out) {
		t.Errorf("Emitted %d != len(out) %d", in.Report.Emitted, len(out))
	}
}

func TestDuplicateAccounting(t *testing.T) {
	in := New(Config{Seed: 7, Duplicate: 0.2})
	lines := sampleLines(500)
	out := in.CorruptLines("console.log", lines)
	if len(out) != len(lines)+in.Report.Duplicated {
		t.Fatalf("emitted %d, want %d + %d dups", len(out), len(lines), in.Report.Duplicated)
	}
	if in.Report.Duplicated == 0 {
		t.Error("no duplicates at p=0.2")
	}
}

func TestTruncateProducesPrefixes(t *testing.T) {
	in := New(Config{Seed: 3, Truncate: 1})
	lines := sampleLines(20)
	out := in.CorruptLines("console.log", lines)
	if in.Report.Truncated != 20 {
		t.Fatalf("truncated %d, want all 20", in.Report.Truncated)
	}
	for i, l := range out {
		if !strings.HasPrefix(lines[i], l) || len(l) >= len(lines[i]) {
			t.Fatalf("line %d is not a proper prefix: %q", i, l)
		}
	}
}

func TestStreamLoss(t *testing.T) {
	in := New(Config{Seed: 11, StreamLoss: 1})
	out := in.CorruptLines("erd.log", sampleLines(40))
	if out != nil || in.Report.StreamsLost != 1 || in.Report.Dropped != 40 {
		t.Fatalf("stream loss: out=%d report=%+v", len(out), in.Report)
	}
}

func TestClockSkewRewritesTimestamps(t *testing.T) {
	in := New(Config{Seed: 5, ClockSkew: 1, MaxSkew: time.Minute})
	lines := sampleLines(30)
	out := in.CorruptLines("console.log", lines)
	if in.Report.Skewed != 30 {
		t.Fatalf("skewed %d, want 30", in.Report.Skewed)
	}
	moved := 0
	for i, l := range out {
		sp := strings.IndexByte(l, ' ')
		ts, err := time.Parse(tsFormat, l[:sp])
		if err != nil {
			t.Fatalf("skewed line %d has unparseable timestamp: %v", i, err)
		}
		orig, _ := time.Parse(tsFormat, lines[i][:strings.IndexByte(lines[i], ' ')])
		d := ts.Sub(orig)
		if d < -time.Minute || d > time.Minute {
			t.Fatalf("skew %v out of bounds", d)
		}
		if d != 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no timestamp actually moved")
	}
	// Torque-format timestamps are recognised too.
	tline := "03/02/2015 10:15:30.000000;E;397.sdb;Action=job_end"
	if skewed, ok := skewLine(New(Config{Seed: 1}).rand("x"), tline, time.Minute); !ok {
		t.Error("torque timestamp not recognised")
	} else if !strings.Contains(skewed, ";E;397.sdb;") {
		t.Errorf("torque payload damaged: %q", skewed)
	}
}

func TestShuffleIsBounded(t *testing.T) {
	in := New(Config{Seed: 9, Shuffle: 0.5, ShuffleWindow: 4})
	lines := sampleLines(300)
	out := in.CorruptLines("console.log", lines)
	if in.Report.Shuffled == 0 {
		t.Fatal("no shuffling at p=0.5")
	}
	if len(out) != len(lines) {
		t.Fatal("shuffle changed line count")
	}
	// Every line survives, displaced by at most 2*window (two swaps can
	// compound), and the multiset is preserved.
	pos := map[string][]int{}
	for i, l := range lines {
		pos[l] = append(pos[l], i)
	}
	for j, l := range out {
		idxs := pos[l]
		if len(idxs) == 0 {
			t.Fatalf("shuffle invented line %q", l)
		}
		best := idxs[0]
		for _, i := range idxs {
			if absInt(i-j) < absInt(best-j) {
				best = i
			}
		}
		if absInt(best-j) > 8 {
			t.Fatalf("line displaced by %d > 2*window", absInt(best-j))
		}
	}
}

func TestInterleaveSplitsAcrossNeighbour(t *testing.T) {
	in := New(Config{Seed: 13, Interleave: 1})
	lines := []string{"aaaa bbbb", "cccc dddd", "eeee ffff", "gggg hhhh"}
	out := in.CorruptLines("console.log", lines)
	if in.Report.Interleaved == 0 {
		t.Fatal("no interleaving at p=1")
	}
	// Total bytes are conserved: nothing is lost, only re-framed.
	var inBytes, outBytes int
	for _, l := range lines {
		inBytes += len(l)
	}
	for _, l := range out {
		outBytes += len(l)
	}
	if inBytes != outBytes {
		t.Fatalf("interleave lost bytes: %d -> %d", inBytes, outBytes)
	}
}

func TestCorruptRecordsDoesNotMutateInput(t *testing.T) {
	recs := sampleRecords(100)
	recs[0].SetField("trace", "a|b")
	orig := make([]events.Record, len(recs))
	copy(orig, recs)
	in := New(Config{Seed: 21, Truncate: 1, Garble: 1})
	out := in.CorruptRecords(recs)
	for i := range recs {
		if recs[i].Msg != orig[i].Msg || recs[i].Category != orig[i].Category {
			t.Fatal("input records mutated")
		}
		if recs[i].Field("bank") != "4" && i != 0 {
			t.Fatal("input fields mutated")
		}
	}
	for i := range out {
		if out[i].Fields != nil {
			t.Fatalf("truncated record %d kept fields", i)
		}
	}
}

func TestCorruptAllDeterministicAndDropsLostStreams(t *testing.T) {
	files := map[string][]string{
		"console.log":  sampleLines(60),
		"messages.log": sampleLines(60),
		"erd.log":      sampleLines(60),
	}
	inA := New(Config{Seed: 17, StreamLoss: 0.5, Drop: 0.1})
	outA := inA.CorruptAll(files)
	inB := New(Config{Seed: 17, StreamLoss: 0.5, Drop: 0.1})
	outB := inB.CorruptAll(files)
	if !reflect.DeepEqual(outA, outB) || inA.Report != inB.Report {
		t.Fatal("CorruptAll not deterministic")
	}
	if inA.Report.StreamsLost > 0 && len(outA) == len(files) {
		t.Error("lost stream still present in output")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("mode=drop,intensity=0.2,seed=7")
	if err != nil || cfg.Drop != 0.2 || cfg.Seed != 7 || cfg.Truncate != 0 {
		t.Fatalf("mode spec: %+v err=%v", cfg, err)
	}
	cfg, err = ParseSpec("drop=0.1,trunc=0.05,skew=0.02,maxskew=5m,window=16,seed=3")
	if err != nil || cfg.Drop != 0.1 || cfg.Truncate != 0.05 ||
		cfg.ClockSkew != 0.02 || cfg.MaxSkew != 5*time.Minute || cfg.ShuffleWindow != 16 {
		t.Fatalf("kv spec: %+v err=%v", cfg, err)
	}
	if cfg, err = ParseSpec(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec: %+v err=%v", cfg, err)
	}
	for _, bad := range []string{"mode=volcano,intensity=1", "drop=2", "intensity=0.5",
		"mode=drop", "nonsense", "window=0,drop=0.1", "drop=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

func TestForModeCoversAllModes(t *testing.T) {
	for _, m := range AllModes() {
		cfg := ForMode(m, 0.2, 1)
		if !cfg.Enabled() {
			t.Errorf("ForMode(%s) produced a disabled config", m)
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
