// Package events defines the structured event model shared by the
// simulator, the log generators, the log parsers, and the analysis
// pipeline.
//
// A Record is the normalised form of one log line. The paper's pipeline
// consults three log families — node-internal logs (console, messages,
// consumer), external environmental logs (blade/cabinet controller and
// the event-router daemon), and job-scheduler logs — and the Stream
// enumeration mirrors that taxonomy exactly so the correlation engine can
// reason about "internal" vs "external" evidence the way the paper does.
package events

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hpcfail/internal/cname"
)

// Stream identifies which log a record came from.
type Stream int

const (
	// StreamUnknown marks an unclassified record.
	StreamUnknown Stream = iota
	// StreamConsole is the node console log (kernel messages, oops,
	// panics, MCE dumps) — internal.
	StreamConsole
	// StreamMessages is the node syslog messages stream — internal.
	StreamMessages
	// StreamConsumer is the Cray event consumer log for the node —
	// internal.
	StreamConsumer
	// StreamControllerBC is the blade controller (L0) log — external.
	StreamControllerBC
	// StreamControllerCC is the cabinet controller (L1) log — external.
	StreamControllerCC
	// StreamERD is the event router daemon stream carrying SEDC data and
	// hardware fault alerts — external.
	StreamERD
	// StreamScheduler is the job scheduler (Slurm or Torque) log.
	StreamScheduler
	// StreamALPS is the Application Level Placement Scheduler log,
	// mapping application ids (apids) to jobs and node placements on
	// Cray systems.
	StreamALPS
)

var streamNames = [...]string{
	StreamUnknown:      "unknown",
	StreamConsole:      "console",
	StreamMessages:     "messages",
	StreamConsumer:     "consumer",
	StreamControllerBC: "controller-bc",
	StreamControllerCC: "controller-cc",
	StreamERD:          "erd",
	StreamScheduler:    "scheduler",
	StreamALPS:         "alps",
}

// String returns the stream's log-file style name.
func (s Stream) String() string {
	if int(s) < len(streamNames) {
		return streamNames[s]
	}
	return fmt.Sprintf("stream(%d)", int(s))
}

// ParseStream inverts String.
func ParseStream(s string) (Stream, error) {
	for i, n := range streamNames {
		if n == s {
			return Stream(i), nil
		}
	}
	return StreamUnknown, fmt.Errorf("events: unknown stream %q", s)
}

// Internal reports whether the stream belongs to the node-internal log
// family (console/messages/consumer). The paper defines lead time
// relative to internal precursor messages; external streams are the
// candidate source of earlier indicators.
func (s Stream) Internal() bool {
	switch s {
	case StreamConsole, StreamMessages, StreamConsumer:
		return true
	}
	return false
}

// External reports whether the stream belongs to the environmental family
// (controller and ERD logs).
func (s Stream) External() bool {
	switch s {
	case StreamControllerBC, StreamControllerCC, StreamERD:
		return true
	}
	return false
}

// Severity grades a record. The generator assigns severities consistent
// with production syslog conventions; the detector keys on Error and
// above for failure confirmation.
type Severity int

const (
	// SevInfo is routine operational chatter.
	SevInfo Severity = iota
	// SevWarning covers threshold violations and suspect conditions.
	SevWarning
	// SevError covers faults that demand attention but may be survivable.
	SevError
	// SevCritical covers fatal conditions: panics, failed nodes, dead
	// heartbeats.
	SevCritical
)

var severityNames = [...]string{"INFO", "WARNING", "ERROR", "CRITICAL"}

// String returns the upper-case severity label.
func (s Severity) String() string {
	if s >= 0 && int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// ParseSeverity inverts String.
func ParseSeverity(s string) (Severity, error) {
	for i, n := range severityNames {
		if n == s {
			return Severity(i), nil
		}
	}
	return SevInfo, fmt.Errorf("events: unknown severity %q", s)
}

// Record is one normalised log event.
type Record struct {
	// Time is the event timestamp.
	Time time.Time
	// Stream identifies the source log.
	Stream Stream
	// Component is the physical component the event concerns. For
	// scheduler records this is the allocated node (one record per node)
	// or invalid for job-global events.
	Component cname.Name
	// Severity grades the event.
	Severity Severity
	// Category is a stable machine-readable event tag (e.g.
	// "mce", "ec_node_failed", "oom_killer", "sedc_warning"). Categories
	// are the join keys of the analysis; Msg is for humans.
	Category string
	// Msg is the rendered human-readable message body.
	Msg string
	// JobID links scheduler records (and job-attributed node events) to
	// a job; 0 means no job association.
	JobID int64
	// Fields carries structured attributes (sensor name, reading,
	// threshold, module list, exit code, ...).
	Fields map[string]string
}

// Field returns the named attribute or "".
func (r *Record) Field(k string) string {
	if r.Fields == nil {
		return ""
	}
	return r.Fields[k]
}

// SetField sets a structured attribute, allocating the map on first use.
func (r *Record) SetField(k, v string) {
	if r.Fields == nil {
		r.Fields = make(map[string]string, 4)
	}
	r.Fields[k] = v
}

// FieldsString renders attributes as "k1=v1 k2=v2" in sorted key order,
// suitable for embedding in a log line and for stable test output.
func (r *Record) FieldsString() string {
	if len(r.Fields) == 0 {
		return ""
	}
	keys := make([]string, 0, len(r.Fields))
	for k := range r.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, r.Fields[k])
	}
	return b.String()
}

// String renders a one-line debug form.
func (r *Record) String() string {
	comp := "-"
	if r.Component.IsValid() {
		comp = r.Component.String()
	}
	return fmt.Sprintf("%s %s %s %s [%s] %s",
		r.Time.UTC().Format(time.RFC3339), r.Stream, comp, r.Severity, r.Category, r.Msg)
}

// ByTime sorts records chronologically, breaking ties by stream then
// component so that sorted output is deterministic.
type ByTime []Record

func (s ByTime) Len() int      { return len(s) }
func (s ByTime) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s ByTime) Less(i, j int) bool {
	if !s[i].Time.Equal(s[j].Time) {
		return s[i].Time.Before(s[j].Time)
	}
	if s[i].Stream != s[j].Stream {
		return s[i].Stream < s[j].Stream
	}
	return cname.Compare(s[i].Component, s[j].Component) < 0
}

// SortByTime sorts records in place chronologically, preserving the
// relative order of records that compare equal under ByTime (a stable
// sort, which shard-merge equivalence depends on).
//
// Records are wide values, so instead of sort.Stable's swap-heavy
// in-place merge this sorts lightweight (time, index) keys — falling
// back to the full ByTime order plus the original index on ties, which
// is exactly stable order — and permutes once. Generator output is
// usually already sorted, in which case a single linear scan is all
// that runs.
func SortByTime(rs []Record) {
	if len(rs) < 2 {
		return
	}
	bt := ByTime(rs)
	sorted := true
	for i := 1; i < len(rs); i++ {
		if bt.Less(i, i-1) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	type sortKey struct {
		t   int64
		idx int32
	}
	keys := make([]sortKey, len(rs))
	for i := range rs {
		keys[i] = sortKey{rs[i].Time.UnixNano(), int32(i)}
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.t != kb.t {
			return ka.t < kb.t
		}
		ra, rb := &rs[ka.idx], &rs[kb.idx]
		if ra.Stream != rb.Stream {
			return ra.Stream < rb.Stream
		}
		if c := cname.Compare(ra.Component, rb.Component); c != 0 {
			return c < 0
		}
		return ka.idx < kb.idx
	})
	// Apply the permutation in place by following its cycles (each
	// record moves exactly once; no second record-sized buffer).
	for i := range keys {
		src := int(keys[i].idx)
		if src < 0 || src == i {
			keys[i].idx = -1
			continue
		}
		tmp := rs[i]
		j := i
		for src != i {
			rs[j] = rs[src]
			keys[j].idx = -1
			j = src
			src = int(keys[j].idx)
		}
		rs[j] = tmp
		keys[j].idx = -1
	}
}
