package events

import (
	"sort"
	"strings"
	"testing"
	"time"

	"hpcfail/internal/cname"
)

func TestStreamNamesRoundTrip(t *testing.T) {
	for s := StreamUnknown; s <= StreamALPS; s++ {
		got, err := ParseStream(s.String())
		if err != nil {
			t.Fatalf("ParseStream(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
	if _, err := ParseStream("bogus"); err == nil {
		t.Error("ParseStream should reject unknown names")
	}
}

func TestStreamFamilies(t *testing.T) {
	internal := []Stream{StreamConsole, StreamMessages, StreamConsumer}
	external := []Stream{StreamControllerBC, StreamControllerCC, StreamERD}
	for _, s := range internal {
		if !s.Internal() || s.External() {
			t.Errorf("%v should be internal only", s)
		}
	}
	for _, s := range external {
		if !s.External() || s.Internal() {
			t.Errorf("%v should be external only", s)
		}
	}
	if StreamScheduler.Internal() || StreamScheduler.External() {
		t.Error("scheduler is neither internal nor external")
	}
	if StreamALPS.Internal() || StreamALPS.External() {
		t.Error("alps is neither internal nor external")
	}
}

func TestSeverityRoundTrip(t *testing.T) {
	for s := SevInfo; s <= SevCritical; s++ {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("severity round trip %v -> %v, %v", s, got, err)
		}
	}
	if _, err := ParseSeverity("FATAL"); err == nil {
		t.Error("ParseSeverity should reject unknown labels")
	}
}

func TestFields(t *testing.T) {
	var r Record
	if r.Field("x") != "" {
		t.Error("Field on empty record should be empty")
	}
	r.SetField("b", "2")
	r.SetField("a", "1")
	if got := r.FieldsString(); got != "a=1 b=2" {
		t.Errorf("FieldsString = %q", got)
	}
	if r.Field("a") != "1" {
		t.Error("Field lookup failed")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{
		Time:      time.Date(2015, 3, 1, 12, 0, 0, 0, time.UTC),
		Stream:    StreamConsole,
		Component: cname.MustParse("c0-0c0s1n2"),
		Severity:  SevCritical,
		Category:  "kernel_panic",
		Msg:       "Kernel panic - not syncing",
	}
	s := r.String()
	for _, want := range []string{"console", "c0-0c0s1n2", "CRITICAL", "kernel_panic"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	var empty Record
	if !strings.Contains(empty.String(), "-") {
		t.Error("empty record should render '-' for component")
	}
}

func TestSortByTime(t *testing.T) {
	t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	rs := []Record{
		{Time: t0.Add(2 * time.Second), Stream: StreamERD},
		{Time: t0, Stream: StreamConsole},
		{Time: t0.Add(time.Second), Stream: StreamMessages},
		{Time: t0, Stream: StreamConsole, Component: cname.MustParse("c0-0c0s0n1")},
		{Time: t0, Stream: StreamConsole, Component: cname.MustParse("c0-0c0s0n0")},
	}
	SortByTime(rs)
	if !sort.IsSorted(ByTime(rs)) {
		t.Fatal("not sorted")
	}
	if !rs[0].Time.Equal(t0) || rs[len(rs)-1].Stream != StreamERD {
		t.Error("unexpected order after sort")
	}
	// Tie-break: invalid component sorts before valid ones? Compare puts
	// lower-level first; just assert deterministic ordering of the two
	// same-time console records with components.
	var compNames []string
	for _, r := range rs {
		if r.Component.IsValid() {
			compNames = append(compNames, r.Component.String())
		}
	}
	if len(compNames) == 2 && compNames[0] > compNames[1] {
		t.Errorf("component tie-break not deterministic ascending: %v", compNames)
	}
}
