package events

import (
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"time"

	"hpcfail/internal/cname"
)

// sortByTimeRef is the original sort.Stable implementation the
// key-permute SortByTime must reproduce exactly, including the relative
// order of ByTime-equal records.
func sortByTimeRef(rs []Record) {
	sort.Stable(ByTime(rs))
}

// randRecords builds a stream with deliberately heavy time/stream/
// component collisions so stability is actually exercised: Msg carries
// the original position, which is how the test tells equal records
// apart.
func randRecords(rng *rand.Rand, n int) []Record {
	base := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	rs := make([]Record, n)
	for i := range rs {
		rs[i] = Record{
			Time:      base.Add(time.Duration(rng.Intn(8)) * time.Second),
			Stream:    Stream(rng.Intn(4)),
			Component: cname.Node(0, 0, 0, rng.Intn(2), rng.Intn(2)),
			Msg:       "orig=" + strconv.Itoa(i),
		}
	}
	return rs
}

func TestSortByTimeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		rs := randRecords(rng, n)
		if trial%4 == 0 { // exercise the already-sorted fast path too
			sortByTimeRef(rs)
		}
		got := append([]Record(nil), rs...)
		want := append([]Record(nil), rs...)
		SortByTime(got)
		sortByTimeRef(want)
		for i := range want {
			if got[i].Msg != want[i].Msg {
				t.Fatalf("trial %d (n=%d): position %d holds %q, want %q",
					trial, n, i, got[i].Msg, want[i].Msg)
			}
		}
	}
}

func BenchmarkSortByTime(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randRecords(rng, 4096)
	buf := make([]Record, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		SortByTime(buf)
	}
}
