package checkpoint

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)

func params() Params {
	return Params{CheckpointCost: 10 * time.Minute, RestartCost: 5 * time.Minute, MTBF: 6 * time.Hour}
}

func TestDalyInterval(t *testing.T) {
	p := params()
	got := DalyInterval(p)
	// sqrt(2 * 10min * 360min) = sqrt(7200) min ≈ 84.85 min.
	want := 84.85
	if m := got.Minutes(); m < want-0.1 || m > want+0.1 {
		t.Errorf("Daly interval = %.2f min, want ~%.2f", m, want)
	}
}

func TestValidate(t *testing.T) {
	if (Params{}).Validate() == nil {
		t.Error("zero params should be invalid")
	}
	if params().Validate() != nil {
		t.Error("sane params should validate")
	}
	if _, err := Evaluate(Periodic, Params{}, nil, time.Hour, 0); err == nil {
		t.Error("Evaluate should propagate invalid params")
	}
	if _, err := Evaluate(Periodic, params(), nil, 0, 0); err == nil {
		t.Error("Evaluate should reject non-positive span")
	}
}

func TestStrategyNames(t *testing.T) {
	if Periodic.String() != "periodic" || ProactiveInternal.String() != "proactive-internal" ||
		ProactiveExternal.String() != "proactive-external" || Strategy(9).String() == "" {
		t.Error("strategy names wrong")
	}
}

func TestPeriodicLosesHalfInterval(t *testing.T) {
	p := params()
	span := 30 * 24 * time.Hour
	failures := []Failure{{Time: t0.Add(24 * time.Hour)}, {Time: t0.Add(48 * time.Hour)}}
	out, err := Evaluate(Periodic, p, failures, span, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Covered != 0 || out.Missed != 2 {
		t.Errorf("periodic coverage: %+v", out)
	}
	wantLost := DalyInterval(p) // two halves (± integer-division nanoseconds)
	if diff := out.LostWork - wantLost; diff < -2 || diff > 2 {
		t.Errorf("lost work = %v, want ~%v", out.LostWork, wantLost)
	}
	if out.RestartTime != 10*time.Minute {
		t.Errorf("restart time = %v", out.RestartTime)
	}
	if out.FalseAlarms != 0 {
		t.Error("periodic has no proactive alarms")
	}
}

func TestProactiveCoversWhenLeadExceedsCost(t *testing.T) {
	p := params()
	span := 7 * 24 * time.Hour
	failures := []Failure{
		{Time: t0, InternalLead: 4 * time.Minute, ExternalLead: 20 * time.Minute},  // only external covers
		{Time: t0, InternalLead: 12 * time.Minute, ExternalLead: 60 * time.Minute}, // both cover
		{Time: t0}, // silent: neither
	}
	internal, err := Evaluate(ProactiveInternal, p, failures, span, 0)
	if err != nil {
		t.Fatal(err)
	}
	if internal.Covered != 1 || internal.Missed != 2 {
		t.Errorf("internal coverage: %+v", internal)
	}
	external, err := Evaluate(ProactiveExternal, p, failures, span, 0)
	if err != nil {
		t.Fatal(err)
	}
	if external.Covered != 2 || external.Missed != 1 {
		t.Errorf("external coverage: %+v", external)
	}
	// External strategy wastes less overall.
	if external.TotalWaste() >= internal.TotalWaste() {
		t.Errorf("external waste %v should beat internal %v",
			external.TotalWaste(), internal.TotalWaste())
	}
}

func TestExternalFallsBackToInternal(t *testing.T) {
	p := params()
	failures := []Failure{{Time: t0, InternalLead: 30 * time.Minute}} // no external lead
	out, err := Evaluate(ProactiveExternal, p, failures, 24*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Covered != 1 {
		t.Errorf("external strategy should fall back to internal lead: %+v", out)
	}
}

func TestFalseAlarmCost(t *testing.T) {
	p := params()
	a, _ := Evaluate(ProactiveExternal, p, nil, 24*time.Hour, 0)
	b, _ := Evaluate(ProactiveExternal, p, nil, 24*time.Hour, 6)
	if b.CheckpointOverhead-a.CheckpointOverhead != 6*p.CheckpointCost {
		t.Errorf("false alarms should cost one checkpoint each: %v vs %v",
			a.CheckpointOverhead, b.CheckpointOverhead)
	}
	if c, _ := Evaluate(Periodic, p, nil, 24*time.Hour, 6); c.FalseAlarms != 0 {
		t.Error("periodic ignores false alarms")
	}
}

func TestCompareOrdering(t *testing.T) {
	p := params()
	span := 30 * 24 * time.Hour
	// A failure population resembling the paper: ~25% with 5x external
	// leads, the rest internal-only with short leads.
	var failures []Failure
	for i := 0; i < 40; i++ {
		f := Failure{Time: t0.Add(time.Duration(i) * 12 * time.Hour), InternalLead: 4 * time.Minute}
		if i%4 == 0 {
			f.ExternalLead = 22 * time.Minute
		}
		failures = append(failures, f)
	}
	outs, err := Compare(p, failures, span, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	// With 4-minute internal leads (< 10-minute checkpoint cost) the
	// internal strategy covers nothing; external covers the 25%.
	if outs[1].Covered != 0 {
		t.Errorf("internal should cover 0 with 4-min leads: %+v", outs[1])
	}
	if outs[2].Covered != 10 {
		t.Errorf("external should cover 10: %+v", outs[2])
	}
	if outs[2].TotalWaste() >= outs[0].TotalWaste() {
		t.Errorf("proactive-external (%v) should beat periodic (%v)",
			outs[2].TotalWaste(), outs[0].TotalWaste())
	}
	if outs[0].WasteFraction(span) <= 0 {
		t.Error("waste fraction should be positive")
	}
}

// Property: waste is never negative and covered+missed == len(failures).
func TestQuickConservation(t *testing.T) {
	p := params()
	f := func(nFail uint8, leadMin uint8, extMul uint8) bool {
		var failures []Failure
		for i := 0; i < int(nFail%30); i++ {
			lead := time.Duration(leadMin%60) * time.Minute
			failures = append(failures, Failure{
				Time:         t0,
				InternalLead: lead,
				ExternalLead: lead * time.Duration(extMul%8),
			})
		}
		for _, s := range []Strategy{Periodic, ProactiveInternal, ProactiveExternal} {
			out, err := Evaluate(s, p, failures, 7*24*time.Hour, 3)
			if err != nil {
				return false
			}
			if out.TotalWaste() < 0 || out.Covered+out.Missed != len(failures) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
