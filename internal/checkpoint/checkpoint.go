// Package checkpoint models checkpoint/restart economics, quantifying
// the paper's closing claim: proactive mitigation informed by failure
// prediction — especially with externally-enhanced lead times — beats
// blind periodic checkpointing by avoiding recomputation.
//
// The model is the standard first-order one: an application makes
// progress except while writing checkpoints, restarting, or recomputing
// work lost since the last checkpoint. Periodic checkpointing uses the
// Young/Daly interval sqrt(2·C·MTBF). Proactive strategies take an
// immediate checkpoint when a failure prediction arrives; a prediction
// helps only if its lead time covers the checkpoint write cost, which
// is where the paper's ~5× external lead enhancement pays off.
package checkpoint

import (
	"fmt"
	"math"
	"time"
)

// Params describe the platform's checkpoint economics.
type Params struct {
	// CheckpointCost is the time to write one checkpoint.
	CheckpointCost time.Duration
	// RestartCost is the time to restore and resume after a failure.
	RestartCost time.Duration
	// MTBF is the observed mean time between failures, used to derive
	// the periodic interval.
	MTBF time.Duration
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.CheckpointCost <= 0 || p.RestartCost < 0 || p.MTBF <= 0 {
		return fmt.Errorf("checkpoint: invalid params %+v", p)
	}
	return nil
}

// DalyInterval returns the Young/Daly first-order optimal periodic
// checkpoint interval sqrt(2·C·MTBF).
func DalyInterval(p Params) time.Duration {
	return time.Duration(math.Sqrt(2 * float64(p.CheckpointCost) * float64(p.MTBF)))
}

// Failure is one failure event as the strategy evaluator sees it.
type Failure struct {
	// Time is when the node failure kills the job.
	Time time.Time
	// InternalLead is the warning horizon from internal precursors
	// (0 when none — e.g. silent shutdowns).
	InternalLead time.Duration
	// ExternalLead is the enhanced horizon from external indicators
	// (0 when none — e.g. application-triggered failures).
	ExternalLead time.Duration
}

// Strategy selects the mitigation policy.
type Strategy int

const (
	// Periodic: checkpoint every Daly interval; failures lose work back
	// to the last periodic checkpoint.
	Periodic Strategy = iota
	// ProactiveInternal: periodic backstop plus an immediate checkpoint
	// on each internal-precursor alarm.
	ProactiveInternal
	// ProactiveExternal: periodic backstop plus proactive checkpoints
	// driven by the longer external leads (the paper's enhancement).
	ProactiveExternal
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Periodic:
		return "periodic"
	case ProactiveInternal:
		return "proactive-internal"
	case ProactiveExternal:
		return "proactive-external"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Outcome summarises a strategy's waste over a workload span.
type Outcome struct {
	Strategy Strategy
	// CheckpointOverhead is time spent writing checkpoints (periodic +
	// proactive + false alarms).
	CheckpointOverhead time.Duration
	// LostWork is recomputation of progress lost at failures.
	LostWork time.Duration
	// RestartTime is the total restore cost.
	RestartTime time.Duration
	// Covered counts failures whose proactive checkpoint completed in
	// time (zero lost work).
	Covered int
	// Missed counts failures handled by the periodic backstop.
	Missed int
	// FalseAlarms counts proactive checkpoints not followed by failure.
	FalseAlarms int
}

// TotalWaste returns the strategy's summed non-progress time.
func (o Outcome) TotalWaste() time.Duration {
	return o.CheckpointOverhead + o.LostWork + o.RestartTime
}

// WasteFraction returns waste relative to the span.
func (o Outcome) WasteFraction(span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(o.TotalWaste()) / float64(span)
}

// Evaluate computes the outcome of a strategy over a failure trace.
// span is the total wall time; falseAlarms is the count of predictor
// false positives during the span (each costs one proactive checkpoint
// in the proactive strategies).
func Evaluate(s Strategy, p Params, failures []Failure, span time.Duration, falseAlarms int) (Outcome, error) {
	if err := p.Validate(); err != nil {
		return Outcome{}, err
	}
	if span <= 0 {
		return Outcome{}, fmt.Errorf("checkpoint: non-positive span")
	}
	out := Outcome{Strategy: s}
	interval := DalyInterval(p)
	if interval <= 0 || interval > span {
		interval = span
	}
	// Periodic overhead accrues for every strategy (the backstop).
	nPeriodic := int(span / interval)
	out.CheckpointOverhead = time.Duration(nPeriodic) * p.CheckpointCost

	for _, f := range failures {
		out.RestartTime += p.RestartCost
		lead := time.Duration(0)
		switch s {
		case ProactiveInternal:
			lead = f.InternalLead
		case ProactiveExternal:
			lead = f.ExternalLead
			if lead == 0 {
				lead = f.InternalLead // fall back to internal evidence
			}
		}
		if s != Periodic && lead >= p.CheckpointCost {
			// The proactive checkpoint completes before the failure:
			// no recomputation, one extra checkpoint write.
			out.Covered++
			out.CheckpointOverhead += p.CheckpointCost
			continue
		}
		// Backstop: lose work back to the last periodic checkpoint —
		// uniformly distributed, expected half an interval.
		out.Missed++
		out.LostWork += interval / 2
	}
	if s != Periodic {
		out.FalseAlarms = falseAlarms
		out.CheckpointOverhead += time.Duration(falseAlarms) * p.CheckpointCost
	}
	return out, nil
}

// Compare evaluates all three strategies on the same trace.
func Compare(p Params, failures []Failure, span time.Duration, falseAlarms int) ([]Outcome, error) {
	var out []Outcome
	for _, s := range []Strategy{Periodic, ProactiveInternal, ProactiveExternal} {
		o, err := Evaluate(s, p, failures, span, falseAlarms)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// DefaultParams returns petascale-plausible economics: a 10-minute
// checkpoint (large memory footprint over a parallel file system), a
// 5-minute restart, and the observed MTBF.
func DefaultParams(mtbf time.Duration) Params {
	return Params{
		CheckpointCost: 10 * time.Minute,
		RestartCost:    5 * time.Minute,
		MTBF:           mtbf,
	}
}
