// Package nhc models the Node Health Checker: the test battery Cray
// systems run against compute nodes after job anomalies, its suspect
// mode, and the admindown decision.
//
// The NHC is central to the paper's application-triggered failure story
// (Fig 16: 37.5 % of S2 failures are abnormal app-exits "failing NHC
// tests turning the node down"): a node can pass communication-level
// health checks (so no heartbeat fault is ever logged) and still be
// taken out of service when a job's malfunctioning trips the NHC in
// suspect mode.
package nhc

import (
	"fmt"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
)

// Test identifies one NHC health test.
type Test int

const (
	// TestFilesystem checks that required file systems are mounted and
	// responsive.
	TestFilesystem Test = iota
	// TestMemory checks free-memory and allocator health.
	TestMemory
	// TestProcess checks for leftover or zombie application processes.
	TestProcess
	// TestAppExit checks the last application's exit status (abnormal
	// exits fail it).
	TestAppExit
	// TestNetwork checks interconnect reachability.
	TestNetwork

	numTests
)

var testNames = [...]string{"filesystem", "memory", "process", "app_exit", "network"}

// String returns the test's snake_case name.
func (t Test) String() string {
	if t >= 0 && int(t) < len(testNames) {
		return testNames[t]
	}
	return fmt.Sprintf("test(%d)", int(t))
}

// ParseTest inverts String.
func ParseTest(s string) (Test, error) {
	for i, n := range testNames {
		if n == s {
			return Test(i), nil
		}
	}
	return 0, fmt.Errorf("nhc: unknown test %q", s)
}

// AllTests returns the battery in execution order.
func AllTests() []Test {
	out := make([]Test, numTests)
	for i := range out {
		out[i] = Test(i)
	}
	return out
}

// Critical reports whether failing the test alone justifies admindown.
func (t Test) Critical() bool {
	switch t {
	case TestFilesystem, TestMemory, TestAppExit:
		return true
	}
	return false
}

// Condition describes the node's actual trouble when the NHC runs; the
// simulator fills it from ground truth, the checker maps it to test
// results.
type Condition struct {
	// FilesystemError: Lustre/DVS trouble on the node.
	FilesystemError bool
	// MemoryExhausted: allocation failures or OOM activity.
	MemoryExhausted bool
	// StaleProcesses: application processes survived the epilogue.
	StaleProcesses bool
	// AbnormalAppExit: the last job step exited abnormally.
	AbnormalAppExit bool
	// NetworkDegraded: interconnect trouble.
	NetworkDegraded bool
}

// Action is the NHC's decision.
type Action int

const (
	// ActionNone: all tests passed.
	ActionNone Action = iota
	// ActionSuspect: non-critical failures; re-test later.
	ActionSuspect
	// ActionAdminDown: critical failure; remove the node from service.
	ActionAdminDown
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionSuspect:
		return "suspect"
	case ActionAdminDown:
		return "admindown"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Outcome is one NHC evaluation.
type Outcome struct {
	// Failed lists the failing tests in battery order.
	Failed []Test
	// Action is the resulting decision.
	Action Action
}

// Evaluate runs the battery against a condition. In suspect mode any
// critical test failure turns the node admindown (the paper's "NHC,
// when in suspect mode, may turn the node to admindown based on failed
// tests"); outside suspect mode a critical failure first moves the node
// to suspect.
func Evaluate(c Condition, suspectMode bool) Outcome {
	var out Outcome
	fails := map[Test]bool{
		TestFilesystem: c.FilesystemError,
		TestMemory:     c.MemoryExhausted,
		TestProcess:    c.StaleProcesses,
		TestAppExit:    c.AbnormalAppExit,
		TestNetwork:    c.NetworkDegraded,
	}
	critical := false
	for _, t := range AllTests() {
		if fails[t] {
			out.Failed = append(out.Failed, t)
			if t.Critical() {
				critical = true
			}
		}
	}
	switch {
	case len(out.Failed) == 0:
		out.Action = ActionNone
	case critical && suspectMode:
		out.Action = ActionAdminDown
	default:
		out.Action = ActionSuspect
	}
	return out
}

// Event constructors — NHC activity appears in the node's messages log
// (internal stream).

// SuspectEvent marks the NHC entering suspect mode for the node.
func SuspectEvent(t time.Time, node cname.Name) events.Record {
	return events.Record{
		Time:      t,
		Stream:    events.StreamMessages,
		Component: node,
		Severity:  events.SevWarning,
		Category:  "nhc",
		Msg:       fmt.Sprintf("NHC: node %s placed in suspect mode", node),
	}
}

// TestFailEvent records one failing test.
func TestFailEvent(t time.Time, node cname.Name, test Test) events.Record {
	r := events.Record{
		Time:      t,
		Stream:    events.StreamMessages,
		Component: node,
		Severity:  events.SevWarning,
		Category:  "nhc",
		Msg:       fmt.Sprintf("NHC: test %s FAILED on %s", test, node),
	}
	r.SetField("test", test.String())
	r.SetField("result", "fail")
	return r
}

// AdminDownEvent records the admindown decision; jobID links it to the
// triggering job when known (0 otherwise).
func AdminDownEvent(t time.Time, node cname.Name, jobID int64) events.Record {
	r := events.Record{
		Time:      t,
		Stream:    events.StreamMessages,
		Component: node,
		Severity:  events.SevCritical,
		Category:  "nhc_admindown",
		JobID:     jobID,
		Msg:       fmt.Sprintf("NHC: node %s set to admindown", node),
	}
	r.SetField("action", ActionAdminDown.String())
	return r
}

// WarmSwapEvent records an admindown node being replaced by a spare —
// the warm-swap recovery the paper credits for restoring capacity
// without a service window.
func WarmSwapEvent(t time.Time, node cname.Name) events.Record {
	r := events.Record{
		Time:      t,
		Stream:    events.StreamMessages,
		Component: node,
		Severity:  events.SevInfo,
		Category:  "warm_swap",
		Msg:       fmt.Sprintf("HSS: node %s warm-swapped with spare", node),
	}
	r.SetField("action", "warmswap")
	return r
}

// AppExitEvent records the abnormal application exit the NHC observed —
// the internal precursor of the paper's app-exit failure class.
func AppExitEvent(t time.Time, node cname.Name, jobID int64, app string) events.Record {
	r := events.Record{
		Time:      t,
		Stream:    events.StreamMessages,
		Component: node,
		Severity:  events.SevError,
		Category:  "app_exit_abnormal",
		JobID:     jobID,
		Msg:       fmt.Sprintf("NHC: abnormal application exit (%s) detected on %s", app, node),
	}
	r.SetField("app", app)
	return r
}
