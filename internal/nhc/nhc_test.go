package nhc

import (
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
)

var node = cname.MustParse("c0-0c1s3n2")

func TestTestNamesRoundTrip(t *testing.T) {
	for _, tt := range AllTests() {
		got, err := ParseTest(tt.String())
		if err != nil || got != tt {
			t.Errorf("test round trip %v: %v %v", tt, got, err)
		}
	}
	if _, err := ParseTest("bogus"); err == nil {
		t.Error("ParseTest should reject unknown")
	}
	if Test(99).String() == "" || Action(99).String() == "" {
		t.Error("unknown enums should stringify")
	}
}

func TestCriticalTests(t *testing.T) {
	crit := map[Test]bool{TestFilesystem: true, TestMemory: true, TestAppExit: true}
	for _, tt := range AllTests() {
		if tt.Critical() != crit[tt] {
			t.Errorf("%v critical = %v, want %v", tt, tt.Critical(), crit[tt])
		}
	}
}

func TestEvaluateHealthy(t *testing.T) {
	out := Evaluate(Condition{}, false)
	if out.Action != ActionNone || len(out.Failed) != 0 {
		t.Errorf("healthy node: %+v", out)
	}
	out = Evaluate(Condition{}, true)
	if out.Action != ActionNone {
		t.Errorf("healthy node in suspect mode: %+v", out)
	}
}

func TestEvaluateCriticalPath(t *testing.T) {
	cond := Condition{AbnormalAppExit: true}
	// Outside suspect mode: critical failure first suspends.
	out := Evaluate(cond, false)
	if out.Action != ActionSuspect {
		t.Errorf("first evaluation: %v, want suspect", out.Action)
	}
	// In suspect mode: admindown (the paper's app-exit path).
	out = Evaluate(cond, true)
	if out.Action != ActionAdminDown {
		t.Errorf("suspect-mode evaluation: %v, want admindown", out.Action)
	}
	if len(out.Failed) != 1 || out.Failed[0] != TestAppExit {
		t.Errorf("failed tests: %v", out.Failed)
	}
}

func TestEvaluateNonCriticalNeverAdminDown(t *testing.T) {
	cond := Condition{StaleProcesses: true, NetworkDegraded: true}
	for _, suspect := range []bool{false, true} {
		out := Evaluate(cond, suspect)
		if out.Action != ActionSuspect {
			t.Errorf("non-critical (suspect=%v): %v", suspect, out.Action)
		}
		if len(out.Failed) != 2 {
			t.Errorf("failed = %v", out.Failed)
		}
	}
}

func TestEvaluateMultipleFailuresOrdered(t *testing.T) {
	cond := Condition{FilesystemError: true, MemoryExhausted: true, AbnormalAppExit: true}
	out := Evaluate(cond, true)
	want := []Test{TestFilesystem, TestMemory, TestAppExit}
	if len(out.Failed) != len(want) {
		t.Fatalf("failed = %v", out.Failed)
	}
	for i := range want {
		if out.Failed[i] != want[i] {
			t.Errorf("battery order: %v", out.Failed)
		}
	}
	if out.Action != ActionAdminDown {
		t.Error("multi-critical should admindown in suspect mode")
	}
}

func TestEventShapes(t *testing.T) {
	at := time.Date(2015, 2, 1, 5, 0, 0, 0, time.UTC)
	s := SuspectEvent(at, node)
	if s.Stream != events.StreamMessages || !s.Stream.Internal() {
		t.Error("NHC events are internal messages")
	}
	f := TestFailEvent(at, node, TestMemory)
	if f.Field("test") != "memory" || f.Field("result") != "fail" {
		t.Errorf("fail event fields: %v", f.Fields)
	}
	a := AdminDownEvent(at, node, 42)
	if a.Severity != events.SevCritical || a.JobID != 42 || a.Category != "nhc_admindown" {
		t.Errorf("admindown event: %+v", a)
	}
	e := AppExitEvent(at, node, 42, "cfd_solver")
	if e.Category != "app_exit_abnormal" || e.Field("app") != "cfd_solver" {
		t.Errorf("app exit event: %+v", e)
	}
}
