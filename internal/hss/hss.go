// Package hss models the Cray Hardware Supervisory System view of node
// health: the heartbeat protocol between nodes and their blade
// controllers, the node state machine (up → suspect → down/admindown),
// and constructors for the external health-fault events (NHF, NVF, BCHF,
// ec_hw_errors, …) that the event-router stream carries.
//
// The semantics matter for reproducing Figs 5 and 6: a node heartbeat
// fault (NHF) means the HSS *suspects* the node is dead, but empirically
// only ~43 % of NHFs correspond to real failures — the rest are nodes
// that were powered off or that merely skipped a beat. The heartbeat
// Tracker distinguishes those outcomes, and the simulator uses the event
// constructors here so generation and parsing agree on categories and
// fields.
package hss

import (
	"fmt"
	"strconv"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
)

// NodeState is the HSS view of a node.
type NodeState int

const (
	// StateUp is a healthy, responding node.
	StateUp NodeState = iota
	// StateSuspect marks a node that failed a health test or skipped a
	// heartbeat; the NHC runs in suspect mode.
	StateSuspect
	// StateAdminDown is a node taken out of service by the NHC after
	// failed tests (the paper's job-caused admindown path).
	StateAdminDown
	// StateDown is a dead node (crash, panic, hardware failure).
	StateDown
	// StatePowerOff is an intentionally powered-off node.
	StatePowerOff
)

var stateNames = [...]string{"up", "suspect", "admindown", "down", "poweroff"}

// String returns the lower-case state name.
func (s NodeState) String() string {
	if s >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// CanTransition reports whether the HSS permits moving from s to next.
// Any state can power off (operator action); powered-off and down nodes
// must come back through up (reboot).
func (s NodeState) CanTransition(next NodeState) bool {
	if s == next {
		return true
	}
	switch s {
	case StateUp:
		return true // up can go anywhere
	case StateSuspect:
		return next == StateUp || next == StateAdminDown || next == StateDown || next == StatePowerOff
	case StateAdminDown, StateDown, StatePowerOff:
		return next == StateUp
	default:
		return false
	}
}

// Alive reports whether the node is expected to emit heartbeats.
func (s NodeState) Alive() bool { return s == StateUp || s == StateSuspect }

// BeatOutcome classifies a heartbeat check.
type BeatOutcome int

const (
	// BeatOK: heartbeat arrived within the window.
	BeatOK BeatOutcome = iota
	// BeatSkipped: one window missed; HSS raises an NHF but the node may
	// recover.
	BeatSkipped
	// BeatStopped: enough consecutive misses that the HSS declares
	// ec_heartbeat_stop and suspects the node dead.
	BeatStopped
)

// String returns the outcome name.
func (o BeatOutcome) String() string {
	switch o {
	case BeatOK:
		return "ok"
	case BeatSkipped:
		return "skipped"
	case BeatStopped:
		return "stopped"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Tracker implements the blade controller's heartbeat bookkeeping for
// one node.
type Tracker struct {
	// Interval is the expected beat period.
	Interval time.Duration
	// StopAfter is the number of consecutive missed windows after which
	// the heartbeat is declared stopped.
	StopAfter int

	lastBeat time.Time
	started  bool
}

// NewTracker returns a tracker with the platform-typical 3-miss stop
// rule.
func NewTracker(interval time.Duration) *Tracker {
	return &Tracker{Interval: interval, StopAfter: 3}
}

// Beat records a heartbeat arrival at t.
func (tr *Tracker) Beat(t time.Time) {
	tr.lastBeat = t
	tr.started = true
}

// CheckAt evaluates the heartbeat state at time t: OK if the last beat is
// within one interval (plus slack), Skipped if within the stop budget,
// Stopped beyond it. Before any beat is seen the tracker reports OK
// (nodes boot quiet).
func (tr *Tracker) CheckAt(t time.Time) BeatOutcome {
	if !tr.started {
		return BeatOK
	}
	gap := t.Sub(tr.lastBeat)
	switch {
	case gap <= tr.Interval+tr.Interval/2:
		return BeatOK
	case gap <= tr.Interval*time.Duration(tr.StopAfter):
		return BeatSkipped
	default:
		return BeatStopped
	}
}

// MissedWindows returns how many full beat intervals have elapsed since
// the last beat.
func (tr *Tracker) MissedWindows(t time.Time) int {
	if !tr.started || tr.Interval <= 0 {
		return 0
	}
	gap := t.Sub(tr.lastBeat)
	if gap <= 0 {
		return 0
	}
	return int(gap / tr.Interval)
}

// Event constructors. These are the single source of truth for the
// external health-fault record shapes: the simulator emits them and the
// log generator/parser round-trips them.

// nodeEvent builds an external record for a node-scoped HSS fault.
func nodeEvent(t time.Time, node cname.Name, typ faults.Type, sev events.Severity, msg string) events.Record {
	return events.Record{
		Time:      t,
		Stream:    events.StreamERD,
		Component: node,
		Severity:  sev,
		Category:  typ.Category(),
		Msg:       msg,
	}
}

// NHFEvent is a node heartbeat fault: the HSS missed beats from the
// node. The record does not say why — distinguishing dead nodes from
// power-offs and skipped beats is the analysis pipeline's job (Fig 6).
func NHFEvent(t time.Time, node cname.Name) events.Record {
	return nodeEvent(t, node, faults.NHF, events.SevError,
		"ec_node_heartbeat_fault: node "+node.String()+" missed heartbeat")
}

// HeartbeatStopEvent is the HSS declaring the node's heartbeat stopped
// (suspected dead) after consecutive misses.
func HeartbeatStopEvent(t time.Time, node cname.Name) events.Record {
	return nodeEvent(t, node, faults.HeartbeatStop, events.SevCritical,
		"ec_heartbeat_stop: heartbeat from "+node.String()+" stopped")
}

// NVFEvent is a node voltage fault — rare, and when present strongly
// associated with real failures (Fig 5: 67–97 %).
func NVFEvent(t time.Time, node cname.Name, rail string, volts float64) events.Record {
	r := nodeEvent(t, node, faults.NVF, events.SevError,
		"ec_node_voltage_fault: node "+node.String()+" rail "+rail+" at "+strconv.FormatFloat(volts, 'f', 3, 64)+"V")
	r.SetField("rail", rail)
	r.SetField("volts", strconv.FormatFloat(volts, 'f', 3, 64))
	return r
}

// BCHFEvent is a blade-controller heartbeat fault, scoped to the blade.
func BCHFEvent(t time.Time, blade cname.Name) events.Record {
	return events.Record{
		Time:      t,
		Stream:    events.StreamControllerBC,
		Component: blade,
		Severity:  events.SevError,
		Category:  faults.BCHF.Category(),
		Msg:       "ec_bc_heartbeat_fault: blade controller " + blade.String() + " heartbeat fault",
	}
}

// HwErrorEvent is ec_hw_errors — the external hardware-malfunction alert
// that serves as the paper's early indicator for fail-slow failures
// (Observation 5).
func HwErrorEvent(t time.Time, node cname.Name, detail string) events.Record {
	r := nodeEvent(t, node, faults.ECHwError, events.SevWarning,
		"ec_hw_errors: hardware malfunction reported for "+node.String()+": "+detail)
	r.SetField("detail", detail)
	return r
}

// LinkErrorEvent is an interconnect link error scoped to a blade.
func LinkErrorEvent(t time.Time, blade cname.Name, lane int) events.Record {
	r := events.Record{
		Time:      t,
		Stream:    events.StreamERD,
		Component: blade,
		Severity:  events.SevWarning,
		Category:  faults.LinkError.Category(),
		Msg:       "link_error: HSN lane " + strconv.Itoa(lane) + " degraded on " + blade.String(),
	}
	r.SetField("lane", strconv.Itoa(lane))
	return r
}

// HealthFaultEvent builds a generic blade/cabinet controller health
// fault (cabinet power faults, comm faults, module health, sensor read
// failures, ECB trips, l0 failures).
func HealthFaultEvent(t time.Time, comp cname.Name, typ faults.Type) events.Record {
	stream := events.StreamControllerBC
	if comp.Level() <= cname.LevelCabinet {
		stream = events.StreamControllerCC
	}
	return events.Record{
		Time:      t,
		Stream:    stream,
		Component: comp,
		Severity:  events.SevError,
		Category:  typ.Category(),
		Msg:       typ.Category() + ": health fault on " + comp.String(),
	}
}

// SEDCWarningEvent builds an ec_sedc_warning for a threshold violation.
// below reports the dominant "value under minimum allowed" case.
func SEDCWarningEvent(t time.Time, comp cname.Name, typ faults.Type, sensor string, value float64, below bool) events.Record {
	dir := "above maximum"
	if below {
		dir = "below minimum"
	}
	stream := events.StreamControllerBC
	if comp.Level() <= cname.LevelCabinet {
		stream = events.StreamControllerCC
	}
	r := events.Record{
		Time:      t,
		Stream:    stream,
		Component: comp,
		Severity:  events.SevWarning,
		Category:  typ.Category(),
		Msg:       "ec_sedc_warning: " + sensor + " on " + comp.String() + " reads " + strconv.FormatFloat(value, 'f', 3, 64) + " (" + dir + " allowed)",
	}
	r.SetField("sensor", sensor)
	r.SetField("value", strconv.FormatFloat(value, 'f', 3, 64))
	if below {
		r.SetField("direction", "below")
	} else {
		r.SetField("direction", "above")
	}
	return r
}
