package hss

import (
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
)

var node = cname.MustParse("c1-0c2s7n3")

func TestStateTransitions(t *testing.T) {
	cases := []struct {
		from, to NodeState
		ok       bool
	}{
		{StateUp, StateSuspect, true},
		{StateUp, StateDown, true},
		{StateUp, StatePowerOff, true},
		{StateSuspect, StateAdminDown, true},
		{StateSuspect, StateUp, true},
		{StateSuspect, StateDown, true},
		{StateDown, StateUp, true},
		{StateDown, StateSuspect, false},
		{StateAdminDown, StateDown, false},
		{StatePowerOff, StateSuspect, false},
		{StateDown, StateDown, true},
	}
	for _, c := range cases {
		if got := c.from.CanTransition(c.to); got != c.ok {
			t.Errorf("%v -> %v = %v, want %v", c.from, c.to, got, c.ok)
		}
	}
}

func TestStateAlive(t *testing.T) {
	if !StateUp.Alive() || !StateSuspect.Alive() {
		t.Error("up/suspect should be alive")
	}
	for _, s := range []NodeState{StateDown, StateAdminDown, StatePowerOff} {
		if s.Alive() {
			t.Errorf("%v should not be alive", s)
		}
	}
}

func TestStateNames(t *testing.T) {
	if StateAdminDown.String() != "admindown" || NodeState(99).String() == "" {
		t.Error("state names wrong")
	}
	if BeatOK.String() != "ok" || BeatSkipped.String() != "skipped" ||
		BeatStopped.String() != "stopped" || BeatOutcome(99).String() == "" {
		t.Error("outcome names wrong")
	}
}

func TestTrackerLifecycle(t *testing.T) {
	t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTracker(10 * time.Second)
	// Quiet before first beat.
	if got := tr.CheckAt(t0.Add(time.Hour)); got != BeatOK {
		t.Errorf("pre-first-beat check = %v", got)
	}
	tr.Beat(t0)
	if got := tr.CheckAt(t0.Add(10 * time.Second)); got != BeatOK {
		t.Errorf("on-time check = %v", got)
	}
	// Within 1.5 intervals: still OK (slack).
	if got := tr.CheckAt(t0.Add(14 * time.Second)); got != BeatOK {
		t.Errorf("slack check = %v", got)
	}
	// One or two missed windows: skipped.
	if got := tr.CheckAt(t0.Add(20 * time.Second)); got != BeatSkipped {
		t.Errorf("one-miss check = %v", got)
	}
	if got := tr.CheckAt(t0.Add(30 * time.Second)); got != BeatSkipped {
		t.Errorf("two-miss check = %v", got)
	}
	// Past the stop budget: stopped.
	if got := tr.CheckAt(t0.Add(45 * time.Second)); got != BeatStopped {
		t.Errorf("stopped check = %v", got)
	}
	// Recovery: a new beat resets.
	tr.Beat(t0.Add(60 * time.Second))
	if got := tr.CheckAt(t0.Add(61 * time.Second)); got != BeatOK {
		t.Errorf("post-recovery check = %v", got)
	}
}

func TestMissedWindows(t *testing.T) {
	t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTracker(10 * time.Second)
	if tr.MissedWindows(t0) != 0 {
		t.Error("no beats yet: 0 windows")
	}
	tr.Beat(t0)
	if got := tr.MissedWindows(t0.Add(35 * time.Second)); got != 3 {
		t.Errorf("MissedWindows = %d, want 3", got)
	}
	if got := tr.MissedWindows(t0.Add(-time.Second)); got != 0 {
		t.Errorf("negative gap MissedWindows = %d", got)
	}
}

func TestNHFEventShape(t *testing.T) {
	at := time.Date(2015, 4, 1, 3, 0, 0, 0, time.UTC)
	r := NHFEvent(at, node)
	if r.Category != faults.NHF.Category() {
		t.Errorf("category = %q", r.Category)
	}
	if !r.Stream.External() {
		t.Error("NHF must be external")
	}
	if r.Component != node || !r.Time.Equal(at) {
		t.Error("metadata wrong")
	}
	// NHF must NOT leak the reason — Fig 6 requires the pipeline to
	// infer it.
	if r.Field("reason") != "" {
		t.Error("NHF event leaks ground truth")
	}
}

func TestNVFEventFields(t *testing.T) {
	r := NVFEvent(time.Now(), node, "VDD", 0.82)
	if r.Field("rail") != "VDD" || r.Field("volts") != "0.820" {
		t.Errorf("fields = %v", r.Fields)
	}
	if r.Severity != events.SevError {
		t.Error("NVF severity")
	}
}

func TestBladeAndCabinetEventStreams(t *testing.T) {
	blade := node.BladeName()
	cab := node.CabinetName()
	if got := BCHFEvent(time.Now(), blade).Stream; got != events.StreamControllerBC {
		t.Errorf("BCHF stream = %v", got)
	}
	if got := HealthFaultEvent(time.Now(), blade, faults.ModuleHealthFault).Stream; got != events.StreamControllerBC {
		t.Errorf("blade health fault stream = %v", got)
	}
	if got := HealthFaultEvent(time.Now(), cab, faults.CabinetPowerFault).Stream; got != events.StreamControllerCC {
		t.Errorf("cabinet health fault stream = %v", got)
	}
}

func TestSEDCWarningEvent(t *testing.T) {
	blade := node.BladeName()
	r := SEDCWarningEvent(time.Now(), blade, faults.SEDCVoltage, "voltage", 0.91, true)
	if r.Field("direction") != "below" || r.Field("sensor") != "voltage" {
		t.Errorf("fields = %v", r.Fields)
	}
	if r.Severity != events.SevWarning {
		t.Error("SEDC warnings are warnings")
	}
	r2 := SEDCWarningEvent(time.Now(), node.CabinetName(), faults.SEDCTemp, "temperature", 80.1, false)
	if r2.Field("direction") != "above" {
		t.Error("above direction missing")
	}
	if r2.Stream != events.StreamControllerCC {
		t.Error("cabinet warning should come from CC")
	}
}

func TestHwErrorAndLinkEvents(t *testing.T) {
	r := HwErrorEvent(time.Now(), node, "dimm correctable burst")
	if r.Category != faults.ECHwError.Category() || r.Field("detail") == "" {
		t.Errorf("hw error event: %+v", r)
	}
	l := LinkErrorEvent(time.Now(), node.BladeName(), 2)
	if l.Field("lane") != "2" || l.Category != faults.LinkError.Category() {
		t.Errorf("link event: %+v", l)
	}
}

func TestHeartbeatStopEvent(t *testing.T) {
	r := HeartbeatStopEvent(time.Now(), node)
	if r.Severity != events.SevCritical {
		t.Error("heartbeat stop should be critical")
	}
	if r.Category != faults.HeartbeatStop.Category() {
		t.Error("category wrong")
	}
}
