// Package logparse parses raw text logs back into structured events —
// the inverse of loggen, and the first stage of the diagnosis pipeline.
//
// Internal (console/messages/consumer) lines carry no category tag, so
// the parser classifies kernel message text against a pattern table,
// the same way production log miners recognise "Kernel panic", MCE dumps
// or LustreError lines. Multi-line "Call Trace:" dumps are reassembled
// onto their owning record. Parsing is tolerant: unrecognisable lines
// are reported, not fatal (production logs have missing and partial
// information — the paper's challenge #1).
package logparse

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/loggen"
	"hpcfail/internal/stacktrace"
	"hpcfail/internal/textmatch"
	"hpcfail/internal/topology"
	"hpcfail/internal/workload"
)

// tsFormat mirrors loggen's timestamp format.
const tsFormat = "2006-01-02T15:04:05.000000Z07:00"
const torqueTSFormat = "01/02/2006 15:04:05.000000"

// categoryPattern classifies internal log messages. Checked in order;
// first match wins, so more specific substrings come first.
var categoryPatterns = []struct {
	sub string
	cat string
}{
	{"shutdown: scheduled by operator", "node_shutdown"},
	{"halting: system shutdown", "node_shutdown"},
	{"halting: no prior symptoms", "silent_shutdown"},
	{"boot: kernel up", "node_boot"},
	{"Kernel panic - not syncing", "kernel_panic"},
	{"BUG: unable to handle kernel paging request", "kernel_oops"},
	{"kernel BUG:", "kernel_bug"},
	{"Machine Check Exception", "mce"},
	{"mcelog:", "mce"},
	{"EDAC MC0: corrected memory error", "mem_err_correctable"},
	{"processor context corrupt", "cpu_corruption"},
	{"BIOS reported platform error", "bios_error"},
	{"blk_update_request: I/O error", "disk_error"},
	{"rcu_sched self-detected stall", "cpu_stall"},
	{"firmware: watchdog handshake lost", "firmware_bug"},
	{"LustreError: 11-0", "lustre_bug"},
	{"LustreError: 30-3", "lustre_io_error"},
	{"DVS: file system request hang", "dvs_error"},
	{"page allocation failure", "page_alloc_failure"},
	{"page fault lock contention", "page_fault_lock"},
	{"Out of memory: Kill process", "oom_killer"},
	{"segfault at", "segfault"},
	{"blocked for more than 120 seconds", "hung_task_timeout"},
	{"type:2; severity:80", "bios_class_error"},
	{"NVRM: Xid", "gpu_error"},
	{"trap invalid opcode", "software_trap"},
	{"NHC: abnormal application exit", "app_exit_abnormal"},
	{"set to admindown", "nhc_admindown"},
	{"NHC:", "nhc"},
	{"node state transition", "node_state"},
	{"slurmstepd: user-killed", "user_killed"},
}

// classifyMatcher is the Aho–Corasick automaton compiled from
// categoryPatterns. It scans each message once instead of running
// strings.Contains per pattern; FindFirst's lowest-index-wins semantics
// reproduce the naive first-match loop exactly (see classifyNaive and
// the equivalence tests in classify_test.go).
var classifyMatcher = textmatch.New(func() []string {
	subs := make([]string, len(categoryPatterns))
	for i, p := range categoryPatterns {
		subs[i] = p.sub
	}
	return subs
}())

// classify maps an internal message onto its event category;
// "unclassified" when no pattern matches.
func classify(msg string) string {
	if i := classifyMatcher.FindFirst(msg); i >= 0 {
		return categoryPatterns[i].cat
	}
	return "unclassified"
}

// classifyNaive is the original per-pattern scan, kept as the reference
// implementation for the classifier equivalence tests.
func classifyNaive(msg string) string {
	for _, p := range categoryPatterns {
		if strings.Contains(msg, p.sub) {
			return p.cat
		}
	}
	return "unclassified"
}

// ParseError reports one unparseable line.
type ParseError struct {
	Line int
	Text string
	Err  error
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("logparse: line %d: %v: %q", e.Line, e.Err, truncate(e.Text, 80))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// StreamReport accounts one stream's parse outcome — the per-stream
// quarantine ledger the ingestion layer surfaces instead of failing on
// malformed input. Counts plus a few samples, never a hard error.
type StreamReport struct {
	// Stream is the parsed stream.
	Stream events.Stream
	// Lines is the number of non-blank input lines.
	Lines int
	// Parsed is the number of records produced. For internal streams
	// this is below Lines even on clean input: Call Trace continuation
	// lines fold into their owning record.
	Parsed int
	// Quarantined is the number of lines rejected as malformed.
	Quarantined int
	// Reordered counts records whose timestamp precedes the previous
	// record's — out-of-order arrival within the stream.
	Reordered int
	// Samples holds up to maxQuarantineSamples quarantined lines for
	// operator triage.
	Samples []string
	// Errs retains the full ParseError list for callers that need it.
	Errs []error
}

// maxQuarantineSamples bounds the raw lines retained per stream.
const maxQuarantineSamples = 3

// EachQuarantined calls fn with every quarantined raw line the report
// retains, in file order and untruncated. Samples is a display ledger
// capped at maxQuarantineSamples and cut to 120 bytes; consumers that
// need the full quarantine stream — the template miner above all —
// walk the Errs list instead, which carries each ParseError's complete
// original text. No new ledger field needed.
func (r *StreamReport) EachQuarantined(fn func(line string)) {
	for _, e := range r.Errs {
		if pe, ok := e.(*ParseError); ok {
			fn(pe.Text)
		}
	}
}

// ParseLinesReport is ParseLines with per-stream error accounting: the
// records that parsed plus a StreamReport quantifying what did not.
func ParseLinesReport(stream events.Stream, sched topology.SchedulerType, lines []string) ([]events.Record, StreamReport) {
	nonBlank := 0
	for _, l := range lines {
		if strings.TrimSpace(l) != "" {
			nonBlank++
		}
	}
	recs, errs := ParseLines(stream, sched, lines)
	return recs, BuildStreamReport(stream, nonBlank, recs, errs)
}

// BuildStreamReport assembles the per-stream quarantine ledger from a
// parse outcome. It is shared by the sequential loader and the sharded
// streaming loader so both produce identical accounting: nonBlank is the
// stream's non-blank line count, recs and errs the (re)assembled parse
// output in file order.
func BuildStreamReport(stream events.Stream, nonBlank int, recs []events.Record, errs []error) StreamReport {
	rep := StreamReport{Stream: stream, Lines: nonBlank}
	rep.Parsed = len(recs)
	rep.Quarantined = len(errs)
	rep.Errs = errs
	for _, e := range errs {
		if len(rep.Samples) >= maxQuarantineSamples {
			break
		}
		if pe, ok := e.(*ParseError); ok {
			rep.Samples = append(rep.Samples, truncate(pe.Text, 120))
		}
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			rep.Reordered++
		}
	}
	return rep
}

// ParseLines parses one stream's raw lines. The stream selects the
// format; sched selects the scheduler dialect. Unparseable lines produce
// ParseErrors and are skipped.
func ParseLines(stream events.Stream, sched topology.SchedulerType, lines []string) ([]events.Record, []error) {
	switch stream {
	case events.StreamConsole, events.StreamMessages, events.StreamConsumer:
		return parseInternal(stream, lines)
	case events.StreamControllerBC, events.StreamControllerCC, events.StreamERD:
		return parseTagged(stream, lines)
	case events.StreamScheduler:
		if sched == topology.SchedulerTorque {
			return parseTorque(lines)
		}
		return parseSlurm(lines)
	case events.StreamALPS:
		return parseALPS(lines)
	default:
		return nil, []error{fmt.Errorf("logparse: unknown stream %v", stream)}
	}
}

// splitPrefix splits "{ts} {comp} {daemon}: {rest}" and returns the
// parsed pieces.
func splitPrefix(line string) (ts time.Time, comp cname.Name, daemon, rest string, err error) {
	sp1 := strings.IndexByte(line, ' ')
	if sp1 < 0 {
		return ts, comp, "", "", fmt.Errorf("no timestamp")
	}
	ts, err = time.Parse(tsFormat, line[:sp1])
	if err != nil {
		return ts, comp, "", "", err
	}
	line = line[sp1+1:]
	sp2 := strings.IndexByte(line, ' ')
	if sp2 < 0 {
		return ts, comp, "", "", fmt.Errorf("no component")
	}
	compStr := line[:sp2]
	if compStr != "-" {
		comp, err = cname.Parse(compStr)
		if err != nil {
			return ts, comp, "", "", err
		}
	}
	line = line[sp2+1:]
	colon := strings.Index(line, ": ")
	if colon < 0 {
		return ts, comp, "", "", fmt.Errorf("no daemon tag")
	}
	return ts, comp, line[:colon], line[colon+2:], nil
}

// parseInternal handles console/messages/consumer lines including
// multi-line call traces.
func parseInternal(stream events.Stream, lines []string) ([]events.Record, []error) {
	var recs []events.Record
	var errs []error
	var traceLines []string // pending raw trace lines for the last record
	flushTrace := func() {
		if len(traceLines) == 0 || len(recs) == 0 {
			traceLines = nil
			return
		}
		tr, _ := stacktrace.ParseTrace(traceLines)
		if len(tr.Frames) > 0 {
			recs[len(recs)-1].SetField("trace", tr.Encode())
		}
		traceLines = nil
	}
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		ts, comp, _, rest, err := splitPrefix(line)
		if err != nil {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: err})
			continue
		}
		// Trace continuation?
		trimmed := strings.TrimSpace(rest)
		if strings.HasPrefix(trimmed, "Call Trace:") {
			flushTrace()
			traceLines = append(traceLines, "Call Trace:")
			continue
		}
		if len(traceLines) > 0 {
			if _, ok := stacktrace.ParseFrame(trimmed); ok {
				traceLines = append(traceLines, trimmed)
				continue
			}
			flushTrace()
		}
		// A record line: "<N> msg [apid=K]".
		sev := events.SevInfo
		if strings.HasPrefix(rest, "<") {
			if end := strings.Index(rest, "> "); end > 0 {
				if lvl, err := strconv.Atoi(rest[1:end]); err == nil {
					sev = loggen.SeverityFromPrintk(lvl)
					rest = rest[end+2:]
				}
			}
		}
		var jobID int64
		if idx := strings.LastIndex(rest, " apid="); idx >= 0 {
			if v, err := strconv.ParseInt(rest[idx+6:], 10, 64); err == nil {
				jobID = v
				rest = rest[:idx]
			}
		}
		// Strip trailing structured k=v tokens back into fields.
		var kvs []string
		for {
			sp := strings.LastIndexByte(rest, ' ')
			if sp < 0 {
				break
			}
			tok := rest[sp+1:]
			if !isKVToken(tok) {
				break
			}
			kvs = append(kvs, tok)
			rest = rest[:sp]
		}
		r := events.Record{
			Time: ts, Stream: stream, Component: comp,
			Severity: sev, Category: classify(rest), Msg: rest, JobID: jobID,
		}
		for _, kv := range kvs {
			eq := strings.IndexByte(kv, '=')
			r.SetField(intern(kv[:eq]), intern(kv[eq+1:]))
		}
		if strings.Contains(rest, "scheduled by operator") {
			r.SetField("intent", "scheduled")
		}
		recs = append(recs, r)
	}
	flushTrace()
	return recs, errs
}

// parseTagged handles controller and ERD lines:
// "{ts} {comp} {daemon}: {category} {SEV} {msg} |k=v k=v".
func parseTagged(stream events.Stream, lines []string) ([]events.Record, []error) {
	var recs []events.Record
	var errs []error
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		ts, comp, _, rest, err := splitPrefix(line)
		if err != nil {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: err})
			continue
		}
		var fieldsPart string
		if idx := strings.Index(rest, " |"); idx >= 0 {
			fieldsPart = rest[idx+2:]
			rest = rest[:idx]
		}
		parts := strings.SplitN(rest, " ", 3)
		if len(parts) < 2 {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: fmt.Errorf("missing category/severity")})
			continue
		}
		sev, err := events.ParseSeverity(parts[1])
		if err != nil {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: err})
			continue
		}
		msg := ""
		if len(parts) == 3 {
			msg = parts[2]
		}
		r := events.Record{
			Time: ts, Stream: stream, Component: comp,
			Severity: sev, Category: intern(parts[0]), Msg: msg,
		}
		parseFieldsInto(&r, fieldsPart)
		recs = append(recs, r)
	}
	return recs, errs
}

// isKVToken reports whether tok looks like a structured "key=value"
// suffix: a lowercase snake_case key, '=', and a non-empty space-free
// value.
func isKVToken(tok string) bool {
	eq := strings.IndexByte(tok, '=')
	if eq <= 0 || eq == len(tok)-1 {
		return false
	}
	for _, c := range tok[:eq] {
		if (c < 'a' || c > 'z') && c != '_' {
			return false
		}
	}
	return true
}

// parseFieldsInto parses "k=v k2=v2" where values may contain spaces
// (a token without '=' continues the previous value).
func parseFieldsInto(r *events.Record, s string) {
	if s == "" {
		return
	}
	var key, val string
	flush := func() {
		if key != "" {
			r.SetField(intern(key), intern(val))
		}
	}
	for _, tok := range strings.Split(s, " ") {
		if eq := strings.IndexByte(tok, '='); eq > 0 {
			flush()
			key, val = tok[:eq], tok[eq+1:]
		} else if key != "" {
			val += " " + tok
		}
	}
	flush()
}

// parseALPS handles "ts apsched: CATEGORY jobid=N apid=M [status=S] [nodes=...]".
func parseALPS(lines []string) ([]events.Record, []error) {
	var recs []events.Record
	var errs []error
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: fmt.Errorf("no timestamp")})
			continue
		}
		ts, err := time.Parse(tsFormat, line[:sp])
		if err != nil {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: err})
			continue
		}
		rest := strings.TrimPrefix(line[sp+1:], "apsched: ")
		toks := strings.Split(rest, " ")
		if len(toks) == 0 || toks[0] == "" {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: fmt.Errorf("missing category")})
			continue
		}
		r := events.Record{Time: ts, Stream: events.StreamALPS, Severity: events.SevInfo, Category: intern(toks[0])}
		ok := true
		for _, tok := range toks[1:] {
			eq := strings.IndexByte(tok, '=')
			if eq <= 0 {
				continue
			}
			k, v := tok[:eq], tok[eq+1:]
			switch k {
			case "jobid":
				id, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: fmt.Errorf("bad jobid %q", v)})
					ok = false
				}
				r.JobID = id
			case "apid", "status", "nodes":
				r.SetField(intern(k), intern(v))
			}
		}
		if !ok {
			continue
		}
		if r.Field("status") != "" && r.Field("status") != "0" {
			r.Severity = events.SevWarning
		}
		r.Msg = fmt.Sprintf("apsched: %s apid %s (job %d)", r.Category, r.Field("apid"), r.JobID)
		recs = append(recs, r)
	}
	return recs, errs
}

// parseSlurm handles "ts slurmctld: JobId=N Action=... K=V ...".
func parseSlurm(lines []string) ([]events.Record, []error) {
	var recs []events.Record
	var errs []error
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: fmt.Errorf("no timestamp")})
			continue
		}
		ts, err := time.Parse(tsFormat, line[:sp])
		if err != nil {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: err})
			continue
		}
		rest := strings.TrimPrefix(line[sp+1:], "slurmctld: ")
		r, err := parseSchedulerKVs(ts, rest, "NodeList")
		if err != nil {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: err})
			continue
		}
		recs = append(recs, r)
	}
	return recs, errs
}

// parseTorque handles "ts;CODE;N.sdb;Action=... K=V ...".
func parseTorque(lines []string) ([]events.Record, []error) {
	var recs []events.Record
	var errs []error
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.SplitN(line, ";", 4)
		if len(parts) != 4 {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: fmt.Errorf("not a torque record")})
			continue
		}
		ts, err := time.Parse(torqueTSFormat, parts[0])
		if err != nil {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: err})
			continue
		}
		r, err := parseSchedulerKVs(ts, parts[3], "exec_host")
		if err != nil {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: err})
			continue
		}
		// The job id lives in the record key "N.sdb".
		idStr := strings.TrimSuffix(parts[2], ".sdb")
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Err: fmt.Errorf("bad job key %q", parts[2])})
			continue
		}
		r.JobID = id
		r.Severity = schedulerSeverity(r)
		r.Msg = schedulerMsg(r)
		recs = append(recs, r)
	}
	return recs, errs
}

// parseSchedulerKVs parses the shared scheduler payload.
func parseSchedulerKVs(ts time.Time, s, nodesKey string) (events.Record, error) {
	r := events.Record{Time: ts, Stream: events.StreamScheduler}
	for _, tok := range strings.Split(s, " ") {
		eq := strings.IndexByte(tok, '=')
		if eq <= 0 {
			continue
		}
		k, v := tok[:eq], tok[eq+1:]
		switch k {
		case "JobId":
			id, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return r, fmt.Errorf("bad JobId %q", v)
			}
			r.JobID = id
		case "Action":
			r.Category = intern(v)
		case "App":
			r.SetField("app", intern(v))
		case "User":
			r.SetField("user", intern(v))
		case "State":
			r.SetField("state", intern(v))
		case "ExitCode":
			r.SetField("exit_code", intern(v))
		case "ReqMem":
			r.SetField("req_mem_mb", intern(strings.TrimSuffix(v, "M")))
		case "Node":
			n, err := cname.Parse(v)
			if err != nil {
				return r, err
			}
			r.Component = n
		case "NodeList", "exec_host":
			_ = nodesKey
			r.SetField("nodes", v)
		}
	}
	if r.Category == "" {
		return r, fmt.Errorf("missing Action")
	}
	// Torque lines carry the job id in the record key too; the KV wins.
	r.Severity = schedulerSeverity(r)
	r.Msg = schedulerMsg(r)
	return r, nil
}

// schedulerSeverity reconstructs the severity convention of
// workload.EndEvent.
func schedulerSeverity(r events.Record) events.Severity {
	if r.Category != "job_end" {
		return events.SevInfo
	}
	st, err := workload.ParseState(r.Field("state"))
	if err != nil {
		return events.SevWarning
	}
	switch {
	case st == workload.StateCompleted:
		return events.SevInfo
	case st == workload.StateNodeFail:
		return events.SevError
	default:
		return events.SevWarning
	}
}

// schedulerMsg renders a canonical message for parsed scheduler records
// (the raw formats carry no free-text message).
func schedulerMsg(r events.Record) string {
	switch r.Category {
	case "job_start":
		return fmt.Sprintf("job %d (%s) started", r.JobID, r.Field("app"))
	case "job_end":
		return fmt.Sprintf("job %d (%s) ended state=%s exit=%s",
			r.JobID, r.Field("app"), r.Field("state"), r.Field("exit_code"))
	case "job_epilogue":
		return fmt.Sprintf("epilogue: cleaning job %d", r.JobID)
	default:
		return r.Category
	}
}

// JobTableBuilder reconstructs the job table one record at a time — the
// incremental form of JobsFromRecords, used by pipelines that fold the
// job table, apid index and failure detection into a single store
// traversal. Feed every record to Add (non-scheduler records are
// ignored), then call Jobs.
type JobTableBuilder struct {
	byID  map[int64]*workload.Job
	order []int64
}

// NewJobTableBuilder returns an empty builder.
func NewJobTableBuilder() *JobTableBuilder {
	return &JobTableBuilder{byID: map[int64]*workload.Job{}}
}

// Add folds one record into the table.
func (b *JobTableBuilder) Add(r *events.Record) {
	if r.Stream != events.StreamScheduler || r.JobID == 0 {
		return
	}
	j, ok := b.byID[r.JobID]
	if !ok {
		j = &workload.Job{ID: r.JobID}
		b.byID[r.JobID] = j
		b.order = append(b.order, r.JobID)
	}
	switch r.Category {
	case "job_start":
		j.Start = r.Time
		j.App = r.Field("app")
		j.User = r.Field("user")
		if nodes, err := workload.ParseNodesString(r.Field("nodes")); err == nil {
			j.Nodes = nodes
		}
		if v, err := strconv.Atoi(r.Field("req_mem_mb")); err == nil {
			j.ReqMemMB = v
		}
	case "job_end":
		j.End = r.Time
		if st, err := workload.ParseState(r.Field("state")); err == nil {
			j.State = st
		}
		if v, err := strconv.Atoi(r.Field("exit_code")); err == nil {
			j.ExitCode = v
		}
		if len(j.Nodes) == 0 {
			if nodes, err := workload.ParseNodesString(r.Field("nodes")); err == nil {
				j.Nodes = nodes
			}
		}
		if j.App == "" {
			j.App = r.Field("app")
		}
	}
}

// Job returns the current fold of one job, complete or not — zero
// Start/End mark missing records. The incremental engine uses it to
// re-fold a single job without materialising the whole table.
func (b *JobTableBuilder) Job(id int64) (workload.Job, bool) {
	j, ok := b.byID[id]
	if !ok {
		return workload.Job{}, false
	}
	return *j, true
}

// Jobs returns the completed jobs in first-seen order. Jobs missing a
// start or end record are dropped (still running at window end).
func (b *JobTableBuilder) Jobs() []workload.Job {
	var out []workload.Job
	for _, id := range b.order {
		j := b.byID[id]
		if !j.Start.IsZero() && !j.End.IsZero() {
			out = append(out, *j)
		}
	}
	return out
}

// JobsFromRecords reconstructs the job table from parsed scheduler
// records — the pipeline's substitute for scheduler accounting access.
// Jobs missing an end record are dropped (still running at window end).
func JobsFromRecords(recs []events.Record) []workload.Job {
	b := NewJobTableBuilder()
	for i := range recs {
		b.Add(&recs[i])
	}
	return b.Jobs()
}
