package logparse

import (
	"reflect"
	"strings"
	"testing"

	"hpcfail/internal/events"
	"hpcfail/internal/miner"
	"hpcfail/internal/topology"
)

// unknownDaemonLines mimics an un-profiled IB daemon: valid internal
// timestamps but a component the cname grammar rejects, so the static
// parser quarantines every line.
var unknownDaemonLines = []string{
	"2015-03-02T04:00:00.000000Z ib0 opensmd: SUBNET SWEEP complete: 384 nodes 24 switches in 12 ms",
	"2015-03-02T04:05:00.000000Z ib1 opensmd: SUBNET SWEEP complete: 383 nodes 24 switches in 9 ms",
	"2015-03-02T04:06:00.000000Z ib0 opensmd: link flap on port 17 state=DOWN",
}

func TestEachQuarantinedYieldsFullLines(t *testing.T) {
	long := "2015-03-02T04:00:00.000000Z ib0 opensmd: " + strings.Repeat("x", 200)
	lines := append([]string{long}, unknownDaemonLines...)
	_, rep := ParseLinesReport(events.StreamMessages, topology.SchedulerSlurm, lines)
	if rep.Quarantined != len(lines) {
		t.Fatalf("quarantined %d of %d", rep.Quarantined, len(lines))
	}
	// The display ledger is capped and truncated...
	if len(rep.Samples) != maxQuarantineSamples {
		t.Fatalf("samples = %d, want cap %d", len(rep.Samples), maxQuarantineSamples)
	}
	if len(rep.Samples[0]) >= len(long) {
		t.Fatalf("sample not truncated for display")
	}
	// ...but the accessor walks every line, untruncated.
	var got []string
	rep.EachQuarantined(func(l string) { got = append(got, l) })
	if !reflect.DeepEqual(got, lines) {
		t.Fatalf("EachQuarantined = %d lines, want all %d verbatim", len(got), len(lines))
	}
}

func TestParseLinesMinedReclaimsQuarantine(t *testing.T) {
	// Mix parseable internal lines with unknown-daemon lines.
	known := []string{
		"2015-03-02T04:01:00.000000Z c0-0c0s0n1 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)",
		"2015-03-02T04:02:00.000000Z c0-0c0s0n2 kernel: <1> Kernel panic - not syncing: fatal exception",
	}
	lines := append(append([]string{}, known...), unknownDaemonLines...)

	baseRecs, baseErrs := ParseLines(events.StreamMessages, topology.SchedulerSlurm, lines)
	if len(baseErrs) != len(unknownDaemonLines) {
		t.Fatalf("static parse quarantined %d, want %d", len(baseErrs), len(unknownDaemonLines))
	}

	// Mine the quarantine stream and load the profile back.
	m := miner.New(miner.Config{})
	for _, e := range baseErrs {
		m.Ingest(e.(*ParseError).Text)
	}
	mc := miner.NewMatcher(m.Export(1))

	recs, errs := ParseLinesMined(events.StreamMessages, topology.SchedulerSlurm, lines, mc)
	if len(errs) != 0 {
		t.Fatalf("mined parse still quarantines %d lines: %v", len(errs), errs[0])
	}
	// Matched lines parse exactly as before — same records, same order.
	if !reflect.DeepEqual(recs[:len(baseRecs)], baseRecs) {
		t.Fatalf("mined fallback perturbed primary records")
	}
	mined := recs[len(baseRecs):]
	if len(mined) != len(unknownDaemonLines) {
		t.Fatalf("reclaimed %d records, want %d", len(mined), len(unknownDaemonLines))
	}
	for _, r := range mined {
		if !strings.HasPrefix(r.Category, "mined_") {
			t.Errorf("mined record category = %q", r.Category)
		}
		if r.Time.IsZero() {
			t.Errorf("mined record has no timebase")
		}
		if r.Stream != events.StreamMessages {
			t.Errorf("mined record stream = %v", r.Stream)
		}
	}
	// The flap line carries a warning-grade keyword.
	if mined[2].Severity != events.SevWarning {
		t.Errorf("flap severity = %v, want warning", mined[2].Severity)
	}

	// Report accounting: reclaimed lines count as parsed.
	_, rep := ParseLinesReportMined(events.StreamMessages, topology.SchedulerSlurm, lines, mc)
	if rep.Quarantined != 0 || rep.Parsed != len(recs) {
		t.Fatalf("mined report = %+v", rep)
	}
}

func TestParseLinesMinedNilClassifier(t *testing.T) {
	recs, errs := ParseLinesMined(events.StreamMessages, topology.SchedulerSlurm, unknownDaemonLines, nil)
	baseRecs, baseErrs := ParseLines(events.StreamMessages, topology.SchedulerSlurm, unknownDaemonLines)
	if !reflect.DeepEqual(recs, baseRecs) || len(errs) != len(baseErrs) {
		t.Fatalf("nil classifier diverged from ParseLines")
	}
}
