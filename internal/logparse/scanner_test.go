package logparse

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"hpcfail/internal/chaos"
	"hpcfail/internal/events"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/loggen"
	"hpcfail/internal/topology"
)

func TestLineScannerMatchesSplit(t *testing.T) {
	cases := []string{
		"",
		"\n",
		"\n\n\n",
		"a",
		"a\n",
		"a\nb\nc",
		"a\nb\nc\n",
		"a\n\nb\n\n",
		"one line no newline",
		strings.Repeat("x\n", 1000),
	}
	for _, in := range cases {
		want := strings.Split(strings.TrimRight(in, "\n"), "\n")
		got := SplitLines(in)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("SplitLines(%q) = %q, want %q", in, got, want)
		}
		// The scanner itself must agree line by line.
		sc := NewLineScanner(in)
		var lines []string
		for {
			l, ok := sc.Next()
			if !ok {
				break
			}
			lines = append(lines, l)
		}
		if len(lines) != len(want) && !(len(lines) == 0 && len(want) == 1 && want[0] == "") {
			t.Errorf("scanner on %q yielded %d lines, want %d", in, len(lines), len(want))
		}
	}
}

func TestLineScannerZeroAlloc(t *testing.T) {
	data := strings.Repeat("2015-03-02T00:00:00.000000Z c0-0c0s0n0 kernel: <6> boot: kernel up\n", 512)
	sc := NewLineScanner(data)
	allocs := testing.AllocsPerRun(100, func() {
		sc.off = 0
		for {
			if _, ok := sc.Next(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Errorf("scanner allocated %.1f per full scan, want 0", allocs)
	}
}

func TestInternCanonical(t *testing.T) {
	// A parsed category must be the canonical instance, not a substring
	// of the source line.
	line := "2015-03-02T10:00:00.000000Z c0-0c0s1 bcsysd: ec_hw_error WARNING voltage fault |sensor=VDD"
	recs, errs := ParseLines(events.StreamControllerBC, topology.SchedulerSlurm, []string{line})
	if len(errs) != 0 || len(recs) != 1 {
		t.Fatalf("parse: %d recs %v", len(recs), errs)
	}
	if recs[0].Category != "ec_hw_error" {
		t.Fatalf("category = %q", recs[0].Category)
	}
	if canon["ec_hw_error"] == "" {
		t.Fatal("ec_hw_error not in intern table")
	}
}

// chunkLines renders one internal stream of a scenario with traces and
// chaos damage mixed in, to stress safe-boundary selection.
func chunkLines(t *testing.T, damage bool) []string {
	t.Helper()
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 384, CabinetCols: 2, Scheduler: topology.SchedulerSlurm, Cray: true}
	scn, err := faultsim.Generate(p, simStart, simStart.Add(2*24*time.Hour), 7)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, r := range scn.Records {
		if r.Stream != events.StreamConsole {
			continue
		}
		lines = append(lines, loggen.Render(r, topology.SchedulerSlurm)...)
	}
	if damage {
		inj := chaos.New(chaos.Config{Garble: 0.05, Truncate: 0.05, Duplicate: 0.05, Seed: 11})
		lines = inj.CorruptLines("console", lines)
	}
	return lines
}

func TestSafeChunksEquivalence(t *testing.T) {
	for _, damage := range []bool{false, true} {
		lines := chunkLines(t, damage)
		wantRecs, wantErrs := ParseLines(events.StreamConsole, topology.SchedulerSlurm, lines)
		for _, size := range []int{1, 7, 64, 1000, len(lines) + 10} {
			chunks := SafeChunks(events.StreamConsole, lines, size)
			total := 0
			for _, c := range chunks {
				if c.Start != total {
					t.Fatalf("size %d: chunk start %d, want %d", size, c.Start, total)
				}
				total += len(c.Lines)
			}
			if total != len(lines) {
				t.Fatalf("size %d: chunks cover %d of %d lines", size, total, len(lines))
			}
			var recs []events.Record
			var errs []error
			for _, c := range chunks {
				r, e := ParseChunk(events.StreamConsole, topology.SchedulerSlurm, c)
				recs = append(recs, r...)
				errs = append(errs, e...)
			}
			if !reflect.DeepEqual(recs, wantRecs) {
				t.Fatalf("damage=%v size %d: chunked parse produced %d records, sequential %d (or contents differ)",
					damage, size, len(recs), len(wantRecs))
			}
			if len(errs) != len(wantErrs) {
				t.Fatalf("damage=%v size %d: %d errors vs %d", damage, size, len(errs), len(wantErrs))
			}
			for i := range errs {
				if errs[i].Error() != wantErrs[i].Error() {
					t.Fatalf("damage=%v size %d: err %d: %v vs %v", damage, size, i, errs[i], wantErrs[i])
				}
			}
		}
	}
}

func TestSafeChunksTaggedStream(t *testing.T) {
	// Line-independent formats may split anywhere; verify coverage and
	// equivalence on a tagged stream too.
	var lines []string
	for i := 0; i < 100; i++ {
		lines = append(lines, "2015-03-02T10:00:00.000000Z c0-0c0s1 bcsysd: ec_hw_error WARNING fault |sensor=VDD")
	}
	want, _ := ParseLines(events.StreamControllerBC, topology.SchedulerSlurm, lines)
	var got []events.Record
	for _, c := range SafeChunks(events.StreamControllerBC, lines, 13) {
		r, _ := ParseChunk(events.StreamControllerBC, topology.SchedulerSlurm, c)
		got = append(got, r...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("tagged-stream chunked parse diverged")
	}
}
