// Sharded-ingestion support: a zero-allocation line scanner, string
// interning for the tokens that repeat across millions of lines, and
// chunk splitting with trace-safe boundaries so a file can be parsed by
// several workers concurrently while producing output byte-identical to
// the sequential parse.
package logparse

import (
	"strings"

	"hpcfail/internal/events"
	"hpcfail/internal/stacktrace"
	"hpcfail/internal/topology"
	"hpcfail/internal/workload"
)

// LineScanner iterates the lines of an in-memory log file without
// allocating: each Next returns a substring of the input sharing its
// backing array. Trailing newlines are ignored, matching the
// TrimRight+Split convention of the sequential loader.
type LineScanner struct {
	s   string
	off int
}

// NewLineScanner returns a scanner over data with trailing newlines
// stripped.
func NewLineScanner(data string) *LineScanner {
	return &LineScanner{s: strings.TrimRight(data, "\n")}
}

// Next returns the next line (without its newline) and whether one was
// available. Empty lines between newlines are returned as "".
func (sc *LineScanner) Next() (string, bool) {
	if sc.off > len(sc.s) {
		return "", false
	}
	rest := sc.s[sc.off:]
	if i := strings.IndexByte(rest, '\n'); i >= 0 {
		sc.off += i + 1
		return rest[:i], true
	}
	sc.off = len(sc.s) + 1
	return rest, true
}

// CountLines returns the number of lines Next will yield, without
// consuming the scanner.
func (sc *LineScanner) CountLines() int {
	if sc.s == "" {
		return 0
	}
	return strings.Count(sc.s, "\n") + 1
}

// SplitLines splits raw file data into lines exactly the way the
// sequential loader does (strip trailing newlines, split on '\n'), but
// through the scanner: one slice allocation, no per-line copies.
func SplitLines(data string) []string {
	sc := NewLineScanner(data)
	n := sc.CountLines()
	if n == 0 {
		return []string{""}
	}
	out := make([]string, 0, n)
	for {
		line, ok := sc.Next()
		if !ok {
			break
		}
		out = append(out, line)
	}
	return out
}

// canon interns the tokens that repeat across a corpus: category tags,
// severity labels, structured field keys and scheduler state values.
// The map is built once at init and never written again, so concurrent
// parse workers read it lock-free. Interning matters on the streaming
// path: a parsed record that holds the canonical constant instead of a
// substring of its source line does not pin the whole file buffer.
var canon map[string]string

func init() {
	canon = make(map[string]string, 128)
	add := func(ss ...string) {
		for _, s := range ss {
			canon[s] = s
		}
	}
	for _, p := range categoryPatterns {
		add(p.cat)
	}
	// Tagged-stream categories seen in controller/ERD logs and the
	// scheduler actions (loggen's vocabularies).
	add("unclassified", "ec_node_failed", "ec_node_unavailable", "ec_heartbeat_stop",
		"ec_hw_error", "ec_link_error", "nvf", "l0_sysd_mce", "sedc_warning",
		"sedc_reading", "power_fault", "fan_fault", "voltage_fault",
		"job_start", "job_end", "job_epilogue", "placement", "release",
		"node_state", "unknown")
	// Severity labels and common structured field keys/values.
	add("INFO", "WARNING", "ERROR", "CRITICAL")
	add("app", "user", "state", "exit_code", "req_mem_mb", "nodes", "apid",
		"status", "intent", "scheduled", "sensor", "reading", "threshold",
		"trace", "modules")
	for _, st := range []workload.State{workload.StateCompleted, workload.StateFailed,
		workload.StateNodeFail, workload.StateCancelled, workload.StateTimeout,
		workload.StateOOM} {
		add(st.String())
	}
	add("0", "1")
}

// intern returns the canonical instance of s when one exists, else s
// itself. Zero allocation either way.
func intern(s string) string {
	if c, ok := canon[s]; ok {
		return c
	}
	return s
}

// Chunk is a contiguous run of lines from one stream file, placed so
// that parsing it in isolation yields exactly the records and errors the
// sequential parse would produce for those lines.
type Chunk struct {
	// Lines is a subslice of the file's lines (shared backing).
	Lines []string
	// Start is the index of Lines[0] in the whole file, used to offset
	// ParseError line numbers back to file coordinates.
	Start int
}

// safeBoundary reports whether a chunk may begin at line: the line must
// parse as a clean record line that is neither a "Call Trace:" header
// nor a trace frame continuation. Splitting anywhere else could detach a
// multi-line call trace from its owning record (or re-parse frames as
// records), diverging from the sequential result. Malformed and blank
// lines are rejected too: they do not reset the sequential parser's
// pending-trace state, so a chunk must not begin on one.
func safeBoundary(line string) bool {
	if strings.TrimSpace(line) == "" {
		return false
	}
	_, _, _, rest, err := splitPrefix(line)
	if err != nil {
		return false
	}
	trimmed := strings.TrimSpace(rest)
	if strings.HasPrefix(trimmed, "Call Trace:") {
		return false
	}
	if _, isFrame := stacktrace.ParseFrame(trimmed); isFrame {
		return false
	}
	return true
}

// SafeChunks splits lines into chunks of roughly chunkSize lines whose
// boundaries are safe for independent parsing. For the internal streams
// (console/messages/consumer) boundaries are advanced past call-trace
// runs; all other stream formats are line-independent, so every boundary
// is safe. chunkSize <= 0 selects 4096.
func SafeChunks(stream events.Stream, lines []string, chunkSize int) []Chunk {
	if chunkSize <= 0 {
		chunkSize = 4096
	}
	if len(lines) == 0 {
		return nil
	}
	traceAware := stream.Internal()
	var out []Chunk
	start := 0
	for start < len(lines) {
		end := start + chunkSize
		if end >= len(lines) {
			out = append(out, Chunk{Lines: lines[start:], Start: start})
			break
		}
		if traceAware {
			for end < len(lines) && !safeBoundary(lines[end]) {
				end++
			}
		}
		out = append(out, Chunk{Lines: lines[start:end], Start: start})
		start = end
	}
	return out
}

// ParseChunk parses one chunk. Records are identical to the sequential
// parse of the same lines; ParseError line numbers are rebased to file
// coordinates so the assembled error list matches ParseLines on the
// whole file.
func ParseChunk(stream events.Stream, sched topology.SchedulerType, c Chunk) ([]events.Record, []error) {
	recs, errs := ParseLines(stream, sched, c.Lines)
	if c.Start != 0 {
		for _, e := range errs {
			if pe, ok := e.(*ParseError); ok {
				pe.Line += c.Start
			}
		}
	}
	return recs, errs
}
