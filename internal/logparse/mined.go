package logparse

import (
	"strings"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/topology"
)

// MinedClassifier classifies a raw line against a mined template
// profile — implemented by miner.Matcher. logparse depends on the
// interface, not the miner package, so the parser stays free of mining
// machinery and the miner stays free of parsing machinery.
type MinedClassifier interface {
	// Match returns the mined category for the line, if any template
	// covers it.
	Match(line string) (category string, ok bool)
}

// ParseLinesMined parses like ParseLines, then offers each quarantined
// line to the mined-profile classifier: lines a template covers are
// reclaimed as synthesised records (appended after the primary
// records) instead of staying errors. The primary parse is untouched —
// every line the static format accepts produces exactly the record it
// always did, which is what keeps mining byte-identical on matched
// lines. A nil classifier is ParseLines exactly.
func ParseLinesMined(stream events.Stream, sched topology.SchedulerType, lines []string, mc MinedClassifier) ([]events.Record, []error) {
	recs, errs := ParseLines(stream, sched, lines)
	if mc == nil || len(errs) == 0 {
		return recs, errs
	}
	kept := make([]error, 0, len(errs))
	for _, e := range errs {
		pe, ok := e.(*ParseError)
		if !ok {
			kept = append(kept, e)
			continue
		}
		cat, ok := mc.Match(pe.Text)
		if !ok {
			kept = append(kept, e)
			continue
		}
		r, ok := minedRecord(stream, pe.Text, cat)
		if !ok {
			kept = append(kept, e)
			continue
		}
		recs = append(recs, r)
	}
	return recs, kept
}

// ParseLinesReportMined is ParseLinesMined with the per-stream
// quarantine ledger: reclaimed lines count as Parsed, not Quarantined.
func ParseLinesReportMined(stream events.Stream, sched topology.SchedulerType, lines []string, mc MinedClassifier) ([]events.Record, StreamReport) {
	nonBlank := 0
	for _, l := range lines {
		if strings.TrimSpace(l) != "" {
			nonBlank++
		}
	}
	recs, errs := ParseLinesMined(stream, sched, lines, mc)
	return recs, BuildStreamReport(stream, nonBlank, recs, errs)
}

// minedRecord synthesises a structured record from a quarantined line
// a mined template classified. Best-effort by design: the first
// timestamp-shaped token supplies the timebase (no timestamp, no
// record — a time-less record is useless downstream), a cname-shaped
// token near it supplies the component, and severity comes from a
// keyword scan. The mined category slug is the whole point.
func minedRecord(stream events.Stream, line, category string) (events.Record, bool) {
	fields := strings.Fields(line)
	ts := time.Time{}
	tsIdx := -1
	for i, f := range fields {
		if i >= 3 {
			break
		}
		if t, err := time.Parse(tsFormat, f); err == nil {
			ts, tsIdx = t, i
			break
		}
		if t, err := time.Parse(time.RFC3339, f); err == nil {
			ts, tsIdx = t, i
			break
		}
	}
	if tsIdx < 0 {
		return events.Record{}, false
	}
	var comp cname.Name
	for i := tsIdx + 1; i < len(fields) && i <= tsIdx+3; i++ {
		if n, err := cname.Parse(fields[i]); err == nil {
			comp = n
			break
		}
	}
	return events.Record{
		Time:      ts,
		Stream:    stream,
		Component: comp,
		Severity:  minedSeverity(line),
		Category:  intern(category),
		Msg:       strings.Join(fields[tsIdx+1:], " "),
	}, true
}

// minedSeverity grades a mined line by keyword — the only signal an
// unknown format offers.
func minedSeverity(line string) events.Severity {
	l := strings.ToLower(line)
	switch {
	case strings.Contains(l, "fatal"), strings.Contains(l, "panic"):
		return events.SevCritical
	case strings.Contains(l, "error"), strings.Contains(l, "fail"):
		return events.SevError
	case strings.Contains(l, "warn"), strings.Contains(l, "flap"), strings.Contains(l, "retry"):
		return events.SevWarning
	}
	return events.SevInfo
}
