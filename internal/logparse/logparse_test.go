package logparse

import (
	"testing"
	"time"

	"hpcfail/internal/events"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/loggen"
	"hpcfail/internal/topology"
	"hpcfail/internal/workload"
)

var simStart = time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)

// roundTripScenario generates a small scenario, renders every stream and
// parses it back.
func roundTripScenario(t *testing.T, sched topology.SchedulerType) (orig []events.Record, parsed []events.Record) {
	t.Helper()
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 384, CabinetCols: 2, Scheduler: sched, Cray: true}
	p.Workload.MeanInterarrival = 30 * time.Minute
	scn, err := faultsim.Generate(p, simStart, simStart.Add(2*24*time.Hour), 5)
	if err != nil {
		t.Fatal(err)
	}
	byStream := map[events.Stream][]events.Record{}
	for _, r := range scn.Records {
		byStream[r.Stream] = append(byStream[r.Stream], r)
	}
	for stream, recs := range byStream {
		var lines []string
		for _, r := range recs {
			lines = append(lines, loggen.Render(r, sched)...)
		}
		got, errs := ParseLines(stream, sched, lines)
		for _, e := range errs {
			t.Errorf("parse error on %v: %v", stream, e)
		}
		if len(got) != len(recs) {
			t.Fatalf("stream %v: parsed %d records from %d originals", stream, len(got), len(recs))
		}
		orig = append(orig, recs...)
		parsed = append(parsed, got...)
	}
	return orig, parsed
}

func TestRoundTripSlurm(t *testing.T) {
	orig, parsed := roundTripScenario(t, topology.SchedulerSlurm)
	compareRoundTrip(t, orig, parsed)
}

func TestRoundTripTorque(t *testing.T) {
	orig, parsed := roundTripScenario(t, topology.SchedulerTorque)
	compareRoundTrip(t, orig, parsed)
}

func compareRoundTrip(t *testing.T, orig, parsed []events.Record) {
	t.Helper()
	mismatch := 0
	for i := range orig {
		o, p := orig[i], parsed[i]
		if !o.Time.Equal(p.Time) {
			t.Errorf("record %d time %v != %v", i, o.Time, p.Time)
			mismatch++
		}
		if o.Stream != p.Stream || o.Component != p.Component {
			t.Errorf("record %d identity mismatch: %v/%v vs %v/%v", i, o.Stream, o.Component, p.Stream, p.Component)
			mismatch++
		}
		if o.Category != p.Category {
			t.Errorf("record %d category %q -> %q (msg %q)", i, o.Category, p.Category, o.Msg)
			mismatch++
		}
		if o.Severity != p.Severity {
			t.Errorf("record %d severity %v -> %v (cat %q state %q)", i, o.Severity, p.Severity, o.Category, o.Field("state"))
			mismatch++
		}
		if o.JobID != p.JobID {
			t.Errorf("record %d jobID %d -> %d", i, o.JobID, p.JobID)
			mismatch++
		}
		// Messages survive verbatim except on the scheduler and ALPS
		// streams (raw formats carry no free text).
		if o.Stream != events.StreamScheduler && o.Stream != events.StreamALPS && o.Msg != p.Msg {
			t.Errorf("record %d msg %q -> %q", i, o.Msg, p.Msg)
			mismatch++
		}
		// Structured fields survive (trace loses offsets by design but
		// keeps symbols/modules — Encode form is identical).
		for k, v := range o.Fields {
			if got := p.Field(k); got != v {
				t.Errorf("record %d field %s=%q -> %q (cat %q)", i, k, v, got, o.Category)
				mismatch++
			}
		}
		if mismatch > 25 {
			t.Fatal("too many mismatches; aborting")
		}
	}
}

func TestClassifyUnknown(t *testing.T) {
	if got := classify("some novel message nobody generated"); got != "unclassified" {
		t.Errorf("classify fallback = %q", got)
	}
}

func TestParseInternalToleratesGarbage(t *testing.T) {
	lines := []string{
		"",
		"complete garbage",
		"2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel: <2> Kernel panic - not syncing",
		"2015-03-02T99:99:99 c0-0c0s1n2 kernel: bad timestamp",
	}
	recs, errs := ParseLines(events.StreamConsole, topology.SchedulerSlurm, lines)
	if len(recs) != 1 {
		t.Fatalf("parsed %d records, want 1", len(recs))
	}
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want 2: %v", len(errs), errs)
	}
	if recs[0].Category != "kernel_panic" || recs[0].Severity != events.SevCritical {
		t.Errorf("parsed record: %+v", recs[0])
	}
	for _, e := range errs {
		if e.Error() == "" {
			t.Error("empty error string")
		}
	}
}

func TestParseInternalTraceReassembly(t *testing.T) {
	lines := []string{
		"2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel: <3> BUG: unable to handle kernel paging request apid=42",
		"2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel: Call Trace:",
		"2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel:  [<ffffffff810a1b2c>] oom_kill_process+0x12c/0x340",
		"2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel:  [<ffffffff810a1b2d>] out_of_memory+0x1/0x2",
		"2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel: <6> node c0-0c0s1n2 boot: kernel up",
	}
	recs, errs := ParseLines(events.StreamConsole, topology.SchedulerSlurm, lines)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
	if recs[0].JobID != 42 {
		t.Errorf("apid lost: %+v", recs[0])
	}
	if got := recs[0].Field("trace"); got != "oom_kill_process|out_of_memory" {
		t.Errorf("trace = %q", got)
	}
	if recs[1].Category != "node_boot" {
		t.Errorf("following record category = %q", recs[1].Category)
	}
}

func TestParseTaggedFieldsWithSpaces(t *testing.T) {
	line := "2015-03-02T10:15:30.000000Z c0-0c0s1n2 erd: ec_hw_errors WARNING ec_hw_errors: hw malfunction |detail=correctable error burst"
	recs, errs := ParseLines(events.StreamERD, topology.SchedulerSlurm, []string{line})
	if len(errs) != 0 || len(recs) != 1 {
		t.Fatalf("recs=%d errs=%v", len(recs), errs)
	}
	if got := recs[0].Field("detail"); got != "correctable error burst" {
		t.Errorf("detail = %q", got)
	}
}

func TestParseSchedulerErrors(t *testing.T) {
	bad := []string{
		"not a line",
		"2015-03-02T10:15:30.000000Z slurmctld: JobId=zzz Action=job_start",
		"2015-03-02T10:15:30.000000Z slurmctld: JobId=5",
	}
	recs, errs := ParseLines(events.StreamScheduler, topology.SchedulerSlurm, bad)
	if len(recs) != 0 {
		t.Errorf("parsed %d records from garbage", len(recs))
	}
	if len(errs) != 3 {
		t.Errorf("got %d errors, want 3: %v", len(errs), errs)
	}
	badTorque := []string{"03/02/2015;E;xx", "garbage"}
	recs, errs = ParseLines(events.StreamScheduler, topology.SchedulerTorque, badTorque)
	if len(recs) != 0 || len(errs) != 2 {
		t.Errorf("torque garbage: recs=%d errs=%d", len(recs), len(errs))
	}
}

func TestJobsFromRecords(t *testing.T) {
	j := workload.Job{
		ID: 7, App: "cfd_solver", User: "user01",
		Start: simStart, End: simStart.Add(time.Hour),
		State: workload.StateCompleted, ExitCode: 0, ReqMemMB: 4096,
	}
	j.Nodes, _ = workload.ParseNodesString("c0-0c0s0n0,c0-0c0s0n1")
	recs := []events.Record{workload.StartEvent(&j), workload.EndEvent(&j)}
	jobs := JobsFromRecords(recs)
	if len(jobs) != 1 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	got := jobs[0]
	if got.ID != 7 || got.App != "cfd_solver" || got.User != "user01" ||
		!got.Start.Equal(j.Start) || !got.End.Equal(j.End) ||
		got.State != workload.StateCompleted || got.ReqMemMB != 4096 ||
		len(got.Nodes) != 2 {
		t.Errorf("reconstructed job: %+v", got)
	}
	// A start without end is dropped.
	onlyStart := []events.Record{workload.StartEvent(&j)}
	if len(JobsFromRecords(onlyStart)) != 0 {
		t.Error("job without end record should be dropped")
	}
}

func TestJobsFromRecordsRoundTripScenario(t *testing.T) {
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 192, CabinetCols: 2, Scheduler: topology.SchedulerSlurm, Cray: true}
	p.Workload.MeanInterarrival = time.Hour
	scn, err := faultsim.Generate(p, simStart, simStart.Add(24*time.Hour), 9)
	if err != nil {
		t.Fatal(err)
	}
	jobs := JobsFromRecords(scn.Records)
	if len(jobs) != len(scn.Jobs) {
		t.Fatalf("reconstructed %d jobs from %d", len(jobs), len(scn.Jobs))
	}
	byID := map[int64]workload.Job{}
	for _, j := range scn.Jobs {
		byID[j.ID] = j
	}
	for _, got := range jobs {
		want, ok := byID[got.ID]
		if !ok {
			t.Fatalf("unexpected job %d", got.ID)
		}
		if got.App != want.App || got.State != want.State || len(got.Nodes) != len(want.Nodes) {
			t.Errorf("job %d mismatch: %+v vs %+v", got.ID, got, want)
		}
	}
}

func TestIsKVToken(t *testing.T) {
	good := []string{"a=1", "action=admindown", "req_mem_mb=4096"}
	bad := []string{"=x", "a=", "A=1", "error", "order:4", "a-b=1"}
	for _, s := range good {
		if !isKVToken(s) {
			t.Errorf("isKVToken(%q) = false", s)
		}
	}
	for _, s := range bad {
		if isKVToken(s) {
			t.Errorf("isKVToken(%q) = true", s)
		}
	}
}

func TestParseUnknownStream(t *testing.T) {
	if _, errs := ParseLines(events.Stream(99), topology.SchedulerSlurm, nil); len(errs) != 1 {
		t.Error("unknown stream should produce an error")
	}
}
