package logparse

// Fuzz targets: parsers must never panic on arbitrary input — they run
// over production logs with missing and mangled lines (the paper's
// challenge #1). Under plain `go test` these execute the seed corpus;
// run `go test -fuzz FuzzParseInternal ./internal/logparse` to explore.

import (
	"testing"

	"hpcfail/internal/events"
	"hpcfail/internal/topology"
)

func FuzzParseInternal(f *testing.F) {
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel: <2> Kernel panic - not syncing")
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel: Call Trace:")
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel:  [<ffffffff810a1b2c>] oom_kill_process+0x12c/0x340")
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1n2 nhc: <4> NHC: test memory FAILED on c0-0c0s1n2 test=memory result=fail apid=42")
	f.Add("")
	f.Add("garbage with spaces and : colons")
	f.Add("2015-03-02T10:15:30.000000Z - kernel: <6> no component")
	f.Fuzz(func(t *testing.T, line string) {
		recs, _ := ParseLines(events.StreamConsole, topology.SchedulerSlurm, []string{line})
		for _, r := range recs {
			if r.Stream != events.StreamConsole {
				t.Fatalf("wrong stream: %+v", r)
			}
		}
	})
}

func FuzzParseTagged(f *testing.F) {
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1n2 erd: ec_hw_errors WARNING msg |detail=two words k=v")
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1 bcsysd: ec_bc_heartbeat_fault ERROR blade fault")
	f.Add("x y z")
	f.Add("2015-03-02T10:15:30.000000Z c0-0 ccsysd: cat NOTASEVERITY msg")
	f.Fuzz(func(t *testing.T, line string) {
		ParseLines(events.StreamERD, topology.SchedulerSlurm, []string{line})
	})
}

func FuzzParseSlurm(f *testing.F) {
	f.Add("2015-03-02T10:15:30.000000Z slurmctld: JobId=397 Action=job_end State=COMPLETED ExitCode=0 NodeList=c0-0c0s0n[0-3]")
	f.Add("2015-03-02T10:15:30.000000Z slurmctld: JobId=1 Action=job_start App=x User=y ReqMem=4096M")
	f.Add("JobId=zzz")
	f.Fuzz(func(t *testing.T, line string) {
		ParseLines(events.StreamScheduler, topology.SchedulerSlurm, []string{line})
	})
}

func FuzzParseTorque(f *testing.F) {
	f.Add("03/02/2015 10:15:30.000000;E;397.sdb;Action=job_end State=COMPLETED ExitCode=0 exec_host=c0-0c0s0n0")
	f.Add(";;;;")
	f.Add("03/02/2015 10:15:30.000000;S;x.sdb;Action=job_start")
	f.Fuzz(func(t *testing.T, line string) {
		ParseLines(events.StreamScheduler, topology.SchedulerTorque, []string{line})
	})
}
