package logparse

// Fuzz targets: parsers must never panic on arbitrary input — they run
// over production logs with missing and mangled lines (the paper's
// challenge #1). Under plain `go test` these execute the seed corpus;
// run `go test -fuzz FuzzParseInternal ./internal/logparse` to explore.

import (
	"testing"

	"hpcfail/internal/chaos"
	"hpcfail/internal/events"
	"hpcfail/internal/topology"
)

func FuzzParseInternal(f *testing.F) {
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel: <2> Kernel panic - not syncing")
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel: Call Trace:")
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel:  [<ffffffff810a1b2c>] oom_kill_process+0x12c/0x340")
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1n2 nhc: <4> NHC: test memory FAILED on c0-0c0s1n2 test=memory result=fail apid=42")
	f.Add("")
	f.Add("garbage with spaces and : colons")
	f.Add("2015-03-02T10:15:30.000000Z - kernel: <6> no component")
	f.Fuzz(func(t *testing.T, line string) {
		recs, _ := ParseLines(events.StreamConsole, topology.SchedulerSlurm, []string{line})
		for _, r := range recs {
			if r.Stream != events.StreamConsole {
				t.Fatalf("wrong stream: %+v", r)
			}
		}
	})
}

func FuzzParseTagged(f *testing.F) {
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1n2 erd: ec_hw_errors WARNING msg |detail=two words k=v")
	f.Add("2015-03-02T10:15:30.000000Z c0-0c0s1 bcsysd: ec_bc_heartbeat_fault ERROR blade fault")
	f.Add("x y z")
	f.Add("2015-03-02T10:15:30.000000Z c0-0 ccsysd: cat NOTASEVERITY msg")
	f.Fuzz(func(t *testing.T, line string) {
		ParseLines(events.StreamERD, topology.SchedulerSlurm, []string{line})
	})
}

func FuzzParseSlurm(f *testing.F) {
	f.Add("2015-03-02T10:15:30.000000Z slurmctld: JobId=397 Action=job_end State=COMPLETED ExitCode=0 NodeList=c0-0c0s0n[0-3]")
	f.Add("2015-03-02T10:15:30.000000Z slurmctld: JobId=1 Action=job_start App=x User=y ReqMem=4096M")
	f.Add("JobId=zzz")
	f.Fuzz(func(t *testing.T, line string) {
		ParseLines(events.StreamScheduler, topology.SchedulerSlurm, []string{line})
	})
}

func FuzzParseTorque(f *testing.F) {
	f.Add("03/02/2015 10:15:30.000000;E;397.sdb;Action=job_end State=COMPLETED ExitCode=0 exec_host=c0-0c0s0n0")
	f.Add(";;;;")
	f.Add("03/02/2015 10:15:30.000000;S;x.sdb;Action=job_start")
	f.Fuzz(func(t *testing.T, line string) {
		ParseLines(events.StreamScheduler, topology.SchedulerTorque, []string{line})
	})
}

// FuzzParseChaos seeds every parser family with chaos-corrupted
// renders of valid lines and asserts the quarantine ledger stays
// consistent: counts reconcile, reruns agree, nothing panics.
func FuzzParseChaos(f *testing.F) {
	valid := []string{
		"2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel: <2> Kernel panic - not syncing",
		"2015-03-02T10:15:30.000000Z c0-0c0s1n2 nhc: <4> NHC: test memory FAILED on c0-0c0s1n2 test=memory result=fail apid=42",
		"2015-03-02T10:15:30.000000Z c0-0c0s1n2 erd: ec_hw_errors WARNING msg |detail=two words k=v",
		"2015-03-02T10:15:30.000000Z slurmctld: JobId=397 Action=job_end State=COMPLETED ExitCode=0 NodeList=c0-0c0s0n[0-3]",
		"03/02/2015 10:15:30.000000;E;397.sdb;Action=job_end State=COMPLETED ExitCode=0 exec_host=c0-0c0s0n0",
	}
	for _, mode := range chaos.AllModes() {
		inj := chaos.New(chaos.ForMode(mode, 0.8, 11))
		for _, l := range inj.CorruptLines(string(mode), valid) {
			f.Add(l)
		}
	}
	streams := []events.Stream{events.StreamConsole, events.StreamERD, events.StreamScheduler}
	f.Fuzz(func(t *testing.T, line string) {
		for _, stream := range streams {
			for _, sched := range []topology.SchedulerType{topology.SchedulerSlurm, topology.SchedulerTorque} {
				recs, rep := ParseLinesReport(stream, sched, []string{line})
				if rep.Parsed != len(recs) {
					t.Fatalf("%s: parsed=%d but %d records", stream, rep.Parsed, len(recs))
				}
				if rep.Quarantined != len(rep.Errs) {
					t.Fatalf("%s: quarantined=%d but %d errors", stream, rep.Quarantined, len(rep.Errs))
				}
				if rep.Quarantined > rep.Lines {
					t.Fatalf("%s: quarantined %d of %d lines", stream, rep.Quarantined, rep.Lines)
				}
				recs2, rep2 := ParseLinesReport(stream, sched, []string{line})
				if rep2.Parsed != rep.Parsed || rep2.Quarantined != rep.Quarantined || len(recs2) != len(recs) {
					t.Fatalf("%s: reparse of %q inconsistent: %+v vs %+v", stream, line, rep2, rep)
				}
			}
		}
	})
}
