package logparse

import (
	"testing"
	"time"

	"hpcfail/internal/chaos"
	"hpcfail/internal/events"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/loggen"
	"hpcfail/internal/topology"
)

// TestClassifyTable pins the automaton's category for representative
// messages — including ones where a later pattern is a substring of an
// earlier one ("NHC:" vs "NHC: abnormal application exit") — against
// both expected values and the naive loop.
func TestClassifyTable(t *testing.T) {
	cases := []struct {
		msg  string
		want string
	}{
		{"shutdown: scheduled by operator for maintenance", "node_shutdown"},
		{"halting: system shutdown initiated", "node_shutdown"},
		{"halting: no prior symptoms recorded", "silent_shutdown"},
		{"boot: kernel up after 43s", "node_boot"},
		{"Kernel panic - not syncing: Fatal exception", "kernel_panic"},
		{"BUG: unable to handle kernel paging request at 00000f00", "kernel_oops"},
		{"kernel BUG: at mm/slab.c:123", "kernel_bug"},
		{"Machine Check Exception: bank 4", "mce"},
		{"mcelog: corrected DIMM error", "mce"},
		{"EDAC MC0: corrected memory error on DIMM_A2", "mem_err_correctable"},
		{"HANDLE_ERR processor context corrupt", "cpu_corruption"},
		{"blk_update_request: I/O error, dev sda", "disk_error"},
		{"LustreError: 11-0: ost timeout", "lustre_bug"},
		{"LustreError: 30-3: read failed", "lustre_io_error"},
		{"Out of memory: Kill process 1234 (a.out)", "oom_killer"},
		{"a.out[771]: segfault at 0 ip 00000000 sp 000000", "segfault"},
		{"task kworker blocked for more than 120 seconds", "hung_task_timeout"},
		{"NHC: abnormal application exit code=9", "app_exit_abnormal"},
		{"NHC: test memory FAILED", "nhc"},
		{"node c0-0c0s1n2 set to admindown by NHC", "nhc_admindown"},
		{"slurmstepd: user-killed job step", "user_killed"},
		{"nothing interesting here", "unclassified"},
		{"", "unclassified"},
	}
	for _, c := range cases {
		if got := classify(c.msg); got != c.want {
			t.Errorf("classify(%q) = %q, want %q", c.msg, got, c.want)
		}
		if got, naive := classify(c.msg), classifyNaive(c.msg); got != naive {
			t.Errorf("classify(%q) = %q, naive = %q", c.msg, got, naive)
		}
	}
}

// TestClassifyEquivalenceCorpus runs the matcher against every internal
// line of a generated corpus (plus chaos-garbled variants of each) and
// asserts automaton == naive loop on all of them.
func TestClassifyEquivalenceCorpus(t *testing.T) {
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 384, CabinetCols: 2, Scheduler: topology.SchedulerSlurm, Cray: true}
	p.Workload.MeanInterarrival = 30 * time.Minute
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := faultsim.Generate(p, start, start.Add(2*24*time.Hour), 99)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, r := range scn.Records {
		if r.Stream == events.StreamConsole || r.Stream == events.StreamMessages || r.Stream == events.StreamConsumer {
			lines = append(lines, loggen.Render(r, topology.SchedulerSlurm)...)
		}
	}
	if len(lines) == 0 {
		t.Fatal("corpus rendered no internal lines")
	}
	inj := chaos.New(chaos.ForMode(chaos.ModeGarble, 0.6, 5))
	garbled := inj.CorruptLines("console", lines)
	for _, set := range [][]string{lines, garbled} {
		for _, l := range set {
			if got, want := classify(l), classifyNaive(l); got != want {
				t.Fatalf("classify(%q) = %q, naive = %q", l, got, want)
			}
		}
	}
}

// TestClassifyAllocs locks in the zero-allocation property of the hot
// classifier path: one automaton scan, no per-pattern work, no garbage.
func TestClassifyAllocs(t *testing.T) {
	msgs := []string{
		"Kernel panic - not syncing: Fatal exception",
		"NHC: abnormal application exit code=9",
		"completed periodic scrub of 4096 pages, no errors",
	}
	for _, msg := range msgs {
		msg := msg
		if allocs := testing.AllocsPerRun(100, func() {
			classify(msg)
		}); allocs != 0 {
			t.Errorf("classify(%q) allocates %.1f per run, want 0", msg, allocs)
		}
	}
}

// FuzzClassifyEquivalence asserts automaton == naive loop for arbitrary
// byte strings, seeded with real and chaos-garbled corpus lines.
func FuzzClassifyEquivalence(f *testing.F) {
	seeds := []string{
		"Kernel panic - not syncing: Fatal exception",
		"NHC: abnormal application exit code=9",
		"NHC: test memory FAILED on c0-0c0s1n2",
		"kernel BUG: at mm/slab.c:123",
		"BUG: unable to handle kernel paging request",
		"LustreError: 11-0 LustreError: 30-3",
		"shutdown: scheduled by operatorhalting: system shutdown",
		"", "\x00\xffgarbage",
	}
	inj := chaos.New(chaos.ForMode(chaos.ModeGarble, 0.9, 3))
	seeds = append(seeds, inj.CorruptLines("classify", seeds)...)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, msg string) {
		if got, want := classify(msg), classifyNaive(msg); got != want {
			t.Fatalf("classify(%q) = %q, naive = %q", msg, got, want)
		}
	})
}
