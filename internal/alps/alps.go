// Package alps models the Application Level Placement Scheduler — the
// Cray layer between the workload manager and the compute nodes (the
// paper's Fig 2: "The Slurm workload manager, with ALPS, coordinates
// resource allocation and job scheduling").
//
// ALPS assigns each application launch its own **apid**, distinct from
// the scheduler's job id; compute-node logs reference the apid, not the
// job. Observation 8's recommendation — "Tracking buggy application IDs
// (APIDs) ... can prevent multiple node failures" — presumes exactly
// this indirection: the diagnosis pipeline must resolve apid → job
// through the ALPS placement log before it can attribute a node failure
// to a job. IndexFromRecords implements that resolution.
package alps

import (
	"strconv"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
)

// ApidBase offsets apids away from scheduler job ids so the two id
// spaces are visibly distinct in logs.
const ApidBase = 7_000_000

// Launch is one application launch under a job.
type Launch struct {
	// Apid is the ALPS application id.
	Apid int64
	// JobID is the owning scheduler job.
	JobID int64
	// Nodes is the placement.
	Nodes []cname.Name
	// NodesStr, when non-empty, is the precomputed compressed render of
	// Nodes (generators share one render across the scheduler and ALPS
	// records of a job).
	NodesStr string
	// Start and End bound the launch.
	Start, End time.Time
}

// PlacementEvent is the apsched record announcing a placement.
func PlacementEvent(l Launch) events.Record {
	r := events.Record{
		Time:     l.Start,
		Stream:   events.StreamALPS,
		Severity: events.SevInfo,
		Category: "apid_place",
		JobID:    l.JobID,
		Msg: "apsched: placing apid " + strconv.FormatInt(l.Apid, 10) +
			" (job " + strconv.FormatInt(l.JobID, 10) + ") on " +
			strconv.Itoa(len(l.Nodes)) + " nodes",
	}
	r.SetField("apid", strconv.FormatInt(l.Apid, 10))
	ns := l.NodesStr
	if ns == "" {
		ns = cname.CompressNodeList(l.Nodes)
	}
	r.SetField("nodes", ns)
	return r
}

// ExitEvent is the apshepherd record reporting a launch exit.
func ExitEvent(l Launch, status int) events.Record {
	r := events.Record{
		Time:     l.End,
		Stream:   events.StreamALPS,
		Severity: events.SevInfo,
		Category: "apid_exit",
		JobID:    l.JobID,
		Msg: "apshepherd: apid " + strconv.FormatInt(l.Apid, 10) +
			" exited with status " + strconv.Itoa(status),
	}
	if status != 0 {
		r.Severity = events.SevWarning
	}
	r.SetField("apid", strconv.FormatInt(l.Apid, 10))
	r.SetField("status", strconv.Itoa(status))
	return r
}

// Apid extracts the apid from an ALPS record (0 when absent/invalid).
func Apid(r *events.Record) int64 {
	v, err := strconv.ParseInt(r.Field("apid"), 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// IndexBuilder accumulates the apid → job id table one record at a
// time — the incremental form of IndexFromRecords for single-pass
// pipelines. Non-ALPS records are ignored by Add.
type IndexBuilder struct {
	idx map[int64]int64
}

// NewIndexBuilder returns an empty builder.
func NewIndexBuilder() *IndexBuilder {
	return &IndexBuilder{idx: map[int64]int64{}}
}

// Add folds one record into the index.
func (b *IndexBuilder) Add(r *events.Record) {
	if r.Stream != events.StreamALPS || r.JobID == 0 {
		return
	}
	if apid := Apid(r); apid != 0 {
		b.idx[apid] = r.JobID
	}
}

// Index returns the accumulated table.
func (b *IndexBuilder) Index() map[int64]int64 { return b.idx }

// IndexFromRecords builds the apid → job id resolution table from ALPS
// placement/exit records. Non-ALPS records are ignored, so the whole
// store can be passed.
func IndexFromRecords(recs []events.Record) map[int64]int64 {
	b := NewIndexBuilder()
	for i := range recs {
		b.Add(&recs[i])
	}
	return b.Index()
}

// Resolve translates an id referenced by a compute-node log line into a
// scheduler job id: apids map through the index; ids that are not known
// apids pass through unchanged (systems without ALPS log job ids
// directly — S5 in the study).
func Resolve(id int64, index map[int64]int64) int64 {
	if job, ok := index[id]; ok {
		return job
	}
	return id
}
