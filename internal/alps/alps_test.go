package alps

import (
	"strings"
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
)

func testLaunch() Launch {
	return Launch{
		Apid:  ApidBase + 1,
		JobID: 397,
		Nodes: []cname.Name{cname.MustParse("c0-0c0s0n0"), cname.MustParse("c0-0c0s0n1")},
		Start: time.Date(2015, 3, 2, 10, 0, 0, 0, time.UTC),
		End:   time.Date(2015, 3, 2, 11, 0, 0, 0, time.UTC),
	}
}

func TestPlacementEvent(t *testing.T) {
	r := PlacementEvent(testLaunch())
	if r.Stream != events.StreamALPS || r.Category != "apid_place" {
		t.Errorf("placement record: %+v", r)
	}
	if r.JobID != 397 || Apid(&r) != ApidBase+1 {
		t.Errorf("ids: job=%d apid=%d", r.JobID, Apid(&r))
	}
	if !strings.Contains(r.Field("nodes"), "c0-0c0s0n[0-1]") {
		t.Errorf("nodes field: %q", r.Field("nodes"))
	}
}

func TestExitEventSeverity(t *testing.T) {
	ok := ExitEvent(testLaunch(), 0)
	if ok.Severity != events.SevInfo || ok.Field("status") != "0" {
		t.Errorf("clean exit: %+v", ok)
	}
	bad := ExitEvent(testLaunch(), 137)
	if bad.Severity != events.SevWarning || bad.Field("status") != "137" {
		t.Errorf("non-zero exit: %+v", bad)
	}
}

func TestApidInvalid(t *testing.T) {
	r := events.Record{}
	if Apid(&r) != 0 {
		t.Error("missing apid field should read 0")
	}
	r.SetField("apid", "xyz")
	if Apid(&r) != 0 {
		t.Error("garbage apid should read 0")
	}
}

func TestIndexAndResolve(t *testing.T) {
	l := testLaunch()
	recs := []events.Record{
		PlacementEvent(l),
		ExitEvent(l, 0),
		{Stream: events.StreamConsole, JobID: 5}, // ignored: not ALPS
	}
	idx := IndexFromRecords(recs)
	if len(idx) != 1 || idx[l.Apid] != l.JobID {
		t.Fatalf("index = %v", idx)
	}
	if Resolve(l.Apid, idx) != l.JobID {
		t.Error("apid should resolve to job")
	}
	if Resolve(42, idx) != 42 {
		t.Error("unknown id should pass through")
	}
	if Resolve(l.Apid, nil) != l.Apid {
		t.Error("nil index should pass through")
	}
}
