package miner

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkMinerIngest measures the steady-state per-line mining cost
// over a realistic quarantine mix (known daemon shapes with variable
// fields plus garbled noise). One op = one line.
func BenchmarkMinerIngest(b *testing.B) {
	lines := syntheticQuarantine(rand.New(rand.NewSource(7)), 4096)
	m := New(Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Ingest(lines[i%len(lines)])
	}
	b.StopTimer()
	if m.Stats().LinesMined == 0 {
		b.Fatal("no lines mined")
	}
}

// BenchmarkMinerMatch measures profile load-back classification cost.
func BenchmarkMinerMatch(b *testing.B) {
	lines := syntheticQuarantine(rand.New(rand.NewSource(7)), 4096)
	m := New(Config{})
	for _, l := range lines {
		m.Ingest(l)
	}
	mt := NewMatcher(m.Export(2))
	if mt.Len() == 0 {
		b.Fatal("empty matcher")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Match(lines[i%len(lines)])
	}
}

func BenchmarkMinerExport(b *testing.B) {
	m := New(Config{})
	for i := 0; i < 64; i++ {
		m.Ingest(fmt.Sprintf("daemon%d: event code %d happened", i%8, i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Export(1)
	}
}
