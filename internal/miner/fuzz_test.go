package miner

import (
	"strings"
	"testing"
)

// FuzzMinerIngest pins the miner's two safety contracts on arbitrary
// byte input: the tokenizer never panics, and the live template count
// never exceeds the memory budget.
func FuzzMinerIngest(f *testing.F) {
	f.Add([]byte("2015-03-02T04:00:00.000000Z ib0 opensmd: SUBNET SWEEP complete: 384 nodes"))
	f.Add([]byte("jobid=4711 state=FAILED exit=1\nDIMM3 err\n\x00\xff\xfe"))
	f.Add([]byte("<*> <#> <...>\n= == a=b=c"))
	f.Add([]byte(strings.Repeat("x ", 500)))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := New(Config{MaxTemplates: 32, PromoteCount: 2, BurstCount: 2, BurstWindow: 4})
		promos := 0
		m.OnPromote = func(Candidate) { promos++ }
		for _, line := range strings.Split(string(data), "\n") {
			m.Ingest(line)
			if live := m.Stats().TemplatesLive; live > 32 {
				t.Fatalf("live templates %d exceed budget 32", live)
			}
		}
		s := m.Stats()
		if s.TemplatesLive > 32 {
			t.Fatalf("final live templates %d exceed budget", s.TemplatesLive)
		}
		if uint64(promos) != s.Promoted {
			t.Fatalf("callback promotions %d != stats %d", promos, s.Promoted)
		}
		// Export and load-back must survive arbitrary content too.
		p := m.Export(1)
		data, err := p.Encode()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if _, err := DecodeProfile(data); err != nil {
			t.Fatalf("decode round-trip: %v", err)
		}
		NewMatcher(p)
	})
}
