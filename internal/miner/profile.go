package miner

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// ProfileVersion is the mined-profile schema version.
const ProfileVersion = 1

// Profile is a canonical mined template set — the bootstrap pattern-set
// skeleton for a system the static profiles have never seen. Profiles
// are JSON on disk (minectl writes and merges them) and load back into
// a Matcher that classifies quarantined lines into "mined_..."
// categories.
type Profile struct {
	Version int `json:"version"`
	// TokenLimit/ByteLimit record the tokenizer bounds the profile was
	// mined with, so load-back tokenizes identically.
	TokenLimit int               `json:"tokenLimit,omitempty"`
	ByteLimit  int               `json:"byteLimit,omitempty"`
	Templates  []ProfileTemplate `json:"templates"`
}

// ProfileTemplate is one canonical template.
type ProfileTemplate struct {
	// Template is the masked token sequence, space-joined.
	Template string `json:"template"`
	// Category is the derived classification slug ("mined_...").
	Category string `json:"category"`
	// Count is the occurrences behind the template (summed on merge).
	Count uint64 `json:"count"`
	// Examples holds up to profileMaxExamples raw lines (the
	// lexicographically smallest, so profiles are order-insensitive).
	Examples []string `json:"examples,omitempty"`
}

// profileMaxExamples bounds examples per canonical template.
const profileMaxExamples = 3

// mergeGroupLimit caps the templates considered for pairwise merging
// within one (length, anchor) group. The merge pass is quadratic per
// group; groups are keyed by token count plus the first literal token,
// so real daemons stay well under the cap — only adversarial input
// (one anchor, thousands of shapes) hits it, and those templates are
// simply kept unmerged rather than burning O(n²) time.
const mergeGroupLimit = 256

// Encode marshals the profile as indented JSON.
func (p Profile) Encode() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// DecodeProfile unmarshals and validates a mined profile.
func DecodeProfile(data []byte) (Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return Profile{}, fmt.Errorf("miner: decode profile: %w", err)
	}
	if p.Version != ProfileVersion {
		return Profile{}, fmt.Errorf("miner: profile version %d (want %d)", p.Version, ProfileVersion)
	}
	return p, nil
}

// MergeProfiles merges mined profiles into one canonical profile:
// identical templates sum counts, near-duplicates collapse under the
// same canonical merge Export applies. Tokenizer bounds must agree
// where set; the first non-zero bound wins.
func MergeProfiles(ps ...Profile) Profile {
	cfg := Config{}.withDefaults()
	var raw []ProfileTemplate
	for _, p := range ps {
		if p.TokenLimit > 0 {
			cfg.MaxTokens = p.TokenLimit
		}
		if p.ByteLimit > 0 {
			cfg.MaxLineBytes = p.ByteLimit
		}
		raw = append(raw, p.Templates...)
	}
	return canonicalProfile(raw, cfg)
}

// canonicalProfile builds the canonical profile from raw templates:
// aggregate identical templates, merge near-duplicates to a fixpoint,
// derive categories, sort. Deterministic: a pure function of the raw
// template set (every scan runs in sorted order).
func canonicalProfile(raw []ProfileTemplate, cfg Config) Profile {
	agg := make(map[string]*ProfileTemplate, len(raw))
	for i := range raw {
		addCanonical(agg, raw[i])
	}

	// Group by (token count, anchor literal): only plausibly-mergeable
	// templates face the quadratic pass.
	groups := make(map[string][]string)
	for key := range agg {
		toks := strings.Split(key, " ")
		groups[groupKey(toks)] = append(groups[groupKey(toks)], key)
	}
	groupNames := make([]string, 0, len(groups))
	for g := range groups {
		groupNames = append(groupNames, g)
	}
	sort.Strings(groupNames)

	for _, g := range groupNames {
		keys := groups[g]
		if len(keys) < 2 || len(keys) > mergeGroupLimit {
			continue
		}
		mergeGroup(agg, keys)
	}

	out := Profile{Version: ProfileVersion, TokenLimit: cfg.MaxTokens, ByteLimit: cfg.MaxLineBytes}
	for _, t := range agg {
		t.Category = categorySlug(strings.Split(t.Template, " "))
		out.Templates = append(out.Templates, *t)
	}
	sort.Slice(out.Templates, func(i, j int) bool {
		return out.Templates[i].Template < out.Templates[j].Template
	})
	return out
}

// mergeGroup collapses near-duplicate templates within one group to a
// fixpoint. Each pass scans pairs in sorted-key order and applies the
// first merge found, so the result is deterministic.
func mergeGroup(agg map[string]*ProfileTemplate, keys []string) {
	live := make(map[string]bool, len(keys))
	for _, k := range keys {
		live[k] = true
	}
	for {
		ordered := make([]string, 0, len(live))
		for k := range live {
			if agg[k] != nil {
				ordered = append(ordered, k)
			}
		}
		sort.Strings(ordered)
		merged := false
		for i := 0; i < len(ordered) && !merged; i++ {
			for j := i + 1; j < len(ordered); j++ {
				a, b := agg[ordered[i]], agg[ordered[j]]
				mt, ok := tryMerge(a, b)
				if !ok {
					continue
				}
				delete(agg, a.Template)
				delete(agg, b.Template)
				delete(live, a.Template)
				delete(live, b.Template)
				addCanonical(agg, mt)
				live[mt.Template] = true
				merged = true
				break
			}
		}
		if !merged {
			return
		}
	}
}

// addCanonical folds t into the aggregate, summing counts and keeping
// the smallest distinct examples when the template already exists.
func addCanonical(agg map[string]*ProfileTemplate, t ProfileTemplate) {
	if ex := agg[t.Template]; ex != nil {
		ex.Count += t.Count
		ex.Examples = mergeExamples(ex.Examples, t.Examples)
		return
	}
	cp := t
	cp.Examples = mergeExamples(nil, t.Examples)
	agg[t.Template] = &cp
}

// mergeExamples unions two sorted example sets, keeping the smallest
// profileMaxExamples distinct lines.
func mergeExamples(a, b []string) []string {
	out := append(append([]string(nil), a...), b...)
	sort.Strings(out)
	dedup := out[:0]
	for i, s := range out {
		if i > 0 && s == out[i-1] {
			continue
		}
		dedup = append(dedup, s)
	}
	if len(dedup) > profileMaxExamples {
		dedup = dedup[:profileMaxExamples]
	}
	return dedup
}

// tryMerge merges two templates when they share a token length and
// differ in at most a quarter of their positions (minimum one), as long
// as the merged template keeps at least one fully-literal token —
// frequency analysis in the awsom-lp style: positions that vary across
// occurrences are variables.
func tryMerge(a, b *ProfileTemplate) (ProfileTemplate, bool) {
	ta := strings.Split(a.Template, " ")
	tb := strings.Split(b.Template, " ")
	if len(ta) != len(tb) {
		return ProfileTemplate{}, false
	}
	budget := len(ta) / 4
	if budget < 1 {
		budget = 1
	}
	diff := 0
	for i := range ta {
		if ta[i] != tb[i] {
			diff++
			if diff > budget {
				return ProfileTemplate{}, false
			}
		}
	}
	if diff == 0 {
		return ProfileTemplate{}, false
	}
	out := make([]string, len(ta))
	literals := 0
	for i := range ta {
		if ta[i] == tb[i] {
			out[i] = ta[i]
			if !strings.ContainsAny(ta[i], "<>") {
				literals++
			}
		} else {
			out[i] = "<*>"
		}
	}
	if literals == 0 {
		return ProfileTemplate{}, false
	}
	return ProfileTemplate{
		Template: strings.Join(out, " "),
		Count:    a.Count + b.Count,
		Examples: mergeExamples(a.Examples, b.Examples),
	}, true
}

// groupKey buckets templates for the merge pass: token count plus the
// first fully-literal token (the anchor — typically the daemon tag).
func groupKey(toks []string) string {
	anchor := ""
	for _, t := range toks {
		if !strings.ContainsAny(t, "<>") {
			anchor = t
			break
		}
	}
	return fmt.Sprintf("%d/%s", len(toks), anchor)
}

// categorySlug derives the classification slug from a template's
// leading literal tokens: up to three, slugified, "mined_"-prefixed.
// Templates with no literal token fall back to a content hash.
func categorySlug(toks []string) string {
	var parts []string
	for _, t := range toks {
		if strings.ContainsAny(t, "<>") {
			continue
		}
		if s := slugify(t); s != "" {
			parts = append(parts, s)
		}
		if len(parts) == 3 {
			break
		}
	}
	if len(parts) == 0 {
		h := fnv.New32a()
		for _, t := range toks {
			h.Write([]byte(t))
			h.Write([]byte{' '})
		}
		return fmt.Sprintf("mined_x%08x", h.Sum32())
	}
	return "mined_" + strings.Join(parts, "_")
}

// slugify lowercases and maps non-alphanumerics to underscores,
// collapsing runs and trimming the ends.
func slugify(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastUnderscore := true // suppress leading underscore
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteByte(c)
			lastUnderscore = false
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c + ('a' - 'A'))
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	return strings.TrimRight(b.String(), "_")
}

// Matcher classifies raw lines against a mined profile — the load-back
// half of profile bootstrap. It tokenizes with the profile's bounds and
// walks a token tree where "<*>" template positions match any token;
// literal edges win over wildcard edges (with backtracking), so the
// most specific template claims the line. Safe for concurrent use once
// built.
type Matcher struct {
	tokenLimit int
	byteLimit  int
	root       *mnode
	n          int
}

type mnode struct {
	children map[string]*mnode
	wild     *mnode
	category string
	terminal bool
}

// NewMatcher compiles a profile. Templates are inserted in sorted
// order; on a (theoretically impossible) duplicate terminal the first
// inserted category wins, keeping compilation deterministic.
func NewMatcher(p Profile) *Matcher {
	m := &Matcher{tokenLimit: p.TokenLimit, byteLimit: p.ByteLimit, root: &mnode{}}
	ts := append([]ProfileTemplate(nil), p.Templates...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Template < ts[j].Template })
	for _, t := range ts {
		n := m.root
		for _, tok := range strings.Split(t.Template, " ") {
			if tok == "<*>" {
				if n.wild == nil {
					n.wild = &mnode{}
				}
				n = n.wild
				continue
			}
			if n.children == nil {
				n.children = make(map[string]*mnode)
			}
			c := n.children[tok]
			if c == nil {
				c = &mnode{}
				n.children[tok] = c
			}
			n = c
		}
		if !n.terminal {
			n.terminal = true
			n.category = t.Category
			m.n++
		}
	}
	return m
}

// Len returns the compiled template count.
func (m *Matcher) Len() int { return m.n }

// Match classifies one raw line, returning the mined category and
// whether any template matched.
func (m *Matcher) Match(line string) (string, bool) {
	toks := Tokenize(line, m.tokenLimit, m.byteLimit)
	if len(toks) == 0 {
		return "", false
	}
	return matchAt(m.root, toks)
}

func matchAt(n *mnode, toks []string) (string, bool) {
	if len(toks) == 0 {
		if n.terminal {
			return n.category, true
		}
		return "", false
	}
	if c := n.children[toks[0]]; c != nil {
		if cat, ok := matchAt(c, toks[1:]); ok {
			return cat, ok
		}
	}
	if n.wild != nil {
		return matchAt(n.wild, toks[1:])
	}
	return "", false
}
