// Package miner implements online log-template mining over the lines
// the static classifier cannot place — the quarantine stream.
//
// The PR 4 Aho–Corasick pattern set is exact and fast but blind to any
// line nobody enumerated: chaos-garbled text, vendor format drift, or
// daemons outside the profiled ALPS/SEDC/HSS set all land in the
// quarantine ledger and are forgotten. Following the holistic-log-
// analysis argument (Sîrbu & Babaoglu) and the awsom-lp style of
// pattern preprocessing + frequency analysis, the miner turns that
// discard pile into structure: each line is tokenized, variable-looking
// tokens are masked deterministically, and the masked token sequence
// becomes a template whose frequency is tracked online.
//
// Two properties anchor the design:
//
//   - Determinism/order-insensitivity: masking is a pure per-line
//     function, so the raw template multiset is a pure function of the
//     multiset of mined lines — independent of arrival order, batch
//     cuts, and feeder concurrency. Export applies a deterministic
//     canonical merge on top, so batch-cut mining and one-shot mining
//     converge to the same canonical profile (the differential tests
//     pin this). Only promotion *timing* (the burst path) and eviction
//     above the memory budget depend on arrival order.
//
//   - Bounded memory: the live template set never exceeds
//     Config.MaxTemplates. When the budget is hit, the coldest
//     singleton template (count 1, least recently seen) is evicted
//     first; hot and promoted templates survive.
//
// The miner deliberately depends on nothing but the standard library —
// it consumes strings and produces strings, so logparse can feed it
// without an import cycle and a mined Profile can bootstrap a pattern
// set for a cluster the static profiles have never seen.
package miner

import (
	"container/list"
	"sort"
	"strings"
	"sync"
)

// Config tunes the mining engine. The zero value selects defaults.
type Config struct {
	// MaxTemplates bounds the live template set (default 4096). The
	// miner's memory is O(MaxTemplates · MaxTokens); above the budget,
	// cold singleton templates are evicted LRU-first.
	MaxTemplates int
	// MaxExamples bounds the raw example lines retained per template
	// (default 3). Examples are kept canonically — the lexicographically
	// smallest distinct lines — so exports stay order-insensitive.
	MaxExamples int
	// PromoteCount promotes a template once its total count reaches this
	// threshold (default 64). Zero disables the count path.
	PromoteCount uint64
	// BurstCount promotes a template early when it recurs this many
	// times within roughly BurstWindow mined lines (default 16) — the
	// "novel signature suddenly flooding the quarantine" shape. Zero
	// disables the burst path.
	BurstCount uint64
	// BurstWindow is the burst horizon in mined lines, not wall-clock:
	// quarantined lines by definition have no parsed timestamp (default
	// 256). Bucketed accounting keeps the check O(1) per line.
	BurstWindow uint64
	// MaxTokens bounds the tokens considered per line (default 24);
	// longer lines keep their first MaxTokens tokens plus a "<...>"
	// fold marker.
	MaxTokens int
	// MaxLineBytes bounds the bytes considered per line (default 2048).
	MaxLineBytes int
}

// Defaults for the zero Config.
const (
	DefaultMaxTemplates = 4096
	DefaultMaxExamples  = 3
	DefaultPromoteCount = 64
	DefaultBurstCount   = 16
	DefaultBurstWindow  = 256
	DefaultMaxTokens    = 24
	DefaultMaxLineBytes = 2048
)

func (c Config) withDefaults() Config {
	if c.MaxTemplates <= 0 {
		c.MaxTemplates = DefaultMaxTemplates
	}
	if c.MaxExamples <= 0 {
		c.MaxExamples = DefaultMaxExamples
	}
	if c.PromoteCount == 0 {
		c.PromoteCount = DefaultPromoteCount
	}
	if c.BurstCount == 0 {
		c.BurstCount = DefaultBurstCount
	}
	if c.BurstWindow == 0 {
		c.BurstWindow = DefaultBurstWindow
	}
	if c.MaxTokens <= 0 {
		c.MaxTokens = DefaultMaxTokens
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = DefaultMaxLineBytes
	}
	return c
}

// Candidate is a mined template whose frequency or burst profile
// crossed the promotion threshold — a novel log signature worth an
// operator's attention, surfaced as a low-confidence detection kind.
type Candidate struct {
	// Template is the masked token sequence, space-joined.
	Template string
	// Category is the derived classification slug ("mined_..."), the
	// category a bootstrap profile would assign.
	Category string
	// Count is the template's total occurrence count at promotion.
	Count uint64
	// Seq is the miner's line sequence number at promotion.
	Seq uint64
	// Example is one raw line behind the template.
	Example string
	// Burst reports whether the burst path (rather than the total-count
	// path) triggered the promotion.
	Burst bool
}

// Stats counts the miner's activity.
type Stats struct {
	// LinesMined is the total number of non-blank lines ingested.
	LinesMined uint64
	// TemplatesLive is the current live template count (≤ MaxTemplates).
	TemplatesLive int
	// Created counts templates ever created.
	Created uint64
	// Evicted counts templates evicted under the memory budget.
	Evicted uint64
	// Promoted counts promotions (at most one per live template).
	Promoted uint64
}

// template is one live mined template.
type template struct {
	key      string
	tokens   []string
	count    uint64
	firstSeq uint64
	lastSeq  uint64
	// examples holds the lexicographically smallest distinct raw lines,
	// sorted — canonical regardless of arrival order.
	examples []string
	promoted bool
	// Bucketed burst accounting: curWin counts hits in epoch winEpoch,
	// prevWin the epoch before. curWin+prevWin approximates a sliding
	// window of one to two BurstWindows.
	winEpoch uint64
	curWin   uint64
	prevWin  uint64
	// coldEl is the template's entry in the cold-singleton LRU list;
	// nil once count > 1.
	coldEl *list.Element
}

// Miner is the streaming template-mining engine. Safe for concurrent
// use: Ingest, Stats, TemplatesSince and Export serialise on an
// internal mutex, so multiple ingestion goroutines can share one miner.
// The OnPromote callback runs with that mutex held — it must not call
// back into the miner.
type Miner struct {
	mu  sync.Mutex
	cfg Config
	// OnPromote, when set, is invoked once per template as it crosses a
	// promotion threshold. Set before the first Ingest.
	OnPromote func(Candidate)

	templates map[string]*template
	// cold lists count==1 templates in arrival order (front = coldest),
	// the eviction queue when the budget is exceeded.
	cold  *list.List
	seq   uint64
	stats Stats
}

// New constructs a miner. The zero Config selects defaults.
func New(cfg Config) *Miner {
	return &Miner{
		cfg:       cfg.withDefaults(),
		templates: make(map[string]*template),
		cold:      list.New(),
	}
}

// Config returns the miner's effective (default-filled) configuration.
func (m *Miner) Config() Config { return m.cfg }

// Ingest mines one raw line. Blank lines are ignored. Never panics on
// arbitrary byte content, and the live template count never exceeds
// the MaxTemplates budget.
func (m *Miner) Ingest(line string) {
	toks := Tokenize(line, m.cfg.MaxTokens, m.cfg.MaxLineBytes)
	if len(toks) == 0 {
		return
	}
	key := strings.Join(toks, " ")
	if len(line) > m.cfg.MaxLineBytes {
		line = line[:m.cfg.MaxLineBytes]
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	m.stats.LinesMined++
	t := m.templates[key]
	if t == nil {
		if len(m.templates) >= m.cfg.MaxTemplates {
			m.evictOneLocked()
		}
		t = &template{key: key, tokens: toks, firstSeq: m.seq}
		t.coldEl = m.cold.PushBack(t)
		m.templates[key] = t
		m.stats.Created++
	} else if t.coldEl != nil {
		m.cold.Remove(t.coldEl)
		t.coldEl = nil
	}
	t.count++
	t.lastSeq = m.seq
	t.addExample(line, m.cfg.MaxExamples)

	w := m.cfg.BurstWindow
	epoch := m.seq / w
	switch {
	case t.count == 1 || t.winEpoch == epoch:
		t.curWin++
		t.winEpoch = epoch
	case t.winEpoch+1 == epoch:
		t.prevWin, t.curWin, t.winEpoch = t.curWin, 1, epoch
	default:
		t.prevWin, t.curWin, t.winEpoch = 0, 1, epoch
	}

	if t.promoted {
		return
	}
	burst := m.cfg.BurstCount > 0 && t.curWin+t.prevWin >= m.cfg.BurstCount
	if burst || (m.cfg.PromoteCount > 0 && t.count >= m.cfg.PromoteCount) {
		t.promoted = true
		m.stats.Promoted++
		if m.OnPromote != nil {
			example := ""
			if len(t.examples) > 0 {
				example = t.examples[0]
			}
			m.OnPromote(Candidate{
				Template: t.key,
				Category: categorySlug(t.tokens),
				Count:    t.count,
				Seq:      m.seq,
				Example:  example,
				Burst:    burst,
			})
		}
	}
}

// IngestAll mines a batch of lines under one lock acquisition.
func (m *Miner) IngestAll(lines []string) {
	for _, l := range lines {
		m.Ingest(l)
	}
}

// evictOneLocked frees one template slot. Cold singletons go first in
// LRU order; if none exist, the least-frequent (then least-recent)
// unpromoted template goes; promoted templates are evicted only when
// nothing else remains.
func (m *Miner) evictOneLocked() {
	if el := m.cold.Front(); el != nil {
		t := el.Value.(*template)
		m.cold.Remove(el)
		delete(m.templates, t.key)
		m.stats.Evicted++
		return
	}
	var victim *template
	better := func(a, b *template) bool { // a colder than b
		if a.count != b.count {
			return a.count < b.count
		}
		if a.lastSeq != b.lastSeq {
			return a.lastSeq < b.lastSeq
		}
		return a.key < b.key
	}
	for _, t := range m.templates {
		if t.promoted {
			continue
		}
		if victim == nil || better(t, victim) {
			victim = t
		}
	}
	if victim == nil { // everything promoted: evict the coldest anyway
		for _, t := range m.templates {
			if victim == nil || better(t, victim) {
				victim = t
			}
		}
	}
	if victim != nil {
		delete(m.templates, victim.key)
		m.stats.Evicted++
	}
}

// addExample retains the lexicographically smallest max distinct lines.
func (t *template) addExample(line string, max int) {
	i := sort.SearchStrings(t.examples, line)
	if i < len(t.examples) && t.examples[i] == line {
		return
	}
	if len(t.examples) < max {
		t.examples = append(t.examples, "")
		copy(t.examples[i+1:], t.examples[i:])
		t.examples[i] = line
	} else if i < max {
		copy(t.examples[i+1:], t.examples[i:max-1])
		t.examples[i] = line
	}
}

// Stats returns the activity counters.
func (m *Miner) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.TemplatesLive = len(m.templates)
	return s
}

// Seq returns the miner's line sequence watermark — the pagination
// cursor for TemplatesSince.
func (m *Miner) Seq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq
}

// TemplateView is one live template's exported state.
type TemplateView struct {
	Template string   `json:"template"`
	Category string   `json:"category"`
	Count    uint64   `json:"count"`
	FirstSeq uint64   `json:"firstSeq"`
	LastSeq  uint64   `json:"lastSeq"`
	Promoted bool     `json:"promoted"`
	Examples []string `json:"examples,omitempty"`
}

// TemplatesSince returns the live templates last seen after the given
// sequence cursor, ordered by (LastSeq, Template), plus the current
// sequence watermark. Passing the returned watermark back as since
// pages incrementally: a template reappears exactly when it has been
// seen again. limit > 0 caps the slice (oldest first, so pagination
// never skips).
func (m *Miner) TemplatesSince(since uint64, limit int) ([]TemplateView, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []TemplateView
	for _, t := range m.templates {
		if t.lastSeq <= since {
			continue
		}
		out = append(out, TemplateView{
			Template: t.key,
			Category: categorySlug(t.tokens),
			Count:    t.count,
			FirstSeq: t.firstSeq,
			LastSeq:  t.lastSeq,
			Promoted: t.promoted,
			Examples: append([]string(nil), t.examples...),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LastSeq != out[j].LastSeq {
			return out[i].LastSeq < out[j].LastSeq
		}
		return out[i].Template < out[j].Template
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, m.seq
}

// Export returns the canonical mined profile: live templates with
// count ≥ minCount, deterministically merged (near-duplicate templates
// collapse, differing positions becoming "<*>") and sorted. Below the
// MaxTemplates budget the result is a pure function of the multiset of
// mined lines — independent of arrival order, batch cuts and feeder
// interleaving. minCount 0 means 1 (everything).
func (m *Miner) Export(minCount uint64) Profile {
	if minCount == 0 {
		minCount = 1
	}
	m.mu.Lock()
	raw := make([]ProfileTemplate, 0, len(m.templates))
	for _, t := range m.templates {
		if t.count < minCount {
			continue
		}
		raw = append(raw, ProfileTemplate{
			Template: t.key,
			Count:    t.count,
			Examples: append([]string(nil), t.examples...),
		})
	}
	cfg := m.cfg
	m.mu.Unlock()
	return canonicalProfile(raw, cfg)
}

// Tokenize splits a raw line into masked template tokens: whitespace
// separation, then a deterministic per-token mask — numeric/hex/
// timestamp-shaped tokens collapse to "<*>", "key=value" keeps the key
// ("key=<*>"), and embedded digit runs fold to "<#>" ("DIMM3" →
// "DIMM<#>"). maxTokens/maxBytes ≤ 0 select the defaults. Returns nil
// for blank lines.
func Tokenize(line string, maxTokens, maxBytes int) []string {
	if maxTokens <= 0 {
		maxTokens = DefaultMaxTokens
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxLineBytes
	}
	if len(line) > maxBytes {
		line = line[:maxBytes]
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	if len(fields) > maxTokens {
		fields = fields[:maxTokens:maxTokens]
		fields = append(fields, "<...>")
	}
	for i, f := range fields {
		fields[i] = maskToken(f)
	}
	return fields
}

// maskToken applies the per-token mask. Pure and deterministic: the
// same token always masks the same way, which is what makes the mined
// template set order-insensitive.
func maskToken(tok string) string {
	if eq := strings.IndexByte(tok, '='); eq > 0 && eq < len(tok)-1 && isKey(tok[:eq]) {
		return tok[:eq+1] + "<*>"
	}
	digits, letters := 0, 0
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
		case (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			letters++
		}
	}
	if digits == 0 {
		return tok
	}
	// Digit-dominated tokens (numbers, hex ids, timestamps, counters)
	// are variable; letter-dominated tokens keep their letters and fold
	// only the digit runs.
	if digits >= letters {
		return "<*>"
	}
	return foldDigits(tok)
}

// isKey reports whether s looks like a structured-field key: starts
// with a letter, then letters/digits/underscore/dot/dash.
func isKey(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if i == 0 {
			if !letter {
				return false
			}
			continue
		}
		if !letter && !(c >= '0' && c <= '9') && c != '_' && c != '.' && c != '-' {
			return false
		}
	}
	return len(s) > 0
}

// foldDigits replaces each maximal digit run with "<#>".
func foldDigits(tok string) string {
	var b strings.Builder
	b.Grow(len(tok) + 8)
	inRun := false
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if c >= '0' && c <= '9' {
			if !inRun {
				b.WriteString("<#>")
				inRun = true
			}
			continue
		}
		inRun = false
		b.WriteByte(c)
	}
	return b.String()
}
