package miner

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

func TestMaskToken(t *testing.T) {
	cases := []struct{ in, want string }{
		{"hello", "hello"},
		{"123", "<*>"},
		{"12.5", "<*>"},
		{"0x1f3a", "<*>"},
		{"12:30:05", "<*>"},
		{"2015-03-02T04:00:00.000000Z", "<*>"},
		{"DIMM3", "DIMM<#>"},
		{"mlx5_0", "mlx<#>_<#>"},
		{"c0-0c1s2n3", "<*>"}, // digit-dominated
		{"jobid=4711", "jobid=<*>"},
		{"ExitCode=0", "ExitCode=<*>"},
		{"state=FAILED", "state=<*>"},
		{"=oops", "=oops"},
		{"a=", "a="},
		{"opensmd:", "opensmd:"},
	}
	for _, c := range cases {
		if got := maskToken(c.in); got != c.want {
			t.Errorf("maskToken(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	if got := Tokenize("   ", 0, 0); got != nil {
		t.Fatalf("blank line tokenized to %v", got)
	}
	got := Tokenize("err on DIMM3 count 12", 0, 0)
	want := []string{"err", "on", "DIMM<#>", "count", "<*>"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	// Over-long lines fold their tail.
	long := "a b c d e f"
	got = Tokenize(long, 3, 0)
	want = []string{"a", "b", "c", "<...>"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize(maxTokens=3) = %v, want %v", got, want)
	}
}

func TestMinerClustersVariants(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 10; i++ {
		m.Ingest(fmt.Sprintf("opensmd: SUBNET SWEEP complete: %d nodes in %d ms", 100+i, i))
	}
	s := m.Stats()
	if s.TemplatesLive != 1 || s.LinesMined != 10 {
		t.Fatalf("stats = %+v, want 1 live template over 10 lines", s)
	}
	views, seq := m.TemplatesSince(0, 0)
	if seq != 10 || len(views) != 1 {
		t.Fatalf("TemplatesSince = %d views seq %d", len(views), seq)
	}
	v := views[0]
	if v.Template != "opensmd: SUBNET SWEEP complete: <*> nodes in <*> ms" {
		t.Fatalf("template = %q", v.Template)
	}
	if v.Count != 10 || v.FirstSeq != 1 || v.LastSeq != 10 {
		t.Fatalf("view = %+v", v)
	}
	if v.Category != "mined_opensmd_subnet_sweep" {
		t.Fatalf("category = %q", v.Category)
	}
	if len(v.Examples) != 3 {
		t.Fatalf("examples = %v", v.Examples)
	}
}

func TestMinerBoundedMemory(t *testing.T) {
	m := New(Config{MaxTemplates: 8})
	for i := 0; i < 1000; i++ {
		m.Ingest(fmt.Sprintf("unique daemon%c says hello", 'a'+rune(i%26)))
	}
	s := m.Stats()
	if s.TemplatesLive > 8 {
		t.Fatalf("live templates %d exceed budget 8", s.TemplatesLive)
	}
	if s.Evicted == 0 {
		t.Fatalf("expected evictions, stats = %+v", s)
	}
}

func TestMinerEvictsColdSingletonsFirst(t *testing.T) {
	m := New(Config{MaxTemplates: 4})
	// Two hot templates...
	for i := 0; i < 5; i++ {
		m.Ingest("hot alpha event")
		m.Ingest("hot beta event")
	}
	// ...then a stream of singletons cycling through the two free slots.
	for i := 0; i < 20; i++ {
		m.Ingest(fmt.Sprintf("cold singleton variant%c", 'a'+rune(i)))
	}
	views, _ := m.TemplatesSince(0, 0)
	found := map[string]bool{}
	for _, v := range views {
		found[v.Template] = true
	}
	if !found["hot alpha event"] || !found["hot beta event"] {
		t.Fatalf("hot templates evicted; live set %v", found)
	}
}

func TestMinerPromotionByCount(t *testing.T) {
	var got []Candidate
	m := New(Config{PromoteCount: 5, BurstCount: 1 << 60})
	m.OnPromote = func(c Candidate) { got = append(got, c) }
	for i := 0; i < 12; i++ {
		m.Ingest(fmt.Sprintf("acfd: link flap on port %d", i))
	}
	if len(got) != 1 {
		t.Fatalf("promotions = %d, want exactly 1", len(got))
	}
	c := got[0]
	if c.Count != 5 || c.Seq != 5 || c.Burst {
		t.Fatalf("candidate = %+v", c)
	}
	if c.Category != "mined_acfd_link_flap" {
		t.Fatalf("category = %q", c.Category)
	}
	if m.Stats().Promoted != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestMinerPromotionByBurst(t *testing.T) {
	var got []Candidate
	m := New(Config{PromoteCount: 1 << 60, BurstCount: 4, BurstWindow: 16})
	m.OnPromote = func(c Candidate) { got = append(got, c) }
	// Pad the sequence, then a tight burst.
	for i := 0; i < 10; i++ {
		m.Ingest(fmt.Sprintf("background chatter %c", 'a'+rune(i)))
	}
	for i := 0; i < 4; i++ {
		m.Ingest("nvsmd: XID pending retirement")
	}
	if len(got) != 1 || !got[0].Burst {
		t.Fatalf("burst promotions = %+v, want exactly 1 burst candidate", got)
	}
}

func TestTemplatesSincePagination(t *testing.T) {
	m := New(Config{})
	m.Ingest("alpha event one")
	m.Ingest("beta event two")
	views, seq := m.TemplatesSince(0, 0)
	if len(views) != 2 || seq != 2 {
		t.Fatalf("page 1 = %d views, seq %d", len(views), seq)
	}
	// Nothing new: empty page.
	views, seq2 := m.TemplatesSince(seq, 0)
	if len(views) != 0 || seq2 != seq {
		t.Fatalf("idle page = %d views", len(views))
	}
	// A re-sighting surfaces just that template.
	m.Ingest("alpha event one")
	views, _ = m.TemplatesSince(seq, 0)
	if len(views) != 1 || views[0].Template != "alpha event one" {
		t.Fatalf("incremental page = %+v", views)
	}
	// Limit caps oldest-first so pagination never skips.
	m.Ingest("beta event two")
	views, _ = m.TemplatesSince(0, 1)
	if len(views) != 1 {
		t.Fatalf("limited page = %+v", views)
	}
}

func TestExportMergesNearDuplicates(t *testing.T) {
	m := New(Config{})
	m.Ingest("opensmd: sweep complete alpha")
	m.Ingest("opensmd: sweep complete beta")
	m.Ingest("opensmd: sweep complete gamma")
	p := m.Export(1)
	if len(p.Templates) != 1 {
		t.Fatalf("exported %d templates, want merged 1: %+v", len(p.Templates), p.Templates)
	}
	tpl := p.Templates[0]
	if tpl.Template != "opensmd: sweep complete <*>" || tpl.Count != 3 {
		t.Fatalf("merged template = %+v", tpl)
	}
}

func TestExportRespectsMinCount(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 5; i++ {
		m.Ingest("frequent daemon event")
	}
	m.Ingest("one-off oddity line")
	p := m.Export(2)
	if len(p.Templates) != 1 || p.Templates[0].Template != "frequent daemon event" {
		t.Fatalf("Export(2) = %+v", p.Templates)
	}
}

func TestMatcherPrefersLiteralOverWildcard(t *testing.T) {
	p := Profile{Version: ProfileVersion, Templates: []ProfileTemplate{
		{Template: "daemon: status ok", Category: "mined_exact"},
		{Template: "daemon: status <*>", Category: "mined_wild"},
	}}
	mt := NewMatcher(p)
	if mt.Len() != 2 {
		t.Fatalf("Len = %d", mt.Len())
	}
	if cat, ok := mt.Match("daemon: status ok"); !ok || cat != "mined_exact" {
		t.Fatalf("exact match = %q %v", cat, ok)
	}
	if cat, ok := mt.Match("daemon: status degraded"); !ok || cat != "mined_wild" {
		t.Fatalf("wild match = %q %v", cat, ok)
	}
	if _, ok := mt.Match("daemon: status"); ok {
		t.Fatalf("short line matched")
	}
	if _, ok := mt.Match("other: status ok"); ok {
		t.Fatalf("unrelated line matched")
	}
}

func TestMatcherRoundTrip(t *testing.T) {
	m := New(Config{})
	lines := []string{
		"opensmd: SUBNET SWEEP complete: 384 nodes in 12 ms",
		"opensmd: SUBNET SWEEP complete: 380 nodes in 9 ms",
		"nvsmd: XID 48 on gpu0 count=3",
	}
	for _, l := range lines {
		m.Ingest(l)
	}
	data, err := m.Export(1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodeProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMatcher(p)
	for _, l := range lines {
		if _, ok := mt.Match(l); !ok {
			t.Errorf("mined profile does not match its own line %q", l)
		}
	}
	if _, ok := mt.Match("never seen daemon output"); ok {
		t.Errorf("profile matched foreign line")
	}
	// An unseen variant of a mined shape still matches.
	if cat, ok := mt.Match("opensmd: SUBNET SWEEP complete: 999 nodes in 1 ms"); !ok || cat == "" {
		t.Errorf("variant line did not match")
	}
}

func TestMergeProfiles(t *testing.T) {
	a := Profile{Version: ProfileVersion, Templates: []ProfileTemplate{
		{Template: "daemon: event <*>", Category: "mined_daemon_event", Count: 3, Examples: []string{"daemon: event 1"}},
	}}
	b := Profile{Version: ProfileVersion, Templates: []ProfileTemplate{
		{Template: "daemon: event <*>", Category: "mined_daemon_event", Count: 4, Examples: []string{"daemon: event 9"}},
		{Template: "other: thing", Category: "mined_other_thing", Count: 1},
	}}
	p := MergeProfiles(a, b)
	if len(p.Templates) != 2 {
		t.Fatalf("merged = %+v", p.Templates)
	}
	if p.Templates[0].Count != 7 {
		t.Fatalf("counts not summed: %+v", p.Templates[0])
	}
	if len(p.Templates[0].Examples) != 2 {
		t.Fatalf("examples not unioned: %+v", p.Templates[0])
	}
}

// syntheticQuarantine generates a deterministic pseudo-quarantine
// corpus: a few unknown daemons with variable fields plus garbled
// noise — the shapes the static parser rejects.
func syntheticQuarantine(rng *rand.Rand, n int) []string {
	states := []string{"UP", "DOWN", "POLLING", "ARMED"}
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2:
			lines = append(lines, fmt.Sprintf(
				"2015-03-02T0%d:00:0%d.000000Z ib%d opensmd: SUBNET SWEEP complete: %d nodes %d switches in %d ms",
				rng.Intn(10), rng.Intn(10), rng.Intn(4), 300+rng.Intn(100), 20+rng.Intn(8), rng.Intn(40)))
		case 3, 4, 5:
			lines = append(lines, fmt.Sprintf(
				"2015-03-02T0%d:11:0%d.000000Z ib%d opensmd: link flap on port %d state=%s",
				rng.Intn(10), rng.Intn(10), rng.Intn(4), rng.Intn(36), states[rng.Intn(len(states))]))
		case 6, 7:
			lines = append(lines, fmt.Sprintf(
				"2015-03-02T0%d:22:0%d.000000Z gpu%d nvsmd: XID %d pending page retirement count=%d",
				rng.Intn(10), rng.Intn(10), rng.Intn(8), 13+rng.Intn(80), rng.Intn(5)))
		default:
			lines = append(lines, fmt.Sprintf("garbled %x noise %x", rng.Uint64(), rng.Uint32()))
		}
	}
	return lines
}

// TestMinerBatchCutConvergence is the differential test behind the
// miner's order-insensitivity contract: mining a corpus streamed in
// shuffled random batch cuts — from concurrent feeders, at several
// GOMAXPROCS settings — converges to exactly the canonical profile of
// one-shot sequential mining.
func TestMinerBatchCutConvergence(t *testing.T) {
	lines := syntheticQuarantine(rand.New(rand.NewSource(42)), 4000)

	oneShot := New(Config{})
	for _, l := range lines {
		oneShot.Ingest(l)
	}
	want := oneShot.Export(1)
	if len(want.Templates) == 0 {
		t.Fatal("one-shot mining produced no templates")
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(int64(100*procs + trial)))
			shuffled := append([]string(nil), lines...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			// Cut into random batches.
			var batches [][]string
			for start := 0; start < len(shuffled); {
				end := start + 1 + rng.Intn(97)
				if end > len(shuffled) {
					end = len(shuffled)
				}
				batches = append(batches, shuffled[start:end])
				start = end
			}
			m := New(Config{})
			ch := make(chan []string)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for b := range ch {
						m.IngestAll(b)
					}
				}()
			}
			for _, b := range batches {
				ch <- b
			}
			close(ch)
			wg.Wait()
			got := m.Export(1)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("GOMAXPROCS=%d trial %d: batch-cut profile diverged from one-shot (%d vs %d templates)",
					procs, trial, len(got.Templates), len(want.Templates))
			}
		}
	}
}
