package remedy

import (
	"fmt"
	"sync"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/nhc"
	"hpcfail/internal/workload"
)

// SimOptions tunes the simulated actuator.
type SimOptions struct {
	// DrainDuration is how long a drain takes before the node reads
	// Drained (default 10m; keep consistent with Config.DrainDuration).
	DrainDuration time.Duration
	// Spares is the warm-swap spare pool size (default 8).
	Spares int
}

func (o SimOptions) withDefaults() SimOptions {
	if o.DrainDuration <= 0 {
		o.DrainDuration = 10 * time.Minute
	}
	if o.Spares == 0 {
		o.Spares = 8
	}
	return o
}

// Requeue records one job pulled off a draining node.
type Requeue struct {
	// JobID is the requeued job.
	JobID int64
	// Node is the drained node it was pulled from.
	Node cname.Name
	// Time is the requeue instant.
	Time time.Time
}

// SimCluster is the simulated actuator: it tracks per-node service
// state against the scenario's job stream, requeues jobs on drain, and
// appends the operational log records (NHC, scheduler, HSS) each action
// would produce on a real system. Nodes it has never been asked about
// are in service. Safe for concurrent use.
type SimCluster struct {
	mu     sync.Mutex
	opts   SimOptions
	jobs   []workload.Job
	nodes  map[cname.Name]*simNode
	spares int

	requeues []Requeue
	audit    []events.Record
}

type simNode struct {
	state   ServiceState
	since   time.Time
	swapped bool
}

// NewSimCluster builds the actuator over a scenario's job stream (nil
// is fine — drains then requeue nothing).
func NewSimCluster(jobs []workload.Job, opts SimOptions) *SimCluster {
	o := opts.withDefaults()
	return &SimCluster{
		opts:   o,
		jobs:   jobs,
		nodes:  make(map[cname.Name]*simNode),
		spares: o.Spares,
	}
}

// Status implements Cluster. A draining node whose DrainDuration has
// elapsed reads Drained.
func (c *SimCluster) Status(node cname.Name, now time.Time) NodeStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[node]
	if !ok {
		return NodeStatus{Node: node, State: StateInService}
	}
	st := NodeStatus{Node: node, State: n.state, Since: n.since, Swapped: n.swapped}
	if n.state == StateDraining && now.Sub(n.since) >= c.opts.DrainDuration {
		st.State = StateDrained
	}
	return st
}

// get returns (creating if needed) the node record.
func (c *SimCluster) get(node cname.Name) *simNode {
	n, ok := c.nodes[node]
	if !ok {
		n = &simNode{state: StateInService}
		c.nodes[node] = n
	}
	return n
}

// Suspect implements Cluster.
func (c *SimCluster) Suspect(node cname.Name, now time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.get(node)
	if n.state == StateAdminDown {
		return fmt.Errorf("remedy: %s is admindown; cannot enter suspect mode", node)
	}
	n.state, n.since = StateSuspect, now
	c.audit = append(c.audit, nhc.SuspectEvent(now, node))
	return nil
}

// AdminDown implements Cluster.
func (c *SimCluster) AdminDown(node cname.Name, now time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.get(node)
	if n.state == StateAdminDown {
		return fmt.Errorf("remedy: %s is already admindown", node)
	}
	n.state, n.since = StateAdminDown, now
	c.audit = append(c.audit, nhc.AdminDownEvent(now, node, 0))
	return nil
}

// Drain implements Cluster: the node leaves the schedulable pool and
// every job holding it at now is requeued.
func (c *SimCluster) Drain(node cname.Name, now time.Time) ([]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.get(node)
	switch n.state {
	case StateInService, StateSuspect:
	default:
		return nil, fmt.Errorf("remedy: %s is %s; cannot drain", node, n.state)
	}
	n.state, n.since = StateDraining, now
	c.audit = append(c.audit, workload.DrainEvent(now, node))
	var ids []int64
	for _, j := range workload.JobsOnNode(c.jobs, node, now) {
		ids = append(ids, j.ID)
		c.requeues = append(c.requeues, Requeue{JobID: j.ID, Node: node, Time: now})
		c.audit = append(c.audit, workload.RequeueEvent(now, node, j.ID))
	}
	return ids, nil
}

// WarmSwap implements Cluster: an admindown node is replaced by a
// spare, consuming one from the pool.
func (c *SimCluster) WarmSwap(node cname.Name, now time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.get(node)
	if n.state != StateAdminDown {
		return fmt.Errorf("remedy: %s is %s; warm swap needs admindown", node, n.state)
	}
	if n.swapped {
		return fmt.Errorf("remedy: %s already swapped", node)
	}
	if c.spares <= 0 {
		return fmt.Errorf("remedy: spare pool exhausted")
	}
	c.spares--
	n.swapped = true
	c.audit = append(c.audit, nhc.WarmSwapEvent(now, node))
	return nil
}

// Notify implements Cluster; the notification only lands in the audit
// log (there is no simulated inbox).
func (c *SimCluster) Notify(node cname.Name, jobID int64, now time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := events.Record{
		Time:      now,
		Stream:    events.StreamScheduler,
		Component: node,
		Severity:  events.SevInfo,
		Category:  "user_notify",
		JobID:     jobID,
		Msg:       fmt.Sprintf("notify: job %d owner informed of app-triggered event on %s", jobID, node),
	}
	c.audit = append(c.audit, r)
	return nil
}

// Audit returns a copy of the operational log the actions produced.
func (c *SimCluster) Audit() []events.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]events.Record, len(c.audit))
	copy(out, c.audit)
	return out
}

// Requeues returns a copy of every job requeue performed.
func (c *SimCluster) Requeues() []Requeue {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Requeue, len(c.requeues))
	copy(out, c.requeues)
	return out
}

// SparesLeft reports the remaining warm-swap pool.
func (c *SimCluster) SparesLeft() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spares
}

// OutOfService counts nodes currently not schedulable.
func (c *SimCluster) OutOfService() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, nd := range c.nodes {
		switch nd.state {
		case StateDraining, StateDrained, StateAdminDown:
			n++
		}
	}
	return n
}
