package remedy

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/workload"
)

var t0 = time.Date(2015, 3, 2, 12, 0, 0, 0, time.UTC)

func node(t *testing.T, s string) cname.Name {
	t.Helper()
	return cname.MustParse(s)
}

// fastConfig disables real sleeps so retry tests run instantly.
func fastConfig() Config {
	return Config{BackoffBase: -1}
}

func detection(n cname.Name, at time.Time, cause string, jobID int64) Condition {
	return Condition{Node: n, Time: at, Source: SourceDetection, Cause: cause, JobID: jobID}
}

func alarm(n cname.Name, at time.Time, ext bool) Condition {
	return Condition{Node: n, Time: at, Source: SourceAlarm, HasExternal: ext}
}

func TestRoute(t *testing.T) {
	n := cname.MustParse("c0-0c0s0n0")
	cases := []struct {
		cond Condition
		want []Kind
	}{
		{detection(n, t0, "node_shutdown", 0), []Kind{KindAdminDown}},
		{detection(n, t0, "silent_shutdown", 0), []Kind{KindAdminDown, KindWarmSwap}},
		{detection(n, t0, "nhc_admindown", 77), []Kind{KindAdminDown, KindNotify}},
		{alarm(n, t0, true), []Kind{KindDrain}},
		{alarm(n, t0, false), []Kind{KindSuspect}},
	}
	for _, c := range cases {
		if got := Route(c.cond); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Route(%+v) = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestExecuteAndIdempotency(t *testing.T) {
	cluster := NewSimCluster(nil, SimOptions{})
	eng := New(cluster, DefaultSOPs(cluster), fastConfig())
	n := node(t, "c0-0c0s0n0")

	if got := eng.Submit(detection(n, t0, "node_shutdown", 0)); got != 1 {
		t.Fatalf("Submit queued %d items, want 1", got)
	}
	eng.Service(t0)
	tk := eng.Tickets(0)
	if len(tk) != 1 || tk[0].Decision != DecisionExecuted || tk[0].Kind != "admindown" {
		t.Fatalf("unexpected ledger %+v", tk)
	}
	if st := cluster.Status(n, t0); st.State != StateAdminDown {
		t.Fatalf("node state = %s, want admindown", st.State)
	}

	// Same condition again: suppressed before it even queues.
	if got := eng.Submit(detection(n, t0, "node_shutdown", 0)); got != 0 {
		t.Fatalf("duplicate submit queued %d items, want 0", got)
	}
	// A new condition on the same (already admindown) node: the
	// Evaluate pre-check refuses, with a ticket to show for it.
	eng.Submit(detection(n, t0.Add(time.Hour), "node_shutdown", 0))
	eng.Service(t0.Add(time.Hour))
	tk = eng.Tickets(0)
	if len(tk) != 2 {
		t.Fatalf("ledger has %d tickets, want 2: %+v", len(tk), tk)
	}
	last := tk[1]
	if last.Decision != DecisionRefused || !strings.Contains(last.Reason, "idempotency") {
		t.Fatalf("second admindown got %q (%q), want idempotency refusal", last.Decision, last.Reason)
	}
	if s := eng.Stats(); s.Executed != 1 || s.Refused != 1 || s.Deduped != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDrainRequeuesJobs(t *testing.T) {
	n := node(t, "c0-0c0s0n0")
	other := node(t, "c0-0c0s0n1")
	jobs := []workload.Job{
		{ID: 10, Nodes: []cname.Name{n, other}, Start: t0.Add(-time.Hour), End: t0.Add(2 * time.Hour)},
		{ID: 11, Nodes: []cname.Name{other}, Start: t0.Add(-time.Hour), End: t0.Add(time.Hour)},
		{ID: 12, Nodes: []cname.Name{n}, Start: t0.Add(time.Hour), End: t0.Add(3 * time.Hour)},
	}
	cluster := NewSimCluster(jobs, SimOptions{DrainDuration: 10 * time.Minute})
	eng := New(cluster, DefaultSOPs(cluster), fastConfig())

	eng.Submit(alarm(n, t0, true))
	eng.Service(t0)
	tk := eng.Tickets(0)
	if len(tk) != 1 || tk[0].Decision != DecisionExecuted || tk[0].Kind != "drain" {
		t.Fatalf("unexpected ledger %+v", tk)
	}
	// Job 10 holds the node at t0; 11 doesn't include it; 12 hasn't started.
	if !reflect.DeepEqual(tk[0].Requeued, []int64{10}) {
		t.Fatalf("requeued = %v, want [10]", tk[0].Requeued)
	}
	if st := cluster.Status(n, t0.Add(time.Minute)); st.State != StateDraining {
		t.Fatalf("state right after drain = %s, want draining", st.State)
	}
	if st := cluster.Status(n, t0.Add(11*time.Minute)); st.State != StateDrained {
		t.Fatalf("state after DrainDuration = %s, want drained", st.State)
	}
}

func TestWarmSwapRunsAfterAdminDown(t *testing.T) {
	cluster := NewSimCluster(nil, SimOptions{Spares: 1})
	eng := New(cluster, DefaultSOPs(cluster), fastConfig())
	n := node(t, "c0-0c0s0n0")

	// A hardware-cause detection queues admindown (P0) and warmswap
	// (P2); the priority order guarantees the admindown lands first, so
	// the swap's precondition holds when its turn comes.
	eng.Submit(detection(n, t0, "silent_shutdown", 0))
	eng.Service(t0)
	tk := eng.Tickets(0)
	if len(tk) != 2 {
		t.Fatalf("ledger has %d tickets, want 2: %+v", len(tk), tk)
	}
	if tk[0].Kind != "admindown" || tk[1].Kind != "warmswap" {
		t.Fatalf("order = %s, %s; want admindown, warmswap", tk[0].Kind, tk[1].Kind)
	}
	for _, k := range tk {
		if k.Decision != DecisionExecuted {
			t.Fatalf("%s decision = %s, want executed", k.Kind, k.Decision)
		}
	}
	if cluster.SparesLeft() != 0 {
		t.Fatalf("spares left = %d, want 0", cluster.SparesLeft())
	}
	st := cluster.Status(n, t0)
	if !st.Swapped {
		t.Fatal("node not marked swapped")
	}
}

func TestWeightedRoundRobinNoStarvation(t *testing.T) {
	cluster := NewSimCluster(nil, SimOptions{})
	eng := New(cluster, DefaultSOPs(cluster), Config{BackoffBase: -1, CabinetCap: 1000, MaxConcurrentDrains: 1000})

	// A large P0 backlog plus one P3 item: the P3 must be served within
	// one scheduling cycle (8 P0 picks), not after the whole backlog.
	for i := 0; i < 30; i++ {
		n := cname.MustParse(fmt.Sprintf("c%d-0c%ds%dn%d", i%3, i%3, i%8, i%4))
		eng.SubmitKind(detection(n, t0.Add(time.Duration(i)*time.Second), "node_shutdown", 0), KindAdminDown)
	}
	notifyNode := node(t, "c2-0c2s7n3")
	eng.SubmitKind(Condition{Node: notifyNode, Time: t0, Source: SourceDetection, JobID: 5}, KindNotify)

	var order []string
	for eng.Step(t0.Add(time.Hour)) {
		tk := eng.Tickets(0)
		order = append(order, tk[len(tk)-1].Kind)
	}
	pos := -1
	for i, k := range order {
		if k == "notify" {
			pos = i
			break
		}
	}
	if pos == -1 || pos > 8 {
		t.Fatalf("notify served at position %d of %v, want within the first cycle (<= 8)", pos, order)
	}
}

func TestNodeCooldownGuard(t *testing.T) {
	cluster := NewSimCluster(nil, SimOptions{})
	cfg := fastConfig()
	cfg.NodeCooldown = 30 * time.Minute
	eng := New(cluster, DefaultSOPs(cluster), cfg)
	n := node(t, "c0-0c0s0n0")

	eng.Submit(alarm(n, t0, true))
	eng.Service(t0)
	// Second disruptive action on the node 5 minutes later: refused by
	// cooldown (the drain state would refuse via Evaluate too, so aim
	// an admindown at it — drained nodes are still admindown-able).
	eng.Submit(detection(n, t0.Add(5*time.Minute), "node_shutdown", 0))
	eng.Service(t0.Add(5 * time.Minute))
	tk := eng.Tickets(0)
	if len(tk) != 2 {
		t.Fatalf("ledger has %d tickets: %+v", len(tk), tk)
	}
	if tk[1].Decision != DecisionRefused || !strings.Contains(tk[1].Reason, "cooldown") {
		t.Fatalf("got %q (%q), want cooldown refusal", tk[1].Decision, tk[1].Reason)
	}
	// Past the cooldown the same action goes through.
	eng.Submit(detection(n, t0.Add(40*time.Minute), "node_shutdown", 0))
	eng.Service(t0.Add(40 * time.Minute))
	tk = eng.Tickets(0)
	if tk[2].Decision != DecisionExecuted {
		t.Fatalf("post-cooldown action = %q (%q), want executed", tk[2].Decision, tk[2].Reason)
	}
}

func TestConcurrentDrainCapDowngrades(t *testing.T) {
	cluster := NewSimCluster(nil, SimOptions{})
	cfg := fastConfig()
	cfg.MaxConcurrentDrains = 2
	eng := New(cluster, DefaultSOPs(cluster), cfg)

	// Four corroborated alarms on four nodes in different cabinets at
	// once: two drains run, the overflow degrades to suspect mode.
	nodes := []cname.Name{
		node(t, "c0-0c0s0n0"), node(t, "c1-0c0s0n0"),
		node(t, "c2-0c0s0n0"), node(t, "c3-0c0s0n0"),
	}
	for _, n := range nodes {
		eng.Submit(alarm(n, t0, true))
	}
	eng.Service(t0)

	var drains, downgrades, suspects int
	for _, tk := range eng.Tickets(0) {
		switch {
		case tk.Kind == "drain" && tk.Decision == DecisionExecuted:
			drains++
		case tk.Kind == "drain" && strings.Contains(tk.Reason, "downgraded"):
			downgrades++
		case tk.Kind == "suspect" && tk.Decision == DecisionExecuted:
			suspects++
		}
	}
	if drains != 2 || downgrades != 2 || suspects != 2 {
		t.Fatalf("drains=%d downgrades=%d suspects=%d, want 2/2/2; ledger %+v",
			drains, downgrades, suspects, eng.Tickets(0))
	}
	if s := eng.Stats(); s.Downgraded != 2 || s.MaxActiveDrains != 2 {
		t.Fatalf("stats = %+v", s)
	}
	// Once the first drains complete (virtual time passes), capacity
	// frees up for new ones.
	eng.Submit(alarm(node(t, "c0-0c1s0n0"), t0.Add(time.Hour), true))
	eng.Service(t0.Add(time.Hour))
	tks := eng.Tickets(0)
	if last := tks[len(tks)-1]; last.Kind != "drain" || last.Decision != DecisionExecuted {
		t.Fatalf("post-completion drain = %+v, want executed", last)
	}
}

func TestCabinetBlastRadiusCap(t *testing.T) {
	cluster := NewSimCluster(nil, SimOptions{})
	cfg := fastConfig()
	cfg.CabinetCap = 2
	cfg.CabinetWindow = 30 * time.Minute
	eng := New(cluster, DefaultSOPs(cluster), cfg)

	// Three confirmed failures in one cabinet within the window: the
	// third admindown is refused outright (admindowns don't downgrade).
	for i := 0; i < 3; i++ {
		n := cname.MustParse(fmt.Sprintf("c0-0c0s%dn0", i))
		eng.Submit(detection(n, t0.Add(time.Duration(i)*time.Minute), "node_shutdown", 0))
	}
	eng.Service(t0.Add(3 * time.Minute))
	tk := eng.Tickets(0)
	if len(tk) != 3 {
		t.Fatalf("ledger has %d tickets: %+v", len(tk), tk)
	}
	exec, refused := 0, 0
	for _, k := range tk {
		switch k.Decision {
		case DecisionExecuted:
			exec++
		case DecisionRefused:
			refused++
			if !strings.Contains(k.Reason, "blast-radius") {
				t.Fatalf("refusal reason %q, want blast-radius", k.Reason)
			}
		}
	}
	if exec != 2 || refused != 1 {
		t.Fatalf("exec=%d refused=%d, want 2/1", exec, refused)
	}
	// Outside the window the cabinet is actionable again.
	eng.Submit(detection(node(t, "c0-0c1s0n0"), t0.Add(2*time.Hour), "node_shutdown", 0))
	eng.Service(t0.Add(2 * time.Hour))
	tks := eng.Tickets(0)
	if last := tks[len(tks)-1]; last.Decision != DecisionExecuted {
		t.Fatalf("post-window admindown = %+v, want executed", last)
	}
}

// errCluster wraps a Cluster, failing chosen operations.
type errCluster struct {
	Cluster
	failAdminDown bool
}

func (c *errCluster) AdminDown(n cname.Name, now time.Time) error {
	if c.failAdminDown {
		return errors.New("hss unreachable")
	}
	return c.Cluster.AdminDown(n, now)
}

func TestRetriesAndCircuitBreaker(t *testing.T) {
	inner := NewSimCluster(nil, SimOptions{})
	cluster := &errCluster{Cluster: inner, failAdminDown: true}
	cfg := fastConfig()
	cfg.MaxAttempts = 2
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour
	cfg.CabinetCap = 1000
	eng := New(cluster, DefaultSOPs(cluster), cfg)

	for i := 0; i < 3; i++ {
		n := cname.MustParse(fmt.Sprintf("c%d-0c0s0n0", i))
		eng.Submit(detection(n, t0.Add(time.Duration(i)*time.Minute), "node_shutdown", 0))
	}
	eng.Service(t0.Add(3 * time.Minute))
	tk := eng.Tickets(0)
	if len(tk) != 3 {
		t.Fatalf("ledger has %d tickets: %+v", len(tk), tk)
	}
	// First two fail (after 2 attempts each), opening the breaker; the
	// third is refused without touching the actuator.
	for i := 0; i < 2; i++ {
		if tk[i].Decision != DecisionFailed || tk[i].Attempts != 2 {
			t.Fatalf("ticket %d = %+v, want failed after 2 attempts", i, tk[i])
		}
	}
	if tk[2].Decision != DecisionRefused || !strings.Contains(tk[2].Reason, "breaker") {
		t.Fatalf("ticket 2 = %+v, want breaker refusal", tk[2])
	}

	// After the (virtual) cooldown, with the actuator healthy again,
	// the SOP executes and the breaker closes.
	cluster.failAdminDown = false
	later := t0.Add(2 * time.Hour)
	eng.Submit(detection(node(t, "c3-0c0s0n0"), later, "node_shutdown", 0))
	eng.Service(later)
	tks := eng.Tickets(0)
	if last := tks[len(tks)-1]; last.Decision != DecisionExecuted {
		t.Fatalf("post-cooldown = %+v, want executed", last)
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	delays := func(seed uint64) []time.Duration {
		inner := NewSimCluster(nil, SimOptions{})
		cluster := &errCluster{Cluster: inner, failAdminDown: true}
		var got []time.Duration
		cfg := Config{
			MaxAttempts: 3,
			BackoffBase: time.Millisecond,
			Seed:        seed,
			Sleep:       func(d time.Duration) { got = append(got, d) },
		}
		eng := New(cluster, DefaultSOPs(cluster), cfg)
		eng.Submit(detection(cname.MustParse("c0-0c0s0n0"), t0, "node_shutdown", 0))
		eng.Service(t0)
		return got
	}
	a, b := delays(7), delays(7)
	if len(a) != 2 {
		t.Fatalf("expected 2 backoff sleeps for 3 attempts, got %v", a)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different backoff: %v vs %v", a, b)
	}
	if c := delays(8); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical jitter %v", a)
	}
	// Exponential shape survives the ±50 % jitter: attempt 2's delay
	// (base 2ms, range 1–3ms) exceeds attempt 1's minimum envelope.
	if a[0] < 500*time.Microsecond || a[0] > 1500*time.Microsecond {
		t.Fatalf("attempt-1 delay %v outside 0.5–1.5ms jitter envelope", a[0])
	}
	if a[1] < time.Millisecond || a[1] > 3*time.Millisecond {
		t.Fatalf("attempt-2 delay %v outside 1–3ms jitter envelope", a[1])
	}
}

// hangSOP blocks in Execute until the context expires — the
// worst-behaved SOP the timeout must contain.
type hangSOP struct{}

func (hangSOP) Kind() Kind         { return KindSuspect }
func (hangSOP) Priority() Priority { return P2 }
func (hangSOP) Evaluate(ctx context.Context, n cname.Name, st NodeStatus) bool {
	return true
}
func (hangSOP) Execute(ctx context.Context, n cname.Name, st NodeStatus) error {
	<-ctx.Done()
	return ctx.Err()
}

func TestSOPTimeoutBoundsHangingExecute(t *testing.T) {
	cluster := NewSimCluster(nil, SimOptions{})
	cfg := fastConfig()
	cfg.SOPTimeout = 20 * time.Millisecond
	cfg.MaxAttempts = 2
	eng := New(cluster, []SOP{hangSOP{}}, cfg)

	start := time.Now()
	eng.SubmitKind(alarm(node(t, "c0-0c0s0n0"), t0, false), KindSuspect)
	eng.Service(t0)
	elapsed := time.Since(start)

	tk := eng.Tickets(0)
	if len(tk) != 1 || tk[0].Decision != DecisionFailed || tk[0].Attempts != 2 {
		t.Fatalf("ledger = %+v, want one failed ticket after 2 attempts", tk)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("hanging SOP held the engine %v; timeout not enforced", elapsed)
	}
}

func TestKillSwitchRefusesEverything(t *testing.T) {
	cluster := NewSimCluster(nil, SimOptions{})
	eng := New(cluster, DefaultSOPs(cluster), fastConfig())
	n := node(t, "c0-0c0s0n0")

	eng.SetKillSwitch(true)
	eng.Submit(detection(n, t0, "node_shutdown", 0))
	eng.Service(t0)
	tk := eng.Tickets(0)
	if len(tk) != 1 || tk[0].Decision != DecisionRefused || !strings.Contains(tk[0].Reason, "kill switch") {
		t.Fatalf("ledger = %+v, want kill-switch refusal", tk)
	}
	if st := cluster.Status(n, t0); st.State != StateInService {
		t.Fatalf("kill switch did not stop the actuator: state %s", st.State)
	}
	// Releasing the switch lets a fresh condition through.
	eng.SetKillSwitch(false)
	eng.Submit(detection(n, t0.Add(time.Minute), "node_shutdown", 0))
	eng.Service(t0.Add(time.Minute))
	tks := eng.Tickets(0)
	if last := tks[len(tks)-1]; last.Decision != DecisionExecuted {
		t.Fatalf("post-release = %+v, want executed", last)
	}
}

func TestTicketsSince(t *testing.T) {
	cluster := NewSimCluster(nil, SimOptions{})
	eng := New(cluster, DefaultSOPs(cluster), fastConfig())
	for i := 0; i < 3; i++ {
		n := cname.MustParse(fmt.Sprintf("c%d-0c0s0n0", i))
		eng.Submit(detection(n, t0.Add(time.Duration(i)*time.Hour), "node_shutdown", 0))
		eng.Service(t0.Add(time.Duration(i) * time.Hour))
	}
	all := eng.Tickets(0)
	if len(all) != 3 {
		t.Fatalf("ledger has %d tickets", len(all))
	}
	tail := eng.Tickets(all[0].ID)
	if len(tail) != 2 || tail[0].ID != all[1].ID {
		t.Fatalf("Tickets(since) = %+v", tail)
	}
	if len(eng.Tickets(all[2].ID)) != 0 {
		t.Fatal("Tickets past the end should be empty")
	}
}
