package remedy

import (
	"time"
)

// Decision is the outcome recorded on a ticket.
const (
	// DecisionExecuted: the SOP ran to completion.
	DecisionExecuted = "executed"
	// DecisionRefused: a pre-check or safety guard declined the action.
	DecisionRefused = "refused"
	// DecisionFailed: Execute errored through the whole retry budget.
	DecisionFailed = "failed"
)

// Ticket is one entry of the append-only decision ledger. Every
// condition the engine dequeues produces exactly one ticket — refusals
// included — so the ledger is the complete, auditable history of what
// the loop did and declined to do. Tickets serialise to JSON for the
// /v1/remediations endpoint and persist/restore.
type Ticket struct {
	// ID is the ledger sequence number, ascending from 1.
	ID int64 `json:"id"`
	// Time is the decision's virtual time.
	Time time.Time `json:"time"`
	// Node is the subject node's cname.
	Node string `json:"node"`
	// Kind is the SOP kind name.
	Kind string `json:"kind"`
	// Priority is the queue the item was served from.
	Priority int `json:"priority"`
	// Source and Cause echo the triggering condition.
	Source string `json:"source"`
	Cause  string `json:"cause,omitempty"`
	// CondTime is the condition's observation time — together with
	// (Node, Kind) it identifies the condition for restart dedup.
	CondTime time.Time `json:"cond_time"`
	// JobID links app-triggered tickets to the job.
	JobID int64 `json:"job_id,omitempty"`
	// Decision is executed, refused or failed.
	Decision string `json:"decision"`
	// Reason explains refusals and failures.
	Reason string `json:"reason,omitempty"`
	// Attempts counts Execute tries (0 for refusals).
	Attempts int `json:"attempts,omitempty"`
	// Requeued lists job ids a drain requeued.
	Requeued []int64 `json:"requeued,omitempty"`
}

// Tickets returns a copy of the ledger entries with ID > sinceID.
func (e *Engine) Tickets(sinceID int64) []Ticket {
	e.mu.Lock()
	defer e.mu.Unlock()
	// The ledger is append-only with ascending ids, so binary-search-free
	// scanning from the back keeps the common "tail" query cheap.
	i := len(e.tickets)
	for i > 0 && e.tickets[i-1].ID > sinceID {
		i--
	}
	out := make([]Ticket, len(e.tickets)-i)
	copy(out, e.tickets[i:])
	return out
}

// Restore replays a previously persisted ledger into a fresh engine:
// the ledger entries are re-appended and folded through the same state
// transitions live ticketing uses, so dedup keys, cooldowns, drain
// slots, blast-radius windows and breaker state all come back exactly.
// A producer then re-delivering conditions the old process already
// ticketed finds them suppressed — the engine never re-executes work it
// has a ticket for. Call before the first Submit.
func (e *Engine) Restore(tickets []Ticket) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, t := range tickets {
		e.commitLocked(t)
	}
}
