package remedy

import (
	"fmt"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/core"
	"hpcfail/internal/faultsim"
)

// This file closes the loop: Replay streams a seeded faultsim scenario
// through the online watcher into the engine, and ScoreAgainst grades
// the resulting ticket ledger against the simulator's ground-truth
// failure list.
//
// Scoring is counterfactual over a fixed trace: the scenario's records
// do not change when the engine drains a node, so "averted" means the
// node was already out of service when its ground-truth failure time
// arrived — on a real system the failure would have hit an empty,
// unscheduled node. Conversely a disruptive action on a node with no
// ground-truth failure anywhere near it is a false action: capacity
// sacrificed to a phantom.

// DefaultAvertWindow bounds both credit and blame: an action averts a
// failure only within this horizon after it, and counts as false only
// when no failure lands within the horizon on either side.
const DefaultAvertWindow = 24 * time.Hour

// ReplayConfig tunes a scenario replay.
type ReplayConfig struct {
	// Engine tunes the remediation engine.
	Engine Config
	// Sim tunes the simulated actuator.
	Sim SimOptions
	// Watch sets the online detector's windows (zero value selects
	// core.DefaultConfig()).
	Watch core.Config
	// AvertWindow overrides DefaultAvertWindow when positive.
	AvertWindow time.Duration
}

// ReplayResult is a scored replay.
type ReplayResult struct {
	// Tickets is the full decision ledger.
	Tickets []Ticket
	// Stats is the engine counter snapshot.
	Stats Stats
	// Score grades the ledger against ground truth.
	Score Score
	// Baseline is the same scenario's impact with no remediation.
	Baseline Baseline
	// Cluster is the actuator after the run (audit log, requeues).
	Cluster *SimCluster
	// Engine is the engine after the run (for follow-on inspection).
	Engine *Engine
}

// Replay runs the closed loop over a scenario: every record feeds the
// online watcher; detections and alarms become conditions; the engine
// services its queues at each record's virtual time. The wall-clock
// cost is one pass over the records regardless of the simulated span.
func Replay(scn *faultsim.Scenario, rcfg ReplayConfig) (*ReplayResult, error) {
	wcfg := rcfg.Watch
	if wcfg == (core.Config{}) {
		wcfg = core.DefaultConfig()
	}
	cluster := NewSimCluster(scn.Jobs, rcfg.Sim)
	eng := New(cluster, DefaultSOPs(cluster), rcfg.Engine)

	watcher := core.NewWatcher(wcfg, func(d core.Detection) {
		eng.Submit(ConditionFromDetection(d))
	})
	watcher.OnAlarm = func(a core.Alarm) {
		eng.Submit(ConditionFromAlarm(a))
	}

	for i := range scn.Records {
		r := &scn.Records[i]
		watcher.Feed(*r)
		eng.Service(r.Time)
	}
	watcher.Flush()
	eng.Service(scn.End)

	res := &ReplayResult{
		Tickets:  eng.Tickets(0),
		Stats:    eng.Stats(),
		Baseline: BaselineImpact(scn),
		Cluster:  cluster,
		Engine:   eng,
	}
	res.Score = ScoreAgainst(scn, res.Tickets, rcfg.AvertWindow)
	return res, nil
}

// ConditionFromDetection maps a confirmed failure to a condition.
func ConditionFromDetection(d core.Detection) Condition {
	return Condition{
		Node:   d.Node,
		Time:   d.Time,
		Source: SourceDetection,
		Cause:  d.Terminal,
		JobID:  d.JobID,
	}
}

// ConditionFromAlarm maps an early-warning burst to a condition.
func ConditionFromAlarm(a core.Alarm) Condition {
	return Condition{
		Node:        a.Node,
		Time:        a.Time,
		Source:      SourceAlarm,
		HasExternal: a.HasExternal,
	}
}

// Score grades a ticket ledger against scenario ground truth.
type Score struct {
	// Failures is the ground-truth failure count.
	Failures int
	// Averted counts failures whose node the engine took out of
	// service (drain or admindown) within the avert window before the
	// failure time.
	Averted int
	// AvertedRate is Averted / Failures.
	AvertedRate float64
	// TotalLeadConsumed and MeanLeadConsumed measure how much of the
	// available warning the loop converted into safety margin: the gap
	// between the disruptive action and the failure it averted.
	TotalLeadConsumed, MeanLeadConsumed time.Duration
	// JobsSaved counts distinct jobs requeued off a node before that
	// node's averted failure would have killed them.
	JobsSaved int
	// JobsRequeued counts every drain requeue, saved or not.
	JobsRequeued int
	// Disruptive counts executed admindowns and drains.
	Disruptive int
	// FalseActions counts disruptive actions on nodes with no
	// ground-truth failure within the avert window on either side.
	FalseActions int
	// FalseActionRate is FalseActions / Disruptive.
	FalseActionRate float64
	// Executed/Refused/Failed summarise the ledger decisions.
	Executed, Refused, Failed int
}

// ScoreAgainst computes the score for a ledger; avertWindow <= 0
// selects DefaultAvertWindow.
func ScoreAgainst(scn *faultsim.Scenario, tickets []Ticket, avertWindow time.Duration) Score {
	if avertWindow <= 0 {
		avertWindow = DefaultAvertWindow
	}
	var s Score
	s.Failures = len(scn.Failures)

	// Executed disruptive tickets per node, in ledger (time) order.
	type action struct {
		t        time.Time
		requeued []int64
	}
	byNode := make(map[cname.Name][]action)
	for _, t := range tickets {
		switch t.Decision {
		case DecisionExecuted:
			s.Executed++
		case DecisionRefused:
			s.Refused++
		case DecisionFailed:
			s.Failed++
		}
		if t.Decision != DecisionExecuted {
			continue
		}
		kind, err := ParseKind(t.Kind)
		if err != nil || !kind.Disruptive() {
			continue
		}
		node, err := cname.Parse(t.Node)
		if err != nil {
			continue
		}
		s.Disruptive++
		s.JobsRequeued += len(t.Requeued)
		byNode[node] = append(byNode[node], action{t: t.Time, requeued: t.Requeued})
	}

	// Credit: each failure is averted by the earliest prior disruptive
	// action within the window; jobs in that action's requeue set still
	// running at the failure instant were saved.
	saved := make(map[int64]bool)
	jobEnd := make(map[int64]time.Time, len(scn.Jobs))
	for i := range scn.Jobs {
		jobEnd[scn.Jobs[i].ID] = scn.Jobs[i].End
	}
	for _, f := range scn.Failures {
		for _, a := range byNode[f.Node] {
			if !a.t.Before(f.Time) || f.Time.Sub(a.t) > avertWindow {
				continue
			}
			s.Averted++
			s.TotalLeadConsumed += f.Time.Sub(a.t)
			for _, id := range a.requeued {
				if end, ok := jobEnd[id]; ok && end.After(f.Time) && !saved[id] {
					saved[id] = true
					s.JobsSaved++
				}
			}
			break
		}
	}
	if s.Averted > 0 {
		s.MeanLeadConsumed = s.TotalLeadConsumed / time.Duration(s.Averted)
	}
	if s.Failures > 0 {
		s.AvertedRate = float64(s.Averted) / float64(s.Failures)
	}

	// Blame: a disruptive action with no ground-truth failure within
	// ±window on its node acted on a phantom.
	for node, actions := range byNode {
		failures := scn.FailuresOn(node)
		for _, a := range actions {
			near := false
			for _, f := range failures {
				gap := f.Time.Sub(a.t)
				if gap < 0 {
					gap = -gap
				}
				if gap <= avertWindow {
					near = true
					break
				}
			}
			if !near {
				s.FalseActions++
			}
		}
	}
	if s.Disruptive > 0 {
		s.FalseActionRate = float64(s.FalseActions) / float64(s.Disruptive)
	}
	return s
}

// Baseline is the scenario's impact with no remediation at all.
type Baseline struct {
	// Failures is the ground-truth count.
	Failures int
	// JobsHit counts distinct jobs running on a failed node at its
	// failure instant — the workload the loop competes to save.
	JobsHit int
}

// BaselineImpact computes the do-nothing baseline.
func BaselineImpact(scn *faultsim.Scenario) Baseline {
	b := Baseline{Failures: len(scn.Failures)}
	hit := make(map[int64]bool)
	for _, f := range scn.Failures {
		for _, j := range scn.JobsOn(f.Node, f.Time) {
			if !hit[j.ID] {
				hit[j.ID] = true
				b.JobsHit++
			}
		}
	}
	return b
}

// VerifyGuards audits a finished engine against its configuration: it
// re-derives the guard invariants from the ledger and returns an error
// naming the first violation. The CI soak leg fails on any non-nil
// result.
func VerifyGuards(tickets []Ticket, cfg Config) error {
	cfg = cfg.withDefaults()

	// No double execution: at most one executed ticket per
	// (node, kind, condition time), and never a second admindown or
	// warm swap for a node at all.
	type execKey struct {
		node, kind string
		unix       int64
	}
	seen := make(map[execKey]bool)
	perNodeKind := make(map[string]int)
	var drains []time.Time
	cabinets := make(map[cname.Name][]time.Time)
	for _, t := range tickets {
		if t.Decision != DecisionExecuted {
			continue
		}
		k := execKey{node: t.Node, kind: t.Kind, unix: t.CondTime.UnixNano()}
		if seen[k] {
			return fmt.Errorf("remedy: double execution of %s on %s for condition at %s",
				t.Kind, t.Node, t.CondTime)
		}
		seen[k] = true
		if t.Kind == kindNames[KindAdminDown] || t.Kind == kindNames[KindWarmSwap] {
			nk := t.Node + "/" + t.Kind
			perNodeKind[nk]++
			if perNodeKind[nk] > 1 {
				return fmt.Errorf("remedy: %s executed twice on %s", t.Kind, t.Node)
			}
		}
		kind, err := ParseKind(t.Kind)
		if err != nil {
			return fmt.Errorf("remedy: ticket %d has unknown kind %q", t.ID, t.Kind)
		}
		if kind == KindDrain {
			drains = append(drains, t.Time)
		}
		if kind.Disruptive() {
			node, err := cname.Parse(t.Node)
			if err != nil {
				return fmt.Errorf("remedy: ticket %d has unparseable node %q", t.ID, t.Node)
			}
			cabinets[node.CabinetName()] = append(cabinets[node.CabinetName()], t.Time)
		}
	}

	// Concurrent-drain cap: replay drain starts against DrainDuration.
	for i, start := range drains {
		active := 0
		for j := 0; j <= i; j++ {
			if start.Sub(drains[j]) < cfg.DrainDuration {
				active++
			}
		}
		if active > cfg.MaxConcurrentDrains {
			return fmt.Errorf("remedy: %d concurrent drains at %s exceeds cap %d",
				active, start, cfg.MaxConcurrentDrains)
		}
	}

	// Blast-radius cap: disruptive actions per cabinet per window.
	for cab, times := range cabinets {
		for i, t := range times {
			inWindow := 0
			for j := 0; j <= i; j++ {
				if t.Sub(times[j]) <= cfg.CabinetWindow {
					inWindow++
				}
			}
			if inWindow > cfg.CabinetCap {
				return fmt.Errorf("remedy: %d disruptive actions in cabinet %s within %s exceeds cap %d",
					inWindow, cab, cfg.CabinetWindow, cfg.CabinetCap)
			}
		}
	}
	return nil
}
