// Package remedy closes the loop the paper leaves open: it turns the
// pipeline's confirmed detections and early-warning alarms into the
// operational actions the studied sites actually take — NHC suspect
// mode, admindown, drain-and-requeue, warm swap — executed against the
// simulated cluster, and scores the outcome against simulator ground
// truth.
//
// The engine follows the Aegis SOP shape: every standard operating
// procedure implements an Evaluate idempotency pre-check (never repeat
// a repair, never act on a node already admindown or draining) and an
// Execute step with a per-SOP timeout, bounded retries with
// deterministic-jitter backoff, and a per-SOP circuit breaker.
// Conditions flow through four priority queues drained by a weighted
// round-robin scheduler, so a P0 storm cannot starve housekeeping.
//
// Robustness is the design center, not a garnish. A misfiring rule
// must degrade gracefully instead of amplifying the outage, so every
// action passes cluster-level safety guards first: a global kill
// switch, a per-node cooldown, a cap on concurrent drains, and a
// per-cabinet blast-radius cap over a sliding window. Every decision —
// executions, failures, and refusals alike — lands in an append-only
// ticket ledger; Restore replays a ledger into a fresh engine so a
// restarted process never re-executes work it already ticketed.
//
// Virtual time: the engine never reads the wall clock. Callers pass
// `now` into Step/Service, which is what lets the scoring harness
// replay weeks of simulated history in milliseconds and keeps every
// decision deterministic for the ledger-replay equivalence tests.
package remedy

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/rng"
)

// Priority ranks a queued condition. P0 is most urgent.
type Priority int

const (
	// P0: confirmed failures — the node is down, take it out of service.
	P0 Priority = iota
	// P1: corroborated early warnings — disruptive prevention (drain).
	P1
	// P2: uncorroborated warnings and follow-up repairs (suspect, swap).
	P2
	// P3: housekeeping and notification.
	P3

	numPriorities
)

// Kind identifies a standard operating procedure.
type Kind int

const (
	// KindAdminDown removes a confirmed-failed node from service.
	KindAdminDown Kind = iota
	// KindDrain requeues the node's jobs and takes it out of the
	// schedulable pool ahead of a predicted failure.
	KindDrain
	// KindSuspect places the node in NHC suspect mode (re-test on the
	// next anomaly; non-disruptive).
	KindSuspect
	// KindWarmSwap replaces an admindown node with a spare.
	KindWarmSwap
	// KindNotify tells the owning user their application triggered the
	// event (the paper's Finding 3: app-triggered failures are a user
	// conversation, not only a hardware ticket).
	KindNotify

	numKinds
)

var kindNames = [...]string{"admindown", "drain", "suspect", "warmswap", "notify"}

// String returns the SOP's kebab-case name.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind inverts String.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("remedy: unknown SOP kind %q", s)
}

// Disruptive reports whether the SOP takes an in-service node away from
// the workload — the actions the safety guards meter.
func (k Kind) Disruptive() bool { return k == KindAdminDown || k == KindDrain }

// Source says what produced a condition.
type Source int

const (
	// SourceDetection: a confirmed failure from the detector/watcher.
	SourceDetection Source = iota
	// SourceAlarm: an early-warning precursor burst from the watcher.
	SourceAlarm
	// SourceAction: a batch recommendation (core.RecommendActions).
	SourceAction
)

var sourceNames = [...]string{"detection", "alarm", "action"}

// String returns the source name.
func (s Source) String() string {
	if s >= 0 && int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return fmt.Sprintf("source(%d)", int(s))
}

// Condition is one observed reason to act on a node.
type Condition struct {
	// Node is the subject.
	Node cname.Name
	// Time is when the condition was observed (virtual time).
	Time time.Time
	// Source says which part of the pipeline raised it.
	Source Source
	// Cause carries the terminal category or root-cause hint, if known.
	Cause string
	// JobID links application-triggered conditions to the job.
	JobID int64
	// HasExternal marks alarms corroborated by external indicators —
	// the paper's Fig 14 lesson: corroborated warnings deserve the
	// disruptive response, uncorroborated ones the cautious one.
	HasExternal bool
}

// ServiceState is a node's position in the service lifecycle.
type ServiceState int

const (
	// StateInService: schedulable, healthy as far as anyone knows.
	StateInService ServiceState = iota
	// StateSuspect: NHC suspect mode; schedulable but watched.
	StateSuspect
	// StateDraining: out of the schedulable pool, jobs requeued, drain
	// completing.
	StateDraining
	// StateDrained: drain complete; idle and out of service.
	StateDrained
	// StateAdminDown: removed from service by the NHC.
	StateAdminDown
)

var stateNames = [...]string{"in-service", "suspect", "draining", "drained", "admindown"}

// String returns the state name.
func (s ServiceState) String() string {
	if s >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// NodeStatus is the cluster's view of one node, handed to SOPs.
type NodeStatus struct {
	// Node is the subject.
	Node cname.Name
	// State is the current service state.
	State ServiceState
	// Since is when the node entered State.
	Since time.Time
	// Swapped marks admindown nodes already replaced by a spare.
	Swapped bool
	// AsOf is the virtual decision time the status was read at (filled
	// by the engine before dispatch; SOPs use it for actuator calls).
	AsOf time.Time
	// Cond is the triggering condition (filled by the engine before
	// dispatch, not by the cluster).
	Cond Condition
}

// Cluster is the actuator the SOPs drive. SimCluster implements it
// against the simulated machine; a production implementation would wrap
// the real NHC/scheduler control plane. Implementations must be safe
// for concurrent use.
type Cluster interface {
	// Status reports the node's current service state at virtual time
	// now (time-dependent transitions like drain completion resolve
	// against now).
	Status(node cname.Name, now time.Time) NodeStatus
	// Suspect places the node in NHC suspect mode.
	Suspect(node cname.Name, now time.Time) error
	// AdminDown removes the node from service.
	AdminDown(node cname.Name, now time.Time) error
	// Drain removes the node from the schedulable pool and requeues the
	// jobs running on it, returning their ids.
	Drain(node cname.Name, now time.Time) ([]int64, error)
	// WarmSwap replaces an admindown node with a spare.
	WarmSwap(node cname.Name, now time.Time) error
	// Notify records a user notification for an app-triggered event.
	Notify(node cname.Name, jobID int64, now time.Time) error
}

// SOP is one standard operating procedure. Implementations must honour
// the context deadline in both methods — the engine's per-SOP timeout
// is delivered through it.
type SOP interface {
	// Kind identifies the procedure.
	Kind() Kind
	// Priority is the queue the procedure's conditions land in.
	Priority() Priority
	// Evaluate is the idempotency pre-check: it reports whether
	// executing now is still meaningful. A repair already applied, a
	// node already admindown or draining, a missing precondition — all
	// return false, and the engine tickets a refusal instead of acting.
	Evaluate(ctx context.Context, node cname.Name, st NodeStatus) bool
	// Execute performs the action. Errors are retried with backoff up
	// to the engine's attempt budget, then ticketed as failed.
	Execute(ctx context.Context, node cname.Name, st NodeStatus) error
}

// Config tunes the engine. The zero value selects the defaults below.
type Config struct {
	// MaxConcurrentDrains caps simultaneously draining nodes (default 4).
	MaxConcurrentDrains int
	// DrainDuration is how long a drain occupies a concurrency slot in
	// virtual time (default 10m). Keep it consistent with the actuator.
	DrainDuration time.Duration
	// CabinetCap is the blast-radius cap: at most this many disruptive
	// actions per cabinet per CabinetWindow (default 8).
	CabinetCap int
	// CabinetWindow is the blast-radius sliding window (default 30m).
	CabinetWindow time.Duration
	// NodeCooldown refuses a second disruptive action on one node
	// within this gap (default 30m).
	NodeCooldown time.Duration
	// SOPTimeout bounds each Evaluate/Execute call (default 2s wall
	// time — the one real-time knob; everything else is virtual).
	SOPTimeout time.Duration
	// MaxAttempts bounds Execute retries (default 3).
	MaxAttempts int
	// BackoffBase is the first retry delay, doubling per attempt with
	// ±50 % deterministic jitter (default 1ms; negative disables the
	// sleep entirely, for tests).
	BackoffBase time.Duration
	// BreakerThreshold opens a SOP's circuit breaker after this many
	// consecutive ticketed failures (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses that SOP, in
	// virtual time (default 1h).
	BreakerCooldown time.Duration
	// Seed drives the retry jitter (default 1).
	Seed uint64
	// Sleep replaces time.Sleep for retry backoff when set (tests).
	Sleep func(time.Duration)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentDrains <= 0 {
		c.MaxConcurrentDrains = 4
	}
	if c.DrainDuration <= 0 {
		c.DrainDuration = 10 * time.Minute
	}
	if c.CabinetCap <= 0 {
		c.CabinetCap = 8
	}
	if c.CabinetWindow <= 0 {
		c.CabinetWindow = 30 * time.Minute
	}
	if c.NodeCooldown <= 0 {
		c.NodeCooldown = 30 * time.Minute
	}
	if c.SOPTimeout <= 0 {
		c.SOPTimeout = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Hour
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// condKey identifies a (node, kind, condition-time) triple for
// duplicate suppression across at-least-once delivery and restarts.
type condKey struct {
	node cname.Name
	kind Kind
	unix int64
}

// item is one queued unit of work.
type item struct {
	cond Condition
	kind Kind
	seq  int64
}

// Stats counts engine activity; high-water marks back the guard audits.
type Stats struct {
	// Submitted counts conditions offered; Deduped the duplicates
	// suppressed; Queued what actually entered a queue.
	Submitted, Deduped, Queued int
	// Executed/Refused/Failed partition the ticketed decisions.
	Executed, Refused, Failed int
	// Downgraded counts drains demoted to suspect by a guard.
	Downgraded int
	// MaxActiveDrains is the high-water mark of concurrently draining
	// nodes the engine itself initiated.
	MaxActiveDrains int
	// MaxCabinetWindow is the high-water mark of disruptive actions
	// within one cabinet inside one CabinetWindow.
	MaxCabinetWindow int
}

// Engine routes conditions to SOPs under the safety contract. Safe for
// concurrent use; all decisions serialise on one mutex so the ticket
// ledger is a total order.
type Engine struct {
	mu      sync.Mutex
	cfg     Config
	cluster Cluster
	sops    map[Kind]SOP

	queues  [numPriorities][]item
	credits [numPriorities]int
	cursor  Priority
	seq     int64

	seen    map[condKey]bool
	tickets []Ticket
	nextID  int64

	lastAction map[cname.Name]time.Time // last executed disruptive action per node
	draining   map[cname.Name]time.Time // engine-initiated drain start times
	cabinet    map[cname.Name][]time.Time
	breakers   map[Kind]*breaker

	// clock is the monotonic virtual-time watermark; decisions never
	// run at a time before it (see decideLocked).
	clock time.Time

	killed bool
	stats  Stats
}

// queueWeights is the weighted-round-robin share of each priority per
// scheduling cycle: a full cycle serves up to 8 P0, 4 P1, 2 P2 and 1 P3
// items, so even a P0 storm leaves the lower queues a guaranteed share.
var queueWeights = [numPriorities]int{8, 4, 2, 1}

// New builds an engine over the actuator with the given SOP set.
func New(cluster Cluster, sops []SOP, cfg Config) *Engine {
	e := &Engine{
		cfg:        cfg.withDefaults(),
		cluster:    cluster,
		sops:       make(map[Kind]SOP, len(sops)),
		seen:       make(map[condKey]bool),
		nextID:     1,
		cursor:     numPriorities - 1,
		lastAction: make(map[cname.Name]time.Time),
		draining:   make(map[cname.Name]time.Time),
		cabinet:    make(map[cname.Name][]time.Time),
		breakers:   make(map[Kind]*breaker),
	}
	for _, s := range sops {
		e.sops[s.Kind()] = s
	}
	return e
}

// Route maps a condition to the SOP kinds that should handle it:
// confirmed failures go admindown (plus warm swap for hardware causes
// and a user notification for app-triggered ones); corroborated alarms
// drain; uncorroborated alarms only suspect.
func Route(c Condition) []Kind {
	switch c.Source {
	case SourceDetection:
		kinds := []Kind{KindAdminDown}
		if hardwareCause(c.Cause) {
			kinds = append(kinds, KindWarmSwap)
		}
		if c.JobID != 0 {
			kinds = append(kinds, KindNotify)
		}
		return kinds
	case SourceAlarm:
		if c.HasExternal {
			return []Kind{KindDrain}
		}
		return []Kind{KindSuspect}
	default:
		return nil
	}
}

// hardwareCause reports whether a cause hint names a condition a warm
// swap addresses (the board is the problem, not the software on it).
func hardwareCause(cause string) bool {
	switch cause {
	case "mce", "cpu-corruption", "hardware-other", "silent_shutdown":
		return true
	}
	return false
}

// Submit routes a condition and enqueues one item per SOP kind.
// Duplicate (node, kind, time) triples — at-least-once redelivery,
// restart replays — are suppressed against the seen-set the ledger
// rebuilds. It returns how many items were enqueued.
func (e *Engine) Submit(c Condition) int {
	n := 0
	for _, k := range Route(c) {
		if e.SubmitKind(c, k) {
			n++
		}
	}
	return n
}

// SubmitKind enqueues the condition for one specific SOP, bypassing
// routing (the batch-recommendation bridge uses this). It reports
// whether the item was enqueued (false = duplicate or unknown kind).
func (e *Engine) SubmitKind(c Condition, k Kind) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.submitLocked(c, k)
}

func (e *Engine) submitLocked(c Condition, k Kind) bool {
	e.stats.Submitted++
	sop, ok := e.sops[k]
	if !ok {
		return false
	}
	key := condKey{node: c.Node, kind: k, unix: c.Time.UnixNano()}
	if e.seen[key] {
		e.stats.Deduped++
		return false
	}
	e.seen[key] = true
	e.seq++
	p := sop.Priority()
	e.queues[p] = append(e.queues[p], item{cond: c, kind: k, seq: e.seq})
	e.stats.Queued++
	return true
}

// QueueDepths returns the current per-priority queue lengths.
func (e *Engine) QueueDepths() [4]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	var d [4]int
	for p := range e.queues {
		d[p] = len(e.queues[p])
	}
	return d
}

// SetKillSwitch engages or releases the global kill switch. While
// engaged, every processed item is refused (and ticketed as such) —
// the big red button when the loop itself is suspected.
func (e *Engine) SetKillSwitch(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.killed = on
}

// KillSwitch reports the switch position.
func (e *Engine) KillSwitch() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.killed
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Step processes one queued item at virtual time now, appending exactly
// one ticket. It reports whether any work was found.
func (e *Engine) Step(now time.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	it, ok := e.pickLocked()
	if !ok {
		return false
	}
	e.decideLocked(it, now)
	return true
}

// Service drains every queue at virtual time now (items enqueued by the
// decisions themselves — e.g. a downgraded drain — are processed too).
// It returns the number of tickets appended.
func (e *Engine) Service(now time.Time) int {
	n := 0
	for e.Step(now) {
		n++
	}
	return n
}

// pickLocked implements the weighted round-robin over the four queues.
// When every queue is empty it resets the cursor and credits to their
// canonical initial state: the scheduler's position is then a pure
// function of queue content, so an idle Service call is a true no-op
// and a restored engine schedules identically to one that never died.
func (e *Engine) pickLocked() (item, bool) {
	for scanned := 0; scanned <= int(numPriorities); {
		p := e.cursor
		if e.credits[p] > 0 && len(e.queues[p]) > 0 {
			e.credits[p]--
			it := e.queues[p][0]
			e.queues[p] = e.queues[p][1:]
			return it, true
		}
		e.cursor = (p + 1) % numPriorities
		e.credits[e.cursor] = queueWeights[e.cursor]
		scanned++
	}
	e.cursor = numPriorities - 1
	e.credits = [numPriorities]int{}
	return item{}, false
}

// decideLocked runs one item through guards, Evaluate and Execute, and
// commits the resulting ticket. Virtual time is clamped to the engine's
// monotonic watermark first: concurrent feeders may present
// out-of-order `now`s, and letting time run backwards would corrupt
// the sliding-window guards (a future-time decision prunes a drain
// slot an earlier-time decision still overlaps).
func (e *Engine) decideLocked(it item, now time.Time) {
	if now.Before(e.clock) {
		now = e.clock
	}
	t := Ticket{
		ID:       e.nextID,
		Time:     now,
		Node:     it.cond.Node.String(),
		Kind:     it.kind.String(),
		Priority: int(e.sops[it.kind].Priority()),
		Source:   it.cond.Source.String(),
		Cause:    it.cond.Cause,
		CondTime: it.cond.Time,
		JobID:    it.cond.JobID,
	}
	sop := e.sops[it.kind]

	if e.killed {
		e.commitLocked(refuse(t, "kill switch engaged"))
		return
	}
	if br := e.breakers[it.kind]; br != nil && br.open(now) {
		e.commitLocked(refuse(t, "circuit breaker open"))
		return
	}

	st := e.cluster.Status(it.cond.Node, now)
	st.AsOf = now
	st.Cond = it.cond

	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.SOPTimeout)
	applicable := sop.Evaluate(ctx, it.cond.Node, st)
	cancel()
	if !applicable {
		e.commitLocked(refuse(t, "idempotency pre-check: not applicable (state "+st.State.String()+")"))
		return
	}

	if reason, downgrade := e.guardLocked(it.kind, it.cond.Node, now); reason != "" {
		if downgrade {
			t = refuse(t, reason+"; downgraded to suspect")
			e.commitLocked(t)
			e.stats.Downgraded++
			// Re-enter through the normal path so the suspect decision
			// gets its own ticket, dedup and guards.
			e.submitLocked(it.cond, KindSuspect)
			return
		}
		e.commitLocked(refuse(t, reason))
		return
	}

	var err error
	for t.Attempts = 1; ; t.Attempts++ {
		ctx, cancel := context.WithTimeout(context.Background(), e.cfg.SOPTimeout)
		err = sop.Execute(ctx, it.cond.Node, st)
		cancel()
		if err == nil || t.Attempts >= e.cfg.MaxAttempts {
			break
		}
		e.sleepBackoff(it.kind, it.cond.Node, t.Attempts)
	}
	if err != nil {
		t.Decision = DecisionFailed
		t.Reason = err.Error()
		e.commitLocked(t)
		return
	}
	t.Decision = DecisionExecuted
	if rr, ok := sop.(requeueReporter); ok {
		t.Requeued = rr.LastRequeued()
	}
	e.commitLocked(t)
}

// requeueReporter lets a SOP surface the job ids its last Execute
// requeued, so the ticket carries them (the engine serialises
// decisions, so a per-SOP scratch field is race-free).
type requeueReporter interface {
	LastRequeued() []int64
}

// refuse fills the refusal fields.
func refuse(t Ticket, reason string) Ticket {
	t.Decision = DecisionRefused
	t.Reason = reason
	return t
}

// guardLocked applies the cluster-level safety guards to a disruptive
// action. It returns a non-empty refusal reason when a guard trips, and
// whether the refusal should downgrade to a suspect instead (drains
// blocked by capacity guards degrade to the non-disruptive response
// rather than dropping the warning on the floor).
func (e *Engine) guardLocked(k Kind, node cname.Name, now time.Time) (reason string, downgrade bool) {
	if !k.Disruptive() {
		return "", false
	}
	if last, ok := e.lastAction[node]; ok && now.Sub(last) < e.cfg.NodeCooldown {
		return fmt.Sprintf("node cooldown: last disruptive action %s ago", now.Sub(last)), false
	}
	if k == KindDrain && e.activeDrainsLocked(now) >= e.cfg.MaxConcurrentDrains {
		return fmt.Sprintf("concurrent-drain cap reached (%d)", e.cfg.MaxConcurrentDrains), true
	}
	cab := node.CabinetName()
	if e.cabinetCountLocked(cab, now) >= e.cfg.CabinetCap {
		return fmt.Sprintf("cabinet blast-radius cap reached (%d in %s)", e.cfg.CabinetCap, e.cfg.CabinetWindow), k == KindDrain
	}
	return "", false
}

// activeDrainsLocked counts engine-initiated drains still inside their
// DrainDuration at now, pruning completed ones.
func (e *Engine) activeDrainsLocked(now time.Time) int {
	n := 0
	for node, start := range e.draining {
		if now.Sub(start) < e.cfg.DrainDuration {
			n++
		} else {
			delete(e.draining, node)
		}
	}
	return n
}

// cabinetCountLocked counts disruptive actions in the cabinet within
// the blast-radius window ending at now, pruning older entries.
func (e *Engine) cabinetCountLocked(cab cname.Name, now time.Time) int {
	times := e.cabinet[cab]
	keep := times[:0]
	for _, ts := range times {
		if now.Sub(ts) <= e.cfg.CabinetWindow {
			keep = append(keep, ts)
		}
	}
	e.cabinet[cab] = keep
	return len(keep)
}

// commitLocked appends the ticket and folds it into the guard state.
// Restore drives the same fold, which is what makes a restored engine
// behave identically to one that never died.
func (e *Engine) commitLocked(t Ticket) {
	e.tickets = append(e.tickets, t)
	e.nextID = t.ID + 1
	e.applyLocked(t)
}

// applyLocked updates dedup, guard, breaker and clock state from one
// ticket.
func (e *Engine) applyLocked(t Ticket) {
	if t.Time.After(e.clock) {
		e.clock = t.Time
	}
	kind, err := ParseKind(t.Kind)
	if err != nil {
		return
	}
	node, nerr := cname.Parse(t.Node)
	key := condKey{node: node, kind: kind, unix: t.CondTime.UnixNano()}
	if nerr == nil {
		e.seen[key] = true
	}
	switch t.Decision {
	case DecisionExecuted:
		e.stats.Executed++
		if br := e.breakers[kind]; br != nil {
			br.success()
		}
		if kind.Disruptive() && nerr == nil {
			e.lastAction[node] = t.Time
			cab := node.CabinetName()
			e.cabinet[cab] = append(e.cabinet[cab], t.Time)
			if n := e.cabinetCountLocked(cab, t.Time); n > e.stats.MaxCabinetWindow {
				e.stats.MaxCabinetWindow = n
			}
		}
		if kind == KindDrain && nerr == nil {
			e.draining[node] = t.Time
			if n := e.activeDrainsLocked(t.Time); n > e.stats.MaxActiveDrains {
				e.stats.MaxActiveDrains = n
			}
		}
	case DecisionFailed:
		e.stats.Failed++
		br := e.breakers[kind]
		if br == nil {
			br = &breaker{threshold: e.cfg.BreakerThreshold, cooldown: e.cfg.BreakerCooldown}
			e.breakers[kind] = br
		}
		br.failure(t.Time)
	case DecisionRefused:
		e.stats.Refused++
	}
}

// sleepBackoff pauses between Execute retries: base×2ⁿ⁻¹ with ±50 %
// deterministic jitter keyed by SOP kind, node and attempt — the same
// supervisor idiom the ingestion pipeline uses, so two runs with one
// seed back off identically.
func (e *Engine) sleepBackoff(k Kind, node cname.Name, attempt int) {
	if e.cfg.BackoffBase < 0 {
		return
	}
	base := float64(e.cfg.BackoffBase << uint(attempt-1))
	r := rng.New(e.cfg.Seed).Split(fmt.Sprintf("backoff/%s/%s/%d", k, node, attempt))
	d := time.Duration(r.Jitter(base, 0.5))
	if e.cfg.Sleep != nil {
		e.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

// breaker is a per-SOP circuit breaker: consecutive ticketed failures
// open it; an open breaker refuses the SOP until the (virtual)
// cooldown passes, then one success closes it.
type breaker struct {
	threshold   int
	cooldown    time.Duration
	consecutive int
	openUntil   time.Time
}

func (b *breaker) failure(now time.Time) {
	b.consecutive++
	if b.consecutive >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
}

func (b *breaker) success() {
	b.consecutive = 0
	b.openUntil = time.Time{}
}

func (b *breaker) open(now time.Time) bool {
	return !b.openUntil.IsZero() && now.Before(b.openUntil)
}
