package remedy

import (
	"reflect"
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/faultsim"
)

// testScenario generates a small seeded scenario for scoring tests.
func testScenario(t *testing.T, system string, days int, seed uint64) *faultsim.Scenario {
	t.Helper()
	p, err := faultsim.DefaultProfile(system)
	if err != nil {
		t.Fatal(err)
	}
	p.Spec.Nodes = 192
	if p.Spec.CabinetCols > 2 {
		p.Spec.CabinetCols = 2
	}
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := faultsim.Generate(p, start, start.Add(time.Duration(days)*24*time.Hour), seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(scn.Failures) == 0 {
		t.Fatal("scenario has no ground-truth failures")
	}
	return scn
}

func TestReplayScoresScenario(t *testing.T) {
	scn := testScenario(t, "S1", 7, 11)
	res, err := Replay(scn, ReplayConfig{Engine: Config{BackoffBase: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tickets) == 0 {
		t.Fatal("replay produced no tickets")
	}
	s := res.Score
	if s.Failures != len(scn.Failures) {
		t.Fatalf("score counted %d failures, scenario has %d", s.Failures, len(scn.Failures))
	}
	if s.Averted == 0 {
		t.Fatalf("no failures averted; score %+v, stats %+v", s, res.Stats)
	}
	if s.Averted > s.Failures {
		t.Fatalf("averted %d exceeds failures %d", s.Averted, s.Failures)
	}
	if s.MeanLeadConsumed <= 0 {
		t.Fatalf("averted %d failures with non-positive mean lead %v", s.Averted, s.MeanLeadConsumed)
	}
	if s.Disruptive == 0 || s.Executed == 0 {
		t.Fatalf("no disruptive/executed actions: %+v", s)
	}
	if s.FalseActionRate < 0 || s.FalseActionRate > 1 {
		t.Fatalf("false-action rate %v out of range", s.FalseActionRate)
	}
	if res.Baseline.Failures != s.Failures {
		t.Fatalf("baseline failures %d != score failures %d", res.Baseline.Failures, s.Failures)
	}
}

func TestScoreAgainstEmptyLedger(t *testing.T) {
	scn := testScenario(t, "S1", 7, 11)
	s := ScoreAgainst(scn, nil, 0)
	if s.Averted != 0 || s.Disruptive != 0 || s.FalseActions != 0 {
		t.Fatalf("empty ledger scored %+v", s)
	}
	if s.Failures != len(scn.Failures) {
		t.Fatalf("failures %d, want %d", s.Failures, len(scn.Failures))
	}
}

// TestRemediationSoak is the CI soak leg: a seeded scenario replayed
// through the full closed loop under the race detector. It fails if
//
//   - the ledger is not reproducible (a second replay diverges),
//   - a restored engine's ledger replay diverges from the original, or
//   - any safety guard was violated (re-derived from the ledger).
func TestRemediationSoak(t *testing.T) {
	scn := testScenario(t, "S1", 7, 23)
	rcfg := ReplayConfig{Engine: Config{BackoffBase: -1}}

	first, err := Replay(scn, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Replay(scn, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Tickets, second.Tickets) {
		t.Fatalf("ledger replay diverged: %d vs %d tickets", len(first.Tickets), len(second.Tickets))
	}

	// Guard audit, re-derived from the ledger alone.
	if err := VerifyGuards(first.Tickets, rcfg.Engine); err != nil {
		t.Fatalf("safety guard violated: %v", err)
	}
	cfg := rcfg.Engine.withDefaults()
	if first.Stats.MaxActiveDrains > cfg.MaxConcurrentDrains {
		t.Fatalf("MaxActiveDrains %d exceeds cap %d", first.Stats.MaxActiveDrains, cfg.MaxConcurrentDrains)
	}
	if first.Stats.MaxCabinetWindow > cfg.CabinetCap {
		t.Fatalf("MaxCabinetWindow %d exceeds cap %d", first.Stats.MaxCabinetWindow, cfg.CabinetCap)
	}

	// Crash-restart equivalence at ledger midpoint: restore an engine
	// from the first half of the ledger and redeliver every condition
	// the ledger knows about; the executed set must not grow for those
	// conditions, and the ledger must not reorder.
	half := first.Tickets[:len(first.Tickets)/2]
	cluster := NewSimCluster(scn.Jobs, rcfg.Sim)
	restored := New(cluster, DefaultSOPs(cluster), rcfg.Engine)
	restored.Restore(half)
	for _, tk := range half {
		kind, err := ParseKind(tk.Kind)
		if err != nil {
			t.Fatal(err)
		}
		if restored.SubmitKind(Condition{Node: cname.MustParse(tk.Node), Time: tk.CondTime}, kind) {
			t.Fatalf("restored engine re-queued already-ticketed condition %+v", tk)
		}
	}
	if got := restored.Tickets(0); !reflect.DeepEqual(got, half) {
		t.Fatalf("restored ledger changed under redelivery: %d vs %d tickets", len(got), len(half))
	}

	if first.Score.Averted == 0 {
		t.Fatalf("soak scenario averted nothing: %+v", first.Score)
	}
}
