package remedy

import (
	"context"

	"hpcfail/internal/cname"
)

// DefaultSOPs returns the standard procedure set wired to an actuator:
//
//	admindown (P0) — confirmed failure: remove the node from service.
//	drain     (P1) — corroborated warning: requeue jobs, stop scheduling.
//	suspect   (P2) — uncorroborated warning: NHC suspect mode.
//	warmswap  (P2) — hardware cause, node already down: swap in a spare.
//	notify    (P3) — app-triggered: tell the owning user.
func DefaultSOPs(c Cluster) []SOP {
	return []SOP{
		&AdminDownSOP{c: c},
		&DrainSOP{c: c},
		&SuspectSOP{c: c},
		&WarmSwapSOP{c: c},
		&NotifySOP{c: c},
	}
}

// ctxAlive is the shared deadline check: SOPs honour the engine's
// per-call timeout before touching the actuator.
func ctxAlive(ctx context.Context) bool { return ctx.Err() == nil }

// AdminDownSOP removes a confirmed-failed node from service.
type AdminDownSOP struct{ c Cluster }

// Kind returns KindAdminDown.
func (s *AdminDownSOP) Kind() Kind { return KindAdminDown }

// Priority returns P0.
func (s *AdminDownSOP) Priority() Priority { return P0 }

// Evaluate refuses nodes already admindown — the repair is done; a
// second admindown is exactly the double-execution the contract bans.
func (s *AdminDownSOP) Evaluate(ctx context.Context, node cname.Name, st NodeStatus) bool {
	return ctxAlive(ctx) && st.State != StateAdminDown
}

// Execute sets the node admindown.
func (s *AdminDownSOP) Execute(ctx context.Context, node cname.Name, st NodeStatus) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.c.AdminDown(node, st.AsOf)
}

// DrainSOP requeues a warned node's jobs and removes it from the
// schedulable pool before the predicted failure lands.
type DrainSOP struct {
	c            Cluster
	lastRequeued []int64
}

// Kind returns KindDrain.
func (s *DrainSOP) Kind() Kind { return KindDrain }

// Priority returns P1.
func (s *DrainSOP) Priority() Priority { return P1 }

// Evaluate only drains nodes still doing work: in-service or suspect.
// Draining, drained and admindown nodes have nothing left to save.
func (s *DrainSOP) Evaluate(ctx context.Context, node cname.Name, st NodeStatus) bool {
	return ctxAlive(ctx) && (st.State == StateInService || st.State == StateSuspect)
}

// Execute drains the node, recording the requeued job ids for the
// ticket.
func (s *DrainSOP) Execute(ctx context.Context, node cname.Name, st NodeStatus) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ids, err := s.c.Drain(node, st.AsOf)
	if err != nil {
		return err
	}
	s.lastRequeued = ids
	return nil
}

// LastRequeued reports the job ids the most recent Execute requeued.
func (s *DrainSOP) LastRequeued() []int64 { return s.lastRequeued }

// SuspectSOP places a node in NHC suspect mode — the cautious,
// non-disruptive response to an uncorroborated warning.
type SuspectSOP struct{ c Cluster }

// Kind returns KindSuspect.
func (s *SuspectSOP) Kind() Kind { return KindSuspect }

// Priority returns P2.
func (s *SuspectSOP) Priority() Priority { return P2 }

// Evaluate only marks in-service nodes: suspect is a no-op on a node
// already suspect or out of service.
func (s *SuspectSOP) Evaluate(ctx context.Context, node cname.Name, st NodeStatus) bool {
	return ctxAlive(ctx) && st.State == StateInService
}

// Execute enters suspect mode.
func (s *SuspectSOP) Execute(ctx context.Context, node cname.Name, st NodeStatus) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.c.Suspect(node, st.AsOf)
}

// WarmSwapSOP replaces an admindown node with a spare blade slot — the
// paper's warm-swap recovery. It is queued alongside the admindown for
// hardware causes and naturally runs after it (P2 versus P0).
type WarmSwapSOP struct{ c Cluster }

// Kind returns KindWarmSwap.
func (s *WarmSwapSOP) Kind() Kind { return KindWarmSwap }

// Priority returns P2.
func (s *WarmSwapSOP) Priority() Priority { return P2 }

// Evaluate requires the node to be admindown and not already swapped —
// the pre-check that makes the repair idempotent.
func (s *WarmSwapSOP) Evaluate(ctx context.Context, node cname.Name, st NodeStatus) bool {
	return ctxAlive(ctx) && st.State == StateAdminDown && !st.Swapped
}

// Execute performs the swap.
func (s *WarmSwapSOP) Execute(ctx context.Context, node cname.Name, st NodeStatus) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.c.WarmSwap(node, st.AsOf)
}

// NotifySOP records a user notification for an app-triggered event —
// the paper's point that application-triggered failures need the user
// in the loop, not just a hardware ticket.
type NotifySOP struct{ c Cluster }

// Kind returns KindNotify.
func (s *NotifySOP) Kind() Kind { return KindNotify }

// Priority returns P3.
func (s *NotifySOP) Priority() Priority { return P3 }

// Evaluate requires a job to notify about.
func (s *NotifySOP) Evaluate(ctx context.Context, node cname.Name, st NodeStatus) bool {
	return ctxAlive(ctx) && st.Cond.JobID != 0
}

// Execute records the notification.
func (s *NotifySOP) Execute(ctx context.Context, node cname.Name, st NodeStatus) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.c.Notify(node, st.Cond.JobID, st.AsOf)
}
