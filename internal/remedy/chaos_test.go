package remedy

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/workload"
)

// chaosConditions builds a deterministic, adversarial condition stream:
// episodes in one cabinet (blast-radius pressure), alarm storms
// (drain-cap pressure), repeat conditions on one node (cooldown and
// idempotency pressure), hardware causes (multi-SOP fan-out) and exact
// duplicates (dedup pressure).
func chaosConditions() []Condition {
	var conds []Condition
	at := func(m int) time.Time { return t0.Add(time.Duration(m) * time.Minute) }
	n := func(cab, chassis, slot, nd int) cname.Name {
		return cname.MustParse(fmt.Sprintf("c%d-0c%ds%dn%d", cab, chassis, slot, nd))
	}
	// Alarm storm across two cabinets.
	for i := 0; i < 6; i++ {
		conds = append(conds, alarmCond(n(i%2, 0, i, 0), at(i), true))
	}
	// Uncorroborated alarms.
	for i := 0; i < 3; i++ {
		conds = append(conds, alarmCond(n(2, 1, i, 1), at(5+i), false))
	}
	// A cabinet-concentrated failure episode with hardware causes.
	for i := 0; i < 5; i++ {
		conds = append(conds, detCond(n(0, 2, i, 2), at(10+i), "silent_shutdown", 0))
	}
	// App-triggered failures (notify fan-out).
	for i := 0; i < 3; i++ {
		conds = append(conds, detCond(n(1, 2, i, 3), at(20+i), "nhc_admindown", int64(100+i)))
	}
	// Repeat pressure on one node: alarm, then failure, then a second
	// failure inside the refractory of the guards.
	hot := n(2, 0, 0, 0)
	conds = append(conds,
		alarmCond(hot, at(30), true),
		detCond(hot, at(35), "node_shutdown", 0),
		detCond(hot, at(40), "node_shutdown", 0),
	)
	// Exact duplicates of earlier conditions (at-least-once delivery).
	conds = append(conds, conds[0], conds[10], conds[len(conds)-1])
	return conds
}

func alarmCond(n cname.Name, at time.Time, ext bool) Condition {
	return Condition{Node: n, Time: at, Source: SourceAlarm, HasExternal: ext}
}

func detCond(n cname.Name, at time.Time, cause string, jobID int64) Condition {
	return Condition{Node: n, Time: at, Source: SourceDetection, Cause: cause, JobID: jobID}
}

func chaosJobs() []workload.Job {
	var jobs []workload.Job
	for i := 0; i < 40; i++ {
		nd := cname.MustParse(fmt.Sprintf("c%d-0c%ds%dn%d", i%3, i%3, i%8, i%4))
		jobs = append(jobs, workload.Job{
			ID:    int64(1000 + i),
			Nodes: []cname.Name{nd},
			Start: t0.Add(-time.Hour),
			End:   t0.Add(time.Duration(i%5+1) * time.Hour),
		})
	}
	return jobs
}

// runChaos feeds the condition stream through a fresh engine/cluster,
// servicing the queues after every submit (so the queue is empty at
// every inter-condition kill point), and returns the ledger.
func runChaos(conds []Condition, kill int) (ledger []Ticket, cluster *SimCluster, eng *Engine) {
	cluster = NewSimCluster(chaosJobs(), SimOptions{})
	eng = New(cluster, DefaultSOPs(cluster), fastConfig())
	for i, c := range conds {
		if kill >= 0 && i == kill {
			break
		}
		eng.Submit(c)
		eng.Service(c.Time)
	}
	return eng.Tickets(0), cluster, eng
}

// TestKillReplayEquivalence kills the engine at every inter-condition
// point k, restores a fresh engine from the partial ledger (same
// cluster — actuator state survives a control-plane restart), re-feeds
// the FULL stream from the beginning (at-least-once delivery), and
// demands the final ledger be byte-identical to the never-killed run.
// This is the contract that makes restart safe: no double execution, no
// lost refusals, no renumbered tickets.
func TestKillReplayEquivalence(t *testing.T) {
	conds := chaosConditions()
	want, _, wantEng := runChaos(conds, -1)
	if len(want) == 0 {
		t.Fatal("chaos stream produced an empty ledger; test is vacuous")
	}
	if err := VerifyGuards(want, Config{}); err != nil {
		t.Fatalf("reference run violates guards: %v", err)
	}
	wantStats := wantEng.Stats()
	if wantStats.Executed == 0 || wantStats.Refused == 0 || wantStats.Deduped == 0 {
		t.Fatalf("chaos stream not adversarial enough: %+v", wantStats)
	}

	for kill := 0; kill <= len(conds); kill++ {
		partial, cluster, _ := runChaos(conds, kill)

		restored := New(cluster, DefaultSOPs(cluster), fastConfig())
		restored.Restore(partial)
		for _, c := range conds { // full redelivery from the start
			restored.Submit(c)
			restored.Service(c.Time)
		}
		got := restored.Tickets(0)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kill at %d: restored ledger diverges\n got %d tickets: %+v\nwant %d tickets: %+v",
				kill, len(got), got, len(want), want)
		}
	}
}

// TestRestoredEngineNeverReExecutes is the sharper idempotency claim:
// after a restore, redelivering every already-ticketed condition
// produces zero new tickets and zero actuator calls.
func TestRestoredEngineNeverReExecutes(t *testing.T) {
	conds := chaosConditions()
	ledger, cluster, _ := runChaos(conds, -1)

	auditBefore := len(cluster.Audit())
	restored := New(cluster, DefaultSOPs(cluster), fastConfig())
	restored.Restore(ledger)
	for _, c := range conds {
		restored.Submit(c)
	}
	if n := restored.Service(t0.Add(24 * time.Hour)); n != 0 {
		t.Fatalf("restored engine processed %d items, want 0; tickets %+v",
			n, restored.Tickets(ledger[len(ledger)-1].ID))
	}
	if got := len(cluster.Audit()); got != auditBefore {
		t.Fatalf("actuator saw %d new operations after restore", got-auditBefore)
	}
	if got := restored.Tickets(0); !reflect.DeepEqual(got, ledger) {
		t.Fatalf("restored ledger changed: %d vs %d tickets", len(got), len(ledger))
	}
}

// TestChaosConcurrentGuards hammers one engine from many goroutines
// under the race detector and then audits the ledger: no double
// execution, drain concurrency within the cap, cabinet blast radius
// within the cap — the invariants must hold under any interleaving.
func TestChaosConcurrentGuards(t *testing.T) {
	cluster := NewSimCluster(chaosJobs(), SimOptions{})
	cfg := fastConfig()
	cfg.MaxConcurrentDrains = 3
	cfg.CabinetCap = 4
	eng := New(cluster, DefaultSOPs(cluster), cfg)

	const feeders = 8
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				at := t0.Add(time.Duration(f*40+i) * 30 * time.Second)
				nd := cname.MustParse(fmt.Sprintf("c%d-0c%ds%dn%d", f%4, i%3, i%8, i%4))
				switch i % 3 {
				case 0:
					eng.Submit(detCond(nd, at, "silent_shutdown", 0))
				case 1:
					eng.Submit(alarmCond(nd, at, true))
				default:
					eng.Submit(alarmCond(nd, at, false))
				}
				eng.Service(at)
			}
		}(f)
	}
	// A goroutine toggling the kill switch mid-flight must not corrupt
	// anything either — refusals are just another decision.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			eng.SetKillSwitch(i%2 == 0)
		}
		eng.SetKillSwitch(false)
	}()
	wg.Wait()
	eng.Service(t0.Add(48 * time.Hour))

	ledger := eng.Tickets(0)
	if len(ledger) == 0 {
		t.Fatal("no tickets from concurrent hammer")
	}
	if err := VerifyGuards(ledger, cfg); err != nil {
		t.Fatalf("guard invariant violated under concurrency: %v", err)
	}
	st := eng.Stats()
	if st.MaxActiveDrains > cfg.MaxConcurrentDrains {
		t.Fatalf("MaxActiveDrains %d exceeds cap %d", st.MaxActiveDrains, cfg.MaxConcurrentDrains)
	}
	if st.MaxCabinetWindow > cfg.CabinetCap {
		t.Fatalf("MaxCabinetWindow %d exceeds cap %d", st.MaxCabinetWindow, cfg.CabinetCap)
	}
	// Ledger ids are a gapless total order regardless of interleaving.
	for i, tk := range ledger {
		if tk.ID != int64(i+1) {
			t.Fatalf("ticket %d has id %d; ledger not densely ordered", i, tk.ID)
		}
	}
}
