// Package faults defines the fault and failure taxonomy of the study:
// the concrete fault/event types observed in the logs (Table III of the
// paper), the root-cause categories used in the evaluation figures
// (Figs 15, 16; §III-F), the coarse layer classes (hardware / software /
// application / filesystem / environment / unknown), and the fail-stop
// vs fail-slow failure modes.
//
// The taxonomy is deliberately shared between the simulator (which emits
// faults) and the diagnosis pipeline (which infers causes), but the
// pipeline never reads simulator ground truth — it re-derives causes from
// parsed log text, and integration tests compare the two.
package faults

import "fmt"

// Class is the coarse system layer a fault belongs to.
type Class int

const (
	// ClassUnknown marks faults whose layer cannot be determined (the
	// paper's Observation 9 cases).
	ClassUnknown Class = iota
	// ClassHardware covers MCEs, memory/CPU/disk/BIOS/GPU faults.
	ClassHardware
	// ClassSoftware covers kernel, driver and firmware bugs.
	ClassSoftware
	// ClassApplication covers faults originating in user jobs.
	ClassApplication
	// ClassFilesystem covers Lustre/DVS and other I/O stack faults.
	ClassFilesystem
	// ClassEnvironment covers blade/cabinet sensor and power faults.
	ClassEnvironment
	// ClassNetwork covers interconnect link errors.
	ClassNetwork
)

var classNames = [...]string{
	"unknown", "hardware", "software", "application",
	"filesystem", "environment", "network",
}

// String returns the lower-case class name.
func (c Class) String() string {
	if c >= 0 && int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ParseClass inverts String.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return ClassUnknown, fmt.Errorf("faults: unknown class %q", s)
}

// Type is a concrete fault/event type. Each type carries a stable log
// category string (used as the Category of emitted/parsed records), a
// class, and flags describing where it appears and what it means.
type Type int

const (
	// TypeNone is the zero Type.
	TypeNone Type = iota

	// Hardware faults (internal logs).

	// MCE is a hardware machine check exception logged when the error
	// count crosses the platform threshold (page/cache/DIMM).
	MCE
	// CorrectableMemErr is a corrected DIMM error.
	CorrectableMemErr
	// UncorrectableMemErr is an uncorrected memory error.
	UncorrectableMemErr
	// CPUCorruption is a processor state corruption.
	CPUCorruption
	// BIOSError is a BIOS-reported error.
	BIOSError
	// DiskError is a local disk error.
	DiskError
	// GPUError is a GPU fault (S5 only in the study).
	GPUError

	// Software faults (internal logs).

	// KernelBug is a critical kernel bug such as an invalid opcode.
	KernelBug
	// KernelOops is a kernel oops with a call trace.
	KernelOops
	// KernelPanic is a fatal kernel panic.
	KernelPanic
	// CPUStall is a detected CPU soft lockup/stall.
	CPUStall
	// DriverBug is a device-driver fault.
	DriverBug
	// FirmwareBug is a firmware fault surfacing in the kernel log.
	FirmwareBug
	// HungTask is a hung-task timeout (blocked > 120 s) with call trace.
	HungTask
	// PageAllocFailure is a failed page allocation.
	PageAllocFailure
	// SegFault is an application segmentation fault.
	SegFault
	// SoftwareTrap is a trapped exception such as invalid opcode in user
	// context that the kernel survives.
	SoftwareTrap

	// Filesystem faults (internal logs).

	// LustreBug is a Lustre software bug (e.g. thread race).
	LustreBug
	// LustreIOError is a Lustre I/O error (deadlocks, page-fault locks).
	LustreIOError
	// InodeError is a disk/job-induced inode inconsistency.
	InodeError
	// PageFaultLock is a page-fault lock stall signalling I/O problems.
	PageFaultLock
	// DVSError is a Cray DVS (data virtualisation service) fault.
	DVSError

	// Application events (internal + scheduler logs).

	// OOMKiller is an out-of-memory kill.
	OOMKiller
	// AppExit is an abnormal application exit detected by NHC.
	AppExit
	// UserKilled is a process killed at user request.
	UserKilled
	// WallTimeExceeded is a scheduler wall-limit kill.
	WallTimeExceeded
	// JobCanceled is an interactive job cancellation.
	JobCanceled
	// MemOverallocation is a scheduler memory overallocation beyond the
	// node's capacity (the Fig 17 scenario).
	MemOverallocation

	// Environmental / HSS faults (external logs).

	// NHF is a node heartbeat fault (ec_node_heartbeat_fault).
	NHF
	// NVF is a node voltage fault (ec_node_voltage_fault).
	NVF
	// BCHF is a blade-controller heartbeat fault.
	BCHF
	// HeartbeatStop is ec_heartbeat_stop: the HSS declares the heartbeat
	// gone (node suspected dead).
	HeartbeatStop
	// ECLinkFailed is ec_l0_failed / link failure at the blade
	// controller.
	ECLinkFailed
	// SensorReadFailed is a failed sensor read on a controller.
	SensorReadFailed
	// CabinetPowerFault is a cabinet power or micro-controller fault.
	CabinetPowerFault
	// CommFault is a controller communication fault.
	CommFault
	// ModuleHealthFault is a module health or RPM fault.
	ModuleHealthFault
	// ECBFault is an electronic circuit breaker trip.
	ECBFault
	// SEDCTemp is a temperature threshold SEDC warning.
	SEDCTemp
	// SEDCVoltage is a voltage threshold SEDC warning.
	SEDCVoltage
	// SEDCAirVelocity is an air-velocity SEDC warning.
	SEDCAirVelocity
	// SEDCFanSpeed is a fan-speed/air-flow ec_environment warning.
	SEDCFanSpeed
	// CabinetSensorCheck is a cabinet sensor check warning.
	CabinetSensorCheck
	// ECHwError is ec_hw_errors: an external hardware-malfunction alert,
	// the paper's principal early indicator for fail-slow failures.
	ECHwError
	// LinkError is an interconnect (Aries/Gemini) link error.
	LinkError

	// Unknown-cause patterns (Observation 9).

	// BIOSClassError is the opaque "type:2; severity:80; class:3;
	// subclass:D; operation:2" pattern, common in benign periods too.
	BIOSClassError
	// L0SysdMCE is the blade-controller-reported memory MCE pattern with
	// insufficient context.
	L0SysdMCE
	// SilentShutdown is a shutdown with no prior anomaly symptom
	// (suspected operator action or radiation-induced).
	SilentShutdown

	// NodeShutdown is the terminal internal event of a failed node.
	NodeShutdown
	// NodeHealthCheck marks NHC activity (suspect mode, admindown).
	NodeHealthCheck

	numTypes
)

// info carries per-Type metadata.
type info struct {
	name     string // enum-ish name for debugging
	category string // stable log category tag
	class    Class
	external bool // appears in the external (HSS) log family
	benign   bool // never by itself a failure indication
}

var typeInfos = map[Type]info{
	MCE:                 {"MCE", "mce", ClassHardware, false, false},
	CorrectableMemErr:   {"CorrectableMemErr", "mem_err_correctable", ClassHardware, false, true},
	UncorrectableMemErr: {"UncorrectableMemErr", "mem_err_uncorrectable", ClassHardware, false, false},
	CPUCorruption:       {"CPUCorruption", "cpu_corruption", ClassHardware, false, false},
	BIOSError:           {"BIOSError", "bios_error", ClassHardware, false, false},
	DiskError:           {"DiskError", "disk_error", ClassHardware, false, false},
	GPUError:            {"GPUError", "gpu_error", ClassHardware, false, false},

	KernelBug:        {"KernelBug", "kernel_bug", ClassSoftware, false, false},
	KernelOops:       {"KernelOops", "kernel_oops", ClassSoftware, false, false},
	KernelPanic:      {"KernelPanic", "kernel_panic", ClassSoftware, false, false},
	CPUStall:         {"CPUStall", "cpu_stall", ClassSoftware, false, false},
	DriverBug:        {"DriverBug", "driver_bug", ClassSoftware, false, false},
	FirmwareBug:      {"FirmwareBug", "firmware_bug", ClassSoftware, false, false},
	HungTask:         {"HungTask", "hung_task_timeout", ClassSoftware, false, true},
	PageAllocFailure: {"PageAllocFailure", "page_alloc_failure", ClassSoftware, false, false},
	SegFault:         {"SegFault", "segfault", ClassApplication, false, false},
	SoftwareTrap:     {"SoftwareTrap", "software_trap", ClassSoftware, false, true},

	LustreBug:     {"LustreBug", "lustre_bug", ClassFilesystem, false, false},
	LustreIOError: {"LustreIOError", "lustre_io_error", ClassFilesystem, false, true},
	InodeError:    {"InodeError", "inode_error", ClassFilesystem, false, false},
	PageFaultLock: {"PageFaultLock", "page_fault_lock", ClassFilesystem, false, true},
	DVSError:      {"DVSError", "dvs_error", ClassFilesystem, false, false},

	OOMKiller:         {"OOMKiller", "oom_killer", ClassApplication, false, false},
	AppExit:           {"AppExit", "app_exit_abnormal", ClassApplication, false, false},
	UserKilled:        {"UserKilled", "user_killed", ClassApplication, false, true},
	WallTimeExceeded:  {"WallTimeExceeded", "walltime_exceeded", ClassApplication, false, true},
	JobCanceled:       {"JobCanceled", "job_canceled", ClassApplication, false, true},
	MemOverallocation: {"MemOverallocation", "mem_overallocation", ClassApplication, false, false},

	NHF:                {"NHF", "ec_node_heartbeat_fault", ClassEnvironment, true, false},
	NVF:                {"NVF", "ec_node_voltage_fault", ClassEnvironment, true, false},
	BCHF:               {"BCHF", "ec_bc_heartbeat_fault", ClassEnvironment, true, false},
	HeartbeatStop:      {"HeartbeatStop", "ec_heartbeat_stop", ClassEnvironment, true, false},
	ECLinkFailed:       {"ECLinkFailed", "ec_l0_failed", ClassEnvironment, true, false},
	SensorReadFailed:   {"SensorReadFailed", "sensor_read_failed", ClassEnvironment, true, true},
	CabinetPowerFault:  {"CabinetPowerFault", "cabinet_power_fault", ClassEnvironment, true, false},
	CommFault:          {"CommFault", "comm_fault", ClassEnvironment, true, true},
	ModuleHealthFault:  {"ModuleHealthFault", "module_health_fault", ClassEnvironment, true, true},
	ECBFault:           {"ECBFault", "ecb_fault", ClassEnvironment, true, false},
	SEDCTemp:           {"SEDCTemp", "sedc_temp_warning", ClassEnvironment, true, true},
	SEDCVoltage:        {"SEDCVoltage", "sedc_voltage_warning", ClassEnvironment, true, true},
	SEDCAirVelocity:    {"SEDCAirVelocity", "sedc_air_velocity_warning", ClassEnvironment, true, true},
	SEDCFanSpeed:       {"SEDCFanSpeed", "ec_environment_warning", ClassEnvironment, true, true},
	CabinetSensorCheck: {"CabinetSensorCheck", "cabinet_sensor_check", ClassEnvironment, true, true},
	ECHwError:          {"ECHwError", "ec_hw_errors", ClassHardware, true, false},
	LinkError:          {"LinkError", "link_error", ClassNetwork, true, true},

	BIOSClassError: {"BIOSClassError", "bios_class_error", ClassUnknown, false, true},
	L0SysdMCE:      {"L0SysdMCE", "l0_sysd_mce", ClassUnknown, true, false},
	SilentShutdown: {"SilentShutdown", "silent_shutdown", ClassUnknown, false, false},

	NodeShutdown:    {"NodeShutdown", "node_shutdown", ClassSoftware, false, false},
	NodeHealthCheck: {"NodeHealthCheck", "nhc", ClassApplication, false, true},
}

// byCategory inverts the category tags; built at init.
var byCategory = func() map[string]Type {
	m := make(map[string]Type, len(typeInfos))
	for t, inf := range typeInfos {
		if prev, dup := m[inf.category]; dup {
			panic(fmt.Sprintf("faults: duplicate category %q for %v and %v", inf.category, prev, t))
		}
		m[inf.category] = t
	}
	return m
}()

// String returns the Go-style type name.
func (t Type) String() string {
	if inf, ok := typeInfos[t]; ok {
		return inf.name
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Category returns the stable log category tag emitted by the generators
// and matched by the parsers.
func (t Type) Category() string {
	if inf, ok := typeInfos[t]; ok {
		return inf.category
	}
	return ""
}

// Class returns the fault's layer.
func (t Type) Class() Class {
	if inf, ok := typeInfos[t]; ok {
		return inf.class
	}
	return ClassUnknown
}

// External reports whether the type appears in the HSS/ERD (external)
// log family.
func (t Type) External() bool {
	if inf, ok := typeInfos[t]; ok {
		return inf.external
	}
	return false
}

// Benign reports whether the type, on its own, never indicates a node
// failure (Observation 3/4 faults).
func (t Type) Benign() bool {
	if inf, ok := typeInfos[t]; ok {
		return inf.benign
	}
	return false
}

// TypeByCategory maps a log category tag back to its Type.
func TypeByCategory(cat string) (Type, bool) {
	t, ok := byCategory[cat]
	return t, ok
}

// AllTypes returns every defined Type, in declaration order.
func AllTypes() []Type {
	out := make([]Type, 0, len(typeInfos))
	for t := Type(1); t < numTypes; t++ {
		if _, ok := typeInfos[t]; ok {
			out = append(out, t)
		}
	}
	return out
}

// SEDCWarningTypes returns the SEDC sensor warning types (column 2 of
// Table III).
func SEDCWarningTypes() []Type {
	return []Type{SEDCTemp, SEDCVoltage, SEDCAirVelocity, SEDCFanSpeed, ECBFault, CabinetSensorCheck}
}

// HealthFaultTypes returns the controller health fault types (column 1
// of Table III).
func HealthFaultTypes() []Type {
	return []Type{NHF, NVF, BCHF, HeartbeatStop, ECLinkFailed, SensorReadFailed,
		CabinetPowerFault, CommFault, ModuleHealthFault}
}
