package faults

import "fmt"

// Cause is a root-cause category for a node failure — the buckets of the
// paper's evaluation figures (Fig 15 for S5, Fig 16 for S2, the §III-F
// S3 breakdown) and of Observations 6–9.
type Cause int

const (
	// CauseUnknown covers the Observation 9 patterns: BIOS class errors,
	// L0_sysd_mce, silent shutdowns, suspected operator error.
	CauseUnknown Cause = iota
	// CauseMCE is a hardware machine check exception failure.
	CauseMCE
	// CauseCPUCorruption is processor corruption leading to panic.
	CauseCPUCorruption
	// CauseHardwareOther covers BIOS/disk/GPU hardware failures.
	CauseHardwareOther
	// CauseKernelBug is a critical kernel bug (e.g. invalid opcode).
	CauseKernelBug
	// CauseCPUStall covers CPU stalls plus driver and firmware bugs —
	// the "Others" slice of Fig 16.
	CauseCPUStall
	// CauseFilesystemBug is a file-system (Lustre/DVS) bug, frequently
	// application-prompted.
	CauseFilesystemBug
	// CauseOOM is memory resource exhaustion (oom-killer, allocation
	// failures, scheduler overallocation).
	CauseOOM
	// CauseAppExit is an abnormal application exit failing NHC tests and
	// turning the node admindown.
	CauseAppExit
	// CauseSegFault covers application software errors (segmentation
	// faults, page allocation faults) — the "software errors" slice of
	// Fig 15.
	CauseSegFault
	// CauseHungTask is a hung-task timeout (observed on S5 only; does
	// not fail nodes there).
	CauseHungTask

	numCauses
)

var causeNames = [...]string{
	"unknown", "mce", "cpu-corruption", "hardware-other", "kernel-bug",
	"cpu-stall", "filesystem-bug", "oom", "app-exit", "segfault",
	"hung-task",
}

// String returns the kebab-case cause name.
func (c Cause) String() string {
	if c >= 0 && int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// ParseCause inverts String.
func ParseCause(s string) (Cause, error) {
	for i, n := range causeNames {
		if n == s {
			return Cause(i), nil
		}
	}
	return CauseUnknown, fmt.Errorf("faults: unknown cause %q", s)
}

// AllCauses returns every cause in declaration order.
func AllCauses() []Cause {
	out := make([]Cause, 0, int(numCauses))
	for c := Cause(0); c < numCauses; c++ {
		out = append(out, c)
	}
	return out
}

// Class maps the cause to the coarse layer used by the §III-F S3
// breakdown (hardware 37 %, software 32 %, application 31 %).
func (c Cause) Class() Class {
	switch c {
	case CauseMCE, CauseCPUCorruption, CauseHardwareOther:
		return ClassHardware
	case CauseKernelBug, CauseCPUStall, CauseHungTask:
		return ClassSoftware
	case CauseFilesystemBug:
		return ClassFilesystem
	case CauseOOM, CauseAppExit, CauseSegFault:
		return ClassApplication
	default:
		return ClassUnknown
	}
}

// ApplicationTriggered reports whether the paper attributes the cause's
// origin to the running application even when the failure manifests in
// the OS or file system (Observations 6–7: FS bugs, OOM and abnormal
// app exits propagate from jobs).
func (c Cause) ApplicationTriggered() bool {
	switch c {
	case CauseFilesystemBug, CauseOOM, CauseAppExit, CauseSegFault, CauseHungTask:
		return true
	}
	return false
}

// HasExternalIndicators reports whether failures of this cause tend to
// show early external (HSS) indicators — the fail-slow population whose
// lead times the paper enhances ~5×. Application-triggered failures lack
// external precursors (Observation 5).
func (c Cause) HasExternalIndicators() bool {
	switch c {
	case CauseMCE, CauseCPUCorruption, CauseHardwareOther:
		return true
	case CauseFilesystemBug:
		// Only the non-application-prompted minority; the simulator
		// decides per-failure. Treat the category as "possible".
		return true
	}
	return false
}

// Mode is the failure manifestation dynamics.
type Mode int

const (
	// FailStop failures manifest abruptly with no meaningful precursor
	// window.
	FailStop Mode = iota
	// FailSlow failures degrade over time, leaving early indicators —
	// the behaviour of Gunawi et al.'s fail-slow hardware that the paper
	// exploits for lead-time enhancement.
	FailSlow
)

// String returns "fail-stop" or "fail-slow".
func (m Mode) String() string {
	if m == FailSlow {
		return "fail-slow"
	}
	return "fail-stop"
}
