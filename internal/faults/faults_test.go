package faults

import (
	"testing"
)

func TestCategoryUniqueAndInvertible(t *testing.T) {
	seen := map[string]Type{}
	for _, typ := range AllTypes() {
		cat := typ.Category()
		if cat == "" {
			t.Errorf("%v has empty category", typ)
			continue
		}
		if prev, dup := seen[cat]; dup {
			t.Errorf("category %q shared by %v and %v", cat, prev, typ)
		}
		seen[cat] = typ
		back, ok := TypeByCategory(cat)
		if !ok || back != typ {
			t.Errorf("TypeByCategory(%q) = %v, %v", cat, back, ok)
		}
	}
}

func TestTypeByCategoryUnknown(t *testing.T) {
	if _, ok := TypeByCategory("no_such_category"); ok {
		t.Error("unknown category should not resolve")
	}
}

func TestExternalTypesAreHSS(t *testing.T) {
	// All health faults and SEDC warnings are external.
	for _, typ := range append(HealthFaultTypes(), SEDCWarningTypes()...) {
		if !typ.External() {
			t.Errorf("%v should be external", typ)
		}
	}
	// Core internal failure signals are not external.
	for _, typ := range []Type{MCE, KernelOops, KernelPanic, LustreBug, OOMKiller, NodeShutdown} {
		if typ.External() {
			t.Errorf("%v should be internal", typ)
		}
	}
	// ec_hw_errors is the external hardware early indicator.
	if !ECHwError.External() || ECHwError.Class() != ClassHardware {
		t.Error("ECHwError should be an external hardware alert")
	}
}

func TestBenignTypes(t *testing.T) {
	// Observation 3: SEDC threshold warnings are benign.
	for _, typ := range []Type{SEDCTemp, SEDCVoltage, SEDCAirVelocity, SEDCFanSpeed, CorrectableMemErr, LustreIOError, PageFaultLock} {
		if !typ.Benign() {
			t.Errorf("%v should be benign", typ)
		}
	}
	for _, typ := range []Type{KernelPanic, NodeShutdown, MCE, NVF, NHF} {
		if typ.Benign() {
			t.Errorf("%v should not be benign", typ)
		}
	}
}

func TestClassNames(t *testing.T) {
	for c := ClassUnknown; c <= ClassNetwork; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("class round trip %v: got %v, %v", c, got, err)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass should reject unknown")
	}
	if Class(99).String() == "" {
		t.Error("unknown class should stringify")
	}
}

func TestCauseRoundTrip(t *testing.T) {
	for _, c := range AllCauses() {
		got, err := ParseCause(c.String())
		if err != nil || got != c {
			t.Errorf("cause round trip %v: got %v, %v", c, got, err)
		}
	}
	if _, err := ParseCause("bogus"); err == nil {
		t.Error("ParseCause should reject unknown")
	}
}

func TestCauseClasses(t *testing.T) {
	cases := map[Cause]Class{
		CauseMCE:           ClassHardware,
		CauseCPUCorruption: ClassHardware,
		CauseHardwareOther: ClassHardware,
		CauseKernelBug:     ClassSoftware,
		CauseCPUStall:      ClassSoftware,
		CauseHungTask:      ClassSoftware,
		CauseFilesystemBug: ClassFilesystem,
		CauseOOM:           ClassApplication,
		CauseAppExit:       ClassApplication,
		CauseSegFault:      ClassApplication,
		CauseUnknown:       ClassUnknown,
	}
	for c, want := range cases {
		if got := c.Class(); got != want {
			t.Errorf("%v.Class() = %v, want %v", c, got, want)
		}
	}
}

func TestApplicationTriggered(t *testing.T) {
	// Observation 6/7: FS bugs, OOM, app exits propagate from jobs.
	for _, c := range []Cause{CauseFilesystemBug, CauseOOM, CauseAppExit, CauseSegFault} {
		if !c.ApplicationTriggered() {
			t.Errorf("%v should be application triggered", c)
		}
	}
	for _, c := range []Cause{CauseMCE, CauseCPUCorruption, CauseKernelBug, CauseUnknown} {
		if c.ApplicationTriggered() {
			t.Errorf("%v should not be application triggered", c)
		}
	}
}

func TestExternalIndicatorCauses(t *testing.T) {
	// Observation 5: hardware-caused failures have external indicators;
	// pure application failures do not.
	for _, c := range []Cause{CauseMCE, CauseCPUCorruption, CauseHardwareOther} {
		if !c.HasExternalIndicators() {
			t.Errorf("%v should have external indicators", c)
		}
	}
	for _, c := range []Cause{CauseAppExit, CauseOOM, CauseSegFault, CauseHungTask} {
		if c.HasExternalIndicators() {
			t.Errorf("%v should lack external indicators", c)
		}
	}
}

func TestModeString(t *testing.T) {
	if FailStop.String() != "fail-stop" || FailSlow.String() != "fail-slow" {
		t.Error("mode names wrong")
	}
}

func TestTableIIIEnumerations(t *testing.T) {
	if len(SEDCWarningTypes()) < 5 {
		t.Error("Table III column 2 underspecified")
	}
	if len(HealthFaultTypes()) < 7 {
		t.Error("Table III column 1 underspecified")
	}
}
