package workload

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/topology"
)

// placeRef is the original full-sort implementation place's bounded-heap
// selection must reproduce exactly (same start, same allocation, same
// freeAt evolution).
func placeRef(s *scheduler, submit time.Time, n int, runtime time.Duration) (time.Time, []cname.Name, bool) {
	if n > len(s.freeAt) {
		n = len(s.freeAt)
	}
	type refCand struct {
		nid  int
		free time.Time
	}
	cands := make([]refCand, len(s.freeAt))
	for i, f := range s.freeAt {
		cands[i] = refCand{i, f}
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].free.Equal(cands[j].free) {
			return cands[i].free.Before(cands[j].free)
		}
		return cands[i].nid < cands[j].nid
	})
	chosen := cands[:n]
	start := submit
	for _, c := range chosen {
		if c.free.After(start) {
			start = c.free
		}
	}
	if start.Sub(submit) > MaxQueueWait {
		return time.Time{}, nil, false
	}
	nodes := make([]cname.Name, n)
	for i, c := range chosen {
		nodes[i] = s.cluster.Node(c.nid)
		s.freeAt[c.nid] = start.Add(runtime)
	}
	sort.Slice(nodes, func(i, j int) bool { return cname.Compare(nodes[i], nodes[j]) < 0 })
	return start, nodes, true
}

// TestNIDOrderMatchesCompare pins the invariant place's final sort
// relies on: enumerating node-level names in NID order is exactly
// cname.Compare order.
func TestNIDOrderMatchesCompare(t *testing.T) {
	for _, cols := range []int{1, 2, 3} {
		prev := cname.Name{}
		for nid := 0; nid < cols*4*cname.NodesPerCabinet; nid++ {
			n := cname.FromNID(nid, cols)
			if back := n.NID(cols); back != nid {
				t.Fatalf("cols=%d: NID(FromNID(%d)) = %d", cols, nid, back)
			}
			if nid > 0 && cname.Compare(prev, n) >= 0 {
				t.Fatalf("cols=%d: Compare(%v, %v) >= 0 but NIDs ascend", cols, prev, n)
			}
			prev = n
		}
	}
}

// placeStep runs one submission through both schedulers and asserts
// identical outcomes and identical freeAt evolution.
func placeStep(t *testing.T, job int, a, b *scheduler, submit time.Time, n int, rt time.Duration) {
	t.Helper()
	gotStart, gotNodes, gotOK := a.place(submit, n, rt)
	wantStart, wantNodes, wantOK := placeRef(b, submit, n, rt)
	if gotOK != wantOK {
		t.Fatalf("job %d: ok=%v, want %v", job, gotOK, wantOK)
	}
	if !gotOK {
		return
	}
	if !gotStart.Equal(wantStart) {
		t.Fatalf("job %d: start %v, want %v", job, gotStart, wantStart)
	}
	if len(gotNodes) != len(wantNodes) {
		t.Fatalf("job %d: %d nodes, want %d", job, len(gotNodes), len(wantNodes))
	}
	for i := range gotNodes {
		if gotNodes[i] != wantNodes[i] {
			t.Fatalf("job %d node %d: %v, want %v", job, i, gotNodes[i], wantNodes[i])
		}
	}
	for i := range a.freeAt {
		if !a.freeAt[i].Equal(b.freeAt[i]) {
			t.Fatalf("job %d: freeAt[%d] diverged: %v vs %v", job, i, a.freeAt[i], b.freeAt[i])
		}
	}
}

// TestPlaceEquivalence drives two identical schedulers through a random
// job stream, one with the bucketed availability heap and one with the
// original full-sort reference, asserting identical placements
// throughout.
func TestPlaceEquivalence(t *testing.T) {
	cluster := topology.New(topology.Spec{ID: "T", Nodes: 96, CabinetCols: 1})
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	a := newScheduler(cluster, start)
	b := newScheduler(cluster, start)
	rng := rand.New(rand.NewSource(33))
	submit := start
	for job := 0; job < 400; job++ {
		submit = submit.Add(time.Duration(rng.Intn(240)) * time.Second)
		n := 1 + rng.Intn(24)
		if rng.Intn(20) == 0 {
			n = 90 + rng.Intn(10) // occasionally demand nearly (or over) the fleet
		}
		rt := time.Duration(1+rng.Intn(7200)) * time.Second
		placeStep(t, job, a, b, submit, n, rt)
	}
}

// TestPlaceEquivalenceTies uses coarse submit times and a tiny runtime
// alphabet so distinct jobs free their allocations at identical
// instants, forcing the same-free bucket merge path: a correct prefix
// under the nid tiebreak must interleave nodes from different
// allocations that end at the same time.
func TestPlaceEquivalenceTies(t *testing.T) {
	cluster := topology.New(topology.Spec{ID: "T", Nodes: 96, CabinetCols: 1})
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	a := newScheduler(cluster, start)
	b := newScheduler(cluster, start)
	rng := rand.New(rand.NewSource(77))
	submit := start
	for job := 0; job < 600; job++ {
		if rng.Intn(3) > 0 { // often several submissions at the same instant
			submit = submit.Add(time.Duration(rng.Intn(3)) * time.Hour)
		}
		n := 1 + rng.Intn(12)
		rt := time.Duration(1+rng.Intn(3)) * time.Hour
		placeStep(t, job, a, b, submit, n, rt)
	}
}
