package workload

import (
	"sort"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/topology"
)

// Scheduler simulation. The generator produces a submission stream;
// this file places it the way a space-sharing scheduler does: each job
// waits until enough nodes are free, allocations never overlap, and
// preference goes to nodes that free earliest (FCFS). Jobs whose queue
// wait would exceed MaxQueueWait are dropped, modelling submission
// back-pressure when the machine saturates.

// MaxQueueWait bounds how long a simulated job may sit in the queue
// before the submission is abandoned.
const MaxQueueWait = 12 * time.Hour

// bucket is one availability-heap entry: the group of nodes that free
// at the same instant. An allocation's nodes all free together when the
// job ends, so the heap holds one bucket per live allocation (plus the
// epoch bucket), not one entry per node — placement work scales with
// allocations, not fleet size.
type bucket struct {
	// free is the shared free time as UnixNano (absolute instants, no
	// monotonic clock, so int64 order equals time.Time order).
	free int64
	// nids is the group, ascending.
	nids []int
}

// bucketLess orders the heap by (free, smallest nid).
func bucketLess(a, b bucket) bool {
	if a.free != b.free {
		return a.free < b.free
	}
	return a.nids[0] < b.nids[0]
}

// scheduler tracks per-node availability.
type scheduler struct {
	cluster *topology.Cluster
	// freeAt[i] is when node nid i next becomes free.
	freeAt []time.Time
	// avail is a min-heap of availability buckets. Every nid is in
	// exactly one bucket at all times (outside a place call).
	avail []bucket
	// popped holds the buckets taken off the heap by the current place
	// call, in ascending free order.
	popped []bucket
}

func newScheduler(cluster *topology.Cluster, epoch time.Time) *scheduler {
	s := &scheduler{cluster: cluster, freeAt: make([]time.Time, cluster.NumNodes())}
	all := make([]int, cluster.NumNodes())
	for i := range s.freeAt {
		s.freeAt[i] = epoch
		all[i] = i
	}
	s.avail = []bucket{{epoch.UnixNano(), all}}
	return s
}

// push inserts a bucket into the availability heap.
func (s *scheduler) push(b bucket) {
	s.avail = append(s.avail, b)
	h := s.avail
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !bucketLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// pop removes the earliest-free bucket from the availability heap.
func (s *scheduler) pop() bucket {
	h := s.avail
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = bucket{} // drop the slice reference
	h = h[:last]
	s.avail = h
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && bucketLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && bucketLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// mergeBuckets merges two same-free buckets preserving ascending nids.
func mergeBuckets(a, b bucket) bucket {
	m := make([]int, 0, len(a.nids)+len(b.nids))
	i, j := 0, 0
	for i < len(a.nids) && j < len(b.nids) {
		if a.nids[i] < b.nids[j] {
			m = append(m, a.nids[i])
			i++
		} else {
			m = append(m, b.nids[j])
			j++
		}
	}
	m = append(m, a.nids[i:]...)
	m = append(m, b.nids[j:]...)
	return bucket{a.free, m}
}

// place selects n nodes for a job submitted at submit with the given
// runtime. It returns the start time and the allocation, or ok=false
// when the queue wait would exceed MaxQueueWait. Nodes freeing earliest
// win, with NID order as the tiebreak (which keeps allocations roughly
// contiguous on an idle machine).
//
// Selection pops whole availability buckets until n nodes are covered,
// taking an nid-order prefix of the last one. Buckets sharing a free
// time are merged before a prefix is taken so the nid tiebreak stays
// global. Abandoned submissions push their buckets back unchanged. The
// chosen NIDs sort the allocation directly: NID order equals
// cname.Compare order for node-level names (TestNIDOrderMatchesCompare
// pins this invariant).
func (s *scheduler) place(submit time.Time, n int, runtime time.Duration) (time.Time, []cname.Name, bool) {
	if n > len(s.freeAt) {
		n = len(s.freeAt)
	}
	popped := s.popped[:0]
	count := 0
	for count < n {
		b := s.pop()
		for len(s.avail) > 0 && s.avail[0].free == b.free {
			b = mergeBuckets(b, s.pop())
		}
		popped = append(popped, b)
		count += len(b.nids)
	}
	s.popped = popped
	start := submit
	if len(popped) > 0 {
		// Buckets pop in ascending free order; the last one holds the
		// latest-freeing chosen nodes.
		if f := s.freeAt[popped[len(popped)-1].nids[0]]; f.After(start) {
			start = f
		}
	}
	if start.Sub(submit) > MaxQueueWait {
		for _, b := range popped {
			s.push(b)
		}
		return time.Time{}, nil, false
	}
	nids := make([]int, 0, n)
	for _, b := range popped {
		take := len(b.nids)
		if take > n-len(nids) {
			take = n - len(nids)
		}
		nids = append(nids, b.nids[:take]...)
		if take < len(b.nids) {
			s.push(bucket{b.free, b.nids[take:]})
		}
	}
	sort.Ints(nids)
	nodes := make([]cname.Name, len(nids))
	end := start.Add(runtime)
	endNano := end.UnixNano()
	for i, nid := range nids {
		nodes[i] = s.cluster.Node(nid)
		s.freeAt[nid] = end
	}
	if len(nids) > 0 {
		s.push(bucket{endNano, nids})
	}
	return start, nodes, true
}

// utilizationAt returns the fraction of nodes busy at t (for tests and
// capacity diagnostics).
func (s *scheduler) utilizationAt(t time.Time) float64 {
	busy := 0
	for _, f := range s.freeAt {
		if f.After(t) {
			busy++
		}
	}
	return float64(busy) / float64(len(s.freeAt))
}
