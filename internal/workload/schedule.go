package workload

import (
	"sort"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/topology"
)

// Scheduler simulation. The generator produces a submission stream;
// this file places it the way a space-sharing scheduler does: each job
// waits until enough nodes are free, allocations never overlap, and
// preference goes to nodes that free earliest (FCFS). Jobs whose queue
// wait would exceed MaxQueueWait are dropped, modelling submission
// back-pressure when the machine saturates.

// MaxQueueWait bounds how long a simulated job may sit in the queue
// before the submission is abandoned.
const MaxQueueWait = 12 * time.Hour

// scheduler tracks per-node availability.
type scheduler struct {
	cluster *topology.Cluster
	// freeAt[i] is when node nid i next becomes free.
	freeAt []time.Time
}

func newScheduler(cluster *topology.Cluster, epoch time.Time) *scheduler {
	s := &scheduler{cluster: cluster, freeAt: make([]time.Time, cluster.NumNodes())}
	for i := range s.freeAt {
		s.freeAt[i] = epoch
	}
	return s
}

// place selects n nodes for a job submitted at submit with the given
// runtime. It returns the start time and the allocation, or ok=false
// when the queue wait would exceed MaxQueueWait. Nodes freeing earliest
// win, with NID order as the tiebreak (which keeps allocations roughly
// contiguous on an idle machine).
func (s *scheduler) place(submit time.Time, n int, runtime time.Duration) (time.Time, []cname.Name, bool) {
	if n > len(s.freeAt) {
		n = len(s.freeAt)
	}
	type cand struct {
		nid  int
		free time.Time
	}
	cands := make([]cand, len(s.freeAt))
	for i, f := range s.freeAt {
		cands[i] = cand{i, f}
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].free.Equal(cands[j].free) {
			return cands[i].free.Before(cands[j].free)
		}
		return cands[i].nid < cands[j].nid
	})
	chosen := cands[:n]
	start := submit
	for _, c := range chosen {
		if c.free.After(start) {
			start = c.free
		}
	}
	if start.Sub(submit) > MaxQueueWait {
		return time.Time{}, nil, false
	}
	nodes := make([]cname.Name, n)
	for i, c := range chosen {
		nodes[i] = s.cluster.Node(c.nid)
		s.freeAt[c.nid] = start.Add(runtime)
	}
	sort.Slice(nodes, func(i, j int) bool { return cname.Compare(nodes[i], nodes[j]) < 0 })
	return start, nodes, true
}

// utilizationAt returns the fraction of nodes busy at t (for tests and
// capacity diagnostics).
func (s *scheduler) utilizationAt(t time.Time) float64 {
	busy := 0
	for _, f := range s.freeAt {
		if f.After(t) {
			busy++
		}
	}
	return float64(busy) / float64(len(s.freeAt))
}
