// Package workload models the job mix on the studied systems: job
// arrival, node allocation, runtimes, exit dispositions, and the
// scheduler-log events (Slurm or Torque) they produce.
//
// The paper's application analysis rests on a handful of job-level
// behaviours this package reproduces:
//
//   - Most jobs succeed: 90.43–95.71 % complete with exit code 0, only
//     0.06–6.02 % finish with non-zero exits (Fig 12), and of those many
//     are configuration errors (wall-time/memory-limit kills, user
//     kills) rather than node problems.
//   - Jobs span multiple nodes, so one buggy application takes down
//     spatially distant nodes at nearly the same instant (Observation 8).
//   - Schedulers can overallocate memory relative to node capacity; a
//     subset of the overallocated nodes then fail (Fig 17).
package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/rng"
	"hpcfail/internal/topology"
)

// State is a job's final disposition.
type State int

const (
	// StateCompleted: exit code 0.
	StateCompleted State = iota
	// StateFailed: non-zero exit from an application error.
	StateFailed
	// StateCancelled: user or interactive-session cancellation.
	StateCancelled
	// StateTimeout: killed at the wall-time limit.
	StateTimeout
	// StateNodeFail: aborted because an allocated node failed.
	StateNodeFail
	// StateOOM: killed for exceeding its memory limit.
	StateOOM
)

var stateNames = [...]string{
	"COMPLETED", "FAILED", "CANCELLED", "TIMEOUT", "NODE_FAIL", "OUT_OF_MEMORY",
}

// String returns the Slurm-style state label.
func (s State) String() string {
	if s >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ParseState inverts String.
func ParseState(v string) (State, error) {
	for i, n := range stateNames {
		if n == v {
			return State(i), nil
		}
	}
	return StateCompleted, fmt.Errorf("workload: unknown job state %q", v)
}

// Successful reports whether the disposition is a clean completion.
func (s State) Successful() bool { return s == StateCompleted }

// ConfigError reports whether the disposition is a user/configuration
// problem rather than a system fault (the Fig 12 "configuration errors"
// slice: wall-time, memory limit, user kill).
func (s State) ConfigError() bool {
	return s == StateCancelled || s == StateTimeout || s == StateOOM
}

// Job is one scheduled job.
type Job struct {
	// ID is the scheduler job id.
	ID int64
	// App is the application executable name.
	App string
	// User is the submitting user.
	User string
	// Nodes is the allocation, in NID order.
	Nodes []cname.Name
	// Submit, Start and End bound the job's life.
	Submit, Start, End time.Time
	// State is the final disposition.
	State State
	// ExitCode is the process exit code (0 for success; schedulers
	// report 137/143-style signal codes for kills).
	ExitCode int
	// ReqMemMB is the requested memory per node.
	ReqMemMB int
	// Overallocated marks jobs granted more memory than the node
	// physically has (the Fig 17 scenario).
	Overallocated bool
}

// Runtime returns the executed wall time.
func (j *Job) Runtime() time.Duration { return j.End.Sub(j.Start) }

// NodesString renders the allocation in the scheduler's compressed
// node-list form (consecutive node indices fold into bracketed ranges,
// as Slurm's NodeList does).
func (j *Job) NodesString() string {
	return cname.CompressNodeList(j.Nodes)
}

// ParseNodesString inverts NodesString; it also accepts plain
// comma-separated cnames.
func ParseNodesString(s string) ([]cname.Name, error) {
	return cname.ExpandNodeList(strings.TrimSpace(s))
}

// AppProfile describes one application in the mix.
type AppProfile struct {
	// Name is the executable name.
	Name string
	// Weight is the relative submission frequency.
	Weight float64
	// MeanNodes is the typical allocation size.
	MeanNodes int
	// MemHungry applications drive the OOM/overallocation scenarios.
	MemHungry bool
}

// DefaultApps returns a representative scientific application mix. Names
// are generic stand-ins for the production codes the paper could not
// disclose.
func DefaultApps() []AppProfile {
	return []AppProfile{
		{Name: "cfd_solver", Weight: 3, MeanNodes: 64},
		{Name: "md_engine", Weight: 3, MeanNodes: 32},
		{Name: "climate_sim", Weight: 2, MeanNodes: 128},
		{Name: "qcd_lattice", Weight: 1.5, MeanNodes: 256},
		{Name: "genomics_pipe", Weight: 2, MeanNodes: 8, MemHungry: true},
		{Name: "matlab_batch", Weight: 1, MeanNodes: 1, MemHungry: true},
		{Name: "vis_render", Weight: 0.8, MeanNodes: 16},
	}
}

// Config parameterises the job generator.
type Config struct {
	// MeanInterarrival is the mean time between job submissions.
	MeanInterarrival time.Duration
	// MeanRuntime is the mean job runtime (log-normal tailed).
	MeanRuntime time.Duration
	// Apps is the application mix; nil selects DefaultApps.
	Apps []AppProfile
	// Dispositions sets the non-success probabilities; fractions of all
	// jobs. The remainder complete successfully.
	PFailed, PCancelled, PTimeout, POOM float64
	// NodeMemMB is the physical node memory; requests above it mark the
	// job Overallocated.
	NodeMemMB int
	// POverallocate is the chance a memory-hungry job requests more
	// memory than the node has.
	POverallocate float64
}

// DefaultConfig returns rates matching the paper's Fig 12 envelope
// (~93 % success, ~2 % failed, remainder config errors).
func DefaultConfig() Config {
	return Config{
		MeanInterarrival: 4 * time.Minute,
		MeanRuntime:      90 * time.Minute,
		PFailed:          0.02,
		PCancelled:       0.025,
		PTimeout:         0.015,
		POOM:             0.01,
		NodeMemMB:        64 * 1024,
		POverallocate:    0.04,
	}
}

// userNames is the fixed simulated-user population ("user00".."user39"),
// pre-rendered so job generation doesn't format the same 40 strings
// thousands of times.
var userNames = func() [40]string {
	var u [40]string
	for i := range u {
		u[i] = fmt.Sprintf("user%02d", i)
	}
	return u
}()

// Generate produces the job stream for [start, end) on the cluster.
// Submissions arrive as a Poisson process and are placed by a
// space-sharing FCFS scheduler: allocations never overlap, jobs wait
// for free nodes, and submissions whose queue wait would exceed
// MaxQueueWait are abandoned. Jobs are returned in submit order with
// ascending IDs starting at firstID.
func Generate(cluster *topology.Cluster, cfg Config, start, end time.Time, firstID int64, r *rng.Rand) []Job {
	if cfg.Apps == nil {
		cfg.Apps = DefaultApps()
	}
	weights := make([]float64, len(cfg.Apps))
	for i, a := range cfg.Apps {
		weights[i] = a.Weight
	}
	sched := newScheduler(cluster, start)
	var jobs []Job
	id := firstID
	for t := start; t.Before(end); {
		t = t.Add(time.Duration(r.Exp(float64(cfg.MeanInterarrival))))
		if !t.Before(end) {
			break
		}
		app := cfg.Apps[r.Categorical(weights)]
		// Allocation size: log-normal around the app's mean, at least 1,
		// at most the cluster.
		nn := int(r.LogNormal(logMean(float64(app.MeanNodes)), 0.6))
		if nn < 1 {
			nn = 1
		}
		if nn > cluster.NumNodes() {
			nn = cluster.NumNodes()
		}
		// Runtime.
		rt := time.Duration(r.LogNormal(logMean(float64(cfg.MeanRuntime)), 0.8))
		if rt < time.Minute {
			rt = time.Minute
		}
		startAt, nodes, ok := sched.place(t, nn, rt)
		if !ok {
			continue // machine saturated; submission abandoned
		}
		j := Job{
			ID:     id,
			App:    app.Name,
			User:   userNames[r.Intn(len(userNames))],
			Submit: t,
			Start:  startAt,
			End:    startAt.Add(rt),
			Nodes:  nodes,
		}
		id++
		// Disposition.
		j.State, j.ExitCode = drawDisposition(cfg, r)
		// Memory request.
		j.ReqMemMB = 4*1024 + r.Intn(40*1024)
		if app.MemHungry {
			j.ReqMemMB = 32*1024 + r.Intn(64*1024)
			if r.Bool(cfg.POverallocate) {
				j.ReqMemMB = cfg.NodeMemMB + 8*1024 + r.Intn(32*1024)
			}
		}
		j.Overallocated = j.ReqMemMB > cfg.NodeMemMB
		jobs = append(jobs, j)
	}
	return jobs
}

// logMean converts a desired log-normal scale into the underlying mu
// (median parameterisation: exp(mu) = mean; the sigma²/2 mean correction
// is deliberately ignored — the heavy tail, not the exact mean, is what
// the workload needs).
func logMean(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return math.Log(mean)
}

// drawDisposition assigns the final state and exit code.
func drawDisposition(cfg Config, r *rng.Rand) (State, int) {
	x := r.Float64()
	switch {
	case x < cfg.PFailed:
		// Application error: small positive exit codes.
		return StateFailed, 1 + r.Intn(125)
	case x < cfg.PFailed+cfg.PCancelled:
		return StateCancelled, 130 // SIGINT-style
	case x < cfg.PFailed+cfg.PCancelled+cfg.PTimeout:
		return StateTimeout, 143 // SIGTERM at the limit
	case x < cfg.PFailed+cfg.PCancelled+cfg.PTimeout+cfg.POOM:
		return StateOOM, 137 // SIGKILL by the OOM killer
	default:
		return StateCompleted, 0
	}
}

// Event constructors — the scheduler-log record shapes. The generator
// emits start, end, and placement records for every simulated job, so
// these build their messages with strconv appends instead of fmt, and
// the ...Nodes variants let callers render the compressed node list
// once per job and share it across all three records.

// StartEvent is the allocation/start record.
func StartEvent(j *Job) events.Record {
	return StartEventNodes(j, j.NodesString())
}

// StartEventNodes is StartEvent with the compressed node list
// precomputed.
func StartEventNodes(j *Job, nodesStr string) events.Record {
	r := events.Record{
		Time:     j.Start,
		Stream:   events.StreamScheduler,
		Severity: events.SevInfo,
		Category: "job_start",
		JobID:    j.ID,
		Msg: "job " + strconv.FormatInt(j.ID, 10) + " (" + j.App + ") started for " +
			j.User + " on " + strconv.Itoa(len(j.Nodes)) + " nodes",
	}
	r.SetField("app", j.App)
	r.SetField("user", j.User)
	r.SetField("nodes", nodesStr)
	r.SetField("req_mem_mb", strconv.Itoa(j.ReqMemMB))
	return r
}

// EndEvent is the completion record carrying state and exit code.
func EndEvent(j *Job) events.Record {
	return EndEventNodes(j, j.NodesString())
}

// EndEventNodes is EndEvent with the compressed node list precomputed.
func EndEventNodes(j *Job, nodesStr string) events.Record {
	r := events.Record{
		Time:     j.End,
		Stream:   events.StreamScheduler,
		Severity: endSeverity(j.State),
		Category: "job_end",
		JobID:    j.ID,
		Msg: "job " + strconv.FormatInt(j.ID, 10) + " (" + j.App + ") ended state=" +
			j.State.String() + " exit=" + strconv.Itoa(j.ExitCode) +
			" runtime=" + j.Runtime().Round(time.Second).String(),
	}
	r.SetField("app", j.App)
	r.SetField("state", j.State.String())
	r.SetField("exit_code", strconv.Itoa(j.ExitCode))
	r.SetField("nodes", nodesStr)
	return r
}

func endSeverity(s State) events.Severity {
	switch s {
	case StateCompleted:
		return events.SevInfo
	case StateNodeFail:
		return events.SevError
	default:
		return events.SevWarning
	}
}

// EpilogueEvent is the per-node cleanup record: the scheduler epilogue
// removing user processes before reallocation (the paper notes epilogue
// kills in the OOM stack traces).
func EpilogueEvent(t time.Time, node cname.Name, jobID int64) events.Record {
	return events.Record{
		Time:      t,
		Stream:    events.StreamScheduler,
		Component: node,
		Severity:  events.SevInfo,
		Category:  "job_epilogue",
		JobID:     jobID,
		Msg:       "epilogue: cleaning job " + strconv.FormatInt(jobID, 10) + " processes on " + node.String(),
	}
}

// DrainEvent is the scheduler record for a node leaving the
// schedulable pool ahead of a predicted failure — the remediation
// loop's disruptive-but-preventive action.
func DrainEvent(t time.Time, node cname.Name) events.Record {
	return events.Record{
		Time:      t,
		Stream:    events.StreamScheduler,
		Component: node,
		Severity:  events.SevWarning,
		Category:  "node_drain",
		Msg:       "scheduler: draining node " + node.String() + " (predicted failure)",
	}
}

// RequeueEvent is the scheduler record for one job pulled off a
// draining node and returned to the queue.
func RequeueEvent(t time.Time, node cname.Name, jobID int64) events.Record {
	return events.Record{
		Time:      t,
		Stream:    events.StreamScheduler,
		Component: node,
		Severity:  events.SevWarning,
		Category:  "job_requeue",
		JobID:     jobID,
		Msg: "scheduler: job " + strconv.FormatInt(jobID, 10) +
			" requeued off draining node " + node.String(),
	}
}

// JobsAt returns the jobs from the slice running at time t. Jobs are
// half-open [Start, End).
func JobsAt(jobs []Job, t time.Time) []*Job {
	var out []*Job
	for i := range jobs {
		j := &jobs[i]
		if !t.Before(j.Start) && t.Before(j.End) {
			out = append(out, j)
		}
	}
	return out
}

// JobsOnNode returns every job from the slice holding the node at time
// t, in slice order. The generator's space-sharing scheduler never
// overlaps allocations, but real logs (and stress-test fixtures) do, so
// drain-style callers requeue all of them.
func JobsOnNode(jobs []Job, node cname.Name, t time.Time) []*Job {
	var out []*Job
	for i := range jobs {
		j := &jobs[i]
		if t.Before(j.Start) || !t.Before(j.End) {
			continue
		}
		for _, n := range j.Nodes {
			if n == node {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// JobOnNode returns the job running on the node at time t, or nil.
// Space-sharing is exclusive in the studied systems, so at most one job
// holds a node at a time; the generator does not enforce this globally
// (real logs overlap too), so the most recently started match wins.
func JobOnNode(jobs []Job, node cname.Name, t time.Time) *Job {
	var best *Job
	for i := range jobs {
		j := &jobs[i]
		if t.Before(j.Start) || !t.Before(j.End) {
			continue
		}
		for _, n := range j.Nodes {
			if n == node {
				if best == nil || j.Start.After(best.Start) {
					best = j
				}
				break
			}
		}
	}
	return best
}
