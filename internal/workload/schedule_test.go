package workload

import (
	"testing"
	"testing/quick"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/rng"
	"hpcfail/internal/topology"
)

func schedCluster(nodes int) *topology.Cluster {
	return topology.New(topology.Spec{ID: "T", Nodes: nodes, CabinetCols: 1})
}

func TestPlaceIdleMachineStartsImmediately(t *testing.T) {
	c := schedCluster(16)
	s := newScheduler(c, start)
	at := start.Add(time.Hour)
	got, nodes, ok := s.place(at, 4, time.Hour)
	if !ok || !got.Equal(at) {
		t.Fatalf("idle placement: %v %v", got, ok)
	}
	if len(nodes) != 4 {
		t.Fatalf("allocation size %d", len(nodes))
	}
	// NID-ordered contiguous prefix on an idle machine.
	for i, n := range nodes {
		if c.NID(n) != i {
			t.Errorf("node %d = %v (nid %d)", i, n, c.NID(n))
		}
	}
}

func TestPlaceQueuesWhenBusy(t *testing.T) {
	c := schedCluster(4)
	s := newScheduler(c, start)
	// Fill the whole machine for 2 hours.
	st1, _, ok := s.place(start, 4, 2*time.Hour)
	if !ok || !st1.Equal(start) {
		t.Fatal("first placement failed")
	}
	// Next job must wait for the machine to drain.
	st2, _, ok := s.place(start.Add(10*time.Minute), 2, time.Hour)
	if !ok {
		t.Fatal("second placement dropped")
	}
	if !st2.Equal(start.Add(2 * time.Hour)) {
		t.Errorf("queued start = %v, want %v", st2, start.Add(2*time.Hour))
	}
}

func TestPlaceDropsBeyondMaxQueueWait(t *testing.T) {
	c := schedCluster(2)
	s := newScheduler(c, start)
	if _, _, ok := s.place(start, 2, 2*MaxQueueWait); !ok {
		t.Fatal("long job placement failed")
	}
	if _, _, ok := s.place(start.Add(time.Minute), 1, time.Hour); ok {
		t.Error("placement should be dropped when wait exceeds MaxQueueWait")
	}
}

func TestPlaceClampsOversizedRequest(t *testing.T) {
	c := schedCluster(8)
	s := newScheduler(c, start)
	_, nodes, ok := s.place(start, 100, time.Hour)
	if !ok || len(nodes) != 8 {
		t.Errorf("oversized request: %d nodes, ok=%v", len(nodes), ok)
	}
}

func TestUtilization(t *testing.T) {
	c := schedCluster(10)
	s := newScheduler(c, start)
	s.place(start, 5, time.Hour)
	if u := s.utilizationAt(start.Add(time.Minute)); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if u := s.utilizationAt(start.Add(2 * time.Hour)); u != 0 {
		t.Errorf("post-drain utilization = %v", u)
	}
}

// Property: generated allocations never overlap in (node, time).
func TestQuickNoOverlappingAllocations(t *testing.T) {
	cluster := schedCluster(64)
	f := func(seed uint64) bool {
		cfg := DefaultConfig()
		cfg.MeanInterarrival = 5 * time.Minute
		jobs := Generate(cluster, cfg, start, start.Add(24*time.Hour), 1, rng.New(seed))
		type iv struct{ s, e time.Time }
		perNode := map[cname.Name][]iv{}
		for i := range jobs {
			j := &jobs[i]
			for _, n := range j.Nodes {
				for _, other := range perNode[n] {
					if j.Start.Before(other.e) && other.s.Before(j.End) {
						return false
					}
				}
				perNode[n] = append(perNode[n], iv{j.Start, j.End})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestGenerateStartNeverBeforeSubmit(t *testing.T) {
	cluster := schedCluster(32)
	cfg := DefaultConfig()
	cfg.MeanInterarrival = 2 * time.Minute // saturating load on 32 nodes
	jobs := Generate(cluster, cfg, start, start.Add(24*time.Hour), 1, rng.New(3))
	queued := 0
	for i := range jobs {
		j := &jobs[i]
		if j.Start.Before(j.Submit) {
			t.Fatalf("job %d starts before submission", j.ID)
		}
		if j.Start.Sub(j.Submit) > MaxQueueWait {
			t.Fatalf("job %d waited beyond MaxQueueWait", j.ID)
		}
		if j.Start.After(j.Submit) {
			queued++
		}
	}
	if queued == 0 {
		t.Error("a saturating load should queue some jobs")
	}
}
