package workload

import (
	"testing"
	"testing/quick"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/rng"
	"hpcfail/internal/topology"
)

func testCluster() *topology.Cluster {
	return topology.New(topology.Spec{ID: "T", Nodes: 400, CabinetCols: 2})
}

var (
	start = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	end   = start.Add(3 * 24 * time.Hour)
)

func genJobs(t *testing.T, seed uint64) []Job {
	t.Helper()
	jobs := Generate(testCluster(), DefaultConfig(), start, end, 1000, rng.New(seed))
	if len(jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	return jobs
}

func TestStateRoundTripAndPredicates(t *testing.T) {
	for s := StateCompleted; s <= StateOOM; s++ {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Errorf("state round trip %v: %v %v", s, got, err)
		}
	}
	if _, err := ParseState("WEIRD"); err == nil {
		t.Error("ParseState should reject unknown")
	}
	if !StateCompleted.Successful() || StateFailed.Successful() {
		t.Error("Successful wrong")
	}
	for _, s := range []State{StateCancelled, StateTimeout, StateOOM} {
		if !s.ConfigError() {
			t.Errorf("%v should be config error", s)
		}
	}
	if StateFailed.ConfigError() || StateNodeFail.ConfigError() {
		t.Error("failed/node-fail are not config errors")
	}
	if State(99).String() == "" {
		t.Error("unknown state should stringify")
	}
}

func TestGenerateBasicInvariants(t *testing.T) {
	jobs := genJobs(t, 1)
	cluster := testCluster()
	var lastID int64
	for i := range jobs {
		j := &jobs[i]
		if j.ID <= lastID {
			t.Fatalf("IDs not strictly ascending at %d", j.ID)
		}
		lastID = j.ID
		if len(j.Nodes) == 0 || len(j.Nodes) > cluster.NumNodes() {
			t.Fatalf("job %d allocation size %d", j.ID, len(j.Nodes))
		}
		for _, n := range j.Nodes {
			if !cluster.Contains(n) {
				t.Fatalf("job %d allocated foreign node %v", j.ID, n)
			}
		}
		if !j.Start.After(j.Submit) && !j.Start.Equal(j.Submit) {
			t.Fatalf("job %d starts before submit", j.ID)
		}
		if !j.End.After(j.Start) {
			t.Fatalf("job %d non-positive runtime", j.ID)
		}
		if j.State == StateCompleted && j.ExitCode != 0 {
			t.Fatalf("completed job %d has exit %d", j.ID, j.ExitCode)
		}
		if j.State == StateFailed && j.ExitCode == 0 {
			t.Fatalf("failed job %d has exit 0", j.ID)
		}
		if j.Overallocated != (j.ReqMemMB > DefaultConfig().NodeMemMB) {
			t.Fatalf("job %d overallocation flag inconsistent", j.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genJobs(t, 7)
	b := genJobs(t, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].App != b[i].App || !a[i].Start.Equal(b[i].Start) ||
			a[i].State != b[i].State || len(a[i].Nodes) != len(b[i].Nodes) {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
}

func TestGenerateSuccessRateMatchesFig12(t *testing.T) {
	jobs := genJobs(t, 3)
	success, failed := 0, 0
	for _, j := range jobs {
		switch {
		case j.State.Successful():
			success++
		case j.State == StateFailed:
			failed++
		}
	}
	sRate := float64(success) / float64(len(jobs))
	fRate := float64(failed) / float64(len(jobs))
	// Fig 12 envelope: 90.43–95.71 % success, 0.06–6.02 % non-zero app
	// exits. Allow the simulator a slightly wider band for small n.
	if sRate < 0.88 || sRate > 0.97 {
		t.Errorf("success rate %.3f outside Fig 12 envelope", sRate)
	}
	if fRate > 0.07 {
		t.Errorf("failure rate %.3f above Fig 12 envelope", fRate)
	}
}

func TestMemHungryOverallocation(t *testing.T) {
	jobs := genJobs(t, 5)
	over := 0
	for _, j := range jobs {
		if j.Overallocated {
			over++
			if j.ReqMemMB <= DefaultConfig().NodeMemMB {
				t.Fatal("overallocated job within node memory")
			}
		}
	}
	if over == 0 {
		t.Error("no overallocated jobs generated over 3 days")
	}
}

func TestNodesStringRoundTrip(t *testing.T) {
	jobs := genJobs(t, 9)
	j := &jobs[0]
	back, err := ParseNodesString(j.NodesString())
	if err != nil {
		t.Fatalf("ParseNodesString: %v", err)
	}
	if len(back) != len(j.Nodes) {
		t.Fatalf("lengths differ")
	}
	for i := range back {
		if back[i] != j.Nodes[i] {
			t.Fatalf("node %d differs", i)
		}
	}
	if ns, err := ParseNodesString(""); err != nil || ns != nil {
		t.Error("empty nodes string should parse to nil")
	}
	if _, err := ParseNodesString("c0-0,garbage"); err == nil {
		t.Error("garbage should not parse")
	}
}

func TestEventShapes(t *testing.T) {
	jobs := genJobs(t, 11)
	j := &jobs[0]
	s := StartEvent(j)
	if s.Stream != events.StreamScheduler || s.JobID != j.ID || s.Category != "job_start" {
		t.Errorf("start event: %+v", s)
	}
	if s.Field("nodes") == "" || s.Field("app") != j.App {
		t.Error("start event missing fields")
	}
	e := EndEvent(j)
	if e.Category != "job_end" || e.Field("state") != j.State.String() {
		t.Errorf("end event: %+v", e)
	}
	ep := EpilogueEvent(j.End, j.Nodes[0], j.ID)
	if ep.Component != j.Nodes[0] || ep.Category != "job_epilogue" {
		t.Errorf("epilogue event: %+v", ep)
	}
}

func TestEndSeverities(t *testing.T) {
	j := Job{ID: 1, State: StateCompleted, Start: start, End: start.Add(time.Hour)}
	if EndEvent(&j).Severity != events.SevInfo {
		t.Error("completed jobs end at info")
	}
	j.State = StateNodeFail
	if EndEvent(&j).Severity != events.SevError {
		t.Error("node-fail jobs end at error")
	}
	j.State = StateTimeout
	if EndEvent(&j).Severity != events.SevWarning {
		t.Error("timeout jobs end at warning")
	}
}

func TestJobsAtAndJobOnNode(t *testing.T) {
	jobs := genJobs(t, 13)
	j := &jobs[len(jobs)/2]
	mid := j.Start.Add(j.Runtime() / 2)
	running := JobsAt(jobs, mid)
	found := false
	for _, r := range running {
		if r.ID == j.ID {
			found = true
		}
		if mid.Before(r.Start) || !mid.Before(r.End) {
			t.Fatalf("JobsAt returned non-running job %d", r.ID)
		}
	}
	if !found {
		t.Fatal("JobsAt missed a running job")
	}
	got := JobOnNode(jobs, j.Nodes[0], mid)
	if got == nil {
		t.Fatal("JobOnNode found nothing")
	}
	// The returned job must actually hold the node at mid.
	holds := false
	for _, n := range got.Nodes {
		if n == j.Nodes[0] {
			holds = true
		}
	}
	if !holds {
		t.Error("JobOnNode returned a job not on the node")
	}
	// Before all jobs: nothing runs.
	if JobOnNode(jobs, j.Nodes[0], start.Add(-time.Hour)) != nil {
		t.Error("JobOnNode before time range should be nil")
	}
}

func TestDefaultApps(t *testing.T) {
	apps := DefaultApps()
	if len(apps) < 5 {
		t.Fatal("app mix too small")
	}
	hungry := 0
	for _, a := range apps {
		if a.Weight <= 0 || a.MeanNodes <= 0 || a.Name == "" {
			t.Errorf("bad app profile %+v", a)
		}
		if a.MemHungry {
			hungry++
		}
	}
	if hungry == 0 {
		t.Error("need at least one memory-hungry app for the OOM scenarios")
	}
}

// Property: allocations never contain duplicates.
func TestQuickAllocationsDistinct(t *testing.T) {
	cluster := testCluster()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		jobs := Generate(cluster, DefaultConfig(), start, start.Add(6*time.Hour), 1, r)
		for _, j := range jobs {
			seen := map[cname.Name]bool{}
			for _, n := range j.Nodes {
				if seen[n] {
					return false
				}
				seen[n] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
