// Package version renders a consistent -version string for every cmd
// in the repository, backed by runtime/debug.ReadBuildInfo so the
// output tracks the module version, VCS revision and Go toolchain the
// binary was actually built with — no hand-maintained constants.
package version

import (
	"fmt"
	"io"
	"runtime/debug"
)

// String assembles the version line for one command name, e.g.
//
//	diagnose hpcfail (devel) go1.24.0 vcs=67b61b4 dirty=false
//
// Fields that the build info does not carry (no VCS stamp under plain
// `go build` of a dirty tree, tests, …) are simply omitted.
func String(cmd string) string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return cmd + " (build info unavailable)"
	}
	s := cmd
	if info.Main.Path != "" {
		s += " " + info.Main.Path
	}
	if v := info.Main.Version; v != "" {
		s += " " + v
	}
	if info.GoVersion != "" {
		s += " " + info.GoVersion
	}
	var rev, dirty string
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			dirty = kv.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " vcs=" + rev
		if dirty != "" {
			s += " dirty=" + dirty
		}
	}
	return s
}

// Print writes the version line followed by a newline.
func Print(w io.Writer, cmd string) {
	fmt.Fprintln(w, String(cmd))
}
