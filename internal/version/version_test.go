package version

import (
	"strings"
	"testing"
)

func TestStringCarriesCommandName(t *testing.T) {
	s := String("diagnose")
	if !strings.HasPrefix(s, "diagnose") {
		t.Fatalf("version string %q does not start with the command name", s)
	}
	// Under `go test` build info is available and names this module.
	if !strings.Contains(s, "hpcfail") {
		t.Errorf("version string %q lacks the module path", s)
	}
}
