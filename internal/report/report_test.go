package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Fig X", "name", "value")
	tbl.AddRow("alpha", 1.0)
	tbl.AddRow("beta-longer", 2.5)
	s := tbl.String()
	if !strings.Contains(s, "Fig X") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), s)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[2], "---") {
		t.Errorf("header/separator malformed: %q %q", lines[1], lines[2])
	}
	if !strings.Contains(s, "beta-longer") || !strings.Contains(s, "2.500") {
		t.Errorf("rows malformed: %q", s)
	}
	// Integer floats render without decimals.
	if !strings.Contains(s, "alpha") || strings.Contains(s, "1.000") {
		t.Errorf("integer float formatting: %q", s)
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x", "y")
	tbl.AddRow("longvalue", "z")
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	// Column b should start at the same offset on every data line.
	off1 := strings.Index(lines[2], "y")
	off2 := strings.Index(lines[3], "z")
	if off1 != off2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", off1, off2, tbl.String())
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow(`has,comma`, `has"quote`)
	csv := tbl.CSV()
	if !strings.Contains(csv, `"has,comma"`) || !strings.Contains(csv, `"has""quote"`) {
		t.Errorf("CSV quoting wrong: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
}

func TestSeries(t *testing.T) {
	s := Series{Name: "cdf", XLabel: "minutes", YLabel: "fraction"}
	s.Add(1, 0.5)
	s.Add(2, 1.0)
	out := s.String()
	if !strings.Contains(out, "minutes") || !strings.Contains(out, "0.500") {
		t.Errorf("series table: %q", out)
	}
	if len(s.X) != 2 || s.Y[1] != 1.0 {
		t.Error("Add broken")
	}
}

func TestBars(t *testing.T) {
	tbl := Bars("breakdown", map[string]float64{"a": 10, "b": 30, "c": 0}, "count")
	s := tbl.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Sorted descending: b first.
	if !strings.Contains(lines[3], "b") {
		t.Errorf("rows not sorted: %q", s)
	}
	if !strings.Contains(s, "##") {
		t.Errorf("no bars rendered: %q", s)
	}
}

func TestBarsEmptyAndTies(t *testing.T) {
	if s := Bars("x", map[string]float64{}, "n").String(); !strings.Contains(s, "label") {
		t.Error("empty bars should still render headers")
	}
	tbl := Bars("t", map[string]float64{"b": 1, "a": 1}, "n")
	if tbl.Rows[0][0] != "a" {
		t.Error("ties should sort by label")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.9231) != "92.31%" {
		t.Errorf("Pct = %q", Pct(0.9231))
	}
}

func TestMarkdown(t *testing.T) {
	tbl := NewTable("Fig X", "a", "b")
	tbl.AddRow("v1", "has|pipe")
	md := tbl.Markdown()
	for _, want := range []string{"**Fig X**", "| a | b |", "| --- | --- |", `has\|pipe`} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
	// Untitled tables skip the bold header.
	if strings.Contains(NewTable("", "a").Markdown(), "**") {
		t.Error("untitled markdown should have no bold title")
	}
}

func TestFormatFloatLargeValues(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(2.5e12) // beyond the integer fast path
	if !strings.Contains(tbl.String(), "2500000000000.000") {
		t.Errorf("large float rendering: %q", tbl.String())
	}
}
