// Package report renders experiment output: aligned ASCII tables,
// labelled series (the textual form of the paper's figures), and CSV
// export. Every experiment in cmd/experiments prints through this
// package so the regenerated tables and figures share one look.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: integers without decimals,
// otherwise 2–3 significant decimals.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e9 && v > -1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var total int64
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	write := func(s string) error {
		n, err := io.WriteString(w, s)
		total += int64(n)
		return err
	}
	if t.Title != "" {
		if err := write(t.Title + "\n"); err != nil {
			return total, err
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
		return b.String()
	}
	if err := write(line(t.Headers)); err != nil {
		return total, err
	}
	sepCells := make([]string, len(t.Headers))
	for i := range sepCells {
		sepCells[i] = strings.Repeat("-", widths[i])
	}
	if err := write(line(sepCells)); err != nil {
		return total, err
	}
	for _, row := range t.Rows {
		if err := write(line(row)); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// CSV renders the table as comma-separated values (quoted when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	if t.Title != "" {
		b.WriteString("**" + t.Title + "**\n\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a labelled (x, y) sequence — the textual form of a figure
// curve.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table converts the series into a two-column table.
func (s *Series) Table() *Table {
	t := NewTable(s.Name, s.XLabel, s.YLabel)
	for i := range s.X {
		t.AddRow(s.X[i], s.Y[i])
	}
	return t
}

// String renders the series as its table.
func (s *Series) String() string { return s.Table().String() }

// Bars renders a map of label→value as a sorted two-column table with a
// crude ASCII bar, for breakdown figures.
func Bars(title string, values map[string]float64, unit string) *Table {
	t := NewTable(title, "label", unit, "")
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if values[keys[i]] != values[keys[j]] {
			return values[keys[i]] > values[keys[j]]
		}
		return keys[i] < keys[j]
	})
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	for _, k := range keys {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", int(values[k]/max*30+0.5))
		}
		t.AddRow(k, values[k], bar)
	}
	return t
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }
