package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSnapshotFileTornWrite simulates a crash at every byte of a
// checkpoint save: with a good checkpoint already published, the temp
// file is truncated at every prefix length of the next snapshot's blob
// (the on-disk state a crash between write and rename leaves behind).
// LoadSnapshotFile must keep returning the old checkpoint at every kill
// point, and a subsequent save must recover cleanly over the debris.
func TestSnapshotFileTornWrite(t *testing.T) {
	_, store := buildScenario(t, 2, 7)
	recs := store.All()

	old := NewWatcher(DefaultConfig(), func(Detection) {})
	old.FeedAll(recs[:store.Len()/3])
	next := NewWatcher(DefaultConfig(), func(Detection) {})
	next.FeedAll(recs[:2*store.Len()/3])
	if reflect.DeepEqual(old.Snapshot(), next.Snapshot()) {
		t.Fatal("old and next snapshots identical; torn-write test is vacuous")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "watch.ckpt")
	if err := SaveSnapshotFile(path, old); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(next.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	tmp := path + ".tmp"
	for n := 0; n <= len(blob); n++ {
		if err := os.WriteFile(tmp, blob[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		w := NewWatcher(DefaultConfig(), func(Detection) {})
		restored, err := LoadSnapshotFile(path, w)
		if err != nil || !restored {
			t.Fatalf("prefix %d/%d: restored=%v err=%v, want old checkpoint intact",
				n, len(blob), restored, err)
		}
		if !reflect.DeepEqual(w.Snapshot(), old.Snapshot()) {
			t.Fatalf("prefix %d/%d: load returned a state other than the published checkpoint", n, len(blob))
		}
	}

	// A fresh save over the leftover temp file publishes the new state.
	if err := SaveSnapshotFile(path, next); err != nil {
		t.Fatal(err)
	}
	w := NewWatcher(DefaultConfig(), func(Detection) {})
	if restored, err := LoadSnapshotFile(path, w); err != nil || !restored {
		t.Fatalf("restored=%v err=%v after recovery save", restored, err)
	}
	if !reflect.DeepEqual(w.Snapshot(), next.Snapshot()) {
		t.Fatal("recovery save did not publish the new checkpoint")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file still present after successful save (err=%v)", err)
	}
}
