package core

import "sort"

// Candidate is a miner-promoted novel log signature — the watcher's
// low-confidence detection kind. Unlike a Detection (a terminal
// category confirmed a failure) or an Alarm (profiled precursors
// paired), a Candidate says only: an unknown log pattern is recurring
// or bursting in the quarantine stream, and nobody has profiled it
// yet. It carries no node attribution — quarantined lines by
// definition failed component parsing — so it is surfaced for operator
// triage and profile bootstrap, never for remediation.
type Candidate struct {
	// Signature is the mined category slug ("mined_...").
	Signature string `json:"signature"`
	// Template is the mined template text (masked token sequence).
	Template string `json:"template"`
	// Count is the occurrence count behind the promotion.
	Count uint64 `json:"count"`
	// Example is one raw quarantined line behind the template.
	Example string `json:"example,omitempty"`
	// Burst reports whether a quarantine burst, rather than slow
	// accumulation, triggered the promotion.
	Burst bool `json:"burst,omitempty"`
}

// NoteCandidate surfaces a mined candidate through the watcher,
// invoking OnCandidate at most once per signature — the same
// suppression idea as the alarm refractory, keyed by signature rather
// than node+time because candidates have neither. Suppression state
// travels in snapshots, so a restored watch does not re-announce
// signatures it already surfaced. Safe for concurrent use; like the
// other watcher callbacks, OnCandidate runs with the watcher mutex
// held and must not call back in.
func (w *Watcher) NoteCandidate(c Candidate) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.candidateSeen == nil {
		w.candidateSeen = make(map[string]bool)
	}
	if w.candidateSeen[c.Signature] {
		return
	}
	w.candidateSeen[c.Signature] = true
	w.stats.Candidates++
	if w.OnCandidate != nil {
		w.OnCandidate(c)
	}
}

// candidateSigsLocked returns the surfaced signatures, sorted.
func (w *Watcher) candidateSigsLocked() []string {
	if len(w.candidateSeen) == 0 {
		return nil
	}
	out := make([]string, 0, len(w.candidateSeen))
	for s := range w.candidateSeen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
