package core

import (
	"testing"
)

func TestRunParallelMatchesRun(t *testing.T) {
	_, store := buildScenario(t, 7, 401)
	serial := Run(store, DefaultConfig())
	for _, workers := range []int{0, 1, 2, 8, 1000} {
		parallel := RunParallel(store, DefaultConfig(), workers)
		if len(parallel.Diagnoses) != len(serial.Diagnoses) {
			t.Fatalf("workers=%d: %d diagnoses vs %d", workers,
				len(parallel.Diagnoses), len(serial.Diagnoses))
		}
		for i := range serial.Diagnoses {
			a, b := serial.Diagnoses[i], parallel.Diagnoses[i]
			if a.Detection != b.Detection || a.Cause != b.Cause ||
				a.Class != b.Class || a.AppTriggered != b.AppTriggered ||
				a.JobID != b.JobID || a.KeySymbol != b.KeySymbol {
				t.Fatalf("workers=%d diagnosis %d differs:\n%+v\n%+v", workers, i, a, b)
			}
		}
	}
}

func TestRunParallelRace(t *testing.T) {
	// Exercised under -race by the normal test run: many workers over a
	// shared store.
	_, store := buildScenario(t, 5, 403)
	res := RunParallel(store, DefaultConfig(), 16)
	if len(res.Detections) == 0 {
		t.Fatal("no detections")
	}
}
