package core

import (
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/logstore"
)

// NHFOutcome classifies one node-heartbeat-fault event by what actually
// happened to the node (the Fig 6 breakdown).
type NHFOutcome int

const (
	// NHFOutcomeFailed: a confirmed failure accompanied the NHF.
	NHFOutcomeFailed NHFOutcome = iota
	// NHFOutcomePowerOff: an intended shutdown preceded the NHF.
	NHFOutcomePowerOff
	// NHFOutcomeSkipped: neither — a transient skip.
	NHFOutcomeSkipped
)

// String names the outcome.
func (o NHFOutcome) String() string {
	switch o {
	case NHFOutcomeFailed:
		return "failed"
	case NHFOutcomePowerOff:
		return "poweroff"
	default:
		return "skipped"
	}
}

// NHFAnalysis is one NHF event with its inferred outcome.
type NHFAnalysis struct {
	Node    cname.Name
	Time    time.Time
	Outcome NHFOutcome
}

// Correlator answers the external-influence questions (Figs 5–7): which
// health faults correspond to real failures, and how often failures sit
// on blades/cabinets that logged health faults.
type Correlator struct {
	Store      *logstore.Store
	Detections []Detection
	Cfg        Config

	// detIx is the lazily built per-node detection index behind
	// failureNear. First use builds it, so a Correlator must not be
	// shared across goroutines before one of the Analyze methods has run.
	detIx *DetectionIndex
}

// index returns the per-node detection index, building it on first use.
func (c *Correlator) index() *DetectionIndex {
	if c.detIx == nil {
		c.detIx = NewDetectionIndex(c.Detections)
	}
	return c.detIx
}

// failureNear reports whether any detection on the node falls within
// ±window of t.
func (c *Correlator) failureNear(node cname.Name, t time.Time, window time.Duration) bool {
	return c.index().AnyBetween(node, t.Add(-window), t.Add(window))
}

// scheduledShutdownNear reports whether the node logged an intended
// shutdown within ±window of t.
func (c *Correlator) scheduledShutdownNear(node cname.Name, t time.Time, window time.Duration) bool {
	for _, r := range c.Store.NodeWindow(node, t.Add(-window), t.Add(window)) {
		if r.Category == faults.NodeShutdown.Category() && r.Field("intent") == "scheduled" {
			return true
		}
	}
	return false
}

// AnalyzeNHFs classifies every NHF event in the store.
func (c *Correlator) AnalyzeNHFs() []NHFAnalysis {
	var out []NHFAnalysis
	for _, r := range c.Store.Category(faults.NHF.Category()) {
		a := NHFAnalysis{Node: r.Component, Time: r.Time}
		switch {
		case c.failureNear(r.Component, r.Time, c.Cfg.ConfirmWindow):
			a.Outcome = NHFOutcomeFailed
		case c.scheduledShutdownNear(r.Component, r.Time, c.Cfg.ConfirmWindow):
			a.Outcome = NHFOutcomePowerOff
		default:
			a.Outcome = NHFOutcomeSkipped
		}
		out = append(out, a)
	}
	return out
}

// NVFAnalysis is one node-voltage-fault event with its failure
// correspondence.
type NVFAnalysis struct {
	Node   cname.Name
	Time   time.Time
	Failed bool
}

// AnalyzeNVFs classifies every NVF event (Fig 5's 67–97 %).
func (c *Correlator) AnalyzeNVFs() []NVFAnalysis {
	var out []NVFAnalysis
	for _, r := range c.Store.Category(faults.NVF.Category()) {
		out = append(out, NVFAnalysis{
			Node:   r.Component,
			Time:   r.Time,
			Failed: c.failureNear(r.Component, r.Time, c.Cfg.ConfirmWindow),
		})
	}
	return out
}

// FaultCorrespondence is the fraction of events of a class that
// co-occurred with failures.
func FaultCorrespondence(failed, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(failed) / float64(total)
}

// bladeFaultCategories are the blade/cabinet health-fault categories
// used for the Fig 7 correlation.
var bladeFaultCategories = func() map[string]bool {
	m := map[string]bool{}
	for _, t := range faults.HealthFaultTypes() {
		m[t.Category()] = true
	}
	return m
}()

// BladeCabinetCorrelation computes, over all detections, the fraction
// whose blade (and cabinet) logged a health fault within
// ±BladeFaultWindow of the failure (Fig 7's 23–59 % and 19–58 %).
func (c *Correlator) BladeCabinetCorrelation() (bladeFrac, cabFrac float64) {
	if len(c.Detections) == 0 {
		return 0, 0
	}
	bladeHits, cabHits := 0, 0
	w := c.Cfg.BladeFaultWindow
	for _, d := range c.Detections {
		blade := d.Node.BladeName()
		cab := d.Node.CabinetName()
		if c.componentFaultNear(blade, d.Time, w) {
			bladeHits++
		}
		if c.componentFaultNear(cab, d.Time, w) {
			cabHits++
		}
	}
	n := float64(len(c.Detections))
	return float64(bladeHits) / n, float64(cabHits) / n
}

// componentFaultNear reports a health fault logged AT the component
// level (not its children) within ±window of t.
func (c *Correlator) componentFaultNear(comp cname.Name, t time.Time, window time.Duration) bool {
	var recs []events.Record
	switch comp.Level() {
	case cname.LevelBlade:
		recs = c.Store.BladeWindow(comp, t.Add(-window), t.Add(window))
	case cname.LevelCabinet:
		recs = c.Store.CabinetWindow(comp, t.Add(-window), t.Add(window))
	default:
		return false
	}
	for _, r := range recs {
		if r.Component == comp && bladeFaultCategories[r.Category] {
			return true
		}
	}
	return false
}

// UniqueWarningComponents counts distinct components that logged a given
// category in [from, to) — the Fig 8 unique-blade counts.
func UniqueWarningComponents(store *logstore.Store, category string, from, to time.Time) int {
	seen := map[cname.Name]bool{}
	for _, r := range store.CategoryWindow(category, from, to) {
		if r.Component.IsValid() {
			seen[r.Component] = true
		}
	}
	return len(seen)
}
