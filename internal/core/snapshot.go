package core

import (
	"container/heap"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
)

// WatcherSnapshot is a watcher's complete detection state at a point in
// its input sequence, in a JSON-serialisable shape. A watcher restored
// from a snapshot and fed the remainder of the record sequence emits
// exactly the detections and alarms the original would have — no
// duplicates (refractory and alarm-suppression timestamps travel along)
// and no misses (the reorder buffer's undelivered records travel too).
// That continuity contract is what lets a long-running watch checkpoint
// to disk and survive a crash.
//
// The snapshot deliberately excludes the pipeline Config and the
// callbacks: the restoring process supplies those when it constructs
// the watcher, and a snapshot must not resurrect stale tuning.
type WatcherSnapshot struct {
	// BurstWindow/ReorderWindow/ReorderLimit/EvictionHorizon mirror the
	// watcher's public knobs so a restored watcher behaves identically.
	BurstWindow     time.Duration `json:"burstWindow"`
	ReorderWindow   time.Duration `json:"reorderWindow"`
	ReorderLimit    int           `json:"reorderLimit"`
	EvictionHorizon time.Duration `json:"evictionHorizon"`

	LastTerminal map[cname.Name]time.Time        `json:"lastTerminal,omitempty"`
	Recent       map[cname.Name][]PrecursorEvent `json:"recent,omitempty"`
	LastExternal map[cname.Name]time.Time        `json:"lastExternal,omitempty"`
	LastAlarm    map[cname.Name]time.Time        `json:"lastAlarm,omitempty"`
	Apids        map[int64]int64                 `json:"apids,omitempty"`
	ApidSeen     map[int64]time.Time             `json:"apidSeen,omitempty"`

	// CandidateSigs holds the mined signatures already surfaced, so a
	// restored watch does not re-announce them (sorted for determinism).
	CandidateSigs []string `json:"candidateSigs,omitempty"`

	// Buffer holds the reorder buffer's undelivered records.
	Buffer    []events.Record `json:"buffer,omitempty"`
	Watermark time.Time       `json:"watermark"`
	LastEvict time.Time       `json:"lastEvict"`
	Stats     WatcherStats    `json:"stats"`
}

// PrecursorEvent is one retained precursor observation (the exported
// mirror of the watcher's burst-window entries).
type PrecursorEvent struct {
	Time     time.Time `json:"t"`
	Category string    `json:"c"`
}

func copyTimes(m map[cname.Name]time.Time) map[cname.Name]time.Time {
	if len(m) == 0 {
		return nil
	}
	out := make(map[cname.Name]time.Time, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Snapshot captures the watcher's state. Safe to call concurrently with
// feeders; the snapshot is a deep copy and shares nothing with the live
// watcher.
func (w *Watcher) Snapshot() WatcherSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := WatcherSnapshot{
		BurstWindow:     w.BurstWindow,
		ReorderWindow:   w.ReorderWindow,
		ReorderLimit:    w.ReorderLimit,
		EvictionHorizon: w.EvictionHorizon,
		LastTerminal:    copyTimes(w.lastTerminal),
		LastExternal:    copyTimes(w.lastExternal),
		LastAlarm:       copyTimes(w.lastAlarm),
		CandidateSigs:   w.candidateSigsLocked(),
		Watermark:       w.watermark,
		LastEvict:       w.lastEvict,
		Stats:           w.stats,
	}
	if len(w.recent) > 0 {
		s.Recent = make(map[cname.Name][]PrecursorEvent, len(w.recent))
		for n, evs := range w.recent {
			out := make([]PrecursorEvent, len(evs))
			for i, e := range evs {
				out[i] = PrecursorEvent{Time: e.t, Category: e.cat}
			}
			s.Recent[n] = out
		}
	}
	if len(w.apids) > 0 {
		s.Apids = make(map[int64]int64, len(w.apids))
		for k, v := range w.apids {
			s.Apids[k] = v
		}
		s.ApidSeen = make(map[int64]time.Time, len(w.apidSeen))
		for k, v := range w.apidSeen {
			s.ApidSeen[k] = v
		}
	}
	if len(w.buf) > 0 {
		s.Buffer = append([]events.Record(nil), w.buf...)
	}
	return s
}

// Restore replaces the watcher's state with the snapshot's (deep-copied;
// the snapshot stays usable). The watcher keeps its Config and
// callbacks. Restore before the first Feed.
func (w *Watcher) Restore(s WatcherSnapshot) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.BurstWindow = s.BurstWindow
	w.ReorderWindow = s.ReorderWindow
	w.ReorderLimit = s.ReorderLimit
	w.EvictionHorizon = s.EvictionHorizon

	w.lastTerminal = copyTimes(s.LastTerminal)
	if w.lastTerminal == nil {
		w.lastTerminal = make(map[cname.Name]time.Time)
	}
	w.lastExternal = copyTimes(s.LastExternal)
	if w.lastExternal == nil {
		w.lastExternal = make(map[cname.Name]time.Time)
	}
	w.lastAlarm = copyTimes(s.LastAlarm)
	if w.lastAlarm == nil {
		w.lastAlarm = make(map[cname.Name]time.Time)
	}
	w.recent = make(map[cname.Name][]watchEvent, len(s.Recent))
	for n, evs := range s.Recent {
		in := make([]watchEvent, len(evs))
		for i, e := range evs {
			in[i] = watchEvent{t: e.Time, cat: e.Category}
		}
		w.recent[n] = in
	}
	w.apids = make(map[int64]int64, len(s.Apids))
	for k, v := range s.Apids {
		w.apids[k] = v
	}
	w.apidSeen = make(map[int64]time.Time, len(s.ApidSeen))
	for k, v := range s.ApidSeen {
		w.apidSeen[k] = v
	}
	w.candidateSeen = nil
	if len(s.CandidateSigs) > 0 {
		w.candidateSeen = make(map[string]bool, len(s.CandidateSigs))
		for _, sig := range s.CandidateSigs {
			w.candidateSeen[sig] = true
		}
	}
	w.buf = append(recordHeap(nil), s.Buffer...)
	heap.Init(&w.buf)
	w.watermark = s.Watermark
	w.lastEvict = s.LastEvict
	w.stats = s.Stats
}
