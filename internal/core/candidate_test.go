package core

import "testing"

func TestNoteCandidateSuppressesRepeats(t *testing.T) {
	var got []Candidate
	w := NewWatcher(DefaultConfig(), func(Detection) {})
	w.OnCandidate = func(c Candidate) { got = append(got, c) }

	c := Candidate{Signature: "mined_opensmd_subnet_sweep", Template: "opensmd: SUBNET SWEEP <*>", Count: 16}
	w.NoteCandidate(c)
	w.NoteCandidate(c)
	w.NoteCandidate(Candidate{Signature: "mined_nvsmd_xid", Template: "nvsmd: XID <*>", Count: 64})
	if len(got) != 2 {
		t.Fatalf("surfaced %d candidates, want 2", len(got))
	}
	if w.Stats().Candidates != 2 {
		t.Fatalf("stats = %+v", w.Stats())
	}

	// Suppression survives a snapshot/restore round-trip.
	snap := w.Snapshot()
	if len(snap.CandidateSigs) != 2 {
		t.Fatalf("snapshot sigs = %v", snap.CandidateSigs)
	}
	w2 := NewWatcher(DefaultConfig(), func(Detection) {})
	var got2 []Candidate
	w2.OnCandidate = func(c Candidate) { got2 = append(got2, c) }
	w2.Restore(snap)
	w2.NoteCandidate(c)
	if len(got2) != 0 {
		t.Fatalf("restored watcher re-announced %v", got2)
	}
	w2.NoteCandidate(Candidate{Signature: "mined_fresh", Template: "fresh <*>"})
	if len(got2) != 1 {
		t.Fatalf("restored watcher missed fresh candidate")
	}
}
