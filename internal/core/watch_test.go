package core

import (
	"testing"
	"time"

	"hpcfail/internal/events"
)

func TestWatcherMatchesBatchDetection(t *testing.T) {
	_, store := buildScenario(t, 7, 307)
	batch := Detect(store.All(), DefaultConfig())

	var streamed []Detection
	w := NewWatcher(DefaultConfig(), func(d Detection) { streamed = append(streamed, d) })
	w.FeedAll(store.All())

	if len(streamed) != len(batch) {
		t.Fatalf("watcher found %d failures, batch found %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i].Node != batch[i].Node || !streamed[i].Time.Equal(batch[i].Time) {
			t.Fatalf("detection %d differs: %+v vs %+v", i, streamed[i], batch[i])
		}
	}
}

func TestWatcherRefractory(t *testing.T) {
	var dets []Detection
	w := NewWatcher(DefaultConfig(), func(d Detection) { dets = append(dets, d) })
	mk := func(offset time.Duration, cat string) events.Record {
		return consoleRec(unitStart.Add(offset), nodeA, cat, events.SevCritical)
	}
	w.Feed(mk(0, "kernel_panic"))
	w.Feed(mk(5*time.Second, "node_shutdown"))  // merged
	w.Feed(mk(40*time.Minute, "node_shutdown")) // new failure
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2", len(dets))
	}
}

func TestWatcherIgnoresScheduled(t *testing.T) {
	var dets []Detection
	w := NewWatcher(DefaultConfig(), func(d Detection) { dets = append(dets, d) })
	r := consoleRec(unitStart, nodeA, "node_shutdown", events.SevInfo)
	r.SetField("intent", "scheduled")
	w.Feed(r)
	if len(dets) != 0 {
		t.Error("scheduled shutdown should not detect")
	}
}

func TestWatcherAlarms(t *testing.T) {
	var alarms []Alarm
	w := NewWatcher(DefaultConfig(), func(Detection) {})
	w.OnAlarm = func(a Alarm) { alarms = append(alarms, a) }

	// External indicator arrives first, then a two-category burst.
	w.Feed(erdRec(unitStart, nodeA, "ec_hw_errors"))
	w.Feed(consoleRec(unitStart.Add(5*time.Minute), nodeA, "mem_err_correctable", events.SevWarning))
	w.Feed(consoleRec(unitStart.Add(7*time.Minute), nodeA, "mce", events.SevError))
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1", len(alarms))
	}
	if !alarms[0].HasExternal {
		t.Error("alarm should carry external corroboration")
	}
	// Repeat within refractory: suppressed.
	w.Feed(consoleRec(unitStart.Add(8*time.Minute), nodeA, "mce", events.SevError))
	if len(alarms) != 1 {
		t.Error("repeat alarm not suppressed")
	}
	// Single-category chatter on another node: no alarm.
	w.Feed(consoleRec(unitStart, nodeB, "mce", events.SevError))
	w.Feed(consoleRec(unitStart.Add(time.Minute), nodeB, "mce", events.SevError))
	if len(alarms) != 1 {
		t.Error("single-category burst should not alarm")
	}
}

func TestWatcherAlarmWithoutExternal(t *testing.T) {
	var alarms []Alarm
	w := NewWatcher(DefaultConfig(), func(Detection) {})
	w.OnAlarm = func(a Alarm) { alarms = append(alarms, a) }
	w.Feed(consoleRec(unitStart, nodeA, "lustre_bug", events.SevError))
	w.Feed(consoleRec(unitStart.Add(time.Minute), nodeA, "dvs_error", events.SevError))
	if len(alarms) != 1 || alarms[0].HasExternal {
		t.Fatalf("alarms = %+v", alarms)
	}
	// Application patterns never alarm.
	w.Feed(consoleRec(unitStart.Add(time.Hour), nodeB, "oom_killer", events.SevError))
	w.Feed(consoleRec(unitStart.Add(time.Hour+time.Minute), nodeB, "app_exit_abnormal", events.SevError))
	if len(alarms) != 1 {
		t.Error("application burst should not alarm")
	}
}

func TestWatcherBurstWindowPruning(t *testing.T) {
	var alarms []Alarm
	w := NewWatcher(DefaultConfig(), func(Detection) {})
	w.OnAlarm = func(a Alarm) { alarms = append(alarms, a) }
	// Two categories but 11 minutes apart: outside the burst window.
	w.Feed(consoleRec(unitStart, nodeA, "mem_err_correctable", events.SevWarning))
	w.Feed(consoleRec(unitStart.Add(11*time.Minute), nodeA, "mce", events.SevError))
	if len(alarms) != 0 {
		t.Errorf("distant events should not pair: %+v", alarms)
	}
}
