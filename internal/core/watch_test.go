package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hpcfail/internal/chaos"
	"hpcfail/internal/cname"
	"hpcfail/internal/events"
)

func TestWatcherMatchesBatchDetection(t *testing.T) {
	_, store := buildScenario(t, 7, 307)
	batch := Detect(store.All(), DefaultConfig())

	var streamed []Detection
	w := NewWatcher(DefaultConfig(), func(d Detection) { streamed = append(streamed, d) })
	w.FeedAll(store.All())

	if len(streamed) != len(batch) {
		t.Fatalf("watcher found %d failures, batch found %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i].Node != batch[i].Node || !streamed[i].Time.Equal(batch[i].Time) {
			t.Fatalf("detection %d differs: %+v vs %+v", i, streamed[i], batch[i])
		}
	}
}

func TestWatcherRefractory(t *testing.T) {
	var dets []Detection
	w := NewWatcher(DefaultConfig(), func(d Detection) { dets = append(dets, d) })
	mk := func(offset time.Duration, cat string) events.Record {
		return consoleRec(unitStart.Add(offset), nodeA, cat, events.SevCritical)
	}
	w.Feed(mk(0, "kernel_panic"))
	w.Feed(mk(5*time.Second, "node_shutdown"))  // merged
	w.Feed(mk(40*time.Minute, "node_shutdown")) // new failure
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2", len(dets))
	}
}

func TestWatcherIgnoresScheduled(t *testing.T) {
	var dets []Detection
	w := NewWatcher(DefaultConfig(), func(d Detection) { dets = append(dets, d) })
	r := consoleRec(unitStart, nodeA, "node_shutdown", events.SevInfo)
	r.SetField("intent", "scheduled")
	w.Feed(r)
	if len(dets) != 0 {
		t.Error("scheduled shutdown should not detect")
	}
}

func TestWatcherAlarms(t *testing.T) {
	var alarms []Alarm
	w := NewWatcher(DefaultConfig(), func(Detection) {})
	w.OnAlarm = func(a Alarm) { alarms = append(alarms, a) }

	// External indicator arrives first, then a two-category burst.
	w.Feed(erdRec(unitStart, nodeA, "ec_hw_errors"))
	w.Feed(consoleRec(unitStart.Add(5*time.Minute), nodeA, "mem_err_correctable", events.SevWarning))
	w.Feed(consoleRec(unitStart.Add(7*time.Minute), nodeA, "mce", events.SevError))
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1", len(alarms))
	}
	if !alarms[0].HasExternal {
		t.Error("alarm should carry external corroboration")
	}
	// Repeat within refractory: suppressed.
	w.Feed(consoleRec(unitStart.Add(8*time.Minute), nodeA, "mce", events.SevError))
	if len(alarms) != 1 {
		t.Error("repeat alarm not suppressed")
	}
	// Single-category chatter on another node: no alarm.
	w.Feed(consoleRec(unitStart, nodeB, "mce", events.SevError))
	w.Feed(consoleRec(unitStart.Add(time.Minute), nodeB, "mce", events.SevError))
	if len(alarms) != 1 {
		t.Error("single-category burst should not alarm")
	}
}

func TestWatcherAlarmWithoutExternal(t *testing.T) {
	var alarms []Alarm
	w := NewWatcher(DefaultConfig(), func(Detection) {})
	w.OnAlarm = func(a Alarm) { alarms = append(alarms, a) }
	w.Feed(consoleRec(unitStart, nodeA, "lustre_bug", events.SevError))
	w.Feed(consoleRec(unitStart.Add(time.Minute), nodeA, "dvs_error", events.SevError))
	if len(alarms) != 1 || alarms[0].HasExternal {
		t.Fatalf("alarms = %+v", alarms)
	}
	// Application patterns never alarm.
	w.Feed(consoleRec(unitStart.Add(time.Hour), nodeB, "oom_killer", events.SevError))
	w.Feed(consoleRec(unitStart.Add(time.Hour+time.Minute), nodeB, "app_exit_abnormal", events.SevError))
	if len(alarms) != 1 {
		t.Error("application burst should not alarm")
	}
}

func TestWatcherBurstWindowPruning(t *testing.T) {
	var alarms []Alarm
	w := NewWatcher(DefaultConfig(), func(Detection) {})
	w.OnAlarm = func(a Alarm) { alarms = append(alarms, a) }
	// Two categories but 11 minutes apart: outside the burst window.
	w.Feed(consoleRec(unitStart, nodeA, "mem_err_correctable", events.SevWarning))
	w.Feed(consoleRec(unitStart.Add(11*time.Minute), nodeA, "mce", events.SevError))
	if len(alarms) != 0 {
		t.Errorf("distant events should not pair: %+v", alarms)
	}
}

func TestWatcherReorderBufferMatchesBatchUnderShuffle(t *testing.T) {
	_, store := buildScenario(t, 7, 307)
	batch := Detect(store.All(), DefaultConfig())

	inj := chaos.New(chaos.Config{Seed: 9, Shuffle: 1, ShuffleWindow: 8})
	shuffled := inj.CorruptRecords(store.All())
	if inj.Report.Shuffled == 0 {
		t.Fatal("chaos shuffle did not move anything")
	}

	var streamed []Detection
	w := NewWatcher(DefaultConfig(), func(d Detection) { streamed = append(streamed, d) })
	w.ReorderWindow = time.Hour
	w.ReorderLimit = len(shuffled)
	w.FeedAll(shuffled)

	if w.Stats().Reordered == 0 {
		t.Error("watcher saw no out-of-order arrivals despite shuffle")
	}
	if len(streamed) != len(batch) {
		t.Fatalf("reordered watcher found %d failures, batch found %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i].Node != batch[i].Node || !streamed[i].Time.Equal(batch[i].Time) {
			t.Fatalf("detection %d differs under shuffle: %+v vs %+v", i, streamed[i], batch[i])
		}
	}
	if got, want := w.StateSize().Nodes, len(store.Nodes()); got > want {
		t.Errorf("watcher retains %d nodes, store only has %d", got, want)
	}
}

func TestWatcherReorderRestoresRefractoryMerge(t *testing.T) {
	mk := func(offset time.Duration, cat string) events.Record {
		return consoleRec(unitStart.Add(offset), nodeA, cat, events.SevCritical)
	}
	// Arrival order inverts time order: the 5s follow-up lands first.
	arrivals := []events.Record{mk(5*time.Second, "node_shutdown"), mk(0, "kernel_panic")}

	var plain []Detection
	w := NewWatcher(DefaultConfig(), func(d Detection) { plain = append(plain, d) })
	w.FeedAll(arrivals)
	if len(plain) != 1 || !plain[0].Time.Equal(unitStart.Add(5*time.Second)) {
		t.Fatalf("passthrough watcher detections = %+v", plain)
	}

	var buffered []Detection
	w = NewWatcher(DefaultConfig(), func(d Detection) { buffered = append(buffered, d) })
	w.ReorderWindow = 10 * time.Minute
	w.FeedAll(arrivals)
	if len(buffered) != 1 {
		t.Fatalf("buffered watcher detections = %d, want 1", len(buffered))
	}
	// Re-sequenced, the merge anchors on the true first terminal event.
	if !buffered[0].Time.Equal(unitStart) || buffered[0].Terminal != "kernel_panic" {
		t.Errorf("buffered detection = %+v, want kernel_panic at t0", buffered[0])
	}
}

func TestWatcherReorderRestoresBurstCorroboration(t *testing.T) {
	// The external indicator is earliest in time but arrives last.
	arrivals := []events.Record{
		consoleRec(unitStart.Add(7*time.Minute), nodeA, "mce", events.SevError),
		consoleRec(unitStart.Add(5*time.Minute), nodeA, "mem_err_correctable", events.SevWarning),
		erdRec(unitStart, nodeA, "ec_hw_errors"),
	}

	var plain []Alarm
	w := NewWatcher(DefaultConfig(), func(Detection) {})
	w.OnAlarm = func(a Alarm) { plain = append(plain, a) }
	w.FeedAll(arrivals)
	if len(plain) != 1 || plain[0].HasExternal {
		t.Fatalf("passthrough alarms = %+v, want one uncorroborated", plain)
	}

	var buffered []Alarm
	w = NewWatcher(DefaultConfig(), func(Detection) {})
	w.OnAlarm = func(a Alarm) { buffered = append(buffered, a) }
	w.ReorderWindow = 15 * time.Minute
	w.FeedAll(arrivals)
	if len(buffered) != 1 {
		t.Fatalf("buffered alarms = %d, want 1", len(buffered))
	}
	if !buffered[0].HasExternal {
		t.Error("re-sequenced burst should see the earlier external indicator")
	}
}

func TestWatcherEvictionBoundsState(t *testing.T) {
	// A week of hourly terminal + precursor + external events, each hour
	// on a node never seen again: unbounded state would grow to 168
	// nodes, the 24h horizon must keep roughly a day's worth.
	var recs []events.Record
	for h := 0; h < 7*24; h++ {
		node := cname.MustParse(fmt.Sprintf("c%d-0c0s0n0", h))
		at := unitStart.Add(time.Duration(h) * time.Hour)
		recs = append(recs,
			erdRec(at, node, "ec_hw_errors"),
			consoleRec(at.Add(time.Minute), node, "mce", events.SevError),
			consoleRec(at.Add(2*time.Minute), node, "kernel_panic", events.SevCritical))
	}

	unbounded := NewWatcher(DefaultConfig(), func(Detection) {})
	unbounded.OnAlarm = func(Alarm) {}
	unbounded.EvictionHorizon = -1
	unbounded.FeedAll(recs)
	if got := unbounded.StateSize().Nodes; got != 7*24 {
		t.Fatalf("unbounded watcher retains %d nodes, want %d", got, 7*24)
	}

	w := NewWatcher(DefaultConfig(), func(Detection) {})
	w.OnAlarm = func(Alarm) {}
	w.FeedAll(recs)
	// Horizon 24h plus up to a quarter-horizon of sweep lag: at most
	// ~31 hourly nodes may legitimately survive.
	if got := w.StateSize().Nodes; got > 32 {
		t.Errorf("evicting watcher retains %d nodes, want <= 32", got)
	}
	if got := w.Stats().Evicted; got < 100 {
		t.Errorf("evicted = %d, want >= 100 over a week of one-shot nodes", got)
	}
	// Same detections either way: eviction never changes what is found.
	var a, b int
	wa := NewWatcher(DefaultConfig(), func(Detection) { a++ })
	wa.EvictionHorizon = -1
	wa.FeedAll(recs)
	wb := NewWatcher(DefaultConfig(), func(Detection) { b++ })
	wb.FeedAll(recs)
	if a != b {
		t.Errorf("eviction changed detection count: %d vs %d", b, a)
	}
}

func TestWatcherApidEviction(t *testing.T) {
	w := NewWatcher(DefaultConfig(), func(Detection) {})
	for h := 0; h < 7*24; h++ {
		r := events.Record{Time: unitStart.Add(time.Duration(h) * time.Hour),
			Stream: events.StreamALPS, Category: "alps_launch", JobID: int64(1000 + h),
			Msg: "launched"}
		r.SetField("apid", fmt.Sprintf("%d", 5000+h))
		w.Feed(r)
	}
	if got := w.StateSize().Apids; got > 32 {
		t.Errorf("apid map retains %d entries after a week, want <= 32", got)
	}
}

// TestWatcherConcurrentFeedMatchesBatch feeds the corpus from several
// goroutines partitioned by node (so each node's records keep their
// time order) and checks the detection count against batch Detect.
// Per-node refractory state is independent across nodes, so the
// node-partitioned concurrent feed must find exactly the batch result.
func TestWatcherConcurrentFeedMatchesBatch(t *testing.T) {
	_, store := buildScenario(t, 7, 307)
	recs := store.All()
	batch := Detect(recs, DefaultConfig())

	var mu sync.Mutex
	var dets []Detection
	w := NewWatcher(DefaultConfig(), func(d Detection) {
		mu.Lock()
		dets = append(dets, d)
		mu.Unlock()
	})
	// Disable eviction: extreme inter-feeder skew could otherwise push
	// the watermark a full horizon past a lagging feeder's refractory
	// state.
	w.EvictionHorizon = -1

	const feeders = 4
	parts := make([][]events.Record, feeders)
	for _, r := range recs {
		var h uint64
		for _, b := range []byte(r.Component.String()) {
			h = h*131 + uint64(b)
		}
		parts[h%feeders] = append(parts[h%feeders], r)
	}
	var wg sync.WaitGroup
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(part []events.Record) {
			defer wg.Done()
			for i := range part {
				w.Feed(part[i])
			}
		}(parts[g])
	}
	wg.Wait()
	w.Flush()

	if len(dets) != len(batch) {
		t.Fatalf("concurrent feed found %d detections, batch %d", len(dets), len(batch))
	}
	if got := w.Stats().Fed; got != len(recs) {
		t.Fatalf("Fed = %d, want %d", got, len(recs))
	}
}

// TestWatcherConcurrentFeedFlush hammers Feed, Flush, Stats and
// StateSize from concurrent goroutines with the reorder buffer and an
// aggressive eviction horizon both active — the -race gate for the
// watcher's internal mutex. Interleaving makes exact output
// unspecified; the test asserts the accounting invariants that must
// hold under any schedule.
func TestWatcherConcurrentFeedFlush(t *testing.T) {
	_, store := buildScenario(t, 7, 307)
	recs := store.All()

	var mu sync.Mutex
	dets := 0
	w := NewWatcher(DefaultConfig(), func(Detection) {
		mu.Lock()
		dets++
		mu.Unlock()
	})
	w.OnAlarm = func(Alarm) {}
	w.ReorderWindow = 30 * time.Minute
	w.ReorderLimit = 64
	w.EvictionHorizon = 2 * time.Hour

	const feeders = 4
	var wg sync.WaitGroup
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(recs); i += feeders {
				w.Feed(recs[i])
			}
		}(g)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				w.Flush()
				_ = w.Stats()
				_ = w.StateSize()
			}
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()
	w.Flush()

	s := w.Stats()
	if s.Fed != len(recs) {
		t.Fatalf("Fed = %d, want %d", s.Fed, len(recs))
	}
	if s.Buffered != 0 {
		t.Fatalf("reorder buffer not drained: %d", s.Buffered)
	}
	if dets == 0 {
		t.Fatal("no detections under concurrent feed")
	}
}
