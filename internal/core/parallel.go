package core

import (
	"runtime"
	"sort"
	"sync"

	"hpcfail/internal/alps"
	"hpcfail/internal/logparse"
	"hpcfail/internal/logstore"
)

// diagnosePool fans per-failure diagnosis across a worker pool. The
// store behind rc is immutable and Diagnose only reads it, so workers
// share it without locking; each worker gets its own RootCauser clone
// because the window-memoization cache is single-goroutine. Diagnoses
// stay aligned with detections.
func diagnosePool(rc *RootCauser, dets []Detection, workers int) []Diagnosis {
	diags := make([]Diagnosis, len(dets))
	if workers > len(dets) {
		workers = len(dets)
	}
	if workers <= 1 {
		for i, d := range dets {
			diags[i] = rc.Diagnose(d)
		}
		return diags
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wrc := rc.clone()
			for i := range next {
				diags[i] = wrc.Diagnose(dets[i])
			}
		}()
	}
	for i := range dets {
		next <- i
	}
	close(next)
	wg.Wait()
	return diags
}

// RunParallel is Run with the per-failure diagnosis fanned out across
// a worker pool. Output is identical to Run.
//
// workers <= 0 selects GOMAXPROCS. For month-scale corpora with
// hundreds of failures the speedup approaches the core count; for small
// inputs the fan-out overhead makes Run the better choice.
func RunParallel(store *logstore.Store, cfg Config, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs, apids, dets := scanStore(store.All(), cfg)
	rc := &RootCauser{Store: store, Jobs: jobs, Cfg: cfg, Apids: apids}
	deg := AssessDegradation(store)
	diags := diagnosePool(rc, dets, workers)
	applyDegradation(diags, deg)
	return &Result{Store: store, Jobs: jobs, Detections: dets, Diagnoses: diags, Degradation: deg}
}

// DetectSharded runs failure detection shard-locally (in parallel) and
// merges the per-shard detections back into the sequential order.
//
// Correctness: the refractory state in Detect is keyed by node, and the
// shard key keeps every record of a node in one shard in merged-order
// relative order — so per-shard detection finds exactly the detections
// sequential Detect would emit for that shard's nodes. Sequential
// Detect emits in merged record order, which is (time, arrival-seq)
// lexicographic; sorting the tagged per-shard detections by that key
// reproduces it exactly.
func DetectSharded(ss *logstore.ShardedStore, cfg Config, workers int) []Detection {
	n := ss.NumShards()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	type tagged struct {
		det Detection
		seq int64
	}
	perShard := make([][]tagged, n)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				recs := ss.Shard(i).All()
				seqs := ss.ShardSeq(i)
				for _, idx := range detectIndices(recs, cfg) {
					r := &recs[idx]
					perShard[i] = append(perShard[i], tagged{
						det: Detection{Node: r.Component, Time: r.Time, Terminal: r.Category, JobID: r.JobID},
						seq: seqs[idx],
					})
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	var all []tagged
	for _, ts := range perShard {
		all = append(all, ts...)
	}
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].det.Time.Equal(all[j].det.Time) {
			return all[i].seq < all[j].seq
		}
		return all[i].det.Time.Before(all[j].det.Time)
	})
	out := make([]Detection, len(all))
	for i, t := range all {
		out[i] = t.det
	}
	return out
}

// RunSharded executes the full methodology over a sharded store without
// ever touching its merged view on the hot path: detection runs
// per-shard, the job table and apid index come from the store's
// scheduler/ALPS side-channels, and diagnosis windows resolve inside
// each node's own shard. The merged global store builds in the
// background (kicked off by Seal) and is only awaited at the very end
// to fill Result.Store — so diagnosis overlaps the merge instead of
// waiting behind it.
//
// Output is identical to Run over logstore.New of the same records in
// the same arrival order — the sequential-equivalence invariant the
// TestShardedEquivalence harness enforces.
func RunSharded(ss *logstore.ShardedStore, cfg Config, workers int) *Result {
	return runSharded(ss, cfg, workers, 0)
}

// RunShardedReport is RunSharded with the ingestion supervisor's ledger
// folded into the degradation assessment: chunks the loader poisoned or
// a circuit breaker dropped lower every diagnosis's confidence and are
// named in its evidence note. A load that limped home degraded — I/O
// faults, stalled or panicking workers — still diagnoses, it just says
// so. rep may be nil (equivalent to RunSharded).
func RunShardedReport(ss *logstore.ShardedStore, rep *logstore.IngestReport, cfg Config, workers int) *Result {
	lost := 0
	if rep != nil {
		lost = rep.LostChunks()
	}
	return runSharded(ss, cfg, workers, lost)
}

func runSharded(ss *logstore.ShardedStore, cfg Config, workers int, lostChunks int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := logparse.JobsFromRecords(ss.SchedulerRecords())
	rc := &RootCauser{Store: ss, Jobs: jobs, Cfg: cfg, Apids: alps.IndexFromRecords(ss.ALPSRecords())}
	dets := DetectSharded(ss, cfg, workers)
	deg := AssessShardedDegradation(ss)
	deg.LostChunks = lostChunks
	diags := diagnosePool(rc, dets, workers)
	applyDegradation(diags, deg)
	return &Result{Store: ss.Merged(), Jobs: jobs, Detections: dets, Diagnoses: diags, Degradation: deg}
}
