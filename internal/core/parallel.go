package core

import (
	"runtime"
	"sync"

	"hpcfail/internal/alps"
	"hpcfail/internal/logparse"
	"hpcfail/internal/logstore"
)

// RunParallel is Run with the per-failure diagnosis fanned out across
// a worker pool. The store is immutable after construction and
// Diagnose only reads it, so workers share it without locking. Output
// is identical to Run — diagnoses stay aligned with detections.
//
// workers <= 0 selects GOMAXPROCS. For month-scale corpora with
// hundreds of failures the speedup approaches the core count; for small
// inputs the fan-out overhead makes Run the better choice.
func RunParallel(store *logstore.Store, cfg Config, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := logparse.JobsFromRecords(store.All())
	rc := &RootCauser{Store: store, Jobs: jobs, Cfg: cfg, Apids: alps.IndexFromRecords(store.All())}
	dets := Detect(store.All(), cfg)
	diags := make([]Diagnosis, len(dets))

	if workers > len(dets) {
		workers = len(dets)
	}
	deg := AssessDegradation(store)
	if workers <= 1 {
		for i, d := range dets {
			diags[i] = rc.Diagnose(d)
		}
		applyDegradation(diags, deg)
		return &Result{Store: store, Jobs: jobs, Detections: dets, Diagnoses: diags, Degradation: deg}
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				diags[i] = rc.Diagnose(dets[i])
			}
		}()
	}
	for i := range dets {
		next <- i
	}
	close(next)
	wg.Wait()
	applyDegradation(diags, deg)
	return &Result{Store: store, Jobs: jobs, Detections: dets, Diagnoses: diags, Degradation: deg}
}
