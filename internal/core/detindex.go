package core

import (
	"sort"
	"time"

	"hpcfail/internal/cname"
)

// DetectionIndex answers "is there a detection on this node inside this
// time range?" with a binary search over per-node time-sorted detection
// lists, replacing the O(detections) scans the correlator and the
// false-positive predictor used to run once per NHF/NVF event and per
// alarm. Build once per detection list; reads are concurrency-safe.
type DetectionIndex struct {
	byNode map[cname.Name][]time.Time
}

// NewDetectionIndex builds the per-node index. The input need not be
// sorted; each node's list is sorted at build time.
func NewDetectionIndex(dets []Detection) *DetectionIndex {
	m := make(map[cname.Name][]time.Time)
	for _, d := range dets {
		m[d.Node] = append(m[d.Node], d.Time)
	}
	for _, ts := range m {
		sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
	}
	return &DetectionIndex{byNode: m}
}

// AnyBetween reports whether the node has a detection with
// lo <= Time <= hi (both bounds inclusive).
func (ix *DetectionIndex) AnyBetween(node cname.Name, lo, hi time.Time) bool {
	ts := ix.byNode[node]
	i := sort.Search(len(ts), func(k int) bool { return !ts[k].Before(lo) })
	return i < len(ts) && !ts[i].After(hi)
}
