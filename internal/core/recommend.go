package core

import (
	"fmt"
	"sort"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/faults"
)

// Recommendation is one actionable operator suggestion derived from
// measured failure behaviour — the executable form of the paper's
// Table VI (findings → suggested recommendations).
type Recommendation struct {
	// Finding states the measured condition that fired the rule.
	Finding string
	// Action is the paper's suggested response.
	Action string
	// Severity ranks urgency: 2 = act now, 1 = plan, 0 = informational.
	Severity int
}

// BuggyJob is a job implicated in repeated node failures — the paper's
// "track the buggy APID" recommendation target.
type BuggyJob struct {
	JobID    int64
	App      string
	Failures int
}

// BuggyJobs returns jobs with at least minFailures attributed failures,
// most damaging first.
func (a *JobAnalyzer) BuggyJobs(minFailures int) []BuggyJob {
	apps := map[int64]string{}
	for i := range a.Jobs {
		apps[a.Jobs[i].ID] = a.Jobs[i].App
	}
	counts := map[int64]int{}
	for _, d := range a.Diagnoses {
		if d.JobID != 0 {
			counts[d.JobID]++
		}
	}
	var out []BuggyJob
	for id, n := range counts {
		if n >= minFailures {
			out = append(out, BuggyJob{JobID: id, App: apps[id], Failures: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Failures != out[j].Failures {
			return out[i].Failures > out[j].Failures
		}
		return out[i].JobID < out[j].JobID
	})
	return out
}

// Recommend derives Table VI-style recommendations from a pipeline
// result. Every rule is driven by a measured statistic, so the output
// changes with the system's actual behaviour.
func Recommend(res *Result) []Recommendation {
	var out []Recommendation
	n := len(res.Diagnoses)
	if n == 0 {
		return nil
	}

	// Finding 1: daily failures share root causes → make reactive
	// schemes cause-aware.
	days := res.DominantDailyCauses(3)
	highShare := 0
	for _, d := range days {
		if d.Share >= 0.5 {
			highShare++
		}
	}
	if len(days) > 0 && highShare*2 >= len(days) {
		out = append(out, Recommendation{
			Severity: 1,
			Finding: fmt.Sprintf("%d of %d multi-failure days are dominated by a single root cause",
				highShare, len(days)),
			Action: "consult the dominant cause and failure temporal locality before launching checkpoint/restart — fixing the dominant fault recovers most of the day's failures",
		})
	}

	// Finding 2: lead-time enhancement is available → wire external
	// correlations into prediction.
	lt := SummarizeLeadTimes(res.Diagnoses)
	if lt.Enhanceable > 0 {
		out = append(out, Recommendation{
			Severity: 1,
			Finding: fmt.Sprintf("%d of %d failures (%.0f%%) showed early external indicators extending lead times %.1fx",
				lt.Enhanceable, lt.Total, lt.EnhanceableFraction()*100, lt.MeanFactor),
			Action: "incorporate blade/cabinet external correlations (ec_hw_errors, NVFs, link errors) into failure prediction for proactive fault tolerance",
		})
	}

	// Finding 3: application-triggered failures → inform users / block
	// jobs instead of quarantining nodes.
	appTriggered := 0
	for _, d := range res.Diagnoses {
		if d.AppTriggered {
			appTriggered++
		}
	}
	if frac := float64(appTriggered) / float64(n); frac >= 0.25 {
		out = append(out, Recommendation{
			Severity: 2,
			Finding: fmt.Sprintf("%.0f%% of failures are application-triggered (OOM, abnormal exits, job-prompted FS bugs)",
				frac*100),
			Action: "do not quarantine the nodes — they recover under new jobs; notify the submitting users and consider NHC-level blocking of the buggy executables",
		})
	}

	// Finding 4: specific buggy jobs → track APIDs.
	if buggy := res.JobAnalyzer().BuggyJobs(3); len(buggy) > 0 {
		top := buggy[0]
		out = append(out, Recommendation{
			Severity: 2,
			Finding: fmt.Sprintf("%d job(s) each triggered 3+ node failures (worst: job %d/%s with %d)",
				len(buggy), top.JobID, top.App, top.Failures),
			Action: "add an NHC health test tracking buggy APIDs: repeated abnormal application exits should flag the job, not just admindown the nodes",
		})
	}

	// Finding 5: unknown causes → operator/vendor follow-up.
	if unknown := res.CauseBreakdown()[faults.CauseUnknown]; unknown > 0 {
		out = append(out, Recommendation{
			Severity: 0,
			Finding:  fmt.Sprintf("%d failures have no deducible root cause (silent shutdowns, opaque BIOS/L0 patterns)", unknown),
			Action:   "escalate to operators/vendor: these may be manual shutdowns by accident or require vendor-level instrumentation (Observation 9)",
		})
	}

	// Finding 6: kernel oops with long traces → automate trace mining.
	withTraces := 0
	for _, d := range res.Diagnoses {
		if d.KeySymbol != "" {
			withTraces++
		}
	}
	if frac := float64(withTraces) / float64(n); frac >= 0.3 {
		out = append(out, Recommendation{
			Severity: 0,
			Finding:  fmt.Sprintf("%.0f%% of failures carried classifiable kernel call traces", frac*100),
			Action:   "a machine-learning-guided study of call traces can further narrow buggy code paths and segregate job-triggered from job-caused failures",
		})
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// NodeAction is one per-node actionable item derived from a diagnosis —
// the bridge between post-hoc analysis and the remediation engine's
// condition vocabulary. Kind uses the remedy SOP names ("admindown",
// "suspect", "notify").
type NodeAction struct {
	// Node is the node to act on.
	Node cname.Name
	// Kind names the action ("admindown", "suspect", "notify").
	Kind string
	// Time is the diagnosed failure time the action responds to.
	Time time.Time
	// Cause is the root-cause bucket driving the choice of action.
	Cause string
	// JobID is the implicated job for notify actions (0 when none).
	JobID int64
}

// RecommendActions projects a pipeline result onto per-node actions in
// a fully deterministic order: stable sort by node (canonical cname
// order), then kind. The remediation queue consumes this list, so the
// ordering is load-bearing — two runs over the same result must enqueue
// identically.
func RecommendActions(res *Result) []NodeAction {
	var out []NodeAction
	for _, d := range res.Diagnoses {
		det := d.Detection
		switch {
		case d.AppTriggered:
			// App-triggered failures recover under new jobs; the action
			// targets the job's owner, not the node (Finding 3).
			out = append(out, NodeAction{
				Node: det.Node, Kind: "notify", Time: det.Time,
				Cause: d.Cause.String(), JobID: d.JobID,
			})
			out = append(out, NodeAction{
				Node: det.Node, Kind: "suspect", Time: det.Time,
				Cause: d.Cause.String(),
			})
		default:
			out = append(out, NodeAction{
				Node: det.Node, Kind: "admindown", Time: det.Time,
				Cause: d.Cause.String(), JobID: d.JobID,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ki, iok := out[i].Node.Key()
		kj, jok := out[j].Node.Key()
		switch {
		case iok && jok && ki != kj:
			return ki < kj
		case iok != jok:
			return iok // valid names before invalid ones
		}
		if a, b := out[i].Node.String(), out[j].Node.String(); a != b {
			return a < b
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		// Total order even for repeat failures on one node: time, then
		// cause, then job — input order never shows through.
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		if out[i].Cause != out[j].Cause {
			return out[i].Cause < out[j].Cause
		}
		return out[i].JobID < out[j].JobID
	})
	return out
}
