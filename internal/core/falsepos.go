package core

import (
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/logstore"
	"hpcfail/internal/stats"
)

// Alarm is one failure prediction raised from internal log patterns.
type Alarm struct {
	Node cname.Name
	Time time.Time
	// HasExternal reports whether an external indicator corroborated
	// the alarm.
	HasExternal bool
	// Hit reports whether a failure followed within the horizon.
	Hit bool
}

// Predictor implements the simple correlation-based failure predictor
// whose false-positive behaviour Fig 14 studies: an alarm is raised
// when a node logs two or more distinct indicative internal categories
// within a short burst window. With external correlation enabled, the
// alarm additionally requires an external indicator near the burst.
type Predictor struct {
	Store *logstore.Store
	Cfg   Config
	// Horizon is how far ahead an alarm's failure may occur to count as
	// a true positive.
	Horizon time.Duration
	// BurstWindow groups internal indicative events into one candidate.
	BurstWindow time.Duration
	// ExternalSlack is how far around the burst an external indicator
	// may sit to corroborate.
	ExternalSlack time.Duration
}

// NewPredictor returns a predictor with the evaluation defaults.
func NewPredictor(store *logstore.Store, cfg Config) *Predictor {
	return &Predictor{
		Store:         store,
		Cfg:           cfg,
		Horizon:       30 * time.Minute,
		BurstWindow:   10 * time.Minute,
		ExternalSlack: 30 * time.Minute,
	}
}

// Alarms scans the store and raises predictions. Detections provide the
// hit labels.
func (p *Predictor) Alarms(detections []Detection) []Alarm {
	// Gather indicative internal events per node.
	type ev struct {
		t   time.Time
		cat string
	}
	perNode := map[cname.Name][]ev{}
	for _, r := range p.Store.All() {
		if !r.Stream.Internal() || r.Severity < events.SevWarning {
			continue
		}
		if !alarmEligible(r.Category) {
			continue
		}
		// Terminal-adjacent events still count; dedup happens below.
		perNode[r.Component] = append(perNode[r.Component], ev{r.Time, r.Category})
	}
	var alarms []Alarm
	detIx := NewDetectionIndex(detections)
	for node, evs := range perNode {
		// evs are time-ascending (store order). Slide a burst window;
		// raise at the second distinct category; then skip past the
		// burst.
		i := 0
		for i < len(evs) {
			cats := map[string]bool{evs[i].cat: true}
			j := i + 1
			raised := false
			for j < len(evs) && evs[j].t.Sub(evs[i].t) <= p.BurstWindow {
				cats[evs[j].cat] = true
				if len(cats) >= 2 {
					raised = true
				}
				j++
			}
			if raised {
				at := evs[i].t
				alarms = append(alarms, Alarm{
					Node:        node,
					Time:        at,
					HasExternal: p.externalNear(node, at),
					Hit:         detIx.AnyBetween(node, at, at.Add(p.Horizon)),
				})
				// Suppress re-alarming for the same burst + horizon.
				for j < len(evs) && evs[j].t.Sub(at) <= p.Horizon {
					j++
				}
			}
			i = j
		}
	}
	return alarms
}

// alarmEligible reports whether an internal category participates in
// alarm bursts. Application-side categories (OOM kills, abnormal app
// exits, segfaults, hung tasks) are excluded: those failures manifest
// only at runtime and are not predictable ahead of time (Observation
// 5/7), so a prediction scheme does not alarm on them. Hardware,
// kernel and filesystem precursors — plus the oops/panic events — are
// the predictable patterns.
func alarmEligible(cat string) bool {
	switch cat {
	case "oom_killer", "page_alloc_failure", "segfault",
		"app_exit_abnormal", "hung_task_timeout", "mem_overallocation":
		return false
	case "kernel_panic", "kernel_oops":
		return true
	}
	_, ok := precursorCause[cat]
	return ok
}

// externalNear reports an external indicator on the node or its blade
// within ±ExternalSlack of t.
func (p *Predictor) externalNear(node cname.Name, t time.Time) bool {
	from, to := t.Add(-p.ExternalSlack), t.Add(p.ExternalSlack)
	for _, r := range p.Store.BladeWindow(node.BladeName(), from, to) {
		if r.Stream.External() && externalIndicatorCategories[r.Category] {
			return true
		}
	}
	return false
}

// failureWithin reports a detection on the node in [t, t+horizon] by
// linear scan — the reference implementation DetectionIndex is
// equivalence-tested against.
func failureWithin(detections []Detection, node cname.Name, t time.Time, horizon time.Duration) bool {
	for _, d := range detections {
		if d.Node == node && !d.Time.Before(t) && d.Time.Sub(t) <= horizon {
			return true
		}
	}
	return false
}

// FPRComparison is the Fig 14 result: the predictor's false-positive
// rate with internal evidence alone versus with external correlation
// required.
type FPRComparison struct {
	WithoutExternal stats.Rates
	WithExternal    stats.Rates
}

// CompareFPR runs the predictor in both modes.
func CompareFPR(p *Predictor, detections []Detection) FPRComparison {
	alarms := p.Alarms(detections)
	var out FPRComparison
	for _, a := range alarms {
		if a.Hit {
			out.WithoutExternal.TP++
		} else {
			out.WithoutExternal.FP++
		}
		if a.HasExternal {
			if a.Hit {
				out.WithExternal.TP++
			} else {
				out.WithExternal.FP++
			}
		} else if a.Hit {
			// Suppressed alarm over a real failure: a miss in the
			// external-correlated mode.
			out.WithExternal.FN++
		}
	}
	return out
}
