package core

import (
	"sort"
	"time"

	"hpcfail/internal/stats"
	"hpcfail/internal/workload"
)

// JobAnalyzer answers the application-side questions: exit-status mixes
// (Fig 12), failures sharing jobs (Observation 8, Fig 19), and memory
// overallocation (Fig 17).
type JobAnalyzer struct {
	Jobs      []workload.Job
	Diagnoses []Diagnosis
}

// ExitStats is the Fig 12 breakdown for one window.
type ExitStats struct {
	Total, Success, AppFailed, ConfigError, NodeFail int
}

// SuccessFraction returns the clean-completion share (the paper's
// 90.43–95.71 %).
func (s ExitStats) SuccessFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Success) / float64(s.Total)
}

// AppFailedFraction returns the non-zero application-exit share (the
// paper's 0.06–6.02 %).
func (s ExitStats) AppFailedFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.AppFailed) / float64(s.Total)
}

// ExitStatsBetween tallies jobs ending in [from, to).
func (a *JobAnalyzer) ExitStatsBetween(from, to time.Time) ExitStats {
	var out ExitStats
	for i := range a.Jobs {
		j := &a.Jobs[i]
		if j.End.Before(from) || !j.End.Before(to) {
			continue
		}
		out.Total++
		switch {
		case j.State.Successful():
			out.Success++
		case j.State == workload.StateFailed:
			out.AppFailed++
		case j.State == workload.StateNodeFail:
			out.NodeFail++
		case j.State.ConfigError():
			out.ConfigError++
		}
	}
	return out
}

// SharedJobGroup is a set of failures attributed to one job.
type SharedJobGroup struct {
	JobID     int64
	App       string
	Failures  []Diagnosis
	SpanBlade int // distinct blades involved
}

// SharedJobGroups returns multi-failure job groups, largest first — the
// spatially-distant, temporally-local failure clusters of Observation 8.
func (a *JobAnalyzer) SharedJobGroups() []SharedJobGroup {
	byJob := map[int64][]Diagnosis{}
	for _, d := range a.Diagnoses {
		if d.JobID != 0 {
			byJob[d.JobID] = append(byJob[d.JobID], d)
		}
	}
	apps := map[int64]string{}
	for i := range a.Jobs {
		apps[a.Jobs[i].ID] = a.Jobs[i].App
	}
	var out []SharedJobGroup
	for id, ds := range byJob {
		if len(ds) < 2 {
			continue
		}
		blades := map[string]bool{}
		for _, d := range ds {
			blades[d.Detection.Node.BladeName().String()] = true
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].Detection.Time.Before(ds[j].Detection.Time) })
		out = append(out, SharedJobGroup{JobID: id, App: apps[id], Failures: ds, SpanBlade: len(blades)})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Failures) != len(out[j].Failures) {
			return len(out[i].Failures) > len(out[j].Failures)
		}
		return out[i].JobID < out[j].JobID
	})
	return out
}

// JobTriggeredMTBF computes the Fig 19 statistic: the inter-failure
// time distribution restricted to job-attributed failures.
func (a *JobAnalyzer) JobTriggeredMTBF() stats.Summary {
	var ts []time.Time
	for _, d := range a.Diagnoses {
		if d.AppTriggered {
			ts = append(ts, d.Detection.Time)
		}
	}
	return stats.MTBF(ts)
}

// OverallocationReport is one job's Fig 17 row.
type OverallocationReport struct {
	JobID         int64
	App           string
	Overallocated int // nodes granted more memory than physical
	Failed        int // of those, how many failed
}

// Overallocations reports jobs whose memory request exceeded the node
// capacity, with the count of their nodes that subsequently failed.
func (a *JobAnalyzer) Overallocations(nodeMemMB int) []OverallocationReport {
	failedNodes := map[string]map[int64]bool{}
	for _, d := range a.Diagnoses {
		key := d.Detection.Node.String()
		if failedNodes[key] == nil {
			failedNodes[key] = map[int64]bool{}
		}
		failedNodes[key][d.JobID] = true
	}
	var out []OverallocationReport
	for i := range a.Jobs {
		j := &a.Jobs[i]
		if j.ReqMemMB <= nodeMemMB {
			continue
		}
		rep := OverallocationReport{JobID: j.ID, App: j.App, Overallocated: len(j.Nodes)}
		for _, n := range j.Nodes {
			if m, ok := failedNodes[n.String()]; ok && (m[j.ID] || m[0]) {
				rep.Failed++
			}
		}
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}
