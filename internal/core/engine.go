package core

import (
	"time"

	"hpcfail/internal/alps"
	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/logparse"
	"hpcfail/internal/logstore"
	"hpcfail/internal/workload"
)

// Engine is the incremental diagnosis pipeline: it holds the live
// corpus (logstore.Live), the per-node terminal/detection state, the
// job table, the apid index, the degradation flags and a memo of every
// diagnosis, and updates all of it per record batch in cost
// proportional to the batch — not the corpus. Snapshot then assembles a
// *Result that is value-identical (and therefore renders byte-
// identical) to RunContextReport over a from-scratch store of the same
// arrival sequence; the differential harness in the repo root proves
// that equality after every batch.
//
// The invalidation rules are conservative supersets of Diagnose's true
// dependencies, so a diagnosis is only ever reused when every input it
// could have read is unchanged:
//
//   - new records on a node dirty that node's detections whose internal
//     [t-InternalWindow, t+1s) or external [t-ExternalWindow, t) window
//     could contain them;
//   - a changed job (fold output or first-seen position) dirties every
//     detection on the job's old and new nodes inside its old and new
//     [Start, End) spans — the exact reach of workload.JobOnNode;
//   - a changed apid resolution dirties detections whose terminal
//     carried the apid and detections whose internal window holds a
//     record tagged with it;
//   - new/changed/removed terminal records refold the whole node's
//     detection chain (refractory merging is per-node state).
//
// Engine is single-writer: callers serialise ApplyBatch and Snapshot
// (the HTTP server holds one mutex across both). Snapshots remain valid
// after further ApplyBatch calls.
type Engine struct {
	cfg  Config
	live *logstore.Live
	// store is the snapshot of live after the last ApplyBatch; diagnosis
	// windows resolve against it and Snapshot hands it out as
	// Result.Store.
	store *logstore.Store
	seq   int64

	// terms holds each node's terminal records in canonical order; dets
	// holds the refolded detection chains.
	terms map[cname.Name][]termEntry
	dets  map[cname.Name][]detRec

	// Job-table state: per-job scheduler records in canonical order, the
	// cached fold of each job, the first-seen key ordering the table, and
	// the assembled jobs slice.
	jobRecs  map[int64][]termEntry
	jobFold  map[int64]workload.Job
	jobFirst map[int64]recKey
	jobs     []workload.Job

	// Apid-index state: the resolution map plus the canonical key of the
	// record that last wrote each entry (last write in canonical order
	// wins, as in alps.IndexBuilder over the sorted corpus).
	apids   map[int64]int64
	apidKey map[int64]recKey

	// Stream-family presence (monotone under appends) for Degradation.
	haveInt, haveExt, haveSched, haveALPS bool

	// diags memoizes raw (pre-degradation) diagnoses per detection.
	diags map[detKey]Diagnosis
}

// recKey is the canonical total order of the corpus: the ByTime
// comparator plus arrival sequence, which is exactly the stable order
// events.SortByTime imposes.
type recKey struct {
	t      int64
	stream events.Stream
	comp   cname.Name
	seq    int64
}

func keyBefore(a, b recKey) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.stream != b.stream {
		return a.stream < b.stream
	}
	if c := cname.Compare(a.comp, b.comp); c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

// termEntry is one keyed record in a per-node or per-job ordered list.
type termEntry struct {
	key recKey
	rec events.Record
}

// detKey is the memo identity of one detection.
type detKey struct {
	node     cname.Name
	t        int64
	terminal string
	jobID    int64
}

func keyOf(d Detection) detKey {
	return detKey{node: d.Node, t: d.Time.UnixNano(), terminal: d.Terminal, jobID: d.JobID}
}

// detRec pairs a detection with the canonical key of the terminal
// record that emitted it, which orders detections globally.
type detRec struct {
	det Detection
	key recKey
}

// NewEngine returns an empty incremental pipeline.
func NewEngine(cfg Config) *Engine {
	live := logstore.NewLive()
	return &Engine{
		cfg:      cfg,
		live:     live,
		store:    live.Snapshot(),
		terms:    map[cname.Name][]termEntry{},
		dets:     map[cname.Name][]detRec{},
		jobRecs:  map[int64][]termEntry{},
		jobFold:  map[int64]workload.Job{},
		jobFirst: map[int64]recKey{},
		apids:    map[int64]int64{},
		apidKey:  map[int64]recKey{},
		diags:    map[detKey]Diagnosis{},
	}
}

// insertEntry places e into the keyed list at its canonical position.
// Appends (the in-order common case) cost O(1); out-of-order arrivals
// shift the tail of that one list.
func insertEntry(list []termEntry, e termEntry) []termEntry {
	i := len(list)
	for i > 0 && keyBefore(e.key, list[i-1].key) {
		i--
	}
	list = append(list, termEntry{})
	copy(list[i+1:], list[i:])
	list[i] = e
	return list
}

// ApplyBatch folds one batch of records — in arrival order, exactly as
// handed to the parser/watcher — into the live pipeline state and
// re-diagnoses every detection the batch could have affected. The slice
// is not retained.
func (e *Engine) ApplyBatch(recs []events.Record) {
	if len(recs) == 0 {
		return
	}
	batch := make([]events.Record, len(recs))
	copy(batch, recs)
	events.SortByTime(batch)
	e.live.Apply(batch)
	e.store = e.live.Snapshot()

	refold := map[cname.Name]bool{}
	jobsTouched := map[int64]workload.Job{} // pre-batch fold of each touched job
	jobsSeen := map[int64]bool{}            // touched job existed before this batch
	apidOld := map[int64]int64{}            // pre-batch Resolve output of touched apids
	type span struct{ lo, hi int64 }
	nodeSpans := map[cname.Name]*span{}

	for i := range batch {
		r := &batch[i]
		e.seq++
		k := recKey{t: r.Time.UnixNano(), stream: r.Stream, comp: r.Component, seq: e.seq}

		switch {
		case r.Stream.Internal():
			e.haveInt = true
		case r.Stream.External():
			e.haveExt = true
		case r.Stream == events.StreamScheduler:
			e.haveSched = true
		case r.Stream == events.StreamALPS:
			e.haveALPS = true
		}

		if r.Component.IsValid() && r.Component.Level() == cname.LevelNode {
			if sp := nodeSpans[r.Component]; sp == nil {
				nodeSpans[r.Component] = &span{lo: k.t, hi: k.t}
			} else {
				if k.t < sp.lo {
					sp.lo = k.t
				}
				if k.t > sp.hi {
					sp.hi = k.t
				}
			}
		}

		if IsTerminal(r) {
			e.terms[r.Component] = insertEntry(e.terms[r.Component], termEntry{key: k, rec: *r})
			refold[r.Component] = true
		}

		if r.Stream == events.StreamScheduler && r.JobID != 0 {
			if _, touched := jobsTouched[r.JobID]; !touched {
				jobsTouched[r.JobID] = e.jobFold[r.JobID]
				_, jobsSeen[r.JobID] = e.jobFirst[r.JobID]
			}
			e.jobRecs[r.JobID] = insertEntry(e.jobRecs[r.JobID], termEntry{key: k, rec: *r})
		}

		if r.Stream == events.StreamALPS && r.JobID != 0 {
			if apid := alps.Apid(r); apid != 0 {
				if prev, ok := e.apidKey[apid]; !ok || keyBefore(prev, k) {
					if _, touched := apidOld[apid]; !touched {
						apidOld[apid] = alps.Resolve(apid, e.apids)
					}
					e.apidKey[apid] = k
					e.apids[apid] = r.JobID
				}
			}
		}
	}

	dirty := map[detKey]Detection{}

	// Refold detection chains for nodes whose terminal set changed:
	// every detection of the node is re-derived and re-diagnosed, and
	// stale memo entries are dropped.
	for n := range refold {
		for _, dr := range e.dets[n] {
			delete(e.diags, keyOf(dr.det))
		}
		folded := e.refoldNode(n)
		e.dets[n] = folded
		for _, dr := range folded {
			dirty[keyOf(dr.det)] = dr.det
		}
	}

	// New records on a node dirty the detections whose evidence windows
	// can reach them: a record at tr is visible to detections with
	// t ∈ (tr-1s, tr+ExternalWindow] (external) or (tr-1s,
	// tr+InternalWindow] (internal); ExternalWindow ≥ InternalWindow in
	// every config this repo runs, and the union bound below is
	// conservative either way.
	reach := e.cfg.ExternalWindow
	if e.cfg.InternalWindow > reach {
		reach = e.cfg.InternalWindow
	}
	for n, sp := range nodeSpans {
		e.dirtyRange(dirty, n, sp.lo-int64(time.Second), sp.hi+int64(reach))
	}

	// Changed jobs dirty every detection JobOnNode could answer
	// differently for: the old and new node sets over the old and new
	// [Start, End) spans. A changed first-seen position (order decides
	// equal-Start ties) is treated as a change too.
	jobsChanged := false
	for id, oldFold := range jobsTouched {
		list := e.jobRecs[id]
		newFirst := list[0].key
		firstChanged := !jobsSeen[id] || e.jobFirst[id] != newFirst
		e.jobFirst[id] = newFirst
		newFold := foldJob(id, list)
		e.jobFold[id] = newFold
		if !firstChanged && jobsSeen[id] && jobEqual(oldFold, newFold) {
			continue
		}
		jobsChanged = true
		for _, j := range []workload.Job{oldFold, newFold} {
			if j.Start.IsZero() || j.End.IsZero() {
				continue
			}
			lo, hi := j.Start.UnixNano(), j.End.UnixNano()-1
			for _, n := range j.Nodes {
				e.dirtyRange(dirty, n, lo, hi)
			}
		}
	}
	if jobsChanged || len(jobsTouched) > 0 {
		e.rebuildJobs()
	}

	// Changed apid resolutions dirty detections that resolved the apid:
	// those whose terminal carried it, and those whose internal window
	// holds an internal node record tagged with it.
	for apid, old := range apidOld {
		if alps.Resolve(apid, e.apids) == old {
			continue
		}
		for _, drs := range e.dets {
			for _, dr := range drs {
				if dr.det.JobID == apid {
					dirty[keyOf(dr.det)] = dr.det
				}
			}
		}
		for _, r := range e.store.Job(apid) {
			if !r.Stream.Internal() || !r.Component.IsValid() || r.Component.Level() != cname.LevelNode {
				continue
			}
			tr := r.Time.UnixNano()
			e.dirtyRange(dirty, r.Component, tr-int64(time.Second), tr+int64(e.cfg.InternalWindow))
		}
	}

	if len(dirty) == 0 {
		return
	}
	rc := &RootCauser{Store: e.store, Jobs: e.jobs, Cfg: e.cfg, Apids: e.apids}
	for k, d := range dirty {
		if _, live := e.detAt(k); !live {
			continue // dirtied conservatively but no longer detected
		}
		e.diags[k] = rc.Diagnose(d)
	}
}

// refoldNode re-runs the per-node refractory chain over the node's
// terminal records — the detector.add fold restricted to one node,
// which equals the global fold's output for that node because the
// refractory state is node-keyed.
func (e *Engine) refoldNode(n cname.Name) []detRec {
	var out []detRec
	var last time.Time
	have := false
	for _, te := range e.terms[n] {
		if have && te.rec.Time.Sub(last) < e.cfg.RefractoryGap {
			last = te.rec.Time
			continue
		}
		last = te.rec.Time
		have = true
		out = append(out, detRec{
			det: Detection{Node: te.rec.Component, Time: te.rec.Time, Terminal: te.rec.Category, JobID: te.rec.JobID},
			key: te.key,
		})
	}
	return out
}

// detAt reports whether k still names a live detection.
func (e *Engine) detAt(k detKey) (Detection, bool) {
	for _, dr := range e.dets[k.node] {
		if keyOf(dr.det) == k {
			return dr.det, true
		}
	}
	return Detection{}, false
}

// dirtyRange marks the node's detections with Time in [lo, hi]
// (inclusive, nanoseconds) dirty.
func (e *Engine) dirtyRange(dirty map[detKey]Detection, n cname.Name, lo, hi int64) {
	drs := e.dets[n]
	i, j := 0, len(drs)
	for i < j {
		mid := int(uint(i+j) >> 1)
		if drs[mid].det.Time.UnixNano() < lo {
			i = mid + 1
		} else {
			j = mid
		}
	}
	for ; i < len(drs); i++ {
		if drs[i].det.Time.UnixNano() > hi {
			return
		}
		dirty[keyOf(drs[i].det)] = drs[i].det
	}
}

// foldJob replays one job's scheduler records, in canonical order,
// through the job-table fold — identical to JobTableBuilder restricted
// to the job, since Add only reads and writes the record's own job.
func foldJob(id int64, list []termEntry) workload.Job {
	b := logparse.NewJobTableBuilder()
	for i := range list {
		b.Add(&list[i].rec)
	}
	j, ok := b.Job(id)
	if !ok {
		return workload.Job{ID: id}
	}
	return j
}

func jobEqual(a, b workload.Job) bool {
	if a.ID != b.ID || a.App != b.App || a.User != b.User ||
		!a.Submit.Equal(b.Submit) || !a.Start.Equal(b.Start) || !a.End.Equal(b.End) ||
		a.State != b.State || a.ExitCode != b.ExitCode || a.ReqMemMB != b.ReqMemMB ||
		a.Overallocated != b.Overallocated || len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return true
}

// rebuildJobs reassembles the jobs slice: complete jobs ordered by
// first-seen canonical key — exactly the order JobTableBuilder.Jobs
// emits over the sorted corpus. Always a fresh slice; earlier snapshots
// keep theirs.
func (e *Engine) rebuildJobs() {
	ids := make([]int64, 0, len(e.jobFirst))
	for id := range e.jobFirst {
		ids = append(ids, id)
	}
	// Insertion sort by first-seen key; the table is small and mostly
	// ordered already.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && keyBefore(e.jobFirst[ids[j]], e.jobFirst[ids[j-1]]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var out []workload.Job
	for _, id := range ids {
		j := e.jobFold[id]
		if !j.Start.IsZero() && !j.End.IsZero() {
			out = append(out, j)
		}
	}
	e.jobs = out
}

// Snapshot assembles the Result for the corpus applied so far, with the
// ingestion supervisor's lost-chunk count folded into the degradation
// assessment exactly as RunContextReport does. The returned value
// shares no mutable state with the engine and stays valid across later
// ApplyBatch calls.
func (e *Engine) Snapshot(lostChunks int) *Result {
	var all []detRec
	for _, drs := range e.dets {
		all = append(all, drs...)
	}
	// Global detection order is the canonical order of the emitting
	// terminal records.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && keyBefore(all[j].key, all[j-1].key); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	var dets []Detection
	if len(all) > 0 {
		dets = make([]Detection, len(all))
	}
	diags := make([]Diagnosis, len(all))
	for i, dr := range all {
		dets[i] = dr.det
		d, ok := e.diags[keyOf(dr.det)]
		if !ok {
			// Defensive: a detection the invalidation rules somehow never
			// diagnosed. Diagnose it now rather than serve a hole.
			rc := &RootCauser{Store: e.store, Jobs: e.jobs, Cfg: e.cfg, Apids: e.apids}
			d = rc.Diagnose(dr.det)
			e.diags[keyOf(dr.det)] = d
		}
		diags[i] = d
	}
	deg := Degradation{
		MissingInternal:  !e.haveInt,
		MissingExternal:  !e.haveExt,
		MissingScheduler: !e.haveSched,
		MissingALPS:      !e.haveALPS,
		LostChunks:       lostChunks,
	}
	applyDegradation(diags, deg)
	return &Result{Store: e.store, Jobs: e.jobs, Detections: dets, Diagnoses: diags, Degradation: deg}
}

// Store returns the current corpus snapshot (also available as
// Snapshot().Store).
func (e *Engine) Store() *logstore.Store { return e.store }

// Len returns the live record count.
func (e *Engine) Len() int { return e.live.Len() }
