package core

import (
	"time"

	"hpcfail/internal/alps"
	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/stacktrace"
	"hpcfail/internal/workload"
)

// Diagnosis is the pipeline's verdict on one detected failure.
type Diagnosis struct {
	// Detection is the underlying failure.
	Detection Detection
	// Cause is the inferred root-cause bucket.
	Cause faults.Cause
	// Class is the inferred layer (from Cause, or trace origin when the
	// trace says the manifesting layer differs from the origin).
	Class faults.Class
	// AppTriggered reports whether the origin is attributed to the
	// running application even if the failure manifested in the OS or
	// file system.
	AppTriggered bool
	// JobID is the attributed job (0 when none).
	JobID int64
	// KeySymbol is the stack-trace symbol that drove the
	// classification, when trace analysis was used.
	KeySymbol string
	// Confidence is a heuristic in (0, 1]. Pipelines running on a
	// degraded corpus (missing stream families) scale it down.
	Confidence float64
	// Degraded marks a verdict made from an incomplete corpus.
	Degraded bool
	// Note carries the degradation evidence note ("" when clean).
	Note string
	// InternalEvidence holds the precursor records that supported the
	// verdict, time-ascending.
	InternalEvidence []events.Record
	// ExternalIndicators holds early external records correlated to the
	// failure (empty for fail-stop failures).
	ExternalIndicators []events.Record
}

// Internal precursor categories that indicate trouble (as opposed to
// benign chatter); keyed to the cause they suggest when no stack trace
// is available.
var precursorCause = map[string]faults.Cause{
	faults.MCE.Category():                 faults.CauseMCE,
	faults.UncorrectableMemErr.Category(): faults.CauseMCE,
	faults.CorrectableMemErr.Category():   faults.CauseMCE,
	faults.CPUCorruption.Category():       faults.CauseCPUCorruption,
	faults.BIOSError.Category():           faults.CauseHardwareOther,
	faults.DiskError.Category():           faults.CauseHardwareOther,
	faults.GPUError.Category():            faults.CauseHardwareOther,
	faults.KernelBug.Category():           faults.CauseKernelBug,
	faults.CPUStall.Category():            faults.CauseCPUStall,
	faults.DriverBug.Category():           faults.CauseCPUStall,
	faults.FirmwareBug.Category():         faults.CauseCPUStall,
	faults.LustreBug.Category():           faults.CauseFilesystemBug,
	faults.DVSError.Category():            faults.CauseFilesystemBug,
	faults.InodeError.Category():          faults.CauseFilesystemBug,
	faults.OOMKiller.Category():           faults.CauseOOM,
	faults.PageAllocFailure.Category():    faults.CauseOOM,
	faults.MemOverallocation.Category():   faults.CauseOOM,
	faults.SegFault.Category():            faults.CauseSegFault,
	faults.AppExit.Category():             faults.CauseAppExit,
	faults.HungTask.Category():            faults.CauseHungTask,
}

// precursorPriority orders competing category evidence: specific
// hardware signals outrank generic software ones, and the segfault→
// page-alloc chain resolves to the segfault.
var precursorPriority = map[faults.Cause]int{
	faults.CauseMCE:           9,
	faults.CauseCPUCorruption: 9,
	faults.CauseHardwareOther: 8,
	faults.CauseSegFault:      7,
	faults.CauseAppExit:       7,
	faults.CauseFilesystemBug: 6,
	faults.CauseOOM:           5,
	faults.CauseKernelBug:     5,
	faults.CauseCPUStall:      4,
	faults.CauseHungTask:      2,
}

// externalIndicatorCategories are the external events accepted as early
// failure indicators. Benign SEDC threshold chatter is deliberately NOT
// here (Observation 3: it does not pinpoint failures).
var externalIndicatorCategories = map[string]bool{
	faults.ECHwError.Category(): true,
	faults.LinkError.Category(): true,
	faults.NVF.Category():       true,
	faults.L0SysdMCE.Category(): true,
}

// StoreView is the read surface diagnosis needs from a record store.
// Both the flat *logstore.Store and the sharded *logstore.ShardedStore
// satisfy it; the sharded form answers NodeWindow from the node's own
// shard, lock-free and without waiting for the merged global view.
type StoreView interface {
	All() []events.Record
	NodeWindow(node cname.Name, from, to time.Time) []events.Record
}

// RootCauser classifies detected failures against a log store.
type RootCauser struct {
	Store StoreView
	Jobs  []workload.Job
	Cfg   Config
	// Apids resolves ALPS application ids (which compute-node logs
	// reference on Cray systems) to scheduler job ids. Built with
	// alps.IndexFromRecords; nil means ids pass through unchanged.
	Apids map[int64]int64

	// winCache memoizes NodeWindow lookups across Diagnose calls.
	// Repeated failures of one node within the refractory cadence ask for
	// overlapping or identical windows; entries are cheap because window
	// results are shared zero-copy spans. The cache makes a RootCauser
	// unsafe for concurrent Diagnose — parallel pools hand each worker
	// its own clone (see diagnosePool).
	winCache map[windowKey][]events.Record
}

// windowKey identifies one memoized NodeWindow lookup.
type windowKey struct {
	node     cname.Name
	from, to int64
}

// nodeWindow is Store.NodeWindow with memoization.
func (rc *RootCauser) nodeWindow(node cname.Name, from, to time.Time) []events.Record {
	k := windowKey{node, from.UnixNano(), to.UnixNano()}
	if recs, ok := rc.winCache[k]; ok {
		return recs
	}
	recs := rc.Store.NodeWindow(node, from, to)
	if rc.winCache == nil {
		rc.winCache = make(map[windowKey][]events.Record)
	}
	rc.winCache[k] = recs
	return recs
}

// clone returns a copy sharing the immutable inputs (store, jobs, apid
// index) but with its own memoization cache, for use by one worker
// goroutine.
func (rc *RootCauser) clone() *RootCauser {
	return &RootCauser{Store: rc.Store, Jobs: rc.Jobs, Cfg: rc.Cfg, Apids: rc.Apids}
}

// Diagnose runs root-cause inference for one detection.
func (rc *RootCauser) Diagnose(d Detection) Diagnosis {
	diag := Diagnosis{
		Detection: d,
		Cause:     faults.CauseUnknown,
		Class:     faults.ClassUnknown,
		JobID:     alps.Resolve(d.JobID, rc.Apids),
	}
	from := d.Time.Add(-rc.Cfg.InternalWindow)
	to := d.Time.Add(time.Second)
	internal := rc.nodeWindow(d.Node, from, to)

	// Pass 1: stack-trace module analysis (the paper's Table IV
	// method) — the innermost diagnostic frame of the latest oops
	// decides when available.
	var bestTrace stacktrace.Classification
	var haveTrace bool
	for i := range internal {
		r := &internal[i]
		if !r.Stream.Internal() {
			continue
		}
		if enc := r.Field("trace"); enc != "" {
			cl := stacktrace.Classify(stacktrace.Decode(enc))
			if cl.Cause != faults.CauseUnknown && (!haveTrace || cl.Confidence >= bestTrace.Confidence) {
				bestTrace = cl
				haveTrace = true
			}
		}
		if r.JobID != 0 && diag.JobID == 0 {
			diag.JobID = alps.Resolve(r.JobID, rc.Apids)
		}
		if _, indicative := precursorCause[r.Category]; indicative ||
			r.Category == faults.KernelPanic.Category() || r.Category == faults.KernelOops.Category() {
			diag.InternalEvidence = append(diag.InternalEvidence, *r)
		}
	}

	// Pass 2: category-signature voting for failures without (or beyond)
	// traces.
	catCause := faults.CauseUnknown
	catPriority := -1
	for i := range diag.InternalEvidence {
		c, ok := precursorCause[diag.InternalEvidence[i].Category]
		if !ok {
			continue
		}
		if p := precursorPriority[c]; p > catPriority {
			catPriority = p
			catCause = c
		}
	}

	switch {
	case haveTrace && catCause == faults.CauseUnknown:
		diag.Cause = bestTrace.Cause
		diag.KeySymbol = bestTrace.KeySymbol
		diag.Confidence = bestTrace.Confidence
	case haveTrace:
		// Both sources: prefer agreement; on conflict the higher-priority
		// category signal wins but trace origin still informs Class.
		if precursorPriority[bestTrace.Cause] >= catPriority {
			diag.Cause = bestTrace.Cause
			diag.KeySymbol = bestTrace.KeySymbol
			diag.Confidence = bestTrace.Confidence
		} else {
			diag.Cause = catCause
			diag.Confidence = 0.7
		}
	case catCause != faults.CauseUnknown:
		diag.Cause = catCause
		diag.Confidence = 0.6
	default:
		// No recognisable precursors: the Observation 9 unknowns.
		diag.Cause = faults.CauseUnknown
		diag.Confidence = 0.2
	}

	// Terminal admindown without stronger evidence means the NHC killed
	// the node over an application problem.
	if d.Terminal == "nhc_admindown" && (diag.Cause == faults.CauseUnknown || diag.Cause == faults.CauseHungTask) {
		diag.Cause = faults.CauseAppExit
		diag.Confidence = 0.6
	}

	diag.Class = diag.Cause.Class()
	// Job attribution: a job-linked failure of an application-rooted
	// cause is application-triggered even when it manifested in the FS
	// or kernel (Observation 7).
	if diag.JobID == 0 {
		if j := workload.JobOnNode(rc.Jobs, d.Node, d.Time); j != nil && diag.Cause.ApplicationTriggered() {
			diag.JobID = j.ID
		}
	}
	diag.AppTriggered = diag.Cause.ApplicationTriggered() && diag.JobID != 0
	if haveTrace && bestTrace.Origin == faults.ClassApplication {
		diag.AppTriggered = diag.JobID != 0 || diag.Cause.ApplicationTriggered()
	}

	// External early indicators (for lead-time analysis). Only node-
	// scoped indicators attribute to THIS failure: blade-scoped events
	// (link errors) may belong to a sibling's failure in the same
	// blade-local episode, which would inflate the lead.
	extFrom := d.Time.Add(-rc.Cfg.ExternalWindow)
	for _, r := range rc.nodeWindow(d.Node, extFrom, d.Time) {
		if r.Stream.External() && externalIndicatorCategories[r.Category] {
			diag.ExternalIndicators = append(diag.ExternalIndicators, r)
		}
	}
	events.SortByTime(diag.ExternalIndicators)
	return diag
}

// DiagnoseAll runs detection and diagnosis over the whole store.
func (rc *RootCauser) DiagnoseAll() []Diagnosis {
	dets := Detect(rc.Store.All(), rc.Cfg)
	out := make([]Diagnosis, len(dets))
	for i, d := range dets {
		out[i] = rc.Diagnose(d)
	}
	return out
}
