package core

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
)

func TestRunContextMatchesRun(t *testing.T) {
	_, store := buildScenario(t, 2, 7)
	want := Run(store, DefaultConfig())
	got, err := RunContext(context.Background(), store, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Detections, want.Detections) {
		t.Errorf("RunContext detections diverge from Run (%d vs %d)", len(got.Detections), len(want.Detections))
	}
	if !reflect.DeepEqual(got.Diagnoses, want.Diagnoses) {
		t.Errorf("RunContext diagnoses diverge from Run")
	}
	if got.Degradation != want.Degradation {
		t.Errorf("RunContext degradation %+v, want %+v", got.Degradation, want.Degradation)
	}
}

func TestRunContextCancelled(t *testing.T) {
	_, store := buildScenario(t, 2, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, store, DefaultConfig())
	if err == nil {
		t.Fatal("cancelled RunContext returned no error")
	}
	if res != nil {
		t.Errorf("cancelled RunContext returned a partial result")
	}
}

func TestRunContextReportFoldsLostChunks(t *testing.T) {
	_, store := buildScenario(t, 2, 7)
	res, err := RunContextReport(context.Background(), store, DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation.LostChunks != 3 {
		t.Fatalf("LostChunks = %d, want 3", res.Degradation.LostChunks)
	}
	if !res.Degradation.Degraded() {
		t.Error("lost chunks should degrade the result")
	}
	for _, d := range res.Diagnoses {
		if !d.Degraded {
			t.Fatal("diagnosis not stamped degraded despite lost chunks")
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	scn, store := buildScenario(t, 2, 7)
	_ = scn
	var dets []Detection
	w := NewWatcher(DefaultConfig(), func(d Detection) { dets = append(dets, d) })
	w.FeedAll(store.All()[:store.Len()/2])

	path := filepath.Join(t.TempDir(), "watch.ckpt")
	if err := SaveSnapshotFile(path, w); err != nil {
		t.Fatal(err)
	}
	w2 := NewWatcher(DefaultConfig(), func(Detection) {})
	restored, err := LoadSnapshotFile(path, w2)
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("checkpoint existed but restored=false")
	}
	if !reflect.DeepEqual(w.Snapshot(), w2.Snapshot()) {
		t.Error("restored watcher state diverges from the saved one")
	}

	// A missing checkpoint is a clean no-restore, not an error.
	w3 := NewWatcher(DefaultConfig(), func(Detection) {})
	restored, err = LoadSnapshotFile(filepath.Join(t.TempDir(), "absent"), w3)
	if err != nil || restored {
		t.Fatalf("missing checkpoint: restored=%v err=%v, want false nil", restored, err)
	}
}
