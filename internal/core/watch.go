package core

import (
	"container/heap"
	"sync"
	"time"

	"hpcfail/internal/alps"
	"hpcfail/internal/cname"
	"hpcfail/internal/events"
)

// Watcher is the online form of the detector: it consumes log records
// in arrival order and emits confirmed failures and early-warning
// alarms as they happen — the shape a production health monitor needs,
// in contrast to the batch Detect/Diagnose path.
//
// The watcher applies the same rules as the batch pipeline: terminal
// internal events (minus scheduled shutdowns) confirm failures with a
// per-node refractory merge; bursts of two distinct predictable
// precursor categories raise alarms, optionally corroborated by
// external indicators.
//
// Two production-hardening mechanisms keep a long-running watch healthy
// on imperfect input:
//
//   - a bounded reorder buffer (ReorderWindow/ReorderLimit) absorbs
//     out-of-order arrival — records are released in time order once
//     the watermark has moved past them, so bursts still pair and
//     refractory merges still collapse under shuffled delivery;
//   - horizon-based eviction (EvictionHorizon) prunes per-node and
//     per-apid state older than the horizon, so memory stays O(nodes
//     active within the horizon) instead of O(all-time).
//
// A Watcher is safe for concurrent use: Feed, FeedAll, Flush, Stats and
// StateSize serialise on an internal mutex, so multiple ingestion
// goroutines (e.g. per-stream tailers) can share one watcher. The
// OnDetection and OnAlarm callbacks run with that mutex held — they
// must not call back into the watcher, and arbitrary interleavings of
// concurrent feeders make delivery order theirs to define. Configure
// the public fields before the first Feed; they are not synchronised.
type Watcher struct {
	// mu serialises all state access below.
	mu  sync.Mutex
	cfg Config
	// OnDetection is invoked for each confirmed failure. Required.
	OnDetection func(Detection)
	// OnAlarm, when set, is invoked for each early-warning burst.
	OnAlarm func(Alarm)
	// OnCandidate, when set, is invoked for each novel mined signature
	// surfaced via NoteCandidate (at most once per signature).
	OnCandidate func(Candidate)
	// BurstWindow groups precursor events (default 10 minutes).
	BurstWindow time.Duration
	// ReorderWindow, when positive, buffers arrivals and releases them
	// in time order once the high-water mark has advanced past a
	// record's time by this much. Zero (the default) feeds records
	// through immediately, preserving strict arrival-order semantics.
	ReorderWindow time.Duration
	// ReorderLimit bounds the reorder buffer; when full, the oldest
	// buffered record is released immediately (default 1024).
	ReorderLimit int
	// EvictionHorizon bounds per-node and per-apid state age (default
	// 24h; set negative to disable eviction entirely).
	EvictionHorizon time.Duration

	lastTerminal map[cname.Name]time.Time
	// recent holds each node's precursor categories, one entry per
	// category carrying its latest sighting (pruned by BurstWindow).
	recent map[cname.Name][]watchEvent
	// lastExternal remembers the latest external indicator per node.
	lastExternal map[cname.Name]time.Time
	// lastAlarm suppresses alarm repeats.
	lastAlarm map[cname.Name]time.Time
	// apids accumulates the ALPS apid → job resolution as placement
	// records stream in, so detections report scheduler job ids.
	apids map[int64]int64
	// apidSeen timestamps each apid's last use for eviction.
	apidSeen map[int64]time.Time
	// candidateSeen suppresses repeat announcements per mined
	// signature (see NoteCandidate). Bounded by the miner's template
	// budget, so no eviction needed.
	candidateSeen map[string]bool

	buf recordHeap
	// watermark is the maximum record time observed.
	watermark time.Time
	// lastEvict is the watermark at the previous eviction sweep.
	lastEvict time.Time

	stats WatcherStats
}

type watchEvent struct {
	t   time.Time
	cat string
}

// WatcherStats counts the hardening mechanisms' activity.
type WatcherStats struct {
	// Fed is the total number of records consumed.
	Fed int
	// Reordered counts records that arrived behind the watermark (and
	// were re-sequenced by the buffer when one is configured).
	Reordered int
	// Evicted counts state entries pruned by the horizon.
	Evicted int
	// Buffered is the current reorder-buffer occupancy.
	Buffered int
	// Candidates counts distinct mined signatures surfaced via
	// NoteCandidate.
	Candidates int
}

// WatcherState reports current state-map sizes, for bounded-memory
// assertions and operator stats.
type WatcherState struct {
	// Nodes is the number of distinct nodes with any retained state.
	Nodes int
	// Apids is the retained apid→job resolution count.
	Apids int
	// Buffered is the reorder-buffer occupancy.
	Buffered int
}

// defaultEvictionHorizon keeps a day of per-node state — generous
// against every correlation window while bounding a long-running watch.
const defaultEvictionHorizon = 24 * time.Hour

// NewWatcher constructs a watcher with the given pipeline windows.
func NewWatcher(cfg Config, onDetection func(Detection)) *Watcher {
	return &Watcher{
		cfg:             cfg,
		OnDetection:     onDetection,
		BurstWindow:     10 * time.Minute,
		ReorderLimit:    1024,
		EvictionHorizon: defaultEvictionHorizon,
		lastTerminal:    make(map[cname.Name]time.Time),
		recent:          make(map[cname.Name][]watchEvent),
		lastExternal:    make(map[cname.Name]time.Time),
		lastAlarm:       make(map[cname.Name]time.Time),
		apids:           make(map[int64]int64),
		apidSeen:        make(map[int64]time.Time),
	}
}

// Stats returns the hardening counters.
func (w *Watcher) Stats() WatcherStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.stats
	s.Buffered = len(w.buf)
	return s
}

// StateSize reports current state-map sizes.
func (w *Watcher) StateSize() WatcherState {
	w.mu.Lock()
	defer w.mu.Unlock()
	nodes := make(map[cname.Name]bool, len(w.lastTerminal))
	for n := range w.lastTerminal {
		nodes[n] = true
	}
	for n := range w.recent {
		nodes[n] = true
	}
	for n := range w.lastExternal {
		nodes[n] = true
	}
	for n := range w.lastAlarm {
		nodes[n] = true
	}
	return WatcherState{Nodes: len(nodes), Apids: len(w.apids), Buffered: len(w.buf)}
}

// Feed processes one record. With ReorderWindow unset, records should
// arrive in non-decreasing time order (per real log tailing); stragglers
// are still handled but may miss burst pairings. With ReorderWindow set,
// arrivals are buffered and re-sequenced before processing — call Flush
// (or FeedAll, which flushes) to drain the tail.
func (w *Watcher) Feed(r events.Record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.feedLocked(r)
}

func (w *Watcher) feedLocked(r events.Record) {
	w.stats.Fed++
	if r.Time.Before(w.watermark) {
		w.stats.Reordered++
	}
	if r.Time.After(w.watermark) {
		w.watermark = r.Time
	}
	if w.ReorderWindow <= 0 {
		w.process(r)
		w.maybeEvict()
		return
	}
	heap.Push(&w.buf, r)
	limit := w.ReorderLimit
	if limit <= 0 {
		limit = 1024
	}
	release := w.watermark.Add(-w.ReorderWindow)
	for len(w.buf) > 0 && (len(w.buf) > limit || !w.buf[0].Time.After(release)) {
		w.process(heap.Pop(&w.buf).(events.Record))
	}
	w.maybeEvict()
}

// Flush drains the reorder buffer, processing everything still held, in
// time order. Call at end of stream.
func (w *Watcher) Flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
}

func (w *Watcher) flushLocked() {
	for len(w.buf) > 0 {
		w.process(heap.Pop(&w.buf).(events.Record))
	}
}

// FeedAll streams a batch through the watcher and flushes the reorder
// buffer. The batch is processed atomically with respect to concurrent
// feeders.
func (w *Watcher) FeedAll(recs []events.Record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range recs {
		w.feedLocked(recs[i])
	}
	w.flushLocked()
}

// process applies the detection/alarm rules to one record, post-reorder.
func (w *Watcher) process(r events.Record) {
	// ALPS placements feed the online apid → job resolution.
	if r.Stream == events.StreamALPS {
		if apid := alps.Apid(&r); apid != 0 && r.JobID != 0 {
			w.apids[apid] = r.JobID
			w.apidSeen[apid] = r.Time
		}
		return
	}
	// External indicators refresh the node's corroboration timestamp.
	if r.Stream.External() && externalIndicatorCategories[r.Category] && r.Component.IsValid() {
		node := r.Component
		if node.Level() == cname.LevelNode {
			w.lastExternal[node] = r.Time
		}
		return
	}
	if !r.Stream.Internal() || !r.Component.IsValid() {
		return
	}
	node := r.Component

	// Terminal events: confirm failures with refractory merging.
	if IsTerminal(&r) {
		if prev, ok := w.lastTerminal[node]; ok && r.Time.Sub(prev) < w.cfg.RefractoryGap {
			w.lastTerminal[node] = r.Time
			return
		}
		w.lastTerminal[node] = r.Time
		w.OnDetection(Detection{Node: node, Time: r.Time, Terminal: r.Category,
			JobID: alps.Resolve(r.JobID, w.apids)})
		return
	}

	// Precursor bursts: alarm on two distinct predictable categories
	// within the burst window.
	if w.OnAlarm == nil || r.Severity < events.SevWarning || !alarmEligible(r.Category) {
		return
	}
	evs := w.recent[node]
	// One entry per category, refreshed to the category's latest
	// sighting; other categories are pruned by the window. A category has
	// an event within the window exactly when its latest sighting is, so
	// the distinct count below matches an exhaustive event list — while a
	// flood of one repeated warning (the EDAC benign-burst shape)
	// refreshes in place instead of growing the window without bound.
	keep := evs[:0]
	seen := false
	for _, e := range evs {
		switch {
		case e.cat == r.Category:
			if r.Time.After(e.t) {
				e.t = r.Time
			}
			seen = true
			keep = append(keep, e)
		case r.Time.Sub(e.t) <= w.BurstWindow:
			keep = append(keep, e)
		}
	}
	if !seen {
		keep = append(keep, watchEvent{r.Time, r.Category})
	}
	w.recent[node] = keep
	distinct := 0
	for _, e := range keep {
		if r.Time.Sub(e.t) <= w.BurstWindow {
			distinct++
		}
	}
	if distinct < 2 {
		return
	}
	// Suppress repeats within the refractory gap.
	if prev, ok := w.lastAlarm[node]; ok && r.Time.Sub(prev) < w.cfg.RefractoryGap {
		return
	}
	w.lastAlarm[node] = r.Time
	ext, sawExt := w.lastExternal[node]
	w.OnAlarm(Alarm{
		Node:        node,
		Time:        r.Time,
		HasExternal: sawExt && r.Time.Sub(ext) <= w.cfg.ExternalWindow,
	})
}

// maybeEvict prunes state older than the horizon. Sweeps run as the
// watermark advances a quarter-horizon past the previous sweep, so the
// amortised cost is O(1) per record.
func (w *Watcher) maybeEvict() {
	if w.EvictionHorizon <= 0 {
		return
	}
	if w.watermark.Sub(w.lastEvict) < w.EvictionHorizon/4 {
		return
	}
	w.lastEvict = w.watermark
	cutoff := w.watermark.Add(-w.EvictionHorizon)
	for n, t := range w.lastTerminal {
		if t.Before(cutoff) {
			delete(w.lastTerminal, n)
			w.stats.Evicted++
		}
	}
	for n, t := range w.lastExternal {
		if t.Before(cutoff) {
			delete(w.lastExternal, n)
			w.stats.Evicted++
		}
	}
	for n, t := range w.lastAlarm {
		if t.Before(cutoff) {
			delete(w.lastAlarm, n)
			w.stats.Evicted++
		}
	}
	for n, evs := range w.recent {
		newest := time.Time{}
		for _, e := range evs {
			if e.t.After(newest) {
				newest = e.t
			}
		}
		if newest.Before(cutoff) {
			delete(w.recent, n)
			w.stats.Evicted++
		}
	}
	for apid, t := range w.apidSeen {
		if t.Before(cutoff) {
			delete(w.apidSeen, apid)
			delete(w.apids, apid)
			w.stats.Evicted++
		}
	}
}

// recordHeap is a min-heap on record time — the reorder buffer.
type recordHeap []events.Record

func (h recordHeap) Len() int            { return len(h) }
func (h recordHeap) Less(i, j int) bool  { return h[i].Time.Before(h[j].Time) }
func (h recordHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *recordHeap) Push(x interface{}) { *h = append(*h, x.(events.Record)) }
func (h *recordHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
