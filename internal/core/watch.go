package core

import (
	"time"

	"hpcfail/internal/alps"
	"hpcfail/internal/cname"
	"hpcfail/internal/events"
)

// Watcher is the online form of the detector: it consumes log records
// in arrival order and emits confirmed failures and early-warning
// alarms as they happen — the shape a production health monitor needs,
// in contrast to the batch Detect/Diagnose path.
//
// The watcher applies the same rules as the batch pipeline: terminal
// internal events (minus scheduled shutdowns) confirm failures with a
// per-node refractory merge; bursts of two distinct predictable
// precursor categories raise alarms, optionally corroborated by
// external indicators.
type Watcher struct {
	cfg Config
	// OnDetection is invoked for each confirmed failure. Required.
	OnDetection func(Detection)
	// OnAlarm, when set, is invoked for each early-warning burst.
	OnAlarm func(Alarm)
	// BurstWindow groups precursor events (default 10 minutes).
	BurstWindow time.Duration

	lastTerminal map[cname.Name]time.Time
	// recent precursor categories per node (pruned by BurstWindow).
	recent map[cname.Name][]watchEvent
	// lastExternal remembers the latest external indicator per node.
	lastExternal map[cname.Name]time.Time
	// lastAlarm suppresses alarm repeats.
	lastAlarm map[cname.Name]time.Time
	// apids accumulates the ALPS apid → job resolution as placement
	// records stream in, so detections report scheduler job ids.
	apids map[int64]int64
}

type watchEvent struct {
	t   time.Time
	cat string
}

// NewWatcher constructs a watcher with the given pipeline windows.
func NewWatcher(cfg Config, onDetection func(Detection)) *Watcher {
	return &Watcher{
		cfg:          cfg,
		OnDetection:  onDetection,
		BurstWindow:  10 * time.Minute,
		lastTerminal: make(map[cname.Name]time.Time),
		recent:       make(map[cname.Name][]watchEvent),
		lastExternal: make(map[cname.Name]time.Time),
		lastAlarm:    make(map[cname.Name]time.Time),
		apids:        make(map[int64]int64),
	}
}

// Feed processes one record. Records must arrive in non-decreasing time
// order (per real log tailing); out-of-order records are still handled
// but may miss burst pairings.
func (w *Watcher) Feed(r events.Record) {
	// ALPS placements feed the online apid → job resolution.
	if r.Stream == events.StreamALPS {
		if apid := alps.Apid(&r); apid != 0 && r.JobID != 0 {
			w.apids[apid] = r.JobID
		}
		return
	}
	// External indicators refresh the node's corroboration timestamp.
	if r.Stream.External() && externalIndicatorCategories[r.Category] && r.Component.IsValid() {
		node := r.Component
		if node.Level() == cname.LevelNode {
			w.lastExternal[node] = r.Time
		}
		return
	}
	if !r.Stream.Internal() || !r.Component.IsValid() {
		return
	}
	node := r.Component

	// Terminal events: confirm failures with refractory merging.
	if IsTerminal(&r) {
		if prev, ok := w.lastTerminal[node]; ok && r.Time.Sub(prev) < w.cfg.RefractoryGap {
			w.lastTerminal[node] = r.Time
			return
		}
		w.lastTerminal[node] = r.Time
		w.OnDetection(Detection{Node: node, Time: r.Time, Terminal: r.Category,
			JobID: alps.Resolve(r.JobID, w.apids)})
		return
	}

	// Precursor bursts: alarm on two distinct predictable categories
	// within the burst window.
	if w.OnAlarm == nil || r.Severity < events.SevWarning || !alarmEligible(r.Category) {
		return
	}
	evs := w.recent[node]
	// Prune the window.
	keep := evs[:0]
	for _, e := range evs {
		if r.Time.Sub(e.t) <= w.BurstWindow {
			keep = append(keep, e)
		}
	}
	evs = append(keep, watchEvent{r.Time, r.Category})
	w.recent[node] = evs
	distinct := map[string]bool{}
	for _, e := range evs {
		distinct[e.cat] = true
	}
	if len(distinct) < 2 {
		return
	}
	// Suppress repeats within the refractory gap.
	if prev, ok := w.lastAlarm[node]; ok && r.Time.Sub(prev) < w.cfg.RefractoryGap {
		return
	}
	w.lastAlarm[node] = r.Time
	ext, sawExt := w.lastExternal[node]
	w.OnAlarm(Alarm{
		Node:        node,
		Time:        r.Time,
		HasExternal: sawExt && r.Time.Sub(ext) <= w.cfg.ExternalWindow,
	})
}

// FeedAll streams a batch through the watcher in order.
func (w *Watcher) FeedAll(recs []events.Record) {
	for i := range recs {
		w.Feed(recs[i])
	}
}
