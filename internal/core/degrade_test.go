package core

import (
	"strings"
	"testing"

	"hpcfail/internal/events"
	"hpcfail/internal/logstore"
)

func TestAssessDegradationClean(t *testing.T) {
	_, store := buildScenario(t, 7, 307)
	deg := AssessDegradation(store)
	if deg.Degraded() {
		t.Fatalf("full scenario assessed degraded: %+v", deg)
	}
	if deg.Factor() != 1 || deg.Note() != "" {
		t.Errorf("clean corpus: factor=%v note=%q", deg.Factor(), deg.Note())
	}
}

func TestRunDegradedWithoutExternalAndScheduler(t *testing.T) {
	_, store := buildScenario(t, 7, 307)
	clean := Run(store, DefaultConfig())
	if clean.Degradation.Degraded() {
		t.Fatal("clean run marked degraded")
	}

	// Silence the external and scheduler voices — the chaos stream-loss
	// shape — and diagnose what remains.
	var kept []events.Record
	for _, r := range store.All() {
		if r.Stream.External() || r.Stream == events.StreamScheduler {
			continue
		}
		kept = append(kept, r)
	}
	res := Run(logstore.New(kept), DefaultConfig())

	deg := res.Degradation
	if !deg.MissingExternal || !deg.MissingScheduler || deg.MissingInternal || deg.MissingALPS {
		t.Fatalf("degradation = %+v", deg)
	}
	if len(res.Detections) != len(clean.Detections) {
		t.Fatalf("internal-only detection count changed: %d vs %d",
			len(res.Detections), len(clean.Detections))
	}
	for i, d := range res.Diagnoses {
		if !d.Degraded {
			t.Fatalf("diagnosis %d not marked degraded", i)
		}
		if !strings.Contains(d.Note, "external") || !strings.Contains(d.Note, "scheduler") {
			t.Fatalf("diagnosis %d note = %q", i, d.Note)
		}
		if want := clean.Diagnoses[i].Confidence * deg.Factor(); !closeTo(d.Confidence, want) {
			t.Errorf("diagnosis %d confidence = %v, want %v", i, d.Confidence, want)
		}
		if len(d.ExternalIndicators) != 0 {
			t.Errorf("diagnosis %d has external indicators without an external stream", i)
		}
	}
	if f := deg.Factor(); f >= 1 || f <= 0 {
		t.Errorf("degraded factor = %v, want in (0,1)", f)
	}
}

func TestRunParallelMatchesRunDegraded(t *testing.T) {
	_, store := buildScenario(t, 7, 307)
	var kept []events.Record
	for _, r := range store.All() {
		if r.Stream.External() {
			continue
		}
		kept = append(kept, r)
	}
	sub := logstore.New(kept)
	serial := Run(sub, DefaultConfig())
	par := RunParallel(sub, DefaultConfig(), 4)
	if len(par.Diagnoses) != len(serial.Diagnoses) {
		t.Fatalf("parallel %d diagnoses vs %d", len(par.Diagnoses), len(serial.Diagnoses))
	}
	for i := range serial.Diagnoses {
		a, b := serial.Diagnoses[i], par.Diagnoses[i]
		if a.Degraded != b.Degraded || a.Note != b.Note || !closeTo(a.Confidence, b.Confidence) {
			t.Fatalf("diagnosis %d differs: %+v vs %+v", i, a, b)
		}
	}
	if par.Degradation != serial.Degradation {
		t.Errorf("degradation differs: %+v vs %+v", par.Degradation, serial.Degradation)
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
