package core

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// watchRun feeds records through a fresh watcher (detections + alarms
// collected), optionally restoring from a snapshot first and optionally
// snapshotting after k records (feeding only the first k, no flush).
type watchTrace struct {
	dets   []Detection
	alarms []Alarm
}

func (tr *watchTrace) watcher(reorder time.Duration) *Watcher {
	w := NewWatcher(DefaultConfig(), func(d Detection) { tr.dets = append(tr.dets, d) })
	w.OnAlarm = func(a Alarm) { tr.alarms = append(tr.alarms, a) }
	w.ReorderWindow = reorder
	return w
}

// TestWatcherSnapshotContinuity: snapshot mid-sequence, restore into a
// fresh watcher, feed the remainder — the concatenated detection and
// alarm streams must equal an uninterrupted run, including when the
// snapshot lands while records sit in the reorder buffer.
func TestWatcherSnapshotContinuity(t *testing.T) {
	_, store := buildScenario(t, 7, 307)
	recs := store.All()
	for _, reorder := range []time.Duration{0, 10 * time.Minute} {
		var whole watchTrace
		w := whole.watcher(reorder)
		for _, r := range recs {
			w.Feed(r)
		}
		w.Flush()

		for _, cut := range []int{0, 1, len(recs) / 3, len(recs) / 2, len(recs) - 1} {
			var first watchTrace
			a := first.watcher(reorder)
			for _, r := range recs[:cut] {
				a.Feed(r)
			}
			snap := a.Snapshot()

			// The checkpoint file round-trip must be lossless.
			blob, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			var back WatcherSnapshot
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatal(err)
			}

			var second watchTrace
			b := second.watcher(reorder)
			b.Restore(back)
			for _, r := range recs[cut:] {
				b.Feed(r)
			}
			b.Flush()

			got := append(append([]Detection{}, first.dets...), second.dets...)
			if !reflect.DeepEqual(got, whole.dets) {
				t.Fatalf("reorder %v cut %d: detections diverge: %d+%d vs %d",
					reorder, cut, len(first.dets), len(second.dets), len(whole.dets))
			}
			gotAlarms := append(append([]Alarm{}, first.alarms...), second.alarms...)
			if !reflect.DeepEqual(gotAlarms, whole.alarms) {
				t.Fatalf("reorder %v cut %d: alarms diverge: %d+%d vs %d",
					reorder, cut, len(first.alarms), len(second.alarms), len(whole.alarms))
			}
		}
	}
}

// TestWatcherSnapshotIsDeepCopy: mutating the live watcher after a
// snapshot must not leak into the snapshot, and restoring must not
// alias the snapshot's maps.
func TestWatcherSnapshotIsDeepCopy(t *testing.T) {
	_, store := buildScenario(t, 3, 11)
	recs := store.All()
	var tr watchTrace
	w := tr.watcher(10 * time.Minute)
	for _, r := range recs[:len(recs)/2] {
		w.Feed(r)
	}
	snap := w.Snapshot()
	before, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[len(recs)/2:] {
		w.Feed(r)
	}
	w.Flush()
	after, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("snapshot mutated by continued feeding")
	}

	var tr2 watchTrace
	v := tr2.watcher(10 * time.Minute)
	v.Restore(snap)
	for _, r := range recs[len(recs)/2:] {
		v.Feed(r)
	}
	v.Flush()
	final, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(final) {
		t.Fatal("snapshot aliased by Restore")
	}
}

// TestWatcherSnapshotStats: hardening counters travel with the snapshot
// so a resumed watch reports cumulative activity.
func TestWatcherSnapshotStats(t *testing.T) {
	_, store := buildScenario(t, 3, 19)
	recs := store.All()
	var tr watchTrace
	w := tr.watcher(0)
	for _, r := range recs {
		w.Feed(r)
	}
	var tr2 watchTrace
	v := tr2.watcher(0)
	v.Restore(w.Snapshot())
	if got, want := v.Stats().Fed, len(recs); got != want {
		t.Fatalf("restored Fed = %d, want %d", got, want)
	}
}
