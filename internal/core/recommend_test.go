package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestRecommendEmpty(t *testing.T) {
	if recs := Recommend(&Result{}); recs != nil {
		t.Errorf("empty result should yield no recommendations, got %v", recs)
	}
}

func TestRecommendFromScenario(t *testing.T) {
	_, store := buildScenario(t, 14, 211)
	res := Run(store, DefaultConfig())
	recs := Recommend(res)
	if len(recs) < 3 {
		t.Fatalf("expected several recommendations, got %d", len(recs))
	}
	// Sorted by severity descending.
	for i := 1; i < len(recs); i++ {
		if recs[i].Severity > recs[i-1].Severity {
			t.Error("recommendations not sorted by severity")
		}
	}
	// The app-triggered and lead-time rules must fire on a standard S1
	// scenario.
	var joined strings.Builder
	for _, r := range recs {
		if r.Finding == "" || r.Action == "" {
			t.Errorf("empty recommendation field: %+v", r)
		}
		joined.WriteString(r.Finding)
		joined.WriteString(r.Action)
	}
	text := joined.String()
	for _, want := range []string{"application-triggered", "external"} {
		if !strings.Contains(text, want) {
			t.Errorf("recommendations missing %q topic:\n%s", want, text)
		}
	}
}

// TestRecommendOrderingGolden pins the recommendation order: severity
// descending, rule order within a severity band (the order the rules
// appear in Recommend). The remedy queue consumes downstream action
// lists, so any reordering here must be a deliberate, test-visible
// change.
func TestRecommendOrderingGolden(t *testing.T) {
	_, store := buildScenario(t, 14, 211)
	res := Run(store, DefaultConfig())
	recs := Recommend(res)
	if len(recs) == 0 {
		t.Fatal("scenario produced no recommendations")
	}
	var got []string
	for _, r := range recs {
		got = append(got, ruleTopic(r))
	}
	// The canonical order: severity descending, rule order within a
	// band. Rules whose statistic did not trip simply drop out, so the
	// emitted list must be a subsequence of the canon.
	canon := []string{
		"application-triggered",
		"buggy-jobs",
		"dominant-cause",
		"lead-time",
		"unknown-cause",
		"call-traces",
	}
	ci := 0
	for _, topic := range got {
		for ci < len(canon) && canon[ci] != topic {
			ci++
		}
		if ci == len(canon) {
			t.Fatalf("recommendation order changed:\n got %v\nwant subsequence of %v", got, canon)
		}
		ci++
	}
	if len(got) < 4 {
		t.Fatalf("expected at least 4 rules to fire on S1, got %v", got)
	}
	// Re-running the pipeline reproduces the exact same list.
	again := Recommend(Run(store, DefaultConfig()))
	if !reflect.DeepEqual(recs, again) {
		t.Fatal("Recommend is not deterministic across runs")
	}
}

// ruleTopic maps a recommendation back to the rule that emitted it.
func ruleTopic(r Recommendation) string {
	switch {
	case strings.Contains(r.Finding, "application-triggered"):
		return "application-triggered"
	case strings.Contains(r.Action, "buggy APIDs"):
		return "buggy-jobs"
	case strings.Contains(r.Finding, "dominated by a single root cause"):
		return "dominant-cause"
	case strings.Contains(r.Finding, "external indicators"):
		return "lead-time"
	case strings.Contains(r.Finding, "no deducible root cause"):
		return "unknown-cause"
	case strings.Contains(r.Finding, "call traces"):
		return "call-traces"
	default:
		return "unknown-rule:" + r.Finding
	}
}

// TestRecommendActionsDeterministic checks the per-node action list is
// sorted by (node, kind) and invariant under diagnosis shuffling.
func TestRecommendActionsDeterministic(t *testing.T) {
	_, store := buildScenario(t, 14, 211)
	res := Run(store, DefaultConfig())
	acts := RecommendActions(res)
	if len(acts) == 0 {
		t.Fatal("scenario produced no node actions")
	}
	for i := 1; i < len(acts); i++ {
		ki, _ := acts[i-1].Node.Key()
		kj, _ := acts[i].Node.Key()
		if ki > kj {
			t.Fatalf("actions not sorted by node at %d: %s after %s",
				i, acts[i].Node, acts[i-1].Node)
		}
		if ki == kj && acts[i-1].Kind > acts[i].Kind {
			t.Fatalf("actions not sorted by kind within node %s: %q after %q",
				acts[i].Node, acts[i].Kind, acts[i-1].Kind)
		}
	}
	notify := 0
	for _, a := range acts {
		if a.Kind == "notify" {
			notify++
			if a.JobID == 0 && a.Cause == "" {
				t.Errorf("notify action with no job or cause: %+v", a)
			}
		}
	}
	if notify == 0 {
		t.Error("S1 scenario should produce notify actions for app-triggered failures")
	}

	// Shuffling the diagnosis order must not change the action list.
	shuffled := *res
	shuffled.Diagnoses = append([]Diagnosis(nil), res.Diagnoses...)
	rng := rand.New(rand.NewSource(97))
	rng.Shuffle(len(shuffled.Diagnoses), func(i, j int) {
		shuffled.Diagnoses[i], shuffled.Diagnoses[j] = shuffled.Diagnoses[j], shuffled.Diagnoses[i]
	})
	if got := RecommendActions(&shuffled); !reflect.DeepEqual(got, acts) {
		t.Fatal("RecommendActions order depends on diagnosis order")
	}
}

func TestBuggyJobs(t *testing.T) {
	_, store := buildScenario(t, 14, 223)
	res := Run(store, DefaultConfig())
	buggy := res.JobAnalyzer().BuggyJobs(3)
	if len(buggy) == 0 {
		t.Fatal("two weeks of app episodes should implicate at least one job")
	}
	prev := 1 << 30
	for _, b := range buggy {
		if b.Failures < 3 {
			t.Errorf("job %d below threshold: %d", b.JobID, b.Failures)
		}
		if b.Failures > prev {
			t.Error("buggy jobs not sorted by failures desc")
		}
		prev = b.Failures
		if b.JobID == 0 {
			t.Error("buggy job without ID")
		}
	}
	// Threshold respected: raising it shrinks the list.
	if len(res.JobAnalyzer().BuggyJobs(1<<20)) != 0 {
		t.Error("absurd threshold should return nothing")
	}
}
