package core

import (
	"strings"
	"testing"
)

func TestRecommendEmpty(t *testing.T) {
	if recs := Recommend(&Result{}); recs != nil {
		t.Errorf("empty result should yield no recommendations, got %v", recs)
	}
}

func TestRecommendFromScenario(t *testing.T) {
	_, store := buildScenario(t, 14, 211)
	res := Run(store, DefaultConfig())
	recs := Recommend(res)
	if len(recs) < 3 {
		t.Fatalf("expected several recommendations, got %d", len(recs))
	}
	// Sorted by severity descending.
	for i := 1; i < len(recs); i++ {
		if recs[i].Severity > recs[i-1].Severity {
			t.Error("recommendations not sorted by severity")
		}
	}
	// The app-triggered and lead-time rules must fire on a standard S1
	// scenario.
	var joined strings.Builder
	for _, r := range recs {
		if r.Finding == "" || r.Action == "" {
			t.Errorf("empty recommendation field: %+v", r)
		}
		joined.WriteString(r.Finding)
		joined.WriteString(r.Action)
	}
	text := joined.String()
	for _, want := range []string{"application-triggered", "external"} {
		if !strings.Contains(text, want) {
			t.Errorf("recommendations missing %q topic:\n%s", want, text)
		}
	}
}

func TestBuggyJobs(t *testing.T) {
	_, store := buildScenario(t, 14, 223)
	res := Run(store, DefaultConfig())
	buggy := res.JobAnalyzer().BuggyJobs(3)
	if len(buggy) == 0 {
		t.Fatal("two weeks of app episodes should implicate at least one job")
	}
	prev := 1 << 30
	for _, b := range buggy {
		if b.Failures < 3 {
			t.Errorf("job %d below threshold: %d", b.JobID, b.Failures)
		}
		if b.Failures > prev {
			t.Error("buggy jobs not sorted by failures desc")
		}
		prev = b.Failures
		if b.JobID == 0 {
			t.Error("buggy job without ID")
		}
	}
	// Threshold respected: raising it shrinks the list.
	if len(res.JobAnalyzer().BuggyJobs(1<<20)) != 0 {
		t.Error("absurd threshold should return nothing")
	}
}
