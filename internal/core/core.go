// Package core implements the paper's primary contribution: the holistic
// node-failure diagnosis pipeline. From raw parsed logs alone — no
// simulator ground truth — it:
//
//  1. detects confirmed node failures in the internal log family
//     (Detector, step 1 of the paper's Fig 2 methodology),
//  2. correlates each failure with external blade/cabinet/ERD evidence
//     over containment-keyed time windows (Correlator, step 2),
//  3. attributes failures to jobs from the scheduler log (JobAnalyzer,
//     step 3),
//  4. infers the root cause by combining stack-trace module analysis
//     (Table IV), internal event signatures and job attribution
//     (RootCauser),
//  5. quantifies lead times with and without external indicators
//     (LeadTime, Fig 13), and
//  6. measures the false-positive effect of external correlation
//     (FalsePositives, Fig 14).
package core

import (
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
)

// Config holds the pipeline's correlation windows.
type Config struct {
	// InternalWindow is how far back from a failure the internal
	// precursor search reaches.
	InternalWindow time.Duration
	// ExternalWindow is how far back the external early-indicator
	// search reaches (fail-slow indicators precede failures by roughly
	// 5× the internal lead).
	ExternalWindow time.Duration
	// ConfirmWindow is the look-ahead used when deciding whether an
	// external fault (NHF, NVF) "corresponds to" a failure.
	ConfirmWindow time.Duration
	// RefractoryGap merges terminal events on one node closer than this
	// into a single failure.
	RefractoryGap time.Duration
	// BladeFaultWindow bounds the blade/cabinet health-fault
	// correlation around a failure (Fig 7).
	BladeFaultWindow time.Duration
}

// DefaultConfig returns the windows used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		InternalWindow:   30 * time.Minute,
		ExternalWindow:   4 * time.Hour,
		ConfirmWindow:    15 * time.Minute,
		RefractoryGap:    10 * time.Minute,
		BladeFaultWindow: 15 * time.Minute,
	}
}

// Detection is one confirmed node failure found in the internal logs.
type Detection struct {
	// Node is the failed node.
	Node cname.Name
	// Time is the terminal event's timestamp.
	Time time.Time
	// Terminal is the terminal event category ("node_shutdown",
	// "silent_shutdown" or "nhc_admindown").
	Terminal string
	// JobID is the id carried on the terminal event, if any. On Cray
	// systems compute-node logs reference ALPS apids; Diagnose (and the
	// streaming Watcher) resolve them to scheduler job ids through the
	// ALPS placement log.
	JobID int64
}

// terminalCategories are the internal event categories that confirm a
// node failure. Scheduled shutdowns are excluded by intent. A kernel
// panic counts as terminal too — a panicking node is dead even when the
// subsequent shutdown line is missing from the log (production logging
// discrepancies, challenge #1); the refractory gap merges panic and
// shutdown into one detection.
var terminalCategories = map[string]bool{
	faults.NodeShutdown.Category():   true,
	faults.SilentShutdown.Category(): true,
	faults.KernelPanic.Category():    true,
	"nhc_admindown":                  true,
}

// IsTerminal reports whether a record confirms a node failure.
func IsTerminal(r *events.Record) bool {
	if !r.Stream.Internal() {
		return false
	}
	if !terminalCategories[r.Category] {
		return false
	}
	// Intended shutdowns (operator, SWO service windows) are excluded.
	return r.Field("intent") != "scheduled"
}

// detectIndices returns the indices of terminal records that survive
// refractory merging — the records Detect turns into Detections. The
// refractory state is per-node, so the result over any record subset
// that keeps each node's records together and in order (e.g. one shard
// of a ShardedStore) equals the global result restricted to that
// subset.
func detectIndices(recs []events.Record, cfg Config) []int {
	var out []int
	last := map[cname.Name]time.Time{}
	for i := range recs {
		r := &recs[i]
		if !IsTerminal(r) {
			continue
		}
		if prev, ok := last[r.Component]; ok && r.Time.Sub(prev) < cfg.RefractoryGap {
			last[r.Component] = r.Time
			continue
		}
		last[r.Component] = r.Time
		out = append(out, i)
	}
	return out
}

// detector accumulates confirmed failures record-by-record — the
// incremental form of Detect that Run's single-pass store traversal
// feeds alongside the job-table and apid-index builders. Records must
// arrive in time-sorted order (per node is enough, as with
// detectIndices).
type detector struct {
	cfg  Config
	last map[cname.Name]time.Time
	out  []Detection
}

func newDetector(cfg Config) *detector {
	return &detector{cfg: cfg, last: map[cname.Name]time.Time{}}
}

// add folds one record into the detection state.
func (dt *detector) add(r *events.Record) {
	if !IsTerminal(r) {
		return
	}
	if prev, ok := dt.last[r.Component]; ok && r.Time.Sub(prev) < dt.cfg.RefractoryGap {
		dt.last[r.Component] = r.Time
		return
	}
	dt.last[r.Component] = r.Time
	dt.out = append(dt.out, Detection{
		Node:     r.Component,
		Time:     r.Time,
		Terminal: r.Category,
		JobID:    r.JobID,
	})
}

// Detect scans time-sorted records for confirmed failures, merging
// terminal events on one node within the refractory gap.
func Detect(recs []events.Record, cfg Config) []Detection {
	dt := newDetector(cfg)
	for i := range recs {
		dt.add(&recs[i])
	}
	return dt.out
}
