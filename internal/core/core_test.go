package core

import (
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logparse"
	"hpcfail/internal/logstore"
	"hpcfail/internal/topology"
)

var simStart = time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)

// buildScenario generates a small scenario and the store built from its
// rendered-then-parsed logs, so every test exercises the full text
// round trip the real pipeline would see.
func buildScenario(t *testing.T, days int, seed uint64) (*faultsim.Scenario, *logstore.Store) {
	t.Helper()
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 768, CabinetCols: 2,
		Scheduler: topology.SchedulerSlurm, Cray: true}
	p.Workload.MeanInterarrival = 20 * time.Minute
	scn, err := faultsim.Generate(p, simStart, simStart.Add(time.Duration(days)*24*time.Hour), seed)
	if err != nil {
		t.Fatal(err)
	}
	return scn, storeFromScenario(t, scn)
}

func storeFromScenario(t *testing.T, scn *faultsim.Scenario) *logstore.Store {
	t.Helper()
	sched := scn.Profile.Spec.Scheduler
	var parsed []events.Record
	for stream, lines := range loggen.RenderAll(scn.Records, sched) {
		_ = stream
		_ = lines
	}
	// RenderAll groups by file name; re-parse per stream.
	byStream := map[events.Stream][]string{}
	for _, r := range scn.Records {
		byStream[r.Stream] = append(byStream[r.Stream], loggen.Render(r, sched)...)
	}
	for stream, lines := range byStream {
		got, errs := logparse.ParseLines(stream, sched, lines)
		if len(errs) > 0 {
			t.Fatalf("parse errors on %v: %v", stream, errs[0])
		}
		parsed = append(parsed, got...)
	}
	return logstore.New(parsed)
}

// matchDetections aligns detections with ground truth by node and ±30 s.
func matchDetections(scn *faultsim.Scenario, dets []Detection) (matched map[int]int, extra []Detection) {
	matched = map[int]int{} // detection index -> failure index
	used := map[int]bool{}
	for di, d := range dets {
		found := false
		for fi, f := range scn.Failures {
			if used[fi] || f.Node != d.Node {
				continue
			}
			gap := f.Time.Sub(d.Time)
			if gap < 0 {
				gap = -gap
			}
			if gap <= 30*time.Second {
				matched[di] = fi
				used[fi] = true
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, d)
		}
	}
	return matched, extra
}

func TestDetectRecoversGroundTruth(t *testing.T) {
	scn, store := buildScenario(t, 7, 101)
	dets := Detect(store.All(), DefaultConfig())
	matched, extra := matchDetections(scn, dets)
	if len(extra) > 0 {
		t.Errorf("%d spurious detections, e.g. %+v", len(extra), extra[0])
	}
	recall := float64(len(matched)) / float64(len(scn.Failures))
	if recall < 0.99 {
		t.Errorf("detection recall = %.3f (found %d of %d)", recall, len(matched), len(scn.Failures))
	}
}

func TestDetectExcludesScheduledShutdowns(t *testing.T) {
	recs := []events.Record{
		func() events.Record {
			r := events.Record{Time: simStart, Stream: events.StreamConsole,
				Component: cname.MustParse("c0-0c0s0n0"),
				Category:  faults.NodeShutdown.Category(), Severity: events.SevInfo}
			r.SetField("intent", "scheduled")
			return r
		}(),
	}
	if dets := Detect(recs, DefaultConfig()); len(dets) != 0 {
		t.Errorf("scheduled shutdown detected as failure: %+v", dets)
	}
}

func TestDetectRefractoryMerging(t *testing.T) {
	node := cname.MustParse("c0-0c0s0n0")
	mk := func(offset time.Duration) events.Record {
		return events.Record{Time: simStart.Add(offset), Stream: events.StreamConsole,
			Component: node, Category: faults.NodeShutdown.Category(), Severity: events.SevCritical}
	}
	recs := []events.Record{mk(0), mk(2 * time.Minute), mk(40 * time.Minute)}
	dets := Detect(recs, DefaultConfig())
	if len(dets) != 2 {
		t.Errorf("got %d detections, want 2 (refractory merge)", len(dets))
	}
}

func TestRootCauseAccuracy(t *testing.T) {
	scn, store := buildScenario(t, 14, 103)
	res := Run(store, DefaultConfig())
	matched, _ := matchDetections(scn, res.Detections)
	if len(matched) < 20 {
		t.Fatalf("too few matched failures (%d) to assess accuracy", len(matched))
	}
	causeHits, classHits := 0, 0
	for di, fi := range matched {
		truth := scn.Failures[fi]
		diag := res.Diagnoses[di]
		if diag.Cause == truth.Cause {
			causeHits++
		}
		if diag.Class == truth.Cause.Class() {
			classHits++
		}
	}
	causeAcc := float64(causeHits) / float64(len(matched))
	classAcc := float64(classHits) / float64(len(matched))
	if causeAcc < 0.9 {
		t.Errorf("cause-level accuracy = %.3f, want >= 0.9", causeAcc)
	}
	if classAcc < 0.9 {
		t.Errorf("class-level accuracy = %.3f, want >= 0.9", classAcc)
	}
}

func TestJobAttribution(t *testing.T) {
	scn, store := buildScenario(t, 7, 107)
	res := Run(store, DefaultConfig())
	matched, _ := matchDetections(scn, res.Detections)
	attributed, truthJob := 0, 0
	for di, fi := range matched {
		truth := scn.Failures[fi]
		if truth.JobID == 0 {
			continue
		}
		truthJob++
		if res.Diagnoses[di].JobID == truth.JobID {
			attributed++
		}
	}
	if truthJob == 0 {
		t.Fatal("no job-linked failures in scenario")
	}
	frac := float64(attributed) / float64(truthJob)
	if frac < 0.9 {
		t.Errorf("job attribution rate = %.3f (%d/%d)", frac, attributed, truthJob)
	}
}

func TestLeadTimeRecovery(t *testing.T) {
	scn, store := buildScenario(t, 14, 109)
	res := Run(store, DefaultConfig())
	matched, _ := matchDetections(scn, res.Detections)
	sum := SummarizeLeadTimes(res.Diagnoses)
	if sum.Enhanceable == 0 {
		t.Fatal("no enhanceable failures found")
	}
	// The generator plants external leads at ~5× internal; the pipeline
	// should measure a factor in [3, 8].
	if sum.MeanFactor < 3 || sum.MeanFactor > 8 {
		t.Errorf("mean enhancement factor = %.2f, want ~5", sum.MeanFactor)
	}
	// Enhanceable fraction should roughly match ground truth.
	truthEnh := 0
	for _, fi := range matched {
		if scn.Failures[fi].HasExternalIndicator {
			truthEnh++
		}
	}
	gotFrac := sum.EnhanceableFraction()
	wantFrac := float64(truthEnh) / float64(len(matched))
	if gotFrac < wantFrac*0.6 || gotFrac > wantFrac*1.6+0.05 {
		t.Errorf("enhanceable fraction = %.3f, ground truth %.3f", gotFrac, wantFrac)
	}
}

func TestNHFOutcomesMatchTruth(t *testing.T) {
	scn, store := buildScenario(t, 7, 113)
	res := Run(store, DefaultConfig())
	corr := res.Correlator(DefaultConfig())
	analyses := corr.AnalyzeNHFs()
	if len(analyses) != len(scn.NHFs) {
		t.Fatalf("analyzed %d NHFs, ground truth has %d", len(analyses), len(scn.NHFs))
	}
	// Align by (node, time).
	truth := map[string]faultsim.NHFKind{}
	for _, n := range scn.NHFs {
		truth[n.Node.String()+n.Time.UTC().Format(time.RFC3339Nano)] = n.Kind
	}
	hits := 0
	for _, a := range analyses {
		k, ok := truth[a.Node.String()+a.Time.UTC().Format(time.RFC3339Nano)]
		if !ok {
			t.Fatalf("NHF %v@%v not in ground truth", a.Node, a.Time)
		}
		want := map[faultsim.NHFKind]NHFOutcome{
			faultsim.NHFFailed:   NHFOutcomeFailed,
			faultsim.NHFPowerOff: NHFOutcomePowerOff,
			faultsim.NHFSkipped:  NHFOutcomeSkipped,
		}[k]
		if a.Outcome == want {
			hits++
		}
	}
	acc := float64(hits) / float64(len(analyses))
	if acc < 0.9 {
		t.Errorf("NHF outcome accuracy = %.3f", acc)
	}
}

func TestNVFCorrespondenceHigh(t *testing.T) {
	scn, store := buildScenario(t, 28, 127)
	res := Run(store, DefaultConfig())
	corr := res.Correlator(DefaultConfig())
	nvfs := corr.AnalyzeNVFs()
	if len(nvfs) < 3 {
		t.Skipf("only %d NVFs generated; need more for a rate", len(nvfs))
	}
	failed := 0
	for _, a := range nvfs {
		if a.Failed {
			failed++
		}
	}
	frac := FaultCorrespondence(failed, len(nvfs))
	// Fig 5: NVFs correspond to failures 67–97 % of the time.
	if frac < 0.5 {
		t.Errorf("NVF failure correspondence = %.2f (%d/%d), want high", frac, failed, len(nvfs))
	}
	_ = scn
}

func TestBladeCabinetCorrelationWeak(t *testing.T) {
	_, store := buildScenario(t, 14, 131)
	res := Run(store, DefaultConfig())
	corr := res.Correlator(DefaultConfig())
	blade, cab := corr.BladeCabinetCorrelation()
	// Fig 7 envelope: blades 23–59 %, cabinets 19–58 %. Allow slack.
	if blade < 0.15 || blade > 0.75 {
		t.Errorf("blade fault correlation = %.2f, want 0.23-0.59 ballpark", blade)
	}
	if cab < 0.1 || cab > 0.85 {
		t.Errorf("cabinet fault correlation = %.2f, want 0.19-0.58 ballpark", cab)
	}
}

func TestFPRDropsWithExternalCorrelation(t *testing.T) {
	_, store := buildScenario(t, 14, 137)
	res := Run(store, DefaultConfig())
	pred := NewPredictor(store, DefaultConfig())
	cmp := CompareFPR(pred, res.Detections)
	without := cmp.WithoutExternal.FalsePositiveRate()
	with := cmp.WithExternal.FalsePositiveRate()
	if cmp.WithoutExternal.TP == 0 {
		t.Fatal("predictor found no true positives")
	}
	if with >= without {
		t.Errorf("FPR with external (%.3f) should be below without (%.3f)", with, without)
	}
}

func TestDominantDailyCauses(t *testing.T) {
	_, store := buildScenario(t, 14, 139)
	res := Run(store, DefaultConfig())
	days := res.DominantDailyCauses(3)
	if len(days) == 0 {
		t.Fatal("no qualifying days")
	}
	for _, d := range days {
		if d.Share <= 0 || d.Share > 1 {
			t.Errorf("share out of range: %+v", d)
		}
		if d.Failures < 3 {
			t.Errorf("minFailures not honoured: %+v", d)
		}
	}
}

func TestExitStats(t *testing.T) {
	scn, store := buildScenario(t, 7, 149)
	res := Run(store, DefaultConfig())
	ja := res.JobAnalyzer()
	es := ja.ExitStatsBetween(simStart, simStart.Add(7*24*time.Hour))
	if es.Total == 0 {
		t.Fatal("no jobs in window")
	}
	if f := es.SuccessFraction(); f < 0.80 || f > 0.99 {
		t.Errorf("success fraction = %.3f", f)
	}
	if f := es.AppFailedFraction(); f > 0.08 {
		t.Errorf("app-failed fraction = %.3f", f)
	}
	_ = scn
}

func TestSharedJobGroups(t *testing.T) {
	_, store := buildScenario(t, 14, 151)
	res := Run(store, DefaultConfig())
	groups := res.JobAnalyzer().SharedJobGroups()
	if len(groups) == 0 {
		t.Fatal("no shared-job failure groups over 2 weeks")
	}
	g := groups[0]
	if len(g.Failures) < 2 {
		t.Fatalf("first group has %d failures", len(g.Failures))
	}
	// Observation 8: groups span multiple blades.
	multi := false
	for _, gr := range groups {
		if gr.SpanBlade > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("no group spans multiple blades")
	}
}

func TestNHFOutcomeString(t *testing.T) {
	if NHFOutcomeFailed.String() != "failed" || NHFOutcomePowerOff.String() != "poweroff" ||
		NHFOutcomeSkipped.String() != "skipped" {
		t.Error("outcome names wrong")
	}
}

func TestLeadTimeFactorEdgeCases(t *testing.T) {
	if (LeadTime{}).Factor() != 0 {
		t.Error("zero lead time factor should be 0")
	}
	lt := LeadTime{Internal: time.Minute, External: 5 * time.Minute, Enhanced: true}
	if f := lt.Factor(); f != 5 {
		t.Errorf("factor = %v", f)
	}
}
