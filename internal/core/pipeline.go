package core

import (
	"context"
	"time"

	"hpcfail/internal/alps"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/logparse"
	"hpcfail/internal/logstore"
	"hpcfail/internal/stats"
	"hpcfail/internal/workload"
)

// Result is the end-to-end pipeline output for one log corpus.
type Result struct {
	// Store is the ingested corpus.
	Store *logstore.Store
	// Jobs is the scheduler-log-reconstructed job table.
	Jobs []workload.Job
	// Detections are the confirmed failures, time-ascending.
	Detections []Detection
	// Diagnoses carry per-failure root-cause verdicts, aligned with
	// Detections.
	Diagnoses []Diagnosis
	// Degradation records which stream families the corpus was missing;
	// when any are, every diagnosis carries lowered confidence and a
	// note (the zero value means a complete corpus).
	Degradation Degradation
}

// scanStore builds the job table, the apid → job index and the
// detection list in one traversal of the sorted records (previously
// three separate store.All() scans).
func scanStore(recs []events.Record, cfg Config) ([]workload.Job, map[int64]int64, []Detection) {
	jobsB := logparse.NewJobTableBuilder()
	apidsB := alps.NewIndexBuilder()
	dt := newDetector(cfg)
	for i := range recs {
		r := &recs[i]
		jobsB.Add(r)
		apidsB.Add(r)
		dt.add(r)
	}
	return jobsB.Jobs(), apidsB.Index(), dt.out
}

// Run executes the full methodology over a store: detect failures,
// rebuild the job table and the apid → job resolution, diagnose every
// failure.
func Run(store *logstore.Store, cfg Config) *Result {
	res, _ := RunContext(context.Background(), store, cfg)
	return res
}

// RunContext is Run under a context: cancellation (or a per-request
// deadline, as the serving layer threads through) stops the per-failure
// diagnosis loop between diagnoses and returns ctx.Err() with a nil
// result. With an uncancelled context it is identical to Run. lost may
// fold an ingestion supervisor's lost-chunk count into the degradation
// assessment via RunContextReport.
func RunContext(ctx context.Context, store *logstore.Store, cfg Config) (*Result, error) {
	return RunContextReport(ctx, store, cfg, 0)
}

// RunContextReport is RunContext with an ingestion supervisor's
// lost-chunk count folded into the degradation assessment — the
// sequential-store counterpart of RunShardedReport, for callers (the
// HTTP server) that carry an IngestReport alongside a merged store.
func RunContextReport(ctx context.Context, store *logstore.Store, cfg Config, lostChunks int) (*Result, error) {
	jobs, apids, dets := scanStore(store.All(), cfg)
	rc := &RootCauser{Store: store, Jobs: jobs, Cfg: cfg, Apids: apids}
	diags := make([]Diagnosis, len(dets))
	for i, d := range dets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		diags[i] = rc.Diagnose(d)
	}
	deg := AssessDegradation(store)
	deg.LostChunks = lostChunks
	applyDegradation(diags, deg)
	return &Result{Store: store, Jobs: jobs, Detections: dets, Diagnoses: diags, Degradation: deg}, nil
}

// CauseBreakdown tallies diagnoses per root cause — the Fig 15/16 view.
func (r *Result) CauseBreakdown() map[faults.Cause]int {
	out := map[faults.Cause]int{}
	for _, d := range r.Diagnoses {
		out[d.Cause]++
	}
	return out
}

// ClassBreakdown tallies diagnoses per layer — the §III-F S3 view.
func (r *Result) ClassBreakdown() map[faults.Class]int {
	out := map[faults.Class]int{}
	for _, d := range r.Diagnoses {
		out[d.Class]++
	}
	return out
}

// FailureTimes returns detection timestamps in order.
func (r *Result) FailureTimes() []time.Time {
	out := make([]time.Time, len(r.Detections))
	for i, d := range r.Detections {
		out[i] = d.Time
	}
	return out
}

// MTBF summarises inter-failure gaps over the whole result (Fig 3).
func (r *Result) MTBF() stats.Summary {
	return stats.MTBF(r.FailureTimes())
}

// DominantDailyCause computes, per day, the share of failures explained
// by that day's most common cause (Fig 4's 65–82 %).
type DominantDay struct {
	Day      time.Time
	Failures int
	Dominant faults.Cause
	Share    float64
}

// DominantDailyCauses returns days (with ≥ minFailures failures) and
// their dominant-cause shares, ascending by day.
func (r *Result) DominantDailyCauses(minFailures int) []DominantDay {
	type key struct {
		day   time.Time
		cause faults.Cause
	}
	perDay := map[time.Time]int{}
	perDayCause := map[key]int{}
	for _, d := range r.Diagnoses {
		day := d.Detection.Time.UTC().Truncate(24 * time.Hour)
		perDay[day]++
		perDayCause[key{day, d.Cause}]++
	}
	var out []DominantDay
	for day, total := range perDay {
		if total < minFailures {
			continue
		}
		best := DominantDay{Day: day, Failures: total}
		bestCount := 0
		for _, c := range faults.AllCauses() {
			if n := perDayCause[key{day, c}]; n > bestCount {
				bestCount = n
				best.Dominant = c
				best.Share = float64(n) / float64(total)
			}
		}
		out = append(out, best)
	}
	sortDominant(out)
	return out
}

func sortDominant(ds []DominantDay) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Day.Before(ds[j-1].Day); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// Downtime measures each detected failure's outage: the gap between the
// terminal event and the node's next boot record. Failures with no boot
// in the log window are omitted (still down at window end). The result
// quantifies the abstract's "reduced computational capability" in
// node-minutes.
func (r *Result) Downtime() []time.Duration {
	var out []time.Duration
	_, last, ok := r.Store.Span()
	if !ok {
		return nil
	}
	for _, d := range r.Detections {
		for _, rec := range r.Store.NodeWindow(d.Node, d.Time, last.Add(time.Second)) {
			if rec.Category == "node_boot" {
				out = append(out, rec.Time.Sub(d.Time))
				break
			}
		}
	}
	return out
}

// DowntimeSummary returns the outage-duration statistics in minutes.
func (r *Result) DowntimeSummary() stats.Summary {
	ds := r.Downtime()
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Minutes()
	}
	return stats.Summarize(xs)
}

// JobAnalyzer returns the application-side analyzer over this result.
func (r *Result) JobAnalyzer() *JobAnalyzer {
	return &JobAnalyzer{Jobs: r.Jobs, Diagnoses: r.Diagnoses}
}

// Correlator returns the external-influence analyzer over this result.
func (r *Result) Correlator(cfg Config) *Correlator {
	return &Correlator{Store: r.Store, Detections: r.Detections, Cfg: cfg}
}
