package core

import (
	"time"

	"hpcfail/internal/stats"
)

// LeadTime is the precursor-window analysis for one diagnosis (Fig 13).
type LeadTime struct {
	// Internal is the gap between the earliest indicative internal
	// precursor and the failure (0 when none was found).
	Internal time.Duration
	// External is the gap between the earliest external indicator and
	// the failure (0 when none exists).
	External time.Duration
	// Enhanced reports whether external indicators extend the warning
	// horizon beyond the internal one.
	Enhanced bool
}

// Factor returns External/Internal, the paper's lead-time enhancement
// multiple (0 when not enhanced).
func (lt LeadTime) Factor() float64 {
	if !lt.Enhanced || lt.Internal <= 0 {
		return 0
	}
	return float64(lt.External) / float64(lt.Internal)
}

// ComputeLeadTime derives the lead times from a diagnosis' evidence.
func ComputeLeadTime(d Diagnosis) LeadTime {
	var lt LeadTime
	if len(d.InternalEvidence) > 0 {
		lt.Internal = d.Detection.Time.Sub(d.InternalEvidence[0].Time)
	}
	if len(d.ExternalIndicators) > 0 {
		lt.External = d.Detection.Time.Sub(d.ExternalIndicators[0].Time)
	}
	lt.Enhanced = lt.External > lt.Internal && lt.Internal > 0
	return lt
}

// LeadTimeSummary aggregates Fig 13 across a diagnosis set.
type LeadTimeSummary struct {
	// Total is the number of failures considered.
	Total int
	// Enhanceable is the number with external indicators extending the
	// lead.
	Enhanceable int
	// MeanInternalMin and MeanExternalMin are the mean leads in minutes
	// over the enhanceable population.
	MeanInternalMin, MeanExternalMin float64
	// MeanFactor is the mean enhancement multiple over the enhanceable
	// population (the paper's ≈ 5×).
	MeanFactor float64
	// InternalAllMin summarises internal leads over ALL failures with
	// internal precursors.
	InternalAllMin stats.Summary
}

// EnhanceableFraction returns the share of failures whose lead times can
// be extended (the paper's 10–28 %).
func (s LeadTimeSummary) EnhanceableFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Enhanceable) / float64(s.Total)
}

// SummarizeLeadTimes computes the Fig 13 aggregate.
func SummarizeLeadTimes(diags []Diagnosis) LeadTimeSummary {
	out := LeadTimeSummary{Total: len(diags)}
	var facSum, intSum, extSum float64
	var allInternal []float64
	for _, d := range diags {
		lt := ComputeLeadTime(d)
		if lt.Internal > 0 {
			allInternal = append(allInternal, lt.Internal.Minutes())
		}
		if lt.Enhanced {
			out.Enhanceable++
			facSum += lt.Factor()
			intSum += lt.Internal.Minutes()
			extSum += lt.External.Minutes()
		}
	}
	if out.Enhanceable > 0 {
		n := float64(out.Enhanceable)
		out.MeanFactor = facSum / n
		out.MeanInternalMin = intSum / n
		out.MeanExternalMin = extSum / n
	}
	out.InternalAllMin = stats.Summarize(allInternal)
	return out
}
