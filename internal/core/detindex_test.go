package core

import (
	"math/rand"
	"testing"
	"time"

	"hpcfail/internal/alps"
	"hpcfail/internal/cname"
	"hpcfail/internal/logparse"
)

// failureNearNaive is the pre-index Correlator scan the DetectionIndex
// replaced.
func failureNearNaive(dets []Detection, node cname.Name, t time.Time, window time.Duration) bool {
	for _, d := range dets {
		if d.Node != node {
			continue
		}
		gap := d.Time.Sub(t)
		if gap < 0 {
			gap = -gap
		}
		if gap <= window {
			return true
		}
	}
	return false
}

// TestDetectionIndexEquivalence probes the index against the two naive
// scans it replaced (failureNear's ±window and failureWithin's
// look-ahead) over randomized detection lists, including unsorted input
// and exact boundary hits.
func TestDetectionIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	nodes := []cname.Name{
		cname.MustParse("c0-0c0s1n0"),
		cname.MustParse("c0-0c0s1n1"),
		cname.MustParse("c1-0c2s7n3"),
	}
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		dets := make([]Detection, n)
		for i := range dets {
			dets[i] = Detection{
				Node: nodes[rng.Intn(len(nodes))],
				Time: base.Add(time.Duration(rng.Intn(72)) * 10 * time.Minute),
			}
		}
		// Deliberately unsorted: NewDetectionIndex must sort per node.
		ix := NewDetectionIndex(dets)
		for probe := 0; probe < 80; probe++ {
			node := nodes[rng.Intn(len(nodes))]
			at := base.Add(time.Duration(rng.Intn(74)-1) * 10 * time.Minute)
			window := time.Duration(rng.Intn(4)) * 15 * time.Minute
			if got, want := ix.AnyBetween(node, at.Add(-window), at.Add(window)),
				failureNearNaive(dets, node, at, window); got != want {
				t.Fatalf("trial %d: AnyBetween(%v, ±%v @ %v) = %v, naive %v",
					trial, node, window, at, got, want)
			}
			horizon := time.Duration(rng.Intn(4)) * 15 * time.Minute
			if got, want := ix.AnyBetween(node, at, at.Add(horizon)),
				failureWithin(dets, node, at, horizon); got != want {
				t.Fatalf("trial %d: AnyBetween(%v, [t, t+%v]) = %v, failureWithin %v",
					trial, node, horizon, got, want)
			}
		}
	}
}

// TestScanStoreEquivalence proves the single-pass traversal produces
// exactly what the three separate scans it replaced produced.
func TestScanStoreEquivalence(t *testing.T) {
	_, store := buildScenario(t, 3, 23)
	cfg := DefaultConfig()
	recs := store.All()

	jobs, apids, dets := scanStore(recs, cfg)

	wantJobs := logparse.JobsFromRecords(recs)
	if len(jobs) != len(wantJobs) {
		t.Fatalf("jobs: %d, want %d", len(jobs), len(wantJobs))
	}
	for i := range jobs {
		if jobs[i].ID != wantJobs[i].ID || !jobs[i].Start.Equal(wantJobs[i].Start) ||
			!jobs[i].End.Equal(wantJobs[i].End) || jobs[i].State != wantJobs[i].State {
			t.Fatalf("job %d differs: %+v vs %+v", i, jobs[i], wantJobs[i])
		}
	}

	wantApids := alps.IndexFromRecords(recs)
	if len(apids) != len(wantApids) {
		t.Fatalf("apids: %d entries, want %d", len(apids), len(wantApids))
	}
	for k, v := range wantApids {
		if apids[k] != v {
			t.Fatalf("apid %d: %d, want %d", k, apids[k], v)
		}
	}

	wantDets := Detect(recs, cfg)
	if len(dets) != len(wantDets) {
		t.Fatalf("detections: %d, want %d", len(dets), len(wantDets))
	}
	for i := range dets {
		if dets[i] != wantDets[i] {
			t.Fatalf("detection %d differs: %+v vs %+v", i, dets[i], wantDets[i])
		}
	}
}
