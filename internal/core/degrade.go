package core

import (
	"fmt"
	"strings"

	"hpcfail/internal/events"
	"hpcfail/internal/logstore"
)

// Degradation describes which input stream families a corpus is missing.
// The holistic methodology wants all four voices — internal node logs,
// external controller/environment logs, the scheduler log and the ALPS
// placement log; when chaos (or a real outage) silences one, the
// pipeline still runs but marks its verdicts as weaker.
type Degradation struct {
	// MissingInternal: no console/messages/consumer records. Detection
	// itself is blind without these; anything found is external-only.
	MissingInternal bool
	// MissingExternal: no controller/ERD records — no corroboration and
	// no lead-time indicators.
	MissingExternal bool
	// MissingScheduler: no scheduler log — the job table cannot be
	// rebuilt, weakening application attribution.
	MissingScheduler bool
	// MissingALPS: no placement log — apid → job resolution is lost on
	// Cray-style systems.
	MissingALPS bool
	// LostChunks counts log chunks the ingestion supervisor quarantined
	// (poisoned after exhausting retries) or dropped (circuit breaker).
	// The corpus is incomplete in a way the stream-family flags cannot
	// see: every family may be present yet have holes.
	LostChunks int
}

// Degraded reports whether any stream family is absent or any ingestion
// chunks were lost.
func (g Degradation) Degraded() bool {
	return g.MissingInternal || g.MissingExternal || g.MissingScheduler || g.MissingALPS ||
		g.LostChunks > 0
}

// Factor is the confidence multiplier applied to every diagnosis made
// from the degraded corpus: corroboration loss costs more than
// attribution loss.
func (g Degradation) Factor() float64 {
	f := 1.0
	if g.MissingInternal {
		f *= 0.5
	}
	if g.MissingExternal {
		f *= 0.8
	}
	if g.MissingScheduler {
		f *= 0.8
	}
	if g.MissingALPS {
		f *= 0.9
	}
	if g.LostChunks > 0 {
		f *= 0.9
	}
	return f
}

// Note renders the evidence note attached to degraded diagnoses; empty
// when nothing is missing.
func (g Degradation) Note() string {
	var parts []string
	if g.MissingInternal {
		parts = append(parts, "internal node logs absent")
	}
	if g.MissingExternal {
		parts = append(parts, "no external corroboration streams")
	}
	if g.MissingScheduler {
		parts = append(parts, "scheduler log absent, job attribution weakened")
	}
	if g.MissingALPS {
		parts = append(parts, "ALPS placement log absent, apid resolution lost")
	}
	if g.LostChunks > 0 {
		parts = append(parts, fmt.Sprintf("%d log chunks lost during ingestion", g.LostChunks))
	}
	if len(parts) == 0 {
		return ""
	}
	return "degraded input: " + strings.Join(parts, "; ")
}

// AssessDegradation scans a store for the presence of each stream
// family. One pass; an empty store reports everything missing.
func AssessDegradation(store *logstore.Store) Degradation {
	var haveInt, haveExt, haveSched, haveALPS bool
	for _, r := range store.All() {
		switch {
		case r.Stream.Internal():
			haveInt = true
		case r.Stream.External():
			haveExt = true
		case r.Stream == events.StreamScheduler:
			haveSched = true
		case r.Stream == events.StreamALPS:
			haveALPS = true
		}
		if haveInt && haveExt && haveSched && haveALPS {
			break
		}
	}
	return Degradation{
		MissingInternal:  !haveInt,
		MissingExternal:  !haveExt,
		MissingScheduler: !haveSched,
		MissingALPS:      !haveALPS,
	}
}

// AssessShardedDegradation combines per-shard assessments without
// waiting for the merged view: a stream family is missing only when it
// is missing from every shard (presence ORs, absence ANDs). Equivalent
// to AssessDegradation over the merged store.
func AssessShardedDegradation(ss *logstore.ShardedStore) Degradation {
	g := Degradation{MissingInternal: true, MissingExternal: true, MissingScheduler: true, MissingALPS: true}
	for i := 0; i < ss.NumShards(); i++ {
		sg := AssessDegradation(ss.Shard(i))
		g.MissingInternal = g.MissingInternal && sg.MissingInternal
		g.MissingExternal = g.MissingExternal && sg.MissingExternal
		g.MissingScheduler = g.MissingScheduler && sg.MissingScheduler
		g.MissingALPS = g.MissingALPS && sg.MissingALPS
		if !g.Degraded() {
			break
		}
	}
	return g
}

// applyDegradation stamps a degraded corpus's weaker confidence and the
// evidence note onto every diagnosis.
func applyDegradation(diags []Diagnosis, g Degradation) {
	if !g.Degraded() {
		return
	}
	f, note := g.Factor(), g.Note()
	for i := range diags {
		diags[i].Confidence *= f
		diags[i].Degraded = true
		diags[i].Note = note
	}
}
