package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// SaveSnapshotFile atomically persists the watcher's state to path: the
// snapshot is written to a temp file and renamed into place, so a crash
// mid-write leaves the previous checkpoint intact. cmd/watch and the
// HTTP server share this for their shutdown checkpoints.
func SaveSnapshotFile(path string, w *Watcher) error {
	blob, err := json.Marshal(w.Snapshot())
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSnapshotFile restores a prior run's watcher state from path. A
// missing file is not an error (restored=false) — the previous run may
// have stopped before its first checkpoint was due.
func LoadSnapshotFile(path string, w *Watcher) (restored bool, err error) {
	blob, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	var s WatcherSnapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return false, fmt.Errorf("corrupt checkpoint %s: %w", path, err)
	}
	w.Restore(s)
	return true, nil
}
