package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// SaveSnapshotFile atomically and durably persists the watcher's state
// to path: the snapshot is written to a temp file, fsynced, renamed
// into place, and the directory entry is fsynced too. A crash at any
// byte of the write — including a torn temp file — leaves the previous
// checkpoint intact, and a crash after return leaves the new one
// readable. cmd/watch and the HTTP server share this for their
// shutdown checkpoints.
func SaveSnapshotFile(path string, w *Watcher) error {
	blob, err := json.Marshal(w.Snapshot())
	if err != nil {
		return err
	}
	return atomicWriteFile(path, blob)
}

// atomicWriteFile is the temp + fsync + rename + dir-fsync sequence:
// the rename only publishes fully durable bytes, and the directory
// fsync makes the rename itself survive a power cut.
func atomicWriteFile(path string, blob []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that refuse directory fsync (some network mounts) degrade
// to the rename's own atomicity rather than failing the checkpoint.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// LoadSnapshotFile restores a prior run's watcher state from path. A
// missing file is not an error (restored=false) — the previous run may
// have stopped before its first checkpoint was due. A leftover temp
// file from a crashed save is ignored by construction: only the rename
// publishes a snapshot.
func LoadSnapshotFile(path string, w *Watcher) (restored bool, err error) {
	blob, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	var s WatcherSnapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return false, fmt.Errorf("corrupt checkpoint %s: %w", path, err)
	}
	w.Restore(s)
	return true, nil
}
