package core

// Unit tests for the analysis components on hand-built inputs, in
// contrast to core_test.go's scenario-driven integration tests.

import (
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/logstore"
	"hpcfail/internal/workload"
)

var (
	unitStart = time.Date(2015, 5, 4, 0, 0, 0, 0, time.UTC)
	nodeA     = cname.MustParse("c0-0c0s0n0")
	nodeB     = cname.MustParse("c0-0c0s0n1")
)

func consoleRec(at time.Time, node cname.Name, cat string, sev events.Severity) events.Record {
	return events.Record{Time: at, Stream: events.StreamConsole, Component: node,
		Category: cat, Severity: sev, Msg: cat}
}

func erdRec(at time.Time, node cname.Name, cat string) events.Record {
	return events.Record{Time: at, Stream: events.StreamERD, Component: node,
		Category: cat, Severity: events.SevWarning, Msg: cat}
}

func TestDiagnoseMCEFromCategories(t *testing.T) {
	fail := unitStart.Add(time.Hour)
	recs := []events.Record{
		consoleRec(fail.Add(-5*time.Minute), nodeA, "mem_err_correctable", events.SevWarning),
		consoleRec(fail.Add(-3*time.Minute), nodeA, "mce", events.SevError),
		consoleRec(fail.Add(-5*time.Second), nodeA, "kernel_panic", events.SevCritical),
		consoleRec(fail, nodeA, "node_shutdown", events.SevCritical),
	}
	store := logstore.New(recs)
	rc := &RootCauser{Store: store, Cfg: DefaultConfig()}
	dets := Detect(store.All(), DefaultConfig())
	if len(dets) != 1 {
		t.Fatalf("detections = %d (panic+shutdown should merge)", len(dets))
	}
	diag := rc.Diagnose(dets[0])
	if diag.Cause != faults.CauseMCE || diag.Class != faults.ClassHardware {
		t.Errorf("diagnosis = %v/%v", diag.Cause, diag.Class)
	}
	if diag.AppTriggered {
		t.Error("hardware failure misattributed to application")
	}
	if len(diag.InternalEvidence) < 2 {
		t.Errorf("evidence too thin: %d", len(diag.InternalEvidence))
	}
}

func TestDiagnoseTraceOnlyFilesystemBug(t *testing.T) {
	fail := unitStart.Add(time.Hour)
	oops := consoleRec(fail.Add(-2*time.Minute), nodeA, "kernel_oops", events.SevError)
	oops.SetField("trace", "ldlm_bl_thread_main@lustre|kthread")
	recs := []events.Record{
		oops,
		consoleRec(fail, nodeA, "node_shutdown", events.SevCritical),
	}
	store := logstore.New(recs)
	rc := &RootCauser{Store: store, Cfg: DefaultConfig()}
	diag := rc.Diagnose(Detect(store.All(), DefaultConfig())[0])
	if diag.Cause != faults.CauseFilesystemBug {
		t.Errorf("trace-only FS bug diagnosed as %v", diag.Cause)
	}
	if diag.KeySymbol != "ldlm_bl_thread_main" {
		t.Errorf("key symbol = %q", diag.KeySymbol)
	}
}

func TestDiagnoseUnknownWithoutEvidence(t *testing.T) {
	fail := unitStart.Add(time.Hour)
	recs := []events.Record{
		consoleRec(fail, nodeA, "silent_shutdown", events.SevCritical),
	}
	store := logstore.New(recs)
	rc := &RootCauser{Store: store, Cfg: DefaultConfig()}
	diag := rc.Diagnose(Detect(store.All(), DefaultConfig())[0])
	if diag.Cause != faults.CauseUnknown || diag.Confidence > 0.3 {
		t.Errorf("silent shutdown: %v conf=%v", diag.Cause, diag.Confidence)
	}
}

func TestDiagnoseAdminDownDefaultsToAppExit(t *testing.T) {
	fail := unitStart.Add(time.Hour)
	adm := consoleRec(fail, nodeA, "nhc_admindown", events.SevCritical)
	adm.Stream = events.StreamMessages
	adm.JobID = 99
	store := logstore.New([]events.Record{adm})
	rc := &RootCauser{Store: store, Cfg: DefaultConfig()}
	diag := rc.Diagnose(Detect(store.All(), DefaultConfig())[0])
	if diag.Cause != faults.CauseAppExit {
		t.Errorf("bare admindown diagnosed as %v", diag.Cause)
	}
	if diag.JobID != 99 || !diag.AppTriggered {
		t.Errorf("job attribution lost: %+v", diag)
	}
}

func TestExternalIndicatorsCollected(t *testing.T) {
	fail := unitStart.Add(2 * time.Hour)
	recs := []events.Record{
		erdRec(fail.Add(-50*time.Minute), nodeA, "ec_hw_errors"),
		erdRec(fail.Add(-30*time.Minute), nodeA, "ec_hw_errors"),
		// SEDC chatter must NOT count as an indicator (Observation 3).
		erdRec(fail.Add(-40*time.Minute), nodeA, "sedc_temp_warning"),
		consoleRec(fail.Add(-5*time.Minute), nodeA, "mce", events.SevError),
		consoleRec(fail, nodeA, "node_shutdown", events.SevCritical),
	}
	store := logstore.New(recs)
	rc := &RootCauser{Store: store, Cfg: DefaultConfig()}
	diag := rc.Diagnose(Detect(store.All(), DefaultConfig())[0])
	if len(diag.ExternalIndicators) != 2 {
		t.Fatalf("external indicators = %d, want 2", len(diag.ExternalIndicators))
	}
	lt := ComputeLeadTime(diag)
	if !lt.Enhanced {
		t.Fatal("lead time should be enhanced")
	}
	if lt.Internal != 5*time.Minute || lt.External != 50*time.Minute {
		t.Errorf("leads = %v/%v", lt.Internal, lt.External)
	}
	if lt.Factor() != 10 {
		t.Errorf("factor = %v", lt.Factor())
	}
}

func TestPredictorAlarmsOnBursts(t *testing.T) {
	// Two distinct indicative categories within the burst window on
	// nodeA (should alarm); a single category on nodeB (should not).
	recs := []events.Record{
		consoleRec(unitStart, nodeA, "mem_err_correctable", events.SevWarning),
		consoleRec(unitStart.Add(2*time.Minute), nodeA, "mce", events.SevError),
		consoleRec(unitStart, nodeB, "mce", events.SevError),
		consoleRec(unitStart.Add(3*time.Minute), nodeB, "mce", events.SevError),
	}
	store := logstore.New(recs)
	p := NewPredictor(store, DefaultConfig())
	alarms := p.Alarms(nil)
	if len(alarms) != 1 || alarms[0].Node != nodeA {
		t.Fatalf("alarms = %+v", alarms)
	}
	if alarms[0].Hit || alarms[0].HasExternal {
		t.Error("alarm should be a plain false positive")
	}
}

func TestPredictorIgnoresApplicationPatterns(t *testing.T) {
	recs := []events.Record{
		consoleRec(unitStart, nodeA, "oom_killer", events.SevError),
		consoleRec(unitStart.Add(time.Minute), nodeA, "page_alloc_failure", events.SevWarning),
		consoleRec(unitStart.Add(2*time.Minute), nodeA, "app_exit_abnormal", events.SevError),
	}
	store := logstore.New(recs)
	p := NewPredictor(store, DefaultConfig())
	if alarms := p.Alarms(nil); len(alarms) != 0 {
		t.Errorf("application patterns should not alarm: %+v", alarms)
	}
}

func TestPredictorHitAndExternal(t *testing.T) {
	fail := unitStart.Add(20 * time.Minute)
	recs := []events.Record{
		erdRec(unitStart.Add(-5*time.Minute), nodeA, "ec_hw_errors"),
		consoleRec(unitStart, nodeA, "mem_err_correctable", events.SevWarning),
		consoleRec(unitStart.Add(2*time.Minute), nodeA, "mce", events.SevError),
		consoleRec(fail, nodeA, "node_shutdown", events.SevCritical),
	}
	store := logstore.New(recs)
	p := NewPredictor(store, DefaultConfig())
	dets := Detect(store.All(), DefaultConfig())
	alarms := p.Alarms(dets)
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d", len(alarms))
	}
	if !alarms[0].Hit || !alarms[0].HasExternal {
		t.Errorf("alarm should be TP with external: %+v", alarms[0])
	}
	cmp := CompareFPR(p, dets)
	if cmp.WithoutExternal.TP != 1 || cmp.WithExternal.TP != 1 {
		t.Errorf("FPR comparison: %+v", cmp)
	}
}

func TestExitStatsCounting(t *testing.T) {
	mk := func(state workload.State, endOffset time.Duration) workload.Job {
		return workload.Job{State: state, Start: unitStart, End: unitStart.Add(endOffset)}
	}
	ja := &JobAnalyzer{Jobs: []workload.Job{
		mk(workload.StateCompleted, time.Hour),
		mk(workload.StateCompleted, 2*time.Hour),
		mk(workload.StateFailed, 3*time.Hour),
		mk(workload.StateTimeout, 4*time.Hour),
		mk(workload.StateNodeFail, 5*time.Hour),
		mk(workload.StateCompleted, 48*time.Hour), // outside window
	}}
	es := ja.ExitStatsBetween(unitStart, unitStart.Add(24*time.Hour))
	if es.Total != 5 || es.Success != 2 || es.AppFailed != 1 || es.ConfigError != 1 || es.NodeFail != 1 {
		t.Errorf("exit stats = %+v", es)
	}
	if es.SuccessFraction() != 0.4 {
		t.Errorf("success fraction = %v", es.SuccessFraction())
	}
	var empty ExitStats
	if empty.SuccessFraction() != 0 || empty.AppFailedFraction() != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestOverallocationsUnit(t *testing.T) {
	job := workload.Job{ID: 5, App: "x", ReqMemMB: 100_000,
		Nodes: []cname.Name{nodeA, nodeB}, Start: unitStart, End: unitStart.Add(time.Hour)}
	small := workload.Job{ID: 6, App: "y", ReqMemMB: 1000,
		Nodes: []cname.Name{nodeA}, Start: unitStart, End: unitStart.Add(time.Hour)}
	diag := Diagnosis{Detection: Detection{Node: nodeA, Time: unitStart.Add(30 * time.Minute)}, JobID: 5}
	ja := &JobAnalyzer{Jobs: []workload.Job{job, small}, Diagnoses: []Diagnosis{diag}}
	reps := ja.Overallocations(64 * 1024)
	if len(reps) != 1 {
		t.Fatalf("reports = %+v", reps)
	}
	if reps[0].JobID != 5 || reps[0].Overallocated != 2 || reps[0].Failed != 1 {
		t.Errorf("report = %+v", reps[0])
	}
}

func TestSummarizeLeadTimesEmpty(t *testing.T) {
	sum := SummarizeLeadTimes(nil)
	if sum.Total != 0 || sum.EnhanceableFraction() != 0 || sum.MeanFactor != 0 {
		t.Errorf("empty summary = %+v", sum)
	}
}

func TestDowntime(t *testing.T) {
	fail := unitStart.Add(time.Hour)
	recs := []events.Record{
		consoleRec(fail, nodeA, "node_shutdown", events.SevCritical),
		{Time: fail.Add(45 * time.Minute), Stream: events.StreamConsole,
			Component: nodeA, Category: "node_boot", Severity: events.SevInfo},
		// A second failure with no boot in the window.
		consoleRec(fail.Add(2*time.Hour), nodeB, "node_shutdown", events.SevCritical),
	}
	res := Run(logstore.New(recs), DefaultConfig())
	ds := res.Downtime()
	if len(ds) != 1 || ds[0] != 45*time.Minute {
		t.Fatalf("Downtime = %v", ds)
	}
	sum := res.DowntimeSummary()
	if sum.N != 1 || sum.Mean != 45 {
		t.Errorf("DowntimeSummary = %+v", sum)
	}
	empty := Run(logstore.New(nil), DefaultConfig())
	if empty.Downtime() != nil {
		t.Error("empty result should have no downtime")
	}
}

func TestDowntimeScenario(t *testing.T) {
	_, store := buildScenario(t, 5, 503)
	res := Run(store, DefaultConfig())
	sum := res.DowntimeSummary()
	if sum.N == 0 {
		t.Fatal("no rebooted failures in 5 days")
	}
	// The generator reboots failed nodes 20-90 minutes later.
	if sum.Mean < 15 || sum.Mean > 120 {
		t.Errorf("mean downtime = %.1f min, want ~20-90", sum.Mean)
	}
}

func TestUniqueWarningComponents(t *testing.T) {
	recs := []events.Record{
		erdRec(unitStart, nodeA.BladeName(), "sedc_temp_warning"),
		erdRec(unitStart.Add(time.Minute), nodeA.BladeName(), "sedc_temp_warning"),
		erdRec(unitStart.Add(2*time.Minute), cname.MustParse("c0-0c1s3"), "sedc_temp_warning"),
	}
	store := logstore.New(recs)
	if n := UniqueWarningComponents(store, "sedc_temp_warning", unitStart, unitStart.Add(time.Hour)); n != 2 {
		t.Errorf("unique components = %d", n)
	}
}
