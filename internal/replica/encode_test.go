package replica

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// encodeCases cover every escaping regime the hand-rolled encoder must
// agree with encoding/json on: the clean-ASCII fast path, the HTML
// safety set, control bytes, multi-byte runes, the JSON line
// separators U+2028/U+2029, and invalid UTF-8.
func encodeCases() []Entry {
	return []Entry{
		{Epoch: 1, Watermark: 2, Batches: nil},
		{Epoch: 1, Watermark: 2, Batches: []Batch{}},
		{Epoch: 3, Watermark: 7, Batches: []Batch{{Stream: "console", Lines: nil}}},
		{Epoch: 3, Watermark: 7, Batches: []Batch{{Stream: "console", Lines: []string{}}}},
		{Epoch: 1, Watermark: 4, Batches: []Batch{
			{Stream: "console", Lines: []string{
				"2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error",
				"",
			}},
			{Stream: "scheduler", Lines: []string{
				`quote " backslash \ slash /`,
				"html <b>&amp;</b>",
				"control \t\n\x00\x1f bytes",
				"high \x7f low",
				"unicode: héllo 世界 ☃",
				"separators   and  ",
				"invalid utf8 \xff\xfe tail",
			}},
		}},
		{Epoch: ^uint64(0), Watermark: ^uint64(0), Batches: []Batch{{Stream: strings.Repeat("x", 300)}}},
	}
}

// TestAppendEntryMatchesJSONMarshal pins the contract the replication
// stack depends on: the buffer-reusing encoder produces bytes identical
// to encoding/json.Marshal for the same entry. Byte-identical failover
// parity (PR 8) hashes these payloads, so "close enough" is not enough.
func TestAppendEntryMatchesJSONMarshal(t *testing.T) {
	for _, e := range encodeCases() {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EncodeEntry(e)
		if err != nil {
			t.Fatalf("EncodeEntry(%+v): %v", e, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("EncodeEntry(%+v)\n got %s\nwant %s", e, got, want)
		}

		// The split encoding (head under the staging lock, batches before
		// it) must compose to the same bytes.
		split := AppendEntryHead(nil, e.Epoch, e.Watermark)
		split = AppendEntryBatches(split, e.Batches)
		if !bytes.Equal(split, want) {
			t.Errorf("AppendEntryHead+Batches(%+v)\n got %s\nwant %s", e, split, want)
		}

		// Appending onto a non-empty buffer extends, never clobbers.
		pre := []byte("prefix:")
		ext, err := AppendEntry(pre, e)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ext, append([]byte("prefix:"), want...)) {
			t.Errorf("AppendEntry onto prefix diverged: %s", ext)
		}

		round, err := DecodeEntry(got)
		if err != nil {
			t.Fatalf("DecodeEntry round trip: %v", err)
		}
		if round.Epoch != e.Epoch || round.Watermark != e.Watermark || len(round.Batches) != len(e.Batches) {
			t.Errorf("round trip = %+v, want %+v", round, e)
		}
	}
}

// TestEncodeEntryRejectsZeroWatermark: watermark 0 is "unseeded", never
// a journal entry; both encoder entry points must refuse it like the
// decoder does.
func TestEncodeEntryRejectsZeroWatermark(t *testing.T) {
	if _, err := EncodeEntry(Entry{Epoch: 1}); err == nil {
		t.Fatal("EncodeEntry accepted watermark 0")
	}
	if _, err := AppendEntry(nil, Entry{Epoch: 1}); err == nil {
		t.Fatal("AppendEntry accepted watermark 0")
	}
}

// FuzzAppendEntryParity drives arbitrary stream/line bytes through both
// encoders; any divergence from encoding/json, or a round-trip loss, is
// a crash. This is the guard against the fast path misclassifying a
// byte it should have escaped.
func FuzzAppendEntryParity(f *testing.F) {
	f.Add("console", "plain ascii line", "")
	f.Add("sch<d>uler", "quote\"back\\slash", "ctrl\x01\x02")
	f.Add("ünicode", "line   sep", "\xff\xfe invalid")
	f.Fuzz(func(t *testing.T, stream, line1, line2 string) {
		e := Entry{Epoch: 5, Watermark: 9, Batches: []Batch{{Stream: stream, Lines: []string{line1, line2}}}}
		want, err := json.Marshal(e)
		if err != nil {
			t.Skip()
		}
		got, err := EncodeEntry(e)
		if err != nil {
			t.Fatalf("EncodeEntry: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encoder diverged from json.Marshal\n got %s\nwant %s", got, want)
		}
		round, err := DecodeEntry(got)
		if err != nil {
			t.Fatalf("DecodeEntry: %v", err)
		}
		// json.Marshal replaces invalid UTF-8; compare against the decode
		// of the reference bytes, not the original strings.
		var ref Entry
		if err := json.Unmarshal(want, &ref); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(round, ref) {
			t.Fatalf("round trip = %+v, want %+v", round, ref)
		}
	})
}
