// Package replica implements WAL-tailing read replication for the
// online diagnosis service.
//
// The unit of replication is the Entry: one accepted ingest request —
// the raw batches exactly as the client sent them — stamped with the
// watermark the primary accepted it at and the epoch of the primary
// that accepted it. The primary journals every accepted ingest as an
// Entry in its replication WAL before acknowledging; replicas obtain
// the entry stream either over HTTP (the primary's /v1/wal endpoint)
// or by tailing the WAL directory itself, and fold each entry through
// the same parse → pending-delta → incremental-engine path the
// primary's own ingest takes. Because that path is deterministic and
// batch-split-invariant (the PR 7 differential harness), a replica that
// has applied entries through watermark W serves /v1/diagnose bytes
// identical to the primary's at W.
//
// Epochs are the fencing token. A promotion mints epoch+1; every entry
// carries its writer's epoch, and a tailer that has observed epoch E
// ignores entries from any epoch < E — so a deposed primary that keeps
// accepting writes (split brain) cannot advance anyone who has seen the
// promotion. Watermarks within an epoch are contiguous; a gap means the
// tailer's source skipped history and is treated as fatal divergence,
// never skipped over.
package replica

import (
	"encoding/json"
	"fmt"
)

// Batch is one stream's worth of raw log lines — the ingest request
// shape, replicated verbatim so the replica's parser sees exactly the
// bytes the primary's did.
type Batch struct {
	Stream string   `json:"stream"`
	Lines  []string `json:"lines"`
}

// Entry is one replicated ingest request: the raw batches plus the
// watermark they were accepted at and the accepting primary's epoch.
// Entries are the WAL record payload and the /v1/wal stream unit.
type Entry struct {
	Epoch     uint64  `json:"epoch"`
	Watermark uint64  `json:"watermark"`
	Batches   []Batch `json:"batches"`
}

// EncodeEntry renders an entry to its WAL/wire payload.
func EncodeEntry(e Entry) ([]byte, error) {
	if e.Watermark == 0 {
		return nil, fmt.Errorf("replica: entry without watermark")
	}
	return json.Marshal(e)
}

// DecodeEntry parses a WAL/wire payload back into an Entry.
func DecodeEntry(data []byte) (Entry, error) {
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, fmt.Errorf("replica: decoding entry: %w", err)
	}
	if e.Watermark == 0 {
		return Entry{}, fmt.Errorf("replica: entry without watermark")
	}
	return e, nil
}

// Hello opens a /v1/wal stream: the primary announces its epoch, the
// watermark its bootstrap seed covered (entries below it are not in the
// WAL — the replica must have been seeded from the same bootstrap) and
// its current tip.
type Hello struct {
	Epoch         uint64 `json:"epoch"`
	SeedWatermark uint64 `json:"seed_watermark"`
	Watermark     uint64 `json:"watermark"`
}

// Heartbeat keeps an idle stream alive and carries the primary's tip so
// a caught-up replica can measure its lag without new entries.
type Heartbeat struct {
	Epoch     uint64 `json:"epoch"`
	Watermark uint64 `json:"watermark"`
}

// Frame is one NDJSON line of the /v1/wal stream; exactly one field is
// set per line.
type Frame struct {
	Hello     *Hello     `json:"hello,omitempty"`
	Entry     *Entry     `json:"entry,omitempty"`
	Heartbeat *Heartbeat `json:"hb,omitempty"`
}
