// Package replica implements WAL-tailing read replication for the
// online diagnosis service.
//
// The unit of replication is the Entry: one accepted ingest request —
// the raw batches exactly as the client sent them — stamped with the
// watermark the primary accepted it at and the epoch of the primary
// that accepted it. The primary journals every accepted ingest as an
// Entry in its replication WAL before acknowledging; replicas obtain
// the entry stream either over HTTP (the primary's /v1/wal endpoint)
// or by tailing the WAL directory itself, and fold each entry through
// the same parse → pending-delta → incremental-engine path the
// primary's own ingest takes. Because that path is deterministic and
// batch-split-invariant (the PR 7 differential harness), a replica that
// has applied entries through watermark W serves /v1/diagnose bytes
// identical to the primary's at W.
//
// Epochs are the fencing token. A promotion mints epoch+1; every entry
// carries its writer's epoch, and a tailer that has observed epoch E
// ignores entries from any epoch < E — so a deposed primary that keeps
// accepting writes (split brain) cannot advance anyone who has seen the
// promotion. Watermarks within an epoch are contiguous; a gap means the
// tailer's source skipped history and is treated as fatal divergence,
// never skipped over.
package replica

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Batch is one stream's worth of raw log lines — the ingest request
// shape, replicated verbatim so the replica's parser sees exactly the
// bytes the primary's did.
type Batch struct {
	Stream string   `json:"stream"`
	Lines  []string `json:"lines"`
}

// Entry is one replicated ingest request: the raw batches plus the
// watermark they were accepted at and the accepting primary's epoch.
// Entries are the WAL record payload and the /v1/wal stream unit.
type Entry struct {
	Epoch     uint64  `json:"epoch"`
	Watermark uint64  `json:"watermark"`
	Batches   []Batch `json:"batches"`
}

// EncodeEntry renders an entry to its WAL/wire payload.
func EncodeEntry(e Entry) ([]byte, error) {
	return AppendEntry(nil, e)
}

// AppendEntry appends e's WAL/wire encoding to dst and returns the
// extended slice. The bytes are exactly what encoding/json.Marshal
// produces for the same entry (the equivalence test pins this), but the
// hot path writes straight into a caller-reused buffer instead of
// reflecting through the encoder — the primary's ingest staging encodes
// thousands of entries per second and recycles these buffers.
func AppendEntry(dst []byte, e Entry) ([]byte, error) {
	if e.Watermark == 0 {
		return nil, fmt.Errorf("replica: entry without watermark")
	}
	dst = AppendEntryHead(dst, e.Epoch, e.Watermark)
	return AppendEntryBatches(dst, e.Batches), nil
}

// AppendEntryHead appends the encoding's watermark-bearing prefix:
// `{"epoch":E,"watermark":W`. Group-commit staging composes the entry
// in two parts — the batches suffix is encoded before the staging lock
// is taken, and only this head (a couple of integer renders) is
// produced inside it, once the watermark is assigned.
func AppendEntryHead(dst []byte, epoch, watermark uint64) []byte {
	dst = append(dst, `{"epoch":`...)
	dst = strconv.AppendUint(dst, epoch, 10)
	dst = append(dst, `,"watermark":`...)
	return strconv.AppendUint(dst, watermark, 10)
}

// AppendEntryBatches appends the watermark-independent remainder of the
// encoding: `,"batches":[...]}`. AppendEntryHead + AppendEntryBatches
// is byte-for-byte AppendEntry.
func AppendEntryBatches(dst []byte, batches []Batch) []byte {
	dst = append(dst, `,"batches":`...)
	if batches == nil {
		return append(dst, `null}`...)
	}
	dst = append(dst, '[')
	for i, b := range batches {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"stream":`...)
		dst = appendJSONString(dst, b.Stream)
		dst = append(dst, `,"lines":`...)
		if b.Lines == nil {
			dst = append(dst, `null}`...)
			continue
		}
		dst = append(dst, '[')
		for j, ln := range b.Lines {
			if j > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, ln)
		}
		dst = append(dst, `]}`...)
	}
	return append(dst, `]}`...)
}

// appendJSONString writes s as a JSON string. Log lines are almost
// always printable ASCII with nothing to escape, so those bytes are
// copied raw; anything encoding/json would transform — control bytes,
// quotes, backslashes, its HTML-safety set (<, >, &), and everything
// non-ASCII (multi-byte runes, U+2028/U+2029, invalid UTF-8) — falls
// back to json.Marshal so the output, including replacement-character
// handling, stays bit-identical to the reflective encoder.
func appendJSONString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			blob, err := json.Marshal(s)
			if err != nil {
				// Marshal of a string cannot fail; keep the fallback total.
				blob = []byte(`""`)
			}
			return append(dst, blob...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

// DecodeEntry parses a WAL/wire payload back into an Entry.
func DecodeEntry(data []byte) (Entry, error) {
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, fmt.Errorf("replica: decoding entry: %w", err)
	}
	if e.Watermark == 0 {
		return Entry{}, fmt.Errorf("replica: entry without watermark")
	}
	return e, nil
}

// Hello opens a /v1/wal stream: the primary announces its epoch, the
// watermark its bootstrap seed covered (entries below it are not in the
// WAL — the replica must have been seeded from the same bootstrap) and
// its current tip.
type Hello struct {
	Epoch         uint64 `json:"epoch"`
	SeedWatermark uint64 `json:"seed_watermark"`
	Watermark     uint64 `json:"watermark"`
}

// Heartbeat keeps an idle stream alive and carries the primary's tip so
// a caught-up replica can measure its lag without new entries.
type Heartbeat struct {
	Epoch     uint64 `json:"epoch"`
	Watermark uint64 `json:"watermark"`
}

// Frame is one NDJSON line of the /v1/wal stream; exactly one field is
// set per line.
type Frame struct {
	Hello     *Hello     `json:"hello,omitempty"`
	Entry     *Entry     `json:"entry,omitempty"`
	Heartbeat *Heartbeat `json:"hb,omitempty"`
}
