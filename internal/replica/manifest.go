package replica

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the sidecar file a primary writes next to its
// replication WAL segments. It carries the WAL's bootstrap identity so
// file-mode tailers get the same seed check the HTTP hello frame gives
// stream tailers: a replica seeded from a different bootstrap corpus
// must refuse to apply the WAL's entries even though their watermarks
// look contiguous.
const ManifestName = "MANIFEST.json"

// Manifest identifies the bootstrap a replication WAL's history builds
// on. Entries below SeedWatermark are not in the WAL; every node
// folding the WAL must have seeded the same corpus.
type Manifest struct {
	SeedWatermark uint64 `json:"seed_watermark"`
}

// WriteManifest persists the manifest under dir atomically
// (write-to-temp + rename), so a crash mid-write never leaves a
// torn manifest for a tailer to misread.
func WriteManifest(dir string, m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("replica: encoding manifest: %w", err)
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("replica: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("replica: writing manifest: %w", err)
	}
	return nil
}

// ReadManifest loads the manifest under dir. ok is false when none
// exists (a pre-manifest WAL directory, or a primary that has not
// finished opening its log yet); err reports real I/O or decode
// problems only.
func ReadManifest(dir string) (m Manifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("replica: reading manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("replica: decoding manifest: %w", err)
	}
	return m, true, nil
}
