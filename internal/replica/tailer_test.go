package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpcfail/internal/wal"
)

// TestEntryRoundTrip pins the wire codec: encode → decode is identity,
// and entries without a watermark are rejected on both sides.
func TestEntryRoundTrip(t *testing.T) {
	e := Entry{
		Epoch:     3,
		Watermark: 42,
		Batches: []Batch{
			{Stream: "syslog", Lines: []string{"line a", "line b"}},
			{Stream: "hw", Lines: []string{"line c"}},
		},
	}
	data, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip: got %+v want %+v", got, e)
	}
	if _, err := EncodeEntry(Entry{}); err == nil {
		t.Fatal("EncodeEntry accepted a zero watermark")
	}
	if _, err := DecodeEntry([]byte(`{"epoch":1}`)); err == nil {
		t.Fatal("DecodeEntry accepted a zero watermark")
	}
	if _, err := DecodeEntry([]byte(`not json`)); err == nil {
		t.Fatal("DecodeEntry accepted garbage")
	}
}

// walWithEntries builds a WAL directory holding the given entries.
func walWithEntries(t *testing.T, entries ...Entry) (string, *wal.Log) {
	t.Helper()
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	for _, e := range entries {
		appendEntry(t, l, e)
	}
	return dir, l
}

func appendEntry(t *testing.T, l *wal.Log, e Entry) {
	t.Helper()
	data, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(data); err != nil {
		t.Fatal(err)
	}
}

func mkEntry(epoch, wm uint64) Entry {
	return Entry{Epoch: epoch, Watermark: wm, Batches: []Batch{
		{Stream: "s", Lines: []string{fmt.Sprintf("payload for %d", wm)}},
	}}
}

// collector is an apply sink that records entries and signals progress.
type collector struct {
	mu      sync.Mutex
	entries []Entry
	ch      chan uint64
	failAt  uint64 // watermark whose apply returns an error (0 = never)
}

func newCollector() *collector { return &collector{ch: make(chan uint64, 128)} }

func (c *collector) apply(e Entry) error {
	if c.failAt != 0 && e.Watermark == c.failAt {
		return fmt.Errorf("injected apply failure at %d", e.Watermark)
	}
	c.mu.Lock()
	c.entries = append(c.entries, e)
	c.mu.Unlock()
	c.ch <- e.Watermark
	return nil
}

func (c *collector) snapshot() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Entry(nil), c.entries...)
}

func (c *collector) waitFor(t *testing.T, wm uint64) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case got := <-c.ch:
			if got >= wm {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for watermark %d (have %d entries)", wm, len(c.snapshot()))
		}
	}
}

func fastCfg(primary string) Config {
	return Config{
		Primary:      primary,
		BackoffBase:  -1, // no sleeping in tests
		PollInterval: time.Millisecond,
	}
}

// TestTailFileDelivers tails a WAL directory end to end: existing
// entries, then entries appended while tailing, arrive in order with
// watermark and epoch tracked.
func TestTailFileDelivers(t *testing.T) {
	dir, l := walWithEntries(t, mkEntry(1, 1), mkEntry(1, 2))
	c := newCollector()
	tl := NewTailer(fastCfg(dir), c.apply)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tl.Run(ctx) }()

	c.waitFor(t, 2)
	appendEntry(t, l, mkEntry(1, 3))
	appendEntry(t, l, mkEntry(1, 4))
	c.waitFor(t, 4)

	st := tl.Status()
	if st.Applied != 4 || st.Epoch != 1 || st.Mode != "file" || !st.Connected {
		t.Fatalf("Status = %+v", st)
	}
	got := c.snapshot()
	for i, e := range got {
		if e.Watermark != uint64(i+1) {
			t.Fatalf("entry %d has watermark %d", i, e.Watermark)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run after cancel = %v", err)
	}
}

// TestTailFileResume starts with After set: already-applied watermarks
// are skipped even though the file tail re-reads them from offset zero.
func TestTailFileResume(t *testing.T) {
	dir, _ := walWithEntries(t, mkEntry(1, 1), mkEntry(1, 2), mkEntry(1, 3))
	c := newCollector()
	cfg := fastCfg(dir)
	cfg.After = 2
	tl := NewTailer(cfg, c.apply)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go tl.Run(ctx)
	c.waitFor(t, 3)
	if got := c.snapshot(); len(got) != 1 || got[0].Watermark != 3 {
		t.Fatalf("resume applied %+v; want only watermark 3", got)
	}
}

// TestTailGapIsFatal pins the divergence contract: a skipped watermark
// stops the tailer with ErrDiverged instead of applying past the hole.
func TestTailGapIsFatal(t *testing.T) {
	dir, _ := walWithEntries(t, mkEntry(1, 1), mkEntry(1, 3))
	c := newCollector()
	tl := NewTailer(fastCfg(dir), c.apply)
	err := tl.Run(context.Background())
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("Run = %v; want ErrDiverged", err)
	}
	if got := c.snapshot(); len(got) != 1 || got[0].Watermark != 1 {
		t.Fatalf("applied %+v; want only watermark 1", got)
	}
	if st := tl.Status(); st.Err == nil || !st.Degraded {
		t.Fatalf("post-divergence Status = %+v; want Err set and Degraded", st)
	}
}

// TestTailApplyErrorIsFatal: the apply callback failing must stop the
// tailer — skipping an entry would silently fork the replica's history.
func TestTailApplyErrorIsFatal(t *testing.T) {
	dir, _ := walWithEntries(t, mkEntry(1, 1), mkEntry(1, 2))
	c := newCollector()
	c.failAt = 2
	tl := NewTailer(fastCfg(dir), c.apply)
	if err := tl.Run(context.Background()); !errors.Is(err, ErrDiverged) {
		t.Fatalf("Run = %v; want ErrDiverged", err)
	}
}

// TestTailFileManifestMismatch: file-mode tailing verifies the WAL's
// bootstrap identity exactly like HTTP mode verifies the hello frame —
// a replica seeded from a different corpus must diverge, not silently
// apply contiguous-looking watermarks over the wrong history.
func TestTailFileManifestMismatch(t *testing.T) {
	dir, _ := walWithEntries(t, mkEntry(1, 1))
	if err := WriteManifest(dir, Manifest{SeedWatermark: 7}); err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg(dir)
	cfg.SeedWatermark = 3
	tl := NewTailer(cfg, func(Entry) error { return nil })
	if err := tl.Run(context.Background()); !errors.Is(err, ErrDiverged) {
		t.Fatalf("Run = %v; want ErrDiverged", err)
	}
}

// TestTailFileWaitsForManifest: a seeded replica pointed at a WAL
// directory with no manifest yet (the primary is still booting) waits
// instead of applying unverified history, then proceeds once the
// manifest appears and matches.
func TestTailFileWaitsForManifest(t *testing.T) {
	dir, _ := walWithEntries(t, mkEntry(1, 2))
	c := newCollector()
	cfg := fastCfg(dir)
	cfg.SeedWatermark = 1
	cfg.After = 1
	cfg.BreakerCooldown = time.Millisecond
	tl := NewTailer(cfg, c.apply)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- tl.Run(ctx) }()

	time.Sleep(20 * time.Millisecond)
	if got := c.snapshot(); len(got) != 0 {
		t.Fatalf("applied %d entries from a WAL with no manifest", len(got))
	}
	if err := WriteManifest(dir, Manifest{SeedWatermark: 1}); err != nil {
		t.Fatal(err)
	}
	c.waitFor(t, 2)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v", err)
	}
}

// TestEpochFencing: entries from a deposed epoch are ignored (never
// applied, never gap-checked), while a higher epoch is adopted.
func TestEpochFencing(t *testing.T) {
	dir, l := walWithEntries(t, mkEntry(1, 1), mkEntry(1, 2))
	// Promotion to epoch 2 happened elsewhere at watermark 2; the old
	// primary (epoch 1) keeps writing 3 and 4 — split brain. Then the
	// new primary's entries arrive.
	appendEntry(t, l, mkEntry(1, 3))
	appendEntry(t, l, mkEntry(1, 4))

	c := newCollector()
	cfg := fastCfg(dir)
	cfg.Epoch = 2 // this tailer observed the promotion
	cfg.After = 2
	tl := NewTailer(cfg, c.apply)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- tl.Run(ctx) }()

	appendEntry(t, l, mkEntry(2, 3)) // the new primary's history
	c.waitFor(t, 3)
	st := tl.Status()
	if st.Fenced != 2 {
		t.Fatalf("Fenced = %d; want 2 (the split-brain writes)", st.Fenced)
	}
	if got := c.snapshot(); len(got) != 1 || got[0].Epoch != 2 || got[0].Watermark != 3 {
		t.Fatalf("applied %+v; want only epoch-2 watermark 3", got)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v", err)
	}
}

// fakePrimary serves a minimal /v1/wal for HTTP-mode tests.
type fakePrimary struct {
	mu      sync.Mutex
	epoch   uint64
	seedWM  uint64
	entries []Entry
	wake    chan struct{}
	hangup  bool // close each stream after draining current entries
}

func (p *fakePrimary) add(e Entry) {
	p.mu.Lock()
	p.entries = append(p.entries, e)
	close(p.wake)
	p.wake = make(chan struct{})
	p.mu.Unlock()
}

func (p *fakePrimary) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	after := uint64(0)
	fmt.Sscanf(r.URL.Query().Get("after"), "%d", &after)
	bw := bufio.NewWriter(w)
	fl, _ := w.(http.Flusher)
	send := func(f Frame) bool {
		b, _ := json.Marshal(f)
		bw.Write(append(b, '\n'))
		if bw.Flush() != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}
	p.mu.Lock()
	tip := uint64(0)
	if n := len(p.entries); n > 0 {
		tip = p.entries[n-1].Watermark
	}
	hello := Hello{Epoch: p.epoch, SeedWatermark: p.seedWM, Watermark: tip}
	p.mu.Unlock()
	if !send(Frame{Hello: &hello}) {
		return
	}
	sent := after
	for {
		p.mu.Lock()
		var pendingEntries []Entry
		for _, e := range p.entries {
			if e.Watermark > sent {
				pendingEntries = append(pendingEntries, e)
			}
		}
		wake := p.wake
		hangup := p.hangup
		p.mu.Unlock()
		for _, e := range pendingEntries {
			e := e
			if !send(Frame{Entry: &e}) {
				return
			}
			if e.Watermark > sent {
				sent = e.Watermark
			}
		}
		if hangup && len(pendingEntries) == 0 {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-time.After(50 * time.Millisecond):
			p.mu.Lock()
			hb := Heartbeat{Epoch: p.epoch, Watermark: sent}
			p.mu.Unlock()
			if !send(Frame{Heartbeat: &hb}) {
				return
			}
		}
	}
}

// TestStreamHTTPDelivers runs the HTTP mode against a fake primary:
// backlog then live entries arrive in order; heartbeats update the tip.
func TestStreamHTTPDelivers(t *testing.T) {
	p := &fakePrimary{epoch: 1, seedWM: 0, wake: make(chan struct{})}
	p.entries = []Entry{mkEntry(1, 1), mkEntry(1, 2)}
	srv := httptest.NewServer(p)
	defer srv.Close()

	c := newCollector()
	tl := NewTailer(fastCfg(srv.URL), c.apply)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tl.Run(ctx) }()

	c.waitFor(t, 2)
	p.add(mkEntry(1, 3))
	c.waitFor(t, 3)
	st := tl.Status()
	if st.Mode != "http" || st.Applied != 3 || !st.Connected {
		t.Fatalf("Status = %+v", st)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v", err)
	}
}

// TestStreamHTTPReconnects: a primary that hangs up after each drain
// exercises the resume path — every entry is still applied exactly once.
func TestStreamHTTPReconnects(t *testing.T) {
	p := &fakePrimary{epoch: 1, wake: make(chan struct{}), hangup: true}
	p.entries = []Entry{mkEntry(1, 1)}
	srv := httptest.NewServer(p)
	defer srv.Close()

	c := newCollector()
	tl := NewTailer(fastCfg(srv.URL), c.apply)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go tl.Run(ctx)
	c.waitFor(t, 1)
	// Wait for at least one hangup-driven reconnect before feeding more,
	// so the new entries provably arrive over a resumed stream.
	deadline := time.After(5 * time.Second)
	for tl.Status().Failures == 0 {
		select {
		case <-deadline:
			t.Fatal("primary hangup never surfaced as a failure")
		case <-time.After(time.Millisecond):
		}
	}
	p.add(mkEntry(1, 2))
	p.add(mkEntry(1, 3))
	c.waitFor(t, 3)
	got := c.snapshot()
	if len(got) != 3 {
		t.Fatalf("applied %d entries; want 3 exactly-once", len(got))
	}
	if tl.Status().Failures == 0 {
		t.Fatal("hangups should have been counted as failures")
	}
}

// TestStreamHTTPPartialFrameReconnects: a connection that breaks
// mid-frame leaves a partial NDJSON line in the reader. That torn line
// is a transient network failure, never divergence — the tailer must
// reconnect and apply the entry whole on the resumed stream.
func TestStreamHTTPPartialFrameReconnects(t *testing.T) {
	var conns atomic.Int64
	entry := mkEntry(1, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		fl := w.(http.Flusher)
		hello, _ := json.Marshal(Frame{Hello: &Hello{Epoch: 1, Watermark: 1}})
		w.Write(append(hello, '\n'))
		fl.Flush()
		data, _ := json.Marshal(Frame{Entry: &entry})
		if n == 1 {
			// Tear the connection mid-frame: half the entry, no newline.
			w.Write(data[:len(data)/2])
			fl.Flush()
			return
		}
		w.Write(append(data, '\n'))
		fl.Flush()
	}))
	defer srv.Close()

	c := newCollector()
	tl := NewTailer(fastCfg(srv.URL), c.apply)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tl.Run(ctx) }()
	c.waitFor(t, 1)
	if st := tl.Status(); st.Err != nil {
		t.Fatalf("torn frame classified as divergence: %v", st.Err)
	}
	if n := conns.Load(); n < 2 {
		t.Fatalf("entry arrived without a reconnect (%d connections); torn frame was parsed", n)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v", err)
	}
}

// TestSeedMismatchIsFatal: a primary seeded from a different bootstrap
// cannot be tailed — histories below the seed watermark differ.
func TestSeedMismatchIsFatal(t *testing.T) {
	p := &fakePrimary{epoch: 1, seedWM: 7, wake: make(chan struct{})}
	srv := httptest.NewServer(p)
	defer srv.Close()
	cfg := fastCfg(srv.URL)
	cfg.SeedWatermark = 3
	tl := NewTailer(cfg, func(Entry) error { return nil })
	if err := tl.Run(context.Background()); !errors.Is(err, ErrDiverged) {
		t.Fatalf("Run = %v; want ErrDiverged", err)
	}
}

// TestBreakerOpensAndDegrades: with the primary gone, consecutive
// failures open the breaker and the status turns degraded.
func TestBreakerOpensAndDegrades(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens: every dial fails

	cfg := fastCfg(url)
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = time.Hour
	cfg.DegradedAfter = time.Hour // isolate the breaker as the cause
	tl := NewTailer(cfg, func(Entry) error { return nil })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go tl.Run(ctx)

	deadline := time.After(5 * time.Second)
	for {
		st := tl.Status()
		if st.BreakerOpen {
			if !st.Degraded {
				t.Fatalf("breaker open but not degraded: %+v", st)
			}
			if st.Failures < 3 {
				t.Fatalf("breaker opened after %d failures; threshold 3", st.Failures)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("breaker never opened: %+v", tl.Status())
		case <-time.After(time.Millisecond):
		}
	}
}

// TestBackoffDeterministic: two tailers with one seed produce the same
// jittered backoff schedule — reproducible chaos runs depend on it.
func TestBackoffDeterministic(t *testing.T) {
	sched := func() []time.Duration {
		cfg := Config{Primary: "x", Seed: 9, BackoffBase: 10 * time.Millisecond, BackoffMax: time.Second}.withDefaults()
		tl := &Tailer{cfg: cfg}
		var out []time.Duration
		for attempt := 1; attempt <= 6; attempt++ {
			out = append(out, tl.backoffDelay(attempt))
		}
		return out
	}
	a, b := sched(), sched()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("backoff schedule not deterministic: %v vs %v", a, b)
	}
	for i, d := range a {
		base := 10 * time.Millisecond << uint(min(i, 16))
		if base > time.Second {
			base = time.Second
		}
		if d < base/2 || d > base*3/2 {
			t.Fatalf("attempt %d backoff %v outside ±50%% of %v", i+1, d, base)
		}
	}
}

// TestLagAndDegradedAfterSilence: heartbeats carry the primary tip into
// Lag(); silence past DegradedAfter flips Degraded without any failure.
func TestLagAndDegradedAfterSilence(t *testing.T) {
	st := Status{Applied: 5, PrimaryWatermark: 9}
	if st.Lag() != 4 {
		t.Fatalf("Lag = %d; want 4", st.Lag())
	}
	if (Status{Applied: 9, PrimaryWatermark: 5}).Lag() != 0 {
		t.Fatal("Lag must clamp at zero")
	}

	cfg := fastCfg("ignored")
	cfg.DegradedAfter = 10 * time.Millisecond
	tl := NewTailer(cfg, func(Entry) error { return nil })
	if tl.Status().Degraded {
		t.Fatal("fresh tailer already degraded")
	}
	time.Sleep(30 * time.Millisecond)
	if !tl.Status().Degraded {
		t.Fatal("silent source past DegradedAfter must read degraded")
	}
}
