package replica

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hpcfail/internal/rng"
	"hpcfail/internal/wal"
)

// ErrDiverged marks fatal replication failures: the replica's history
// and the source's can no longer be reconciled by retrying (seed
// mismatch, a watermark gap, sealed WAL damage, an undecodable entry,
// or an apply error). The tailer stops; the operator must re-seed or
// re-point the replica.
var ErrDiverged = errors.New("replica: diverged from primary")

// Config tunes a Tailer. The zero value of every optional field picks
// the documented default.
type Config struct {
	// Primary is the replication source: an http(s):// base URL whose
	// /v1/wal endpoint is streamed, or a filesystem path of the
	// primary's WAL directory to tail directly (shared-filesystem
	// deployments, and the promotion replay path).
	Primary string
	// After resumes the stream: entries with Watermark <= After are
	// already applied and skipped. Set it to the replica's watermark.
	After uint64
	// Epoch is the highest epoch already observed; entries below it are
	// fenced (ignored), never applied.
	Epoch uint64
	// SeedWatermark is the watermark this replica's bootstrap covered.
	// The primary's hello must agree — replication assumes primary and
	// replica were seeded from the same bootstrap corpus.
	SeedWatermark uint64
	// BackoffBase is the reconnect backoff base: base×2ⁿ⁻¹ with ±50%
	// deterministic jitter, capped at BackoffMax (defaults 50ms / 5s;
	// negative base disables sleeping, for tests).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold consecutive failures open the circuit breaker;
	// while open, no connection attempts are made for BreakerCooldown
	// (defaults 5 / 10s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DegradedAfter marks the replica degraded when the source has not
	// been heard from for this long (default 15s).
	DegradedAfter time.Duration
	// PollInterval is the file-mode poll cadence at the WAL tip
	// (default 100ms).
	PollInterval time.Duration
	// Seed drives the backoff jitter (default 1).
	Seed uint64
	// Client is the HTTP client for URL sources (default: one with no
	// overall timeout — the stream is long-lived — but sane dial
	// settings from http.DefaultTransport).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.BackoffBase == 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.DegradedAfter <= 0 {
		c.DegradedAfter = 15 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 100 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Status is a point-in-time view of the tailer, the input to the
// replica's degraded-mode headers, /healthz fields and gauges.
type Status struct {
	// Mode is "http" or "file".
	Mode string
	// Connected reports a currently established stream (http) or a
	// readable WAL directory (file).
	Connected bool
	// Degraded is the lag-aware health verdict: the breaker is open,
	// the source has been silent past DegradedAfter, or the tailer hit
	// fatal divergence. A degraded replica keeps serving.
	Degraded bool
	// Epoch is the highest epoch observed.
	Epoch uint64
	// Applied is the last applied watermark; PrimaryWatermark is the
	// last tip the source announced (http mode; file mode tracks
	// Applied). Lag is their difference.
	Applied          uint64
	PrimaryWatermark uint64
	// Fenced counts entries ignored because their epoch was stale.
	Fenced uint64
	// Failures counts failed connect/stream attempts; BreakerOpen
	// reports the breaker state.
	Failures    uint64
	BreakerOpen bool
	// LastContact is the last moment the source was heard from.
	LastContact time.Time
	// Err is the fatal divergence error, when one stopped the tailer.
	Err error
}

// Lag returns the observed watermark lag behind the source.
func (s Status) Lag() uint64 {
	if s.PrimaryWatermark <= s.Applied {
		return 0
	}
	return s.PrimaryWatermark - s.Applied
}

// Tailer follows a primary's replication WAL and applies each entry
// exactly once, in watermark order, through the supplied callback.
// Safe for one Run goroutine plus any number of Status readers.
type Tailer struct {
	cfg   Config
	apply func(Entry) error

	mu           sync.Mutex
	st           Status
	consecFails  int
	breakerUntil time.Time
}

// NewTailer builds a tailer; apply is invoked for every new entry, in
// order, from the Run goroutine. An apply error is fatal divergence.
func NewTailer(cfg Config, apply func(Entry) error) *Tailer {
	cfg = cfg.withDefaults()
	t := &Tailer{cfg: cfg, apply: apply}
	t.st = Status{
		Mode:             "file",
		Epoch:            cfg.Epoch,
		Applied:          cfg.After,
		PrimaryWatermark: cfg.After,
		LastContact:      time.Now(),
	}
	if strings.HasPrefix(cfg.Primary, "http://") || strings.HasPrefix(cfg.Primary, "https://") {
		t.st.Mode = "http"
	}
	return t
}

// Status returns the current status with the degraded verdict computed.
func (t *Tailer) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st
	st.BreakerOpen = time.Now().Before(t.breakerUntil)
	st.Degraded = st.Err != nil || st.BreakerOpen ||
		time.Since(st.LastContact) > t.cfg.DegradedAfter
	return st
}

// Run tails the source until ctx is cancelled (returns nil) or the
// stream fatally diverges (returns the ErrDiverged-wrapped cause, also
// visible in Status().Err).
func (t *Tailer) Run(ctx context.Context) error {
	attempt := 0
	for {
		if err := t.waitBreaker(ctx); err != nil {
			return nil
		}
		var err error
		if t.st.Mode == "http" {
			err = t.streamHTTP(ctx)
		} else {
			err = t.tailFile(ctx)
		}
		if ctx.Err() != nil {
			return nil
		}
		if errors.Is(err, ErrDiverged) {
			t.mu.Lock()
			t.st.Err = err
			t.st.Connected = false
			t.mu.Unlock()
			return err
		}
		attempt++
		t.recordFailure()
		if !t.sleepBackoff(ctx, attempt) {
			return nil
		}
		t.mu.Lock()
		if t.consecFails == 0 {
			attempt = 0 // progress was made since; restart the ladder
		}
		t.mu.Unlock()
	}
}

// waitBreaker blocks while the circuit breaker is open; a non-nil
// return means the context ended.
func (t *Tailer) waitBreaker(ctx context.Context) error {
	t.mu.Lock()
	until := t.breakerUntil
	t.mu.Unlock()
	d := time.Until(until)
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// recordFailure counts one failed attempt and opens the breaker at the
// threshold.
func (t *Tailer) recordFailure() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.st.Failures++
	t.st.Connected = false
	t.consecFails++
	if t.consecFails >= t.cfg.BreakerThreshold {
		t.breakerUntil = time.Now().Add(t.cfg.BreakerCooldown)
		t.consecFails = 0 // half-open after the cooldown: one fresh ladder
	}
}

// recordProgress marks source contact (and, when wm advanced, resets
// the failure ladder).
func (t *Tailer) recordProgress(tip uint64, epoch uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.st.LastContact = time.Now()
	t.consecFails = 0
	if tip > t.st.PrimaryWatermark {
		t.st.PrimaryWatermark = tip
	}
	if epoch > t.st.Epoch {
		t.st.Epoch = epoch
	}
}

// sleepBackoff pauses base×2ⁿ⁻¹ (capped) with ±50% deterministic
// jitter keyed by the attempt — the supervisor idiom the ingestion
// pipeline and remedy engine use, so two runs with one seed back off
// identically. False means the context ended.
func (t *Tailer) sleepBackoff(ctx context.Context, attempt int) bool {
	if t.cfg.BackoffBase < 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(t.backoffDelay(attempt))
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// backoffDelay computes the jittered delay for the given attempt
// (1-based): base×2ⁿ⁻¹ capped at BackoffMax, ±50%.
func (t *Tailer) backoffDelay(attempt int) time.Duration {
	base := float64(t.cfg.BackoffBase) * float64(uint64(1)<<uint(min(attempt-1, 16)))
	if m := float64(t.cfg.BackoffMax); base > m {
		base = m
	}
	r := rng.New(t.cfg.Seed).Split(fmt.Sprintf("backoff/%s/%d", t.cfg.Primary, attempt))
	return time.Duration(r.Jitter(base, 0.5))
}

// ingest runs the shared entry admission: epoch fencing, duplicate
// suppression, gap detection, then apply. Returns a fatal error or nil.
func (t *Tailer) ingest(e Entry) error {
	t.mu.Lock()
	epoch := t.st.Epoch
	applied := t.st.Applied
	t.mu.Unlock()

	if e.Watermark <= applied {
		t.recordProgress(e.Watermark, e.Epoch)
		return nil // duplicate on resume: already part of our history
	}
	if e.Epoch < epoch {
		// A fenced (deposed) writer's new entry: ignored, never applied,
		// and exempt from the gap check — its history is the abandoned
		// fork a split-brain primary kept writing.
		t.mu.Lock()
		t.st.Fenced++
		t.st.LastContact = time.Now()
		t.mu.Unlock()
		return nil
	}
	if e.Watermark != applied+1 {
		return fmt.Errorf("%w: watermark gap: applied %d, next entry %d", ErrDiverged, applied, e.Watermark)
	}
	if err := t.apply(e); err != nil {
		return fmt.Errorf("%w: applying watermark %d: %v", ErrDiverged, e.Watermark, err)
	}
	t.mu.Lock()
	t.st.Applied = e.Watermark
	if e.Watermark > t.st.PrimaryWatermark {
		t.st.PrimaryWatermark = e.Watermark
	}
	if e.Epoch > t.st.Epoch {
		t.st.Epoch = e.Epoch
	}
	t.st.LastContact = time.Now()
	t.consecFails = 0
	t.mu.Unlock()
	return nil
}

// streamHTTP consumes one /v1/wal connection until it breaks (transient
// error return) or fatally diverges.
func (t *Tailer) streamHTTP(ctx context.Context) error {
	t.mu.Lock()
	after := t.st.Applied
	t.mu.Unlock()
	url := strings.TrimSuffix(t.cfg.Primary, "/") + "/v1/wal?after=" + strconv.FormatUint(after, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := t.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("replica: /v1/wal status %d", resp.StatusCode)
	}

	br := bufio.NewReader(resp.Body)
	sawHello := false
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// EOF or broken stream. A buffered partial line is just where
			// the connection tore mid-frame — never evidence of divergence;
			// drop it and reconnect (resume re-delivers the entry whole).
			return err
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var f Frame
		if jerr := json.Unmarshal(line, &f); jerr != nil {
			return fmt.Errorf("%w: undecodable stream frame: %v", ErrDiverged, jerr)
		}
		switch {
		case f.Hello != nil:
			if f.Hello.SeedWatermark != t.cfg.SeedWatermark {
				return fmt.Errorf("%w: primary seed watermark %d, replica bootstrap %d — re-seed the replica from the primary's bootstrap",
					ErrDiverged, f.Hello.SeedWatermark, t.cfg.SeedWatermark)
			}
			t.mu.Lock()
			t.st.Connected = true
			t.mu.Unlock()
			t.recordProgress(f.Hello.Watermark, f.Hello.Epoch)
			sawHello = true
		case f.Entry != nil:
			if !sawHello {
				return fmt.Errorf("%w: stream sent entries before hello", ErrDiverged)
			}
			if ferr := t.ingest(*f.Entry); ferr != nil {
				return ferr
			}
		case f.Heartbeat != nil:
			t.recordProgress(f.Heartbeat.Watermark, f.Heartbeat.Epoch)
		}
	}
}

// tailFile follows the primary's WAL directory, delivering entries as
// frames complete. It returns on transient I/O errors (reconnect with
// backoff) and classifies sealed damage as divergence.
func (t *Tailer) tailFile(ctx context.Context) error {
	// Verify the WAL's bootstrap identity before applying anything —
	// the file-transport twin of the HTTP hello's seed check. A missing
	// manifest with a declared seed is a primary that has not finished
	// booting (or a pre-manifest directory): wait and retry rather than
	// apply unverified history.
	m, ok, err := ReadManifest(t.cfg.Primary)
	if err != nil {
		return err
	}
	if ok && m.SeedWatermark != t.cfg.SeedWatermark {
		return fmt.Errorf("%w: WAL manifest seed watermark %d, replica bootstrap %d — re-seed the replica from the primary's bootstrap",
			ErrDiverged, m.SeedWatermark, t.cfg.SeedWatermark)
	}
	if !ok && t.cfg.SeedWatermark != 0 {
		return fmt.Errorf("replica: %s has no WAL manifest yet", t.cfg.Primary)
	}
	tr := wal.NewTailReader(t.cfg.Primary, wal.Offset{})
	defer tr.Close()
	t.mu.Lock()
	t.st.Connected = true
	t.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil
		}
		payload, err := tr.Next()
		if err != nil {
			if errors.Is(err, wal.ErrDamaged) {
				return fmt.Errorf("%w: %v", ErrDiverged, err)
			}
			return err
		}
		if payload == nil {
			// Caught up. Reading the directory counts as contact: the
			// degraded verdict in file mode keys on tail readability.
			t.mu.Lock()
			t.st.LastContact = time.Now()
			t.consecFails = 0
			t.mu.Unlock()
			timer := time.NewTimer(t.cfg.PollInterval)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nil
			}
			timer.Stop()
			continue
		}
		e, derr := DecodeEntry(payload)
		if derr != nil {
			return fmt.Errorf("%w: %v", ErrDiverged, derr)
		}
		if ferr := t.ingest(e); ferr != nil {
			return ferr
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
