package loggen

import (
	"strings"
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/topology"
)

var at = time.Date(2015, 3, 2, 10, 15, 30, 123456000, time.UTC)
var node = cname.MustParse("c0-0c0s1n2")

func TestRenderInternalShape(t *testing.T) {
	r := events.Record{
		Time: at, Stream: events.StreamConsole, Component: node,
		Severity: events.SevCritical, Category: "kernel_panic",
		Msg: "Kernel panic - not syncing: Fatal machine check",
	}
	lines := Render(r, topology.SchedulerSlurm)
	if len(lines) != 1 {
		t.Fatalf("got %d lines", len(lines))
	}
	l := lines[0]
	for _, want := range []string{"2015-03-02T10:15:30.123456Z", "c0-0c0s1n2", "kernel:", "<2>", "Kernel panic"} {
		if !strings.Contains(l, want) {
			t.Errorf("line %q missing %q", l, want)
		}
	}
}

func TestRenderInternalWithTraceAndJob(t *testing.T) {
	r := events.Record{
		Time: at, Stream: events.StreamConsole, Component: node,
		Severity: events.SevError, Category: "kernel_oops",
		JobID: 397, Msg: "BUG: unable to handle kernel paging request",
	}
	r.SetField("trace", "oom_kill_process|xpmem_fault_handler@xpmem")
	lines := Render(r, topology.SchedulerSlurm)
	if len(lines) != 4 { // record + "Call Trace:" + 2 frames
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], "apid=397") {
		t.Errorf("missing apid: %q", lines[0])
	}
	if strings.Contains(lines[0], "trace=") {
		t.Errorf("trace must not render inline: %q", lines[0])
	}
	if !strings.Contains(lines[1], "Call Trace:") {
		t.Errorf("missing trace header: %q", lines[1])
	}
	if !strings.Contains(lines[2], "oom_kill_process") {
		t.Errorf("missing frame: %q", lines[2])
	}
	if !strings.Contains(lines[3], "[xpmem]") {
		t.Errorf("missing module: %q", lines[3])
	}
}

func TestRenderMessagesDaemonTag(t *testing.T) {
	r := events.Record{
		Time: at, Stream: events.StreamMessages, Component: node,
		Severity: events.SevWarning, Category: "nhc",
		Msg: "NHC: node c0-0c0s1n2 placed in suspect mode",
	}
	l := Render(r, topology.SchedulerSlurm)[0]
	if !strings.Contains(l, " nhc: ") {
		t.Errorf("NHC messages should use the nhc daemon tag: %q", l)
	}
}

func TestRenderTagged(t *testing.T) {
	r := events.Record{
		Time: at, Stream: events.StreamERD, Component: node,
		Severity: events.SevError, Category: "ec_node_heartbeat_fault",
		Msg: "ec_node_heartbeat_fault: node missed heartbeat",
	}
	r.SetField("detail", "two words")
	l := Render(r, topology.SchedulerSlurm)[0]
	for _, want := range []string{"erd:", "ec_node_heartbeat_fault ERROR", "|detail=two words"} {
		if !strings.Contains(l, want) {
			t.Errorf("line %q missing %q", l, want)
		}
	}
	bc := events.Record{Time: at, Stream: events.StreamControllerBC,
		Component: node.BladeName(), Severity: events.SevWarning, Category: "x", Msg: "m"}
	if !strings.Contains(Render(bc, topology.SchedulerSlurm)[0], "bcsysd:") {
		t.Error("BC stream should use bcsysd")
	}
	cc := events.Record{Time: at, Stream: events.StreamControllerCC,
		Component: node.CabinetName(), Severity: events.SevWarning, Category: "x", Msg: "m"}
	if !strings.Contains(Render(cc, topology.SchedulerSlurm)[0], "ccsysd:") {
		t.Error("CC stream should use ccsysd")
	}
}

func TestRenderSchedulerDialects(t *testing.T) {
	r := events.Record{
		Time: at, Stream: events.StreamScheduler, Severity: events.SevInfo,
		Category: "job_end", JobID: 397,
	}
	r.SetField("app", "cfd_solver")
	r.SetField("state", "COMPLETED")
	r.SetField("exit_code", "0")
	r.SetField("nodes", "c0-0c0s0n0,c0-0c0s0n1")

	slurm := Render(r, topology.SchedulerSlurm)[0]
	for _, want := range []string{"slurmctld:", "JobId=397", "Action=job_end", "State=COMPLETED", "NodeList=c0-0c0s0n0"} {
		if !strings.Contains(slurm, want) {
			t.Errorf("slurm line %q missing %q", slurm, want)
		}
	}
	torque := Render(r, topology.SchedulerTorque)[0]
	for _, want := range []string{";E;397.sdb;", "Action=job_end", "exec_host=c0-0c0s0n0"} {
		if !strings.Contains(torque, want) {
			t.Errorf("torque line %q missing %q", torque, want)
		}
	}
	// Start and epilogue codes.
	r.Category = "job_start"
	if !strings.Contains(Render(r, topology.SchedulerTorque)[0], ";S;") {
		t.Error("torque start should use S code")
	}
	r.Category = "job_epilogue"
	if !strings.Contains(Render(r, topology.SchedulerTorque)[0], ";P;") {
		t.Error("torque epilogue should use P code")
	}
}

func TestFileNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range AllStreams() {
		name := FileName(s)
		if name == "unknown.log" || seen[name] {
			t.Errorf("bad or duplicate file name %q for %v", name, s)
		}
		seen[name] = true
	}
	if FileName(events.Stream(99)) != "unknown.log" {
		t.Error("unknown stream file name")
	}
}

func TestRenderAllGroupsByStream(t *testing.T) {
	recs := []events.Record{
		{Time: at, Stream: events.StreamConsole, Component: node, Msg: "a", Category: "x"},
		{Time: at, Stream: events.StreamERD, Component: node, Msg: "b", Category: "y"},
		{Time: at, Stream: events.StreamScheduler, JobID: 1, Category: "job_start"},
	}
	m := RenderAll(recs, topology.SchedulerSlurm)
	if len(m["console.log"]) != 1 || len(m["erd.log"]) != 1 || len(m["scheduler.log"]) != 1 {
		t.Errorf("RenderAll grouping wrong: %v", m)
	}
}

func TestCorrupt(t *testing.T) {
	lines := []string{"aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb", "cccccccccccccccc", "dddddddddddddddd"}
	dropped := Corrupt(lines, 2, 0)
	if len(dropped) != 2 {
		t.Errorf("dropEvery=2 kept %d lines", len(dropped))
	}
	truncated := Corrupt(lines, 0, 2)
	if len(truncated) != 4 || len(truncated[1]) >= len(lines[1]) {
		t.Errorf("truncEvery=2 did not truncate: %v", truncated)
	}
	if got := Corrupt(lines, 0, 0); len(got) != 4 {
		t.Error("no-op corruption changed lines")
	}
}

func TestSeverityFromPrintk(t *testing.T) {
	cases := map[int]events.Severity{
		0: events.SevCritical, 2: events.SevCritical, 3: events.SevError,
		4: events.SevWarning, 5: events.SevWarning, 6: events.SevInfo, 7: events.SevInfo,
	}
	for lvl, want := range cases {
		if got := SeverityFromPrintk(lvl); got != want {
			t.Errorf("SeverityFromPrintk(%d) = %v, want %v", lvl, got, want)
		}
	}
}
