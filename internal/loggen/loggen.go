// Package loggen renders structured events into raw text logs in the
// formats the paper's pipeline consumed: Cray console/messages streams,
// blade/cabinet controller logs, the ERD event stream, and Slurm or
// Torque scheduler logs.
//
// Rendering is deliberately lossy in the same ways production logs are:
// console lines carry no machine-readable category (the parser must
// pattern-match kernel message text, exactly as real log miners do), and
// kernel oops records expand into multi-line "Call Trace:" dumps that
// the parser has to reassemble. External HSS streams carry their event
// names explicitly (ec_node_heartbeat_fault, …), as the real ERD does.
package loggen

import (
	"fmt"
	"strings"
	"time"

	"hpcfail/internal/events"
	"hpcfail/internal/stacktrace"
	"hpcfail/internal/topology"
)

// tsFormat is the microsecond ISO timestamp used across streams.
const tsFormat = "2006-01-02T15:04:05.000000Z07:00"

// torqueTSFormat is the Torque accounting timestamp (extended with
// microseconds to keep rendering lossless).
const torqueTSFormat = "01/02/2006 15:04:05.000000"

// Render renders one record into its raw log line(s) for its stream.
// sched selects the scheduler dialect for StreamScheduler records.
func Render(r events.Record, sched topology.SchedulerType) []string {
	switch r.Stream {
	case events.StreamConsole, events.StreamMessages, events.StreamConsumer:
		return renderInternal(r)
	case events.StreamControllerBC, events.StreamControllerCC:
		return []string{renderController(r)}
	case events.StreamERD:
		return []string{renderERD(r)}
	case events.StreamScheduler:
		if sched == topology.SchedulerTorque {
			return []string{renderTorque(r)}
		}
		return []string{renderSlurm(r)}
	case events.StreamALPS:
		return []string{renderALPS(r)}
	default:
		return []string{fmt.Sprintf("%s unknown-stream %s", r.Time.UTC().Format(tsFormat), r.Msg)}
	}
}

// printkLevel maps severities onto kernel printk levels, which the
// console renderer embeds as the conventional "<N>" prefix.
func printkLevel(s events.Severity) int {
	switch s {
	case events.SevCritical:
		return 2
	case events.SevError:
		return 3
	case events.SevWarning:
		return 4
	default:
		return 6
	}
}

// SeverityFromPrintk inverts printkLevel, mapping any kernel level onto
// the nearest Severity.
func SeverityFromPrintk(level int) events.Severity {
	switch {
	case level <= 2:
		return events.SevCritical
	case level == 3:
		return events.SevError
	case level <= 5:
		return events.SevWarning
	default:
		return events.SevInfo
	}
}

// renderInternal renders console/messages/consumer lines:
//
//	2015-03-02T10:15:30.000000Z c0-0c0s1n2 kernel: <3> Machine Check Exception ... apid=397
//
// followed by Call Trace lines when the record carries a trace. The
// category is NOT written — recovering it from message text is the
// parser's job.
func renderInternal(r events.Record) []string {
	daemon := "kernel"
	switch r.Stream {
	case events.StreamMessages:
		daemon = "system"
		if strings.HasPrefix(r.Msg, "NHC:") {
			daemon = "nhc"
		}
	case events.StreamConsumer:
		daemon = "consumer"
	}
	comp := "-"
	if r.Component.IsValid() {
		comp = r.Component.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s: <%d> %s", r.Time.UTC().Format(tsFormat), comp, daemon, printkLevel(r.Severity), r.Msg)
	// Structured attributes (except the trace, which expands to Call
	// Trace lines below) ride as trailing k=v tokens, then the apid.
	for _, kv := range strings.Split(r.FieldsString(), " ") {
		if kv == "" || strings.HasPrefix(kv, "trace=") {
			continue
		}
		b.WriteByte(' ')
		b.WriteString(kv)
	}
	if r.JobID != 0 {
		fmt.Fprintf(&b, " apid=%d", r.JobID)
	}
	lines := []string{b.String()}
	if enc := r.Field("trace"); enc != "" {
		tr := stacktrace.Decode(enc)
		// Trace lines carry the timestamp+component prefix too, as real
		// consoles interleave them.
		prefix := fmt.Sprintf("%s %s %s:", r.Time.UTC().Format(tsFormat), comp, daemon)
		for _, tl := range tr.Render() {
			lines = append(lines, prefix+" "+tl)
		}
	}
	return lines
}

// renderController renders BC/CC controller lines:
//
//	2015-03-02T10:15:30.000000Z c0-0c0s1 bcsysd: ec_bc_heartbeat_fault WARNING msg |k=v k=v
func renderController(r events.Record) string {
	daemon := "bcsysd"
	if r.Stream == events.StreamControllerCC {
		daemon = "ccsysd"
	}
	return renderTagged(r, daemon)
}

// renderERD renders event-router lines with the same tagged shape under
// the "erd" daemon.
func renderERD(r events.Record) string {
	return renderTagged(r, "erd")
}

// renderTagged is the shared external format: explicit category token,
// severity, message, then structured fields after " |".
func renderTagged(r events.Record, daemon string) string {
	comp := "-"
	if r.Component.IsValid() {
		comp = r.Component.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s: %s %s %s",
		r.Time.UTC().Format(tsFormat), comp, daemon, r.Category, r.Severity, r.Msg)
	if fs := r.FieldsString(); fs != "" {
		b.WriteString(" |")
		b.WriteString(fs)
	}
	return b.String()
}

// renderALPS renders apsched/apshepherd-style placement lines:
//
//	2015-03-02T10:15:30.000000Z apsched: apid_place apid=7000001 jobid=397 nodes=c0-0c0s0n[0-3]
func renderALPS(r events.Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s apsched: %s jobid=%d", r.Time.UTC().Format(tsFormat), r.Category, r.JobID)
	if v := r.Field("apid"); v != "" {
		fmt.Fprintf(&b, " apid=%s", v)
	}
	if v := r.Field("status"); v != "" {
		fmt.Fprintf(&b, " status=%s", v)
	}
	if v := r.Field("nodes"); v != "" {
		fmt.Fprintf(&b, " nodes=%s", v)
	}
	return b.String()
}

// renderSlurm renders slurmctld-style lines:
//
//	2015-03-02T10:15:30.000000Z slurmctld: JobId=397 Action=job_end State=COMPLETED ExitCode=0 App=cfd NodeList=...
func renderSlurm(r events.Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s slurmctld: JobId=%d Action=%s", r.Time.UTC().Format(tsFormat), r.JobID, r.Category)
	writeSchedulerKVs(&b, r, "NodeList")
	return b.String()
}

// renderTorque renders Torque accounting-style lines:
//
//	03/02/2015 10:15:30.000000;E;397.sdb;Action=job_end State=... exec_host=...
func renderTorque(r events.Record) string {
	code := "S"
	switch r.Category {
	case "job_end":
		code = "E"
	case "job_epilogue":
		code = "P"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s;%s;%d.sdb;Action=%s", r.Time.UTC().Format(torqueTSFormat), code, r.JobID, r.Category)
	writeSchedulerKVs(&b, r, "exec_host")
	return b.String()
}

// writeSchedulerKVs appends the scheduler record payload in a stable
// order. nodesKey names the dialect's node-list attribute.
func writeSchedulerKVs(b *strings.Builder, r events.Record, nodesKey string) {
	if v := r.Field("app"); v != "" {
		fmt.Fprintf(b, " App=%s", v)
	}
	if v := r.Field("user"); v != "" {
		fmt.Fprintf(b, " User=%s", v)
	}
	if v := r.Field("state"); v != "" {
		fmt.Fprintf(b, " State=%s", v)
	}
	if v := r.Field("exit_code"); v != "" {
		fmt.Fprintf(b, " ExitCode=%s", v)
	}
	if v := r.Field("req_mem_mb"); v != "" {
		fmt.Fprintf(b, " ReqMem=%sM", v)
	}
	if r.Component.IsValid() {
		fmt.Fprintf(b, " Node=%s", r.Component)
	}
	if v := r.Field("nodes"); v != "" {
		fmt.Fprintf(b, " %s=%s", nodesKey, v)
	}
}

// FileName maps a stream to its conventional log file name.
func FileName(s events.Stream) string {
	switch s {
	case events.StreamConsole:
		return "console.log"
	case events.StreamMessages:
		return "messages.log"
	case events.StreamConsumer:
		return "consumer.log"
	case events.StreamControllerBC:
		return "controller-bc.log"
	case events.StreamControllerCC:
		return "controller-cc.log"
	case events.StreamERD:
		return "erd.log"
	case events.StreamScheduler:
		return "scheduler.log"
	case events.StreamALPS:
		return "alps.log"
	default:
		return "unknown.log"
	}
}

// AllStreams lists the streams that map to log files.
func AllStreams() []events.Stream {
	return []events.Stream{
		events.StreamConsole, events.StreamMessages, events.StreamConsumer,
		events.StreamControllerBC, events.StreamControllerCC,
		events.StreamERD, events.StreamScheduler, events.StreamALPS,
	}
}

// RenderAll renders a record batch grouped by stream file name. Records
// should be pre-sorted by time (the generator guarantees it).
func RenderAll(recs []events.Record, sched topology.SchedulerType) map[string][]string {
	out := make(map[string][]string)
	for _, r := range recs {
		name := FileName(r.Stream)
		out[name] = append(out[name], Render(r, sched)...)
	}
	return out
}

// Corrupt applies production logging discrepancies for robustness
// testing (the paper's challenge #1: missing and partial information):
// dropP removes whole lines, truncP truncates lines at a random point.
// The decision function keeps this deterministic for callers that pass a
// seeded generator; see tests.
func Corrupt(lines []string, dropEvery, truncEvery int) []string {
	out := make([]string, 0, len(lines))
	for i, l := range lines {
		if dropEvery > 0 && (i+1)%dropEvery == 0 {
			continue
		}
		if truncEvery > 0 && (i+1)%truncEvery == 0 && len(l) > 10 {
			l = l[:len(l)/2]
		}
		out = append(out, l)
	}
	return out
}

// timeMustParse guards the package's own format constants at init.
var _ = func() time.Time {
	t, err := time.Parse(tsFormat, "2015-03-02T10:15:30.000000Z")
	if err != nil {
		panic(err)
	}
	return t
}()
