package topology

import (
	"testing"
	"testing/quick"

	"hpcfail/internal/cname"
)

func TestProfilesMatchTable1(t *testing.T) {
	ps := Profiles()
	if len(ps) != 5 {
		t.Fatalf("got %d profiles, want 5", len(ps))
	}
	wantNodes := map[string]int{"S1": 5600, "S2": 6400, "S3": 2100, "S4": 1872, "S5": 520}
	wantSched := map[string]SchedulerType{
		"S1": SchedulerSlurm, "S2": SchedulerTorque, "S3": SchedulerSlurm,
		"S4": SchedulerTorque, "S5": SchedulerSlurm,
	}
	for _, p := range ps {
		if p.Nodes != wantNodes[p.ID] {
			t.Errorf("%s nodes = %d, want %d", p.ID, p.Nodes, wantNodes[p.ID])
		}
		if p.Scheduler != wantSched[p.ID] {
			t.Errorf("%s scheduler = %v, want %v", p.ID, p.Scheduler, wantSched[p.ID])
		}
	}
	// Only S2 uses Gemini; only S5 is non-Cray with GPUs.
	for _, p := range ps {
		switch p.ID {
		case "S2":
			if p.Fabric != GeminiTorus {
				t.Error("S2 should use Gemini Torus")
			}
		case "S5":
			if p.Cray || !p.HasGPUs || p.Fabric != Infiniband {
				t.Error("S5 should be non-Cray, GPU, Infiniband")
			}
		default:
			if p.Fabric != AriesDragonfly || !p.Cray {
				t.Errorf("%s should be Cray Aries", p.ID)
			}
		}
	}
	// Burst buffers on S3 and S4 only.
	for _, p := range ps {
		want := p.ID == "S3" || p.ID == "S4"
		if p.HasBurstBuffer != want {
			t.Errorf("%s burst buffer = %v, want %v", p.ID, p.HasBurstBuffer, want)
		}
	}
}

func TestProfileByID(t *testing.T) {
	p, err := ProfileByID("S3")
	if err != nil || p.ID != "S3" {
		t.Fatalf("ProfileByID(S3) = %+v, %v", p, err)
	}
	if _, err := ProfileByID("S9"); err == nil {
		t.Error("ProfileByID should reject unknown ids")
	}
}

func TestProfilesReturnsCopy(t *testing.T) {
	ps := Profiles()
	ps[0].Nodes = 1
	ps2 := Profiles()
	if ps2[0].Nodes == 1 {
		t.Error("Profiles() leaked internal state")
	}
}

func TestCabinetCount(t *testing.T) {
	s := Spec{Nodes: 5600, CabinetCols: 6}
	// 5600 / 192 = 29.17 -> 30 cabinets.
	if got := s.CabinetCount(); got != 30 {
		t.Errorf("CabinetCount = %d, want 30", got)
	}
	if got := (Spec{Nodes: 192}).CabinetCount(); got != 1 {
		t.Errorf("full cabinet count = %d, want 1", got)
	}
}

func TestClusterEnumeration(t *testing.T) {
	spec, _ := ProfileByID("S5")
	c := New(spec)
	if c.NumNodes() != 520 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	seen := map[cname.Name]bool{}
	for i := 0; i < c.NumNodes(); i++ {
		n := c.Node(i)
		if seen[n] {
			t.Fatalf("duplicate node %v", n)
		}
		seen[n] = true
		if c.NID(n) != i {
			t.Fatalf("NID(%v) = %d, want %d", n, c.NID(n), i)
		}
		if !c.Contains(n) {
			t.Fatalf("cluster should contain %v", n)
		}
	}
	if c.NID(cname.Node(99, 99, 0, 0, 0)) != -1 {
		t.Error("NID of foreign node should be -1")
	}
}

func TestBladesAndCabinets(t *testing.T) {
	c := New(Spec{ID: "T", Nodes: 200, CabinetCols: 2})
	blades := c.Blades()
	// 200 nodes = 50 blades exactly.
	if len(blades) != 50 {
		t.Fatalf("got %d blades, want 50", len(blades))
	}
	for _, b := range blades {
		if b.Level() != cname.LevelBlade {
			t.Fatalf("Blades() returned non-blade %v", b)
		}
	}
	cabs := c.Cabinets()
	// 200 nodes span 2 cabinets (192 + 8).
	if len(cabs) != 2 {
		t.Fatalf("got %d cabinets, want 2", len(cabs))
	}
}

func TestBladeNodesPartialBlade(t *testing.T) {
	// 198 nodes: last blade holds only 2 nodes.
	c := New(Spec{ID: "T", Nodes: 198, CabinetCols: 2})
	blades := c.Blades()
	last := blades[len(blades)-1]
	nodes := c.BladeNodes(last)
	if len(nodes) != 2 {
		t.Fatalf("last blade has %d nodes, want 2", len(nodes))
	}
	full := c.BladeNodes(blades[0])
	if len(full) != 4 {
		t.Fatalf("first blade has %d nodes, want 4", len(full))
	}
}

func TestNewPanicsOnDegenerateSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero nodes did not panic")
		}
	}()
	New(Spec{})
}

func TestStringers(t *testing.T) {
	if SchedulerSlurm.String() != "Slurm" || SchedulerTorque.String() != "Torque" {
		t.Error("scheduler names wrong")
	}
	if AriesDragonfly.String() != "Aries Dragonfly" || Infiniband.String() != "Infiniband" {
		t.Error("fabric names wrong")
	}
	if SchedulerType(9).String() == "" || Interconnect(9).String() == "" {
		t.Error("unknown enums should still stringify")
	}
}

// Property: every node's blade is reported by Blades() exactly once and
// BladeNodes inverts node→blade membership.
func TestQuickBladeMembership(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)%3000 + 1
		c := New(Spec{ID: "Q", Nodes: n, CabinetCols: 3})
		count := 0
		for _, b := range c.Blades() {
			count += len(c.BladeNodes(b))
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
