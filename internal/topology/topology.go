// Package topology models the five HPC systems of the study (Table I of
// the paper) as physical hierarchies of cabinets, chassis, blades and
// nodes addressable by Cray component names.
//
// Four of the systems are Cray machines with the standard XC/XE geometry
// (3 chassis per cabinet, 16 blade slots per chassis, 4 nodes per blade).
// S5 is an institutional Infiniband cluster; the paper's blade/cabinet
// correlation steps do not apply to it, but for uniform addressing we map
// its racks onto the same naming scheme (a rack behaves like a cabinet)
// — only node-level analyses are performed on S5, so the mapping is
// purely an identifier choice.
package topology

import (
	"fmt"

	"hpcfail/internal/cname"
)

// SchedulerType identifies the workload manager of a system.
type SchedulerType int

const (
	// SchedulerSlurm is the Slurm workload manager (S1, S3, S5).
	SchedulerSlurm SchedulerType = iota
	// SchedulerTorque is the Torque/PBS resource manager (S2, S4).
	SchedulerTorque
)

// String returns the scheduler's conventional name.
func (s SchedulerType) String() string {
	switch s {
	case SchedulerSlurm:
		return "Slurm"
	case SchedulerTorque:
		return "Torque"
	default:
		return fmt.Sprintf("scheduler(%d)", int(s))
	}
}

// Interconnect identifies the network fabric.
type Interconnect int

const (
	// AriesDragonfly is the Cray Aries network in a dragonfly topology
	// (XC30/XC40 systems).
	AriesDragonfly Interconnect = iota
	// GeminiTorus is the Cray Gemini network in a 3D torus (XK6/XE6 era).
	GeminiTorus
	// Infiniband is a commodity Infiniband fabric (institutional
	// clusters).
	Infiniband
)

// String returns the fabric name.
func (ic Interconnect) String() string {
	switch ic {
	case AriesDragonfly:
		return "Aries Dragonfly"
	case GeminiTorus:
		return "Gemini Torus"
	case Infiniband:
		return "Infiniband"
	default:
		return fmt.Sprintf("interconnect(%d)", int(ic))
	}
}

// Spec describes one studied system, mirroring a row of Table I.
type Spec struct {
	// ID is the paper's system label: "S1" … "S5".
	ID string
	// Machine is the platform description, e.g. "Cray XC30".
	Machine string
	// Nodes is the compute-node count.
	Nodes int
	// CabinetCols is the number of cabinet columns in the floor layout;
	// rows follow from the node count.
	CabinetCols int
	// Scheduler is the workload manager.
	Scheduler SchedulerType
	// Fabric is the interconnect.
	Fabric Interconnect
	// FileSystem names the parallel (or local) file system.
	FileSystem string
	// OS names the node operating system.
	OS string
	// Processors names the CPU generation(s).
	Processors string
	// HasGPUs reports GPU presence (only S5 in the study).
	HasGPUs bool
	// HasBurstBuffer reports burst-buffer presence (S3, S4).
	HasBurstBuffer bool
	// LogMonths is the duration of the analysed logs in months.
	LogMonths int
	// LogSizeGB is the raw log volume analysed by the paper, for
	// documentation.
	LogSizeGB float64
	// Cray reports whether the platform has the HSS external log family
	// (blade/cabinet controllers, ERD). S5 does not.
	Cray bool
}

// CabinetCount returns the number of cabinets needed to house Nodes.
func (s Spec) CabinetCount() int {
	return (s.Nodes + cname.NodesPerCabinet - 1) / cname.NodesPerCabinet
}

// profiles holds the Table I systems. Node counts, durations and
// configuration come straight from the paper; cabinet columns are chosen
// to give plausible floor layouts.
var profiles = []Spec{
	{
		ID: "S1", Machine: "Cray XC30", Nodes: 5600, CabinetCols: 6,
		Scheduler: SchedulerSlurm, Fabric: AriesDragonfly,
		FileSystem: "Lustre", OS: "SuSE", Processors: "IvyBridge",
		LogMonths: 10, LogSizeGB: 37.3, Cray: true,
	},
	{
		ID: "S2", Machine: "Cray XK6", Nodes: 6400, CabinetCols: 6,
		Scheduler: SchedulerTorque, Fabric: GeminiTorus,
		FileSystem: "Lustre", OS: "CLE", Processors: "IvyBridge",
		LogMonths: 12, LogSizeGB: 150, Cray: true,
	},
	{
		ID: "S3", Machine: "Cray XC40", Nodes: 2100, CabinetCols: 4,
		Scheduler: SchedulerSlurm, Fabric: AriesDragonfly,
		FileSystem: "Lustre", OS: "SuSE", Processors: "Haswell",
		HasBurstBuffer: true, LogMonths: 8, LogSizeGB: 39.6, Cray: true,
	},
	{
		ID: "S4", Machine: "Cray XC40/XC30", Nodes: 1872, CabinetCols: 4,
		Scheduler: SchedulerTorque, Fabric: AriesDragonfly,
		FileSystem: "Lustre", OS: "CLE", Processors: "Haswell/IvyBridge",
		HasBurstBuffer: true, LogMonths: 10, LogSizeGB: 22.8, Cray: true,
	},
	{
		ID: "S5", Machine: "Institutional", Nodes: 520, CabinetCols: 2,
		Scheduler: SchedulerSlurm, Fabric: Infiniband,
		FileSystem: "local", OS: "RedHat", Processors: "Haswell",
		HasGPUs: true, LogMonths: 1, LogSizeGB: 3.1, Cray: false,
	},
}

// Profiles returns the Table I system specs in order S1..S5. The slice
// is a copy; callers may modify it freely.
func Profiles() []Spec {
	out := make([]Spec, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileByID returns the spec with the given paper label ("S1".."S5").
func ProfileByID(id string) (Spec, error) {
	for _, p := range profiles {
		if p.ID == id {
			return p, nil
		}
	}
	return Spec{}, fmt.Errorf("topology: unknown system %q", id)
}

// Cluster is an instantiated system: the spec plus the enumerated node
// population. Node identity is dense: node i has NID i and the cname
// cname.FromNID(i, spec.CabinetCols).
type Cluster struct {
	spec   Spec
	nodes  []cname.Name
	byName map[cname.Name]int
}

// New instantiates the cluster for a spec. It panics if the spec is
// degenerate (no nodes or no cabinet columns) since specs are
// programmer-provided configuration.
func New(spec Spec) *Cluster {
	if spec.Nodes <= 0 || spec.CabinetCols <= 0 {
		panic(fmt.Sprintf("topology: degenerate spec %+v", spec))
	}
	c := &Cluster{
		spec:   spec,
		nodes:  make([]cname.Name, spec.Nodes),
		byName: make(map[cname.Name]int, spec.Nodes),
	}
	for i := 0; i < spec.Nodes; i++ {
		n := cname.FromNID(i, spec.CabinetCols)
		c.nodes[i] = n
		c.byName[n] = i
	}
	return c
}

// Spec returns the cluster's system spec.
func (c *Cluster) Spec() Spec { return c.spec }

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns the cname of node nid. It panics on out-of-range nid.
func (c *Cluster) Node(nid int) cname.Name {
	return c.nodes[nid]
}

// NID returns the dense id of a node cname, or -1 if the node is not part
// of this cluster.
func (c *Cluster) NID(n cname.Name) int {
	if i, ok := c.byName[n]; ok {
		return i
	}
	return -1
}

// Nodes returns all node cnames in NID order. The returned slice is
// shared; callers must not modify it.
func (c *Cluster) Nodes() []cname.Name { return c.nodes }

// Blades returns the distinct blades that contain at least one node, in
// NID order.
func (c *Cluster) Blades() []cname.Name {
	var out []cname.Name
	var last cname.Name
	for _, n := range c.nodes {
		b := n.BladeName()
		if b != last {
			out = append(out, b)
			last = b
		}
	}
	return out
}

// Cabinets returns the distinct cabinets that contain at least one node,
// in NID order.
func (c *Cluster) Cabinets() []cname.Name {
	var out []cname.Name
	var last cname.Name
	for _, n := range c.nodes {
		cb := n.CabinetName()
		if cb != last {
			out = append(out, cb)
			last = cb
		}
	}
	return out
}

// BladeNodes returns the nodes of the given blade that exist in this
// cluster (the last blade of a partially populated system may hold fewer
// than 4).
func (c *Cluster) BladeNodes(blade cname.Name) []cname.Name {
	var out []cname.Name
	for i := 0; i < cname.NodesPerBlade; i++ {
		n := cname.Node(blade.Col(), blade.Row(), blade.ChassisIndex(), blade.SlotIndex(), i)
		if _, ok := c.byName[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Contains reports whether the node is part of this cluster.
func (c *Cluster) Contains(n cname.Name) bool {
	_, ok := c.byName[n]
	return ok
}
