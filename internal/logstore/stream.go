package logstore

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"hpcfail/internal/events"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logparse"
	"hpcfail/internal/topology"
)

// StreamOptions tunes the sharded streaming loader. The zero value
// selects sensible defaults everywhere.
type StreamOptions struct {
	// Workers is the parse worker-pool size (<= 0 selects GOMAXPROCS).
	Workers int
	// Shards is the ShardedStore shard count (<= 0 selects
	// DefaultShards).
	Shards int
	// ChunkLines is the per-task chunk size in lines (<= 0 selects
	// 4096). Internal-stream chunk boundaries are nudged forward to
	// trace-safe split points.
	ChunkLines int
	// Queue bounds the in-flight task and result channels — the
	// backpressure knob. At most Queue+Workers chunks are parsed or
	// awaiting collection at once, which bounds transient memory to
	// O(Queue × ChunkLines) parsed records beyond the store itself
	// (<= 0 selects 2 × Workers).
	Queue int
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.ChunkLines <= 0 {
		o.ChunkLines = 4096
	}
	if o.Queue <= 0 {
		o.Queue = 2 * o.Workers
	}
	return o
}

// streamMeta is what the producer learned about one stream's file
// before enqueueing its chunks.
type streamMeta struct {
	missing  bool
	skipped  *FileWarning
	chunks   int
	nonBlank int
}

type chunkTask struct {
	si     int
	ci     int
	stream events.Stream
	chunk  logparse.Chunk
}

type chunkResult struct {
	si   int
	ci   int
	recs []events.Record
	errs []error
}

// StreamLoadDir is the sharded, memory-bounded counterpart of
// LoadDirReport: log files are read one at a time, split into
// trace-safe chunks, parsed by a bounded worker pool with backpressure,
// and routed into a ShardedStore in arrival order. The returned store's
// merged view, and the IngestReport (per-stream ledgers, skip warnings,
// missing streams, quarantine samples), are identical to what
// LoadDirReport produces for the same directory — the
// sequential-equivalence invariant the determinism harness enforces.
//
// The error is reserved for a path that exists but is not a directory,
// exactly like LoadDirReport; all file-level damage is survived and
// accounted in the report.
func StreamLoadDir(dir string, sched topology.SchedulerType, opts StreamOptions) (*ShardedStore, *IngestReport, error) {
	if fi, err := os.Stat(dir); err == nil && !fi.IsDir() {
		return nil, nil, fmt.Errorf("logstore: %s is not a directory", dir)
	}
	opts = opts.withDefaults()
	streams := loggen.AllStreams()

	metas := make([]streamMeta, len(streams))
	metaReady := make([]chan struct{}, len(streams))
	for i := range metaReady {
		metaReady[i] = make(chan struct{})
	}
	tasks := make(chan chunkTask, opts.Queue)
	results := make(chan chunkResult, opts.Queue)

	// Producer: one file at a time. Enqueueing blocks when the pool is
	// saturated, so at most the current file's text plus the bounded
	// in-flight chunks are resident beyond the records already stored.
	go func() {
		defer close(tasks)
		for si, stream := range streams {
			m := &metas[si]
			data, err := os.ReadFile(filepath.Join(dir, loggen.FileName(stream)))
			switch {
			case os.IsNotExist(err):
				m.missing = true
			case err != nil:
				m.skipped = &FileWarning{File: loggen.FileName(stream), Err: err.Error()}
			case strings.TrimSpace(string(data)) == "":
				m.skipped = &FileWarning{File: loggen.FileName(stream), Err: "empty file"}
			}
			if m.missing || m.skipped != nil {
				close(metaReady[si])
				continue
			}
			lines := logparse.SplitLines(string(data))
			for _, l := range lines {
				if strings.TrimSpace(l) != "" {
					m.nonBlank++
				}
			}
			chunks := logparse.SafeChunks(stream, lines, opts.ChunkLines)
			m.chunks = len(chunks)
			close(metaReady[si])
			for ci, c := range chunks {
				tasks <- chunkTask{si: si, ci: ci, stream: stream, chunk: c}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				recs, errs := logparse.ParseChunk(t.stream, sched, t.chunk)
				results <- chunkResult{si: t.si, ci: t.ci, recs: recs, errs: errs}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: assemble streams in loggen.AllStreams order so shard
	// appends (and therefore sequence numbers) match the sequential
	// loader's arrival order exactly. Out-of-order chunk results are
	// parked; their count is bounded by the pool size plus queue depth.
	ss := NewSharded(opts.Shards)
	rep := &IngestReport{}
	pending := map[[2]int]chunkResult{}
	for si, stream := range streams {
		<-metaReady[si]
		m := &metas[si]
		if m.missing {
			rep.Missing = append(rep.Missing, stream.String())
			continue
		}
		if m.skipped != nil {
			rep.Skipped = append(rep.Skipped, *m.skipped)
			continue
		}
		var recs []events.Record
		var errs []error
		for ci := 0; ci < m.chunks; ci++ {
			r, ok := pending[[2]int{si, ci}]
			for !ok {
				in, open := <-results
				if !open {
					return nil, nil, fmt.Errorf("logstore: result channel closed early (stream %s chunk %d)", stream, ci)
				}
				if in.si == si && in.ci == ci {
					r = in
					ok = true
					break
				}
				pending[[2]int{in.si, in.ci}] = in
			}
			delete(pending, [2]int{si, ci})
			recs = append(recs, r.recs...)
			errs = append(errs, r.errs...)
		}
		rep.Streams = append(rep.Streams, logparse.BuildStreamReport(stream, m.nonBlank, recs, errs))
		ss.Append(recs)
	}
	ss.Seal()
	return ss, rep, nil
}
