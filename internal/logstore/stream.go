package logstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"hpcfail/internal/chaos"
	"hpcfail/internal/events"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logparse"
	"hpcfail/internal/rng"
	"hpcfail/internal/topology"
	"hpcfail/internal/wal"
)

// StreamOptions tunes the sharded streaming loader. The zero value
// selects sensible defaults everywhere.
type StreamOptions struct {
	// Workers is the parse worker-pool size (<= 0 selects GOMAXPROCS).
	Workers int
	// Shards is the ShardedStore shard count (<= 0 selects
	// DefaultShards).
	Shards int
	// ChunkLines is the per-task chunk size in lines (<= 0 selects
	// 4096). Internal-stream chunk boundaries are nudged forward to
	// trace-safe split points.
	ChunkLines int
	// Queue bounds the in-flight task and result channels — the
	// backpressure knob. At most Queue+Workers chunks are parsed or
	// awaiting collection at once, which bounds transient memory to
	// O(Queue × ChunkLines) parsed records beyond the store itself
	// (<= 0 selects 2 × Workers).
	Queue int

	// Journal, when set, receives the checkpoint journal (see
	// checkpoint.go): every committed chunk's parse output, file
	// identities, supervisor verdicts. A killed load resumes from it
	// with ResumeLoadDir. StreamLoadDir resets the journal first; nil
	// disables checkpointing entirely.
	Journal *wal.Log
	// CheckpointEvery is the durability cadence: a mark entry is
	// written and the journal fsynced (when its WAL has Sync enabled)
	// every this many committed chunks (<= 0 selects 16).
	CheckpointEvery int

	// Chaos, when set, is consulted at the pipeline's fault seams:
	// ReadFault before each file read, ChunkFault before each parse
	// attempt. Production loads leave it nil; the robustness harness
	// drives the supervisor through it.
	Chaos *chaos.Injector

	// MaxAttempts bounds parse attempts per chunk (and read attempts
	// per file) before the supervisor quarantines it as poisoned
	// (<= 0 selects 3).
	MaxAttempts int
	// BreakerThreshold is the per-stream circuit breaker: after this
	// many poisoned chunks in one stream its remaining chunks are
	// dropped and the stream left partial (<= 0 selects 4).
	BreakerThreshold int
	// StallTimeout is the per-attempt watchdog: an attempt that has not
	// returned after this long is abandoned as stalled (0 selects 30s;
	// negative disables the watchdog).
	StallTimeout time.Duration
	// MaxWorkerRestarts bounds how many times a worker goroutine is
	// restarted after a panic escapes per-attempt recovery (0 selects
	// 2; negative disables restarts). Beyond the budget the worker
	// drains its queue, poisoning every task.
	MaxWorkerRestarts int
	// BackoffBase scales retry/restart backoff: attempt n sleeps
	// base×2ⁿ⁻¹ with deterministic ±50% jitter (0 selects 1ms;
	// negative disables sleeping — tests).
	BackoffBase time.Duration

	// OnChunk, when set, is called by the collector after each chunk
	// slot is committed (journaled) — the seam crash tests use to
	// cancel the context at an exact point of progress.
	OnChunk func(stream string, ci int)
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.ChunkLines <= 0 {
		o.ChunkLines = 4096
	}
	if o.Queue <= 0 {
		o.Queue = 2 * o.Workers
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 16
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 4
	}
	if o.StallTimeout == 0 {
		o.StallTimeout = 30 * time.Second
	}
	if o.MaxWorkerRestarts == 0 {
		o.MaxWorkerRestarts = 2
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = time.Millisecond
	}
	return o
}

// streamMeta is what the producer learned about one stream's file
// before enqueueing its chunks.
type streamMeta struct {
	missing  bool
	skipped  *FileWarning
	chunks   int
	nonBlank int
	size     int64
	// startChunk is the first chunk index enqueued (> 0 when a resume
	// reuses journaled chunks for this stream).
	startChunk int
	// restarted means the journal's partial state for this stream was
	// discarded (the file changed or vanished); the collector
	// re-journals the file entry and starts from chunk 0.
	restarted bool
	// replayed means the journal satisfied this stream entirely; the
	// producer enqueued nothing.
	replayed bool
}

type chunkTask struct {
	si     int
	ci     int
	stream events.Stream
	chunk  logparse.Chunk
}

type chunkResult struct {
	si   int
	ci   int
	recs []events.Record
	errs []error
	// poisoned means every attempt failed; reason is the last failure,
	// lines the chunk's line count, attempts how many were made.
	poisoned bool
	reason   string
	lines    int
	attempts int
}

// workerFailpoint, when set by a package test, is invoked for each task
// outside per-attempt recovery — the hook that exercises worker-level
// panic supervision.
var workerFailpoint func(t chunkTask)

// streamPipe is one streaming load's shared pipeline state.
type streamPipe struct {
	ctx     context.Context
	dir     string
	sched   topology.SchedulerType
	opts    StreamOptions
	streams []events.Stream
	rs      *resumeState

	metas     []streamMeta
	metaReady []chan struct{}
	tasks     chan chunkTask
	results   chan chunkResult
	wg        sync.WaitGroup
}

// StreamLoadDir is the sharded, memory-bounded counterpart of
// LoadDirReport: log files are read one at a time, split into
// trace-safe chunks, parsed by a supervised bounded worker pool with
// backpressure, and routed into a ShardedStore in arrival order. The
// returned store's merged view, and the IngestReport (per-stream
// ledgers, skip warnings, missing streams, supervisor verdicts), are
// identical to what LoadDirReport produces for the same directory — the
// sequential-equivalence invariant the determinism harness enforces.
//
// The error is reserved for a path that exists but is not a directory,
// exactly like LoadDirReport; all file-level damage is survived and
// accounted in the report.
func StreamLoadDir(dir string, sched topology.SchedulerType, opts StreamOptions) (*ShardedStore, *IngestReport, error) {
	return StreamLoadDirContext(context.Background(), dir, sched, opts)
}

// StreamLoadDirContext is StreamLoadDir under a context: cancellation
// stops the load cleanly at the next chunk boundary, returning the
// partial IngestReport wrapped with ErrInterrupted (no store). With a
// Journal configured the progress is checkpointed, so a later
// ResumeLoadDir continues record-for-record where this load stopped.
// Any stale journal contents are reset first.
func StreamLoadDirContext(ctx context.Context, dir string, sched topology.SchedulerType, opts StreamOptions) (*ShardedStore, *IngestReport, error) {
	if fi, err := os.Stat(dir); err == nil && !fi.IsDir() {
		return nil, nil, fmt.Errorf("logstore: %s is not a directory", dir)
	}
	return loadPipeline(ctx, dir, sched, opts.withDefaults(), nil)
}

// ResumeLoadDir continues a journaled load killed before completion:
// the WAL is replayed, completed streams are rebuilt from their
// journaled parse output (no re-read, no re-parse), the stream in
// flight at the kill re-reads its file — identity-checked against the
// journal — and re-enters the pipeline at the first unjournaled chunk.
// The result is record-for-record identical to an uninterrupted
// StreamLoadDir of the same directory with the same options.
//
// Safety ladder: an empty journal degrades to a fresh load; a
// structurally damaged journal is reset and the load restarts from
// scratch; a journal recorded for a different directory or scheduler
// dialect is an error (the caller pointed resume at the wrong corpus).
// A journal ending in a done entry rebuilds the whole store without
// touching the directory at all.
func ResumeLoadDir(ctx context.Context, dir string, sched topology.SchedulerType, opts StreamOptions) (*ShardedStore, *IngestReport, error) {
	if opts.Journal == nil {
		return nil, nil, errors.New("logstore: ResumeLoadDir requires a journal")
	}
	if fi, err := os.Stat(dir); err == nil && !fi.IsDir() {
		return nil, nil, fmt.Errorf("logstore: %s is not a directory", dir)
	}
	opts = opts.withDefaults()
	streams := loggen.AllStreams()
	rs, err := replayJournal(opts.Journal, len(streams))
	if err != nil {
		if !errors.Is(err, errJournalInvalid) {
			return nil, nil, err
		}
		if rerr := opts.Journal.Reset(); rerr != nil {
			return nil, nil, rerr
		}
		rs = nil
	}
	if rs != nil && !rs.hasHdr {
		rs = nil // empty journal: fresh load
	}
	if rs != nil {
		if rs.hdr.Dir != dir || rs.hdr.Sched != int(sched) {
			return nil, nil, fmt.Errorf("logstore: journal records a different load (dir %q, sched %d)", rs.hdr.Dir, rs.hdr.Sched)
		}
		// Adopt the journaled chunking and supervision parameters:
		// chunk indexes are only meaningful under the same split.
		opts.Shards = rs.hdr.Shards
		opts.ChunkLines = rs.hdr.ChunkLines
		opts.MaxAttempts = rs.hdr.Attempts
		opts.BreakerThreshold = rs.hdr.Breaker
	}
	return loadPipeline(ctx, dir, sched, opts, rs)
}

// loadPipeline runs the producer → workers → collector pipeline, with
// opts already defaulted and rs the replayed journal state (nil for a
// fresh load).
func loadPipeline(ctx context.Context, dir string, sched topology.SchedulerType, opts StreamOptions, rs *resumeState) (*ShardedStore, *IngestReport, error) {
	p := &streamPipe{
		ctx:     ctx,
		dir:     dir,
		sched:   sched,
		opts:    opts,
		streams: loggen.AllStreams(),
		rs:      rs,
	}
	j := &journalWriter{log: opts.Journal, every: opts.CheckpointEvery}
	if opts.Journal != nil && rs == nil {
		// Fresh journaled load: discard any stale journal and stamp the
		// load identity.
		if err := opts.Journal.Reset(); err != nil {
			return nil, nil, err
		}
		j.write(jEntry{T: "hdr", Dir: dir, Sched: int(sched), Shards: opts.Shards,
			ChunkLines: opts.ChunkLines, Attempts: opts.MaxAttempts, Breaker: opts.BreakerThreshold})
	}

	p.metas = make([]streamMeta, len(p.streams))
	p.metaReady = make([]chan struct{}, len(p.streams))
	for i := range p.metaReady {
		p.metaReady[i] = make(chan struct{})
	}
	p.tasks = make(chan chunkTask, opts.Queue)
	p.results = make(chan chunkResult, opts.Queue)

	go p.produce()
	for w := 0; w < opts.Workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	go func() {
		p.wg.Wait()
		close(p.results)
	}()
	return p.collect(j)
}

// resumeFor returns the replayed journal state for stream si, nil when
// this is a fresh load or the journal never reached the stream.
func (p *streamPipe) resumeFor(si int) *streamResume {
	if p.rs == nil {
		return nil
	}
	sr := &p.rs.streams[si]
	if !sr.hasFile && !sr.missing && sr.skipped == nil {
		return nil
	}
	return sr
}

// produce reads files one at a time and enqueues their chunks,
// honouring replayed journal state and the chaos read seam.
func (p *streamPipe) produce() {
	defer close(p.tasks)
	for si, stream := range p.streams {
		if !p.produceStream(si, stream) {
			// Context cancelled: release the collector for every
			// remaining stream before bailing.
			for i := si; i < len(p.streams); i++ {
				select {
				case <-p.metaReady[i]:
				default:
					close(p.metaReady[i])
				}
			}
			return
		}
	}
}

// produceStream handles one stream; false means the context was
// cancelled mid-stream.
func (p *streamPipe) produceStream(si int, stream events.Stream) bool {
	m := &p.metas[si]
	sr := p.resumeFor(si)
	if sr != nil && sr.complete() {
		m.replayed = true
		close(p.metaReady[si])
		return true
	}

	name := loggen.FileName(stream)
	data, readErr := p.readFile(name)
	if readErr != nil && errors.Is(readErr, p.ctx.Err()) {
		close(p.metaReady[si])
		return false
	}
	switch {
	case readErr != nil && os.IsNotExist(readErr):
		m.missing = true
	case readErr != nil:
		m.skipped = &FileWarning{File: name, Err: readErr.Error()}
	case strings.TrimSpace(string(data)) == "":
		m.skipped = &FileWarning{File: name, Err: "empty file"}
	}
	if m.missing || m.skipped != nil {
		if sr != nil {
			// The journal holds partial chunks for a file that has since
			// vanished: discard them.
			m.restarted = true
		}
		close(p.metaReady[si])
		return true
	}

	lines := logparse.SplitLines(string(data))
	for _, l := range lines {
		if strings.TrimSpace(l) != "" {
			m.nonBlank++
		}
	}
	chunks := logparse.SafeChunks(stream, lines, p.opts.ChunkLines)
	m.chunks = len(chunks)
	m.size = int64(len(data))
	if sr != nil {
		if sr.nonBlank == m.nonBlank && sr.chunks == m.chunks && sr.size == m.size {
			// Same file as journaled: skip the chunks already committed.
			m.startChunk = sr.doneChunks
		} else {
			// The file changed underneath the journal: restart the
			// stream from scratch, superseding its journal state.
			m.restarted = true
		}
	}
	close(p.metaReady[si])
	for ci := m.startChunk; ci < m.chunks; ci++ {
		select {
		case p.tasks <- chunkTask{si: si, ci: ci, stream: stream, chunk: chunks[ci]}:
		case <-p.ctx.Done():
			return false
		}
	}
	return true
}

// readFile reads one log file through the chaos read seam, retrying
// injected I/O faults with backoff up to the attempt budget.
func (p *streamPipe) readFile(name string) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		if p.opts.Chaos != nil {
			if ferr := p.opts.Chaos.ReadFault(name, attempt); ferr != nil {
				if attempt+1 >= p.opts.MaxAttempts {
					return nil, ferr
				}
				if !p.sleepBackoff("read/"+name, attempt+1) {
					return nil, p.ctx.Err()
				}
				continue
			}
		}
		return os.ReadFile(filepath.Join(p.dir, name))
	}
}

// sleepBackoff sleeps base×2ⁿ⁻¹ with deterministic ±50% jitter keyed
// by the label; false means the context was cancelled while sleeping.
func (p *streamPipe) sleepBackoff(label string, attempt int) bool {
	if p.opts.BackoffBase < 0 {
		return p.ctx.Err() == nil
	}
	base := float64(p.opts.BackoffBase << uint(attempt-1))
	var seed uint64
	if p.opts.Chaos != nil {
		seed = p.opts.Chaos.Config().Seed
	}
	r := rng.New(seed).Split(fmt.Sprintf("backoff/%s/%d", label, attempt))
	d := time.Duration(r.Jitter(base, 0.5))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.ctx.Done():
		return false
	}
}

// emit delivers one result, bailing on cancellation.
func (p *streamPipe) emit(r chunkResult) bool {
	select {
	case p.results <- r:
		return true
	case <-p.ctx.Done():
		return false
	}
}

// worker supervises one worker goroutine: panics escaping per-attempt
// recovery poison the in-flight task and restart the loop with backoff,
// up to the restart budget; past it the worker drains its queue,
// poisoning everything, so the load always completes.
func (p *streamPipe) worker() {
	defer p.wg.Done()
	restarts := 0
	for {
		cur, panicked, msg := p.workerRun()
		if !panicked {
			return
		}
		res := chunkResult{si: cur.si, ci: cur.ci, poisoned: true,
			lines: len(cur.chunk.Lines), attempts: 1,
			reason: "worker panic: " + msg}
		if !p.emit(res) {
			return
		}
		if restarts >= p.opts.MaxWorkerRestarts {
			for {
				select {
				case t, open := <-p.tasks:
					if !open {
						return
					}
					if !p.emit(chunkResult{si: t.si, ci: t.ci, poisoned: true,
						lines: len(t.chunk.Lines), attempts: 0,
						reason: "worker restart budget exhausted"}) {
						return
					}
				case <-p.ctx.Done():
					return
				}
			}
		}
		restarts++
		if !p.sleepBackoff("restart", restarts) {
			return
		}
	}
}

// workerRun consumes tasks until the channel closes, the context
// cancels, or a panic escapes (returned with the in-flight task).
func (p *streamPipe) workerRun() (cur chunkTask, panicked bool, msg string) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			msg = fmt.Sprint(r)
		}
	}()
	for {
		select {
		case t, open := <-p.tasks:
			if !open {
				return cur, false, ""
			}
			cur = t
			if hook := workerFailpoint; hook != nil {
				hook(t)
			}
			if !p.emit(p.processTask(t)) {
				return cur, false, ""
			}
		case <-p.ctx.Done():
			return cur, false, ""
		}
	}
}

// processTask runs a chunk through the retry loop: each attempt is
// guarded (panic recovery + stall watchdog); exhausting the budget
// poisons the chunk.
func (p *streamPipe) processTask(t chunkTask) chunkResult {
	name := loggen.FileName(t.stream)
	var reason string
	for attempt := 0; attempt < p.opts.MaxAttempts; attempt++ {
		if attempt > 0 && !p.sleepBackoff(fmt.Sprintf("chunk/%s/%d", name, t.ci), attempt) {
			break
		}
		recs, errs, fault := p.attemptChunk(t, name, attempt)
		if fault == "" {
			return chunkResult{si: t.si, ci: t.ci, recs: recs, errs: errs, attempts: attempt + 1}
		}
		reason = fault
	}
	return chunkResult{si: t.si, ci: t.ci, poisoned: true,
		lines: len(t.chunk.Lines), attempts: p.opts.MaxAttempts, reason: reason}
}

// stallReason is the watchdog's verdict string — shared by the real
// watchdog and the virtual (no-sleep) injected-stall path so poison
// accounting is identical either way.
func (p *streamPipe) stallReason() string {
	return fmt.Sprintf("stall: watchdog timeout after %v", p.opts.StallTimeout)
}

// attemptChunk makes one guarded parse attempt. The parse runs in a
// sub-goroutine with panic recovery; a watchdog abandons it as stalled
// after StallTimeout (the goroutine leaks until done — its result lands
// in a buffered channel nobody reads). Injected faults from the chaos
// seam drive the same machinery: FaultPanic panics inside the guard,
// FaultStall sleeps StallTime there (or, when StallTime is zero, takes
// the deterministic shortcut of returning the watchdog verdict without
// any wall-clock wait).
func (p *streamPipe) attemptChunk(t chunkTask, name string, attempt int) ([]events.Record, []error, string) {
	inject := chaos.FaultNone
	if p.opts.Chaos != nil {
		inject = p.opts.Chaos.ChunkFault(name, t.ci, attempt)
		if inject == chaos.FaultStall && p.opts.Chaos.StallTime() <= 0 {
			return nil, nil, p.stallReason()
		}
	}
	type outcome struct {
		recs  []events.Record
		errs  []error
		fault string
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{fault: fmt.Sprintf("panic: %v", r)}
			}
		}()
		switch inject {
		case chaos.FaultPanic:
			panic("chaos: injected panic")
		case chaos.FaultStall:
			time.Sleep(p.opts.Chaos.StallTime())
		}
		recs, errs := logparse.ParseChunk(t.stream, p.sched, t.chunk)
		done <- outcome{recs: recs, errs: errs}
	}()
	var watchdog <-chan time.Time
	if p.opts.StallTimeout > 0 {
		timer := time.NewTimer(p.opts.StallTimeout)
		defer timer.Stop()
		watchdog = timer.C
	}
	select {
	case o := <-done:
		return o.recs, o.errs, o.fault
	case <-watchdog:
		return nil, nil, p.stallReason()
	}
}

// journalWriter serialises the collector's checkpoint entries and
// handles the durability cadence. A write error disables further
// journaling (the load continues un-checkpointed) and is surfaced once
// on the report.
type journalWriter struct {
	log   *wal.Log
	every int

	sinceMark int
	total     int
	err       error
}

func (j *journalWriter) write(e jEntry) {
	if j.log == nil || j.err != nil {
		return
	}
	if err := appendEntry(j.log, e); err != nil {
		j.err = err
	}
}

// commit journals one chunk-slot entry and advances the mark cadence.
func (j *journalWriter) commit(e jEntry, ss *ShardedStore) {
	j.write(e)
	j.total += len(e.Recs)
	j.sinceMark++
	if j.sinceMark >= j.every {
		j.sinceMark = 0
		j.write(jEntry{T: "mark", RecTotal: j.total, ShardLens: ss.ShardLens()})
		j.sync()
	}
}

func (j *journalWriter) sync() {
	if j.log == nil || j.err != nil {
		return
	}
	if err := j.log.Sync(); err != nil {
		j.err = err
	}
}

// collect assembles chunk results in stream order, journals every
// committed slot, applies the circuit breaker, and builds the store and
// report. It is the journal's only writer.
func (p *streamPipe) collect(j *journalWriter) (*ShardedStore, *IngestReport, error) {
	ss := NewSharded(p.opts.Shards)
	rep := &IngestReport{}
	pending := map[[2]int]chunkResult{}

	interrupted := func() (*ShardedStore, *IngestReport, error) {
		j.sync()
		p.journalWarning(j, rep)
		return nil, rep, fmt.Errorf("%w (resume with the same journal)", ErrInterrupted)
	}

	for si, stream := range p.streams {
		select {
		case <-p.metaReady[si]:
		case <-p.ctx.Done():
			return interrupted()
		}
		if p.ctx.Err() != nil {
			return interrupted()
		}
		m := &p.metas[si]
		sr := p.resumeFor(si)

		if m.replayed {
			// Journal satisfied the stream entirely.
			switch {
			case sr.missing:
				rep.Missing = append(rep.Missing, stream.String())
			case sr.skipped != nil:
				rep.Skipped = append(rep.Skipped, *sr.skipped)
			default:
				rep.Poisoned = append(rep.Poisoned, sr.poisoned...)
				if sr.trip != nil {
					rep.Tripped = append(rep.Tripped, *sr.trip)
				}
				rep.Streams = append(rep.Streams, logparse.BuildStreamReport(stream, sr.nonBlank, sr.recs, sr.errs))
				ss.Append(sr.recs)
			}
			continue
		}

		name := loggen.FileName(stream)
		if m.missing {
			j.write(jEntry{T: "miss", SI: si})
			rep.Missing = append(rep.Missing, stream.String())
			continue
		}
		if m.skipped != nil {
			j.write(jEntry{T: "skip", SI: si, File: m.skipped.File, Err: m.skipped.Err})
			rep.Skipped = append(rep.Skipped, *m.skipped)
			continue
		}

		var recs []events.Record
		var errs []error
		poisonCount := 0
		if sr != nil && !m.restarted {
			// Reuse the journaled prefix of this stream.
			recs = sr.recs
			errs = sr.errs
			rep.Poisoned = append(rep.Poisoned, sr.poisoned...)
			poisonCount = len(sr.poisoned)
		} else {
			j.write(jEntry{T: "file", SI: si, File: name,
				NonBlank: m.nonBlank, Chunks: m.chunks, Size: m.size})
		}

		tripped := false
		for ci := m.startChunk; ci < m.chunks; ci++ {
			r, ok := p.nextResult(si, ci, pending)
			if !ok {
				return interrupted()
			}
			switch {
			case tripped:
				// Breaker open: the slot is consumed and discarded.
			case r.poisoned:
				pz := PoisonChunk{Stream: stream.String(), Chunk: ci,
					Lines: r.lines, Attempts: r.attempts, Reason: r.reason}
				j.commit(jEntry{T: "poison", SI: si, CI: ci, File: pz.Stream,
					Lines: pz.Lines, Attempts: pz.Attempts, Reason: pz.Reason}, ss)
				rep.Poisoned = append(rep.Poisoned, pz)
				poisonCount++
				if poisonCount >= p.opts.BreakerThreshold {
					tripped = true
					trip := BreakerTrip{Stream: stream.String(),
						Poisoned: poisonCount, Dropped: m.chunks - ci - 1}
					j.write(jEntry{T: "trip", SI: si, File: trip.Stream,
						Poisoned: trip.Poisoned, Dropped: trip.Dropped})
					rep.Tripped = append(rep.Tripped, trip)
				}
			default:
				j.commit(jEntry{T: "chunk", SI: si, CI: ci, Seq: len(recs),
					Recs: toJRecs(r.recs), Errs: toJErrs(r.errs)}, ss)
				recs = append(recs, r.recs...)
				errs = append(errs, r.errs...)
			}
			if p.opts.OnChunk != nil {
				p.opts.OnChunk(stream.String(), ci)
			}
			if p.ctx.Err() != nil {
				return interrupted()
			}
		}
		rep.Streams = append(rep.Streams, logparse.BuildStreamReport(stream, m.nonBlank, recs, errs))
		ss.Append(recs)
	}
	j.write(jEntry{T: "done"})
	j.sync()
	p.journalWarning(j, rep)
	ss.Seal()
	return ss, rep, nil
}

// nextResult blocks until the (si, ci) chunk result is available,
// parking out-of-order arrivals; false means cancellation or a pipeline
// wedge (results channel closed with the slot still owed).
func (p *streamPipe) nextResult(si, ci int, pending map[[2]int]chunkResult) (chunkResult, bool) {
	key := [2]int{si, ci}
	if r, ok := pending[key]; ok {
		delete(pending, key)
		return r, true
	}
	for {
		select {
		case in, open := <-p.results:
			if !open {
				return chunkResult{}, false
			}
			if in.si == si && in.ci == ci {
				return in, true
			}
			pending[[2]int{in.si, in.ci}] = in
		case <-p.ctx.Done():
			return chunkResult{}, false
		}
	}
}

// journalWarning surfaces a journal write failure once, as a skip-style
// warning: checkpointing stopped but the load itself was unaffected.
func (p *streamPipe) journalWarning(j *journalWriter, rep *IngestReport) {
	if j.err == nil {
		return
	}
	rep.Skipped = append(rep.Skipped, FileWarning{
		File: "<checkpoint journal>",
		Err:  fmt.Sprintf("journaling disabled: %v", j.err),
	})
	j.err = nil
}
