package logstore

import (
	"errors"
	"testing"

	"hpcfail/internal/events"
	"hpcfail/internal/logparse"
)

func TestMergeStreamAccumulates(t *testing.T) {
	rep := &IngestReport{Missing: []string{"console", "erd"}}

	rep.MergeStream(logparse.StreamReport{Stream: events.StreamConsole, Lines: 10, Parsed: 9, Quarantined: 1,
		Samples: []string{"bad line"}, Errs: []error{errors.New("x")}})
	if len(rep.Streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(rep.Streams))
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "erd" {
		t.Fatalf("missing = %v, want [erd]", rep.Missing)
	}

	rep.MergeStream(logparse.StreamReport{Stream: events.StreamConsole, Lines: 5, Parsed: 5})
	if len(rep.Streams) != 1 {
		t.Fatalf("same stream merged into %d entries", len(rep.Streams))
	}
	s := rep.Streams[0]
	if s.Lines != 15 || s.Parsed != 14 || s.Quarantined != 1 {
		t.Errorf("merged ledger = %+v", s)
	}
	if rep.TotalParsed() != 14 || rep.TotalQuarantined() != 1 {
		t.Errorf("totals = %d/%d, want 14/1", rep.TotalParsed(), rep.TotalQuarantined())
	}

	rep.MergeStream(logparse.StreamReport{Stream: events.StreamERD, Lines: 2, Parsed: 2})
	if len(rep.Streams) != 2 || len(rep.Missing) != 0 {
		t.Errorf("new stream: streams=%d missing=%v", len(rep.Streams), rep.Missing)
	}
}

func TestMergeStreamBoundsRetention(t *testing.T) {
	rep := &IngestReport{}
	for i := 0; i < 100; i++ {
		rep.MergeStream(logparse.StreamReport{Stream: events.StreamConsole, Lines: 2, Parsed: 1, Quarantined: 1,
			Samples: []string{"s"}, Errs: []error{errors.New("e")}})
	}
	s := rep.Streams[0]
	if s.Quarantined != 100 {
		t.Errorf("quarantined = %d, want 100 (counts must keep accumulating)", s.Quarantined)
	}
	if len(s.Samples) > maxMergedSamples {
		t.Errorf("samples retained = %d, want <= %d", len(s.Samples), maxMergedSamples)
	}
	if len(s.Errs) > maxMergedErrors {
		t.Errorf("errors retained = %d, want <= %d", len(s.Errs), maxMergedErrors)
	}
}
