package logstore

// Checkpoint journal: the streaming loader's crash-recovery record,
// written through internal/wal. Every payload is one JSON entry; the
// "t" field discriminates:
//
//	hdr    — load identity (dir, scheduler dialect) and the chunking /
//	         supervision parameters that make chunk indexes meaningful.
//	         Always the first entry.
//	file   — a stream's file was read: its non-blank line count, chunk
//	         count and byte size (the identity a resume re-validates).
//	         A second file entry for the same stream supersedes the
//	         first — the file changed underneath a resume and the
//	         stream was restarted from scratch.
//	miss   — the stream's file was absent.
//	skip   — the file was skipped with a warning (unreadable / empty /
//	         read faults exhausted).
//	chunk  — one chunk's parse output committed in collector order:
//	         the records and (reconstructible) parse errors. Seq is the
//	         stream-local record offset before this chunk — the dedup /
//	         continuity key a resume validates.
//	poison — the supervisor quarantined the chunk after exhausting its
//	         attempts; occupies the chunk's slot in the order.
//	trip   — the stream's circuit breaker opened; the stream is
//	         complete (its remaining chunks were dropped).
//	mark   — periodic durability marker: cumulative record total and
//	         per-shard counters at the fsync point. Informational.
//	done   — the load completed and sealed. A journal ending in done
//	         can rebuild the whole store with no corpus directory.
//
// The WAL contract (prefix delivery after torn-tail truncation) plus
// the collector being the journal's only writer make replay simple:
// entries arrive in exactly the order the collector committed work, and
// a crash can only make the journal shorter, never inconsistent.

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"
	"unicode/utf8"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/logparse"
	"hpcfail/internal/wal"
)

// jstr is a binary-safe JSON string: chaos-garbled log lines carry
// invalid UTF-8, which encoding/json would silently coerce to U+FFFD —
// a lossy journal. Valid UTF-8 marshals as a plain JSON string; anything
// else as {"b64": ...}.
type jstr string

func (s jstr) MarshalJSON() ([]byte, error) {
	if utf8.ValidString(string(s)) {
		return json.Marshal(string(s))
	}
	return json.Marshal(map[string]string{"b64": base64.StdEncoding.EncodeToString([]byte(s))})
}

func (s *jstr) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '{' {
		var m map[string]string
		if err := json.Unmarshal(data, &m); err != nil {
			return err
		}
		b, err := base64.StdEncoding.DecodeString(m["b64"])
		if err != nil {
			return err
		}
		*s = jstr(b)
		return nil
	}
	var plain string
	if err := json.Unmarshal(data, &plain); err != nil {
		return err
	}
	*s = jstr(plain)
	return nil
}

// jkv is one structured-field pair (maps with garbled keys can't be
// JSON object keys, and a sorted pair list keeps the journal bytes
// deterministic).
type jkv struct {
	K jstr `json:"k"`
	V jstr `json:"v"`
}

// jRecord is events.Record with every parser-derived string routed
// through jstr. Component stays native: valid component names are
// ASCII by construction (garbled ones fail to parse and quarantine).
type jRecord struct {
	Time      time.Time       `json:"t"`
	Stream    events.Stream   `json:"s,omitempty"`
	Component cname.Name      `json:"c,omitempty"`
	Severity  events.Severity `json:"v,omitempty"`
	Category  jstr            `json:"k,omitempty"`
	Msg       jstr            `json:"m,omitempty"`
	JobID     int64           `json:"j,omitempty"`
	Fields    []jkv           `json:"f,omitempty"`
}

func toJRecs(recs []events.Record) []jRecord {
	if len(recs) == 0 {
		return nil
	}
	out := make([]jRecord, 0, len(recs))
	for _, r := range recs {
		jr := jRecord{
			Time:      r.Time,
			Stream:    r.Stream,
			Component: r.Component,
			Severity:  r.Severity,
			Category:  jstr(r.Category),
			Msg:       jstr(r.Msg),
			JobID:     r.JobID,
		}
		if r.Fields != nil {
			keys := make([]string, 0, len(r.Fields))
			for k := range r.Fields {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			jr.Fields = make([]jkv, 0, len(keys))
			for _, k := range keys {
				jr.Fields = append(jr.Fields, jkv{K: jstr(k), V: jstr(r.Fields[k])})
			}
		}
		out = append(out, jr)
	}
	return out
}

func fromJRecs(jrs []jRecord) []events.Record {
	if len(jrs) == 0 {
		return nil
	}
	out := make([]events.Record, 0, len(jrs))
	for _, jr := range jrs {
		r := events.Record{
			Time:      jr.Time,
			Stream:    jr.Stream,
			Component: jr.Component,
			Severity:  jr.Severity,
			Category:  string(jr.Category),
			Msg:       string(jr.Msg),
			JobID:     jr.JobID,
		}
		if jr.Fields != nil {
			r.Fields = make(map[string]string, len(jr.Fields))
			for _, kv := range jr.Fields {
				r.Fields[string(kv.K)] = string(kv.V)
			}
		}
		out = append(out, r)
	}
	return out
}

// jErr is a serialisable parse error. ParseErrors round-trip to
// byte-identical Error() output; anything else degrades to its message.
type jErr struct {
	Line  int  `json:"l,omitempty"`
	Text  jstr `json:"x,omitempty"`
	Msg   jstr `json:"m"`
	Plain bool `json:"p,omitempty"`
}

func toJErrs(errs []error) []jErr {
	if len(errs) == 0 {
		return nil
	}
	out := make([]jErr, 0, len(errs))
	for _, e := range errs {
		if pe, ok := e.(*logparse.ParseError); ok {
			out = append(out, jErr{Line: pe.Line, Text: jstr(pe.Text), Msg: jstr(pe.Err.Error())})
		} else {
			out = append(out, jErr{Msg: jstr(e.Error()), Plain: true})
		}
	}
	return out
}

func fromJErrs(js []jErr) []error {
	if len(js) == 0 {
		return nil
	}
	out := make([]error, 0, len(js))
	for _, j := range js {
		if j.Plain {
			out = append(out, errors.New(string(j.Msg)))
			continue
		}
		out = append(out, &logparse.ParseError{Line: j.Line, Text: string(j.Text), Err: errors.New(string(j.Msg))})
	}
	return out
}

// jEntry is the union of every journal entry shape; T discriminates and
// omitempty keeps unused arms out of each payload.
type jEntry struct {
	T string `json:"t"`

	// hdr
	Dir        string `json:"dir,omitempty"`
	Sched      int    `json:"sched,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	ChunkLines int    `json:"chunkLines,omitempty"`
	Attempts   int    `json:"attempts,omitempty"`
	Breaker    int    `json:"breaker,omitempty"`

	// file / miss / skip / chunk / poison / trip share the stream index.
	SI       int    `json:"si,omitempty"`
	File     string `json:"file,omitempty"`
	NonBlank int    `json:"nonBlank,omitempty"`
	Chunks   int    `json:"chunks,omitempty"`
	Size     int64  `json:"size,omitempty"`
	Err      string `json:"err,omitempty"`

	// chunk
	CI   int       `json:"ci,omitempty"`
	Seq  int       `json:"seq,omitempty"`
	Recs []jRecord `json:"recs,omitempty"`
	Errs []jErr    `json:"errs,omitempty"`

	// poison
	Lines  int    `json:"lines,omitempty"`
	Reason string `json:"reason,omitempty"`

	// trip
	Poisoned int `json:"poisoned,omitempty"`
	Dropped  int `json:"dropped,omitempty"`

	// mark
	RecTotal  int   `json:"recTotal,omitempty"`
	ShardLens []int `json:"shardLens,omitempty"`
}

// appendEntry marshals and appends one journal entry.
func appendEntry(log *wal.Log, e jEntry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("logstore: journal encode: %w", err)
	}
	return log.Append(payload)
}

// streamResume is one stream's state reconstructed from the journal.
type streamResume struct {
	// hasFile is true once a file entry was replayed.
	hasFile bool
	missing bool
	skipped *FileWarning

	nonBlank int
	chunks   int
	size     int64

	// doneChunks counts committed chunk slots (chunk + poison entries).
	doneChunks int
	recs       []events.Record
	errs       []error
	poisoned   []PoisonChunk
	trip       *BreakerTrip
}

// complete reports whether the journal finished this stream: nothing
// remains to read or parse for it.
func (sr *streamResume) complete() bool {
	if sr.missing || sr.skipped != nil || sr.trip != nil {
		return true
	}
	return sr.hasFile && sr.doneChunks == sr.chunks
}

// resumeState is the whole journal replayed.
type resumeState struct {
	hdr     jEntry
	hasHdr  bool
	done    bool
	streams []streamResume
}

// errJournalInvalid marks structural journal damage — the resume
// falls back to a fresh load rather than trusting it.
var errJournalInvalid = errors.New("logstore: journal inconsistent")

// replayJournal rebuilds the resume state from the WAL. A structurally
// inconsistent journal (entries out of order, sequence discontinuity)
// returns errJournalInvalid; the caller resets and reloads from
// scratch — the same never-refuse posture the rest of ingestion takes.
func replayJournal(log *wal.Log, nstreams int) (*resumeState, error) {
	rs := &resumeState{streams: make([]streamResume, nstreams)}
	streamName := func(si int) string {
		return fmt.Sprintf("stream %d", si)
	}
	err := log.Replay(func(payload []byte) error {
		var e jEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			return fmt.Errorf("%w: %v", errJournalInvalid, err)
		}
		if e.T != "hdr" && !rs.hasHdr {
			return fmt.Errorf("%w: first entry %q, want hdr", errJournalInvalid, e.T)
		}
		if e.T != "hdr" && e.T != "done" && e.T != "mark" &&
			(e.SI < 0 || e.SI >= nstreams) {
			return fmt.Errorf("%w: stream index %d out of range", errJournalInvalid, e.SI)
		}
		switch e.T {
		case "hdr":
			if rs.hasHdr {
				return fmt.Errorf("%w: duplicate header", errJournalInvalid)
			}
			rs.hdr = e
			rs.hasHdr = true
		case "file":
			// A repeated file entry supersedes: the stream restarted.
			rs.streams[e.SI] = streamResume{
				hasFile:  true,
				nonBlank: e.NonBlank,
				chunks:   e.Chunks,
				size:     e.Size,
			}
		case "miss":
			rs.streams[e.SI] = streamResume{missing: true}
		case "skip":
			rs.streams[e.SI] = streamResume{skipped: &FileWarning{File: e.File, Err: e.Err}}
		case "chunk":
			sr := &rs.streams[e.SI]
			if !sr.hasFile || e.CI != sr.doneChunks || e.Seq != len(sr.recs) {
				return fmt.Errorf("%w: chunk %d/%d out of sequence", errJournalInvalid, e.SI, e.CI)
			}
			sr.recs = append(sr.recs, fromJRecs(e.Recs)...)
			sr.errs = append(sr.errs, fromJErrs(e.Errs)...)
			sr.doneChunks++
		case "poison":
			sr := &rs.streams[e.SI]
			if !sr.hasFile || e.CI != sr.doneChunks {
				return fmt.Errorf("%w: poison %d/%d out of sequence", errJournalInvalid, e.SI, e.CI)
			}
			sr.poisoned = append(sr.poisoned, PoisonChunk{
				Stream: e.File, Chunk: e.CI, Lines: e.Lines,
				Attempts: e.Attempts, Reason: e.Reason,
			})
			sr.doneChunks++
		case "trip":
			sr := &rs.streams[e.SI]
			if !sr.hasFile {
				return fmt.Errorf("%w: trip for %s before file", errJournalInvalid, streamName(e.SI))
			}
			sr.trip = &BreakerTrip{Stream: e.File, Poisoned: e.Poisoned, Dropped: e.Dropped}
		case "mark":
			// Durability marker; nothing to rebuild.
		case "done":
			rs.done = true
		default:
			return fmt.Errorf("%w: unknown entry %q", errJournalInvalid, e.T)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rs, nil
}
