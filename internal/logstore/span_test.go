package logstore

import (
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/topology"
)

// naiveWindow is the pre-span reference: scan everything, filter by
// predicate and time range.
func naiveWindow(recs []events.Record, from, to time.Time, keep func(events.Record) bool) []events.Record {
	var out []events.Record
	for _, r := range recs {
		if !r.Time.Before(from) && r.Time.Before(to) && keep(r) {
			out = append(out, r)
		}
	}
	return out
}

func sameRecords(t *testing.T, label string, got, want []events.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !got[i].Time.Equal(want[i].Time) || got[i].Category != want[i].Category ||
			got[i].Component != want[i].Component || got[i].Msg != want[i].Msg ||
			got[i].JobID != want[i].JobID || got[i].Stream != want[i].Stream {
			t.Fatalf("%s: record %d differs:\n got %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

// TestSpanWindowEquivalence checks every window query against a naive
// full scan over a generated corpus — the span layout must change the
// storage, never the answers.
func TestSpanWindowEquivalence(t *testing.T) {
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 384, CabinetCols: 2, Scheduler: topology.SchedulerSlurm, Cray: true}
	p.Workload.MeanInterarrival = 30 * time.Minute
	scn, err := faultsim.Generate(p, t0, t0.Add(3*24*time.Hour), 17)
	if err != nil {
		t.Fatal(err)
	}
	s := New(scn.Records)
	all := s.All()
	first, last, _ := s.Span()
	windows := []struct{ from, to time.Time }{
		{first, last.Add(time.Second)},
		{first.Add(6 * time.Hour), first.Add(30 * time.Hour)},
		{last, first}, // empty (inverted)
		{first.Add(-time.Hour), first},
	}
	for _, n := range s.Nodes() {
		n := n
		for _, w := range windows {
			got := s.NodeWindow(n, w.from, w.to)
			want := naiveWindow(all, w.from, w.to, func(r events.Record) bool {
				return r.Component == n
			})
			sameRecords(t, "NodeWindow "+n.String(), got, want)
		}
	}
	blades := map[cname.Name]bool{}
	cabs := map[cname.Name]bool{}
	cats := map[string]bool{}
	jobs := map[int64]bool{}
	for _, r := range all {
		if r.Component.IsValid() {
			if b := r.Component.BladeName(); b.IsValid() {
				blades[b] = true
			}
			cabs[r.Component.CabinetName()] = true
		}
		cats[r.Category] = true
		if r.JobID != 0 {
			jobs[r.JobID] = true
		}
	}
	w := windows[1]
	for b := range blades {
		b := b
		got := s.BladeWindow(b, w.from, w.to)
		want := naiveWindow(all, w.from, w.to, func(r events.Record) bool {
			return r.Component.IsValid() && r.Component.BladeName() == b
		})
		sameRecords(t, "BladeWindow "+b.String(), got, want)
	}
	for c := range cabs {
		c := c
		got := s.CabinetWindow(c, w.from, w.to)
		want := naiveWindow(all, w.from, w.to, func(r events.Record) bool {
			return r.Component.IsValid() && r.Component.CabinetName() == c
		})
		sameRecords(t, "CabinetWindow "+c.String(), got, want)
	}
	for cat := range cats {
		cat := cat
		got := s.CategoryWindow(cat, w.from, w.to)
		want := naiveWindow(all, w.from, w.to, func(r events.Record) bool {
			return r.Category == cat
		})
		sameRecords(t, "CategoryWindow "+cat, got, want)
		gotAll := s.Category(cat)
		wantAll := naiveWindow(all, first, last.Add(time.Second), func(r events.Record) bool {
			return r.Category == cat
		})
		sameRecords(t, "Category "+cat, gotAll, wantAll)
	}
	for id := range jobs {
		id := id
		got := s.Job(id)
		want := naiveWindow(all, first, last.Add(time.Second), func(r events.Record) bool {
			return r.JobID == id
		})
		sameRecords(t, "Job", got, want)
	}
}

// TestWindowQueryAllocs locks in the zero-allocation property of the
// span-backed window queries.
func TestWindowQueryAllocs(t *testing.T) {
	s := testStore()
	node := cname.MustParse("c0-0c0s1n2")
	blade := cname.MustParse("c0-0c0s1")
	cab := cname.MustParse("c0-0")
	from, to := t0, t0.Add(time.Hour)
	checks := []struct {
		name string
		fn   func()
	}{
		{"NodeWindow", func() { s.NodeWindow(node, from, to) }},
		{"BladeWindow", func() { s.BladeWindow(blade, from, to) }},
		{"CabinetWindow", func() { s.CabinetWindow(cab, from, to) }},
		{"CategoryWindow", func() { s.CategoryWindow("mce", from, to) }},
		{"Category", func() { s.Category("mce") }},
		{"Job", func() { s.Job(42) }},
		{"Window", func() { s.Window(from, to) }},
	}
	for _, c := range checks {
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per query, want 0", c.name, allocs)
		}
	}
}

// TestSpanCapBoundaries proves a caller appending to a window result
// cannot overwrite the adjacent key's records: spans are carved with
// capacity capped at the span boundary.
func TestSpanCapBoundaries(t *testing.T) {
	s := testStore()
	node := cname.MustParse("c0-0c0s1n2")
	win := s.NodeWindow(node, t0, t0.Add(time.Hour))
	if len(win) != cap(win) {
		t.Fatalf("window result: len %d != cap %d", len(win), cap(win))
	}
	partial := s.CategoryWindow("mce", t0, t0.Add(4*time.Minute))
	if len(partial) != cap(partial) {
		t.Fatalf("partial window: len %d != cap %d", len(partial), cap(partial))
	}
	before := append([]events.Record(nil), s.All()...)
	_ = append(win, events.Record{Category: "intruder"})
	_ = append(partial, events.Record{Category: "intruder"})
	sameRecords(t, "All after append", s.All(), before)
	for _, r := range s.Category("mce") {
		if r.Category != "mce" {
			t.Fatalf("span corrupted: %+v", r)
		}
	}
}
