package logstore

import (
	"hpcfail/internal/cname"
	"hpcfail/internal/events"
)

// Live is the single-writer incremental counterpart of Store: it
// maintains the canonical record order and every secondary-index family
// across record batches, in cost proportional to the batch (plus the
// touched index keys), and stamps out immutable *Store snapshots on
// demand.
//
// The equivalence contract, which the differential harness in the repo
// root enforces byte-for-byte: after Apply(b1) … Apply(bk), Snapshot()
// answers every query identically to New(concat(b1 … bk)). That holds
// because Apply merges each (canonically pre-sorted) batch into the
// existing order with old-record-wins tie breaking — exactly the stable
// order events.SortByTime imposes on the concatenated arrival sequence,
// where earlier arrivals carry smaller indices.
//
// Snapshot safety: previously returned snapshots stay valid while the
// Live keeps mutating. In-order appends reuse the tail capacity of the
// live slices — invisible to snapshots because every snapshot slice is
// capacity-capped at its length — and out-of-order arrivals rebuild the
// affected key's slice copy-on-write, leaving the old array to the old
// snapshots. The maps themselves are cloned per snapshot.
//
// Live itself is not safe for concurrent use; the owner serialises
// Apply/Snapshot (the server holds its engine mutex across both).
type Live struct {
	recs []events.Record

	byNode     map[cname.Name][]events.Record
	byBlade    map[cname.Name][]events.Record
	byCabinet  map[cname.Name][]events.Record
	byCategory map[string][]events.Record
	byJob      map[int64][]events.Record
}

// NewLive returns an empty live store.
func NewLive() *Live {
	return &Live{
		// Non-nil from the start so an empty snapshot's All() equals an
		// empty New()'s (reflect.DeepEqual distinguishes nil).
		recs:       []events.Record{},
		byNode:     make(map[cname.Name][]events.Record),
		byBlade:    make(map[cname.Name][]events.Record),
		byCabinet:  make(map[cname.Name][]events.Record),
		byCategory: make(map[string][]events.Record),
		byJob:      make(map[int64][]events.Record),
	}
}

// recBefore is the canonical (time, stream, component) order — the
// ByTime comparator. Records comparing equal under it are ordered by
// arrival, which merge sites encode as old-before-new.
func recBefore(a, b *events.Record) bool {
	at, bt := a.Time.UnixNano(), b.Time.UnixNano()
	if at != bt {
		return at < bt
	}
	if a.Stream != b.Stream {
		return a.Stream < b.Stream
	}
	return cname.Compare(a.Component, b.Component) < 0
}

// mergeSpan merges a canonically-sorted addition into a canonically-
// sorted span, old records winning ties. When the addition belongs
// entirely after the existing records the span grows in place (tail
// capacity is invisible to capped snapshot views); otherwise the merge
// builds a fresh array so snapshots holding the old one stay intact.
func mergeSpan(old, add []events.Record) []events.Record {
	if len(add) == 0 {
		return old
	}
	if len(old) == 0 {
		cp := make([]events.Record, len(add))
		copy(cp, add)
		return cp
	}
	if !recBefore(&add[0], &old[len(old)-1]) {
		return append(old, add...)
	}
	out := make([]events.Record, 0, len(old)+len(add))
	i, j := 0, 0
	for i < len(old) && j < len(add) {
		if recBefore(&add[j], &old[i]) {
			out = append(out, add[j])
			j++
		} else {
			out = append(out, old[i])
			i++
		}
	}
	out = append(out, old[i:]...)
	return append(out, add[j:]...)
}

// Apply merges one batch into the live corpus. The batch must already
// be in canonical order (events.SortByTime) and represents records that
// arrived after everything applied before it; Apply does not retain the
// slice.
func (l *Live) Apply(batch []events.Record) {
	if len(batch) == 0 {
		return
	}
	l.recs = mergeSpan(l.recs, batch)

	// Group the batch per key (preserving batch order, which is the
	// canonical order restricted to the key) and merge family by family.
	nodeAdds := map[cname.Name][]events.Record{}
	bladeAdds := map[cname.Name][]events.Record{}
	cabAdds := map[cname.Name][]events.Record{}
	catAdds := map[string][]events.Record{}
	jobAdds := map[int64][]events.Record{}
	for i := range batch {
		r := &batch[i]
		if c := r.Component; c.IsValid() {
			if c.Level() == cname.LevelNode {
				nodeAdds[c] = append(nodeAdds[c], *r)
			}
			if b := c.BladeName(); b.IsValid() {
				bladeAdds[b] = append(bladeAdds[b], *r)
			}
			cabAdds[c.CabinetName()] = append(cabAdds[c.CabinetName()], *r)
		}
		catAdds[r.Category] = append(catAdds[r.Category], *r)
		if r.JobID != 0 {
			jobAdds[r.JobID] = append(jobAdds[r.JobID], *r)
		}
	}
	for k, add := range nodeAdds {
		l.byNode[k] = mergeSpan(l.byNode[k], add)
	}
	for k, add := range bladeAdds {
		l.byBlade[k] = mergeSpan(l.byBlade[k], add)
	}
	for k, add := range cabAdds {
		l.byCabinet[k] = mergeSpan(l.byCabinet[k], add)
	}
	for k, add := range catAdds {
		l.byCategory[k] = mergeSpan(l.byCategory[k], add)
	}
	for k, add := range jobAdds {
		l.byJob[k] = mergeSpan(l.byJob[k], add)
	}
}

// Len returns the live record count.
func (l *Live) Len() int { return len(l.recs) }

// cappedClone clones a span map with every span capacity-capped at its
// current length, so later in-place appends to the live spans cannot
// leak into the snapshot.
func cappedClone[K comparable](m map[K][]events.Record) map[K][]events.Record {
	out := make(map[K][]events.Record, len(m))
	for k, v := range m {
		out[k] = v[:len(v):len(v)]
	}
	return out
}

// Snapshot returns an immutable Store over the corpus applied so far.
// Queries against it are indistinguishable from New over the same
// arrival sequence; it stays valid across later Apply calls.
func (l *Live) Snapshot() *Store {
	return &Store{
		recs:       l.recs[:len(l.recs):len(l.recs)],
		byNode:     cappedClone(l.byNode),
		byBlade:    cappedClone(l.byBlade),
		byCabinet:  cappedClone(l.byCabinet),
		byCategory: cappedClone(l.byCategory),
		byJob:      cappedClone(l.byJob),
	}
}
