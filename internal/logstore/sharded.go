package logstore

import (
	"container/heap"
	"runtime"
	"sort"
	"sync"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
)

// ShardedStore partitions a corpus into node-hash shards so ingestion
// can append from a streaming parser and diagnosis can query per-shard
// indexes without any global lock. The shard key is the record's cabinet
// (the hash of its component's cabinet coordinates): the pipeline's
// containment joins — node, blade and cabinet windows — then always
// resolve inside a single shard. Records with no valid component
// (job-global scheduler lines, ALPS placements) share one designated
// shard so per-key state stays co-located.
//
// Life cycle: Append during ingestion (mutating, serialised), then Seal
// exactly once; after Seal every read is lock-free. Seal sorts and
// indexes each shard in parallel and kicks off the merged global view
// in the background, so shard-local reads (and diagnosis over them) can
// begin before the merged index finishes building.
//
// Sequential-equivalence invariant: Append assigns each record a global
// arrival sequence number. Within a shard, records are stable-sorted by
// time (equal times keep arrival order), and the merged view is the
// (time, seq)-lexicographic merge of all shards — exactly the stable
// time sort of the arrival sequence, i.e. byte-identical to
// logstore.New over the same records in the same order.
type ShardedStore struct {
	mu     sync.Mutex
	seq    int64
	sealed bool

	shards []*shardSlot

	// sched and alps collect the scheduler and placement streams in
	// arrival order; Seal time-sorts them so job-table and apid
	// reconstruction see the same sequence the merged store would give.
	sched     []events.Record
	alps      []events.Record
	schedSeqs []int64
	alpsSeqs  []int64

	merged     *Store
	mergedDone chan struct{}
}

type shardSlot struct {
	recs  []events.Record
	seqs  []int64
	store *Store
}

// DefaultShards is the shard count used when an option or constructor
// is given zero.
const DefaultShards = 8

// NewSharded returns an empty sharded store with the given shard count
// (<= 0 selects DefaultShards).
func NewSharded(shards int) *ShardedStore {
	if shards <= 0 {
		shards = DefaultShards
	}
	ss := &ShardedStore{
		shards:     make([]*shardSlot, shards),
		mergedDone: make(chan struct{}),
	}
	for i := range ss.shards {
		ss.shards[i] = &shardSlot{}
	}
	return ss
}

// NewShardedFromRecords shards and seals an in-memory record batch —
// the sharded counterpart of New. The input is not mutated.
func NewShardedFromRecords(recs []events.Record, shards int) *ShardedStore {
	ss := NewSharded(shards)
	ss.Append(recs)
	ss.Seal()
	return ss
}

// shardIndex routes a component to its shard: cabinet-coordinate hash
// for valid names, the zero-cabinet shard for invalid ones.
func (ss *ShardedStore) shardIndex(n cname.Name) int {
	if len(ss.shards) == 1 {
		return 0
	}
	var col, row int
	if n.IsValid() {
		cab := n.CabinetName()
		col, row = cab.Col(), cab.Row()
	}
	// Fibonacci-style mixing keeps neighbouring cabinets off the same
	// shard without a modulo bias worth caring about at these counts.
	h := uint64(col)*0x9E3779B97F4A7C15 + uint64(row)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return int(h % uint64(len(ss.shards)))
}

// Append routes records to their shards, assigning global sequence
// numbers in call order. For sequential equivalence, append records in
// the order the sequential loader reads them (streams in
// loggen.AllStreams order, lines in file order); the streaming loader's
// collector does exactly that. Append must not be called after Seal.
func (ss *ShardedStore) Append(recs []events.Record) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.sealed {
		panic("logstore: Append after Seal")
	}
	for i := range recs {
		r := recs[i]
		seq := ss.seq
		ss.seq++
		sh := ss.shards[ss.shardIndex(r.Component)]
		sh.recs = append(sh.recs, r)
		sh.seqs = append(sh.seqs, seq)
		switch r.Stream {
		case events.StreamScheduler:
			ss.sched = append(ss.sched, r)
			ss.schedSeqs = append(ss.schedSeqs, seq)
		case events.StreamALPS:
			ss.alps = append(ss.alps, r)
			ss.alpsSeqs = append(ss.alpsSeqs, seq)
		}
	}
}

// shardSorter stable-sorts a shard's records by time, carrying the
// sequence numbers along. Arrival order is seq-ascending, so the stable
// sort leaves equal-time runs in (time, seq) lexicographic order.
type shardSorter struct{ sh *shardSlot }

func (s shardSorter) Len() int { return len(s.sh.recs) }
func (s shardSorter) Less(i, j int) bool {
	return s.sh.recs[i].Time.Before(s.sh.recs[j].Time)
}
func (s shardSorter) Swap(i, j int) {
	s.sh.recs[i], s.sh.recs[j] = s.sh.recs[j], s.sh.recs[i]
	s.sh.seqs[i], s.sh.seqs[j] = s.sh.seqs[j], s.sh.seqs[i]
}

type recSorter struct {
	recs []events.Record
	seqs []int64
}

func (s recSorter) Len() int           { return len(s.recs) }
func (s recSorter) Less(i, j int) bool { return s.recs[i].Time.Before(s.recs[j].Time) }
func (s recSorter) Swap(i, j int) {
	s.recs[i], s.recs[j] = s.recs[j], s.recs[i]
	s.seqs[i], s.seqs[j] = s.seqs[j], s.seqs[i]
}

// Seal freezes the store: every shard is stable-sorted and indexed (in
// parallel), the scheduler/ALPS side-channels are time-sorted, and the
// merged global view starts building in the background. After Seal
// returns, all shard-local reads are lock-free; Merged/All block until
// the background merge completes.
func (ss *ShardedStore) Seal() {
	ss.mu.Lock()
	if ss.sealed {
		ss.mu.Unlock()
		return
	}
	ss.sealed = true
	ss.mu.Unlock()

	par := runtime.GOMAXPROCS(0)
	if par > len(ss.shards) {
		par = len(ss.shards)
	}
	var wg sync.WaitGroup
	work := make(chan *shardSlot)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range work {
				sort.Stable(shardSorter{sh})
				sh.store = newFromSorted(sh.recs)
			}
		}()
	}
	for _, sh := range ss.shards {
		work <- sh
	}
	close(work)
	wg.Wait()

	sort.Stable(recSorter{ss.sched, ss.schedSeqs})
	sort.Stable(recSorter{ss.alps, ss.alpsSeqs})

	go func() {
		ss.merged = newFromSorted(ss.mergeAll())
		close(ss.mergedDone)
	}()
}

// mergeHead is one shard's cursor in the k-way merge.
type mergeHead struct {
	shard *shardSlot
	pos   int
}

type mergeHeap []mergeHead

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	ta, tb := a.shard.recs[a.pos].Time, b.shard.recs[b.pos].Time
	if ta.Equal(tb) {
		return a.shard.seqs[a.pos] < b.shard.seqs[b.pos]
	}
	return ta.Before(tb)
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeAll produces the merged record slice in (time, seq) order.
func (ss *ShardedStore) mergeAll() []events.Record {
	total := 0
	for _, sh := range ss.shards {
		total += len(sh.recs)
	}
	out := make([]events.Record, 0, total)
	var h mergeHeap
	for _, sh := range ss.shards {
		if len(sh.recs) > 0 {
			h = append(h, mergeHead{shard: sh})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		head := h[0]
		out = append(out, head.shard.recs[head.pos])
		if head.pos+1 < len(head.shard.recs) {
			h[0].pos++
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// NumShards returns the shard count.
func (ss *ShardedStore) NumShards() int { return len(ss.shards) }

// ShardLens returns the per-shard record counts. Safe to call during
// ingestion (the checkpoint journaller snapshots them for its marks).
func (ss *ShardedStore) ShardLens() []int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]int, len(ss.shards))
	for i, sh := range ss.shards {
		out[i] = len(sh.recs)
	}
	return out
}

// Shard returns shard i's indexed store. Valid only after Seal.
func (ss *ShardedStore) Shard(i int) *Store { return ss.shards[i].store }

// ShardSeq returns shard i's global arrival sequence numbers, aligned
// with Shard(i).All(). (Time, seq) lexicographic order across shards is
// exactly the merged store's record order — the hook the parallel
// detector uses to merge per-shard detections into the sequential
// order.
func (ss *ShardedStore) ShardSeq(i int) []int64 { return ss.shards[i].seqs }

// ShardForNode returns the shard store holding every record of the
// node's cabinet. Valid only after Seal.
func (ss *ShardedStore) ShardForNode(n cname.Name) *Store {
	return ss.shards[ss.shardIndex(n)].store
}

// Len returns the total record count across shards.
func (ss *ShardedStore) Len() int {
	n := 0
	for _, sh := range ss.shards {
		n += len(sh.recs)
	}
	return n
}

// NodeWindow answers the node's containment window from its shard —
// lock-free, no merged view needed.
func (ss *ShardedStore) NodeWindow(node cname.Name, from, to time.Time) []events.Record {
	return ss.ShardForNode(node).NodeWindow(node, from, to)
}

// BladeWindow answers the blade window from the blade's cabinet shard.
func (ss *ShardedStore) BladeWindow(blade cname.Name, from, to time.Time) []events.Record {
	return ss.ShardForNode(blade).BladeWindow(blade, from, to)
}

// CabinetWindow answers the cabinet window from the cabinet's shard.
func (ss *ShardedStore) CabinetWindow(cab cname.Name, from, to time.Time) []events.Record {
	return ss.ShardForNode(cab).CabinetWindow(cab, from, to)
}

// SchedulerRecords returns every scheduler-stream record in merged
// order, without waiting for the merged view.
func (ss *ShardedStore) SchedulerRecords() []events.Record { return ss.sched }

// ALPSRecords returns every ALPS-stream record in merged order, without
// waiting for the merged view.
func (ss *ShardedStore) ALPSRecords() []events.Record { return ss.alps }

// Merged blocks until the background merge finishes and returns the
// global store — identical to logstore.New over the appended records.
func (ss *ShardedStore) Merged() *Store {
	<-ss.mergedDone
	return ss.merged
}

// All returns the merged, time-sorted records (blocking like Merged).
func (ss *ShardedStore) All() []events.Record { return ss.Merged().All() }
