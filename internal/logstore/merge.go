package logstore

import (
	"hpcfail/internal/logparse"
)

// MergeStream folds one more batch's parse ledger into the report —
// the online-ingestion counterpart of the per-file Streams append the
// directory loaders do. Counts accumulate into the existing entry for
// the same stream (quarantine samples and retained errors stay bounded
// by the first maxed entry), and a first-seen stream gains a new entry.
// A stream previously recorded as missing stops being missing: pushed
// batches are how an online corpus grows the families a bootstrap
// directory lacked.
func (r *IngestReport) MergeStream(srep logparse.StreamReport) {
	name := srep.Stream.String()
	for i := range r.Missing {
		if r.Missing[i] == name {
			r.Missing = append(r.Missing[:i], r.Missing[i+1:]...)
			break
		}
	}
	for i := range r.Streams {
		if r.Streams[i].Stream != srep.Stream {
			continue
		}
		dst := &r.Streams[i]
		dst.Lines += srep.Lines
		dst.Parsed += srep.Parsed
		dst.Quarantined += srep.Quarantined
		dst.Reordered += srep.Reordered
		for _, s := range srep.Samples {
			if len(dst.Samples) >= maxMergedSamples {
				break
			}
			dst.Samples = append(dst.Samples, s)
		}
		if len(dst.Errs) < maxMergedErrors {
			n := maxMergedErrors - len(dst.Errs)
			if n > len(srep.Errs) {
				n = len(srep.Errs)
			}
			dst.Errs = append(dst.Errs, srep.Errs[:n]...)
		}
		return
	}
	r.Streams = append(r.Streams, srep)
}

// maxMergedSamples caps quarantine samples per stream across merged
// batches (matches the per-file parse cap).
const maxMergedSamples = 3

// maxMergedErrors bounds retained parse errors per stream for a
// long-running online ingest — the counts keep accumulating, the error
// values do not.
const maxMergedErrors = 64
