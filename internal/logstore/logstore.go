// Package logstore provides the indexed event store the diagnosis
// pipeline queries: time-ordered storage with per-node, per-blade,
// per-cabinet, per-category and per-job indexes, windowed range queries,
// and a loader that ingests a directory of raw log files through the
// parser.
//
// The paper's correlation methodology is window-joins keyed by physical
// containment ("inspect the logs around the failure time" for the failed
// node's blade and cabinet); BladeWindow and CabinetWindow are exactly
// those queries.
package logstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hpcfail/internal/chaos"
	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logparse"
	"hpcfail/internal/topology"
)

// Store is an immutable, time-sorted event collection with secondary
// indexes. Build one with New; the zero value is an empty store.
//
// Each secondary index is a per-key contiguous span: all of a key's
// records laid out adjacently in one slab, time-ascending. Window
// queries binary-search inside the span and return a subslice — zero
// copies, zero allocations per query. Spans are carved with a capped
// capacity so a caller appending to a result cannot scribble into the
// next key's records.
type Store struct {
	recs []events.Record

	byNode     map[cname.Name][]events.Record
	byBlade    map[cname.Name][]events.Record
	byCabinet  map[cname.Name][]events.Record
	byCategory map[string][]events.Record
	byJob      map[int64][]events.Record
}

// New builds a store over the records (copied and sorted by time).
func New(recs []events.Record) *Store {
	cp := make([]events.Record, len(recs))
	copy(cp, recs)
	events.SortByTime(cp)
	return newFromSorted(cp)
}

// NewOwned builds a store over records the caller hands off: the slice
// is adopted and sorted in place rather than copied, so the caller must
// not modify it afterwards. For generator output — already time-sorted
// and immediately discarded — this skips a full-corpus copy; callers
// that keep using their slice should call New instead.
func NewOwned(recs []events.Record) *Store {
	events.SortByTime(recs)
	return newFromSorted(recs)
}

// buildSpans partitions time-sorted records into per-key contiguous
// spans: one slab per index family, every key's records adjacent and
// time-ascending, each span three-index sliced so its capacity ends at
// the span boundary. key reports a record's key for the family
// (ok=false skips the record).
func buildSpans[K comparable](recs []events.Record, key func(*events.Record) (K, bool)) map[K][]events.Record {
	counts := make(map[K]int)
	total := 0
	for i := range recs {
		if k, ok := key(&recs[i]); ok {
			counts[k]++
			total++
		}
	}
	slab := make([]events.Record, total)
	cursors := make(map[K]int, len(counts))
	off := 0
	for k, c := range counts {
		cursors[k] = off
		off += c
	}
	for i := range recs {
		if k, ok := key(&recs[i]); ok {
			j := cursors[k]
			slab[j] = recs[i]
			cursors[k] = j + 1
		}
	}
	spans := make(map[K][]events.Record, len(counts))
	for k, c := range counts {
		end := cursors[k]
		spans[k] = slab[end-c : end : end]
	}
	return spans
}

// spanAcc accumulates one cname-keyed span family using packed
// one-word cname.Key hashes instead of six-field struct hashes.
type spanAcc struct {
	idx   map[uint64]int32
	slots []spanSlot
	total int
}

type spanSlot struct {
	name  cname.Name
	count int
	cur   int
}

// count tallies one occurrence of k. It reports false when k doesn't
// pack (coordinates outside 12 bits — never produced by the simulated
// topologies), signalling the caller to fall back to struct hashing.
func (a *spanAcc) count(k cname.Name) bool {
	pk, ok := k.Key()
	if !ok {
		return false
	}
	si, seen := a.idx[pk]
	if !seen {
		si = int32(len(a.slots))
		a.slots = append(a.slots, spanSlot{name: k})
		a.idx[pk] = si
	}
	a.slots[si].count++
	a.total++
	return true
}

// layout allocates the family slab and assigns per-key offsets.
func (a *spanAcc) layout() []events.Record {
	off := 0
	for i := range a.slots {
		a.slots[i].cur = off
		off += a.slots[i].count
	}
	return make([]events.Record, a.total)
}

// fill places one record into its key's region of the slab.
func (a *spanAcc) fill(slab []events.Record, k cname.Name, r *events.Record) {
	pk, _ := k.Key()
	si := a.idx[pk]
	c := a.slots[si].cur
	slab[c] = *r
	a.slots[si].cur = c + 1
}

// spans carves the filled slab into capped per-key subslices.
func (a *spanAcc) spans(slab []events.Record) map[cname.Name][]events.Record {
	out := make(map[cname.Name][]events.Record, len(a.slots))
	for _, s := range a.slots {
		out[s.name] = slab[s.cur-s.count : s.cur : s.cur]
	}
	return out
}

func nodeKey(r *events.Record) (cname.Name, bool) {
	return r.Component, r.Component.IsValid() && r.Component.Level() == cname.LevelNode
}

func bladeKey(r *events.Record) (cname.Name, bool) {
	if !r.Component.IsValid() {
		return cname.Name{}, false
	}
	b := r.Component.BladeName()
	return b, b.IsValid()
}

func cabinetKey(r *events.Record) (cname.Name, bool) {
	return r.Component.CabinetName(), r.Component.IsValid()
}

// buildComponentSpans builds the node, blade, and cabinet span families
// in one pair of passes: all three keys derive from r.Component, so a
// single traversal computes them together instead of six family scans.
func buildComponentSpans(recs []events.Record) (byNode, byBlade, byCabinet map[cname.Name][]events.Record) {
	nodeAcc := spanAcc{idx: make(map[uint64]int32)}
	bladeAcc := spanAcc{idx: make(map[uint64]int32)}
	cabAcc := spanAcc{idx: make(map[uint64]int32)}
	for i := range recs {
		c := recs[i].Component
		if !c.IsValid() {
			continue
		}
		if c.Level() == cname.LevelNode && !nodeAcc.count(c) {
			return componentSpanFallback(recs)
		}
		if b := c.BladeName(); b.IsValid() && !bladeAcc.count(b) {
			return componentSpanFallback(recs)
		}
		if !cabAcc.count(c.CabinetName()) {
			return componentSpanFallback(recs)
		}
	}
	nodeSlab, bladeSlab, cabSlab := nodeAcc.layout(), bladeAcc.layout(), cabAcc.layout()
	for i := range recs {
		r := &recs[i]
		c := r.Component
		if !c.IsValid() {
			continue
		}
		if c.Level() == cname.LevelNode {
			nodeAcc.fill(nodeSlab, c, r)
		}
		if b := c.BladeName(); b.IsValid() {
			bladeAcc.fill(bladeSlab, b, r)
		}
		cabAcc.fill(cabSlab, c.CabinetName(), r)
	}
	return nodeAcc.spans(nodeSlab), bladeAcc.spans(bladeSlab), cabAcc.spans(cabSlab)
}

// componentSpanFallback is the struct-hashed path for unpackable names.
func componentSpanFallback(recs []events.Record) (byNode, byBlade, byCabinet map[cname.Name][]events.Record) {
	return buildSpans(recs, nodeKey), buildSpans(recs, bladeKey), buildSpans(recs, cabinetKey)
}

// newFromSorted builds the secondary indexes over records that are
// already time-sorted. The slice is adopted, not copied — callers hand
// over ownership (the sharded loader uses this to index each sealed
// shard and the merged view without duplicating the corpus).
func newFromSorted(recs []events.Record) *Store {
	byNode, byBlade, byCabinet := buildComponentSpans(recs)
	return &Store{
		recs:      recs,
		byNode:    byNode,
		byBlade:   byBlade,
		byCabinet: byCabinet,
		byCategory: buildSpans(recs, func(r *events.Record) (string, bool) {
			return r.Category, true
		}),
		byJob: buildSpans(recs, func(r *events.Record) (int64, bool) {
			return r.JobID, r.JobID != 0
		}),
	}
}

// Len returns the record count.
func (s *Store) Len() int { return len(s.recs) }

// All returns the sorted records. Shared slice — callers must not
// modify.
func (s *Store) All() []events.Record { return s.recs }

// At returns record i.
func (s *Store) At(i int) events.Record { return s.recs[i] }

// searchTime returns the index of the first record in the time-sorted
// span with Time >= t. Hand-rolled (rather than sort.Search) so window
// queries are provably allocation-free — no closure, no interface.
func searchTime(span []events.Record, t time.Time) int {
	lo, hi := 0, len(span)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if span[mid].Time.Before(t) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// windowOf narrows a time-sorted span to [from, to). The result is a
// subslice of the span — shared storage, zero allocations; callers must
// not modify it.
func windowOf(span []events.Record, from, to time.Time) []events.Record {
	lo := searchTime(span, from)
	hi := lo + searchTime(span[lo:], to)
	return span[lo:hi:hi]
}

// Window returns all records with Time in [from, to).
func (s *Store) Window(from, to time.Time) []events.Record {
	return windowOf(s.recs, from, to)
}

// NodeWindow returns the node's records in [from, to). Only node-level
// components match; blade/cabinet records do not. The result is a
// shared zero-copy span — callers must not modify it.
func (s *Store) NodeWindow(node cname.Name, from, to time.Time) []events.Record {
	return windowOf(s.byNode[node], from, to)
}

// BladeWindow returns records of the blade and everything on it
// (including its nodes) in [from, to).
func (s *Store) BladeWindow(blade cname.Name, from, to time.Time) []events.Record {
	return windowOf(s.byBlade[blade], from, to)
}

// CabinetWindow returns records of the cabinet and everything in it in
// [from, to).
func (s *Store) CabinetWindow(cab cname.Name, from, to time.Time) []events.Record {
	return windowOf(s.byCabinet[cab], from, to)
}

// Category returns all records with the given category, time-ascending.
func (s *Store) Category(cat string) []events.Record {
	return s.byCategory[cat]
}

// CategoryWindow returns the category's records in [from, to).
func (s *Store) CategoryWindow(cat string, from, to time.Time) []events.Record {
	return windowOf(s.byCategory[cat], from, to)
}

// Job returns all records tagged with the job id.
func (s *Store) Job(id int64) []events.Record {
	return s.byJob[id]
}

// Nodes returns every node that has at least one record, unordered.
func (s *Store) Nodes() []cname.Name {
	out := make([]cname.Name, 0, len(s.byNode))
	for n := range s.byNode {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return cname.Compare(out[i], out[j]) < 0 })
	return out
}

// Span returns the first and last record times; ok is false for an
// empty store.
func (s *Store) Span() (first, last time.Time, ok bool) {
	if len(s.recs) == 0 {
		return first, last, false
	}
	return s.recs[0].Time, s.recs[len(s.recs)-1].Time, true
}

// WriteDir renders records into raw log files under dir, one file per
// stream, using the scheduler dialect.
func WriteDir(dir string, recs []events.Record, sched topology.SchedulerType) error {
	grouped := loggen.RenderAll(recs, sched)
	return writeFiles(dir, grouped)
}

// WriteDirChaos renders records like WriteDir but pushes every stream's
// lines through a chaos injector first — the render-time fault path the
// robustness harness uses to produce damaged corpora. The returned
// report is the injected-corruption ground truth.
func WriteDirChaos(dir string, recs []events.Record, sched topology.SchedulerType, cfg chaos.Config) (chaos.Report, error) {
	grouped := loggen.RenderAll(recs, sched)
	inj := chaos.New(cfg)
	corrupted := inj.CorruptAll(grouped)
	return inj.Report, writeFiles(dir, corrupted)
}

func writeFiles(dir string, files map[string][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	for name, lines := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			return fmt.Errorf("logstore: %w", err)
		}
	}
	return nil
}

// ErrInterrupted is returned (wrapped with no store) when a context
// cancellation stops a streaming load before completion. The partial
// IngestReport accompanies it; if the load was journaling to a WAL, a
// ResumeLoadDir over the same journal picks up where it stopped.
var ErrInterrupted = errors.New("logstore: load interrupted")

// PoisonChunk records one chunk the supervisor gave up on: every parse
// attempt panicked, stalled past the watchdog, or failed, so the chunk's
// lines were quarantined wholesale rather than failing the load.
type PoisonChunk struct {
	// Stream names the stream the chunk belonged to.
	Stream string
	// Chunk is the chunk index within the stream.
	Chunk int
	// Lines is how many lines the chunk held (all lost).
	Lines int
	// Attempts is how many times the supervisor tried it.
	Attempts int
	// Reason is the last attempt's failure (panic value, watchdog).
	Reason string
}

// String renders the poison record for operator output.
func (p PoisonChunk) String() string {
	return fmt.Sprintf("logstore: %s: poisoned chunk %d (%d lines) after %d attempts: %s",
		p.Stream, p.Chunk, p.Lines, p.Attempts, p.Reason)
}

// BreakerTrip records a per-stream circuit breaker opening: too many
// poisoned chunks in one stream, so its remaining chunks were dropped
// and the stream left partial — degraded, not fatal.
type BreakerTrip struct {
	// Stream names the tripped stream.
	Stream string
	// Poisoned is the poisoned-chunk count that opened the breaker.
	Poisoned int
	// Dropped is how many later chunks were discarded unprocessed.
	Dropped int
}

// String renders the trip for operator output.
func (b BreakerTrip) String() string {
	return fmt.Sprintf("logstore: %s: circuit breaker tripped after %d poisoned chunks; dropped %d remaining chunks",
		b.Stream, b.Poisoned, b.Dropped)
}

// FileWarning records one ingestion problem that was survived rather
// than fatal: an unreadable or empty log file skipped from the load.
type FileWarning struct {
	// File is the log file name (relative to the load directory).
	File string
	// Err describes why the file was skipped.
	Err string
}

// String renders the warning for operator output.
func (w FileWarning) String() string {
	return fmt.Sprintf("logstore: skipped %s: %s", w.File, w.Err)
}

// IngestReport accounts a directory load: per-stream parse ledgers,
// files skipped with warnings, and streams that were absent entirely.
// It is the ingestion layer's answer to noisy, incomplete, partially
// missing production logs — quantify the damage, never refuse the load.
type IngestReport struct {
	// Streams holds one parse ledger per file that was read, in
	// loggen.AllStreams order.
	Streams []logparse.StreamReport
	// Skipped lists files that existed but could not be used
	// (unreadable, empty); the load continued without them.
	Skipped []FileWarning
	// Missing names streams whose log file was absent from the
	// directory (a normal condition for systems that lack the stream,
	// but the pipeline's degraded-mode input).
	Missing []string
	// Poisoned lists chunks the streaming supervisor quarantined after
	// exhausting retries (panics, stalls). Empty for sequential loads.
	Poisoned []PoisonChunk
	// Tripped lists streams whose circuit breaker opened mid-load.
	Tripped []BreakerTrip
}

// TotalParsed sums records parsed across streams.
func (r *IngestReport) TotalParsed() int {
	n := 0
	for _, s := range r.Streams {
		n += s.Parsed
	}
	return n
}

// TotalQuarantined sums malformed lines across streams.
func (r *IngestReport) TotalQuarantined() int {
	n := 0
	for _, s := range r.Streams {
		n += s.Quarantined
	}
	return n
}

// TotalReordered sums out-of-order arrivals across streams.
func (r *IngestReport) TotalReordered() int {
	n := 0
	for _, s := range r.Streams {
		n += s.Reordered
	}
	return n
}

// LostChunks is the number of chunks whose lines never made the store:
// poisoned by the supervisor plus dropped by tripped breakers.
func (r *IngestReport) LostChunks() int {
	n := len(r.Poisoned)
	for _, b := range r.Tripped {
		n += b.Dropped
	}
	return n
}

// Degraded reports whether the load was anything less than clean.
func (r *IngestReport) Degraded() bool {
	return len(r.Skipped) > 0 || r.TotalQuarantined() > 0 || r.LostChunks() > 0
}

// ParseErrors flattens every stream's retained errors, for callers of
// the legacy LoadDir shape.
func (r *IngestReport) ParseErrors() []error {
	var out []error
	for _, s := range r.Streams {
		out = append(out, s.Errs...)
	}
	return out
}

// Warnings renders the report as operator-facing warning lines: skipped
// files first, then per-stream quarantine summaries with samples.
func (r *IngestReport) Warnings() []string {
	var out []string
	for _, w := range r.Skipped {
		out = append(out, w.String())
	}
	for _, s := range r.Streams {
		if s.Quarantined == 0 {
			continue
		}
		msg := fmt.Sprintf("logstore: %s: quarantined %d of %d lines (%d parsed, %d reordered)",
			s.Stream, s.Quarantined, s.Lines, s.Parsed, s.Reordered)
		for _, sample := range s.Samples {
			msg += fmt.Sprintf("\n  e.g. %q", sample)
		}
		out = append(out, msg)
	}
	for _, p := range r.Poisoned {
		out = append(out, p.String())
	}
	for _, b := range r.Tripped {
		out = append(out, b.String())
	}
	return out
}

// String renders a one-line ingest summary. Supervisor losses are
// appended only when any occurred, so sequential loads render as before.
func (r *IngestReport) String() string {
	s := fmt.Sprintf("ingest: %d records parsed, %d lines quarantined, %d reordered, %d files skipped, %d streams missing",
		r.TotalParsed(), r.TotalQuarantined(), r.TotalReordered(), len(r.Skipped), len(r.Missing))
	if r.LostChunks() > 0 {
		s += fmt.Sprintf(", %d chunks lost (%d poisoned, %d breakers tripped)",
			r.LostChunks(), len(r.Poisoned), len(r.Tripped))
	}
	return s
}

// LoadDirReport ingests a directory previously produced by WriteDir (or
// by a compatible external tool): each recognised file name is parsed
// with its stream's format. Ingestion never hard-fails on a bad file —
// unreadable or empty files are skipped with a warning in the report,
// malformed lines are quarantined per stream, and the returned store
// holds everything that did parse. The error is reserved for callers
// passing a path that exists but is not a directory.
func LoadDirReport(dir string, sched topology.SchedulerType) (*Store, *IngestReport, error) {
	return LoadDirReportMined(dir, sched, nil)
}

// LoadDirReportMined is LoadDirReport with a mined-profile fallback
// classifier (miner.Matcher): quarantined lines a mined template
// covers come back as synthesised records instead of parse errors.
// Lines the static formats accept parse exactly as they always have —
// the fallback only ever sees the quarantine stream. A nil classifier
// is LoadDirReport exactly.
func LoadDirReportMined(dir string, sched topology.SchedulerType, mc logparse.MinedClassifier) (*Store, *IngestReport, error) {
	if fi, err := os.Stat(dir); err == nil && !fi.IsDir() {
		return nil, nil, fmt.Errorf("logstore: %s is not a directory", dir)
	}
	var recs []events.Record
	rep := &IngestReport{}
	for _, stream := range loggen.AllStreams() {
		name := loggen.FileName(stream)
		data, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			rep.Missing = append(rep.Missing, stream.String())
			continue
		}
		if err != nil {
			rep.Skipped = append(rep.Skipped, FileWarning{File: name, Err: err.Error()})
			continue
		}
		if strings.TrimSpace(string(data)) == "" {
			rep.Skipped = append(rep.Skipped, FileWarning{File: name, Err: "empty file"})
			continue
		}
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		got, srep := logparse.ParseLinesReportMined(stream, sched, lines, mc)
		recs = append(recs, got...)
		rep.Streams = append(rep.Streams, srep)
	}
	return New(recs), rep, nil
}

// LoadDir is the legacy load shape: the store plus a flat parse-error
// list. It survives unreadable and empty files the same way
// LoadDirReport does; callers wanting the per-stream ledger and skip
// warnings should use LoadDirReport.
func LoadDir(dir string, sched topology.SchedulerType) (*Store, []error, error) {
	store, rep, err := LoadDirReport(dir, sched)
	if err != nil {
		return nil, nil, err
	}
	return store, rep.ParseErrors(), nil
}
