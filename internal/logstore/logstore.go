// Package logstore provides the indexed event store the diagnosis
// pipeline queries: time-ordered storage with per-node, per-blade,
// per-cabinet, per-category and per-job indexes, windowed range queries,
// and a loader that ingests a directory of raw log files through the
// parser.
//
// The paper's correlation methodology is window-joins keyed by physical
// containment ("inspect the logs around the failure time" for the failed
// node's blade and cabinet); BladeWindow and CabinetWindow are exactly
// those queries.
package logstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logparse"
	"hpcfail/internal/topology"
)

// Store is an immutable, time-sorted event collection with secondary
// indexes. Build one with New; the zero value is an empty store.
type Store struct {
	recs []events.Record

	byNode     map[cname.Name][]int
	byBlade    map[cname.Name][]int
	byCabinet  map[cname.Name][]int
	byCategory map[string][]int
	byJob      map[int64][]int
}

// New builds a store over the records (copied and sorted by time).
func New(recs []events.Record) *Store {
	s := &Store{
		recs:       make([]events.Record, len(recs)),
		byNode:     make(map[cname.Name][]int),
		byBlade:    make(map[cname.Name][]int),
		byCabinet:  make(map[cname.Name][]int),
		byCategory: make(map[string][]int),
		byJob:      make(map[int64][]int),
	}
	copy(s.recs, recs)
	events.SortByTime(s.recs)
	for i, r := range s.recs {
		if r.Component.IsValid() {
			if r.Component.Level() == cname.LevelNode {
				s.byNode[r.Component] = append(s.byNode[r.Component], i)
			}
			if b := r.Component.BladeName(); b.IsValid() {
				s.byBlade[b] = append(s.byBlade[b], i)
			}
			s.byCabinet[r.Component.CabinetName()] = append(s.byCabinet[r.Component.CabinetName()], i)
		}
		s.byCategory[r.Category] = append(s.byCategory[r.Category], i)
		if r.JobID != 0 {
			s.byJob[r.JobID] = append(s.byJob[r.JobID], i)
		}
	}
	return s
}

// Len returns the record count.
func (s *Store) Len() int { return len(s.recs) }

// All returns the sorted records. Shared slice — callers must not
// modify.
func (s *Store) All() []events.Record { return s.recs }

// At returns record i.
func (s *Store) At(i int) events.Record { return s.recs[i] }

// Window returns all records with Time in [from, to).
func (s *Store) Window(from, to time.Time) []events.Record {
	lo := sort.Search(len(s.recs), func(i int) bool { return !s.recs[i].Time.Before(from) })
	hi := sort.Search(len(s.recs), func(i int) bool { return !s.recs[i].Time.Before(to) })
	return s.recs[lo:hi]
}

// selectWindow filters an index list down to [from, to) by binary
// search (index lists are time-ascending because they were built from
// the sorted slice).
func (s *Store) selectWindow(idx []int, from, to time.Time) []events.Record {
	lo := sort.Search(len(idx), func(i int) bool { return !s.recs[idx[i]].Time.Before(from) })
	hi := sort.Search(len(idx), func(i int) bool { return !s.recs[idx[i]].Time.Before(to) })
	out := make([]events.Record, 0, hi-lo)
	for _, j := range idx[lo:hi] {
		out = append(out, s.recs[j])
	}
	return out
}

// NodeWindow returns the node's records in [from, to). Only node-level
// components match; blade/cabinet records do not.
func (s *Store) NodeWindow(node cname.Name, from, to time.Time) []events.Record {
	return s.selectWindow(s.byNode[node], from, to)
}

// BladeWindow returns records of the blade and everything on it
// (including its nodes) in [from, to).
func (s *Store) BladeWindow(blade cname.Name, from, to time.Time) []events.Record {
	return s.selectWindow(s.byBlade[blade], from, to)
}

// CabinetWindow returns records of the cabinet and everything in it in
// [from, to).
func (s *Store) CabinetWindow(cab cname.Name, from, to time.Time) []events.Record {
	return s.selectWindow(s.byCabinet[cab], from, to)
}

// Category returns all records with the given category, time-ascending.
func (s *Store) Category(cat string) []events.Record {
	idx := s.byCategory[cat]
	out := make([]events.Record, len(idx))
	for i, j := range idx {
		out[i] = s.recs[j]
	}
	return out
}

// CategoryWindow returns the category's records in [from, to).
func (s *Store) CategoryWindow(cat string, from, to time.Time) []events.Record {
	return s.selectWindow(s.byCategory[cat], from, to)
}

// Job returns all records tagged with the job id.
func (s *Store) Job(id int64) []events.Record {
	idx := s.byJob[id]
	out := make([]events.Record, len(idx))
	for i, j := range idx {
		out[i] = s.recs[j]
	}
	return out
}

// Nodes returns every node that has at least one record, unordered.
func (s *Store) Nodes() []cname.Name {
	out := make([]cname.Name, 0, len(s.byNode))
	for n := range s.byNode {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return cname.Compare(out[i], out[j]) < 0 })
	return out
}

// Span returns the first and last record times; ok is false for an
// empty store.
func (s *Store) Span() (first, last time.Time, ok bool) {
	if len(s.recs) == 0 {
		return first, last, false
	}
	return s.recs[0].Time, s.recs[len(s.recs)-1].Time, true
}

// WriteDir renders records into raw log files under dir, one file per
// stream, using the scheduler dialect.
func WriteDir(dir string, recs []events.Record, sched topology.SchedulerType) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	grouped := loggen.RenderAll(recs, sched)
	for name, lines := range grouped {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			return fmt.Errorf("logstore: %w", err)
		}
	}
	return nil
}

// LoadDir ingests a directory previously produced by WriteDir (or by a
// compatible external tool): each recognised file name is parsed with
// its stream's format. Parse errors are returned alongside the store;
// the store contains everything that did parse.
func LoadDir(dir string, sched topology.SchedulerType) (*Store, []error, error) {
	var recs []events.Record
	var parseErrs []error
	for _, stream := range loggen.AllStreams() {
		path := filepath.Join(dir, loggen.FileName(stream))
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, parseErrs, fmt.Errorf("logstore: %w", err)
		}
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		got, errs := logparse.ParseLines(stream, sched, lines)
		recs = append(recs, got...)
		parseErrs = append(parseErrs, errs...)
	}
	return New(recs), parseErrs, nil
}
