// Package logstore provides the indexed event store the diagnosis
// pipeline queries: time-ordered storage with per-node, per-blade,
// per-cabinet, per-category and per-job indexes, windowed range queries,
// and a loader that ingests a directory of raw log files through the
// parser.
//
// The paper's correlation methodology is window-joins keyed by physical
// containment ("inspect the logs around the failure time" for the failed
// node's blade and cabinet); BladeWindow and CabinetWindow are exactly
// those queries.
package logstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hpcfail/internal/chaos"
	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logparse"
	"hpcfail/internal/topology"
)

// Store is an immutable, time-sorted event collection with secondary
// indexes. Build one with New; the zero value is an empty store.
type Store struct {
	recs []events.Record

	byNode     map[cname.Name][]int
	byBlade    map[cname.Name][]int
	byCabinet  map[cname.Name][]int
	byCategory map[string][]int
	byJob      map[int64][]int
}

// New builds a store over the records (copied and sorted by time).
func New(recs []events.Record) *Store {
	cp := make([]events.Record, len(recs))
	copy(cp, recs)
	events.SortByTime(cp)
	return newFromSorted(cp)
}

// newFromSorted builds the secondary indexes over records that are
// already time-sorted. The slice is adopted, not copied — callers hand
// over ownership (the sharded loader uses this to index each sealed
// shard and the merged view without duplicating the corpus).
func newFromSorted(recs []events.Record) *Store {
	s := &Store{
		recs:       recs,
		byNode:     make(map[cname.Name][]int),
		byBlade:    make(map[cname.Name][]int),
		byCabinet:  make(map[cname.Name][]int),
		byCategory: make(map[string][]int),
		byJob:      make(map[int64][]int),
	}
	for i, r := range s.recs {
		if r.Component.IsValid() {
			if r.Component.Level() == cname.LevelNode {
				s.byNode[r.Component] = append(s.byNode[r.Component], i)
			}
			if b := r.Component.BladeName(); b.IsValid() {
				s.byBlade[b] = append(s.byBlade[b], i)
			}
			s.byCabinet[r.Component.CabinetName()] = append(s.byCabinet[r.Component.CabinetName()], i)
		}
		s.byCategory[r.Category] = append(s.byCategory[r.Category], i)
		if r.JobID != 0 {
			s.byJob[r.JobID] = append(s.byJob[r.JobID], i)
		}
	}
	return s
}

// Len returns the record count.
func (s *Store) Len() int { return len(s.recs) }

// All returns the sorted records. Shared slice — callers must not
// modify.
func (s *Store) All() []events.Record { return s.recs }

// At returns record i.
func (s *Store) At(i int) events.Record { return s.recs[i] }

// Window returns all records with Time in [from, to).
func (s *Store) Window(from, to time.Time) []events.Record {
	lo := sort.Search(len(s.recs), func(i int) bool { return !s.recs[i].Time.Before(from) })
	hi := sort.Search(len(s.recs), func(i int) bool { return !s.recs[i].Time.Before(to) })
	return s.recs[lo:hi]
}

// selectWindow filters an index list down to [from, to) by binary
// search (index lists are time-ascending because they were built from
// the sorted slice).
func (s *Store) selectWindow(idx []int, from, to time.Time) []events.Record {
	lo := sort.Search(len(idx), func(i int) bool { return !s.recs[idx[i]].Time.Before(from) })
	hi := sort.Search(len(idx), func(i int) bool { return !s.recs[idx[i]].Time.Before(to) })
	out := make([]events.Record, 0, hi-lo)
	for _, j := range idx[lo:hi] {
		out = append(out, s.recs[j])
	}
	return out
}

// NodeWindow returns the node's records in [from, to). Only node-level
// components match; blade/cabinet records do not.
func (s *Store) NodeWindow(node cname.Name, from, to time.Time) []events.Record {
	return s.selectWindow(s.byNode[node], from, to)
}

// BladeWindow returns records of the blade and everything on it
// (including its nodes) in [from, to).
func (s *Store) BladeWindow(blade cname.Name, from, to time.Time) []events.Record {
	return s.selectWindow(s.byBlade[blade], from, to)
}

// CabinetWindow returns records of the cabinet and everything in it in
// [from, to).
func (s *Store) CabinetWindow(cab cname.Name, from, to time.Time) []events.Record {
	return s.selectWindow(s.byCabinet[cab], from, to)
}

// Category returns all records with the given category, time-ascending.
func (s *Store) Category(cat string) []events.Record {
	idx := s.byCategory[cat]
	out := make([]events.Record, len(idx))
	for i, j := range idx {
		out[i] = s.recs[j]
	}
	return out
}

// CategoryWindow returns the category's records in [from, to).
func (s *Store) CategoryWindow(cat string, from, to time.Time) []events.Record {
	return s.selectWindow(s.byCategory[cat], from, to)
}

// Job returns all records tagged with the job id.
func (s *Store) Job(id int64) []events.Record {
	idx := s.byJob[id]
	out := make([]events.Record, len(idx))
	for i, j := range idx {
		out[i] = s.recs[j]
	}
	return out
}

// Nodes returns every node that has at least one record, unordered.
func (s *Store) Nodes() []cname.Name {
	out := make([]cname.Name, 0, len(s.byNode))
	for n := range s.byNode {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return cname.Compare(out[i], out[j]) < 0 })
	return out
}

// Span returns the first and last record times; ok is false for an
// empty store.
func (s *Store) Span() (first, last time.Time, ok bool) {
	if len(s.recs) == 0 {
		return first, last, false
	}
	return s.recs[0].Time, s.recs[len(s.recs)-1].Time, true
}

// WriteDir renders records into raw log files under dir, one file per
// stream, using the scheduler dialect.
func WriteDir(dir string, recs []events.Record, sched topology.SchedulerType) error {
	grouped := loggen.RenderAll(recs, sched)
	return writeFiles(dir, grouped)
}

// WriteDirChaos renders records like WriteDir but pushes every stream's
// lines through a chaos injector first — the render-time fault path the
// robustness harness uses to produce damaged corpora. The returned
// report is the injected-corruption ground truth.
func WriteDirChaos(dir string, recs []events.Record, sched topology.SchedulerType, cfg chaos.Config) (chaos.Report, error) {
	grouped := loggen.RenderAll(recs, sched)
	inj := chaos.New(cfg)
	corrupted := inj.CorruptAll(grouped)
	return inj.Report, writeFiles(dir, corrupted)
}

func writeFiles(dir string, files map[string][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	for name, lines := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			return fmt.Errorf("logstore: %w", err)
		}
	}
	return nil
}

// ErrInterrupted is returned (wrapped with no store) when a context
// cancellation stops a streaming load before completion. The partial
// IngestReport accompanies it; if the load was journaling to a WAL, a
// ResumeLoadDir over the same journal picks up where it stopped.
var ErrInterrupted = errors.New("logstore: load interrupted")

// PoisonChunk records one chunk the supervisor gave up on: every parse
// attempt panicked, stalled past the watchdog, or failed, so the chunk's
// lines were quarantined wholesale rather than failing the load.
type PoisonChunk struct {
	// Stream names the stream the chunk belonged to.
	Stream string
	// Chunk is the chunk index within the stream.
	Chunk int
	// Lines is how many lines the chunk held (all lost).
	Lines int
	// Attempts is how many times the supervisor tried it.
	Attempts int
	// Reason is the last attempt's failure (panic value, watchdog).
	Reason string
}

// String renders the poison record for operator output.
func (p PoisonChunk) String() string {
	return fmt.Sprintf("logstore: %s: poisoned chunk %d (%d lines) after %d attempts: %s",
		p.Stream, p.Chunk, p.Lines, p.Attempts, p.Reason)
}

// BreakerTrip records a per-stream circuit breaker opening: too many
// poisoned chunks in one stream, so its remaining chunks were dropped
// and the stream left partial — degraded, not fatal.
type BreakerTrip struct {
	// Stream names the tripped stream.
	Stream string
	// Poisoned is the poisoned-chunk count that opened the breaker.
	Poisoned int
	// Dropped is how many later chunks were discarded unprocessed.
	Dropped int
}

// String renders the trip for operator output.
func (b BreakerTrip) String() string {
	return fmt.Sprintf("logstore: %s: circuit breaker tripped after %d poisoned chunks; dropped %d remaining chunks",
		b.Stream, b.Poisoned, b.Dropped)
}

// FileWarning records one ingestion problem that was survived rather
// than fatal: an unreadable or empty log file skipped from the load.
type FileWarning struct {
	// File is the log file name (relative to the load directory).
	File string
	// Err describes why the file was skipped.
	Err string
}

// String renders the warning for operator output.
func (w FileWarning) String() string {
	return fmt.Sprintf("logstore: skipped %s: %s", w.File, w.Err)
}

// IngestReport accounts a directory load: per-stream parse ledgers,
// files skipped with warnings, and streams that were absent entirely.
// It is the ingestion layer's answer to noisy, incomplete, partially
// missing production logs — quantify the damage, never refuse the load.
type IngestReport struct {
	// Streams holds one parse ledger per file that was read, in
	// loggen.AllStreams order.
	Streams []logparse.StreamReport
	// Skipped lists files that existed but could not be used
	// (unreadable, empty); the load continued without them.
	Skipped []FileWarning
	// Missing names streams whose log file was absent from the
	// directory (a normal condition for systems that lack the stream,
	// but the pipeline's degraded-mode input).
	Missing []string
	// Poisoned lists chunks the streaming supervisor quarantined after
	// exhausting retries (panics, stalls). Empty for sequential loads.
	Poisoned []PoisonChunk
	// Tripped lists streams whose circuit breaker opened mid-load.
	Tripped []BreakerTrip
}

// TotalParsed sums records parsed across streams.
func (r *IngestReport) TotalParsed() int {
	n := 0
	for _, s := range r.Streams {
		n += s.Parsed
	}
	return n
}

// TotalQuarantined sums malformed lines across streams.
func (r *IngestReport) TotalQuarantined() int {
	n := 0
	for _, s := range r.Streams {
		n += s.Quarantined
	}
	return n
}

// TotalReordered sums out-of-order arrivals across streams.
func (r *IngestReport) TotalReordered() int {
	n := 0
	for _, s := range r.Streams {
		n += s.Reordered
	}
	return n
}

// LostChunks is the number of chunks whose lines never made the store:
// poisoned by the supervisor plus dropped by tripped breakers.
func (r *IngestReport) LostChunks() int {
	n := len(r.Poisoned)
	for _, b := range r.Tripped {
		n += b.Dropped
	}
	return n
}

// Degraded reports whether the load was anything less than clean.
func (r *IngestReport) Degraded() bool {
	return len(r.Skipped) > 0 || r.TotalQuarantined() > 0 || r.LostChunks() > 0
}

// ParseErrors flattens every stream's retained errors, for callers of
// the legacy LoadDir shape.
func (r *IngestReport) ParseErrors() []error {
	var out []error
	for _, s := range r.Streams {
		out = append(out, s.Errs...)
	}
	return out
}

// Warnings renders the report as operator-facing warning lines: skipped
// files first, then per-stream quarantine summaries with samples.
func (r *IngestReport) Warnings() []string {
	var out []string
	for _, w := range r.Skipped {
		out = append(out, w.String())
	}
	for _, s := range r.Streams {
		if s.Quarantined == 0 {
			continue
		}
		msg := fmt.Sprintf("logstore: %s: quarantined %d of %d lines (%d parsed, %d reordered)",
			s.Stream, s.Quarantined, s.Lines, s.Parsed, s.Reordered)
		for _, sample := range s.Samples {
			msg += fmt.Sprintf("\n  e.g. %q", sample)
		}
		out = append(out, msg)
	}
	for _, p := range r.Poisoned {
		out = append(out, p.String())
	}
	for _, b := range r.Tripped {
		out = append(out, b.String())
	}
	return out
}

// String renders a one-line ingest summary. Supervisor losses are
// appended only when any occurred, so sequential loads render as before.
func (r *IngestReport) String() string {
	s := fmt.Sprintf("ingest: %d records parsed, %d lines quarantined, %d reordered, %d files skipped, %d streams missing",
		r.TotalParsed(), r.TotalQuarantined(), r.TotalReordered(), len(r.Skipped), len(r.Missing))
	if r.LostChunks() > 0 {
		s += fmt.Sprintf(", %d chunks lost (%d poisoned, %d breakers tripped)",
			r.LostChunks(), len(r.Poisoned), len(r.Tripped))
	}
	return s
}

// LoadDirReport ingests a directory previously produced by WriteDir (or
// by a compatible external tool): each recognised file name is parsed
// with its stream's format. Ingestion never hard-fails on a bad file —
// unreadable or empty files are skipped with a warning in the report,
// malformed lines are quarantined per stream, and the returned store
// holds everything that did parse. The error is reserved for callers
// passing a path that exists but is not a directory.
func LoadDirReport(dir string, sched topology.SchedulerType) (*Store, *IngestReport, error) {
	if fi, err := os.Stat(dir); err == nil && !fi.IsDir() {
		return nil, nil, fmt.Errorf("logstore: %s is not a directory", dir)
	}
	var recs []events.Record
	rep := &IngestReport{}
	for _, stream := range loggen.AllStreams() {
		name := loggen.FileName(stream)
		data, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			rep.Missing = append(rep.Missing, stream.String())
			continue
		}
		if err != nil {
			rep.Skipped = append(rep.Skipped, FileWarning{File: name, Err: err.Error()})
			continue
		}
		if strings.TrimSpace(string(data)) == "" {
			rep.Skipped = append(rep.Skipped, FileWarning{File: name, Err: "empty file"})
			continue
		}
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		got, srep := logparse.ParseLinesReport(stream, sched, lines)
		recs = append(recs, got...)
		rep.Streams = append(rep.Streams, srep)
	}
	return New(recs), rep, nil
}

// LoadDir is the legacy load shape: the store plus a flat parse-error
// list. It survives unreadable and empty files the same way
// LoadDirReport does; callers wanting the per-stream ledger and skip
// warnings should use LoadDirReport.
func LoadDir(dir string, sched topology.SchedulerType) (*Store, []error, error) {
	store, rep, err := LoadDirReport(dir, sched)
	if err != nil {
		return nil, nil, err
	}
	return store, rep.ParseErrors(), nil
}
