package logstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/logparse"
	"hpcfail/internal/topology"
)

var t0 = time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)

func rec(offset time.Duration, comp string, cat string) events.Record {
	var c cname.Name
	if comp != "" {
		c = cname.MustParse(comp)
	}
	return events.Record{Time: t0.Add(offset), Stream: events.StreamConsole, Component: c, Category: cat, Msg: cat}
}

func testStore() *Store {
	return New([]events.Record{
		rec(3*time.Minute, "c0-0c0s1n2", "mce"),
		rec(1*time.Minute, "c0-0c0s1n0", "kernel_panic"),
		rec(2*time.Minute, "c0-0c0s1", "ec_bc_heartbeat_fault"), // blade-level
		rec(4*time.Minute, "c0-0", "cabinet_power_fault"),       // cabinet-level
		rec(5*time.Minute, "c1-0c2s7n3", "mce"),
		{Time: t0.Add(6 * time.Minute), Stream: events.StreamScheduler, Category: "job_start", JobID: 42},
	})
}

func TestSortedAndLen(t *testing.T) {
	s := testStore()
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
	prev := time.Time{}
	for _, r := range s.All() {
		if r.Time.Before(prev) {
			t.Fatal("not sorted")
		}
		prev = r.Time
	}
	if s.At(0).Category != "kernel_panic" {
		t.Errorf("At(0) = %+v", s.At(0))
	}
}

func TestWindow(t *testing.T) {
	s := testStore()
	got := s.Window(t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if len(got) != 3 {
		t.Fatalf("Window returned %d records", len(got))
	}
	for _, r := range got {
		if r.Time.Before(t0.Add(2*time.Minute)) || !r.Time.Before(t0.Add(5*time.Minute)) {
			t.Errorf("out of window: %v", r.Time)
		}
	}
	if len(s.Window(t0.Add(time.Hour), t0.Add(2*time.Hour))) != 0 {
		t.Error("empty window should be empty")
	}
}

func TestNodeWindow(t *testing.T) {
	s := testStore()
	node := cname.MustParse("c0-0c0s1n2")
	got := s.NodeWindow(node, t0, t0.Add(time.Hour))
	if len(got) != 1 || got[0].Category != "mce" {
		t.Fatalf("NodeWindow = %v", got)
	}
	// Blade-level record must NOT appear under a node query.
	if len(s.NodeWindow(cname.MustParse("c0-0c0s1n1"), t0, t0.Add(time.Hour))) != 0 {
		t.Error("node query leaked other records")
	}
}

func TestBladeWindowIncludesNodesAndBlade(t *testing.T) {
	s := testStore()
	blade := cname.MustParse("c0-0c0s1")
	got := s.BladeWindow(blade, t0, t0.Add(time.Hour))
	// Two node records on the blade + the blade-level BCHF.
	if len(got) != 3 {
		t.Fatalf("BladeWindow = %d records: %v", len(got), got)
	}
}

func TestCabinetWindow(t *testing.T) {
	s := testStore()
	cab := cname.MustParse("c0-0")
	got := s.CabinetWindow(cab, t0, t0.Add(time.Hour))
	// Everything in cabinet c0-0: 2 node records + blade record +
	// cabinet record = 4.
	if len(got) != 4 {
		t.Fatalf("CabinetWindow = %d records", len(got))
	}
}

func TestCategoryQueries(t *testing.T) {
	s := testStore()
	if got := s.Category("mce"); len(got) != 2 {
		t.Fatalf("Category(mce) = %d", len(got))
	}
	if got := s.CategoryWindow("mce", t0, t0.Add(4*time.Minute)); len(got) != 1 {
		t.Fatalf("CategoryWindow = %d", len(got))
	}
	if len(s.Category("nope")) != 0 {
		t.Error("unknown category should be empty")
	}
}

func TestJobIndex(t *testing.T) {
	s := testStore()
	if got := s.Job(42); len(got) != 1 || got[0].Category != "job_start" {
		t.Fatalf("Job(42) = %v", got)
	}
	if len(s.Job(7)) != 0 {
		t.Error("unknown job should be empty")
	}
}

func TestNodesAndSpan(t *testing.T) {
	s := testStore()
	nodes := s.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("Nodes = %v", nodes)
	}
	first, last, ok := s.Span()
	if !ok || !first.Equal(t0.Add(time.Minute)) || !last.Equal(t0.Add(6*time.Minute)) {
		t.Errorf("Span = %v %v %v", first, last, ok)
	}
	var empty Store
	if _, _, ok := empty.Span(); ok {
		t.Error("empty store span should report !ok")
	}
}

func TestWriteLoadDirRoundTrip(t *testing.T) {
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 192, CabinetCols: 2, Scheduler: topology.SchedulerSlurm, Cray: true}
	p.Workload.MeanInterarrival = time.Hour
	scn, err := faultsim.Generate(p, t0, t0.Add(24*time.Hour), 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "logs")
	if err := WriteDir(dir, scn.Records, topology.SchedulerSlurm); err != nil {
		t.Fatal(err)
	}
	store, parseErrs, err := LoadDir(dir, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	if len(parseErrs) != 0 {
		t.Fatalf("parse errors: %v", parseErrs[:min(3, len(parseErrs))])
	}
	if store.Len() != len(scn.Records) {
		t.Fatalf("loaded %d of %d records", store.Len(), len(scn.Records))
	}
	// Spot-check a category survives the disk round trip.
	if len(store.Category("ec_node_heartbeat_fault")) == 0 && len(scn.NHFs) > 0 {
		t.Error("NHF records lost on disk round trip")
	}
}

func TestLoadDirMissing(t *testing.T) {
	store, errs, err := LoadDir(filepath.Join(t.TempDir(), "empty"), topology.SchedulerSlurm)
	if err != nil || len(errs) != 0 {
		t.Fatalf("LoadDir on missing dir: %v %v", errs, err)
	}
	if store.Len() != 0 {
		t.Error("missing dir should load empty store")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// writeScenarioDir renders a small scenario to disk for ingest tests.
func writeScenarioDir(t *testing.T) (string, int) {
	t.Helper()
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 192, CabinetCols: 2, Scheduler: topology.SchedulerSlurm, Cray: true}
	p.Workload.MeanInterarrival = time.Hour
	scn, err := faultsim.Generate(p, t0, t0.Add(24*time.Hour), 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "logs")
	if err := WriteDir(dir, scn.Records, topology.SchedulerSlurm); err != nil {
		t.Fatal(err)
	}
	return dir, len(scn.Records)
}

func TestLoadDirReportClean(t *testing.T) {
	dir, want := writeScenarioDir(t)
	store, rep, err := LoadDirReport(dir, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != want || rep.TotalParsed() != want {
		t.Fatalf("parsed %d (report %d), want %d", store.Len(), rep.TotalParsed(), want)
	}
	if rep.Degraded() || rep.TotalQuarantined() != 0 || len(rep.Skipped) != 0 {
		t.Fatalf("clean load reported degradation: %s", rep)
	}
	if rep.TotalReordered() != 0 {
		t.Errorf("clean load reported %d reordered", rep.TotalReordered())
	}
}

func TestLoadDirReportSkipsEmptyAndUnreadable(t *testing.T) {
	dir, _ := writeScenarioDir(t)
	// Empty out one file and make another unreadable.
	if err := os.WriteFile(filepath.Join(dir, "erd.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(filepath.Join(dir, "console.log"), 0o000); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chmod(filepath.Join(dir, "console.log"), 0o644) })
	store, rep, err := LoadDirReport(dir, topology.SchedulerSlurm)
	if err != nil {
		t.Fatalf("load must survive bad files: %v", err)
	}
	if os.Getuid() == 0 {
		// Root reads through file modes; only the empty-file skip fires.
		if len(rep.Skipped) < 1 {
			t.Fatalf("skipped = %+v, want at least the empty file", rep.Skipped)
		}
	} else if len(rep.Skipped) != 2 {
		t.Fatalf("skipped = %+v, want empty + unreadable", rep.Skipped)
	}
	if store.Len() == 0 {
		t.Error("partial store should retain the readable streams")
	}
	if !rep.Degraded() {
		t.Error("skips must mark the load degraded")
	}
	if len(rep.Warnings()) == 0 {
		t.Error("warnings should surface skipped files")
	}
}

func TestLoadDirReportQuarantinesMalformedLines(t *testing.T) {
	dir, _ := writeScenarioDir(t)
	path := filepath.Join(dir, "messages.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := "not a log line at all\n@@@###\n" + string(data)
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	store, rep, err := LoadDirReport(dir, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalQuarantined() != 2 {
		t.Fatalf("quarantined %d, want 2", rep.TotalQuarantined())
	}
	var msgs *logparse.StreamReport
	for i := range rep.Streams {
		if rep.Streams[i].Stream == events.StreamMessages {
			msgs = &rep.Streams[i]
		}
	}
	if msgs == nil || msgs.Quarantined != 2 || len(msgs.Samples) != 2 {
		t.Fatalf("messages stream report = %+v", msgs)
	}
	if store.Len() == 0 {
		t.Error("quarantine must not drop the parseable remainder")
	}
	if errs := rep.ParseErrors(); len(errs) != 2 {
		t.Errorf("ParseErrors = %d, want 2", len(errs))
	}
}

func TestLoadDirReportCountsReordered(t *testing.T) {
	recs := []events.Record{
		rec(1*time.Minute, "c0-0c0s1n0", "mce"),
		rec(2*time.Minute, "c0-0c0s1n0", "mce"),
		rec(3*time.Minute, "c0-0c0s1n0", "mce"),
	}
	dir := filepath.Join(t.TempDir(), "logs")
	if err := WriteDir(dir, recs, topology.SchedulerSlurm); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "console.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	lines[0], lines[2] = lines[2], lines[0]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, rep, err := LoadDirReport(dir, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalReordered() == 0 {
		t.Error("swapped lines should count as reordered")
	}
	// The store still sorts them.
	if store.At(0).Time.After(store.At(1).Time) {
		t.Error("store must re-sort out-of-order input")
	}
}

func TestLoadDirReportNotADirectory(t *testing.T) {
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadDirReport(f, topology.SchedulerSlurm); err == nil {
		t.Error("loading a plain file as a directory should error")
	}
}

// TestWindowQueriesMatchLinearScan checks the indexed queries against a
// brute-force filter over a realistic scenario.
func TestWindowQueriesMatchLinearScan(t *testing.T) {
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 384, CabinetCols: 2,
		Scheduler: topology.SchedulerSlurm, Fabric: topology.AriesDragonfly, Cray: true}
	p.Workload.MeanInterarrival = time.Hour
	scn, err := faultsim.Generate(p, t0, t0.Add(2*24*time.Hour), 17)
	if err != nil {
		t.Fatal(err)
	}
	s := New(scn.Records)
	from, to := t0.Add(6*time.Hour), t0.Add(30*time.Hour)

	linear := func(keep func(r *events.Record) bool) int {
		n := 0
		for i := range scn.Records {
			r := &scn.Records[i]
			if !r.Time.Before(from) && r.Time.Before(to) && keep(r) {
				n++
			}
		}
		return n
	}

	if got, want := len(s.Window(from, to)), linear(func(*events.Record) bool { return true }); got != want {
		t.Errorf("Window = %d, linear = %d", got, want)
	}
	node := scn.Cluster.Node(7)
	if got, want := len(s.NodeWindow(node, from, to)),
		linear(func(r *events.Record) bool { return r.Component == node }); got != want {
		t.Errorf("NodeWindow = %d, linear = %d", got, want)
	}
	blade := node.BladeName()
	if got, want := len(s.BladeWindow(blade, from, to)),
		linear(func(r *events.Record) bool { return blade.Contains(r.Component) }); got != want {
		t.Errorf("BladeWindow = %d, linear = %d", got, want)
	}
	cab := node.CabinetName()
	if got, want := len(s.CabinetWindow(cab, from, to)),
		linear(func(r *events.Record) bool { return cab.Contains(r.Component) }); got != want {
		t.Errorf("CabinetWindow = %d, linear = %d", got, want)
	}
	if got, want := len(s.CategoryWindow("mce", from, to)),
		linear(func(r *events.Record) bool { return r.Category == "mce" }); got != want {
		t.Errorf("CategoryWindow = %d, linear = %d", got, want)
	}
}
