package logstore

import (
	"path/filepath"
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/topology"
)

var t0 = time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)

func rec(offset time.Duration, comp string, cat string) events.Record {
	var c cname.Name
	if comp != "" {
		c = cname.MustParse(comp)
	}
	return events.Record{Time: t0.Add(offset), Stream: events.StreamConsole, Component: c, Category: cat, Msg: cat}
}

func testStore() *Store {
	return New([]events.Record{
		rec(3*time.Minute, "c0-0c0s1n2", "mce"),
		rec(1*time.Minute, "c0-0c0s1n0", "kernel_panic"),
		rec(2*time.Minute, "c0-0c0s1", "ec_bc_heartbeat_fault"), // blade-level
		rec(4*time.Minute, "c0-0", "cabinet_power_fault"),       // cabinet-level
		rec(5*time.Minute, "c1-0c2s7n3", "mce"),
		{Time: t0.Add(6 * time.Minute), Stream: events.StreamScheduler, Category: "job_start", JobID: 42},
	})
}

func TestSortedAndLen(t *testing.T) {
	s := testStore()
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
	prev := time.Time{}
	for _, r := range s.All() {
		if r.Time.Before(prev) {
			t.Fatal("not sorted")
		}
		prev = r.Time
	}
	if s.At(0).Category != "kernel_panic" {
		t.Errorf("At(0) = %+v", s.At(0))
	}
}

func TestWindow(t *testing.T) {
	s := testStore()
	got := s.Window(t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if len(got) != 3 {
		t.Fatalf("Window returned %d records", len(got))
	}
	for _, r := range got {
		if r.Time.Before(t0.Add(2*time.Minute)) || !r.Time.Before(t0.Add(5*time.Minute)) {
			t.Errorf("out of window: %v", r.Time)
		}
	}
	if len(s.Window(t0.Add(time.Hour), t0.Add(2*time.Hour))) != 0 {
		t.Error("empty window should be empty")
	}
}

func TestNodeWindow(t *testing.T) {
	s := testStore()
	node := cname.MustParse("c0-0c0s1n2")
	got := s.NodeWindow(node, t0, t0.Add(time.Hour))
	if len(got) != 1 || got[0].Category != "mce" {
		t.Fatalf("NodeWindow = %v", got)
	}
	// Blade-level record must NOT appear under a node query.
	if len(s.NodeWindow(cname.MustParse("c0-0c0s1n1"), t0, t0.Add(time.Hour))) != 0 {
		t.Error("node query leaked other records")
	}
}

func TestBladeWindowIncludesNodesAndBlade(t *testing.T) {
	s := testStore()
	blade := cname.MustParse("c0-0c0s1")
	got := s.BladeWindow(blade, t0, t0.Add(time.Hour))
	// Two node records on the blade + the blade-level BCHF.
	if len(got) != 3 {
		t.Fatalf("BladeWindow = %d records: %v", len(got), got)
	}
}

func TestCabinetWindow(t *testing.T) {
	s := testStore()
	cab := cname.MustParse("c0-0")
	got := s.CabinetWindow(cab, t0, t0.Add(time.Hour))
	// Everything in cabinet c0-0: 2 node records + blade record +
	// cabinet record = 4.
	if len(got) != 4 {
		t.Fatalf("CabinetWindow = %d records", len(got))
	}
}

func TestCategoryQueries(t *testing.T) {
	s := testStore()
	if got := s.Category("mce"); len(got) != 2 {
		t.Fatalf("Category(mce) = %d", len(got))
	}
	if got := s.CategoryWindow("mce", t0, t0.Add(4*time.Minute)); len(got) != 1 {
		t.Fatalf("CategoryWindow = %d", len(got))
	}
	if len(s.Category("nope")) != 0 {
		t.Error("unknown category should be empty")
	}
}

func TestJobIndex(t *testing.T) {
	s := testStore()
	if got := s.Job(42); len(got) != 1 || got[0].Category != "job_start" {
		t.Fatalf("Job(42) = %v", got)
	}
	if len(s.Job(7)) != 0 {
		t.Error("unknown job should be empty")
	}
}

func TestNodesAndSpan(t *testing.T) {
	s := testStore()
	nodes := s.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("Nodes = %v", nodes)
	}
	first, last, ok := s.Span()
	if !ok || !first.Equal(t0.Add(time.Minute)) || !last.Equal(t0.Add(6*time.Minute)) {
		t.Errorf("Span = %v %v %v", first, last, ok)
	}
	var empty Store
	if _, _, ok := empty.Span(); ok {
		t.Error("empty store span should report !ok")
	}
}

func TestWriteLoadDirRoundTrip(t *testing.T) {
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 192, CabinetCols: 2, Scheduler: topology.SchedulerSlurm, Cray: true}
	p.Workload.MeanInterarrival = time.Hour
	scn, err := faultsim.Generate(p, t0, t0.Add(24*time.Hour), 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "logs")
	if err := WriteDir(dir, scn.Records, topology.SchedulerSlurm); err != nil {
		t.Fatal(err)
	}
	store, parseErrs, err := LoadDir(dir, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	if len(parseErrs) != 0 {
		t.Fatalf("parse errors: %v", parseErrs[:min(3, len(parseErrs))])
	}
	if store.Len() != len(scn.Records) {
		t.Fatalf("loaded %d of %d records", store.Len(), len(scn.Records))
	}
	// Spot-check a category survives the disk round trip.
	if len(store.Category("ec_node_heartbeat_fault")) == 0 && len(scn.NHFs) > 0 {
		t.Error("NHF records lost on disk round trip")
	}
}

func TestLoadDirMissing(t *testing.T) {
	store, errs, err := LoadDir(filepath.Join(t.TempDir(), "empty"), topology.SchedulerSlurm)
	if err != nil || len(errs) != 0 {
		t.Fatalf("LoadDir on missing dir: %v %v", errs, err)
	}
	if store.Len() != 0 {
		t.Error("missing dir should load empty store")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestWindowQueriesMatchLinearScan checks the indexed queries against a
// brute-force filter over a realistic scenario.
func TestWindowQueriesMatchLinearScan(t *testing.T) {
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 384, CabinetCols: 2,
		Scheduler: topology.SchedulerSlurm, Fabric: topology.AriesDragonfly, Cray: true}
	p.Workload.MeanInterarrival = time.Hour
	scn, err := faultsim.Generate(p, t0, t0.Add(2*24*time.Hour), 17)
	if err != nil {
		t.Fatal(err)
	}
	s := New(scn.Records)
	from, to := t0.Add(6*time.Hour), t0.Add(30*time.Hour)

	linear := func(keep func(r *events.Record) bool) int {
		n := 0
		for i := range scn.Records {
			r := &scn.Records[i]
			if !r.Time.Before(from) && r.Time.Before(to) && keep(r) {
				n++
			}
		}
		return n
	}

	if got, want := len(s.Window(from, to)), linear(func(*events.Record) bool { return true }); got != want {
		t.Errorf("Window = %d, linear = %d", got, want)
	}
	node := scn.Cluster.Node(7)
	if got, want := len(s.NodeWindow(node, from, to)),
		linear(func(r *events.Record) bool { return r.Component == node }); got != want {
		t.Errorf("NodeWindow = %d, linear = %d", got, want)
	}
	blade := node.BladeName()
	if got, want := len(s.BladeWindow(blade, from, to)),
		linear(func(r *events.Record) bool { return blade.Contains(r.Component) }); got != want {
		t.Errorf("BladeWindow = %d, linear = %d", got, want)
	}
	cab := node.CabinetName()
	if got, want := len(s.CabinetWindow(cab, from, to)),
		linear(func(r *events.Record) bool { return cab.Contains(r.Component) }); got != want {
		t.Errorf("CabinetWindow = %d, linear = %d", got, want)
	}
	if got, want := len(s.CategoryWindow("mce", from, to)),
		linear(func(r *events.Record) bool { return r.Category == "mce" }); got != want {
		t.Errorf("CategoryWindow = %d, linear = %d", got, want)
	}
}
