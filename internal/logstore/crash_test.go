package logstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hpcfail/internal/chaos"
	"hpcfail/internal/topology"
	"hpcfail/internal/wal"
)

func testJournal(t *testing.T) *wal.Log {
	t.Helper()
	log, err := wal.Open(filepath.Join(t.TempDir(), "wal"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	return log
}

// crashCorpus writes the shared scenario with mild data chaos so the
// journal has to round-trip quarantined parse errors too.
func crashCorpus(t *testing.T) string {
	t.Helper()
	scn := shardScenario(t)
	dir := filepath.Join(t.TempDir(), "logs")
	ccfg := chaos.Config{Garble: 0.05, Truncate: 0.03, Seed: 21}
	if _, err := WriteDirChaos(dir, scn.Records, topology.SchedulerSlurm, ccfg); err != nil {
		t.Fatal(err)
	}
	return dir
}

// supervisorEqual extends reportsEqual to the supervisor's ledger.
func supervisorEqual(t *testing.T, got, want *IngestReport) {
	t.Helper()
	reportsEqual(t, got, want)
	if !reflect.DeepEqual(got.Poisoned, want.Poisoned) {
		t.Fatalf("Poisoned diverges:\n got %v\nwant %v", got.Poisoned, want.Poisoned)
	}
	if !reflect.DeepEqual(got.Tripped, want.Tripped) {
		t.Fatalf("Tripped diverges:\n got %v\nwant %v", got.Tripped, want.Tripped)
	}
}

// TestInterruptAndResumeMatchesUninterrupted kills the load at several
// points of collector progress and resumes; the resumed result must be
// record-for-record identical to an uninterrupted run.
func TestInterruptAndResumeMatchesUninterrupted(t *testing.T) {
	dir := crashCorpus(t)
	base := StreamOptions{Workers: 3, Shards: 4, ChunkLines: 100, CheckpointEvery: 3}
	want, wantRep, err := StreamLoadDir(dir, topology.SchedulerSlurm, base)
	if err != nil {
		t.Fatal(err)
	}
	// The corpus yields ~22 chunk slots at ChunkLines=100: kill points
	// cover first-chunk, early, mid-stream and tail.
	for _, kill := range []int{0, 1, 7, 19} {
		log := testJournal(t)
		ctx, cancel := context.WithCancel(context.Background())
		opts := base
		opts.Journal = log
		seen := 0
		opts.OnChunk = func(string, int) {
			if seen == kill {
				cancel()
			}
			seen++
		}
		ss, rep, err := StreamLoadDirContext(ctx, dir, topology.SchedulerSlurm, opts)
		cancel()
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("kill@%d: err = %v, want ErrInterrupted", kill, err)
		}
		if ss != nil {
			t.Fatalf("kill@%d: interrupted load returned a store", kill)
		}
		if rep == nil {
			t.Fatalf("kill@%d: interrupted load returned no partial report", kill)
		}
		opts.OnChunk = nil
		ss, rep, err = ResumeLoadDir(context.Background(), dir, topology.SchedulerSlurm, opts)
		if err != nil {
			t.Fatalf("kill@%d: resume: %v", kill, err)
		}
		if !reflect.DeepEqual(ss.All(), want.All()) {
			t.Fatalf("kill@%d: resumed store diverges (%d vs %d records)", kill, ss.Len(), want.Len())
		}
		supervisorEqual(t, rep, wantRep)
	}
}

// TestDoubleKillResume kills the load, resumes, kills the resume, and
// resumes again — the journal must absorb a crash of the recovery
// itself.
func TestDoubleKillResume(t *testing.T) {
	dir := crashCorpus(t)
	base := StreamOptions{Workers: 2, Shards: 3, ChunkLines: 100, CheckpointEvery: 2}
	want, wantRep, err := StreamLoadDir(dir, topology.SchedulerSlurm, base)
	if err != nil {
		t.Fatal(err)
	}
	log := testJournal(t)
	opts := base
	opts.Journal = log
	killAt := func(n int) (func(string, int), context.Context, context.CancelFunc) {
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		return func(string, int) {
			if seen == n {
				cancel()
			}
			seen++
		}, ctx, cancel
	}
	hook, ctx, cancel := killAt(4)
	opts.OnChunk = hook
	if _, _, err := StreamLoadDirContext(ctx, dir, topology.SchedulerSlurm, opts); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("first kill: %v", err)
	}
	cancel()
	// The resume only re-collects the remaining slots, so the second
	// kill point counts from the resume's own progress.
	hook, ctx, cancel = killAt(3)
	opts.OnChunk = hook
	if _, _, err := ResumeLoadDir(ctx, dir, topology.SchedulerSlurm, opts); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("second kill: %v", err)
	}
	cancel()
	opts.OnChunk = nil
	ss, rep, err := ResumeLoadDir(context.Background(), dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss.All(), want.All()) {
		t.Fatalf("double-kill resume diverges (%d vs %d records)", ss.Len(), want.Len())
	}
	supervisorEqual(t, rep, wantRep)
}

// TestResumeFromDoneJournalNoCorpus: a journal that reached its done
// entry rebuilds the whole store even after the corpus directory is
// deleted.
func TestResumeFromDoneJournalNoCorpus(t *testing.T) {
	dir := crashCorpus(t)
	log := testJournal(t)
	opts := StreamOptions{Workers: 2, ChunkLines: 400, Journal: log}
	want, wantRep, err := StreamLoadDir(dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	ss, rep, err := ResumeLoadDir(context.Background(), dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatalf("resume with corpus deleted: %v", err)
	}
	if !reflect.DeepEqual(ss.All(), want.All()) {
		t.Fatalf("journal-only rebuild diverges (%d vs %d records)", ss.Len(), want.Len())
	}
	supervisorEqual(t, rep, wantRep)
}

// TestResumeEmptyJournalIsFreshLoad: resuming with a journal that never
// recorded anything just loads normally.
func TestResumeEmptyJournalIsFreshLoad(t *testing.T) {
	dir := crashCorpus(t)
	opts := StreamOptions{Journal: testJournal(t), ChunkLines: 500}
	want, wantRep, err := StreamLoadDir(dir, topology.SchedulerSlurm, StreamOptions{ChunkLines: 500})
	if err != nil {
		t.Fatal(err)
	}
	ss, rep, err := ResumeLoadDir(context.Background(), dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss.All(), want.All()) {
		t.Fatal("empty-journal resume diverges from fresh load")
	}
	supervisorEqual(t, rep, wantRep)
}

// TestResumeRequiresJournal and journal/caller identity mismatches.
func TestResumeGuards(t *testing.T) {
	dir := crashCorpus(t)
	if _, _, err := ResumeLoadDir(context.Background(), dir, topology.SchedulerSlurm, StreamOptions{}); err == nil {
		t.Fatal("ResumeLoadDir without journal did not error")
	}
	log := testJournal(t)
	opts := StreamOptions{Journal: log, ChunkLines: 500}
	if _, _, err := StreamLoadDir(dir, topology.SchedulerSlurm, opts); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeLoadDir(context.Background(), dir+"-other", topology.SchedulerSlurm, opts); err == nil {
		t.Fatal("resume against a different directory did not error")
	}
	if _, _, err := ResumeLoadDir(context.Background(), dir, topology.SchedulerTorque, opts); err == nil {
		t.Fatal("resume with a different scheduler dialect did not error")
	}
}

// TestResumeInvalidJournalFallsBackToFresh: structural journal damage
// (valid WAL frames, broken entry sequence) resets the journal and
// reloads from scratch instead of refusing.
func TestResumeInvalidJournalFallsBackToFresh(t *testing.T) {
	dir := crashCorpus(t)
	log := testJournal(t)
	// A chunk entry with no header is structurally invalid.
	if err := log.Append([]byte(`{"t":"chunk","si":0,"ci":0}`)); err != nil {
		t.Fatal(err)
	}
	opts := StreamOptions{Journal: log, ChunkLines: 500}
	want, wantRep, err := StreamLoadDir(dir, topology.SchedulerSlurm, StreamOptions{ChunkLines: 500})
	if err != nil {
		t.Fatal(err)
	}
	ss, rep, err := ResumeLoadDir(context.Background(), dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatalf("invalid journal should fall back to fresh load, got %v", err)
	}
	if !reflect.DeepEqual(ss.All(), want.All()) {
		t.Fatal("fallback load diverges from fresh load")
	}
	supervisorEqual(t, rep, wantRep)
}

// TestResumeAfterFileChangedRestartsStream: when the partially-loaded
// file changed between kill and resume, that stream restarts from
// scratch and the final result matches a fresh load of the new corpus.
func TestResumeAfterFileChangedRestartsStream(t *testing.T) {
	scn := shardScenario(t)
	dir := filepath.Join(t.TempDir(), "logs")
	if err := WriteDir(dir, scn.Records, topology.SchedulerSlurm); err != nil {
		t.Fatal(err)
	}
	log := testJournal(t)
	opts := StreamOptions{Workers: 2, ChunkLines: 200, Journal: log}
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	opts.OnChunk = func(string, int) {
		if seen == 2 {
			cancel()
		}
		seen++
	}
	if _, _, err := StreamLoadDirContext(ctx, dir, topology.SchedulerSlurm, opts); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("kill: %v", err)
	}
	cancel()
	// Mutate the first stream's file (the one in flight at the kill).
	names, err := os.ReadDir(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("corpus dir: %v", err)
	}
	first := filepath.Join(dir, names[0].Name())
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, append([]byte("not a log line\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	want, wantRep, err := StreamLoadDir(dir, topology.SchedulerSlurm, StreamOptions{Workers: 2, ChunkLines: 200})
	if err != nil {
		t.Fatal(err)
	}
	opts.OnChunk = nil
	ss, rep, err := ResumeLoadDir(context.Background(), dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss.All(), want.All()) {
		t.Fatal("resume after file change diverges from fresh load of the new corpus")
	}
	supervisorEqual(t, rep, wantRep)
}

// TestStallWatchdogAndBreaker: sticky injected stalls poison chunks via
// the (virtual) watchdog; enough of them per stream trips the breaker.
// The load still completes with a degraded report — never an error.
func TestStallWatchdogAndBreaker(t *testing.T) {
	dir := crashCorpus(t)
	in := chaos.New(chaos.Config{Seed: 9, Stall: 1, Sticky: 1})
	opts := StreamOptions{Workers: 2, ChunkLines: 200, Chaos: in,
		BreakerThreshold: 2, BackoffBase: -1}
	ss, rep, err := StreamLoadDir(dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatalf("stalled load must degrade, not fail: %v", err)
	}
	if ss == nil || rep == nil {
		t.Fatal("stalled load returned nil store or report")
	}
	if len(rep.Poisoned) == 0 || len(rep.Tripped) == 0 {
		t.Fatalf("Stall=1 produced %d poisons, %d trips", len(rep.Poisoned), len(rep.Tripped))
	}
	for _, pz := range rep.Poisoned {
		if !strings.HasPrefix(pz.Reason, "stall: watchdog timeout") {
			t.Fatalf("poison reason %q, want watchdog verdict", pz.Reason)
		}
		if pz.Attempts != 3 {
			t.Fatalf("sticky stall poisoned after %d attempts, want 3", pz.Attempts)
		}
	}
	if !rep.Degraded() || rep.LostChunks() == 0 {
		t.Fatal("poisoned load not reported as degraded")
	}
	if in.Report.Stalls == 0 {
		t.Fatal("injector accounted no stalls")
	}
	// The breaker verdicts and poisons must be deterministic: a second
	// identical run agrees exactly.
	in2 := chaos.New(chaos.Config{Seed: 9, Stall: 1, Sticky: 1})
	opts.Chaos = in2
	ss2, rep2, err := StreamLoadDir(dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss.All(), ss2.All()) {
		t.Fatal("stalled load store not deterministic")
	}
	supervisorEqual(t, rep2, rep)
}

// TestRealStallWatchdog exercises the wall-clock watchdog path: the
// injected stall really sleeps and the watchdog abandons the attempt.
func TestRealStallWatchdog(t *testing.T) {
	scn := shardScenario(t)
	dir := filepath.Join(t.TempDir(), "logs")
	if err := WriteDir(dir, scn.Records, topology.SchedulerSlurm); err != nil {
		t.Fatal(err)
	}
	in := chaos.New(chaos.Config{Seed: 9, Stall: 0.05, Sticky: 1, StallTime: 200 * time.Millisecond})
	opts := StreamOptions{Workers: 4, ChunkLines: 2000, Chaos: in,
		StallTimeout: 10 * time.Millisecond, MaxAttempts: 2, BackoffBase: -1}
	_, rep, err := StreamLoadDir(dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Poisoned) == 0 {
		t.Skip("no stall fired at 5% on this corpus size")
	}
	for _, pz := range rep.Poisoned {
		if pz.Reason != "stall: watchdog timeout after 10ms" {
			t.Fatalf("poison reason %q", pz.Reason)
		}
	}
}

// TestInjectedPanicRecovered: injected parse-goroutine panics are
// recovered per attempt; transient ones heal on retry and leave no
// poison at all.
func TestInjectedPanicRecovered(t *testing.T) {
	dir := crashCorpus(t)
	want, wantRep, err := StreamLoadDir(dir, topology.SchedulerSlurm, StreamOptions{ChunkLines: 300})
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(chaos.Config{Seed: 4, Panic: 1, Sticky: -1}) // never sticky
	opts := StreamOptions{Workers: 3, ChunkLines: 300, Chaos: in, BackoffBase: -1}
	ss, rep, err := StreamLoadDir(dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Poisoned) != 0 {
		t.Fatalf("transient panics left %d poisons", len(rep.Poisoned))
	}
	if in.Report.Panics == 0 {
		t.Fatal("injector accounted no panics")
	}
	if !reflect.DeepEqual(ss.All(), want.All()) {
		t.Fatal("transient-panic load diverges from clean load")
	}
	supervisorEqual(t, rep, wantRep)
}

// TestWorkerPanicSupervision: a panic that escapes per-attempt recovery
// (via the worker failpoint) poisons the in-flight chunk, restarts the
// worker, and the load completes.
func TestWorkerPanicSupervision(t *testing.T) {
	dir := crashCorpus(t)
	var fired atomic.Bool
	workerFailpoint = func(tk chunkTask) {
		if tk.ci == 1 && fired.CompareAndSwap(false, true) {
			panic("failpoint: worker crash")
		}
	}
	defer func() { workerFailpoint = nil }()
	opts := StreamOptions{Workers: 2, ChunkLines: 300, BackoffBase: -1}
	ss, rep, err := StreamLoadDir(dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatalf("worker panic must not fail the load: %v", err)
	}
	if ss == nil {
		t.Fatal("no store after supervised recovery")
	}
	if len(rep.Poisoned) != 1 {
		t.Fatalf("got %d poisoned chunks, want exactly the in-flight one", len(rep.Poisoned))
	}
	pz := rep.Poisoned[0]
	if pz.Chunk != 1 || !strings.Contains(pz.Reason, "failpoint: worker crash") {
		t.Fatalf("poison %+v does not identify the crashed task", pz)
	}
}

// TestWorkerRestartBudgetExhausted: when every restart panics too, the
// worker pool drains the queue poisoning everything — the load still
// terminates with a fully degraded report instead of hanging.
func TestWorkerRestartBudgetExhausted(t *testing.T) {
	dir := crashCorpus(t)
	workerFailpoint = func(chunkTask) { panic("failpoint: hard crash") }
	defer func() { workerFailpoint = nil }()
	opts := StreamOptions{Workers: 2, ChunkLines: 300, BackoffBase: -1, BreakerThreshold: 2}
	ss, rep, err := StreamLoadDir(dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatalf("exhausted workers must degrade, not fail: %v", err)
	}
	if ss.Len() != 0 {
		t.Fatalf("every chunk poisoned yet store holds %d records", ss.Len())
	}
	if len(rep.Poisoned) == 0 || len(rep.Tripped) == 0 {
		t.Fatalf("full crash: %d poisons, %d trips", len(rep.Poisoned), len(rep.Tripped))
	}
	budget := false
	for _, pz := range rep.Poisoned {
		if pz.Reason == "worker restart budget exhausted" {
			budget = true
		}
	}
	if !budget {
		t.Fatal("no chunk records the exhausted restart budget")
	}
}

// TestIOFaultSkipsFile: sticky injected read faults exhaust the read
// budget and the file lands in Skipped with the chaos error.
func TestIOFaultSkipsFile(t *testing.T) {
	dir := crashCorpus(t)
	in := chaos.New(chaos.Config{Seed: 2, IOFault: 1, Sticky: 1})
	opts := StreamOptions{ChunkLines: 500, Chaos: in, BackoffBase: -1}
	ss, rep, err := StreamLoadDir(dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Len() != 0 {
		t.Fatalf("IOFault=1 sticky: store holds %d records", ss.Len())
	}
	if len(rep.Skipped) == 0 {
		t.Fatal("no files skipped under total read faults")
	}
	for _, w := range rep.Skipped {
		if !strings.Contains(w.Err, "chaos: injected I/O fault") {
			t.Fatalf("skip warning %q does not carry the fault", w.Err)
		}
	}
	// Transient read faults heal invisibly.
	in2 := chaos.New(chaos.Config{Seed: 2, IOFault: 1, Sticky: -1})
	opts.Chaos = in2
	want, wantRep, err := StreamLoadDir(dir, topology.SchedulerSlurm, StreamOptions{ChunkLines: 500})
	if err != nil {
		t.Fatal(err)
	}
	ss2, rep2, err := StreamLoadDir(dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss2.All(), want.All()) {
		t.Fatal("transient read faults changed the loaded records")
	}
	supervisorEqual(t, rep2, wantRep)
}
