package logstore

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hpcfail/internal/chaos"
	"hpcfail/internal/events"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/topology"
)

func shardScenario(t testing.TB) *faultsim.Scenario {
	t.Helper()
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 384, CabinetCols: 2,
		Scheduler: topology.SchedulerSlurm, Cray: true}
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = 30 * time.Minute
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := faultsim.Generate(p, start, start.Add(2*24*time.Hour), 5)
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func TestShardedMergedMatchesNew(t *testing.T) {
	scn := shardScenario(t)
	want := New(scn.Records)
	for _, shards := range []int{1, 3, 8} {
		ss := NewShardedFromRecords(scn.Records, shards)
		if ss.Len() != want.Len() {
			t.Fatalf("%d shards: Len %d want %d", shards, ss.Len(), want.Len())
		}
		if !reflect.DeepEqual(ss.All(), want.All()) {
			t.Fatalf("%d shards: merged record sequence diverges from New", shards)
		}
	}
}

func TestShardedWindowsMatchMerged(t *testing.T) {
	scn := shardScenario(t)
	seq := New(scn.Records)
	ss := NewShardedFromRecords(scn.Records, 8)
	first, last, ok := seq.Span()
	if !ok {
		t.Fatal("empty store")
	}
	mid := first.Add(last.Sub(first) / 2)
	for _, node := range seq.Nodes() {
		got := ss.NodeWindow(node, first, mid)
		want := seq.NodeWindow(node, first, mid)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("NodeWindow(%s) diverges: %d vs %d records", node, len(got), len(want))
		}
		blade := node.BladeName()
		if !reflect.DeepEqual(ss.BladeWindow(blade, mid, last), seq.BladeWindow(blade, mid, last)) {
			t.Fatalf("BladeWindow(%s) diverges", blade)
		}
		cab := node.CabinetName()
		if !reflect.DeepEqual(ss.CabinetWindow(cab, first, last), seq.CabinetWindow(cab, first, last)) {
			t.Fatalf("CabinetWindow(%s) diverges", cab)
		}
	}
}

func TestShardedSideChannelsOrdered(t *testing.T) {
	scn := shardScenario(t)
	seq := New(scn.Records)
	ss := NewShardedFromRecords(scn.Records, 8)
	// Scheduler/ALPS side-channels must equal the merged store filtered
	// by stream, in order.
	var schedFromMerged, alpsFromMerged []int
	for i, r := range seq.All() {
		switch r.Stream {
		case events.StreamScheduler:
			schedFromMerged = append(schedFromMerged, i)
		case events.StreamALPS:
			alpsFromMerged = append(alpsFromMerged, i)
		}
	}
	if len(ss.SchedulerRecords()) != len(schedFromMerged) {
		t.Fatalf("scheduler side-channel has %d records, merged filter %d",
			len(ss.SchedulerRecords()), len(schedFromMerged))
	}
	for i, j := range schedFromMerged {
		if !reflect.DeepEqual(ss.SchedulerRecords()[i], seq.All()[j]) {
			t.Fatalf("scheduler record %d diverges", i)
		}
	}
	if len(ss.ALPSRecords()) != len(alpsFromMerged) {
		t.Fatalf("alps side-channel has %d records, merged filter %d",
			len(ss.ALPSRecords()), len(alpsFromMerged))
	}
	for i, j := range alpsFromMerged {
		if !reflect.DeepEqual(ss.ALPSRecords()[i], seq.All()[j]) {
			t.Fatalf("alps record %d diverges", i)
		}
	}
}

// reportsEqual compares IngestReports field by field, rendering errors
// to strings (error values don't DeepEqual across construction sites).
func reportsEqual(t *testing.T, got, want *IngestReport) {
	t.Helper()
	if !reflect.DeepEqual(got.Skipped, want.Skipped) {
		t.Fatalf("Skipped diverges: %v vs %v", got.Skipped, want.Skipped)
	}
	if !reflect.DeepEqual(got.Missing, want.Missing) {
		t.Fatalf("Missing diverges: %v vs %v", got.Missing, want.Missing)
	}
	if len(got.Streams) != len(want.Streams) {
		t.Fatalf("stream ledger count %d vs %d", len(got.Streams), len(want.Streams))
	}
	for i := range got.Streams {
		g, w := got.Streams[i], want.Streams[i]
		if g.Stream != w.Stream || g.Lines != w.Lines || g.Parsed != w.Parsed ||
			g.Quarantined != w.Quarantined || g.Reordered != w.Reordered {
			t.Fatalf("stream %v ledger diverges: %+v vs %+v", g.Stream, g, w)
		}
		if !reflect.DeepEqual(g.Samples, w.Samples) {
			t.Fatalf("stream %v samples diverge: %q vs %q", g.Stream, g.Samples, w.Samples)
		}
		if len(g.Errs) != len(w.Errs) {
			t.Fatalf("stream %v err count %d vs %d", g.Stream, len(g.Errs), len(w.Errs))
		}
		for j := range g.Errs {
			if g.Errs[j].Error() != w.Errs[j].Error() {
				t.Fatalf("stream %v err %d: %v vs %v", g.Stream, j, g.Errs[j], w.Errs[j])
			}
		}
	}
}

func TestStreamLoadDirMatchesLoadDirReport(t *testing.T) {
	scn := shardScenario(t)
	dir := filepath.Join(t.TempDir(), "logs")
	if err := WriteDir(dir, scn.Records, topology.SchedulerSlurm); err != nil {
		t.Fatal(err)
	}
	want, wantRep, err := LoadDirReport(dir, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []StreamOptions{
		{},
		{Workers: 1, Shards: 1, ChunkLines: 100},
		{Workers: 4, Shards: 5, ChunkLines: 999, Queue: 2},
	} {
		ss, rep, err := StreamLoadDir(dir, topology.SchedulerSlurm, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ss.All(), want.All()) {
			t.Fatalf("opts %+v: streamed store diverges from sequential (%d vs %d records)",
				opts, ss.Len(), want.Len())
		}
		reportsEqual(t, rep, wantRep)
	}
}

func TestStreamLoadDirDamagedCorpus(t *testing.T) {
	scn := shardScenario(t)
	dir := filepath.Join(t.TempDir(), "logs")
	ccfg := chaos.Config{Garble: 0.05, Truncate: 0.05, Drop: 0.05, Duplicate: 0.05, Seed: 13}
	if _, err := WriteDirChaos(dir, scn.Records, topology.SchedulerSlurm, ccfg); err != nil {
		t.Fatal(err)
	}
	want, wantRep, err := LoadDirReport(dir, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	ss, rep, err := StreamLoadDir(dir, topology.SchedulerSlurm, StreamOptions{Workers: 3, Shards: 4, ChunkLines: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss.All(), want.All()) {
		t.Fatalf("damaged corpus: streamed store diverges (%d vs %d records)", ss.Len(), want.Len())
	}
	reportsEqual(t, rep, wantRep)
	if rep.TotalQuarantined() == 0 {
		t.Fatal("chaos corpus produced no quarantined lines — test not exercising damage")
	}
}

func TestStreamLoadDirNotADirectory(t *testing.T) {
	f := filepath.Join(t.TempDir(), "file")
	if err := writeFiles(filepath.Dir(f), map[string][]string{"file": {"x"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := StreamLoadDir(f, topology.SchedulerSlurm, StreamOptions{}); err == nil {
		t.Fatal("want error for non-directory path")
	}
}
