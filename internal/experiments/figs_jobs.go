package experiments

// Application-side experiments: Figs 12, 15, 16, 17.

import (
	"fmt"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/core"
	"hpcfail/internal/faults"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/logstore"
	"hpcfail/internal/report"
)

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Job exit status over 3 days with failures",
		Paper: "90.43-95.71% success; 0.06-6.02% non-zero exits; config errors dominate the rest",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "S5 node condition breakdown (1 month)",
		Paper: "hung-task 80.57%, OOM 10.59%, Lustre 5.04%, software 2.16%, hardware 1.43%",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "S2 failure root-cause breakdown",
		Paper: "app-exit 37.5%, FS bugs 26.78%, OOM 16.07%, kernel bugs 7.14%, others 12.5%",
		Run:   runFig16,
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Memory overallocation day: 53 failures over 16 jobs",
		Paper: "J5/J8 lose every overallocated node; J1 and J16 lose 1 and 6 of 600 and 683",
		Run:   runFig17,
	})
}

func runFig12(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	_, res, err := simulate(p, 3, cfg.Seed+31)
	if err != nil {
		return nil, err
	}
	ja := res.JobAnalyzer()
	tbl := report.NewTable("Fig 12 — job exit status per day",
		"day", "jobs", "success", "non-zero exit", "config errors", "node-fail", "failures")
	for d := 0; d < 3; d++ {
		from := simStart.Add(time.Duration(d) * 24 * time.Hour)
		to := from.Add(24 * time.Hour)
		es := ja.ExitStatsBetween(from, to)
		failures := 0
		for _, det := range res.Detections {
			if !det.Time.Before(from) && det.Time.Before(to) {
				failures++
			}
		}
		tbl.AddRow(fmt.Sprintf("D%d", d+1), es.Total, pct(es.SuccessFraction()),
			pct(es.AppFailedFraction()),
			es.ConfigError, es.NodeFail, failures)
	}
	es := ja.ExitStatsBetween(simStart, simStart.Add(3*24*time.Hour))
	return &Result{ID: "fig12", Title: "Job exit mix", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: 90.43-95.71% of jobs succeed; only 0.06-6.02% end with non-zero exits",
			fmt.Sprintf("measured overall: %s success, %s non-zero over %d jobs",
				pct(es.SuccessFraction()), pct(es.AppFailedFraction()), es.Total),
		}}, nil
}

func runFig15(cfg Config) (*Result, error) {
	p, err := faultsim.DefaultProfile("S5")
	if err != nil {
		return nil, err
	}
	if cfg.Quick {
		p.Workload.MeanInterarrival = 30 * time.Minute
	}
	nDays := days(cfg, 30)
	scn, err := faultsim.Generate(p, simStart, simStart.Add(time.Duration(nDays)*24*time.Hour), cfg.Seed+37)
	if err != nil {
		return nil, err
	}
	store := logstore.New(scn.Records)
	// Classify each node by its dominant logged condition — the Fig 15
	// per-node view.
	conditionOf := map[string]string{
		faults.HungTask.Category():         "hung-task",
		faults.OOMKiller.Category():        "oom",
		faults.LustreIOError.Category():    "lustre-error",
		faults.SegFault.Category():         "software-error",
		faults.PageAllocFailure.Category(): "software-error",
		faults.GPUError.Category():         "hardware-error",
		faults.DiskError.Category():        "hardware-error",
	}
	perNode := map[cname.Name]map[string]int{}
	for _, r := range store.All() {
		cond, ok := conditionOf[r.Category]
		if !ok || !r.Component.IsValid() {
			continue
		}
		if perNode[r.Component] == nil {
			perNode[r.Component] = map[string]int{}
		}
		perNode[r.Component][cond]++
	}
	counts := map[string]float64{}
	for _, conds := range perNode {
		best, bestN := "", 0
		for c, n := range conds {
			if n > bestN || (n == bestN && c < best) {
				best, bestN = c, n
			}
		}
		counts[best]++
	}
	total := 0.0
	for _, v := range counts {
		total += v
	}
	fractions := map[string]float64{}
	for k, v := range counts {
		fractions[k] = v / total * 100
	}
	tbl := report.Bars("Fig 15 — S5 node condition breakdown (% of nodes)", fractions, "% nodes")
	return &Result{ID: "fig15", Title: "S5 conditions", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: hung-task 80.57%, OOM 10.59%, Lustre 5.04%, software 2.16%, hardware 1.43%",
			fmt.Sprintf("measured over %d nodes with conditions", int(total)),
			"hung-task oops appear only on S5 and do not fail nodes (local filesystem I/O stalls)",
		}}, nil
}

func runFig16(cfg Config) (*Result, error) {
	p, err := profileFor("S2", cfg)
	if err != nil {
		return nil, err
	}
	nDays := days(cfg, 90)
	// Application episodes are large and few, so a single window's mix
	// is noisy; aggregate several independent periods, as the paper's
	// 12-month S2 horizon effectively does.
	seeds := []uint64{cfg.Seed + 41, cfg.Seed + 42, cfg.Seed + 43}
	if cfg.Quick {
		seeds = seeds[:1]
	}
	breakdown := map[faults.Cause]int{}
	total := 0
	for _, seed := range seeds {
		_, res, err := simulate(p, nDays, seed)
		if err != nil {
			return nil, err
		}
		for c, n := range res.CauseBreakdown() {
			breakdown[c] += n
			total += n
		}
	}
	// Fig 16 buckets: app-exit, FS bug, OOM, kernel bug, others (CPU
	// stalls + driver/firmware).
	buckets := map[string]float64{}
	for c, n := range breakdown {
		var label string
		switch c {
		case faults.CauseAppExit:
			label = "app-exit"
		case faults.CauseFilesystemBug:
			label = "fs-bug"
		case faults.CauseOOM:
			label = "oom"
		case faults.CauseKernelBug:
			label = "kernel-bug"
		default:
			label = "others"
		}
		buckets[label] += float64(n) / float64(total) * 100
	}
	tbl := report.Bars("Fig 16 — S2 failure root causes (% of failures)", buckets, "% failures")
	return &Result{ID: "fig16", Title: "S2 cause breakdown", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: app-exit 37.5%, FS bugs 26.78%, OOM 16.07%, kernel bugs 7.14%, others 12.5%",
			fmt.Sprintf("measured over %d diagnosed failures", total),
			"KBUG/Others slices are frequently application-prompted per stack-module analysis (Observation 7)",
		}}, nil
}

func runFig17(cfg Config) (*Result, error) {
	scn, specs, err := faultsim.OverallocationDay(simStart, cfg.Seed+43)
	if err != nil {
		return nil, err
	}
	res := core.Run(logstore.New(scn.Records), core.DefaultConfig())
	reports := res.JobAnalyzer().Overallocations(64 * 1024)
	byJob := map[int64]core.OverallocationReport{}
	for _, r := range reports {
		byJob[r.JobID] = r
	}
	tbl := report.NewTable("Fig 17 — overallocated vs failed nodes per job",
		"job", "overallocated nodes", "failed nodes", "planted failures")
	totalFailed := 0
	for i, s := range specs {
		got := byJob[s.JobID]
		tbl.AddRow(fmt.Sprintf("J%d", i+1), s.Overallocated, got.Failed, s.Failed)
		totalFailed += got.Failed
	}
	return &Result{ID: "fig17", Title: "Memory overallocation", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: 53 failures over 16 jobs; all of J5/J8's overallocated nodes fail; J1 and J16 lose 1 and 6 of 600 and 683",
			fmt.Sprintf("measured: pipeline attributed %d failed nodes across the 16 jobs (53 planted)", totalFailed),
			"Slurm granted more memory than the nodes had — job submission parameters matter (Observation 6)",
		}}, nil
}
