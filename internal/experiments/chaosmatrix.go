package experiments

// extension-chaos-matrix: the robustness harness's headline study. The
// same ground-truth scenario is rendered to text logs, damaged by every
// chaos mode at increasing intensity, re-ingested through the
// quarantining parser and scored against the simulator's planted
// failures — measuring how gracefully the holistic pipeline degrades
// under the paper's challenge #1 (noisy, incomplete production logs).

import (
	"fmt"
	"time"

	"hpcfail/internal/chaos"
	"hpcfail/internal/core"
	"hpcfail/internal/events"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logparse"
	"hpcfail/internal/logstore"
	"hpcfail/internal/report"
	"hpcfail/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "extension-chaos-matrix",
		Title: "Chaos matrix: corruption mode × intensity vs pipeline quality",
		Paper: "(extension) graceful degradation under injected log faults — challenge #1 quantified",
		Run:   runChaosMatrix,
	})
}

func runChaosMatrix(cfg Config) (*Result, error) {
	scn, err := ablationScenario(cfg)
	if err != nil {
		return nil, err
	}
	sched := topology.SchedulerSlurm
	rendered := loggen.RenderAll(scn.Records, sched)

	intensities := []float64{0.05, 0.2}
	if cfg.Quick {
		intensities = intensities[1:]
	}

	tbl := report.NewTable("Chaos matrix — corruption mode × intensity",
		"mode", "intensity", "injected", "quarantined", "parsed", "streams lost",
		"detections", "recall", "precision", "cause acc")

	// score ingests one damaged corpus and matches detections to truth.
	score := func(files map[string][]string, tolerance time.Duration) (parsed, quarantined, lost int, res *core.Result, recall, precision, causeAcc float64) {
		var recs []events.Record
		for _, stream := range loggen.AllStreams() {
			lines, ok := files[loggen.FileName(stream)]
			if !ok {
				lost++
				continue
			}
			got, srep := logparse.ParseLinesReport(stream, sched, lines)
			recs = append(recs, got...)
			parsed += srep.Parsed
			quarantined += srep.Quarantined
		}
		res = core.Run(logstore.New(recs), core.DefaultConfig())
		matched, causeHits := 0, 0
		for _, f := range scn.Failures {
			for _, d := range res.Diagnoses {
				if d.Detection.Node == f.Node && absDur(d.Detection.Time.Sub(f.Time)) <= tolerance {
					matched++
					if d.Cause == f.Cause {
						causeHits++
					}
					break
				}
			}
		}
		if n := len(scn.Failures); n > 0 {
			recall = float64(matched) / float64(n)
		}
		if n := len(res.Detections); n > 0 {
			precision = float64(matched) / float64(n)
		}
		if matched > 0 {
			causeAcc = float64(causeHits) / float64(matched)
		}
		return
	}

	// Baseline row: the undamaged round trip.
	parsed, quar, lost, _, recall, prec, cause := score(rendered, 30*time.Second)
	tbl.AddRow("none", "-", 0, quar, parsed, lost, "-", pct(recall), pct(prec), pct(cause))
	baseRecall := recall

	var worst20 float64 = 1
	for _, mode := range chaos.AllModes() {
		for _, x := range intensities {
			ccfg := chaos.ForMode(mode, x, cfg.Seed+13)
			inj := chaos.New(ccfg)
			files := inj.CorruptAll(rendered)
			// Clock skew legitimately moves event (and so detection)
			// timestamps: widen the truth-matching tolerance by the skew
			// bound rather than penalising the pipeline for the fault.
			tol := 30 * time.Second
			if mode == chaos.ModeClockSkew {
				tol += ccfg.MaxSkew
			}
			parsed, quar, lost, res, recall, prec, cause := score(files, tol)
			tbl.AddRow(string(mode), fmt.Sprintf("%.0f%%", x*100),
				inj.Report.Corruptions(), quar, parsed, lost,
				len(res.Detections), pct(recall), pct(prec), pct(cause))
			if x == 0.2 && recall < worst20 {
				worst20 = recall
			}
		}
	}

	return &Result{ID: "extension-chaos-matrix", Title: "Chaos robustness matrix",
		Tables: []*report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("ground truth: %d planted failures over the scenario; clean round-trip recall %s", len(scn.Failures), pct(baseRecall)),
			fmt.Sprintf("worst-case recall across all modes at 20%% intensity: %s (stream-loss can silence the internal logs entirely)", pct(worst20)),
			"every cell ran to completion: corruption quarantines lines and lowers confidence, it never crashes the pipeline",
			"fully deterministic: corruption derives from a per-stream seeded generator, so identical seeds reproduce every cell",
		}}, nil
}
