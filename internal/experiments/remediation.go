package experiments

// extension-remediation: the closed-loop self-healing engine scored
// counterfactually against the simulator's ground truth on independent
// seeded scenarios.

import (
	"fmt"
	"time"

	"hpcfail/internal/faultsim"
	"hpcfail/internal/remedy"
	"hpcfail/internal/report"
)

func init() {
	register(Experiment{
		ID:    "extension-remediation",
		Title: "Closed-loop remediation (SOP engine) scored against simulator ground truth",
		Paper: "(extension) Table VI: act on diagnoses — suspect mode, admindown, drains, warm swaps — before failures cascade",
		Run:   runExtensionRemediation,
	})
}

// remediationEngineConfig is the engine tuning the experiment replays
// with: default guards, retries without wall-clock sleeps (the replay
// runs on virtual time).
func remediationEngineConfig() remedy.Config {
	return remedy.Config{BackoffBase: -1}
}

func runExtensionRemediation(cfg Config) (*Result, error) {
	cases := []struct {
		system string
		seed   uint64
	}{
		{"S1", cfg.Seed + 101},
		{"S3", cfg.Seed + 103},
	}
	nDays := days(cfg, 21)
	span := time.Duration(nDays) * 24 * time.Hour

	tbl := report.NewTable("Remediation vs ground truth over independent seeded scenarios",
		"system", "failures", "averted", "averted %", "mean lead used",
		"jobs saved", "jobs requeued", "false actions", "false rate", "executed", "refused")
	var notes []string
	totalAverted, totalFailures := 0, 0
	for _, c := range cases {
		p, err := profileFor(c.system, cfg)
		if err != nil {
			return nil, err
		}
		scn, err := faultsim.Generate(p, simStart, simStart.Add(span), c.seed)
		if err != nil {
			return nil, err
		}
		rcfg := remedy.ReplayConfig{Engine: remediationEngineConfig()}
		res, err := remedy.Replay(scn, rcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: remediation replay %s: %w", c.system, err)
		}
		// The ledger is the experiment's own audit trail: re-derive the
		// safety invariants from it and fail loudly on any violation.
		if err := remedy.VerifyGuards(res.Tickets, rcfg.Engine); err != nil {
			return nil, fmt.Errorf("experiments: %s guard violation: %w", c.system, err)
		}
		s := res.Score
		tbl.AddRow(c.system, s.Failures, s.Averted, pct(s.AvertedRate),
			s.MeanLeadConsumed.Round(time.Minute).String(),
			s.JobsSaved, s.JobsRequeued, s.FalseActions, pct(s.FalseActionRate),
			s.Executed, s.Refused)
		totalAverted += s.Averted
		totalFailures += s.Failures
		notes = append(notes, fmt.Sprintf(
			"%s (seed %d): baseline %d failures hitting %d jobs; loop averted %d using %s mean lead, %d decisions refused by guards",
			c.system, c.seed, res.Baseline.Failures, res.Baseline.JobsHit,
			s.Averted, s.MeanLeadConsumed.Round(time.Minute), s.Refused))
	}
	if totalAverted == 0 {
		return nil, fmt.Errorf("experiments: remediation averted nothing across %d failures", totalFailures)
	}
	notes = append(notes,
		"averted = node taken out of service within the avert window before its ground-truth failure; false action = disruptive SOP with no ground-truth failure near it",
		"guard audit (drain concurrency, cabinet blast radius, duplicate execution) re-verified from the ticket ledger on every run")
	return &Result{ID: "extension-remediation", Title: "Closed-loop remediation", Tables: []*report.Table{tbl}, Notes: notes}, nil
}
