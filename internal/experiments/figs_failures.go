package experiments

// Inter-node failure-time and locality experiments: Figs 3, 4, 18, 19.

import (
	"fmt"
	"time"

	"hpcfail/internal/core"
	"hpcfail/internal/faults"
	"hpcfail/internal/report"
	"hpcfail/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Cumulative node failures vs inter-node failure time (S1, 7 weeks)",
		Paper: "92.3% (W1) and 76.2% (W7) of failures within 1-16 min; MTBF 1.5±0.56 and 12.1±4.2 min",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Fraction of daily failures sharing the dominant cause (30 days, S1-S4)",
		Paper: "65-82% share the dominant daily cause; 12-21 failures/day",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Blade failures sharing a failure reason (S1 & S2, 7 weeks)",
		Paper: "most fully-failed blades share one reason; errors < ±7.2",
		Run:   runFig18,
	})
	register(Experiment{
		ID:    "fig19",
		Title: "MTBF of job-triggered failures (S3, 7 weeks)",
		Paper: "<= 32 min; W1: 91.6% of failures within 5 min",
		Run:   runFig19,
	})
}

// weeklyGaps buckets inter-failure gaps by week.
func weeklyGaps(res *core.Result, weeks int) [][]time.Duration {
	byWeek := make([][]time.Time, weeks)
	for _, d := range res.Detections {
		if w := weekOf(d.Time); w >= 0 && w < weeks {
			byWeek[w] = append(byWeek[w], d.Time)
		}
	}
	out := make([][]time.Duration, weeks)
	for w, ts := range byWeek {
		out[w] = stats.InterArrival(ts)
	}
	return out
}

func runFig3(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	// The Fig 3 weeks are burst-dominated: days without failures, then
	// large same-malfunction episodes with minutes between failures
	// ("on other days nodes fail just minutes apart").
	p.EpisodesPerDay = 0.6
	p.SinglesPerDay = 0.4
	p.AppEpisodeMeanNodes = 14
	nWeeks := 7
	if cfg.Quick {
		nWeeks = 3
	}
	_, res, err := simulate(p, nWeeks*7, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gapsByWeek := weeklyGaps(res, nWeeks)
	tbl := report.NewTable("Fig 3 — per-week inter-node failure times (S1)",
		"week", "failures", "within 2min", "within 16min", "burst MTBF (min)", "± stddev")
	minWithin16, maxWithin16 := 1.0, 0.0
	for w, gaps := range gapsByWeek {
		if len(gaps) == 0 {
			tbl.AddRow(fmt.Sprintf("W%d", w+1), 0, "-", "-", "-", "-")
			continue
		}
		// Burst MTBF: the mean over the within-16-minute gap mass that
		// the paper's weekly numbers describe (long quiet gaps between
		// episodes are excluded, as in the figure).
		var burst []float64
		for _, g := range gaps {
			if g <= 16*time.Minute {
				burst = append(burst, g.Minutes())
			}
		}
		s := stats.Summarize(burst)
		w2 := stats.FractionWithin(gaps, 2*time.Minute)
		w16 := stats.FractionWithin(gaps, 16*time.Minute)
		if w16 < minWithin16 {
			minWithin16 = w16
		}
		if w16 > maxWithin16 {
			maxWithin16 = w16
		}
		tbl.AddRow(fmt.Sprintf("W%d", w+1), len(gaps)+1, pct(w2), pct(w16),
			fmt.Sprintf("%.1f", s.Mean), fmt.Sprintf("%.2f", s.Stddev))
	}
	// CDF of the full period for the figure's curve shape.
	var all []float64
	for _, gaps := range gapsByWeek {
		for _, g := range gaps {
			all = append(all, g.Minutes())
		}
	}
	cdf := report.Series{Name: "Fig 3 — CDF of inter-failure time (all weeks)",
		XLabel: "minutes", YLabel: "cumulative fraction"}
	e := stats.NewECDF(all)
	for _, x := range []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128} {
		cdf.Add(x, e.At(x))
	}
	return &Result{
		ID: "fig3", Title: "Inter-node failure times",
		Tables: []*report.Table{tbl, cdf.Table()},
		Notes: []string{
			"paper: 92.3% (W1) / 76.2% (W7) of failures within 1-16 min; MTBF 1.5-12.1 min across weeks",
			fmt.Sprintf("measured: weekly within-16min fraction spans %s to %s", pct(minWithin16), pct(maxWithin16)),
		},
	}, nil
}

func runFig4(cfg Config) (*Result, error) {
	nDays := days(cfg, 30)
	tbl := report.NewTable("Fig 4 — dominant daily failure cause share (per system)",
		"system", "days>=3 failures", "failures/day range", "mean dominant share", "share range")
	var notes []string
	for i, sys := range []string{"S1", "S2", "S3", "S4"} {
		p, err := profileFor(sys, cfg)
		if err != nil {
			return nil, err
		}
		// Fig 4 samples a busy month: double the episode rate; isolated
		// singles stay rare so the daily dominant cause stands out.
		p.EpisodesPerDay *= 2
		p.SinglesPerDay *= 0.8
		_, res, err := simulate(p, nDays, cfg.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		dd := res.DominantDailyCauses(3)
		if len(dd) == 0 {
			tbl.AddRow(sys, 0, "-", "-", "-")
			continue
		}
		minF, maxF := dd[0].Failures, dd[0].Failures
		minS, maxS, sumS := 1.0, 0.0, 0.0
		for _, d := range dd {
			if d.Failures < minF {
				minF = d.Failures
			}
			if d.Failures > maxF {
				maxF = d.Failures
			}
			if d.Share < minS {
				minS = d.Share
			}
			if d.Share > maxS {
				maxS = d.Share
			}
			sumS += d.Share
		}
		mean := sumS / float64(len(dd))
		tbl.AddRow(sys, len(dd), fmt.Sprintf("%d-%d", minF, maxF), pct(mean),
			fmt.Sprintf("%s-%s", pct(minS), pct(maxS)))
		notes = append(notes, fmt.Sprintf("%s mean dominant share %s (paper band 65-82%%)", sys, pct(mean)))
	}
	return &Result{ID: "fig4", Title: "Dominant daily causes", Tables: []*report.Table{tbl},
		Notes: append([]string{"paper: 65-82% of a day's failures share one cause, 12-21 failures/day"}, notes...)}, nil
}

func runFig18(cfg Config) (*Result, error) {
	nWeeks := 7
	if cfg.Quick {
		nWeeks = 3
	}
	tbl := report.NewTable("Fig 18 — blades with >=2 failures sharing one diagnosed reason",
		"system", "week", "multi-failure blades", "same-reason share")
	var notes []string
	for i, sys := range []string{"S1", "S2"} {
		p, err := profileFor(sys, cfg)
		if err != nil {
			return nil, err
		}
		_, res, err := simulate(p, nWeeks*7, cfg.Seed+uint64(100+i))
		if err != nil {
			return nil, err
		}
		// Group diagnoses by (blade, day).
		type key struct {
			blade string
			day   time.Time
		}
		groups := map[key][]faults.Cause{}
		weeks := map[key]int{}
		for _, d := range res.Diagnoses {
			k := key{d.Detection.Node.BladeName().String(), d.Detection.Time.UTC().Truncate(24 * time.Hour)}
			groups[k] = append(groups[k], d.Cause)
			weeks[k] = weekOf(d.Detection.Time)
		}
		perWeekTotal := make([]int, nWeeks)
		perWeekSame := make([]int, nWeeks)
		for k, causes := range groups {
			if len(causes) < 2 {
				continue
			}
			w := weeks[k]
			if w < 0 || w >= nWeeks {
				continue
			}
			perWeekTotal[w]++
			same := true
			for _, c := range causes[1:] {
				if c != causes[0] {
					same = false
				}
			}
			if same {
				perWeekSame[w]++
			}
		}
		totalBlades, totalSame := 0, 0
		for w := 0; w < nWeeks; w++ {
			if perWeekTotal[w] == 0 {
				tbl.AddRow(sys, fmt.Sprintf("W%d", w+1), 0, "-")
				continue
			}
			share := float64(perWeekSame[w]) / float64(perWeekTotal[w])
			tbl.AddRow(sys, fmt.Sprintf("W%d", w+1), perWeekTotal[w], pct(share))
			totalBlades += perWeekTotal[w]
			totalSame += perWeekSame[w]
		}
		if totalBlades > 0 {
			notes = append(notes, fmt.Sprintf("%s overall same-reason share %s over %d multi-failure blades",
				sys, pct(float64(totalSame)/float64(totalBlades)), totalBlades))
		}
	}
	return &Result{ID: "fig18", Title: "Blade failures share reasons", Tables: []*report.Table{tbl},
		Notes: append([]string{"paper: fully-failed blades usually share the root cause (errors < ±7.2)"}, notes...)}, nil
}

func runFig19(cfg Config) (*Result, error) {
	p, err := profileFor("S3", cfg)
	if err != nil {
		return nil, err
	}
	nWeeks := 7
	if cfg.Quick {
		nWeeks = 3
	}
	_, res, err := simulate(p, nWeeks*7, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	// The paper's temporal-locality statistic: gaps between successive
	// failures that share a job. Cross-job quiet periods do not count —
	// the claim is that nodes under one malfunctioning job fail minutes
	// apart.
	gapsByWeek := make([][]time.Duration, nWeeks)
	failuresByWeek := make([]int, nWeeks)
	for _, g := range res.JobAnalyzer().SharedJobGroups() {
		w := weekOf(g.Failures[0].Detection.Time)
		if w < 0 || w >= nWeeks {
			continue
		}
		failuresByWeek[w] += len(g.Failures)
		ts := make([]time.Time, len(g.Failures))
		for i, d := range g.Failures {
			ts[i] = d.Detection.Time
		}
		gapsByWeek[w] = append(gapsByWeek[w], stats.InterArrival(ts)...)
	}
	tbl := report.NewTable("Fig 19 — same-job failure MTBF (S3)",
		"week", "job-triggered failures", "MTBF (min)", "within 5min", "within 32min")
	maxMTBF := 0.0
	for w, gaps := range gapsByWeek {
		if len(gaps) == 0 {
			tbl.AddRow(fmt.Sprintf("W%d", w+1), failuresByWeek[w], "-", "-", "-")
			continue
		}
		xs := make([]float64, len(gaps))
		for i, g := range gaps {
			xs[i] = g.Minutes()
		}
		m := stats.Summarize(xs)
		if m.Mean > maxMTBF {
			maxMTBF = m.Mean
		}
		tbl.AddRow(fmt.Sprintf("W%d", w+1), failuresByWeek[w], fmt.Sprintf("%.1f", m.Mean),
			pct(stats.FractionWithin(gaps, 5*time.Minute)),
			pct(stats.FractionWithin(gaps, 32*time.Minute)))
	}
	return &Result{ID: "fig19", Title: "Job-triggered MTBF", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: job-triggered MTBF <= 32 min every week; W1 has 91.6% within 5 min",
			fmt.Sprintf("measured: max weekly same-job MTBF %.1f min", maxMTBF),
		}}, nil
}
