package experiments

// Extension experiments: the paper's recommendations made quantitative.

import (
	"fmt"
	"time"

	"hpcfail/internal/checkpoint"
	"hpcfail/internal/core"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/logstore"
	"hpcfail/internal/report"
	"hpcfail/internal/stacktrace"
)

func init() {
	register(Experiment{
		ID:    "extension-checkpoint",
		Title: "Checkpoint/restart waste: periodic vs proactive (internal vs external leads)",
		Paper: "(extension) Table VI: proactive schemes aware of early indicators reduce recomputation",
		Run:   runExtensionCheckpoint,
	})
	register(Experiment{
		ID:    "extension-recommend",
		Title: "Findings-to-recommendations engine over a simulated month",
		Paper: "(extension) Table VI findings derived from measured behaviour",
		Run:   runExtensionRecommend,
	})
	register(Experiment{
		ID:    "extension-mltrace",
		Title: "Learned trace classifier vs Table IV rules (full and truncated traces)",
		Paper: "(extension) Table VI: ML-guided call-trace study to narrow down buggy code paths",
		Run:   runExtensionMLTrace,
	})
}

func runExtensionCheckpoint(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	nDays := days(cfg, 30)
	_, res, err := simulate(p, nDays, cfg.Seed+79)
	if err != nil {
		return nil, err
	}
	span := time.Duration(nDays) * 24 * time.Hour
	// Per-failure lead times from the pipeline's evidence.
	var failures []checkpoint.Failure
	for _, d := range res.Diagnoses {
		lt := core.ComputeLeadTime(d)
		failures = append(failures, checkpoint.Failure{
			Time:         d.Detection.Time,
			InternalLead: lt.Internal,
			ExternalLead: lt.External,
		})
	}
	// False alarms from the Fig 14 predictor (external-corroborated
	// mode, since that is what would trigger proactive checkpoints).
	pred := core.NewPredictor(res.Store, core.DefaultConfig())
	cmp := core.CompareFPR(pred, res.Detections)
	falseAlarms := cmp.WithExternal.FP

	mtbf := res.MTBF()
	if mtbf.N == 0 {
		return nil, fmt.Errorf("experiments: no failures for checkpoint model")
	}
	params := checkpoint.DefaultParams(time.Duration(mtbf.Mean * float64(time.Minute)))
	outs, err := checkpoint.Compare(params, failures, span, falseAlarms)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Checkpoint strategies over one simulated month",
		"strategy", "covered", "missed", "false ckpts", "ckpt overhead", "lost work", "restart", "total waste", "waste %")
	for _, o := range outs {
		tbl.AddRow(o.Strategy.String(), o.Covered, o.Missed, o.FalseAlarms,
			o.CheckpointOverhead.Round(time.Minute).String(),
			o.LostWork.Round(time.Minute).String(),
			o.RestartTime.Round(time.Minute).String(),
			o.TotalWaste().Round(time.Minute).String(),
			pct(o.WasteFraction(span)))
	}
	gain := 0.0
	if outs[0].TotalWaste() > 0 {
		gain = 1 - float64(outs[2].TotalWaste())/float64(outs[0].TotalWaste())
	}
	return &Result{ID: "extension-checkpoint", Title: "Checkpoint economics", Tables: []*report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("Daly interval %s at MTBF %.0f min, checkpoint cost %s",
				checkpoint.DalyInterval(params).Round(time.Minute), mtbf.Mean, params.CheckpointCost),
			fmt.Sprintf("proactive-external cuts waste by %s vs periodic — the value of the ~5x lead enhancement", pct(gain)),
			"internal-only leads often undershoot the checkpoint write cost; external leads cover it",
		}}, nil
}

func runExtensionRecommend(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	nDays := days(cfg, 30)
	_, res, err := simulate(p, nDays, cfg.Seed+83)
	if err != nil {
		return nil, err
	}
	recs := core.Recommend(res)
	tbl := report.NewTable("Table VI — derived findings and recommendations",
		"sev", "finding", "action")
	for _, r := range recs {
		tbl.AddRow(r.Severity, r.Finding, r.Action)
	}
	buggy := res.JobAnalyzer().BuggyJobs(3)
	return &Result{ID: "extension-recommend", Title: "Recommendations", Tables: []*report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("%d recommendations fired; %d buggy APIDs flagged for NHC tracking", len(recs), len(buggy)),
		}}, nil
}

// labelledTraces extracts (trace, true cause) pairs from a scenario:
// each ground-truth failure's kernel-oops trace within the internal
// window, labelled by the simulator's cause. Causes that emit no traces
// (app exits, silent shutdowns) are naturally absent.
func labelledTraces(scn *faultsim.Scenario) []stacktrace.Example {
	store := logstore.New(scn.Records)
	var out []stacktrace.Example
	for _, f := range scn.Failures {
		for _, r := range store.NodeWindow(f.Node, f.Time.Add(-30*time.Minute), f.Time.Add(time.Second)) {
			if enc := r.Field("trace"); enc != "" {
				out = append(out, stacktrace.Example{Trace: stacktrace.Decode(enc), Cause: f.Cause})
				break
			}
		}
	}
	return out
}

func runExtensionMLTrace(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	nDays := days(cfg, 21)
	trainScn, err := faultsim.Generate(p, simStart, simStart.Add(time.Duration(nDays)*24*time.Hour), cfg.Seed+89)
	if err != nil {
		return nil, err
	}
	testScn, err := faultsim.Generate(p, simStart, simStart.Add(time.Duration(nDays)*24*time.Hour), cfg.Seed+97)
	if err != nil {
		return nil, err
	}
	train := labelledTraces(trainScn)
	test := labelledTraces(testScn)
	if len(train) == 0 || len(test) == 0 {
		return nil, fmt.Errorf("experiments: no labelled traces for mltrace")
	}
	nb := stacktrace.Train(train)

	score := func(truncateBy int) (ruleAcc, nbAcc float64, n int) {
		var ruleHits, nbHits int
		for _, ex := range test {
			tr := stacktrace.Truncate(ex.Trace, truncateBy)
			if len(tr.Frames) == 0 {
				continue
			}
			n++
			if got := stacktrace.Classify(tr); got.Cause == ex.Cause {
				ruleHits++
			}
			if got, _ := nb.Predict(tr); got == ex.Cause {
				nbHits++
			}
		}
		if n > 0 {
			ruleAcc = float64(ruleHits) / float64(n)
			nbAcc = float64(nbHits) / float64(n)
		}
		return ruleAcc, nbAcc, n
	}
	tbl := report.NewTable("Trace classification: Table IV rules vs learned model",
		"traces", "condition", "rule accuracy", "naive-bayes accuracy")
	fullRule, fullNB, nFull := score(0)
	tbl.AddRow(nFull, "full traces", pct(fullRule), pct(fullNB))
	truncRule, truncNB, nTrunc := score(3)
	tbl.AddRow(nTrunc, "innermost 3 frames lost", pct(truncRule), pct(truncNB))
	return &Result{ID: "extension-mltrace", Title: "ML trace study", Tables: []*report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("trained on %d labelled traces from an independent period", len(train)),
			fmt.Sprintf("full traces: rules %s vs learned %s — the hand-written Table IV rules win when the diagnostic frames are present",
				pct(fullRule), pct(fullNB)),
			fmt.Sprintf("with diagnostic lead frames lost, rules drop to %s while the learned model holds %s — the paper's ML recommendation pays off on partial dumps",
				pct(truncRule), pct(truncNB)),
		}}, nil
}
