package experiments

// Ablations: design-choice studies beyond the paper's artifacts. Each
// uses simulator ground truth to score the pipeline, which the paper
// could not do — validation is this reproduction's added value.

import (
	"fmt"
	"time"

	"hpcfail/internal/core"
	"hpcfail/internal/events"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logparse"
	"hpcfail/internal/logstore"
	"hpcfail/internal/report"
	"hpcfail/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "ablation-window",
		Title: "Confirm-window width vs NHF/NVF classification accuracy",
		Paper: "(ablation) the ±15 min confirm window balances missed links vs spurious ones",
		Run:   runAblationWindow,
	})
	register(Experiment{
		ID:    "ablation-trace",
		Title: "Stack-trace module analysis on/off vs root-cause accuracy",
		Paper: "(ablation) Table IV module analysis is what reveals application origin",
		Run:   runAblationTrace,
	})
	register(Experiment{
		ID:    "ablation-corruption",
		Title: "Log corruption (drops/truncation) vs detection recall",
		Paper: "(ablation) production logs have missing/partial lines — challenge #1",
		Run:   runAblationCorruption,
	})
	register(Experiment{
		ID:    "ablation-predictor",
		Title: "Predictor burst-window and horizon sweep (precision/recall)",
		Paper: "(ablation) the Fig 14 predictor's operating point",
		Run:   runAblationPredictor,
	})
}

// ablationScenario builds the shared ground-truth scenario.
func ablationScenario(cfg Config) (*faultsim.Scenario, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	nDays := days(cfg, 21)
	return faultsim.Generate(p, simStart, simStart.Add(time.Duration(nDays)*24*time.Hour), cfg.Seed+71)
}

// truthNHFOutcome maps ground truth onto the analyzer's outcome space.
func truthNHFOutcome(k faultsim.NHFKind) core.NHFOutcome {
	switch k {
	case faultsim.NHFFailed:
		return core.NHFOutcomeFailed
	case faultsim.NHFPowerOff:
		return core.NHFOutcomePowerOff
	default:
		return core.NHFOutcomeSkipped
	}
}

func runAblationWindow(cfg Config) (*Result, error) {
	scn, err := ablationScenario(cfg)
	if err != nil {
		return nil, err
	}
	store := logstore.New(scn.Records)
	dets := core.Detect(store.All(), core.DefaultConfig())
	truth := map[string]core.NHFOutcome{}
	for _, n := range scn.NHFs {
		truth[n.Node.String()+n.Time.UTC().Format(time.RFC3339Nano)] = truthNHFOutcome(n.Kind)
	}
	tbl := report.NewTable("Ablation — confirm window vs NHF outcome accuracy",
		"window", "NHFs", "accuracy")
	best, bestW := 0.0, time.Duration(0)
	for _, w := range []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute, 30 * time.Minute, 2 * time.Hour} {
		cfgW := core.DefaultConfig()
		cfgW.ConfirmWindow = w
		corr := &core.Correlator{Store: store, Detections: dets, Cfg: cfgW}
		hits, total := 0, 0
		for _, a := range corr.AnalyzeNHFs() {
			want, ok := truth[a.Node.String()+a.Time.UTC().Format(time.RFC3339Nano)]
			if !ok {
				continue
			}
			total++
			if a.Outcome == want {
				hits++
			}
		}
		acc := 0.0
		if total > 0 {
			acc = float64(hits) / float64(total)
		}
		if acc > best {
			best, bestW = acc, w
		}
		tbl.AddRow(w.String(), total, pct(acc))
	}
	return &Result{ID: "ablation-window", Title: "Confirm window sweep", Tables: []*report.Table{tbl},
		Notes: []string{fmt.Sprintf("best accuracy %s at window %s; too-narrow windows miss slow declarations, too-wide ones steal unrelated failures",
			pct(best), bestW)}}, nil
}

func runAblationTrace(cfg Config) (*Result, error) {
	// Trace-only failures (filesystem bugs whose only evidence is the
	// oops modules) are a minority; aggregate several periods so the
	// comparison is out of sampling noise.
	seeds := []uint64{cfg.Seed + 71, cfg.Seed + 72, cfg.Seed + 73}
	if cfg.Quick {
		seeds = seeds[:1]
	}
	var withHits, withoutHits, withClassHits, withoutClassHits, total int
	for _, seed := range seeds {
		p, err := profileFor("S1", cfg)
		if err != nil {
			return nil, err
		}
		nDays := days(cfg, 21)
		scn, err := faultsim.Generate(p, simStart, simStart.Add(time.Duration(nDays)*24*time.Hour), seed)
		if err != nil {
			return nil, err
		}
		// Variant A: full records. Variant B: trace fields stripped —
		// simulating a miner that ignores Call Trace dumps.
		stripped := make([]events.Record, len(scn.Records))
		copy(stripped, scn.Records)
		for i := range stripped {
			if stripped[i].Field("trace") != "" {
				clone := make(map[string]string, len(stripped[i].Fields))
				for k, v := range stripped[i].Fields {
					if k != "trace" {
						clone[k] = v
					}
				}
				stripped[i].Fields = clone
			}
		}
		score := func(recs []events.Record) (cause, class, n int) {
			res := core.Run(logstore.New(recs), core.DefaultConfig())
			for _, d := range res.Diagnoses {
				for _, f := range scn.Failures {
					if f.Node == d.Detection.Node && absDur(f.Time.Sub(d.Detection.Time)) <= 30*time.Second {
						n++
						if d.Cause == f.Cause {
							cause++
						}
						if d.Class == f.Cause.Class() {
							class++
						}
						break
					}
				}
			}
			return cause, class, n
		}
		c1, k1, n1 := score(scn.Records)
		c2, k2, _ := score(stripped)
		withHits += c1
		withClassHits += k1
		withoutHits += c2
		withoutClassHits += k2
		total += n1
	}
	if total == 0 {
		return nil, fmt.Errorf("experiments: no matched failures for ablation-trace")
	}
	acc := func(h int) float64 { return float64(h) / float64(total) }
	tbl := report.NewTable("Ablation — stack-trace module analysis",
		"variant", "matched failures", "cause accuracy", "class accuracy")
	tbl.AddRow("with traces (Table IV analysis)", total, pct(acc(withHits)), pct(acc(withClassHits)))
	tbl.AddRow("traces stripped", total, pct(acc(withoutHits)), pct(acc(withoutClassHits)))
	return &Result{ID: "ablation-trace", Title: "Trace analysis value", Tables: []*report.Table{tbl},
		Notes: []string{
			"the category signatures recover most causes, but module analysis is what separates",
			"application-origin failures that manifest in the kernel/file system (Observation 7)",
			fmt.Sprintf("measured over %d periods: cause accuracy %s -> %s without traces",
				len(seeds), pct(acc(withHits)), pct(acc(withoutHits))),
		}}, nil
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func runAblationPredictor(cfg Config) (*Result, error) {
	scn, err := ablationScenario(cfg)
	if err != nil {
		return nil, err
	}
	store := logstore.New(scn.Records)
	dets := core.Detect(store.All(), core.DefaultConfig())
	// Predictable ground truth: failures whose causes leave precursor
	// bursts (everything except pure app exits and unknowns).
	predictable := 0
	for _, f := range scn.Failures {
		switch f.Cause.String() {
		case "app-exit", "unknown":
		default:
			predictable++
		}
	}
	tbl := report.NewTable("Ablation — predictor operating points",
		"burst window", "horizon", "alarms", "TP", "FP", "precision", "recall vs predictable")
	for _, bw := range []time.Duration{2 * time.Minute, 10 * time.Minute, 30 * time.Minute} {
		for _, hz := range []time.Duration{10 * time.Minute, 30 * time.Minute, 2 * time.Hour} {
			p := core.NewPredictor(store, core.DefaultConfig())
			p.BurstWindow = bw
			p.Horizon = hz
			alarms := p.Alarms(dets)
			tp, fp := 0, 0
			hitNodes := map[string]bool{}
			for _, a := range alarms {
				if a.Hit {
					tp++
					hitNodes[a.Node.String()+a.Time.Truncate(24*time.Hour).String()] = true
				} else {
					fp++
				}
			}
			precision := 0.0
			if tp+fp > 0 {
				precision = float64(tp) / float64(tp+fp)
			}
			recall := 0.0
			if predictable > 0 {
				recall = float64(tp) / float64(predictable)
				if recall > 1 {
					recall = 1
				}
			}
			tbl.AddRow(bw.String(), hz.String(), len(alarms), tp, fp, pct(precision), pct(recall))
		}
	}
	return &Result{ID: "ablation-predictor", Title: "Predictor sweep", Tables: []*report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("%d of %d ground-truth failures are in principle predictable (non-app-exit, non-unknown)",
				predictable, len(scn.Failures)),
			"short burst windows miss slow precursor chains; long horizons convert false alarms into lucky hits —",
			"the 10-minute window with a 30-minute horizon is the evaluation's operating point",
		}}, nil
}

func runAblationCorruption(cfg Config) (*Result, error) {
	scn, err := ablationScenario(cfg)
	if err != nil {
		return nil, err
	}
	sched := topology.SchedulerSlurm
	byStream := map[events.Stream][]string{}
	for _, r := range scn.Records {
		byStream[r.Stream] = append(byStream[r.Stream], loggen.Render(r, sched)...)
	}
	tbl := report.NewTable("Ablation — log corruption vs pipeline quality",
		"drop 1-in-N", "trunc 1-in-N", "parse errors", "records kept", "detection recall")
	for _, c := range []struct{ drop, trunc int }{
		{0, 0}, {50, 0}, {10, 0}, {0, 10}, {10, 10}, {4, 4},
	} {
		var recs []events.Record
		errCount := 0
		for stream, lines := range byStream {
			corrupted := loggen.Corrupt(lines, c.drop, c.trunc)
			got, errs := logparse.ParseLines(stream, sched, corrupted)
			recs = append(recs, got...)
			errCount += len(errs)
		}
		res := core.Run(logstore.New(recs), core.DefaultConfig())
		matched := 0
		for _, f := range scn.Failures {
			for _, d := range res.Detections {
				if d.Node == f.Node && absDur(d.Time.Sub(f.Time)) <= 30*time.Second {
					matched++
					break
				}
			}
		}
		recall := float64(matched) / float64(len(scn.Failures))
		dropLabel, truncLabel := "-", "-"
		if c.drop > 0 {
			dropLabel = fmt.Sprintf("%d", c.drop)
		}
		if c.trunc > 0 {
			truncLabel = fmt.Sprintf("%d", c.trunc)
		}
		tbl.AddRow(dropLabel, truncLabel, errCount, len(recs), pct(recall))
	}
	return &Result{ID: "ablation-corruption", Title: "Corruption robustness", Tables: []*report.Table{tbl},
		Notes: []string{
			"dropping or truncating log lines degrades recall gracefully: terminal events are",
			"redundant enough (shutdown + heartbeat evidence) that moderate loss is survivable",
		}}, nil
}
