package experiments

// Lead-time and false-positive experiments: Figs 13 and 14.

import (
	"fmt"

	"hpcfail/internal/core"
	"hpcfail/internal/report"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Lead-time enhancement from external indicators (4 weeks)",
		Paper: "mean lead times ~5x longer with external faults; 10-28% of failures enhanceable",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "False-positive rate with vs without external correlation",
		Paper: "FPR drops with external correlation (e.g. 30.77% -> 21.43%)",
		Run:   runFig14,
	})
}

func runFig13(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	nWeeks := 4
	if cfg.Quick {
		nWeeks = 2
	}
	_, res, err := simulate(p, nWeeks*7, cfg.Seed+47)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Fig 13 — weekly lead-time enhancement",
		"week", "failures", "enhanceable", "fraction", "mean internal (min)", "mean external (min)", "factor")
	perWeek := make([][]core.Diagnosis, nWeeks)
	for _, d := range res.Diagnoses {
		if w := weekOf(d.Detection.Time); w >= 0 && w < nWeeks {
			perWeek[w] = append(perWeek[w], d)
		}
	}
	minFrac, maxFrac := 1.0, 0.0
	for w, diags := range perWeek {
		s := core.SummarizeLeadTimes(diags)
		frac := s.EnhanceableFraction()
		if frac < minFrac {
			minFrac = frac
		}
		if frac > maxFrac {
			maxFrac = frac
		}
		tbl.AddRow(fmt.Sprintf("W%d", w+1), s.Total, s.Enhanceable, pct(frac),
			fmt.Sprintf("%.1f", s.MeanInternalMin), fmt.Sprintf("%.1f", s.MeanExternalMin),
			fmt.Sprintf("%.1fx", s.MeanFactor))
	}
	all := core.SummarizeLeadTimes(res.Diagnoses)
	return &Result{ID: "fig13", Title: "Lead-time enhancement", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: external indicators extend mean lead time ~5x for the 10-28% of failures that have them;",
			"  the remaining 72-90% (application-triggered) show no external precursors",
			fmt.Sprintf("measured overall: factor %.1fx, enhanceable %s (weekly range %s-%s)",
				all.MeanFactor, pct(all.EnhanceableFraction()), pct(minFrac), pct(maxFrac)),
		}}, nil
}

func runFig14(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	nDays := days(cfg, 21)
	// External-corroborated true positives are a small population per
	// window; aggregate the confusion counts over several independent
	// periods to keep the comparison out of sampling noise.
	seeds := []uint64{cfg.Seed + 53, cfg.Seed + 54, cfg.Seed + 55}
	if cfg.Quick {
		seeds = seeds[:1]
	}
	var cmp core.FPRComparison
	for _, seed := range seeds {
		_, res, err := simulate(p, nDays, seed)
		if err != nil {
			return nil, err
		}
		pred := core.NewPredictor(res.Store, core.DefaultConfig())
		c := core.CompareFPR(pred, res.Detections)
		cmp.WithoutExternal.TP += c.WithoutExternal.TP
		cmp.WithoutExternal.FP += c.WithoutExternal.FP
		cmp.WithoutExternal.FN += c.WithoutExternal.FN
		cmp.WithExternal.TP += c.WithExternal.TP
		cmp.WithExternal.FP += c.WithExternal.FP
		cmp.WithExternal.FN += c.WithExternal.FN
	}
	tbl := report.NewTable("Fig 14 — predictor false-positive rate",
		"mode", "TP", "FP", "FN", "FPR", "precision")
	tbl.AddRow("internal only", cmp.WithoutExternal.TP, cmp.WithoutExternal.FP,
		cmp.WithoutExternal.FN, pct(cmp.WithoutExternal.FalsePositiveRate()),
		pct(cmp.WithoutExternal.Precision()))
	tbl.AddRow("with external correlation", cmp.WithExternal.TP, cmp.WithExternal.FP,
		cmp.WithExternal.FN, pct(cmp.WithExternal.FalsePositiveRate()),
		pct(cmp.WithExternal.Precision()))
	return &Result{ID: "fig14", Title: "False positives", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: requiring external correlation lowers the FPR (30.77% -> 21.43% in the reported sample)",
			fmt.Sprintf("measured over %d periods: %s -> %s", len(seeds),
				pct(cmp.WithoutExternal.FalsePositiveRate()),
				pct(cmp.WithExternal.FalsePositiveRate())),
		}}, nil
}
