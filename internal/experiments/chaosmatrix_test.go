package experiments

import (
	"testing"

	"hpcfail/internal/chaos"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logparse"
	"hpcfail/internal/topology"
)

// TestChaosMatrixDeterministic re-runs the whole matrix and demands
// byte-identical output — the acceptance criterion for the harness.
func TestChaosMatrixDeterministic(t *testing.T) {
	e, ok := ByID("extension-chaos-matrix")
	if !ok {
		t.Fatal("extension-chaos-matrix not registered")
	}
	a, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("chaos matrix not deterministic for a fixed seed")
	}
}

// TestChaosAccountingReconciles checks the ingest ledger against the
// injector's ground truth: under pure drop, every missing line is a
// dropped line, none quarantined; under pure truncation, quarantines
// never exceed the truncation count.
func TestChaosAccountingReconciles(t *testing.T) {
	scn, err := ablationScenario(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sched := topology.SchedulerSlurm
	rendered := loggen.RenderAll(scn.Records, sched)
	baseLines := 0
	for _, lines := range rendered {
		baseLines += len(lines)
	}

	dropInj := chaos.New(chaos.Config{Seed: 5, Drop: 0.2})
	dropped := dropInj.CorruptAll(rendered)
	gotLines, quarantined := 0, 0
	for _, stream := range loggen.AllStreams() {
		lines, ok := dropped[loggen.FileName(stream)]
		if !ok {
			t.Fatalf("drop-only chaos lost stream %s entirely", stream)
		}
		_, srep := logparse.ParseLinesReport(stream, sched, lines)
		gotLines += srep.Lines
		quarantined += srep.Quarantined
	}
	if quarantined != 0 {
		t.Errorf("drop-only corpus quarantined %d lines, want 0", quarantined)
	}
	if baseLines-gotLines != dropInj.Report.Dropped {
		t.Errorf("missing lines %d != injector's dropped %d", baseLines-gotLines, dropInj.Report.Dropped)
	}

	truncInj := chaos.New(chaos.Config{Seed: 5, Truncate: 0.2})
	truncated := truncInj.CorruptAll(rendered)
	quarantined = 0
	for _, stream := range loggen.AllStreams() {
		_, srep := logparse.ParseLinesReport(stream, sched, truncated[loggen.FileName(stream)])
		quarantined += srep.Quarantined
	}
	if truncInj.Report.Truncated == 0 {
		t.Fatal("truncation injected nothing")
	}
	if quarantined > truncInj.Report.Truncated {
		t.Errorf("quarantined %d > truncated %d: parser rejected untouched lines",
			quarantined, truncInj.Report.Truncated)
	}
}

// TestChaosMatrixSurvivesAllModesAt20 is the robustness acceptance
// check, independent of the table: every mode at 20% intensity parses
// and diagnoses without error.
func TestChaosMatrixSurvivesAllModesAt20(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix covered by TestEveryExperimentRuns")
	}
	scn, err := ablationScenario(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sched := topology.SchedulerSlurm
	rendered := loggen.RenderAll(scn.Records, sched)
	for _, mode := range chaos.AllModes() {
		inj := chaos.New(chaos.ForMode(mode, 0.2, 99))
		files := inj.CorruptAll(rendered)
		for _, stream := range loggen.AllStreams() {
			lines, ok := files[loggen.FileName(stream)]
			if !ok {
				continue
			}
			recs, srep := logparse.ParseLinesReport(stream, sched, lines)
			if srep.Parsed != len(recs) {
				t.Fatalf("mode %s stream %s: ledger parsed=%d, records=%d", mode, stream, srep.Parsed, len(recs))
			}
		}
	}
}
