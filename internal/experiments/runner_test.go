package experiments

import (
	"context"
	"sync/atomic"
	"testing"
)

// runnerExps picks a small, fast subset covering figures, tables and
// extensions for runner tests.
func runnerExps(t *testing.T) []Experiment {
	t.Helper()
	var out []Experiment
	for _, id := range []string{"fig12", "fig16", "table5", "swo", "ablation-window"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		out = append(out, e)
	}
	return out
}

// TestRunAllMatchesSequential asserts the worker pool changes neither
// the rendered output of any experiment nor the order outcomes are
// returned in.
func TestRunAllMatchesSequential(t *testing.T) {
	exps := runnerExps(t)
	cfg := quickCfg()
	seq := RunAll(exps, cfg, 1)
	for _, jobs := range []int{0, 2, 7} {
		par := RunAll(exps, cfg, jobs)
		if len(par) != len(seq) {
			t.Fatalf("jobs=%d: %d outcomes, want %d", jobs, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Experiment.ID != exps[i].ID {
				t.Fatalf("jobs=%d: outcome %d is %s, want %s", jobs, i, par[i].Experiment.ID, exps[i].ID)
			}
			if (par[i].Err != nil) != (seq[i].Err != nil) {
				t.Fatalf("jobs=%d: %s error mismatch: %v vs %v", jobs, exps[i].ID, par[i].Err, seq[i].Err)
			}
			if par[i].Err != nil {
				continue
			}
			if got, want := par[i].Result.String(), seq[i].Result.String(); got != want {
				t.Errorf("jobs=%d: %s parallel output diverges from sequential", jobs, exps[i].ID)
			}
		}
	}
}

// TestRunAllPropagatesErrors checks failing experiments surface their
// error in the right slot without disturbing the others.
func TestRunAllPropagatesErrors(t *testing.T) {
	boom := Experiment{ID: "boom", Title: "always fails", Run: func(Config) (*Result, error) {
		return nil, errBoom
	}}
	ok, _ := ByID("fig12")
	out := RunAll([]Experiment{ok, boom, ok}, quickCfg(), 3)
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("healthy experiments errored: %v / %v", out[0].Err, out[2].Err)
	}
	if out[1].Err != errBoom {
		t.Fatalf("outcome 1 error = %v, want errBoom", out[1].Err)
	}
	if out[1].Result != nil {
		t.Error("failed experiment returned a result")
	}
}

// TestRunAllContextCancellation: once the context is cancelled, no new
// experiment starts, in-flight experiments complete, undispatched slots
// carry ctx.Err(), and the pool drains (no goroutine leak — verified by
// the call returning and by counting actual runs).
func TestRunAllContextCancellation(t *testing.T) {
	started := make(chan int64)    // signals an experiment began
	release := make(chan struct{}) // holds in-flight experiments open
	var runs atomic.Int64
	mk := func(id string) Experiment {
		return Experiment{ID: id, Title: id, Run: func(Config) (*Result, error) {
			started <- runs.Add(1)
			<-release
			return &Result{ID: id, Title: id}, nil
		}}
	}
	exps := []Experiment{mk("a"), mk("b"), mk("c"), mk("d"), mk("e"), mk("f")}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []Outcome)
	go func() { done <- RunAllContext(ctx, exps, quickCfg(), 2) }()

	// Two workers pick up the first two experiments; the dispatcher is
	// now blocked offering the third. Cancel, then let the in-flight
	// pair finish.
	<-started
	<-started
	cancel()
	close(release)
	out := <-done

	if got := runs.Load(); got != 2 {
		t.Fatalf("%d experiments ran, want exactly the 2 in flight at cancel", got)
	}
	for i, o := range out {
		if o.Experiment.ID != exps[i].ID {
			t.Fatalf("outcome %d is %s, want %s", i, o.Experiment.ID, exps[i].ID)
		}
	}
	for _, o := range out[:2] {
		if o.Err != nil || o.Result == nil {
			t.Fatalf("in-flight experiment %s: err=%v result=%v, want clean completion", o.Experiment.ID, o.Err, o.Result)
		}
	}
	for _, o := range out[2:] {
		if o.Err != context.Canceled {
			t.Fatalf("undispatched experiment %s: err=%v, want context.Canceled", o.Experiment.ID, o.Err)
		}
		if o.Result != nil {
			t.Fatalf("undispatched experiment %s returned a result", o.Experiment.ID)
		}
	}

	// A pre-cancelled context runs nothing, sequentially or in parallel.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	for _, jobs := range []int{1, 3} {
		for _, o := range RunAllContext(pre, exps, quickCfg(), jobs) {
			if o.Err != context.Canceled {
				t.Fatalf("jobs=%d: %s err=%v, want context.Canceled", jobs, o.Experiment.ID, o.Err)
			}
		}
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("pre-cancelled context still ran experiments (%d total runs)", got)
	}
}

type boomErr struct{}

func (boomErr) Error() string { return "boom" }

var errBoom error = boomErr{}

func BenchmarkRunAllSequential(b *testing.B) {
	exps := benchExps(b)
	cfg := Config{Seed: 42, Scale: 0.08, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, o := range RunAll(exps, cfg, 1) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

func BenchmarkRunAllParallel(b *testing.B) {
	exps := benchExps(b)
	cfg := Config{Seed: 42, Scale: 0.08, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, o := range RunAll(exps, cfg, 0) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

func benchExps(b *testing.B) []Experiment {
	b.Helper()
	var out []Experiment
	for _, id := range []string{"fig12", "fig16", "table5", "swo"} {
		e, ok := ByID(id)
		if !ok {
			b.Fatalf("experiment %q not registered", id)
		}
		out = append(out, e)
	}
	return out
}
