package experiments

import (
	"runtime"
	"sync"
)

// Outcome pairs an experiment with the result (or error) of running it.
type Outcome struct {
	Experiment Experiment
	Result     *Result
	Err        error
}

// RunAll executes the experiments concurrently with at most jobs
// workers (jobs < 1 uses GOMAXPROCS) and returns one Outcome per input
// experiment, in input order regardless of completion order. Every
// experiment builds its own scenario from Config, so runs share no
// mutable state; with jobs == 1 the execution order — not just the
// output order — matches a sequential loop exactly.
func RunAll(exps []Experiment, cfg Config, jobs int) []Outcome {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(exps) {
		jobs = len(exps)
	}
	out := make([]Outcome, len(exps))
	if jobs <= 1 {
		for i, e := range exps {
			res, err := e.Run(cfg)
			out[i] = Outcome{Experiment: e, Result: res, Err: err}
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				e := exps[i]
				res, err := e.Run(cfg)
				out[i] = Outcome{Experiment: e, Result: res, Err: err}
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
