package experiments

import (
	"context"
	"runtime"
	"sync"
)

// Outcome pairs an experiment with the result (or error) of running it.
type Outcome struct {
	Experiment Experiment
	Result     *Result
	Err        error
}

// RunAll executes the experiments concurrently with at most jobs
// workers (jobs < 1 uses GOMAXPROCS) and returns one Outcome per input
// experiment, in input order regardless of completion order. Every
// experiment builds its own scenario from Config, so runs share no
// mutable state; with jobs == 1 the execution order — not just the
// output order — matches a sequential loop exactly.
func RunAll(exps []Experiment, cfg Config, jobs int) []Outcome {
	return RunAllContext(context.Background(), exps, cfg, jobs)
}

// RunAllContext is RunAll under a context: once ctx is done, no further
// experiment is dispatched, in-flight experiments finish (experiments
// are pure compute — abandoning them would leak goroutines), and every
// undispatched slot carries ctx.Err() as its Outcome error. The call
// always returns with the worker pool fully drained.
func RunAllContext(ctx context.Context, exps []Experiment, cfg Config, jobs int) []Outcome {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(exps) {
		jobs = len(exps)
	}
	out := make([]Outcome, len(exps))
	if jobs <= 1 {
		for i, e := range exps {
			if err := ctx.Err(); err != nil {
				out[i] = Outcome{Experiment: e, Err: err}
				continue
			}
			res, err := e.Run(cfg)
			out[i] = Outcome{Experiment: e, Result: res, Err: err}
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				e := exps[i]
				// The dispatch select below can lose the race against a
				// just-fired cancellation; re-check here so nothing
				// starts after ctx is done.
				if err := ctx.Err(); err != nil {
					out[i] = Outcome{Experiment: e, Err: err}
					continue
				}
				res, err := e.Run(cfg)
				out[i] = Outcome{Experiment: e, Result: res, Err: err}
			}
		}()
	}
dispatch:
	for i := range exps {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark this and every later experiment as cancelled; the
			// workers drain whatever was already handed out.
			for j := i; j < len(exps); j++ {
				out[j] = Outcome{Experiment: exps[j], Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return out
}
