package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestExtensionRemediation runs the closed-loop scoring experiment in
// quick mode and asserts the acceptance contract: failures averted > 0
// and a false-action rate reported on both seeded scenarios. Guard
// violations and ledger divergence fail inside the experiment itself
// (it re-verifies the ledger), so a clean Result implies both held.
func TestExtensionRemediation(t *testing.T) {
	e, ok := ByID("extension-remediation")
	if !ok {
		t.Fatal("extension-remediation not registered")
	}
	res, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 2 {
		t.Fatalf("want one table with rows for S1 and S3, got %+v", res.Tables)
	}
	for _, row := range res.Tables[0].Rows {
		system := row[0]
		failures, err1 := strconv.Atoi(row[1])
		averted, err2 := strconv.Atoi(row[2])
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: unparseable counts in row %v", system, row)
		}
		if failures == 0 || averted == 0 {
			t.Errorf("%s: failures=%d averted=%d, want both > 0", system, failures, averted)
		}
		if averted > failures {
			t.Errorf("%s: averted %d exceeds failures %d", system, averted, failures)
		}
		if rate := row[8]; !strings.HasSuffix(rate, "%") {
			t.Errorf("%s: false-action rate column %q not a percentage", system, rate)
		}
	}
	// Determinism: the scored table must reproduce exactly.
	again, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != again.String() {
		t.Error("extension-remediation output is not reproducible")
	}
}
