package experiments

import (
	"strings"
	"testing"
)

// quickCfg runs every experiment at reduced scale/duration.
func quickCfg() Config {
	return Config{Seed: 42, Scale: 0.08, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "table1", "table2", "table3", "table4", "table5",
		"s3breakdown", "swo",
		"ablation-window", "ablation-trace", "ablation-corruption", "ablation-predictor",
		"extension-checkpoint", "extension-recommend", "extension-mltrace",
		"extension-chaos-matrix", "extension-remediation",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestAllSortedNumerically(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if orderKey(all[i-1].ID) > orderKey(all[i].ID) {
			t.Errorf("experiments out of order: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
	// fig3 must precede fig10.
	pos := map[string]int{}
	for i, e := range all {
		pos[e.ID] = i
	}
	if pos["fig3"] > pos["fig10"] {
		t.Error("fig3 should sort before fig10")
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("fig99"); ok {
		t.Error("unknown experiment resolved")
	}
}

// TestEveryExperimentRuns executes the full registry at quick scale and
// sanity-checks the output shape. This is the end-to-end smoke test for
// the whole reproduction harness.
func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Errorf("result ID %q != experiment ID %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 {
				t.Error("no tables produced")
			}
			out := res.String()
			if !strings.Contains(out, res.ID) {
				t.Error("String() missing experiment ID")
			}
			for _, tbl := range res.Tables {
				if len(tbl.Headers) == 0 {
					t.Error("table without headers")
				}
				if tbl.String() == "" {
					t.Error("empty table rendering")
				}
			}
			if len(res.Notes) == 0 {
				t.Error("experiments must note paper targets")
			}
		})
	}
}

func TestDeterministicOutput(t *testing.T) {
	e, _ := ByID("fig12")
	a, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different experiment output")
	}
}

func TestTable5CasesMatch(t *testing.T) {
	e, _ := ByID("table5")
	res, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Tables[0].String()
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("case study mismatch:\n%s", out)
	}
}

func TestFig17ReproducesCounts(t *testing.T) {
	e, _ := ByID("fig17")
	res, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Tables[0].String()
	// J5 and J8 lose all overallocated nodes: 8/8 and 5/5.
	if !strings.Contains(out, "J5") || !strings.Contains(out, "J16") {
		t.Errorf("fig17 rows missing:\n%s", out)
	}
	for _, row := range res.Tables[0].Rows {
		if row[0] == "J5" && (row[1] != "8" || row[2] != "8") {
			t.Errorf("J5 should lose all 8 overallocated nodes: %v", row)
		}
		if row[0] == "J8" && (row[1] != "5" || row[2] != "5") {
			t.Errorf("J8 should lose all 5 overallocated nodes: %v", row)
		}
	}
}

func TestFig11PoweredOffNode(t *testing.T) {
	e, _ := ByID("fig11")
	res, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 16 {
		t.Fatalf("fig11 has %d rows, want 16", len(rows))
	}
	if rows[1][1] != "0.0" {
		t.Errorf("B2 node0 should read 0.0C, got %s", rows[1][1])
	}
	// All other temperatures near 40.
	for i, row := range rows {
		for col := 1; col <= 2; col++ {
			if i == 1 && col == 1 {
				continue
			}
			v := row[col]
			if !strings.HasPrefix(v, "39") && !strings.HasPrefix(v, "40") && !strings.HasPrefix(v, "41") {
				t.Errorf("blade %d node %d temperature %s not near 40C", i, col-1, v)
			}
		}
	}
}
