package experiments

// Benign-error experiments: Figs 10 and 11.

import (
	"fmt"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/faults"
	"hpcfail/internal/report"
	"hpcfail/internal/sedc"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Nodes with errors vs failed nodes over 16 days",
		Paper: "erroring nodes far outnumber failed nodes (<6/day); page-fault locks most common",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Mean CPU temperature of 2 nodes per blade across 16 blades (1 day)",
		Paper: "steady ~40C on all powered nodes; one powered-off node reads 0C",
		Run:   runFig11,
	})
}

func runFig10(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	// Fig 10 samples a quiet period: fewer failures per day.
	p.EpisodesPerDay = 0.25
	p.SinglesPerDay = 1.5
	nDays := days(cfg, 16)
	scn, res, err := simulate(p, nDays, cfg.Seed+29)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Fig 10 — nodes with errors vs failed nodes per day",
		"day", "hw errors", "mce triggers", "lustre I/O", "pagefault locks", "failed")
	countNodes := func(cat string, from, to time.Time) int {
		seen := map[cname.Name]bool{}
		for _, r := range res.Store.CategoryWindow(cat, from, to) {
			if r.Component.IsValid() {
				seen[r.Component] = true
			}
		}
		return len(seen)
	}
	maxFailed, sumRatio, ratioDays := 0, 0.0, 0
	for d := 0; d < nDays; d++ {
		from := simStart.Add(time.Duration(d) * 24 * time.Hour)
		to := from.Add(24 * time.Hour)
		hw := countNodes(faults.CorrectableMemErr.Category(), from, to)
		mce := countNodes(faults.MCE.Category(), from, to)
		lustre := countNodes(faults.LustreIOError.Category(), from, to)
		pfl := countNodes(faults.PageFaultLock.Category(), from, to)
		failed := 0
		for _, det := range res.Detections {
			if !det.Time.Before(from) && det.Time.Before(to) {
				failed++
			}
		}
		if failed > maxFailed {
			maxFailed = failed
		}
		if failed > 0 {
			sumRatio += float64(hw+mce+lustre+pfl) / float64(failed)
			ratioDays++
		}
		tbl.AddRow(fmt.Sprintf("D%d", d+1), hw, mce, lustre, pfl, failed)
	}
	notes := []string{"paper: daily failed nodes < 6 while tens of nodes log errors; more page-fault locks than hardware errors"}
	if ratioDays > 0 {
		notes = append(notes, fmt.Sprintf("measured: erroring/failed node ratio averages %.1fx; max failed/day = %d",
			sumRatio/float64(ratioDays), maxFailed))
	}
	_ = scn
	return &Result{ID: "fig10", Title: "Errors without failures", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

func runFig11(cfg Config) (*Result, error) {
	// Pure sensor simulation: 16 blades in one chassis, 2 sampled nodes
	// each; node 0 of blade B2 is powered off.
	day := simStart
	tbl := report.NewTable("Fig 11 — mean CPU temperature per node (16 blades, 1 day)",
		"blade", "node0 (C)", "node1 (C)")
	offBlade := 1 // "B2" in the paper's 1-indexed naming
	var offMean, onMin, onMax float64
	onMin = 1e9
	for b := 0; b < 16; b++ {
		var means [2]float64
		for n := 0; n < 2; n++ {
			s := sedc.New(cname.Node(0, 0, 0, b, n), sedc.Temperature, cfg.Seed+uint64(b*4+n))
			if b == offBlade && n == 0 {
				s.Profile.PoweredOff = true
			}
			means[n] = s.MeanOver(day, day.Add(24*time.Hour), time.Minute)
			if b == offBlade && n == 0 {
				offMean = means[n]
			} else {
				if means[n] < onMin {
					onMin = means[n]
				}
				if means[n] > onMax {
					onMax = means[n]
				}
			}
		}
		tbl.AddRow(fmt.Sprintf("B%d", b+1), fmt.Sprintf("%.1f", means[0]), fmt.Sprintf("%.1f", means[1]))
	}
	return &Result{ID: "fig11", Title: "CPU temperatures", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: all powered nodes steady near 40C; the powered-off node reads 0C — temperature does not aid root-cause analysis",
			fmt.Sprintf("measured: powered nodes span %.1f-%.1fC; powered-off node mean %.1fC", onMin, onMax, offMean),
		}}, nil
}
