package experiments

// Table reproductions and the extra §III analyses: Tables I, III, IV, V,
// the S3 class breakdown and the SWO share.

import (
	"fmt"
	"time"

	"hpcfail/internal/core"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logstore"
	"hpcfail/internal/report"
	"hpcfail/internal/rng"
	"hpcfail/internal/stacktrace"
	"hpcfail/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "HPC system details",
		Paper: "five systems: four Cray production machines plus one institutional cluster",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Log sources consulted (streams and volumes)",
		Paper: "console/consumer/messages (node internal), controller and ERD (external), scheduler logs",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Fault breakdown: health faults and SEDC warnings",
		Paper: "NHF/NVF/BCHF, heartbeat stops, sensor failures vs temperature/voltage/velocity warnings",
		Run:   runTable3,
	})
	register(Experiment{
		ID:    "table4",
		Title: "Failure causes and stack trace modules",
		Paper: "sleep_on_page, ldlm_bl, dvs_ipc_msg, mce_log, rwsem_down_failed identify origins",
		Run:   runTable4,
	})
	register(Experiment{
		ID:    "table5",
		Title: "Five failure case studies through the pipeline",
		Paper: "root-cause inferences from combined internal+external+job evidence",
		Run:   runTable5,
	})
	register(Experiment{
		ID:    "s3breakdown",
		Title: "S3 failure class shares over 4 months",
		Paper: "hardware 37%, software (kernel+Lustre) 32%, application 31%; 27% memory exhaustion",
		Run:   runS3Breakdown,
	})
	register(Experiment{
		ID:    "swo",
		Title: "System-wide outages vs anomalous node failures",
		Paper: "SWOs contribute < 3% of anomalous failures and are mostly intended/service-related",
		Run:   runSWO,
	})
}

func runTable1(Config) (*Result, error) {
	tbl := report.NewTable("Table I — HPC system details",
		"system", "months", "log GB", "nodes", "type", "interconnect", "scheduler", "fs/os", "processors", "extras")
	for _, p := range topology.Profiles() {
		extras := "-"
		switch {
		case p.HasGPUs:
			extras = "GPUs"
		case p.HasBurstBuffer:
			extras = "Burst Buffer"
		}
		tbl.AddRow(p.ID, p.LogMonths, p.LogSizeGB, p.Nodes, p.Machine,
			p.Fabric.String(), p.Scheduler.String(),
			p.FileSystem+"/"+p.OS, p.Processors, extras)
	}
	return &Result{ID: "table1", Title: "System details", Tables: []*report.Table{tbl},
		Notes: []string{"static reproduction of the study's Table I"}}, nil
}

func runTable2(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	scn, _, err := simulate(p, 7, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	// Count records and rendered bytes per stream for one simulated
	// week — the shape of the paper's Table II inventory.
	type agg struct {
		records int
		bytes   int
	}
	per := map[events.Stream]*agg{}
	for _, r := range scn.Records {
		a := per[r.Stream]
		if a == nil {
			a = &agg{}
			per[r.Stream] = a
		}
		a.records++
		for _, line := range loggen.Render(r, p.Spec.Scheduler) {
			a.bytes += len(line) + 1
		}
	}
	family := func(s events.Stream) string {
		switch {
		case s.Internal():
			return "node internal (p0 directories)"
		case s.External():
			return "external (controller/ERD)"
		default:
			return "service node (scheduler/ALPS)"
		}
	}
	tbl := report.NewTable("Table II — log sources for one simulated S1 week",
		"log file", "family", "records", "approx size")
	for _, s := range loggen.AllStreams() {
		a := per[s]
		if a == nil {
			continue
		}
		tbl.AddRow(loggen.FileName(s), family(s), a.records, fmt.Sprintf("%.1f KiB", float64(a.bytes)/1024))
	}
	return &Result{ID: "table2", Title: "Log sources", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: console/consumer/messages give node-internal events; controller and ERD logs carry blade/cabinet health and SEDC data; Slurm/Torque logs give job events",
			"the paper's systems produced 3.1-150 GB over months; the simulator reproduces the same streams at reduced volume",
		}}, nil
}

func runTable3(Config) (*Result, error) {
	tbl := report.NewTable("Table III — fault breakdown", "health faults", "SEDC warnings")
	hf := faults.HealthFaultTypes()
	sw := faults.SEDCWarningTypes()
	n := len(hf)
	if len(sw) > n {
		n = len(sw)
	}
	for i := 0; i < n; i++ {
		a, b := "", ""
		if i < len(hf) {
			a = hf[i].Category()
		}
		if i < len(sw) {
			b = sw[i].Category()
		}
		tbl.AddRow(a, b)
	}
	return &Result{ID: "table3", Title: "Fault taxonomy", Tables: []*report.Table{tbl},
		Notes: []string{"controller health faults (column 1) vs SEDC sensor warnings (column 2)"}}, nil
}

func runTable4(cfg Config) (*Result, error) {
	tbl := report.NewTable("Table IV — failure causes and stack modules",
		"cause", "origin layer", "diagnostic symbol", "example trace head")
	r := rng.New(cfg.Seed)
	for _, c := range []faults.Cause{
		faults.CauseSegFault, faults.CauseOOM, faults.CauseMCE,
		faults.CauseFilesystemBug, faults.CauseKernelBug,
		faults.CauseHungTask, faults.CauseCPUStall,
	} {
		tr := stacktrace.Synthesize(c, r)
		cl := stacktrace.Classify(tr)
		head := ""
		for i, f := range tr.Frames {
			if i >= 3 {
				break
			}
			if i > 0 {
				head += " <- "
			}
			head += f.Function
		}
		tbl.AddRow(c.String(), cl.Origin.String(), cl.KeySymbol, head)
	}
	return &Result{ID: "table4", Title: "Stack modules", Tables: []*report.Table{tbl},
		Notes: []string{"sleep_on_page and ldlm_bl are job-triggered; dvs_ipc modules indicate an application-affected file system"}}, nil
}

func runTable5(cfg Config) (*Result, error) {
	cases := faultsim.BuildCaseStudies(simStart.Add(12*time.Hour), cfg.Seed+59)
	tbl := report.NewTable("Table V — case studies through the pipeline",
		"case", "failures", "expected cause", "inferred cause", "app-triggered", "ext. indicators", "verdict")
	var notes []string
	for _, cs := range cases {
		res := core.Run(logstore.New(cs.Scenario.Records), core.DefaultConfig())
		inferred := faults.CauseUnknown
		app := false
		ext := false
		if len(res.Diagnoses) > 0 {
			// Majority cause across the case's failures.
			counts := map[faults.Cause]int{}
			for _, d := range res.Diagnoses {
				counts[d.Cause]++
				if d.AppTriggered {
					app = true
				}
				if len(d.ExternalIndicators) > 0 {
					ext = true
				}
			}
			best := -1
			for c, n := range counts {
				if n > best || (n == best && c < inferred) {
					best, inferred = n, c
				}
			}
		}
		verdict := "MATCH"
		if inferred != cs.ExpectedCause || app != cs.ExpectAppTriggered || ext != cs.ExpectExternalIndicators {
			verdict = "MISMATCH"
		}
		tbl.AddRow(cs.Name, len(res.Detections), cs.ExpectedCause.String(), inferred.String(),
			app, ext, verdict)
		notes = append(notes, fmt.Sprintf("%s: %s", cs.Name, cs.Notes))
	}
	return &Result{ID: "table5", Title: "Case studies", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

func runS3Breakdown(cfg Config) (*Result, error) {
	p, err := profileFor("S3", cfg)
	if err != nil {
		return nil, err
	}
	nDays := days(cfg, 120)
	// Large application episodes make single-window class shares noisy
	// (few episodes dominate); average over several seeds, as the
	// paper's 4-month aggregation effectively does.
	seeds := []uint64{cfg.Seed + 61, cfg.Seed + 62, cfg.Seed + 63, cfg.Seed + 64}
	if cfg.Quick {
		seeds = seeds[:2]
	}
	shares := map[string]float64{}
	memExhaustion, total := 0, 0
	for _, seed := range seeds {
		_, res, err := simulate(p, nDays, seed)
		if err != nil {
			return nil, err
		}
		for _, d := range res.Diagnoses {
			total++
			// The paper counts Lustre bugs with software.
			switch d.Class {
			case faults.ClassHardware:
				shares["hardware"]++
			case faults.ClassSoftware, faults.ClassFilesystem:
				shares["software (incl. Lustre)"]++
			case faults.ClassApplication:
				shares["application"]++
			default:
				shares["unknown"]++
			}
			if d.Cause == faults.CauseOOM {
				memExhaustion++
			}
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("experiments: no failures diagnosed for s3breakdown")
	}
	for k := range shares {
		shares[k] = shares[k] / float64(total) * 100
	}
	tbl := report.Bars("S3 — failure class shares over 4 months (%)", shares, "% failures")
	return &Result{ID: "s3breakdown", Title: "S3 class shares", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: hardware 37%, software 32%, application 31%; 27% involve memory exhaustion",
			fmt.Sprintf("measured: memory-exhaustion share %s over %d failures",
				pct(float64(memExhaustion)/float64(total)), total),
		}}, nil
}

func runSWO(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	p.SWOsPerMonth = 0.5
	nDays := days(cfg, 180)
	scn, res, err := simulate(p, nDays, cfg.Seed+67)
	if err != nil {
		return nil, err
	}
	anomalous := len(res.Detections)
	share := 0.0
	if anomalous+scn.SWOCount > 0 {
		share = float64(scn.SWOCount) / float64(anomalous+scn.SWOCount)
	}
	tbl := report.NewTable("System-wide outages vs anomalous failures",
		"months", "SWOs", "anomalous node failures", "SWO share")
	tbl.AddRow(nDays/30, scn.SWOCount, anomalous, pct(share))
	return &Result{ID: "swo", Title: "SWO share", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: SWOs are <3% of anomalous failures and mostly intended/service-related — the pipeline excludes them via the scheduled-shutdown intent",
			fmt.Sprintf("measured share: %s", pct(share)),
		}}, nil
}
