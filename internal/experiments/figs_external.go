package experiments

// External-influence experiments: Figs 5, 6, 7, 8, 9.

import (
	"fmt"
	"time"

	"hpcfail/internal/core"
	"hpcfail/internal/faults"
	"hpcfail/internal/report"
	"hpcfail/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "NVF and NHF correspondence with node failures (5 months)",
		Paper: "NVF: 67-97% correspond to failures; NHF: 21-64% (~43% mean)",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "NHF breakdown over 7 weeks (failed / power-off / skipped)",
		Paper: "most NHFs in W1/W4 were failures; >50% fail in most weeks",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Failures on blades/cabinets with health faults (2 months)",
		Paper: "23-59% of failures on faulty blades; 19-58% on faulty cabinets",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Unique blades with SEDC warnings over a week (S1)",
		Paper: "unique blade counts 5-226 per warning type; 24-240 components with health faults",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Hourly BC-CC warning frequency on tracked blades (S2, 1 day)",
		Paper: "blades 1, 5, 8 exceed 1400 mean daily warnings; blade 7 stops mid-day",
		Run:   runFig9,
	})
}

func runFig5(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	months := 5
	if cfg.Quick {
		months = 2
	}
	nDays := months * 30
	_, res, err := simulate(p, nDays, cfg.Seed+11)
	if err != nil {
		return nil, err
	}
	corr := res.Correlator(core.DefaultConfig())
	nvfs := corr.AnalyzeNVFs()
	nhfs := corr.AnalyzeNHFs()

	tbl := report.NewTable("Fig 5 — monthly NVF/NHF failure correspondence",
		"month", "NVFs", "NVF->failure", "NHFs", "NHF->failure")
	monthIdx := func(t time.Time) int { return int(t.Sub(simStart) / (30 * 24 * time.Hour)) }
	type tally struct{ nvfT, nvfF, nhfT, nhfF int }
	per := make([]tally, months)
	for _, a := range nvfs {
		if m := monthIdx(a.Time); m >= 0 && m < months {
			per[m].nvfT++
			if a.Failed {
				per[m].nvfF++
			}
		}
	}
	for _, a := range nhfs {
		if m := monthIdx(a.Time); m >= 0 && m < months {
			per[m].nhfT++
			if a.Outcome == core.NHFOutcomeFailed {
				per[m].nhfF++
			}
		}
	}
	totalNVF, totalNVFF, totalNHF, totalNHFF := 0, 0, 0, 0
	for m, t := range per {
		nvfPct, nhfPct := "-", "-"
		if t.nvfT > 0 {
			nvfPct = pct(float64(t.nvfF) / float64(t.nvfT))
		}
		if t.nhfT > 0 {
			nhfPct = pct(float64(t.nhfF) / float64(t.nhfT))
		}
		tbl.AddRow(fmt.Sprintf("M%d", m+1), t.nvfT, nvfPct, t.nhfT, nhfPct)
		totalNVF += t.nvfT
		totalNVFF += t.nvfF
		totalNHF += t.nhfT
		totalNHFF += t.nhfF
	}
	notes := []string{"paper: NVFs rare but 67-97% failure-linked; NHFs ~43% failure-linked on average"}
	if totalNVF > 0 {
		notes = append(notes, fmt.Sprintf("measured NVF correspondence %s over %d NVFs",
			pct(float64(totalNVFF)/float64(totalNVF)), totalNVF))
	}
	if totalNHF > 0 {
		notes = append(notes, fmt.Sprintf("measured NHF correspondence %s over %d NHFs",
			pct(float64(totalNHFF)/float64(totalNHF)), totalNHF))
	}
	return &Result{ID: "fig5", Title: "NVF/NHF correspondence", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

func runFig6(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	nWeeks := 7
	if cfg.Quick {
		nWeeks = 3
	}
	_, res, err := simulate(p, nWeeks*7, cfg.Seed+13)
	if err != nil {
		return nil, err
	}
	corr := res.Correlator(core.DefaultConfig())
	tbl := report.NewTable("Fig 6 — weekly NHF outcome breakdown",
		"week", "NHFs", "failed", "power-off", "skipped", "failed share")
	counts := make([][3]int, nWeeks)
	for _, a := range corr.AnalyzeNHFs() {
		w := weekOf(a.Time)
		if w < 0 || w >= nWeeks {
			continue
		}
		counts[w][int(a.Outcome)]++
	}
	for w, c := range counts {
		total := c[0] + c[1] + c[2]
		share := "-"
		if total > 0 {
			share = pct(float64(c[0]) / float64(total))
		}
		tbl.AddRow(fmt.Sprintf("W%d", w+1), total, c[0], c[1], c[2], share)
	}
	return &Result{ID: "fig6", Title: "NHF breakdown", Tables: []*report.Table{tbl},
		Notes: []string{"paper: failures dominate some weeks; >50% of NHFs fail in most weeks; non-failing NHFs are power-offs or skipped beats"}}, nil
}

func runFig7(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	nDays := days(cfg, 60)
	_, res, err := simulate(p, nDays, cfg.Seed+17)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Fig 7 — failures on components with health faults",
		"window", "failures", "on faulty blades", "on faulty cabinets")
	// Two-week buckets reproduce the paper's range presentation.
	bucket := 14 * 24 * time.Hour
	for from := simStart; from.Before(simStart.Add(time.Duration(nDays) * 24 * time.Hour)); from = from.Add(bucket) {
		to := from.Add(bucket)
		var dets []core.Detection
		for _, d := range res.Detections {
			if !d.Time.Before(from) && d.Time.Before(to) {
				dets = append(dets, d)
			}
		}
		sub := &core.Correlator{Store: res.Store, Detections: dets, Cfg: core.DefaultConfig()}
		blade, cab := sub.BladeCabinetCorrelation()
		tbl.AddRow(from.Format("01-02")+".."+to.Format("01-02"), len(dets), pct(blade), pct(cab))
	}
	corr := res.Correlator(core.DefaultConfig())
	blade, cab := corr.BladeCabinetCorrelation()
	return &Result{ID: "fig7", Title: "Blade/cabinet fault correlation", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: 23-59% of failures on faulty blades, 19-58% on faulty cabinets — weak correlation",
			fmt.Sprintf("measured overall: blades %s, cabinets %s", pct(blade), pct(cab)),
		}}, nil
}

func runFig8(cfg Config) (*Result, error) {
	p, err := profileFor("S1", cfg)
	if err != nil {
		return nil, err
	}
	scn, res, err := simulate(p, 7, cfg.Seed+19)
	if err != nil {
		return nil, err
	}
	weekEnd := simStart.Add(7 * 24 * time.Hour)
	tbl := report.NewTable("Fig 8 — unique blades with SEDC warnings (1 week, S1)",
		"warning type", "unique blades")
	for _, typ := range faults.SEDCWarningTypes() {
		n := core.UniqueWarningComponents(res.Store, typ.Category(), simStart, weekEnd)
		tbl.AddRow(typ.Category(), n)
	}
	// Cumulative components with health faults.
	seen := map[string]bool{}
	for _, typ := range faults.HealthFaultTypes() {
		for _, r := range res.Store.CategoryWindow(typ.Category(), simStart, weekEnd) {
			if r.Component.IsValid() {
				seen[r.Component.String()] = true
			}
		}
	}
	_ = scn
	return &Result{ID: "fig8", Title: "SEDC warning spread", Tables: []*report.Table{tbl},
		Notes: []string{
			"paper: unique blade counts per warning type range 5-226; 24-240 components with health faults per week",
			fmt.Sprintf("measured: %d distinct components logged health faults this week", len(seen)),
		}}, nil
}

func runFig9(cfg Config) (*Result, error) {
	p, err := profileFor("S2", cfg)
	if err != nil {
		return nil, err
	}
	// Fig 9 is about the flood blades: re-enable them.
	p.FloodBladeIdx = []int{1, 5, 8}
	p.FloodStopIdx = 7
	scn, res, err := simulate(p, 1, cfg.Seed+23)
	if err != nil {
		return nil, err
	}
	blades := scn.Cluster.Blades()
	tracked := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	tbl := report.NewTable("Fig 9 — per-blade SEDC warning counts by hour (S2, 1 day)",
		"blade", "total", "00-06h", "06-12h", "12-18h", "18-24h")
	var notes []string
	for _, bi := range tracked {
		if bi >= len(blades) {
			continue
		}
		var ts []time.Time
		for _, typ := range faults.SEDCWarningTypes() {
			for _, r := range res.Store.CategoryWindow(typ.Category(), simStart, simStart.Add(24*time.Hour)) {
				if r.Component == blades[bi] {
					ts = append(ts, r.Time)
				}
			}
		}
		hours := stats.BucketByHour(ts)
		q := func(a, b int) int {
			n := 0
			for h := a; h < b; h++ {
				n += hours[h]
			}
			return n
		}
		tbl.AddRow(fmt.Sprintf("blade %d", bi), len(ts), q(0, 6), q(6, 12), q(12, 18), q(18, 24))
		if bi == 7 && len(ts) > 0 && q(18, 24) == 0 && q(12, 18) < q(6, 12) {
			notes = append(notes, "measured: blade 7's flood stops mid-day, as in the paper")
		}
	}
	return &Result{ID: "fig9", Title: "Flooding blade warnings", Tables: []*report.Table{tbl},
		Notes: append([]string{"paper: blades 1, 5, 8 log >1400 recurring warnings/day; blade 7 stops after a certain hour"}, notes...)}, nil
}
