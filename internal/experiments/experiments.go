// Package experiments regenerates every table and figure of the paper's
// evaluation from simulated systems run through the full diagnosis
// pipeline. Each experiment is registered with an ID matching the
// paper artifact ("fig3" … "fig19", "table1" …, "s3breakdown", "swo")
// and prints the same rows/series the paper reports, alongside the
// paper's target numbers, so EXPERIMENTS.md can record
// paper-vs-measured.
//
// Experiments run the pipeline over generator records directly (the
// text render→parse round trip is exercised exhaustively by the
// logparse and core test suites; cmd/diagnose demonstrates the
// file-based path end to end).
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hpcfail/internal/core"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/logstore"
	"hpcfail/internal/report"
)

// simStart anchors all simulations in the paper's log era (2014-2016).
var simStart = time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)

// Config tunes experiment execution.
type Config struct {
	// Seed drives all randomness; same seed, same output.
	Seed uint64
	// Scale multiplies cluster sizes (1.0 = the paper's node counts).
	// Statistics are episode-driven, so downscaled clusters preserve
	// the reported shapes while running much faster.
	Scale float64
	// Quick shortens simulated durations for tests and benchmarks.
	Quick bool
}

// DefaultConfig is the cmd/experiments default: quarter-scale clusters,
// full durations.
func DefaultConfig() Config {
	return Config{Seed: 42, Scale: 0.25}
}

// Result is one experiment's rendered output.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	// Notes records paper targets and measured headline numbers.
	Notes []string
}

// String renders the result for the terminal.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  - %s\n", n)
	}
	return b.String()
}

// Markdown renders the result as a markdown section.
func (r *Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s: %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Markdown())
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// CSV renders the result's tables as CSV blocks separated by blank
// lines (notes are omitted — CSV is for the data).
func (r *Result) CSV() string {
	var b strings.Builder
	for i, t := range r.Tables {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(t.CSV())
	}
	return b.String()
}

// Experiment couples an artifact ID with its runner.
type Experiment struct {
	ID    string
	Title string
	// Paper summarises the paper's reported numbers for the artifact.
	Paper string
	Run   func(Config) (*Result, error)
}

// registry is populated by the per-artifact files' init functions.
var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every experiment sorted by ID (figures first, then
// tables, then the extra analyses).
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts fig3 < fig10 correctly.
func orderKey(id string) string {
	num := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			num = num*10 + int(c-'0')
		}
	}
	prefix := strings.TrimRight(id, "0123456789")
	return fmt.Sprintf("%s%04d", prefix, num)
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// profileFor builds a scaled system profile for an experiment. Flood
// blades are disabled by default (only the SEDC experiments need their
// volume); experiments re-enable what they need.
func profileFor(system string, cfg Config) (faultsim.Profile, error) {
	p, err := faultsim.DefaultProfile(system)
	if err != nil {
		return p, err
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = 0.25
	}
	n := int(float64(p.Spec.Nodes) * scale)
	if n < 192 {
		n = 192
	}
	p.Spec.Nodes = n
	if p.Spec.CabinetCols > 2 {
		p.Spec.CabinetCols = 2
	}
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	// Lighten the background workload at scale; job statistics stay
	// proportional.
	p.Workload.MeanInterarrival = time.Duration(float64(p.Workload.MeanInterarrival) / scale * 0.25)
	if p.Workload.MeanInterarrival < time.Minute {
		p.Workload.MeanInterarrival = time.Minute
	}
	return p, nil
}

// days shortens durations under Quick.
func days(cfg Config, full int) int {
	if cfg.Quick && full > 7 {
		return 7
	}
	return full
}

// simulate runs the generator and the pipeline.
func simulate(p faultsim.Profile, nDays int, seed uint64) (*faultsim.Scenario, *core.Result, error) {
	scn, err := faultsim.Generate(p, simStart, simStart.Add(time.Duration(nDays)*24*time.Hour), seed)
	if err != nil {
		return nil, nil, err
	}
	res := core.Run(logstore.NewOwned(scn.Records), core.DefaultConfig())
	return scn, res, nil
}

// weekOf returns the zero-based week index of t relative to simStart.
func weekOf(t time.Time) int {
	return int(t.Sub(simStart) / (7 * 24 * time.Hour))
}

// pct formats a fraction for notes.
func pct(f float64) string { return report.Pct(f) }
