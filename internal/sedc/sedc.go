// Package sedc simulates the Cray System Environmental Data Collections:
// the blade- and cabinet-controller sensor scans (temperature, voltage,
// fan speed, air velocity) whose threshold violations surface as
// ec_sedc_warnings in the event-router stream.
//
// The paper's Observation 3 hinges on the *statistics* of this signal:
// SEDC warnings are frequent, recur in floods on a few miscalibrated
// blades (Fig 9: > 1400 mean daily warnings), mostly report values
// falling below the minimum allowed threshold, and are overwhelmingly
// benign — healthy blades warn as often as blades that later host
// failures. The simulator reproduces those statistics; healthy CPU
// temperatures sit near 40 °C (Fig 11) with powered-off nodes reading
// 0 °C.
//
// Readings are deterministic in (sensor, time): the noise term is drawn
// from a generator seeded by a hash of the component name, sensor kind
// and timestamp, so any reading can be recomputed independently of scan
// order.
package sedc

import (
	"fmt"
	"math"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/rng"
)

// Kind identifies a sensor type.
type Kind int

const (
	// Temperature is a CPU/board temperature sensor (°C).
	Temperature Kind = iota
	// Voltage is a rail voltage sensor (V).
	Voltage
	// FanSpeed is a fan tachometer (RPM).
	FanSpeed
	// AirVelocity is a cabinet airflow sensor (m/s).
	AirVelocity
)

var kindNames = [...]string{"temperature", "voltage", "fan_speed", "air_velocity"}
var kindUnits = [...]string{"C", "V", "RPM", "m/s"}

// String returns the snake_case sensor kind name.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Unit returns the measurement unit.
func (k Kind) Unit() string {
	if k >= 0 && int(k) < len(kindUnits) {
		return kindUnits[k]
	}
	return "?"
}

// ParseKind inverts String.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return Temperature, fmt.Errorf("sedc: unknown sensor kind %q", s)
}

// AllKinds returns the sensor kinds in declaration order.
func AllKinds() []Kind {
	return []Kind{Temperature, Voltage, FanSpeed, AirVelocity}
}

// Threshold is the allowed operating band; readings outside it raise
// SEDC warnings.
type Threshold struct {
	Min, Max float64
}

// Contains reports whether v lies inside the band.
func (t Threshold) Contains(v float64) bool { return v >= t.Min && v <= t.Max }

// DefaultThreshold returns the platform operating band per sensor kind.
func DefaultThreshold(k Kind) Threshold {
	switch k {
	case Temperature:
		return Threshold{Min: 10, Max: 75}
	case Voltage:
		return Threshold{Min: 0.95, Max: 1.30}
	case FanSpeed:
		return Threshold{Min: 2000, Max: 9000}
	case AirVelocity:
		return Threshold{Min: 1.0, Max: 12.0}
	default:
		return Threshold{}
	}
}

// DefaultBaseline returns the healthy operating point per sensor kind
// (Fig 11: CPU temperature ≈ 40 °C).
func DefaultBaseline(k Kind) (baseline, noise float64) {
	switch k {
	case Temperature:
		return 40, 1.2
	case Voltage:
		return 1.10, 0.01
	case FanSpeed:
		return 4500, 150
	case AirVelocity:
		return 6.0, 0.4
	default:
		return 0, 0
	}
}

// Profile parameterises one sensor's behaviour.
type Profile struct {
	// Baseline is the mean reading.
	Baseline float64
	// Noise is the Gaussian noise standard deviation.
	Noise float64
	// DiurnalAmp adds a sinusoidal daily swing of this amplitude
	// (machine-room load cycle).
	DiurnalAmp float64
	// PoweredOff forces readings to exactly zero (the Fig 11 B2 node).
	PoweredOff bool
}

// Sensor is one physical sensor on a component.
type Sensor struct {
	// Component is the blade or cabinet (or node, for CPU temperature)
	// carrying the sensor.
	Component cname.Name
	// Kind is the sensor type.
	Kind Kind
	// Profile describes its behaviour.
	Profile Profile
	// Threshold is its warning band.
	Threshold Threshold
	// Seed decorrelates sensors with identical profiles.
	Seed uint64
}

// New returns a healthy sensor for the component with platform-default
// profile and thresholds.
func New(comp cname.Name, k Kind, seed uint64) *Sensor {
	b, n := DefaultBaseline(k)
	return &Sensor{
		Component: comp,
		Kind:      k,
		Profile:   Profile{Baseline: b, Noise: n, DiurnalAmp: n / 2},
		Threshold: DefaultThreshold(k),
		Seed:      seed,
	}
}

// hashReading derives a deterministic per-(sensor, time) seed.
func (s *Sensor) hashReading(t time.Time) uint64 {
	h := s.Seed ^ 0xcbf29ce484222325
	for _, b := range []byte(s.Component.String()) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	h = (h ^ uint64(s.Kind)) * 0x100000001b3
	h = (h ^ uint64(t.Unix())) * 0x100000001b3
	return h
}

// ReadingAt returns the sensor value at time t. Deterministic in
// (sensor identity, t).
func (s *Sensor) ReadingAt(t time.Time) float64 {
	if s.Profile.PoweredOff {
		return 0
	}
	r := rng.New(s.hashReading(t))
	v := s.Profile.Baseline + r.Norm(0, s.Profile.Noise)
	if s.Profile.DiurnalAmp != 0 {
		dayFrac := float64(t.UTC().Hour()*3600+t.UTC().Minute()*60+t.UTC().Second()) / 86400
		v += s.Profile.DiurnalAmp * math.Sin(2*math.Pi*dayFrac)
	}
	return v
}

// Violates reports whether the reading at t falls outside the threshold
// band, and in which direction ("below" carries the paper's dominant
// case of readings under the minimum allowed value).
func (s *Sensor) Violates(t time.Time) (violated, below bool, value float64) {
	v := s.ReadingAt(t)
	if v < s.Threshold.Min {
		return true, true, v
	}
	if v > s.Threshold.Max {
		return true, false, v
	}
	return false, false, v
}

// Reading is one timestamped sensor measurement.
type Reading struct {
	Time      time.Time
	Component cname.Name
	Kind      Kind
	Value     float64
}

// Series samples the sensor over [start, end) at the given interval.
func (s *Sensor) Series(start, end time.Time, interval time.Duration) []Reading {
	if interval <= 0 || !start.Before(end) {
		return nil
	}
	var out []Reading
	for t := start; t.Before(end); t = t.Add(interval) {
		out = append(out, Reading{Time: t, Component: s.Component, Kind: s.Kind, Value: s.ReadingAt(t)})
	}
	return out
}

// MeanOver returns the mean reading over [start, end) sampled at the
// interval — the Fig 11 per-node daily mean CPU temperature.
func (s *Sensor) MeanOver(start, end time.Time, interval time.Duration) float64 {
	series := s.Series(start, end, interval)
	if len(series) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range series {
		sum += r.Value
	}
	return sum / float64(len(series))
}

// Miscalibrate shifts the sensor so its baseline sits below the minimum
// threshold by the given margin, producing the paper's incessant benign
// "below minimum allowed" warning floods (Fig 9 blades 1, 5, 8).
func (s *Sensor) Miscalibrate(margin float64) {
	s.Profile.Baseline = s.Threshold.Min - margin
	s.Profile.DiurnalAmp = 0
}

// IsFlooding reports whether the sensor's baseline is outside its
// threshold band, i.e. nearly every scan warns.
func (s *Sensor) IsFlooding() bool {
	return !s.Threshold.Contains(s.Profile.Baseline)
}
