package sedc

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"hpcfail/internal/cname"
)

var testComp = cname.MustParse("c0-0c0s1n2")

func TestKindNames(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("kind round trip %v: %v, %v", k, got, err)
		}
		if k.Unit() == "?" {
			t.Errorf("%v has no unit", k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind should reject unknown")
	}
	if Kind(99).String() == "" || Kind(99).Unit() != "?" {
		t.Error("unknown kind rendering")
	}
}

func TestThresholdContains(t *testing.T) {
	th := Threshold{Min: 10, Max: 75}
	if !th.Contains(40) || th.Contains(9.9) || th.Contains(75.1) {
		t.Error("Contains wrong")
	}
}

func TestDefaultTemperatureNear40(t *testing.T) {
	s := New(testComp, Temperature, 1)
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	mean := s.MeanOver(start, start.Add(24*time.Hour), time.Minute)
	if math.Abs(mean-40) > 1 {
		t.Errorf("daily mean temperature = %v, want ~40", mean)
	}
}

func TestPoweredOffReadsZero(t *testing.T) {
	s := New(testComp, Temperature, 1)
	s.Profile.PoweredOff = true
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	if got := s.ReadingAt(start); got != 0 {
		t.Errorf("powered-off reading = %v", got)
	}
	if got := s.MeanOver(start, start.Add(time.Hour), time.Minute); got != 0 {
		t.Errorf("powered-off mean = %v", got)
	}
}

func TestDeterministicReadings(t *testing.T) {
	s1 := New(testComp, Temperature, 7)
	s2 := New(testComp, Temperature, 7)
	at := time.Date(2015, 5, 1, 12, 34, 56, 0, time.UTC)
	if s1.ReadingAt(at) != s2.ReadingAt(at) {
		t.Error("identical sensors disagree")
	}
	// Different seeds decorrelate.
	s3 := New(testComp, Temperature, 8)
	if s1.ReadingAt(at) == s3.ReadingAt(at) {
		t.Error("different seeds should differ")
	}
	// Reading is independent of call order.
	a := s1.ReadingAt(at.Add(time.Minute))
	b := s1.ReadingAt(at)
	if b != s2.ReadingAt(at) {
		t.Error("call order changed a reading")
	}
	_ = a
}

func TestHealthySensorRarelyViolates(t *testing.T) {
	s := New(testComp, Temperature, 2)
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	violations := 0
	const n = 1440
	for i := 0; i < n; i++ {
		if v, _, _ := s.Violates(start.Add(time.Duration(i) * time.Minute)); v {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("healthy sensor violated %d/%d scans", violations, n)
	}
}

func TestMiscalibratedSensorFloods(t *testing.T) {
	s := New(testComp, Voltage, 3)
	s.Miscalibrate(0.05)
	if !s.IsFlooding() {
		t.Fatal("miscalibrated sensor should flood")
	}
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	below := 0
	const n = 1440
	for i := 0; i < n; i++ {
		v, b, _ := s.Violates(start.Add(time.Duration(i) * time.Minute))
		if v && b {
			below++
		}
	}
	// The paper: flooding blades see >1400 warnings/day, dominated by
	// "below minimum" readings.
	if below < 1400 {
		t.Errorf("flooding sensor produced only %d below-min warnings/day", below)
	}
}

func TestViolatesDirection(t *testing.T) {
	s := New(testComp, Temperature, 4)
	s.Profile.Baseline = 100
	s.Profile.Noise = 0.1
	s.Profile.DiurnalAmp = 0
	v, below, val := s.Violates(time.Unix(1000, 0))
	if !v || below || val < 99 {
		t.Errorf("hot sensor: v=%v below=%v val=%v", v, below, val)
	}
}

func TestSeriesShape(t *testing.T) {
	s := New(testComp, FanSpeed, 5)
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	series := s.Series(start, start.Add(time.Hour), 10*time.Minute)
	if len(series) != 6 {
		t.Fatalf("series length = %d, want 6", len(series))
	}
	for i, r := range series {
		if r.Kind != FanSpeed || r.Component != testComp {
			t.Errorf("series[%d] metadata wrong: %+v", i, r)
		}
	}
	if s.Series(start, start, time.Minute) != nil {
		t.Error("empty range should give nil")
	}
	if s.Series(start, start.Add(time.Hour), 0) != nil {
		t.Error("zero interval should give nil")
	}
}

func TestDefaultsPerKind(t *testing.T) {
	for _, k := range AllKinds() {
		th := DefaultThreshold(k)
		b, n := DefaultBaseline(k)
		if !th.Contains(b) {
			t.Errorf("%v baseline %v outside default band %+v", k, b, th)
		}
		if n <= 0 {
			t.Errorf("%v noise = %v", k, n)
		}
		// Healthy baseline should sit well inside the band (> 3 sigma
		// from both edges) so violations are rare.
		if b-3*n < th.Min || b+3*n > th.Max {
			t.Errorf("%v baseline too close to band edge", k)
		}
	}
}

// Property: readings are reproducible and violations consistent with the
// reported value for arbitrary timestamps.
func TestQuickViolationConsistent(t *testing.T) {
	s := New(testComp, AirVelocity, 11)
	f := func(unix int32) bool {
		at := time.Unix(int64(unix), 0)
		v, below, val := s.Violates(at)
		switch {
		case below && val >= s.Threshold.Min:
			return false
		case v && !below && val <= s.Threshold.Max:
			return false
		case !v && !s.Threshold.Contains(val):
			return false
		}
		return val == s.ReadingAt(at)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
