package textmatch

import (
	"math/rand"
	"strings"
	"testing"
)

// findFirstNaive is the reference implementation the matcher must agree
// with: first pattern in list order that is a substring.
func findFirstNaive(patterns []string, s string) int {
	for i, p := range patterns {
		if strings.Contains(s, p) {
			return i
		}
	}
	return -1
}

func TestFindFirstBasics(t *testing.T) {
	pats := []string{"he", "she", "his", "hers"}
	m := New(pats)
	cases := []struct {
		in   string
		want int
	}{
		{"", -1},
		{"x", -1},
		{"he", 0},
		{"she", 0},   // "she" contains "he" (index 0) too; 0 wins
		{"xshex", 0}, // ditto
		{"hi", -1},
		{"his", 0}, // "his" starts with "hi"… contains "his" (2) but not "he"… wait: h-i-s has no "he"
		{"ahistory", 2},
		{"hers", 0},
		{"sh", -1},
	}
	for _, c := range cases {
		want := findFirstNaive(pats, c.in)
		if got := m.FindFirst(c.in); got != want {
			t.Errorf("FindFirst(%q) = %d, want %d (naive)", c.in, got, want)
		}
	}
	// The literal expectations above document intent; cross-check the
	// handful that name an index explicitly.
	if got := m.FindFirst("ahistory"); got != 2 {
		t.Errorf("FindFirst(ahistory) = %d, want 2", got)
	}
}

func TestOverlappingPriorities(t *testing.T) {
	// A later, shorter pattern inside an earlier, longer one: priority is
	// list order, not match length or position.
	pats := []string{"kernel BUG:", "BUG:", "kernel"}
	m := New(pats)
	for _, s := range []string{
		"kernel BUG: at mm/slab.c",
		"BUG: soft lockup",
		"kernel: all quiet",
		"no match here",
		"xxBUG:kernelyy",
	} {
		if got, want := m.FindFirst(s), findFirstNaive(pats, s); got != want {
			t.Errorf("FindFirst(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestEmptyPattern(t *testing.T) {
	// strings.Contains(s, "") is true, so an empty pattern matches
	// everything at its own priority.
	pats := []string{"abc", "", "xyz"}
	m := New(pats)
	for _, s := range []string{"", "q", "abc", "xyz"} {
		if got, want := m.FindFirst(s), findFirstNaive(pats, s); got != want {
			t.Errorf("FindFirst(%q) = %d, want %d", s, got, want)
		}
	}
	if got := New([]string{""}).FindFirst("anything"); got != 0 {
		t.Errorf("lone empty pattern: got %d, want 0", got)
	}
}

func TestDuplicatePatterns(t *testing.T) {
	pats := []string{"aa", "bb", "aa"}
	m := New(pats)
	if got := m.FindFirst("xaax"); got != 0 {
		t.Errorf("duplicate pattern: got %d, want 0", got)
	}
	if got := m.FindFirst("xbbx"); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
}

func TestNoPatterns(t *testing.T) {
	m := New(nil)
	if got := m.FindFirst("anything"); got != -1 {
		t.Errorf("empty matcher: got %d, want -1", got)
	}
}

func TestHighBytes(t *testing.T) {
	// Non-ASCII bytes must route correctly through the dense table.
	pats := []string{"\xff\xfe", "é", "\x00"}
	m := New(pats)
	for _, s := range []string{"", "\xff", "\xff\xfe", "caf\xc3\xa9", "a\x00b", "\xfe\xff"} {
		if got, want := m.FindFirst(s), findFirstNaive(pats, s); got != want {
			t.Errorf("FindFirst(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := "abcde"
	randStr := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	for trial := 0; trial < 200; trial++ {
		np := 1 + rng.Intn(8)
		pats := make([]string, np)
		for i := range pats {
			pats[i] = randStr(1 + rng.Intn(4))
		}
		m := New(pats)
		for probe := 0; probe < 50; probe++ {
			s := randStr(rng.Intn(20))
			if got, want := m.FindFirst(s), findFirstNaive(pats, s); got != want {
				t.Fatalf("patterns %q input %q: got %d want %d", pats, s, got, want)
			}
		}
	}
}

func TestFindFirstAllocs(t *testing.T) {
	m := New([]string{"Kernel panic", "BUG:", "segfault at"})
	in := "2015-03-02 node segfault at 0xdeadbeef in libfoo"
	if allocs := testing.AllocsPerRun(100, func() {
		if m.FindFirst(in) < 0 {
			t.Fatal("expected a match")
		}
	}); allocs != 0 {
		t.Errorf("FindFirst allocates %.1f per run, want 0", allocs)
	}
}

// FuzzFindFirst cross-checks the automaton against the naive loop over
// a fixed pattern set resembling the classifier's table.
func FuzzFindFirst(f *testing.F) {
	pats := []string{
		"Kernel panic - not syncing",
		"kernel BUG:",
		"BUG: unable to handle kernel paging request",
		"mcelog:",
		"segfault at",
		"NHC:",
		"NHC: abnormal application exit",
		"a", "ab", "ba",
	}
	m := New(pats)
	f.Add("Kernel panic - not syncing: fatal")
	f.Add("NHC: abnormal application exit code=9")
	f.Add("abba")
	f.Add("")
	f.Add("\x00\xff junk")
	f.Fuzz(func(t *testing.T, s string) {
		if got, want := m.FindFirst(s), findFirstNaive(pats, s); got != want {
			t.Fatalf("FindFirst(%q) = %d, want %d", s, got, want)
		}
	})
}

func BenchmarkFindFirst(b *testing.B) {
	pats := []string{
		"shutdown: scheduled by operator", "halting: system shutdown",
		"Kernel panic - not syncing", "kernel BUG:", "Machine Check Exception",
		"segfault at", "NHC:", "blocked for more than 120 seconds",
	}
	m := New(pats)
	in := "INFO completed periodic scrub of 4096 pages with no errors found"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.FindFirst(in)
	}
}
