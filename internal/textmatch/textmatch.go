// Package textmatch implements a multi-pattern substring matcher — an
// Aho–Corasick automaton compiled down to a dense DFA — for the log
// classifier's hot path. Where a naive classifier runs strings.Contains
// once per pattern (30+ scans per log line), the automaton scans each
// message exactly once, advancing one table lookup per input byte.
//
// Matching semantics are **first-match-priority**: FindFirst returns the
// lowest pattern index that occurs anywhere in the input, exactly
// matching the naive loop
//
//	for i, p := range patterns {
//	    if strings.Contains(s, p.sub) { return i }
//	}
//
// because "the first pattern in list order that matches" is precisely
// "the minimum pattern index over all occurrences". The logparse test
// suite fuzz-verifies this equivalence against the naive loop.
package textmatch

// noMatch marks states (and results) with no pattern occurrence.
const noMatch = int32(-1)

// Matcher is an immutable multi-pattern matcher. Build one with New;
// concurrent use is safe because matching never mutates the automaton.
type Matcher struct {
	// next is the dense transition table: next[state*256+b] is the state
	// reached from state on input byte b. The goto and failure functions
	// are pre-composed at build time, so matching never chases failure
	// links.
	next []int32
	// match[state] is the minimum pattern index whose occurrence ends at
	// state (following the failure chain), or noMatch.
	match []int32
	// rootMatch is the match value of the root state: noMatch unless an
	// empty pattern was supplied (which, like strings.Contains(s, ""),
	// matches every input immediately).
	rootMatch int32
	// n is the pattern count.
	n int
}

// New compiles the patterns into a matcher. Pattern order is priority
// order: FindFirst reports the lowest index whose pattern occurs.
// Duplicate patterns are fine (the lower index wins); empty patterns
// match everything, again mirroring strings.Contains.
func New(patterns []string) *Matcher {
	// Trie construction over byte alphabet.
	type node struct {
		children map[byte]int32
		match    int32
		fail     int32
	}
	nodes := []node{{children: map[byte]int32{}, match: noMatch}}
	for idx, p := range patterns {
		if p == "" {
			if nodes[0].match == noMatch || int32(idx) < nodes[0].match {
				nodes[0].match = int32(idx)
			}
			continue
		}
		cur := int32(0)
		for i := 0; i < len(p); i++ {
			b := p[i]
			nxt, ok := nodes[cur].children[b]
			if !ok {
				nodes = append(nodes, node{children: map[byte]int32{}, match: noMatch})
				nxt = int32(len(nodes) - 1)
				nodes[cur].children[b] = nxt
			}
			cur = nxt
		}
		if nodes[cur].match == noMatch || int32(idx) < nodes[cur].match {
			nodes[cur].match = int32(idx)
		}
	}

	// BFS to fill failure links and propagate match minima down the
	// failure chain (match[s] = min(own, match[fail[s]])).
	queue := make([]int32, 0, len(nodes))
	for _, c := range nodes[0].children {
		nodes[c].fail = 0
		queue = append(queue, c)
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		if fm := nodes[nodes[s].fail].match; fm != noMatch &&
			(nodes[s].match == noMatch || fm < nodes[s].match) {
			nodes[s].match = fm
		}
		for b, c := range nodes[s].children {
			f := nodes[s].fail
			for f != 0 {
				if n, ok := nodes[f].children[b]; ok {
					f = n
					goto found
				}
				f = nodes[f].fail
			}
			if n, ok := nodes[0].children[b]; ok && n != c {
				f = n
			}
		found:
			nodes[c].fail = f
			queue = append(queue, c)
		}
	}

	// Compose goto+failure into the dense DFA transition table. BFS
	// order guarantees fail targets are finalised before dependants.
	m := &Matcher{
		next:      make([]int32, len(nodes)*256),
		match:     make([]int32, len(nodes)),
		rootMatch: nodes[0].match,
		n:         len(patterns),
	}
	for s := range nodes {
		m.match[s] = nodes[s].match
	}
	// Root row: stay at root unless a child exists.
	for b := 0; b < 256; b++ {
		if c, ok := nodes[0].children[byte(b)]; ok {
			m.next[b] = c
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		base := int(s) * 256
		failBase := int(nodes[s].fail) * 256
		for b := 0; b < 256; b++ {
			if c, ok := nodes[s].children[byte(b)]; ok {
				m.next[base+b] = c
			} else {
				m.next[base+b] = m.next[failBase+b]
			}
		}
	}
	return m
}

// NumPatterns returns the number of patterns compiled in.
func (m *Matcher) NumPatterns() int { return m.n }

// FindFirst returns the lowest pattern index occurring anywhere in s, or
// -1 when no pattern occurs. Zero allocations; one table lookup per
// byte, with an early exit once index 0 (the highest priority) is seen.
func (m *Matcher) FindFirst(s string) int {
	best := m.rootMatch
	if best == 0 {
		return 0
	}
	state := int32(0)
	next, match := m.next, m.match
	for i := 0; i < len(s); i++ {
		state = next[int(state)*256+int(s[i])]
		if mm := match[state]; mm != noMatch && (best == noMatch || mm < best) {
			if mm == 0 {
				return 0
			}
			best = mm
		}
	}
	return int(best)
}

// Matches reports whether any pattern occurs in s.
func (m *Matcher) Matches(s string) bool { return m.FindFirst(s) >= 0 }
