package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// replayAll collects every record of the log.
func replayAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	if err := l.Replay(func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		if i%7 == 0 {
			p = append(p, make([]byte, i*13)...) // vary sizes, include zeros
		}
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != len(want) {
		t.Fatalf("Records() = %d, want %d", l2.Records(), len(want))
	}
	got := replayAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append([]byte("0123456789abcdef0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if segs := l.Segments(); segs < 10 {
		t.Fatalf("expected rotation to produce many segments, got %d", segs)
	}
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2); len(got) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(got))
	}
	// Appends after reopen continue from the last segment.
	if err := l2.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l2); len(got) != 21 || !bytes.Equal(got[20], []byte("after-reopen")) {
		t.Fatalf("append after reopen not replayed: %d records", len(got))
	}
}

func TestOversizeRecordGetsOwnSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 100)
	for _, p := range [][]byte{[]byte("a"), big, []byte("b")} {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2, err := Open(dir, Options{SegmentBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 3 || !bytes.Equal(got[1], big) {
		t.Fatalf("oversize record lost: %d records", len(got))
	}
}

// corrupt flips one byte at off in the named segment.
func corrupt(t *testing.T, dir string, seg, off int) {
	t.Helper()
	path := filepath.Join(dir, segmentName(seg))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a torn final write: chop the segment mid-frame.
	path := filepath.Join(dir, segmentName(1))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l2); len(got) != 9 {
		t.Fatalf("torn tail: replayed %d records, want 9 (last truncated away)", len(got))
	}
	// The truncated log accepts new appends and they land after the
	// surviving prefix.
	if err := l2.Append([]byte("resumed")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	got := replayAll(t, l3)
	if len(got) != 10 || !bytes.Equal(got[9], []byte("resumed")) {
		t.Fatalf("append after truncation: got %d records, last %q", len(got), got[len(got)-1])
	}
}

func TestGarbledMiddleDropsSuffixAndLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := l.Append([]byte("0123456789abcdef0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	before := l.Segments()
	if before < 6 {
		t.Fatalf("want several segments, got %d", before)
	}

	// Garble a payload byte in segment 2: replay must keep segment 1,
	// drop the damaged record and everything after — including later
	// segment files.
	corrupt(t, dir, 2, frameHeader+4)
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) >= 12 || len(got) < 1 {
		t.Fatalf("garbled middle: replayed %d records, want a strict prefix", len(got))
	}
	if l2.Segments() >= before {
		t.Fatalf("later segments not removed: %d segments still present (was %d)", l2.Segments(), before)
	}
}

func TestGarbledLengthFieldTruncates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte("hello")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Garble the length field of record 3 into a huge value.
	corrupt(t, dir, 1, 2*(frameHeader+5)+2)
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2); len(got) != 2 {
		t.Fatalf("garbled length: replayed %d records, want 2", len(got))
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := l.Append([]byte("some-record-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 || l.Segments() != 0 {
		t.Fatalf("after Reset: %d records, %d segments", l.Records(), l.Segments())
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l); len(got) != 1 || !bytes.Equal(got[0], []byte("fresh")) {
		t.Fatalf("append after Reset: %v", got)
	}
	l.Close()
}

func TestEmptyAndMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "does", "not", "exist", "yet")
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Records() != 0 {
		t.Fatalf("fresh log has %d records", l.Records())
	}
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("fresh log replays %d records", len(got))
	}
}

func TestSyncOption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestForeignFilesIgnored: stray files in the WAL dir are not treated
// as segments.
func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-junk.seg"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Records() != 0 {
		t.Fatalf("foreign files counted as records: %d", l.Records())
	}
}
