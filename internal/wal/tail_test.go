package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// TestTailReaderFollowsWriter reads records as a live writer appends
// them: the reader sees exactly the appended prefix, in order, and
// reports "no record" at the tip rather than blocking or erroring.
func TestTailReaderFollowsWriter(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tr := NewTailReader(dir, Offset{})
	defer tr.Close()

	if p, err := tr.Next(); p != nil || err != nil {
		t.Fatalf("empty log Next = %q, %v; want nil, nil", p, err)
	}
	for i := 0; i < 20; i++ {
		want := []byte(fmt.Sprintf("record-%03d", i))
		if err := l.Append(want); err != nil {
			t.Fatal(err)
		}
		got, err := tr.Next()
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("record %d: Next = %q, %v; want %q", i, got, err, want)
		}
	}
	if p, err := tr.Next(); p != nil || err != nil {
		t.Fatalf("caught-up Next = %q, %v; want nil, nil", p, err)
	}
}

// TestTailReaderAcrossRotation follows the writer through segment
// rotations and resumes from a persisted mid-log offset.
func TestTailReaderAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var want [][]byte
	for i := 0; i < 30; i++ {
		rec := []byte(fmt.Sprintf("rotated-record-%03d", i))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st, err := l.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments < 2 {
		t.Fatalf("test needs rotation; got %d segments", st.Segments)
	}

	tr := NewTailReader(dir, Offset{})
	defer tr.Close()
	var mid Offset
	for i, w := range want {
		if i == len(want)/2 {
			mid = tr.Offset()
		}
		got, err := tr.Next()
		if err != nil || !bytes.Equal(got, w) {
			t.Fatalf("record %d: Next = %q, %v; want %q", i, got, err, w)
		}
	}
	if p, err := tr.Next(); p != nil || err != nil {
		t.Fatalf("tail Next = %q, %v; want nil, nil", p, err)
	}

	// Resuming from the persisted offset replays exactly the suffix.
	tr2 := NewTailReader(dir, mid)
	defer tr2.Close()
	for i := len(want) / 2; i < len(want); i++ {
		got, err := tr2.Next()
		if err != nil || !bytes.Equal(got, want[i]) {
			t.Fatalf("resumed record %d: Next = %q, %v; want %q", i, got, err, want[i])
		}
	}
}

// TestTailReaderTornTail distinguishes the writer's in-progress append
// (wait) from sealed corruption (ErrDamaged): a torn frame at the tip
// is returned as "no record yet" and delivered once completed, while
// the same bytes with a later segment present are permanent damage.
func TestTailReaderTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-append a torn frame: full header, half the payload.
	payload := []byte("this payload is cut in half")
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)
	seg := filepath.Join(dir, segmentName(1))
	intact, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, append(append([]byte{}, intact...), frame[:len(frame)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}

	tr := NewTailReader(dir, Offset{})
	defer tr.Close()
	if got, err := tr.Next(); err != nil || string(got) != "intact" {
		t.Fatalf("Next = %q, %v; want intact record", got, err)
	}
	// The torn frame is "not yet", repeatedly — the reader must not
	// advance past it or misreport it.
	for i := 0; i < 3; i++ {
		if p, err := tr.Next(); p != nil || err != nil {
			t.Fatalf("torn-tail Next = %q, %v; want nil, nil", p, err)
		}
	}
	// The writer finishes the append: the record is delivered.
	if err := os.WriteFile(seg, append(append([]byte{}, intact...), frame...), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := tr.Next(); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("completed Next = %q, %v; want %q", got, err, payload)
	}

	// Same torn bytes but sealed by a later segment: permanent damage.
	if err := os.WriteFile(seg, append(append([]byte{}, intact...), frame[:len(frame)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	tr2 := NewTailReader(dir, Offset{})
	defer tr2.Close()
	if got, err := tr2.Next(); err != nil || string(got) != "intact" {
		t.Fatalf("Next = %q, %v; want intact record", got, err)
	}
	if _, err := tr2.Next(); !errors.Is(err, ErrDamaged) {
		t.Fatalf("sealed torn frame Next err = %v; want ErrDamaged", err)
	}
}

// TestTailReaderImpossibleLength classifies a garbage length field as
// damage immediately instead of waiting for 4 GiB that will never come.
func TestTailReaderImpossibleLength(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	bad := make([]byte, 8)
	binary.LittleEndian.PutUint32(bad, uint32(maxFramePayload+1))
	f, err := os.OpenFile(filepath.Join(dir, segmentName(1)), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(bad)
	f.Close()

	tr := NewTailReader(dir, Offset{})
	defer tr.Close()
	if got, err := tr.Next(); err != nil || string(got) != "ok" {
		t.Fatalf("Next = %q, %v", got, err)
	}
	if _, err := tr.Next(); !errors.Is(err, ErrDamaged) {
		t.Fatalf("impossible-length Next err = %v; want ErrDamaged", err)
	}
}

// TestStat covers the Stat surface the /metrics gauges read: segment
// count, total bytes, record count and the end offset.
func TestStat(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st, err := l.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 0 || st.Bytes != 0 || st.Records != 0 {
		t.Fatalf("empty Stat = %+v", st)
	}
	total := int64(0)
	for i := 0; i < 12; i++ {
		rec := []byte(fmt.Sprintf("stat-record-%04d", i))
		total += int64(len(rec)) + 8
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st, err = l.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 12 || st.Bytes != total || st.Segments < 2 {
		t.Fatalf("Stat = %+v, want 12 records, %d bytes, >=2 segments", st, total)
	}
	if st.End.Seg != st.Segments || st.End.Byte == 0 {
		t.Fatalf("Stat.End = %+v, want tip of segment %d", st.End, st.Segments)
	}

	// A reader positioned at End sees nothing; records appended after
	// are delivered from there.
	tr := NewTailReader(dir, st.End)
	defer tr.Close()
	if p, err := tr.Next(); p != nil || err != nil {
		t.Fatalf("Next at End = %q, %v; want nil, nil", p, err)
	}
	if err := l.Append([]byte("after-stat")); err != nil {
		t.Fatal(err)
	}
	if got, err := tr.Next(); err != nil || string(got) != "after-stat" {
		t.Fatalf("Next after append = %q, %v", got, err)
	}
}

// BenchmarkTailReader measures frame decode + CRC verification
// throughput on the replica tail path, across segment rotations.
func BenchmarkTailReader(b *testing.B) {
	const records = 4096
	dir := b.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte("r"), 256)
	for i := 0; i < records+1; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	tr := NewTailReader(dir, Offset{})
	if p, err := tr.Next(); err != nil || p == nil { // open + first read outside the timer
		b.Fatalf("warmup Next = %v, %v", p, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%records == 0 {
			b.StopTimer()
			tr.Close()
			tr = NewTailReader(dir, Offset{})
			b.StartTimer()
		}
		p, err := tr.Next()
		if err != nil || p == nil {
			b.Fatalf("Next = %v, %v", p, err)
		}
	}
	tr.Close()
}

// TestRotationSyncErrorPropagates pins the fsync fix: with Sync set, a
// rotation that cannot sync the sealed segment reports the error to the
// caller instead of silently sealing bytes that may not be durable.
func TestRotationSyncErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 32, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(bytes.Repeat([]byte("x"), 24)); err != nil {
		t.Fatal(err)
	}
	// Sabotage the active handle so the rotation-time fsync must fail.
	if err := l.f.Close(); err != nil {
		t.Fatal(err)
	}
	err = l.Append(bytes.Repeat([]byte("y"), 24)) // would rotate
	if err == nil {
		t.Fatal("rotation with a failing fsync reported success")
	}
	l.f = nil // the handle is already closed; avoid double close in Close
}
