package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// readSegments concatenates every segment's raw bytes in index order,
// keyed by name, for byte-level comparison between two log directories.
func readSegments(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(segs))
	for _, idx := range segs {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(idx)))
		if err != nil {
			t.Fatal(err)
		}
		out[segmentName(idx)] = data
	}
	return out
}

// TestAppendBatchBytesMatchSequentialAppends: group commit must not
// change the on-disk format. The same payloads written through one
// AppendBatch call and through per-record Appends must produce
// byte-identical segment files — rotation points included — so tailers,
// replay and crash recovery cannot tell the two writers apart.
func TestAppendBatchBytesMatchSequentialAppends(t *testing.T) {
	payloads := make([][]byte, 0, 40)
	for i := 0; i < 40; i++ {
		payloads = append(payloads, bytes.Repeat([]byte{byte('a' + i%26)}, 5+i*7))
	}
	// A small segment size forces several rotations mid-batch.
	opts := Options{SegmentBytes: 256}

	seqDir, batchDir := t.TempDir(), t.TempDir()
	seq, err := Open(seqDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := seq.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := seq.Close(); err != nil {
		t.Fatal(err)
	}

	batch, err := Open(batchDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.AppendBatch(payloads...); err != nil {
		t.Fatal(err)
	}
	if err := batch.Close(); err != nil {
		t.Fatal(err)
	}

	got, want := readSegments(t, batchDir), readSegments(t, seqDir)
	if len(got) != len(want) {
		t.Fatalf("segment count: batch %d, sequential %d", len(got), len(want))
	}
	for name, wb := range want {
		if !bytes.Equal(got[name], wb) {
			t.Errorf("segment %s diverges between batch and sequential writers", name)
		}
	}

	// Replay returns the same records in the same order from both.
	reopened, err := Open(batchDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	i := 0
	if err := reopened.Replay(func(p []byte) error {
		if i >= len(payloads) || !bytes.Equal(p, payloads[i]) {
			return fmt.Errorf("record %d mismatch", i)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(payloads) {
		t.Fatalf("replayed %d records, want %d", i, len(payloads))
	}
}

// TestAppendBatchMixedWithAppends: interleaving single Appends and
// batches accumulates records and offsets exactly like a pure sequence,
// and a TailReader following the log sees every payload in order.
func TestAppendBatchMixedWithAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wrote [][]byte
	add := func(ps ...[]byte) { wrote = append(wrote, ps...) }
	if err := l.Append([]byte("solo-1")); err != nil {
		t.Fatal(err)
	}
	add([]byte("solo-1"))
	group := [][]byte{bytes.Repeat([]byte("g"), 60), bytes.Repeat([]byte("h"), 60), []byte("tail")}
	if err := l.AppendBatch(group...); err != nil {
		t.Fatal(err)
	}
	add(group...)
	if err := l.AppendBatch(); err != nil { // empty group: no-op
		t.Fatal(err)
	}
	if err := l.Append([]byte("solo-2")); err != nil {
		t.Fatal(err)
	}
	add([]byte("solo-2"))

	st, err := l.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != len(wrote) {
		t.Fatalf("Stat.Records = %d, want %d", st.Records, len(wrote))
	}

	tr := NewTailReader(dir, Offset{})
	defer tr.Close()
	for i, want := range wrote {
		got, err := tr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d = %q, want %q", i, got, want)
		}
	}
	if extra, _ := tr.Next(); extra != nil {
		t.Fatalf("unexpected extra record %q", extra)
	}
}

// TestStatSyncsCounter: Stat reports how many fsyncs actually reached
// the disk — the denominator of the group-commit amortization ratio.
// Unsynced logs must report zero even when Sync is called.
func TestStatSyncsCounter(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendBatch([]byte("a"), []byte("b"), []byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("d")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := l.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 4 || st.Syncs != 2 {
		t.Fatalf("Records, Syncs = %d, %d; want 4, 2", st.Records, st.Syncs)
	}

	nosync, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nosync.Close()
	if err := nosync.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := nosync.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err = nosync.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Syncs != 0 {
		t.Fatalf("unsynced log reports %d syncs", st.Syncs)
	}
}

// TestStatConcurrentWithAppends: Stat's documented exception — safe to
// call concurrently with the single appending goroutine. Run under
// go test -race this is the proof; without -race it still checks Stat
// never reports a torn extent (records behind a fully-completed batch).
func TestStatConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const rounds = 200
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			st, err := l.Stat()
			if err != nil {
				t.Errorf("Stat: %v", err)
				return
			}
			if st.Records < 0 || st.Records > 2*rounds {
				t.Errorf("Stat.Records = %d out of range", st.Records)
				return
			}
		}
	}()
	payload := bytes.Repeat([]byte("p"), 64)
	for i := 0; i < rounds; i++ {
		if err := l.AppendBatch(payload, payload); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	st, err := l.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2*rounds || st.Syncs != rounds {
		t.Fatalf("final Records, Syncs = %d, %d; want %d, %d", st.Records, st.Syncs, 2*rounds, rounds)
	}
}
