// Package wal is an append-only, CRC-checksummed, segment-rotated
// write-ahead log. The ingestion pipeline journals its progress through
// it so a killed load can resume without losing completed work — the
// same checkpoint/restart economics the paper argues for at the job
// level, applied to our own pipeline.
//
// Durability model:
//
//   - every record is framed [length u32][crc32c u32][payload], so a
//     torn write (crash mid-append) is detectable;
//   - Open scans every segment front to back and truncates the log at
//     the first damaged frame — the torn tail and anything after it is
//     discarded, never returned, and never a panic;
//   - segments rotate at SegmentBytes so truncation after damage drops
//     at most the damaged segment's tail plus later segments.
//
// A record that Append returned success for (followed by Sync when
// configured) survives a crash; a record mid-write at the kill point is
// rolled back on the next Open. Callers must therefore treat the log as
// a prefix journal: everything replayed is intact and in append order,
// and the journal may simply be shorter than the work attempted.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DefaultSegmentBytes is the rotation threshold when Options leaves it
// zero.
const DefaultSegmentBytes = 4 << 20

// frameHeader is the per-record framing overhead: length + checksum.
const frameHeader = 8

// castagnoli is the CRC polynomial table (CRC-32C, the checksum used by
// most storage formats for its error-detection properties).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a log.
type Options struct {
	// SegmentBytes rotates the active segment once it would exceed this
	// size (<= 0 selects DefaultSegmentBytes). A single record larger
	// than the threshold still gets written, alone in its segment.
	SegmentBytes int64
	// Sync fsyncs the active segment on every Sync call. Appends are
	// never implicitly synced; callers batch with Sync at their own
	// checkpoint cadence.
	Sync bool
}

// Log is an open write-ahead log. Not safe for concurrent use, with
// one exception: Stat may run concurrently with the single goroutine
// doing Append/AppendBatch/Sync (the counters it reads are guarded by
// an internal mutex), so a metrics scrape never queues behind an fsync.
type Log struct {
	dir  string
	opts Options

	f *os.File

	// statMu guards the extent counters below against concurrent Stat.
	// The appending goroutine also reads them without the lock — it is
	// the only writer, so its own reads are race-free.
	statMu  sync.Mutex
	segIdx  int   // index of the active segment (1-based; 0 = none yet)
	segSize int64 // bytes in the active segment
	// records is the count of valid records found at Open plus records
	// appended since.
	records int
	// syncs counts Sync calls that reached the disk (Options.Sync set
	// and an active segment open) — the group-commit amortization shows
	// up as records growing much faster than syncs.
	syncs int

	// scratch is the AppendBatch framing buffer, reused across calls so
	// a group of records costs one write and no per-record allocation.
	scratch []byte
}

// segmentName renders the file name of segment i.
func segmentName(i int) string { return fmt.Sprintf("wal-%08d.seg", i) }

// Open opens (or creates) the log under dir, validating every segment
// and truncating the torn tail: the first frame with a short header,
// impossible length or checksum mismatch ends the log — the damaged
// segment is truncated at the last intact frame and every later segment
// is deleted. Open never fails on damage, only on real I/O errors.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	for n, idx := range segs {
		path := filepath.Join(dir, segmentName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		good, count, intact := scanSegment(data)
		l.records += count
		l.segIdx = idx
		l.segSize = good
		if !intact {
			if err := os.Truncate(path, good); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
			// Everything after the damage is untrusted: drop later
			// segments wholesale.
			for _, later := range segs[n+1:] {
				if err := os.Remove(filepath.Join(dir, segmentName(later))); err != nil {
					return nil, fmt.Errorf("wal: %w", err)
				}
			}
			// Make the repair itself durable: a crash right after Open
			// must not resurrect the removed segments.
			syncDir(dir)
			break
		}
	}
	return l, nil
}

// syncDir fsyncs a directory so segment creation, removal and renames
// survive a power cut. Filesystems that refuse directory fsync degrade
// silently — the WAL's frame checksums still bound the damage.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}

// listSegments returns the segment indexes present under dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var i int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.seg", &i); err == nil && i > 0 &&
			e.Name() == segmentName(i) {
			segs = append(segs, i)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// scanSegment walks the frames of one segment. It returns the byte
// offset just past the last intact frame, the count of intact frames,
// and whether the whole segment was intact.
func scanSegment(data []byte) (good int64, count int, intact bool) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return int64(off), count, false
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n < 0 || len(data)-off-frameHeader < n {
			return int64(off), count, false
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return int64(off), count, false
		}
		off += frameHeader + n
		count++
	}
	return int64(off), count, true
}

// Records returns the number of valid records in the log (replayable
// ones found at Open plus successful Appends since).
func (l *Log) Records() int { return l.records }

// Segments returns how many segment files the log currently spans.
func (l *Log) Segments() int {
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0
	}
	return len(segs)
}

// Replay invokes fn for every intact record in append order, re-reading
// the segments from disk. Damage encountered mid-replay (the log was
// modified externally since Open) silently ends the replay — the WAL
// contract is prefix delivery, never a panic. fn returning an error
// aborts the replay with that error.
func (l *Log) Replay(fn func(payload []byte) error) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		data, err := os.ReadFile(filepath.Join(l.dir, segmentName(idx)))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		off := 0
		for off < len(data) {
			if len(data)-off < frameHeader {
				return nil
			}
			n := int(binary.LittleEndian.Uint32(data[off:]))
			crc := binary.LittleEndian.Uint32(data[off+4:])
			if n < 0 || len(data)-off-frameHeader < n {
				return nil
			}
			payload := data[off+frameHeader : off+frameHeader+n]
			if crc32.Checksum(payload, castagnoli) != crc {
				return nil
			}
			if err := fn(payload); err != nil {
				return err
			}
			off += frameHeader + n
		}
	}
	return nil
}

// Append writes one record. The payload is framed and buffered by the
// OS; call Sync to force it to stable storage. Rotation happens before
// the write when the active segment would exceed SegmentBytes.
func (l *Log) Append(payload []byte) error {
	return l.AppendBatch(payload)
}

// maxScratch caps the framing buffer retained between AppendBatch
// calls; an occasional oversized group is served by a transient buffer.
const maxScratch = 4 << 20

// AppendBatch writes a group of records as consecutive frames, issuing
// one file write per segment run instead of one per record — the write
// half of group commit (one Sync after AppendBatch makes the whole
// group durable at the cost of a single fsync). Rotation between
// records follows the same rule as Append, so the on-disk bytes are
// indistinguishable from the same payloads appended one at a time. A
// failure leaves the tail unverified exactly like a failed Append;
// callers fail-stop either way.
func (l *Log) AppendBatch(payloads ...[]byte) error {
	for start := 0; start < len(payloads); {
		if l.segIdx == 0 || (l.segSize > 0 && l.segSize+frameHeader+int64(len(payloads[start])) > l.opts.SegmentBytes) {
			if err := l.rotate(); err != nil {
				return err
			}
		}
		if l.f == nil {
			if err := l.openActive(); err != nil {
				return err
			}
		}
		// Frame every record that fits in the active segment into one
		// contiguous buffer and write it in a single call.
		end := start
		size := l.segSize
		buf := l.scratch[:0]
		for end < len(payloads) {
			p := payloads[end]
			if end > start && size+frameHeader+int64(len(p)) > l.opts.SegmentBytes {
				break
			}
			var hdr [frameHeader]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
			binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(p, castagnoli))
			buf = append(buf, hdr[:]...)
			buf = append(buf, p...)
			size += frameHeader + int64(len(p))
			end++
		}
		if cap(buf) <= maxScratch {
			l.scratch = buf
		}
		if _, err := l.f.Write(buf); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.statMu.Lock()
		l.segSize = size
		l.records += end - start
		l.statMu.Unlock()
		start = end
	}
	return nil
}

// rotate closes the active segment and advances to the next index.
func (l *Log) rotate() error {
	if err := l.closeActive(); err != nil {
		return err
	}
	l.statMu.Lock()
	l.segIdx++
	l.segSize = 0
	l.statMu.Unlock()
	return nil
}

// openActive opens the active segment for appending. Creating a new
// segment file fsyncs the directory, so a synced record can never sit
// in a file whose directory entry a crash could drop.
func (l *Log) openActive() error {
	if l.segIdx == 0 {
		l.segIdx = 1
	}
	path := filepath.Join(l.dir, segmentName(l.segIdx))
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if statErr != nil {
		syncDir(l.dir)
	}
	l.f = f
	return nil
}

// Sync flushes the active segment to stable storage when Options.Sync
// is set; otherwise it is a no-op (the OS flushes eventually — the
// trade callers pick for speed).
func (l *Log) Sync() error {
	if !l.opts.Sync || l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.statMu.Lock()
	l.syncs++
	l.statMu.Unlock()
	return nil
}

// closeActive closes the active segment file handle. With Options.Sync
// set the segment is fsynced first and a sync failure is returned, not
// swallowed: rotation seals the segment, so this is the last chance to
// learn its bytes never reached stable storage — a caller that treated
// a failed rotation as success would replicate records that a power cut
// could still take back.
func (l *Log) closeActive() error {
	if l.f == nil {
		return nil
	}
	var syncErr error
	if l.opts.Sync {
		syncErr = l.f.Sync()
	}
	err := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return fmt.Errorf("wal: syncing sealed segment: %w", syncErr)
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Close releases the log. The log stays on disk for a later Open.
func (l *Log) Close() error { return l.closeActive() }

// Reset deletes every segment, emptying the log for a fresh run.
func (l *Log) Reset() error {
	if err := l.closeActive(); err != nil {
		return err
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if err := os.Remove(filepath.Join(l.dir, segmentName(idx))); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.statMu.Lock()
	l.segIdx = 0
	l.segSize = 0
	l.records = 0
	l.statMu.Unlock()
	return nil
}
