package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALOpen feeds arbitrary bytes to Open as segment content: damage
// of any shape must never panic or error — only truncate to an intact
// prefix — and the log must stay appendable and re-openable afterwards.
func FuzzWALOpen(f *testing.F) {
	// Seed with an intact two-record segment, a torn tail, a garbled
	// checksum, an absurd length field, and raw junk.
	frame := func(payload []byte) []byte {
		b := make([]byte, frameHeader+len(payload))
		binary.LittleEndian.PutUint32(b, uint32(len(payload)))
		binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(payload, castagnoli))
		copy(b[frameHeader:], payload)
		return b
	}
	intact := append(frame([]byte("alpha")), frame([]byte("beta"))...)
	f.Add(intact)
	f.Add(intact[:len(intact)-3])
	garbled := append([]byte(nil), intact...)
	garbled[5] ^= 0xFF
	f.Add(garbled)
	huge := append([]byte(nil), intact...)
	binary.LittleEndian.PutUint32(huge[frameHeader+5:], 0xFFFFFFF0)
	f.Add(huge)
	f.Add([]byte("not a wal segment at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, seg []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on damaged segment errored: %v", err)
		}
		count := 0
		if err := l.Replay(func(p []byte) error { count++; return nil }); err != nil {
			t.Fatalf("Replay errored: %v", err)
		}
		if count != l.Records() {
			t.Fatalf("Replay delivered %d records, Records() says %d", count, l.Records())
		}
		// The truncated log must accept appends and survive a reopen
		// with the new record as the final one.
		if err := l.Append([]byte("post-damage")); err != nil {
			t.Fatalf("Append after damage: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer l2.Close()
		var last []byte
		if err := l2.Replay(func(p []byte) error {
			last = append(last[:0], p...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(last, []byte("post-damage")) {
			t.Fatalf("appended record lost after reopen; last = %q", last)
		}
		if l2.Records() != count+1 {
			t.Fatalf("reopen counts %d records, want %d", l2.Records(), count+1)
		}
	})
}
