package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrDamaged marks frame-level corruption in a position the writer can
// no longer be mid-write at: a bad frame inside a sealed (rotated-past)
// segment, or an impossible length. Tailers must treat it as permanent —
// retrying will re-read the same damaged bytes — unlike the nil,nil
// "no complete record yet" return, which is the live writer's torn tail
// and resolves itself once the append finishes.
var ErrDamaged = errors.New("wal: damaged frame")

// maxFramePayload is the sanity bound on one frame's payload length. A
// length field above it cannot come from this writer (ingest bodies are
// capped far below) and is classified as damage rather than waited on.
const maxFramePayload = 256 << 20

// Offset addresses a frame boundary in a log: a 1-based segment index
// and a byte offset within that segment. The zero Offset means "the
// start of the log".
type Offset struct {
	Seg  int   `json:"seg"`
	Byte int64 `json:"byte"`
}

// Stats describes a log's on-disk extent.
type Stats struct {
	Segments int    // segment files present
	Bytes    int64  // total bytes across all segments
	Records  int    // valid records (found at Open plus appended since)
	Syncs    int    // fsyncs issued (group commit amortizes: records >> syncs)
	End      Offset // offset just past the last appended record
}

// Stat reports the log's current extent. Bytes and Segments are read
// from the directory so they cover sealed segments, not just the active
// one. Unlike the log's other methods, Stat is safe to call
// concurrently with the appending goroutine: the counters are read
// under an internal mutex and the directory walk touches no shared
// handle — so a metrics scrape never stalls behind a group fsync.
func (l *Log) Stat() (Stats, error) {
	segs, err := listSegments(l.dir)
	if err != nil {
		return Stats{}, err
	}
	l.statMu.Lock()
	st := Stats{Segments: len(segs), Records: l.records, Syncs: l.syncs, End: Offset{Seg: l.segIdx, Byte: l.segSize}}
	l.statMu.Unlock()
	for _, idx := range segs {
		fi, err := os.Stat(filepath.Join(l.dir, segmentName(idx)))
		if err != nil {
			return Stats{}, fmt.Errorf("wal: %w", err)
		}
		st.Bytes += fi.Size()
	}
	return st, nil
}

// TailReader reads a log directory frame by frame, independently of any
// Log handle — including a log a live writer in this or another process
// is still appending to. It is the replication stream's read side: a
// replica (or the primary's /v1/wal streamer) follows the log with
// repeated Next calls, and every frame is CRC-verified before delivery.
//
// The contract mirrors the log's durability model:
//
//   - Next returns the next intact record and advances;
//   - (nil, nil) means no complete record is available at the current
//     offset — either the tip of the log, or a torn frame the writer is
//     still appending. The reader holds its position; retry after the
//     writer makes progress.
//   - ErrDamaged means corruption in a sealed position (a bad frame
//     with a later segment present, or an impossible length): the log
//     beyond this point cannot be trusted and the tailer must stop
//     rather than skip.
//
// A TailReader is not safe for concurrent use.
type TailReader struct {
	dir string
	off Offset
	f   *os.File
	seg int // segment index the open handle belongs to
}

// NewTailReader positions a reader at from within the log under dir
// (the zero Offset reads from the very beginning).
func NewTailReader(dir string, from Offset) *TailReader {
	if from.Seg < 1 {
		from = Offset{Seg: 1}
	}
	return &TailReader{dir: dir, off: from}
}

// Offset returns the reader's current position — the frame boundary the
// next Next call will read at. Persist it to resume tailing later.
func (t *TailReader) Offset() Offset { return t.off }

// Close releases the open segment handle. The reader remains usable;
// the next Next reopens at the current offset.
func (t *TailReader) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f, t.seg = nil, 0
	return err
}

// open ensures a handle on the current segment, returning (nil, nil)
// when the segment file does not exist yet.
func (t *TailReader) open() (*os.File, error) {
	if t.f != nil && t.seg == t.off.Seg {
		return t.f, nil
	}
	t.Close()
	f, err := os.Open(filepath.Join(t.dir, segmentName(t.off.Seg)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	t.f, t.seg = f, t.off.Seg
	return f, nil
}

// nextSegExists reports whether the segment after the current one is on
// disk — the writer has rotated past, so the current position is sealed.
func (t *TailReader) nextSegExists() bool {
	_, err := os.Stat(filepath.Join(t.dir, segmentName(t.off.Seg+1)))
	return err == nil
}

// Next returns the next intact record payload, (nil, nil) when no
// complete record is available yet, or an error (ErrDamaged for sealed
// corruption, otherwise an I/O error). The returned slice is freshly
// allocated and owned by the caller.
func (t *TailReader) Next() ([]byte, error) {
	for {
		f, err := t.open()
		if err != nil {
			return nil, err
		}
		if f == nil {
			return nil, nil // segment not created yet
		}
		var hdr [frameHeader]byte
		n, err := f.ReadAt(hdr[:], t.off.Byte)
		if n < frameHeader {
			if err != nil && err != io.EOF {
				return nil, fmt.Errorf("wal: %w", err)
			}
			// Short header at the tail. A sealed segment ends exactly at
			// a frame boundary, so leftover bytes before a later segment
			// are damage; a clean boundary means the writer rotated.
			if t.nextSegExists() {
				if n != 0 {
					return nil, fmt.Errorf("%w: short header at seg %d byte %d", ErrDamaged, t.off.Seg, t.off.Byte)
				}
				t.off = Offset{Seg: t.off.Seg + 1}
				continue
			}
			return nil, nil
		}
		ln := int64(binary.LittleEndian.Uint32(hdr[:4]))
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if ln > maxFramePayload {
			return nil, fmt.Errorf("%w: impossible length %d at seg %d byte %d", ErrDamaged, ln, t.off.Seg, t.off.Byte)
		}
		payload := make([]byte, ln)
		m, err := f.ReadAt(payload, t.off.Byte+frameHeader)
		if int64(m) < ln {
			if err != nil && err != io.EOF {
				return nil, fmt.Errorf("wal: %w", err)
			}
			if t.nextSegExists() {
				return nil, fmt.Errorf("%w: short payload at seg %d byte %d", ErrDamaged, t.off.Seg, t.off.Byte)
			}
			return nil, nil // payload still being appended
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			if t.nextSegExists() {
				return nil, fmt.Errorf("%w: checksum mismatch at seg %d byte %d", ErrDamaged, t.off.Seg, t.off.Byte)
			}
			return nil, nil // torn in-progress append; retry later
		}
		t.off.Byte += frameHeader + ln
		return payload, nil
	}
}
