// Package stats is the statistical toolkit behind the measurement study:
// descriptive statistics, empirical CDFs, histograms, mean-time-between-
// failure estimation with error bars, correlation coefficients, bootstrap
// confidence intervals, and classifier rates.
//
// The reproduction bands for this paper note that HPC log-mining lacks
// canonical statistical tooling; this package is the reusable core a
// downstream failure-analysis project would adopt. Everything is
// stdlib-only and deterministic (bootstrap takes an explicit generator).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hpcfail/internal/rng"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// String renders "mean ± stddev (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3g ± %.2g (n=%d)", s.Mean, s.Stddev, s.N)
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics. The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns F(x) = P(X <= x), the fraction of the sample at or below x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile of the sample.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return quantileSorted(e.sorted, q)
}

// Points returns (x, F(x)) pairs at each distinct sample value, suitable
// for plotting the CDF as a step series.
func (e *ECDF) Points() (xs, fs []float64) {
	n := len(e.sorted)
	for i := 0; i < n; i++ {
		if i+1 < n && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(i+1)/float64(n))
	}
	return xs, fs
}

// Histogram counts sample values into uniform-width bins over [lo, hi).
// Values outside the range land in the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram bins xs into n uniform bins over [lo, hi). It panics if
// n <= 0 or hi <= lo (programmer error).
func NewHistogram(xs []float64, lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram spec")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		h.Counts[i]++
	}
	return h
}

// BinCenter returns the centre of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Total returns the total count.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// InterArrival converts sorted event timestamps into successive gaps.
// Unsorted input is sorted first; fewer than two events yield nil.
func InterArrival(ts []time.Time) []time.Duration {
	if len(ts) < 2 {
		return nil
	}
	sorted := make([]time.Time, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Before(sorted[j]) })
	out := make([]time.Duration, 0, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		out = append(out, sorted[i].Sub(sorted[i-1]))
	}
	return out
}

// MTBF summarises inter-arrival gaps of failure timestamps: the paper's
// mean time between successive failures with a stddev error bar
// (e.g. Fig 3: 1.5 ± 0.56 minutes for S1/W1).
func MTBF(ts []time.Time) Summary {
	gaps := InterArrival(ts)
	xs := make([]float64, len(gaps))
	for i, g := range gaps {
		xs[i] = g.Minutes()
	}
	return Summarize(xs)
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples, or 0 if undefined (length < 2 or zero variance).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Phi returns the phi coefficient of association for a 2×2 contingency
// table — the natural measure for "did an external fault co-occur with a
// node failure". Cells: a = both, b = x only, c = y only, d = neither.
// Returns 0 when any margin is empty.
func Phi(a, b, c, d int) float64 {
	af, bf, cf, df := float64(a), float64(b), float64(c), float64(d)
	denom := math.Sqrt((af + bf) * (cf + df) * (af + cf) * (bf + df))
	if denom == 0 {
		return 0
	}
	return (af*df - bf*cf) / denom
}

// BootstrapMeanCI returns a two-sided percentile bootstrap confidence
// interval for the mean at the given confidence level (e.g. 0.95), using
// iters resamples drawn from r. An empty sample yields (0, 0).
func BootstrapMeanCI(xs []float64, level float64, iters int, r *rng.Rand) (lo, hi float64) {
	if len(xs) == 0 || iters <= 0 {
		return 0, 0
	}
	means := make([]float64, iters)
	for i := 0; i < iters; i++ {
		sum := 0.0
		for j := 0; j < len(xs); j++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}

// Rates are binary-classifier quality measures, used for the Fig 14
// false-positive analysis and for validating the diagnosis pipeline
// against simulator ground truth.
type Rates struct {
	TP, FP, TN, FN int
}

// Precision returns TP / (TP + FP), or 0 when no positives predicted.
func (r Rates) Precision() float64 {
	if r.TP+r.FP == 0 {
		return 0
	}
	return float64(r.TP) / float64(r.TP+r.FP)
}

// Recall returns TP / (TP + FN), or 0 when there are no actual positives.
func (r Rates) Recall() float64 {
	if r.TP+r.FN == 0 {
		return 0
	}
	return float64(r.TP) / float64(r.TP+r.FN)
}

// FalsePositiveRate returns FP / (TP + FP): of everything flagged, the
// fraction that was wrong. This matches the paper's use in Fig 14
// (false positives among raised correlations).
func (r Rates) FalsePositiveRate() float64 {
	if r.TP+r.FP == 0 {
		return 0
	}
	return float64(r.FP) / float64(r.TP+r.FP)
}

// F1 returns the harmonic mean of precision and recall.
func (r Rates) F1() float64 {
	p, q := r.Precision(), r.Recall()
	if p+q == 0 {
		return 0
	}
	return 2 * p * q / (p + q)
}

// String renders the confusion counts and derived rates.
func (r Rates) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d precision=%.3f recall=%.3f fpr=%.3f",
		r.TP, r.FP, r.TN, r.FN, r.Precision(), r.Recall(), r.FalsePositiveRate())
}

// ChiSquareGOF returns the chi-square goodness-of-fit statistic for
// observed category counts against expected probabilities (which are
// normalised internally). Categories with zero expected probability
// must have zero observations, otherwise +Inf is returned.
func ChiSquareGOF(observed []int, expectedProb []float64) float64 {
	if len(observed) != len(expectedProb) || len(observed) == 0 {
		return math.Inf(1)
	}
	n := 0
	for _, o := range observed {
		n += o
	}
	if n == 0 {
		return 0
	}
	totalP := 0.0
	for _, p := range expectedProb {
		if p < 0 {
			return math.Inf(1)
		}
		totalP += p
	}
	if totalP <= 0 {
		return math.Inf(1)
	}
	stat := 0.0
	for i, o := range observed {
		e := float64(n) * expectedProb[i] / totalP
		if e == 0 {
			if o != 0 {
				return math.Inf(1)
			}
			continue
		}
		d := float64(o) - e
		stat += d * d / e
	}
	return stat
}

// chiSquareCrit99 holds the 99th-percentile chi-square critical values
// for 1..20 degrees of freedom.
var chiSquareCrit99 = []float64{
	6.63, 9.21, 11.34, 13.28, 15.09, 16.81, 18.48, 20.09, 21.67, 23.21,
	24.73, 26.22, 27.69, 29.14, 30.58, 32.00, 33.41, 34.81, 36.19, 37.57,
}

// ChiSquareFits reports whether the observed counts are consistent with
// the expected probabilities at the 1 % significance level (i.e. the
// statistic does not exceed the df = k-1 critical value). Degrees of
// freedom beyond 20 use a normal approximation.
func ChiSquareFits(observed []int, expectedProb []float64) bool {
	stat := ChiSquareGOF(observed, expectedProb)
	df := len(observed) - 1
	if df < 1 {
		return stat == 0
	}
	if df <= len(chiSquareCrit99) {
		return stat <= chiSquareCrit99[df-1]
	}
	// Wilson-Hilferty approximation for large df.
	z := 2.326 // 99th percentile of the standard normal
	d := float64(df)
	crit := d * math.Pow(1-2/(9*d)+z*math.Sqrt(2/(9*d)), 3)
	return stat <= crit
}

// BucketByDay groups timestamps into UTC calendar days and returns the
// per-day counts keyed by day start. Used for the "failures per day"
// analyses (Figs 4, 10).
func BucketByDay(ts []time.Time) map[time.Time]int {
	out := make(map[time.Time]int)
	for _, t := range ts {
		day := t.UTC().Truncate(24 * time.Hour)
		out[day]++
	}
	return out
}

// BucketByHour groups timestamps into hour-of-day (0..23) counts — the
// Fig 9 view of warning frequency across the day.
func BucketByHour(ts []time.Time) [24]int {
	var out [24]int
	for _, t := range ts {
		out[t.UTC().Hour()]++
	}
	return out
}

// SortedDays returns the keys of a per-day bucket map in ascending order.
func SortedDays(m map[time.Time]int) []time.Time {
	out := make([]time.Time, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// FractionWithin returns the fraction of durations at or below the limit
// — e.g. "92.3 % of node failures happen within 1–16 minutes of each
// other" style statements.
func FractionWithin(ds []time.Duration, limit time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	n := 0
	for _, d := range ds {
		if d <= limit {
			n++
		}
	}
	return float64(n) / float64(len(ds))
}
